// Ablation: FLID-DS slot duration.
//
// SIGMA enforces access with a responsiveness of two time slots (the s -> s+2
// timeline), so the slot duration trades enforcement latency and overhead
// against control-plane load. We sweep the FLID-DS slot and report honest
// throughput, attacker containment, and SIGMA control overhead.
#include <array>
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "sim/stats.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Slot-duration ablation for FLID-DS");
  flags.add("duration", "120", "seconds per run");
  flags.add("inflate_at", "40", "attack start, seconds");
  flags.add("seed", "37", "simulation seed");
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const auto inflate_at = sim::seconds(flags.f64("inflate_at"));
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  const auto rows = exp::run_sweep(
      {250.0, 375.0, 500.0, 750.0, 1000.0}, opts,
      [&](const exp::sweep_point& pt) {
        const int slot_ms = static_cast<int>(pt.x);
        exp::dumbbell_config cfg;
        cfg.sched = g_sched;
        cfg.bottleneck_bps = 1e6;
        cfg.seed = pt.seed;
        exp::testbed d(exp::dumbbell(cfg));

        flid::flid_config fc = d.default_flid_config(exp::flid_mode::ds);
        fc.slot_duration = sim::milliseconds(slot_ms);
        // Keep the real-time upgrade frequency constant across slot sizes.
        fc.upgrade_prob = 0.3 * slot_ms / 500.0;

        exp::receiver_options attacker;
        attacker.inflate = true;
        attacker.inflate_at = inflate_at;
        auto& f1 = d.add_flid_session(exp::flid_mode::ds, fc, {attacker});
        auto& f2 = d.add_flid_session(exp::flid_mode::ds, fc,
                                      {exp::receiver_options{}});
        auto& t1 = d.add_tcp_flow();
        auto& t2 = d.add_tcp_flow();
        d.run_until(sim::seconds(duration));

        const sim::time_ns t0 = inflate_at + sim::seconds(10.0);
        const sim::time_ns te = sim::seconds(duration);
        const std::array<double, 4> rates = {
            f1.receiver().monitor().average_kbps(t0, te),
            f2.receiver().monitor().average_kbps(t0, te),
            t1.sink->monitor().average_kbps(t0, te),
            t2.sink->monitor().average_kbps(t0, te)};
        const auto& em = f2.ds.emitter->stats();
        const auto& snd = f2.sender->stats();
        exp::sweep_row row;
        row.value("honest_kbps", rates[1]);
        row.value("attacker_kbps", rates[0]);
        row.value("fairness", sim::jain_fairness_index(rates));
        row.value("sigma_overhead_pct",
                  100.0 * static_cast<double>(em.ctrl_bytes) /
                      static_cast<double>(snd.data_bytes));
        return row;
      });

  std::cout << "# slot(ms)  honest_kbps  attacker_kbps  fairness  sigma_overhead(%)\n";
  for (const auto& row : rows) {
    std::printf("%d %.1f %.1f %.3f %.3f\n", static_cast<int>(row.x),
                row.value_of("honest_kbps"), row.value_of("attacker_kbps"),
                row.value_of("fairness"), row.value_of("sigma_overhead_pct"));
  }
  std::cout << "# expectation: fairness stays high at every slot size; SIGMA\n"
               "# overhead shrinks as slots lengthen (fewer key rotations).\n";
  exp::maybe_write_json(flags, "ablation_slot_duration", rows);
  return 0;
}
