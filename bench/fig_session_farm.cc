// Session farm: 2..64 concurrent FLID sessions sharing one set of
// bottlenecks, one adversarial session among honest neighbours, sweeping the
// shared congestion manager x queue discipline x attack.
//
// Not a paper figure — the cross-session question the paper's single-session
// experiments cannot express: when a misbehaving receiver inflates ONE
// session's subscription, how much collateral damage do honest *neighbour
// sessions* take, and does DS containment plus a shared congestion manager
// (src/cm) limit it? Each cell builds one testbed whose bottleneck is sized
// to --per-session-kbps per session, adds the rogue session first (session 0)
// and an add_session_array of honest neighbours behind the same contested
// edge, and reports:
//
//   neighbour_damage   fraction of the honest sessions' pre-attack goodput
//                      lost over the post-attack window (0 = no collateral)
//   honest_jain        Jain fairness index across the honest sessions
//   s<i>_kbps          per-session throughput columns (exp::session_rollup)
//   attacker_kbps      the rogue session's post-attack goodput
//   cm.*               shared-manager metrics (row "metrics" object): cache
//                      occupancy, lookups, and how often the cap bound
//
// The headline CHECK: at >= --check-sessions concurrent sessions, honest-
// neighbour damage under DS+CM must sit strictly below DS-alone — the shared
// fair-rate estimate stops every honest session from probing into the
// attacker's overload at once, so the collateral loss cycle never starts.
// CM cells carry a "/cm" label suffix; plain labels stay as before so
// cross-commit baseline diffs keep matching historical rows.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "obs/trace.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;

struct site_plan {
  std::string shared;  // the contested edge every session's receiver sits at
};

struct cell {
  int sessions = 2;
  std::string topo;
  sim::qdisc queue;
  std::string attack;
  bool cm = false;  // shared congestion manager on
};

// World seed from the cell's cm-free coordinates (FNV-1a): a "/cm" row and
// its plain twin simulate the SAME world, so their pair comparison isolates
// the manager's effect instead of folding in seed noise. Worker-independent,
// which the --jobs byte-equality contract needs.
std::uint64_t cell_seed(std::uint64_t base, const cell& c) {
  std::uint64_t h = 1469598103934665603ull ^ (base * 1099511628211ull);
  const auto fold = [&h](const std::string& s) {
    for (const char ch : s) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ull;
    }
  };
  fold(c.topo);
  fold(c.attack);
  h ^= static_cast<std::uint64_t>(c.sessions);
  h *= 1099511628211ull;
  h ^= static_cast<std::uint64_t>(c.queue);
  h *= 1099511628211ull;
  return h;
}

exp::testbed_config make_config(const std::string& topo, std::uint64_t seed,
                                sim::qdisc queue, const sim::aqm_config& aqm_in,
                                double path_bps, bool cm,
                                const cm::cm_config& cm_params,
                                site_plan& sites) {
  sim::aqm_config aqm = aqm_in;
  aqm.discipline = queue;
  if (topo == "dumbbell") {
    exp::dumbbell_config cfg;
    cfg.sched = g_sched;
    cfg.bottleneck_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.cm = cm;
    cfg.cm_params = cm_params;
    sites = {"r"};
    return exp::dumbbell(cfg);
  }
  if (topo == "parking_lot") {
    exp::parking_lot_config cfg;
    cfg.sched = g_sched;
    cfg.bottlenecks = 2;
    cfg.bottleneck_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.cm = cm;
    cfg.cm_params = cm_params;
    sites = {"r2"};
    return exp::parking_lot(cfg);
  }
  std::fprintf(stderr,
               "bad value for --topos: '%s' (expected dumbbell, parking_lot, "
               "or a comma list)\n",
               topo.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags(
      "Session farm: N concurrent sessions x cm x qdisc x attack collateral");
  flags.add("duration", "120", "experiment length, seconds");
  flags.add("attack-at", "40", "attack onset, seconds");
  flags.add("damage-window", "40",
            "collateral damage is measured over [attack-at, attack-at + "
            "this], seconds");
  flags.add("sessions", "2,8",
            "concurrent session count(s), comma-separated (2..64 each)");
  flags.add("attacks", "none,inflate_once",
            "comma list of none|inflate_once|pulse_inflate|deaf_receiver");
  flags.add("topos", "dumbbell,parking_lot",
            "comma list of dumbbell|parking_lot");
  flags.add("mode", "ds", "protocol world: ds (SIGMA-protected) or dl (plain)");
  flags.add("attack-keys", "guess",
            "key mode for inflate_once/pulse_inflate: best_effort|replay|guess");
  flags.add("per-session-kbps", "250",
            "bottleneck capacity budgeted per session (link = N x this)");
  flags.add("check-sessions", "8",
            "the collateral-damage CHECK applies at this many sessions or "
            "more");
  flags.add("seed", "21", "simulation seed");
  exp::add_cm_flags(flags, "both");
  exp::add_aqm_flags(flags);
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const double attack_at_s = flags.f64("attack-at");
  const double damage_window_s = flags.f64("damage-window");
  if (!(damage_window_s >= 5.0)) {
    std::fprintf(stderr,
                 "bad value for --damage-window: %g (expected >= 5 s)\n",
                 damage_window_s);
    return 1;
  }
  if (duration <= attack_at_s + 10.0) {
    std::fprintf(stderr,
                 "bad value for --duration/--attack-at: %g/%g (need duration "
                 "> attack-at + 10 s so the damage window is non-empty)\n",
                 duration, attack_at_s);
    return 1;
  }
  if (attack_at_s <= 15.0) {
    std::fprintf(stderr,
                 "bad value for --attack-at: %g (need > 15 s so the "
                 "pre-attack baseline window is non-empty)\n",
                 attack_at_s);
    return 1;
  }
  const std::string mode_name = flags.str("mode");
  if (mode_name != "ds" && mode_name != "dl") {
    std::fprintf(stderr, "bad value for --mode: '%s' (expected ds or dl)\n",
                 mode_name.c_str());
    return 1;
  }
  const exp::flid_mode mode =
      mode_name == "ds" ? exp::flid_mode::ds : exp::flid_mode::dl;
  const adversary::key_mode keys =
      adversary::key_mode_from_flag(flags.str("attack-keys"));
  const double per_session_kbps = flags.f64("per-session-kbps");
  if (!(per_session_kbps >= 50.0 && per_session_kbps <= 10e3)) {
    std::fprintf(stderr,
                 "bad value for --per-session-kbps: %g (expected a rate in "
                 "[50, 10000])\n",
                 per_session_kbps);
    return 1;
  }
  const int check_sessions = static_cast<int>(flags.i64("check-sessions"));

  std::vector<int> session_counts;
  for (const std::string& tok : util::split_csv(flags.str("sessions"))) {
    const int n = std::atoi(tok.c_str());
    if (n < 2 || n > 64) {
      std::fprintf(stderr,
                   "bad value for --sessions: '%s' (expected counts in "
                   "[2, 64])\n",
                   tok.c_str());
      return 1;
    }
    session_counts.push_back(n);
  }
  std::vector<std::string> attacks = util::split_csv(flags.str("attacks"));
  for (const std::string& name : attacks) {
    if (name == "none") continue;
    const auto k = adversary::strategy_from_name(name);
    if (!k.has_value() || *k == adversary::strategy_kind::honest) {
      std::fprintf(stderr,
                   "bad value for --attacks: '%s' (expected none, "
                   "inflate_once, pulse_inflate, deaf_receiver, or a comma "
                   "list)\n",
                   name.c_str());
      return 1;
    }
  }
  const std::vector<std::string> topos = util::split_csv(flags.str("topos"));
  const std::vector<sim::qdisc> qdiscs = exp::qdisc_list_from_flags(flags);
  const sim::aqm_config aqm_base = exp::aqm_config_from_flags(flags);
  std::vector<bool> cms = exp::cm_axis_from_flags(flags);
  const cm::cm_config cm_params = exp::cm_config_from_flags(flags);

  std::vector<cell> cells;
  for (const int n : session_counts) {
    for (const std::string& t : topos) {
      // Validate topology names up front (before worker threads).
      site_plan probe;
      (void)make_config(t, 1, sim::qdisc::droptail, aqm_base, 1e6, false,
                        cm_params, probe);
      for (const sim::qdisc q : qdiscs) {
        for (const std::string& a : attacks) {
          for (const bool c : cms) cells.push_back({n, t, q, a, c});
        }
      }
    }
  }

  std::vector<double> xs(cells.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const std::uint64_t base_seed = static_cast<std::uint64_t>(flags.i64("seed"));
  const auto opts = exp::sweep_options_from_flags(flags, base_seed);

  const sim::time_ns attack_at = sim::seconds(attack_at_s);
  const sim::time_ns horizon = sim::seconds(duration);
  const bool tracing = exp::trace_requested(flags);
  const bool profiling = exp::profile_requested(flags);

  exp::sweep_profile prof;
  const auto rows = exp::run_sweep(
      xs, opts,
      [&](const exp::sweep_point& pt) {
    const cell& c = cells[pt.index];
    obs::trace_buffer tb;
    obs::trace_scope scope(tracing ? &tb : nullptr);
    site_plan sites;
    // The bottleneck grows with the farm so the per-session fair share
    // stays put: the sessions axis varies contention structure, not the
    // per-session budget.
    const double path_bps =
        per_session_kbps * 1e3 * static_cast<double>(c.sessions);
    exp::testbed d(make_config(c.topo, cell_seed(base_seed, c), c.queue,
                               aqm_base, path_bps, c.cm, cm_params, sites));

    // Session 0 carries the farm's one misbehaving receiver; every other
    // session is an honest neighbour at the same contested edge.
    std::vector<exp::flid_session*> honest;
    exp::flid_session* rogue = nullptr;
    if (c.attack != "none") {
      exp::receiver_options attacker;
      attacker.at = sites.shared;
      const auto kind = *adversary::strategy_from_name(c.attack);
      switch (kind) {
        case adversary::strategy_kind::inflate_once:
          attacker.attack = adversary::inflate_once(attack_at, keys);
          break;
        case adversary::strategy_kind::pulse_inflate:
          attacker.attack = adversary::pulse_inflate(
              attack_at, sim::seconds(5.0), sim::seconds(5.0), keys);
          break;
        case adversary::strategy_kind::deaf_receiver:
          attacker.attack = adversary::deaf_receiver(attack_at);
          break;
        default:
          util::require(false, "fig_session_farm: unhandled strategy",
                        c.attack);
      }
      rogue = &d.add_flid_session(mode, {attacker});
    }
    exp::receiver_options neighbour;
    neighbour.at = sites.shared;
    const int honest_count = c.sessions - (rogue != nullptr ? 1 : 0);
    honest = d.add_session_array(honest_count, mode, {neighbour});
    d.run_until(horizon);

    // Pre-attack baseline vs the attack-transient window. The damage window
    // opens AT the attack and spans its transient plus the recovery: that is
    // where collateral loss lives. Measuring long after containment would
    // mostly re-measure steady state and dilute the effect under study.
    const sim::time_ns pre0 = sim::seconds(15.0);
    const sim::time_ns post0 = attack_at;
    const sim::time_ns post1 =
        std::min(horizon, attack_at + sim::seconds(damage_window_s));
    const exp::session_rollup pre =
        exp::session_rollup_for(honest, pre0, attack_at);
    const exp::session_rollup post =
        exp::session_rollup_for(honest, post0, post1);

    exp::sweep_row row;
    row.label = c.topo + "/" + std::string(sim::qdisc_name(c.queue)) + "/n" +
                std::to_string(c.sessions) + "/" + c.attack +
                (c.cm ? "/cm" : "");
    row.value("sessions", static_cast<double>(c.sessions));
    row.value("cm", c.cm ? 1.0 : 0.0);
    row.value("attacked", c.attack != "none" ? 1.0 : 0.0);
    const double n_honest = static_cast<double>(honest.size());
    const double pre_mean = pre.total_rate / n_honest;
    const double post_mean = post.total_rate / n_honest;
    row.value("honest_pre_kbps", pre_mean);
    row.value("honest_kbps", post_mean);
    row.value("neighbour_damage",
              pre_mean > 0.0 ? std::max(0.0, 1.0 - post_mean / pre_mean)
                             : 0.0);
    row.value("honest_jain", post.jain);
    row.value("attacker_kbps",
              rogue != nullptr
                  ? rogue->receiver(0).monitor().average_kbps(post0, post1)
                  : 0.0);
    if (rogue != nullptr) {
      row.value("attacker_level",
                static_cast<double>(rogue->receiver(0).level()));
    }
    // Per-session throughput columns, in session-id order (the roll-up's
    // input order): the cross-session containment picture at full width.
    for (const exp::session_column& s : post.sessions) {
      row.value(s.name + "_kbps", s.rate);
    }
    std::uint64_t bindings = 0;
    for (exp::flid_session* s : honest) {
      bindings += s->receiver(0).stats().cm_bindings;
    }
    row.value("cm_bindings", static_cast<double>(bindings));
    row.value("events", static_cast<double>(d.sched().executed_events()));
    row.trace("honest_session0_kbps_series", post.sessions.front().smoothed);
    row.metrics = d.metrics().snapshot();
    if (tracing) row.trace_blob = tb.serialize();
    return row;
  },
      profiling ? &prof : nullptr);

  std::printf("# session farm (%s): topo/qdisc/nN/attack[/cm]\n",
              mode_name.c_str());
  std::printf("# %-42s %8s %10s %10s %9s %9s %11s\n", "cell", "sessions",
              "honest_kbps", "atk_kbps", "damage", "jain", "cm_bindings");
  for (const auto& row : rows) {
    std::printf("  %-42s %8.0f %10.2f %10.2f %9.3f %9.4f %11.0f\n",
                row.label.c_str(), row.value_of("sessions"),
                row.value_of("honest_kbps"), row.value_of("attacker_kbps"),
                row.value_of("neighbour_damage"), row.value_of("honest_jain"),
                row.value_of("cm_bindings"));
  }

  // The headline collateral-damage study: pair every attacked DS-alone cell
  // with its "/cm" twin (same world seed by construction — cell_seed skips
  // the cm coordinate). At farm sizes >= --check-sessions the shared manager
  // must strictly reduce MEAN honest-neighbour damage across the farm cells.
  // The claim is aggregate rather than per-pair because in some worlds the
  // cap only ever bound at levels the receivers were not about to join —
  // a behavioural no-op, which ties the pair and says nothing either way.
  // Smaller farms are reported but not claimed (two sessions leave the
  // estimate noisy).
  if (cms.size() > 1) {
    int pairs = 0;
    int worse = 0;
    int bound_cells = 0;
    double dmg_off_sum = 0.0;
    double dmg_on_sum = 0.0;
    for (const auto& row : rows) {
      if (row.value_of("attacked") != 1.0) continue;
      if (row.value_of("cm") != 0.0) continue;
      if (row.value_of("sessions") < static_cast<double>(check_sessions)) {
        continue;
      }
      const exp::sweep_row* cm_row = nullptr;
      for (const auto& other : rows) {
        if (other.label == row.label + "/cm") cm_row = &other;
      }
      if (cm_row == nullptr) continue;
      ++pairs;
      // Matched-pair damage against a COMMON baseline — the DS-alone cell's
      // own pre-attack goodput. The per-row neighbour_damage column is
      // self-normalised, which is right for reading one cell but wrong for
      // the pair comparison: the manager shifts the pre-attack window too,
      // and that shift would launder into the ratio.
      const double base = row.value_of("honest_pre_kbps");
      const double dmg_off =
          std::max(0.0, 1.0 - row.value_of("honest_kbps") / base);
      const double dmg_on =
          std::max(0.0, 1.0 - cm_row->value_of("honest_kbps") / base);
      dmg_off_sum += dmg_off;
      dmg_on_sum += dmg_on;
      if (dmg_on > dmg_off) ++worse;
      if (cm_row->value_of("cm_bindings") > 0.0) ++bound_cells;
    }
    // A claim only prints when its cells actually ran: "0 of 0" reads as
    // the study passing when nothing was checked.
    if (pairs > 0) {
      const double reduction = (dmg_off_sum - dmg_on_sum) / pairs;
      exp::print_check(
          std::cout,
          "mean honest-neighbour damage reduction, DS+CM vs DS-alone "
          "(n >= " + std::to_string(check_sessions) + ")",
          "strictly > 0", reduction,
          "damage fraction over " + std::to_string(pairs) + " pairs");
      exp::print_check(std::cout,
                       "cm farms where the shared cap actually bound",
                       "all of them", static_cast<double>(bound_cells),
                       "of " + std::to_string(pairs));
      std::printf("  (pairs where cm made damage worse: %d of %d)\n", worse,
                  pairs);
    }
  }
  exp::maybe_write_json(flags, "fig_session_farm", rows,
                        profiling ? &prof : nullptr);
  exp::maybe_write_trace(flags, rows);
  return 0;
}
