// Figure 8(a)-(c): multicast throughput without cross traffic.
//
// n FLID sessions (n = 1..18) share a bottleneck sized so each session's
// fair share is 250 Kbps. For every session count we report individual
// receiver throughputs and the average — once for FLID-DL (Fig 8a), once for
// FLID-DS (Fig 8b) — and the DL-vs-DS averages side by side (Fig 8c). The
// paper's claim: receivers achieve similar average throughput in FLID-DL and
// FLID-DS.
//
// The session-count grid runs under exp::sweep: each grid point simulates
// both modes in an isolated world, so --jobs N parallelizes the sweep with
// bit-identical output.
#include <cmath>
#include <iostream>
#include <vector>

#include "crypto/prng.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

namespace {

struct run_result {
  exp::series individual_kbps;  // x = receiver number (1-based)
  double average_kbps = 0.0;
};

run_result run(exp::flid_mode mode, int sessions, double duration_s,
               std::uint64_t seed) {
  exp::dumbbell_config cfg;
  cfg.sched = g_sched;
  cfg.bottleneck_bps = 250e3 * sessions;
  cfg.seed = seed;
  exp::testbed d(exp::dumbbell(cfg));
  std::vector<exp::flid_session*> handles;
  for (int i = 0; i < sessions; ++i) {
    handles.push_back(&d.add_flid_session(mode, {exp::receiver_options{}}));
  }
  const sim::time_ns horizon = sim::seconds(duration_s);
  d.run_until(horizon);

  run_result r;
  const sim::time_ns t0 = sim::seconds(duration_s * 0.1);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const double kbps =
        handles[i]->receiver().monitor().average_kbps(t0, horizon);
    r.individual_kbps.emplace_back(static_cast<double>(i + 1), kbps);
    r.average_kbps += kbps;
  }
  r.average_kbps /= sessions;
  return r;
}

void print_individual(const char* title, const std::vector<exp::sweep_row>& rows,
                      const char* trace_name) {
  std::cout << title;
  for (const auto& row : rows) {
    std::cout << static_cast<int>(row.x);
    for (const auto& [idx, v] : *row.trace_of(trace_name)) {
      (void)idx;
      std::cout << " " << v;
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(a)-(c): throughput vs session count, no cross traffic");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("max_sessions", "18", "largest session count");
  flags.add("seed", "11", "simulation seed");
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));
  std::vector<double> counts;
  for (int n = 1; n <= flags.i64("max_sessions");
       n += (n == 1 ? 1 : 2)) {  // 1, 2, 4, 6, ..., like the paper's x axis
    counts.push_back(n);
  }

  const auto rows = exp::run_sweep(
      counts, opts, [&](const exp::sweep_point& pt) {
        const int n = static_cast<int>(pt.x);
        // Independent sub-streams for the two modes of this grid point.
        std::uint64_t sm = pt.seed;
        const std::uint64_t dl_seed = crypto::splitmix64(sm);
        const std::uint64_t ds_seed = crypto::splitmix64(sm);
        const run_result dl = run(exp::flid_mode::dl, n, duration, dl_seed);
        const run_result ds = run(exp::flid_mode::ds, n, duration, ds_seed);
        exp::sweep_row row;
        row.value("dl_avg", dl.average_kbps);
        row.value("ds_avg", ds.average_kbps);
        row.trace("dl_individual", dl.individual_kbps);
        row.trace("ds_individual", ds.individual_kbps);
        return row;
      });

  print_individual(
      "# Fig 8(a): FLID-DL individual rates (Kbps) per session count\n", rows,
      "dl_individual");
  print_individual(
      "\n# Fig 8(b): FLID-DS individual rates (Kbps) per session count\n", rows,
      "ds_individual");
  std::cout << "\n";
  const exp::series dl_avg = exp::column(rows, "dl_avg");
  const exp::series ds_avg = exp::column(rows, "ds_avg");
  exp::print_columns(std::cout,
                     "Fig 8(c): average throughput (Kbps) vs #sessions",
                     {"FLID-DL", "FLID-DS"}, {dl_avg, ds_avg});

  // The paper's check: similar averages for DL and DS at every point.
  double worst_gap = 0.0;
  for (std::size_t i = 0; i < dl_avg.size(); ++i) {
    const double gap = std::abs(dl_avg[i].second - ds_avg[i].second) /
                       std::max(dl_avg[i].second, 1.0);
    worst_gap = std::max(worst_gap, gap);
  }
  exp::print_check(std::cout, "max relative DL-vs-DS average gap",
                   "small (curves overlap)", worst_gap, "fraction");
  exp::maybe_write_json(flags, "fig08abc_throughput_nocross", rows);
  return 0;
}
