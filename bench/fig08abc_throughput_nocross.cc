// Figure 8(a)-(c): multicast throughput without cross traffic.
//
// n FLID sessions (n = 1..18) share a bottleneck sized so each session's
// fair share is 250 Kbps. For every session count we report individual
// receiver throughputs and the average — once for FLID-DL (Fig 8a), once for
// FLID-DS (Fig 8b) — and the DL-vs-DS averages side by side (Fig 8c). The
// paper's claim: receivers achieve similar average throughput in FLID-DL and
// FLID-DS.
#include <iostream>
#include <vector>

#include "exp/report.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {

struct run_result {
  std::vector<double> individual_kbps;
  double average_kbps = 0.0;
};

run_result run(exp::flid_mode mode, int sessions, double duration_s,
               std::uint64_t seed) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 250e3 * sessions;
  cfg.seed = seed;
  exp::testbed d(exp::dumbbell(cfg));
  std::vector<exp::flid_session*> handles;
  for (int i = 0; i < sessions; ++i) {
    handles.push_back(
        &d.add_flid_session(mode, {exp::receiver_options{}}));
  }
  const sim::time_ns horizon = sim::seconds(duration_s);
  d.run_until(horizon);

  run_result r;
  const sim::time_ns t0 = sim::seconds(duration_s * 0.1);
  for (auto* s : handles) {
    r.individual_kbps.push_back(s->receiver().monitor().average_kbps(t0, horizon));
    r.average_kbps += r.individual_kbps.back();
  }
  r.average_kbps /= sessions;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(a)-(c): throughput vs session count, no cross traffic");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("max_sessions", "18", "largest session count");
  flags.add("seed", "11", "simulation seed");
  if (!flags.parse(argc, argv)) return 1;

  const double duration = flags.f64("duration");
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed"));
  std::vector<int> counts;
  for (int n = 1; n <= flags.i64("max_sessions");
       n += (n == 1 ? 1 : 2)) {  // 1, 2, 4, 6, ..., like the paper's x axis
    counts.push_back(n);
  }

  exp::series dl_avg, ds_avg;
  std::cout << "# Fig 8(a): FLID-DL individual rates (Kbps) per session count\n";
  std::vector<run_result> dl_runs, ds_runs;
  for (int n : counts) {
    dl_runs.push_back(run(exp::flid_mode::dl, n, duration, seed + n));
    std::cout << n;
    for (double v : dl_runs.back().individual_kbps) std::cout << " " << v;
    std::cout << "\n";
    dl_avg.emplace_back(n, dl_runs.back().average_kbps);
  }
  std::cout << "\n# Fig 8(b): FLID-DS individual rates (Kbps) per session count\n";
  for (int n : counts) {
    ds_runs.push_back(run(exp::flid_mode::ds, n, duration, seed + 100 + n));
    std::cout << n;
    for (double v : ds_runs.back().individual_kbps) std::cout << " " << v;
    std::cout << "\n";
    ds_avg.emplace_back(n, ds_runs.back().average_kbps);
  }
  std::cout << "\n";
  exp::print_columns(std::cout,
                     "Fig 8(c): average throughput (Kbps) vs #sessions",
                     {"FLID-DL", "FLID-DS"}, {dl_avg, ds_avg});

  // The paper's check: similar averages for DL and DS at every point.
  double worst_gap = 0.0;
  for (std::size_t i = 0; i < dl_avg.size(); ++i) {
    const double gap = std::abs(dl_avg[i].second - ds_avg[i].second) /
                       std::max(dl_avg[i].second, 1.0);
    worst_gap = std::max(worst_gap, gap);
  }
  exp::print_check(std::cout, "max relative DL-vs-DS average gap",
                   "small (curves overlap)", worst_gap, "fraction");
  return 0;
}
