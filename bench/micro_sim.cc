// Microbenchmarks for the simulator substrate: event scheduling throughput
// and end-to-end packet forwarding cost, plus a whole-scenario pps figure.
#include <benchmark/benchmark.h>

#include "exp/testbed.h"
#include "sim/scheduler.h"

using namespace mcc;

static void bm_schedule_and_run(benchmark::State& state) {
  for (auto _ : state) {
    sim::scheduler s;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      s.at(sim::microseconds(i), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_schedule_and_run)->Arg(1000)->Arg(100000);

static void bm_event_cancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::scheduler s;
    std::vector<sim::event_handle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(s.at(sim::microseconds(i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    s.run();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(bm_event_cancellation);

static void bm_tcp_over_dumbbell(benchmark::State& state) {
  // Cost of simulating one second of a saturated 10 Mbps TCP transfer.
  for (auto _ : state) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 10e6;
    exp::testbed d(exp::dumbbell(cfg));
    d.add_tcp_flow();
    d.run_until(sim::seconds(static_cast<double>(state.range(0))));
    benchmark::DoNotOptimize(d.sched().executed_events());
  }
}
BENCHMARK(bm_tcp_over_dumbbell)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

static void bm_flid_ds_session_second(benchmark::State& state) {
  // Cost of simulating one second of a full FLID-DS session (sender, DELTA,
  // SIGMA control plane, receiver, edge enforcement).
  for (auto _ : state) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 10e6;
    exp::testbed d(exp::dumbbell(cfg));
    d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
    d.run_until(sim::seconds(static_cast<double>(state.range(0))));
    benchmark::DoNotOptimize(d.sched().executed_events());
  }
}
BENCHMARK(bm_flid_ds_session_second)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

static void bm_attack_scenario(benchmark::State& state) {
  // The full Figure-7 scenario at 1/10th duration: useful to track the cost
  // of the headline experiment.
  for (auto _ : state) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 1e6;
    exp::testbed d(exp::dumbbell(cfg));
    exp::receiver_options attacker;
    attacker.inflate = true;
    attacker.inflate_at = sim::seconds(10.0);
    d.add_flid_session(exp::flid_mode::ds, {attacker});
    d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
    d.add_tcp_flow();
    d.add_tcp_flow();
    d.run_until(sim::seconds(20.0));
    benchmark::DoNotOptimize(d.sched().executed_events());
  }
}
BENCHMARK(bm_attack_scenario)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
