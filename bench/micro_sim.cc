// Microbenchmarks for the simulator substrate: event scheduling throughput
// (events/sec), multicast fan-out cost (packets/sec), and whole-scenario
// figures. items_per_second in the output is the headline number for the
// first two.
#include <benchmark/benchmark.h>

#include "exp/testbed.h"
#include "sim/network.h"
#include "sim/scheduler.h"

using namespace mcc;

static void bm_schedule_and_run(benchmark::State& state) {
  for (auto _ : state) {
    sim::scheduler s;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      s.at(sim::microseconds(i), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_schedule_and_run)->Arg(1000)->Arg(100000);

static void bm_schedule_cancel_mix(benchmark::State& state) {
  // Timer-heavy workload: every event arms a timer that is cancelled before
  // it fires (the TCP RTO / FLID fallback pattern). The victim is scheduled
  // two ticks later than its canceller so the cancel always hits a pending
  // event, never the stale-handle no-op path.
  for (auto _ : state) {
    sim::scheduler s;
    const auto n = state.range(0);
    for (std::int64_t i = 0; i < n; ++i) {
      const sim::time_ns t = 3 * sim::microseconds(i);
      sim::event_handle h = s.at(t + 2, [] {});
      s.at(t, [h]() mutable { h.cancel(); });
      s.at(t + 1, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 3);
}
BENCHMARK(bm_schedule_cancel_mix)->Arg(30000);

static void bm_event_cancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::scheduler s;
    std::vector<sim::event_handle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(s.at(sim::microseconds(i), [] {}));
    }
    for (auto& h : handles) h.cancel();
    s.run();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(bm_event_cancellation);

static void bm_wheel_vs_heap_pending(benchmark::State& state) {
  // A/B for the --sched policies: hold `pending` events in the queue, then
  // fire them all. Deadlines come from an LCG spread over ~16 s of simulated
  // time so the heap's log(n) sift and the wheel's bucket scan both see a
  // realistic mix; the schedule is identical under either policy. The wheel
  // should pull ahead of the heap once pending counts pass ~100k.
  const auto pending = state.range(0);
  const bool wheel = state.range(1) != 0;
  sim::scheduler_config cfg;
  cfg.policy = wheel ? sim::sched_policy::wheel : sim::sched_policy::heap;
  const auto window = static_cast<std::uint64_t>(sim::seconds(16.0));
  for (auto _ : state) {
    sim::scheduler s(cfg);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::int64_t i = 0; i < pending; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      s.at(static_cast<sim::time_ns>(x % window), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * pending);
  state.SetLabel(wheel ? "wheel" : "heap");
}
BENCHMARK(bm_wheel_vs_heap_pending)
    ->ArgsProduct({{1000, 10000, 100000, 1000000}, {0, 1}});

static void bm_cascade_rollover(benchmark::State& state) {
  // Worst case for the wheel: every deadline sits beyond the top level's
  // rotation (2^42 ns at the default 1024 ns granularity), so firing it
  // costs a far-wheel cascade plus a descent through all four levels.
  // Guards the O(1)-amortized claim where it is weakest.
  sim::scheduler_config cfg;
  cfg.policy = sim::sched_policy::wheel;
  const sim::time_ns span = sim::time_ns{1} << 42;
  const auto n = state.range(0);
  for (auto _ : state) {
    sim::scheduler s(cfg);
    for (std::int64_t i = 0; i < n; ++i) {
      const sim::time_ns rotation = 1 + (i % 64);
      s.at(rotation * span + (i * 977) % span, [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_cascade_rollover)->Arg(50000);

static void bm_multicast_fanout(benchmark::State& state) {
  // Cost of one router fanning a multicast data packet out to N receivers.
  // Packets carry a threshold-DELTA style share payload, so the per-branch
  // copy cost of the header body is part of what is measured.
  const int receivers = static_cast<int>(state.range(0));
  sim::scheduler s;
  sim::network net(s);
  const sim::group_addr group{1};
  const sim::node_id src = net.add_host("src");
  const sim::node_id rtr = net.add_router("rtr");
  sim::link_config fast;
  fast.bps = 1e12;
  fast.delay = sim::microseconds(1);
  auto [up, down] = net.connect(src, rtr, fast);
  (void)down;
  (void)up;
  for (int i = 0; i < receivers; ++i) {
    const sim::node_id h = net.add_host("h" + std::to_string(i));
    auto [fwd, rev] = net.connect(rtr, h, fast);
    (void)rev;
    net.get(h)->host_join(group);
    net.get(rtr)->graft(group, fwd);
  }
  net.finalize_routing();

  constexpr int kBatch = 64;
  sim::flid_data hdr;
  hdr.session_id = 1;
  hdr.group_index = 1;
  std::vector<sim::level_share> shares;
  for (int g = 1; g <= 10; ++g) {
    shares.push_back(sim::level_share{g, 7u, 11u});
  }
  hdr.level_shares = shares;

  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      sim::packet p;
      p.size_bytes = 576;
      p.dst = sim::dest::to_group(group);
      p.hdr = hdr;
      net.get(src)->send(std::move(p));
    }
    s.run();
    benchmark::DoNotOptimize(net.get(rtr)->stats().forwarded_multicast);
  }
  // One item = one fanned-out packet copy delivered to a receiver.
  state.SetItemsProcessed(state.iterations() * kBatch * receivers);
}
BENCHMARK(bm_multicast_fanout)->Arg(4)->Arg(32)->Arg(256);

static void bm_tcp_over_dumbbell(benchmark::State& state) {
  // Cost of simulating one second of a saturated 10 Mbps TCP transfer.
  for (auto _ : state) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 10e6;
    exp::testbed d(exp::dumbbell(cfg));
    d.add_tcp_flow();
    d.run_until(sim::seconds(static_cast<double>(state.range(0))));
    benchmark::DoNotOptimize(d.sched().executed_events());
  }
}
BENCHMARK(bm_tcp_over_dumbbell)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

static void bm_flid_ds_session_second(benchmark::State& state) {
  // Cost of simulating one second of a full FLID-DS session (sender, DELTA,
  // SIGMA control plane, receiver, edge enforcement).
  for (auto _ : state) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 10e6;
    exp::testbed d(exp::dumbbell(cfg));
    d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
    d.run_until(sim::seconds(static_cast<double>(state.range(0))));
    benchmark::DoNotOptimize(d.sched().executed_events());
  }
}
BENCHMARK(bm_flid_ds_session_second)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

static void bm_attack_scenario(benchmark::State& state) {
  // The full Figure-7 scenario at 1/10th duration: useful to track the cost
  // of the headline experiment.
  for (auto _ : state) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 1e6;
    exp::testbed d(exp::dumbbell(cfg));
    exp::receiver_options attacker;
    attacker.inflate = true;
    attacker.inflate_at = sim::seconds(10.0);
    d.add_flid_session(exp::flid_mode::ds, {attacker});
    d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
    d.add_tcp_flow();
    d.add_tcp_flow();
    d.run_until(sim::seconds(20.0));
    benchmark::DoNotOptimize(d.sched().executed_events());
  }
}
BENCHMARK(bm_attack_scenario)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
