// Ablation (section 4.2): key-guessing attack success probability.
//
// A receiver ineligible for a group can flood the edge router with random
// keys; with b-bit keys and y submissions per slot, the success probability
// is y / 2^b. We Monte-Carlo the actual tuple validation against the
// analytic value for several key widths and submission budgets.
#include <cstdio>

#include "core/sigma_wire.h"
#include "crypto/prng.h"
#include "exp/report.h"
#include "util/flags.h"

#include <iostream>

using namespace mcc;

int main(int argc, char** argv) {
  util::flag_set flags("Key-guessing ablation: success probability vs key width");
  flags.add("trials", "200000", "Monte Carlo trials per configuration");
  flags.add("seed", "31", "rng seed");
  if (!flags.parse(argc, argv)) return 1;

  const auto trials = static_cast<int>(flags.i64("trials"));
  crypto::prng rng(static_cast<std::uint64_t>(flags.i64("seed")));

  std::puts("# guessing-attack success probability");
  std::puts("# bits  guesses_per_slot  analytic  measured");
  for (const int bits : {8, 12, 16}) {
    for (const int y : {1, 16, 256}) {
      int hits = 0;
      for (int t = 0; t < trials; ++t) {
        core::key_tuple tuple;
        tuple.top = crypto::mask_to_bits(crypto::group_key{rng.next()}, bits);
        tuple.dec = crypto::mask_to_bits(crypto::group_key{rng.next()}, bits);
        tuple.inc = crypto::mask_to_bits(crypto::group_key{rng.next()}, bits);
        bool hit = false;
        for (int g = 0; g < y && !hit; ++g) {
          hit = tuple.matches(
              crypto::mask_to_bits(crypto::group_key{rng.next()}, bits));
        }
        if (hit) ++hits;
      }
      // Three valid keys per tuple: success per guess is ~3/2^b.
      const double analytic =
          1.0 - std::pow(1.0 - 3.0 / std::pow(2.0, bits), y);
      std::printf("%d %d %.6f %.6f\n", bits, y, analytic,
                  static_cast<double>(hits) / trials);
    }
  }
  exp::print_check(std::cout, "16-bit keys, 256 guesses/slot",
                   "~1.2% success/slot (paper: y/2^b)",
                   100.0 * (1.0 - std::pow(1.0 - 3.0 / 65536.0, 256)), "%");
  return 0;
}
