// Ablation (section 4.2): key-guessing attack success probability.
//
// A receiver ineligible for a group can flood the edge router with random
// keys; with b-bit keys and y submissions per slot, the success probability
// is y / 2^b. We Monte-Carlo the actual tuple validation against the
// analytic value for several key widths and submission budgets; each
// (bits, budget) cell is one sweep grid point with its own PRNG stream.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/sigma_wire.h"
#include "crypto/prng.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "util/flags.h"

using namespace mcc;

int main(int argc, char** argv) {
  util::flag_set flags("Key-guessing ablation: success probability vs key width");
  flags.add("trials", "200000", "Monte Carlo trials per configuration");
  flags.add("seed", "31", "rng seed");
  exp::add_sweep_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  const auto trials = static_cast<int>(flags.i64("trials"));
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  struct cell {
    int bits;
    int y;
  };
  std::vector<cell> cells;
  std::vector<double> xs;
  for (const int bits : {8, 12, 16}) {
    for (const int y : {1, 16, 256}) {
      cells.push_back(cell{bits, y});
      xs.push_back(bits);  // display coordinate: key width
    }
  }

  const auto rows = exp::run_sweep(
      xs, opts, [&](const exp::sweep_point& pt) {
        const auto [bits, y] = cells[pt.index];
        crypto::prng rng(pt.seed);
        int hits = 0;
        for (int t = 0; t < trials; ++t) {
          core::key_tuple tuple;
          tuple.top = crypto::mask_to_bits(crypto::group_key{rng.next()}, bits);
          tuple.dec = crypto::mask_to_bits(crypto::group_key{rng.next()}, bits);
          tuple.inc = crypto::mask_to_bits(crypto::group_key{rng.next()}, bits);
          bool hit = false;
          for (int g = 0; g < y && !hit; ++g) {
            hit = tuple.matches(
                crypto::mask_to_bits(crypto::group_key{rng.next()}, bits));
          }
          if (hit) ++hits;
        }
        // Three valid keys per tuple: success per guess is ~3/2^b.
        exp::sweep_row row;
        row.label = "b" + std::to_string(bits) + "_y" + std::to_string(y);
        row.value("bits", bits);
        row.value("guesses_per_slot", y);
        row.value("analytic",
                  1.0 - std::pow(1.0 - 3.0 / std::pow(2.0, bits), y));
        row.value("measured", static_cast<double>(hits) / trials);
        return row;
      });

  std::puts("# guessing-attack success probability");
  std::puts("# bits  guesses_per_slot  analytic  measured");
  for (const auto& row : rows) {
    std::printf("%d %d %.6f %.6f\n", static_cast<int>(row.value_of("bits")),
                static_cast<int>(row.value_of("guesses_per_slot")),
                row.value_of("analytic"), row.value_of("measured"));
  }
  exp::print_check(std::cout, "16-bit keys, 256 guesses/slot",
                   "~1.2% success/slot (paper: y/2^b)",
                   100.0 * (1.0 - std::pow(1.0 - 3.0 / 65536.0, 256)), "%");
  exp::maybe_write_json(flags, "ablation_key_guessing", rows);
  return 0;
}
