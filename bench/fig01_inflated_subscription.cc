// Figure 1: impact of inflated subscription on FLID-DL.
//
// Two FLID-DL sessions (receivers F1, F2) and two TCP Reno receivers (T1,
// T2) share a 1 Mbps bottleneck; the fair share is 250 Kbps each. At t = 100s
// receiver F1 inflates its subscription in violation of the protocol. The
// paper reports F1 boosted to ~690 Kbps at the expense of F2, T1, T2.
//
// The paper does not state the level F1 inflates to; we default to level 6
// (cumulative rate ~759 Kbps), which reproduces the reported magnitude.
// --inflate_level=0 subscribes to all 10 groups (the strongest attack, which
// starves the competition almost completely).
#include <iostream>

#include "exp/report.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

int main(int argc, char** argv) {
  util::flag_set flags("Figure 1: inflated subscription under FLID-DL");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("inflate_at", "100", "attack start, seconds");
  flags.add("inflate_level", "6", "subscription level the attacker jumps to (0 = all)");
  flags.add("seed", "7", "simulation seed");
  if (!flags.parse(argc, argv)) return 1;

  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = static_cast<std::uint64_t>(flags.i64("seed"));
  exp::testbed d(exp::dumbbell(cfg));

  exp::receiver_options attacker;
  attacker.inflate = true;
  attacker.inflate_at = sim::seconds(flags.f64("inflate_at"));
  attacker.inflate_level = static_cast<int>(flags.i64("inflate_level"));
  auto& f1 = d.add_flid_session(exp::flid_mode::dl, {attacker});
  auto& f2 = d.add_flid_session(exp::flid_mode::dl, {exp::receiver_options{}});
  auto& t1 = d.add_tcp_flow();
  auto& t2 = d.add_tcp_flow();

  const sim::time_ns horizon = sim::seconds(flags.f64("duration"));
  d.run_until(horizon);

  exp::print_series(std::cout, "Fig 1: F1 (misbehaving FLID-DL) Kbps vs s",
                    f1.receiver().monitor().series_kbps());
  exp::print_series(std::cout, "Fig 1: F2 (FLID-DL) Kbps vs s",
                    f2.receiver().monitor().series_kbps());
  exp::print_series(std::cout, "Fig 1: T1 (TCP) Kbps vs s",
                    t1.sink->monitor().series_kbps());
  exp::print_series(std::cout, "Fig 1: T2 (TCP) Kbps vs s",
                    t2.sink->monitor().series_kbps());

  const sim::time_ns t0 = attacker.inflate_at + sim::seconds(10.0);
  exp::print_check(std::cout, "F1 throughput after inflating", "~690",
                   f1.receiver().monitor().average_kbps(t0, horizon), "Kbps");
  exp::print_check(std::cout, "F2 throughput after the attack", "~100 (crushed)",
                   f2.receiver().monitor().average_kbps(t0, horizon), "Kbps");
  exp::print_check(std::cout, "T1 throughput after the attack", "~100 (crushed)",
                   t1.sink->monitor().average_kbps(t0, horizon), "Kbps");
  exp::print_check(std::cout, "T2 throughput after the attack", "~100 (crushed)",
                   t2.sink->monitor().average_kbps(t0, horizon), "Kbps");
  return 0;
}
