// Figure 1: impact of inflated subscription on FLID-DL.
//
// Two FLID-DL sessions (receivers F1, F2) and two TCP Reno receivers (T1,
// T2) share a 1 Mbps bottleneck; the fair share is 250 Kbps each. At t = 100s
// receiver F1 inflates its subscription in violation of the protocol. The
// paper reports F1 boosted to ~690 Kbps at the expense of F2, T1, T2.
//
// The paper does not state the level F1 inflates to; we default to level 6
// (cumulative rate ~759 Kbps), which reproduces the reported magnitude.
// --inflate_level=0 subscribes to all 10 groups (the strongest attack, which
// starves the competition almost completely).
#include <iostream>

#include "adversary/adversary.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 1: inflated subscription under FLID-DL");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("inflate_at", "100", "attack start, seconds");
  flags.add("inflate_level", "6", "subscription level the attacker jumps to (0 = all)");
  flags.add("seed", "7", "simulation seed");
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const double inflate_at_s = flags.f64("inflate_at");
  const int inflate_level = static_cast<int>(flags.i64("inflate_level"));
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  const auto rows = exp::run_sweep(
      {1.0}, opts, [&](const exp::sweep_point& pt) {
        exp::dumbbell_config cfg;
        cfg.sched = g_sched;
        cfg.bottleneck_bps = 1e6;
        cfg.seed = pt.seed;
        exp::testbed d(exp::dumbbell(cfg));

        exp::receiver_options attacker;
        attacker.attack = adversary::inflate_once(
            sim::seconds(inflate_at_s), adversary::key_mode::guess,
            inflate_level);
        auto& f1 = d.add_flid_session(exp::flid_mode::dl, {attacker});
        auto& f2 = d.add_flid_session(exp::flid_mode::dl, {exp::receiver_options{}});
        auto& t1 = d.add_tcp_flow();
        auto& t2 = d.add_tcp_flow();

        const sim::time_ns horizon = sim::seconds(duration);
        d.run_until(horizon);

        const sim::time_ns t0 = attacker.attack.start + sim::seconds(10.0);
        exp::sweep_row row;
        row.label = "fig01";
        row.trace("F1_kbps", f1.receiver().monitor().series_kbps());
        row.trace("F2_kbps", f2.receiver().monitor().series_kbps());
        row.trace("T1_kbps", t1.sink->monitor().series_kbps());
        row.trace("T2_kbps", t2.sink->monitor().series_kbps());
        row.value("F1_after", f1.receiver().monitor().average_kbps(t0, horizon));
        row.value("F2_after", f2.receiver().monitor().average_kbps(t0, horizon));
        row.value("T1_after", t1.sink->monitor().average_kbps(t0, horizon));
        row.value("T2_after", t2.sink->monitor().average_kbps(t0, horizon));
        return row;
      });
  const exp::sweep_row& row = rows.front();

  exp::print_series(std::cout, "Fig 1: F1 (misbehaving FLID-DL) Kbps vs s",
                    *row.trace_of("F1_kbps"));
  exp::print_series(std::cout, "Fig 1: F2 (FLID-DL) Kbps vs s",
                    *row.trace_of("F2_kbps"));
  exp::print_series(std::cout, "Fig 1: T1 (TCP) Kbps vs s",
                    *row.trace_of("T1_kbps"));
  exp::print_series(std::cout, "Fig 1: T2 (TCP) Kbps vs s",
                    *row.trace_of("T2_kbps"));

  exp::print_check(std::cout, "F1 throughput after inflating", "~690",
                   row.value_of("F1_after"), "Kbps");
  exp::print_check(std::cout, "F2 throughput after the attack", "~100 (crushed)",
                   row.value_of("F2_after"), "Kbps");
  exp::print_check(std::cout, "T1 throughput after the attack", "~100 (crushed)",
                   row.value_of("T1_after"), "Kbps");
  exp::print_check(std::cout, "T2 throughput after the attack", "~100 (crushed)",
                   row.value_of("T2_after"), "Kbps");
  exp::maybe_write_json(flags, "fig01_inflated_subscription", rows);
  return 0;
}
