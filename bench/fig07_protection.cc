// Figure 7: protection with DELTA and SIGMA.
//
// Same scenario as Figure 1 but with FLID-DS (FLID-DL + DELTA + SIGMA,
// 250 ms slots): at t = 100 s receiver F1 tries to inflate its subscription
// (claiming the maximal level and flooding random key guesses). The paper
// shows the fair allocation preserved for all four receivers.
#include <array>
#include <cstdio>
#include <iostream>

#include "adversary/adversary.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "obs/trace.h"
#include "sim/stats.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 7: FLID-DS under the inflated-subscription attack");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("inflate_at", "100", "attack start, seconds");
  flags.add("attack-keys", "guess",
            "how unprovable layers are backed: best_effort|replay|guess");
  flags.add("seed", "7", "simulation seed");
  exp::add_interface_keying_flag(flags);
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const double inflate_at_s = flags.f64("inflate_at");
  const adversary::key_mode keys =
      adversary::key_mode_from_flag(flags.str("attack-keys"));
  // Off (the paper's setup) unless asked for. This is a single-scenario
  // figure, so the axis spelling "both" would silently pick one value —
  // reject it with the usual friendly flag UX instead.
  const auto keying_axis = exp::interface_keying_axis_from_flags(flags);
  if (keying_axis.size() > 1) {
    std::fprintf(stderr,
                 "bad value for --interface-keying: 'both' (this bench runs "
                 "one scenario; use off or on)\n");
    return 1;
  }
  const bool keying = keying_axis.front();
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));
  const bool tracing = exp::trace_requested(flags);
  const bool profiling = exp::profile_requested(flags);

  exp::sweep_profile prof;
  const auto rows = exp::run_sweep(
      {1.0}, opts,
      [&](const exp::sweep_point& pt) {
        // Install the point's trace sink before the world is built: engine
        // components latch the sink at construction.
        obs::trace_buffer tb;
        obs::trace_scope scope(tracing ? &tb : nullptr);
        exp::dumbbell_config cfg;
        cfg.sched = g_sched;
        cfg.bottleneck_bps = 1e6;
        cfg.seed = pt.seed;
        cfg.interface_keying = keying;
        exp::testbed d(exp::dumbbell(cfg));

        exp::receiver_options attacker;
        attacker.attack =
            adversary::inflate_once(sim::seconds(inflate_at_s), keys);
        auto& f1 = d.add_flid_session(exp::flid_mode::ds, {attacker});
        auto& f2 = d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
        auto& t1 = d.add_tcp_flow();
        auto& t2 = d.add_tcp_flow();

        const sim::time_ns horizon = sim::seconds(duration);
        d.run_until(horizon);

        const sim::time_ns t0 = attacker.attack.start + sim::seconds(10.0);
        exp::sweep_row row;
        row.label = "fig07";
        row.trace("F1_kbps", f1.receiver().monitor().series_kbps());
        row.trace("F2_kbps", f2.receiver().monitor().series_kbps());
        row.trace("T1_kbps", t1.sink->monitor().series_kbps());
        row.trace("T2_kbps", t2.sink->monitor().series_kbps());
        const std::array<double, 4> rates = {
            f1.receiver().monitor().average_kbps(t0, horizon),
            f2.receiver().monitor().average_kbps(t0, horizon),
            t1.sink->monitor().average_kbps(t0, horizon),
            t2.sink->monitor().average_kbps(t0, horizon)};
        row.value("F1_after", rates[0]);
        row.value("F2_after", rates[1]);
        row.value("T1_after", rates[2]);
        row.value("T2_after", rates[3]);
        row.value("fairness", sim::jain_fairness_index(rates));
        row.value("invalid_keys",
                  static_cast<double>(d.sigma().stats().invalid_keys));
        row.metrics = d.metrics().snapshot();
        if (tracing) row.trace_blob = tb.serialize();
        return row;
      },
      profiling ? &prof : nullptr);
  const exp::sweep_row& row = rows.front();

  exp::print_series(std::cout, "Fig 7: F1 (misbehaving FLID-DS) Kbps vs s",
                    *row.trace_of("F1_kbps"));
  exp::print_series(std::cout, "Fig 7: F2 (FLID-DS) Kbps vs s",
                    *row.trace_of("F2_kbps"));
  exp::print_series(std::cout, "Fig 7: T1 (TCP) Kbps vs s",
                    *row.trace_of("T1_kbps"));
  exp::print_series(std::cout, "Fig 7: T2 (TCP) Kbps vs s",
                    *row.trace_of("T2_kbps"));

  exp::print_check(std::cout, "F1 after attempting to inflate",
                   "fair (~250, attack has no effect)", row.value_of("F1_after"),
                   "Kbps");
  exp::print_check(std::cout, "F2 after the attack", "fair (~250)",
                   row.value_of("F2_after"), "Kbps");
  exp::print_check(std::cout, "Jain fairness across F1,F2,T1,T2",
                   "high (allocation preserved)", row.value_of("fairness"), "");
  exp::print_check(std::cout, "invalid keys rejected by SIGMA", "> 0",
                   row.value_of("invalid_keys"), "");
  exp::maybe_write_json(flags, "fig07_protection", rows,
                        profiling ? &prof : nullptr);
  exp::maybe_write_trace(flags, rows);
  return 0;
}
