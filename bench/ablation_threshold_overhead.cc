// Ablation: per-packet key-distribution cost, XOR DELTA vs threshold DELTA.
//
// The paper notes that Shamir's scheme "does not enable a reuse of the
// components from lower subscription levels and, therefore, has high
// communication overhead" in layered sessions (section 3.1.2), and leaves
// efficient threshold schemes as an open problem. This bench quantifies the
// gap: XOR DELTA costs at most 2b bits per packet regardless of the session
// size; threshold DELTA costs one share (~61-bit y value) per level the
// packet belongs to, i.e. up to N shares on base-layer packets.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

int main(int argc, char** argv) {
  util::flag_set flags("Threshold-vs-XOR DELTA per-packet overhead");
  flags.add("key_bits", "16", "XOR DELTA key width b");
  flags.add("share_bits", "61", "threshold share size (GF(2^61-1) y value)");
  flags.add("packet_data_bits", "4000", "data payload per packet");
  exp::add_sweep_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  const double b = flags.f64("key_bits");
  const double share = flags.f64("share_bits");
  const double s_bits = flags.f64("packet_data_bits");
  const auto opts = exp::sweep_options_from_flags(flags, 0);

  std::vector<double> xs;
  for (int n = 2; n <= 20; n += 2) xs.push_back(n);

  // Analytic model only — no simulation — but still sweep-driven so the
  // table parallelizes and serializes like every other bench.
  const auto rows = exp::run_sweep(
      xs, opts, [&](const exp::sweep_point& pt) {
        const int n = static_cast<int>(pt.x);
        // Packet population: group rates of the paper's session (r = 100
        // Kbps, R = 4 Mbps, m^(N-1) = 40): group j's share of packets equals
        // its share of the session rate.
        const double m = std::pow(40.0, 1.0 / (n - 1));
        double total_rate = 0.0;
        std::vector<double> group_rate(static_cast<std::size_t>(n) + 1, 0.0);
        for (int j = 1; j <= n; ++j) {
          const double cum_j = 100e3 * std::pow(m, j - 1);
          const double cum_below = j > 1 ? 100e3 * std::pow(m, j - 2) : 0.0;
          group_rate[static_cast<std::size_t>(j)] = cum_j - cum_below;
          total_rate += group_rate[static_cast<std::size_t>(j)];
        }
        // XOR DELTA: component (b) on every packet, decrease (b) on groups
        // >= 2. Threshold DELTA: (N - j + 1) shares on a group-j packet.
        double xor_bits = 0.0;
        double thr_bits = 0.0;
        for (int j = 1; j <= n; ++j) {
          const double frac =
              group_rate[static_cast<std::size_t>(j)] / total_rate;
          xor_bits += frac * (b + (j >= 2 ? b : 0.0));
          thr_bits += frac * share * (n - j + 1);
        }
        exp::sweep_row row;
        row.value("xor_bits", xor_bits);
        row.value("xor_pct", 100.0 * xor_bits / s_bits);
        row.value("threshold_bits", thr_bits);
        row.value("threshold_pct", 100.0 * thr_bits / s_bits);
        row.value("ratio", thr_bits / xor_bits);
        return row;
      });

  std::cout << "# average per-packet key-distribution bits and overhead\n"
               "# N  xor_bits  xor_pct  threshold_bits  threshold_pct  ratio\n";
  for (const auto& row : rows) {
    std::printf("%d %.1f %.3f %.1f %.3f %.1fx\n", static_cast<int>(row.x),
                row.value_of("xor_bits"), row.value_of("xor_pct"),
                row.value_of("threshold_bits"), row.value_of("threshold_pct"),
                row.value_of("ratio"));
  }
  exp::print_check(std::cout, "XOR DELTA per-packet cost",
                   "<= 2b bits (paper: ~0.8% of data)", 2 * b, "bits");
  std::cout << "# threshold DELTA pays an order of magnitude more on small\n"
               "# sessions and grows with N on the base layer - the paper's\n"
               "# open problem, quantified.\n";
  exp::maybe_write_json(flags, "ablation_threshold_overhead", rows);
  return 0;
}
