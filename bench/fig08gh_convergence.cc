// Figure 8(g)/(h): subscription convergence.
//
// One multicast session with four receivers behind the same bottleneck,
// joining at t = 0, 10, 20, 30 s. The paper shows all receivers converging
// to the same fair subscription, both in FLID-DL (g) and FLID-DS (h).
#include <iostream>
#include <string>
#include <vector>

#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(g)/(h): subscription convergence with staggered joins");
  flags.add("duration", "40", "experiment length, seconds");
  flags.add("seed", "23", "simulation seed");
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  // Grid: one point per panel (x = 0: FLID-DL panel g, x = 1: FLID-DS panel h).
  const auto rows = exp::run_sweep(
      {0.0, 1.0}, opts, [&](const exp::sweep_point& pt) {
        const auto mode =
            pt.index == 0 ? exp::flid_mode::dl : exp::flid_mode::ds;
        exp::dumbbell_config cfg;
        cfg.sched = g_sched;
        cfg.bottleneck_bps = 250e3;
        cfg.seed = pt.seed;
        exp::testbed d(exp::dumbbell(cfg));
        std::vector<exp::receiver_options> receivers(4);
        for (int i = 0; i < 4; ++i) {
          receivers[static_cast<std::size_t>(i)].start_time =
              sim::seconds(10.0 * i);
        }
        auto& session = d.add_flid_session(mode, receivers);
        d.run_until(sim::seconds(duration));

        exp::sweep_row row;
        row.label = pt.index == 0 ? "FLID-DL" : "FLID-DS";
        for (int i = 0; i < 4; ++i) {
          row.trace("receiver" + std::to_string(i + 1),
                    session.receivers[static_cast<std::size_t>(i)]
                        ->monitor()
                        .series_kbps(sim::milliseconds(3000)));
        }
        bool converged = true;
        const int reference = session.receiver(0).level();
        for (int i = 1; i < 4; ++i) {
          if (session.receiver(i).level() != reference) converged = false;
        }
        row.value("converged", converged ? 1.0 : 0.0);
        row.value("final_level", reference);
        return row;
      });

  for (std::size_t m = 0; m < rows.size(); ++m) {
    const exp::sweep_row& row = rows[m];
    const char* panel = m == 0 ? "g" : "h";
    for (int i = 1; i <= 4; ++i) {
      exp::print_series(std::cout,
                        std::string("Fig 8(") + panel + "): receiver " +
                            std::to_string(i) + " Kbps vs s (" + row.label + ")",
                        *row.trace_of("receiver" + std::to_string(i)), 0.0,
                        duration);
    }
    exp::print_check(std::cout,
                     std::string("Fig 8(") + panel + ") receivers at same level",
                     "yes (converged)", row.value_of("converged"), "(1 = yes)");
    std::cout << "\n";
  }
  exp::maybe_write_json(flags, "fig08gh_convergence", rows);
  return 0;
}
