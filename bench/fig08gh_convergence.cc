// Figure 8(g)/(h): subscription convergence.
//
// One multicast session with four receivers behind the same bottleneck,
// joining at t = 0, 10, 20, 30 s. The paper shows all receivers converging
// to the same fair subscription, both in FLID-DL (g) and FLID-DS (h).
#include <iostream>
#include <vector>

#include "exp/report.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {

void run(exp::flid_mode mode, const char* panel, double duration_s,
         std::uint64_t seed) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 250e3;
  cfg.seed = seed;
  exp::testbed d(exp::dumbbell(cfg));
  std::vector<exp::receiver_options> receivers(4);
  for (int i = 0; i < 4; ++i) {
    receivers[static_cast<std::size_t>(i)].start_time = sim::seconds(10.0 * i);
  }
  auto& session = d.add_flid_session(mode, receivers);
  d.run_until(sim::seconds(duration_s));

  for (int i = 0; i < 4; ++i) {
    exp::print_series(
        std::cout,
        std::string("Fig 8(") + panel + "): receiver " + std::to_string(i + 1) +
            " Kbps vs s (" + (mode == exp::flid_mode::dl ? "FLID-DL" : "FLID-DS") + ")",
        session.receivers[static_cast<std::size_t>(i)]->monitor().series_kbps(
            sim::milliseconds(3000)),
        0.0, duration_s);
  }
  // Convergence check: final levels equal.
  bool converged = true;
  const int reference = session.receiver(0).level();
  for (int i = 1; i < 4; ++i) {
    if (session.receiver(i).level() != reference) converged = false;
  }
  exp::print_check(std::cout,
                   std::string("Fig 8(") + panel + ") receivers at same level",
                   "yes (converged)", converged ? 1.0 : 0.0, "(1 = yes)");
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(g)/(h): subscription convergence with staggered joins");
  flags.add("duration", "40", "experiment length, seconds");
  flags.add("seed", "23", "simulation seed");
  if (!flags.parse(argc, argv)) return 1;
  run(exp::flid_mode::dl, "g", flags.f64("duration"),
      static_cast<std::uint64_t>(flags.i64("seed")));
  run(exp::flid_mode::ds, "h", flags.f64("duration"),
      static_cast<std::uint64_t>(flags.i64("seed")) + 1);
  return 0;
}
