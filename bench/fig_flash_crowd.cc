// Flash crowd at scale: aggregated receiver populations x topology x queue
// discipline x attack, the million-receiver sweep the population subsystem
// exists for.
//
// Each cell builds one testbed and attaches a single FLID session whose
// honest audience is a population::edge_aggregate — up to 10^6 members held
// as a count-per-layer histogram behind one delegate receiver — plus,
// in attack cells, ONE individually simulated adversary hiding at the same
// edge, and a TCP victim over the full path. The population undergoes a
// flash-crowd join storm at --flash-at (a --flash-frac multiple of the base
// size joins in a single slot); the adversary strikes at --attack-at.
//
// Reported per cell:
//
//   population           configured member count (the grid axis)
//   peak_members         members at the churn peak (base + flash crowd)
//   member_kbps          mean per-member goodput after the attack settles —
//                        the honest reference containment is judged against
//   aggregate_state_bytes  memory footprint of ALL member state; the
//                        O(interfaces)-not-O(receivers) claim is the
//                        assertion that this column does not grow with the
//                        population axis
//   events / events_per_sim_sec  scheduler events executed, total and per
//                        simulated second — the work metric, deterministic
//                        (wall-clock never enters rows, so --jobs N and
//                        rolling baselines stay byte-identical)
//   attacker_* / contained / ttc_s  adversary::containment_report for the
//                        hidden adversary, costs byte-priced as in
//                        fig_attack_matrix
//
// Under --mode=ds the expectation is containment even at 10^6: SIGMA holds
// the one misbehaving receiver near the honest per-member share while the
// aggregate rides through the flash crowd untouched. --probation-memory=on
// (or both) additionally prices the router-memory countermeasure's false
// positives: fp_block_rate is the fraction of admissions at the population's
// edge that hit a remembered probation debt, and the CHECK pins it below 2%
// — honest leave/rejoin must ride through the memory window unblocked.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/containment.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "obs/trace.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

namespace {

/// Every topology's contested links run at this rate; the containment
/// bound's fair-share floor is derived from it below.
constexpr double path_bps = 1e6;

struct site_plan {
  std::string population;  // edge the aggregate sits behind
  std::string attacker;    // edge the hidden adversary attaches to
};

struct cell {
  std::int64_t members = 0;
  std::string topo;
  sim::qdisc queue;
  std::string attack;  // "none" or an adversary strategy name
  int memory = 0;      // probation-memory window, slots (0 = off)
};

exp::testbed_config make_config(const std::string& topo, std::uint64_t seed,
                                sim::qdisc queue, const sim::aqm_config& aqm_in,
                                int memory, site_plan& sites) {
  sim::aqm_config aqm = aqm_in;
  aqm.discipline = queue;
  if (topo == "dumbbell") {
    exp::dumbbell_config cfg;
    cfg.sched = g_sched;
    cfg.bottleneck_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.probation_memory_slots = memory;
    sites = {"r", "r"};
    return exp::dumbbell(cfg);
  }
  if (topo == "parking_lot") {
    exp::parking_lot_config cfg;
    cfg.sched = g_sched;
    cfg.bottlenecks = 2;
    cfg.bottleneck_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.probation_memory_slots = memory;
    sites = {"r2", "r2"};
    return exp::parking_lot(cfg);
  }
  if (topo == "star") {
    exp::star_config cfg;
    cfg.sched = g_sched;
    cfg.spoke_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.probation_memory_slots = memory;
    sites = {"s1", "s1"};
    return exp::star(cfg);
  }
  if (topo == "tree") {
    exp::tree_config cfg;
    cfg.sched = g_sched;
    cfg.depth = 2;
    cfg.fanout = 2;
    cfg.edge_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.probation_memory_slots = memory;
    // The adversary hides on a sibling leaf: it shares the contested
    // root->t1_0 edge with the population and splits below it.
    sites = {"t2_0", "t2_1"};
    return exp::balanced_tree(cfg);
  }
  std::fprintf(stderr,
               "bad value for --topos: '%s' (expected dumbbell, parking_lot, "
               "star, tree, a comma list, or all)\n",
               topo.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags(
      "Flash crowd at scale: population x topology x qdisc x attack");
  // Timing mirrors fig_attack_matrix: inflate_once on droptail needs ~60 s
  // after onset before the smoothed containment scan settles under the
  // bound, so the attack window must be comfortably longer than that.
  flags.add("duration", "120", "experiment length, seconds");
  flags.add("flash-at", "30", "flash-crowd onset, seconds");
  flags.add("flash-frac", "1.0",
            "flash-crowd size as a fraction of the base population");
  flags.add("attack-at", "40", "attack onset, seconds");
  flags.add("attacks", "none,inflate_once",
            "comma list of none|inflate_once|pulse_inflate|churn_flap|"
            "deaf_receiver");
  flags.add("topos", "dumbbell,tree",
            "comma list of dumbbell|parking_lot|star|tree, or all");
  flags.add("mode", "ds", "protocol world: ds (SIGMA-protected) or dl (plain)");
  flags.add("attack-keys", "guess",
            "key mode for inflate_once/pulse_inflate: best_effort|replay|guess");
  flags.add("seed", "11", "simulation seed");
  exp::add_population_flags(flags, "1000,1000000");
  exp::add_probation_memory_flag(flags, "off");
  exp::add_aqm_flags(flags);
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const double attack_at_s = flags.f64("attack-at");
  const double flash_at_s = flags.f64("flash-at");
  const double flash_frac = flags.f64("flash-frac");
  if (duration <= attack_at_s + 10.0) {
    std::fprintf(stderr,
                 "bad value for --duration/--attack-at: %g/%g (need duration "
                 "> attack-at + 10 s so the containment window is non-empty)\n",
                 duration, attack_at_s);
    return 1;
  }
  if (flash_at_s < 0.0 || flash_at_s >= duration) {
    std::fprintf(stderr,
                 "bad value for --flash-at: %g (expected within [0, duration))\n",
                 flash_at_s);
    return 1;
  }
  if (flash_frac < 0.0) {
    std::fprintf(stderr,
                 "bad value for --flash-frac: %g (expected >= 0)\n",
                 flash_frac);
    return 1;
  }
  const std::string mode_name = flags.str("mode");
  if (mode_name != "ds" && mode_name != "dl") {
    std::fprintf(stderr, "bad value for --mode: '%s' (expected ds or dl)\n",
                 mode_name.c_str());
    return 1;
  }
  const exp::flid_mode mode =
      mode_name == "ds" ? exp::flid_mode::ds : exp::flid_mode::dl;
  const adversary::key_mode keys =
      adversary::key_mode_from_flag(flags.str("attack-keys"));

  std::vector<std::string> attacks = util::split_csv(flags.str("attacks"));
  for (const std::string& name : attacks) {
    if (name == "none") continue;
    const auto k = adversary::strategy_from_name(name);
    if (!k.has_value() || *k == adversary::strategy_kind::honest) {
      std::fprintf(stderr,
                   "bad value for --attacks: '%s' (expected none, "
                   "inflate_once, pulse_inflate, churn_flap, deaf_receiver, "
                   "or a comma list)\n",
                   name.c_str());
      return 1;
    }
  }
  const std::vector<std::string> topos =
      flags.str("topos") == "all"
          ? std::vector<std::string>{"dumbbell", "parking_lot", "star", "tree"}
          : util::split_csv(flags.str("topos"));
  const std::vector<sim::qdisc> qdiscs = exp::qdisc_list_from_flags(flags);
  const sim::aqm_config aqm_base = exp::aqm_config_from_flags(flags);
  const std::vector<std::int64_t> populations =
      exp::population_axis_from_flags(flags);
  const population::population_config pop_base =
      exp::population_config_from_flags(flags);
  std::vector<int> memories = exp::probation_memory_axis_from_flags(flags);
  if (mode == exp::flid_mode::dl &&
      (memories.size() > 1 || memories.front() != 0)) {
    // No SIGMA router in the plain world; the axis would duplicate cells.
    std::fprintf(stderr,
                 "note: --probation-memory has no effect under --mode=dl; "
                 "running the axis off\n");
    memories = {0};
  }

  std::vector<cell> cells;
  for (const std::int64_t n : populations) {
    for (const std::string& t : topos) {
      // Validate topology names up front (before worker threads).
      site_plan probe;
      (void)make_config(t, 1, sim::qdisc::droptail, aqm_base, 0, probe);
      for (const sim::qdisc q : qdiscs) {
        for (const std::string& a : attacks) {
          for (const int m : memories) cells.push_back({n, t, q, a, m});
        }
      }
    }
  }

  std::vector<double> xs(cells.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  const sim::time_ns attack_at = sim::seconds(attack_at_s);
  const sim::time_ns horizon = sim::seconds(duration);
  const bool tracing = exp::trace_requested(flags);
  const bool profiling = exp::profile_requested(flags);

  exp::sweep_profile prof;
  const auto rows = exp::run_sweep(
      xs, opts,
      [&](const exp::sweep_point& pt) {
    const cell& c = cells[pt.index];
    // The sink must be installed before the testbed builds its world: links
    // and agents latch the per-point trace buffer at construction.
    obs::trace_buffer tb;
    obs::trace_scope scope(tracing ? &tb : nullptr);
    site_plan sites;
    exp::testbed d(
        make_config(c.topo, pt.seed, c.queue, aqm_base, c.memory, sites));

    // One session: the aggregated honest audience plus, in attack cells, one
    // individually simulated adversary hiding at the same contested path.
    std::vector<exp::receiver_options> rogues;
    if (c.attack != "none") {
      exp::receiver_options attacker;
      attacker.at = sites.attacker;
      const auto kind = *adversary::strategy_from_name(c.attack);
      switch (kind) {
        case adversary::strategy_kind::inflate_once:
          attacker.attack = adversary::inflate_once(attack_at, keys);
          break;
        case adversary::strategy_kind::pulse_inflate:
          attacker.attack = adversary::pulse_inflate(
              attack_at, sim::seconds(5.0), sim::seconds(5.0), keys);
          break;
        case adversary::strategy_kind::churn_flap:
          attacker.attack = adversary::churn_flap(attack_at, 1);
          break;
        case adversary::strategy_kind::deaf_receiver:
          attacker.attack = adversary::deaf_receiver(attack_at);
          break;
        default:
          util::require(false, "fig_flash_crowd: unhandled strategy",
                        c.attack);
      }
      rogues.push_back(attacker);
    }
    auto& session = d.add_flid_session(mode, rogues);

    exp::population_options popts;
    popts.at = sites.population;
    popts.population = pop_base;
    popts.population.initial_members = c.members;
    if (popts.population.churn.flash_at < 0) {
      // --churn didn't script a flash: the bench's own storm, scaled to the
      // cell's population size.
      popts.population.churn.flash_at = sim::seconds(flash_at_s);
      popts.population.churn.flash_members = static_cast<std::int64_t>(
          flash_frac * static_cast<double>(c.members));
    }
    auto& pop = d.add_population(session, popts);
    auto& tcp = d.add_tcp_flow();
    d.run_until(horizon);

    const auto& agg = *pop.aggregate;
    exp::sweep_row row;
    // Memory cells carry a "/mem" suffix; plain labels stay as before so
    // cross-commit baseline diffs keep matching the historical rows.
    row.label = c.topo + "/" + std::string(sim::qdisc_name(c.queue)) +
                "/pop" + std::to_string(c.members) + "/" + c.attack +
                (c.memory > 0 ? "/mem" : "");
    row.value("population", static_cast<double>(c.members));
    row.value("probation_memory", static_cast<double>(c.memory));
    row.value("attacked", c.attack != "none" ? 1.0 : 0.0);
    row.value("peak_members", static_cast<double>(agg.stats().peak_members));
    row.value("flash_arrivals",
              static_cast<double>(agg.stats().flash_arrivals));
    row.value("aggregate_state_bytes",
              static_cast<double>(agg.state_bytes()));
    row.value("events", static_cast<double>(d.sched().executed_events()));
    row.value("events_per_sim_sec",
              static_cast<double>(d.sched().executed_events()) / duration);

    const sim::time_ns settle = sim::seconds(5.0);
    row.value("member_kbps",
              agg.member_monitor().average_kbps(attack_at + settle, horizon));
    row.value("delegate_kbps",
              pop.delegate->monitor().average_kbps(attack_at + settle,
                                                   horizon));
    row.value("delegate_level",
              static_cast<double>(pop.delegate->level()));
    row.value("tcp_kbps",
              tcp.sink->monitor().average_kbps(attack_at + settle, horizon));
    // Edge control-plane pressure where the population sits: O(groups) per
    // slot however many members the aggregate holds.
    row.value("edge_igmp_joins",
              static_cast<double>(d.igmp(sites.population).stats().joins));
    row.value("edge_igmp_leaves",
              static_cast<double>(d.igmp(sites.population).stats().leaves));
    if (mode == exp::flid_mode::ds) {
      // The honest leave/rejoin false-positive price of probation memory at
      // the population's edge (0 while the memory is off).
      const auto& edge = d.sigma(sites.population).stats();
      row.value("fp_block_rate", adversary::memory_block_rate(edge));
      row.value("edge_memory_refusals",
                static_cast<double>(edge.memory_refusals));
      row.value("edge_memory_inherits",
                static_cast<double>(edge.memory_inherits));
    }

    if (c.attack != "none") {
      adversary::containment_config ccfg;
      ccfg.attack_start = attack_at;
      ccfg.horizon = horizon;
      // The session, its hidden adversary, and TCP share the path; the
      // fair-share floor keeps the bound honest if members are damaged.
      ccfg.floor_kbps = path_bps / 1e3 / 3.0;
      // The honest reference is the aggregate's mean per-member goodput:
      // exactly what a well-behaved subscriber at this edge receives.
      const std::vector<const sim::throughput_monitor*> honest = {
          &agg.member_monitor(), &tcp.sink->monitor()};
      const std::vector<const sim::throughput_monitor*> reference = {
          &agg.member_monitor()};
      adversary::containment_report rep = adversary::measure_containment(
          session.receiver(0).monitor(), honest, reference, ccfg);
      adversary::attach_cost(rep, adversary::measure_cost(session.receiver(0)));
      row.value("attacker_kbps", rep.attacker_kbps);
      row.value("attacker_share", rep.attacker_share);
      row.value("honest_damage", rep.honest_damage);
      row.value("contained", rep.contained ? 1.0 : 0.0);
      row.value("ttc_s", rep.contained ? rep.time_to_containment_s : -1.0);
      row.value("bound_kbps", rep.containment_bound_kbps);
      row.value("cost_msgs", static_cast<double>(rep.cost.ctrl_msgs));
      row.value("cost_bytes", static_cast<double>(rep.cost.ctrl_bytes));
      row.value("profit_kbps_per_kb", rep.profit_kbps_per_kb);
    }

    row.trace("member_kbps_series", agg.member_monitor().series_kbps());
    row.trace("delegate_kbps_series", pop.delegate->monitor().series_kbps());
    row.metrics = d.metrics().snapshot();
    if (tracing) row.trace_blob = tb.serialize();
    return row;
  },
      profiling ? &prof : nullptr);

  std::printf("# flash crowd (%s): topo/qdisc/pop/attack\n",
              mode_name.c_str());
  std::printf("# %-40s %10s %12s %11s %12s %9s %8s\n", "cell", "peak",
              "state_bytes", "member_kbps", "events/sims", "atk_share",
              "ttc_s");
  for (const auto& row : rows) {
    std::printf("  %-40s %10.0f %12.0f %11.2f %12.0f %9.3f %8.1f\n",
                row.label.c_str(), row.value_of("peak_members"),
                row.value_of("aggregate_state_bytes"),
                row.value_of("member_kbps"),
                row.value_of("events_per_sim_sec"),
                row.value_of("attacker_share"), row.value_of("ttc_s"));
  }

  // O(interfaces) state: across cells that differ only in population size,
  // the aggregate's member-state footprint must not grow.
  bool state_flat = true;
  for (const auto& a : rows) {
    for (const auto& b : rows) {
      const auto suffix = [](const std::string& label) {
        // topo/qdisc/popN/attack -> topo/qdisc + attack
        const std::size_t p = label.find("/pop");
        const std::size_t q = label.find('/', p + 1);
        return label.substr(0, p) + label.substr(q);
      };
      if (suffix(a.label) != suffix(b.label)) continue;
      if (a.value_of("aggregate_state_bytes") !=
          b.value_of("aggregate_state_bytes")) {
        state_flat = false;
      }
    }
  }
  exp::print_check(std::cout, "aggregate state independent of population size",
                   "O(interfaces), not O(receivers)", state_flat ? 1.0 : 0.0,
                   "(1 = flat across the population axis)");

  if (mode == exp::flid_mode::ds) {
    int attacked = 0;
    int held = 0;
    for (const auto& row : rows) {
      if (row.value_of("attacked") < 0.5) continue;
      ++attacked;
      if (row.value_of("contained") > 0.5) ++held;
    }
    if (attacked > 0) {
      exp::print_check(std::cout,
                       "adversary contained among aggregated honest members",
                       "all attack cells", static_cast<double>(held),
                       "of " + std::to_string(attacked));
    }
    // Probation memory must not tax the honest crowd: across every
    // memory-on cell the population edge's remembered-debt hit rate stays
    // under 2% of admission attempts.
    int memory_cells = 0;
    int cheap = 0;
    for (const auto& row : rows) {
      if (row.value_of("probation_memory") == 0.0) continue;
      ++memory_cells;
      if (row.value_of("fp_block_rate") < 0.02) ++cheap;
    }
    if (memory_cells > 0) {
      exp::print_check(std::cout,
                       "honest leave/rejoin FP block rate < 2% under memory",
                       "all memory cells", static_cast<double>(cheap),
                       "of " + std::to_string(memory_cells));
    }
  }
  exp::maybe_write_json(flags, "fig_flash_crowd", rows,
                        profiling ? &prof : nullptr);
  exp::maybe_write_trace(flags, rows);
  return 0;
}
