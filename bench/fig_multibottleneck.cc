// Multi-bottleneck extension: inflated subscription on a parking-lot path.
//
// Not a paper figure — the first scenario the topology-agnostic testbed can
// express that the hard-wired dumbbell could not. A FLID session is sourced
// at r0 of a k=2 parking lot (two 1 Mbps bottlenecks in series) with two
// receivers of the SAME session: an honest one behind the first bottleneck
// (edge r1) and a misbehaving one behind the second (edge r2). TCP crosses
// the full path and per-segment TCP cross traffic loads each bottleneck.
//
// The attack inflates at t = 100 s. Under FLID-DL (plain IGMP) the far
// receiver's inflation drags the shared tree up: the extra layers cross BOTH
// bottlenecks, so even the near (honest, congestion-respecting) receiver's
// segment is collateral damage. Under FLID-DS the far edge router (r2)
// refuses the unearned layers, the tree above the split never carries them,
// and both segments keep their fair allocations — multicast containment is
// per edge, exactly as paper section 3.2 promises.
#include <array>
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "sim/stats.h"
#include "util/flags.h"

using namespace mcc;

namespace {

exp::sweep_row run(exp::flid_mode mode, double duration_s, double inflate_at_s,
                   std::uint64_t seed) {
  exp::parking_lot_config cfg;
  cfg.bottlenecks = 2;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = seed;
  exp::testbed d(exp::parking_lot(cfg));

  exp::receiver_options honest_near;
  honest_near.at = "r1";
  exp::receiver_options attacker_far;
  attacker_far.at = "r2";
  attacker_far.inflate = true;
  attacker_far.inflate_at = sim::seconds(inflate_at_s);
  attacker_far.inflate_level = 0;  // all groups: the strongest attack
  auto& session = d.add_flid_session(mode, {honest_near, attacker_far});

  // TCP over the whole path plus one flow per segment, so each bottleneck
  // has its own unicast victim.
  auto& tcp_full = d.add_tcp_flow();  // r0 -> r2 (both bottlenecks)
  exp::flow_options seg1;
  seg1.src_at = "r0";
  seg1.dst_at = "r1";
  auto& tcp_seg1 = d.add_tcp_flow(seg1);
  exp::flow_options seg2;
  seg2.src_at = "r1";
  seg2.dst_at = "r2";
  auto& tcp_seg2 = d.add_tcp_flow(seg2);

  const sim::time_ns horizon = sim::seconds(duration_s);
  d.run_until(horizon);

  exp::sweep_row row;
  const sim::time_ns t0 = sim::seconds(inflate_at_s + 10.0);
  const double honest = session.receiver(0).monitor().average_kbps(t0, horizon);
  const double attacker =
      session.receiver(1).monitor().average_kbps(t0, horizon);
  const double tcp_full_kbps = tcp_full.sink->monitor().average_kbps(t0, horizon);
  const double tcp_seg2_kbps = tcp_seg2.sink->monitor().average_kbps(t0, horizon);
  row.value("honest_near_kbps", honest);
  row.value("attacker_far_kbps", attacker);
  row.value("tcp_full_path_kbps", tcp_full_kbps);
  row.value("tcp_seg1_kbps", tcp_seg1.sink->monitor().average_kbps(t0, horizon));
  row.value("tcp_seg2_kbps", tcp_seg2_kbps);
  const std::array<double, 4> rates = {honest, attacker, tcp_full_kbps,
                                       tcp_seg2_kbps};
  row.value("fairness", sim::jain_fairness_index(rates));
  row.value("invalid_keys_far",
            static_cast<double>(d.sigma("r2").stats().invalid_keys));
  return row;
}

void print(const char* title, const exp::sweep_row& w) {
  std::cout << "# " << title << "\n";
  std::printf("honest (behind bottleneck 1)   : %7.1f Kbps\n",
              w.value_of("honest_near_kbps"));
  std::printf("attacker (behind bottleneck 2) : %7.1f Kbps\n",
              w.value_of("attacker_far_kbps"));
  std::printf("TCP r0->r2 (both bottlenecks)  : %7.1f Kbps\n",
              w.value_of("tcp_full_path_kbps"));
  std::printf("TCP r0->r1 / r1->r2            : %7.1f / %7.1f Kbps\n",
              w.value_of("tcp_seg1_kbps"), w.value_of("tcp_seg2_kbps"));
  std::printf("fairness index                 : %7.2f\n\n",
              w.value_of("fairness"));
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags(
      "Parking-lot extension: inflated subscription across two bottlenecks");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("inflate_at", "100", "attack start, seconds");
  flags.add("seed", "47", "simulation seed");
  exp::add_sweep_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  const double duration = flags.f64("duration");
  const double inflate_at = flags.f64("inflate_at");
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  // Grid: one point per protocol mode (x = 0 DL, x = 1 DS).
  const auto rows = exp::run_sweep(
      {0.0, 1.0}, opts, [&](const exp::sweep_point& pt) {
        const auto mode =
            pt.index == 0 ? exp::flid_mode::dl : exp::flid_mode::ds;
        exp::sweep_row row = run(mode, duration, inflate_at, pt.seed);
        row.label = pt.index == 0 ? "FLID-DL" : "FLID-DS";
        return row;
      });
  const exp::sweep_row& dl = rows[0];
  const exp::sweep_row& ds = rows[1];
  print("FLID-DL over IGMP (unprotected)", dl);
  print("FLID-DS = FLID-DL + DELTA + SIGMA", ds);

  exp::print_check(std::cout, "DL: attacker grabs the shared tree",
                   "inflated (>450)", dl.value_of("attacker_far_kbps"), "Kbps");
  exp::print_check(std::cout, "DS: attacker contained at its own edge",
                   "fair (<450)", ds.value_of("attacker_far_kbps"), "Kbps");
  exp::print_check(std::cout, "DS: honest receiver keeps its segment",
                   "alive (>150)", ds.value_of("honest_near_kbps"), "Kbps");
  exp::print_check(std::cout, "DS beats DL on fairness", "higher is better",
                   ds.value_of("fairness") - dl.value_of("fairness"), "delta");
  exp::print_check(std::cout, "invalid keys rejected at far edge (DS)", "> 0",
                   ds.value_of("invalid_keys_far"), "");
  exp::maybe_write_json(flags, "fig_multibottleneck", rows);
  return 0;
}
