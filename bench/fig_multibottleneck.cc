// Multi-bottleneck extension: inflated subscription on a parking-lot path.
//
// Not a paper figure — the first scenario the topology-agnostic testbed can
// express that the hard-wired dumbbell could not. A FLID session is sourced
// at r0 of a k=2 parking lot (two 1 Mbps bottlenecks in series) with two
// receivers of the SAME session: an honest one behind the first bottleneck
// (edge r1) and a misbehaving one behind the second (edge r2). TCP crosses
// the full path and per-segment TCP cross traffic loads each bottleneck.
//
// The attack inflates at t = 100 s. Under FLID-DL (plain IGMP) the far
// receiver's inflation drags the shared tree up: the extra layers cross BOTH
// bottlenecks, so even the near (honest, congestion-respecting) receiver's
// segment is collateral damage. Under FLID-DS the far edge router (r2)
// refuses the unearned layers, the tree above the split never carries them,
// and both segments keep their fair allocations — multicast containment is
// per edge, exactly as paper section 3.2 promises.
#include <array>
#include <iostream>

#include "exp/report.h"
#include "exp/testbed.h"
#include "sim/stats.h"
#include "util/flags.h"

using namespace mcc;

namespace {

struct world {
  double honest_near_kbps = 0.0;
  double attacker_far_kbps = 0.0;
  double tcp_full_path_kbps = 0.0;
  double tcp_seg1_kbps = 0.0;
  double tcp_seg2_kbps = 0.0;
  double fairness = 0.0;
  std::uint64_t invalid_keys_far = 0;
};

world run(exp::flid_mode mode, double duration_s, double inflate_at_s,
          std::uint64_t seed) {
  exp::parking_lot_config cfg;
  cfg.bottlenecks = 2;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = seed;
  exp::testbed d(exp::parking_lot(cfg));

  exp::receiver_options honest_near;
  honest_near.at = "r1";
  exp::receiver_options attacker_far;
  attacker_far.at = "r2";
  attacker_far.inflate = true;
  attacker_far.inflate_at = sim::seconds(inflate_at_s);
  attacker_far.inflate_level = 0;  // all groups: the strongest attack
  auto& session =
      d.add_flid_session(mode, {honest_near, attacker_far});

  // TCP over the whole path plus one flow per segment, so each bottleneck
  // has its own unicast victim.
  auto& tcp_full = d.add_tcp_flow();  // r0 -> r2 (both bottlenecks)
  exp::flow_options seg1;
  seg1.src_at = "r0";
  seg1.dst_at = "r1";
  auto& tcp_seg1 = d.add_tcp_flow(seg1);
  exp::flow_options seg2;
  seg2.src_at = "r1";
  seg2.dst_at = "r2";
  auto& tcp_seg2 = d.add_tcp_flow(seg2);

  const sim::time_ns horizon = sim::seconds(duration_s);
  d.run_until(horizon);

  world w;
  const sim::time_ns t0 = sim::seconds(inflate_at_s + 10.0);
  w.honest_near_kbps = session.receiver(0).monitor().average_kbps(t0, horizon);
  w.attacker_far_kbps =
      session.receiver(1).monitor().average_kbps(t0, horizon);
  w.tcp_full_path_kbps = tcp_full.sink->monitor().average_kbps(t0, horizon);
  w.tcp_seg1_kbps = tcp_seg1.sink->monitor().average_kbps(t0, horizon);
  w.tcp_seg2_kbps = tcp_seg2.sink->monitor().average_kbps(t0, horizon);
  const std::array<double, 4> rates = {w.honest_near_kbps, w.attacker_far_kbps,
                                       w.tcp_full_path_kbps, w.tcp_seg2_kbps};
  w.fairness = sim::jain_fairness_index(rates);
  w.invalid_keys_far = d.sigma("r2").stats().invalid_keys;
  return w;
}

void print(const char* title, const world& w) {
  std::cout << "# " << title << "\n";
  std::printf("honest (behind bottleneck 1)   : %7.1f Kbps\n",
              w.honest_near_kbps);
  std::printf("attacker (behind bottleneck 2) : %7.1f Kbps\n",
              w.attacker_far_kbps);
  std::printf("TCP r0->r2 (both bottlenecks)  : %7.1f Kbps\n",
              w.tcp_full_path_kbps);
  std::printf("TCP r0->r1 / r1->r2            : %7.1f / %7.1f Kbps\n",
              w.tcp_seg1_kbps, w.tcp_seg2_kbps);
  std::printf("fairness index                 : %7.2f\n\n", w.fairness);
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags(
      "Parking-lot extension: inflated subscription across two bottlenecks");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("inflate_at", "100", "attack start, seconds");
  flags.add("seed", "47", "simulation seed");
  if (!flags.parse(argc, argv)) return 1;

  const double duration = flags.f64("duration");
  const double inflate_at = flags.f64("inflate_at");
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed"));

  const world dl = run(exp::flid_mode::dl, duration, inflate_at, seed);
  const world ds = run(exp::flid_mode::ds, duration, inflate_at, seed + 1);
  print("FLID-DL over IGMP (unprotected)", dl);
  print("FLID-DS = FLID-DL + DELTA + SIGMA", ds);

  exp::print_check(std::cout, "DL: attacker grabs the shared tree",
                   "inflated (>450)", dl.attacker_far_kbps, "Kbps");
  exp::print_check(std::cout, "DS: attacker contained at its own edge",
                   "fair (<450)", ds.attacker_far_kbps, "Kbps");
  exp::print_check(std::cout, "DS: honest receiver keeps its segment",
                   "alive (>150)", ds.honest_near_kbps, "Kbps");
  exp::print_check(std::cout, "DS beats DL on fairness",
                   "higher is better", ds.fairness - dl.fairness, "delta");
  exp::print_check(std::cout, "invalid keys rejected at far edge (DS)", "> 0",
                   static_cast<double>(ds.invalid_keys_far), "");
  return 0;
}
