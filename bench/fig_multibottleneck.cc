// Multi-bottleneck extension: inflated subscription on a parking-lot path.
//
// Not a paper figure — the first scenario the topology-agnostic testbed can
// express that the hard-wired dumbbell could not. A FLID session is sourced
// at r0 of a k=2 parking lot (two 1 Mbps bottlenecks in series) with two
// receivers of the SAME session: an honest one behind the first bottleneck
// (edge r1) and a misbehaving one behind the second (edge r2). TCP crosses
// the full path and per-segment TCP cross traffic loads each bottleneck.
//
// The attack inflates at t = 100 s. Under FLID-DL (plain IGMP) the far
// receiver's inflation drags the shared tree up: the extra layers cross BOTH
// bottlenecks, so even the near (honest, congestion-respecting) receiver's
// segment is collateral damage. Under FLID-DS the far edge router (r2)
// refuses the unearned layers, the tree above the split never carries them,
// and both segments keep their fair allocations — multicast containment is
// per edge, exactly as paper section 3.2 promises.
//
// `--qdisc` adds the bottleneck discipline as a second sweep axis: the
// containment story must survive RED early drops and CoDel sojourn drops,
// and each row reports both bottlenecks' ECN-vs-loss split and average
// queue occupancy.
#include <array>
#include <iostream>

#include "adversary/adversary.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "sim/stats.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

namespace {

exp::sweep_row run(exp::flid_mode mode, double duration_s, double inflate_at_s,
                   std::uint64_t seed, const sim::aqm_config& aqm) {
  exp::parking_lot_config cfg;
  cfg.sched = g_sched;
  cfg.bottlenecks = 2;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = seed;
  cfg.aqm = aqm;
  exp::testbed d(exp::parking_lot(cfg));

  exp::receiver_options honest_near;
  honest_near.at = "r1";
  exp::receiver_options attacker_far;
  attacker_far.at = "r2";
  // All groups: the strongest attack.
  attacker_far.attack = adversary::inflate_once(
      sim::seconds(inflate_at_s), adversary::key_mode::guess, 0);
  auto& session = d.add_flid_session(mode, {honest_near, attacker_far});

  // TCP over the whole path plus one flow per segment, so each bottleneck
  // has its own unicast victim.
  auto& tcp_full = d.add_tcp_flow();  // r0 -> r2 (both bottlenecks)
  exp::flow_options seg1;
  seg1.src_at = "r0";
  seg1.dst_at = "r1";
  auto& tcp_seg1 = d.add_tcp_flow(seg1);
  exp::flow_options seg2;
  seg2.src_at = "r1";
  seg2.dst_at = "r2";
  auto& tcp_seg2 = d.add_tcp_flow(seg2);

  const sim::time_ns horizon = sim::seconds(duration_s);
  d.run_until(horizon);

  exp::sweep_row row;
  const sim::time_ns t0 = sim::seconds(inflate_at_s + 10.0);
  const double honest = session.receiver(0).monitor().average_kbps(t0, horizon);
  const double attacker =
      session.receiver(1).monitor().average_kbps(t0, horizon);
  const double tcp_full_kbps = tcp_full.sink->monitor().average_kbps(t0, horizon);
  const double tcp_seg2_kbps = tcp_seg2.sink->monitor().average_kbps(t0, horizon);
  row.value("honest_near_kbps", honest);
  row.value("attacker_far_kbps", attacker);
  row.value("tcp_full_path_kbps", tcp_full_kbps);
  row.value("tcp_seg1_kbps", tcp_seg1.sink->monitor().average_kbps(t0, horizon));
  row.value("tcp_seg2_kbps", tcp_seg2_kbps);
  const std::array<double, 4> rates = {honest, attacker, tcp_full_kbps,
                                       tcp_seg2_kbps};
  row.value("fairness", sim::jain_fairness_index(rates));
  row.value("invalid_keys_far",
            static_cast<double>(d.sigma("r2").stats().invalid_keys));
  for (int b = 0; b < 2; ++b) {
    const std::string prefix = "bn" + std::to_string(b + 1) + "_";
    const sim::link_stats& bn = d.bottleneck(b)->stats();
    row.value(prefix + "dropped", static_cast<double>(bn.dropped));
    row.value(prefix + "aqm_dropped", static_cast<double>(bn.aqm_dropped));
    row.value(prefix + "ecn_marked", static_cast<double>(bn.ecn_marked));
    row.value(prefix + "avg_queue_bytes",
              d.bottleneck(b)->time_avg_queued_bytes(horizon));
  }
  return row;
}

void print(const std::string& title, const exp::sweep_row& w) {
  std::cout << "# " << title << "\n";
  std::printf("honest (behind bottleneck 1)   : %7.1f Kbps\n",
              w.value_of("honest_near_kbps"));
  std::printf("attacker (behind bottleneck 2) : %7.1f Kbps\n",
              w.value_of("attacker_far_kbps"));
  std::printf("TCP r0->r2 (both bottlenecks)  : %7.1f Kbps\n",
              w.value_of("tcp_full_path_kbps"));
  std::printf("TCP r0->r1 / r1->r2            : %7.1f / %7.1f Kbps\n",
              w.value_of("tcp_seg1_kbps"), w.value_of("tcp_seg2_kbps"));
  std::printf("fairness index                 : %7.2f\n",
              w.value_of("fairness"));
  std::printf("bn1 drops/aqm/ecn, avg queue   : %5.0f /%5.0f /%5.0f, %7.0f B\n",
              w.value_of("bn1_dropped"), w.value_of("bn1_aqm_dropped"),
              w.value_of("bn1_ecn_marked"), w.value_of("bn1_avg_queue_bytes"));
  std::printf("bn2 drops/aqm/ecn, avg queue   : %5.0f /%5.0f /%5.0f, %7.0f B\n\n",
              w.value_of("bn2_dropped"), w.value_of("bn2_aqm_dropped"),
              w.value_of("bn2_ecn_marked"), w.value_of("bn2_avg_queue_bytes"));
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags(
      "Parking-lot extension: inflated subscription across two bottlenecks");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("inflate_at", "100", "attack start, seconds");
  flags.add("seed", "47", "simulation seed");
  exp::add_aqm_flags(flags);
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const double inflate_at = flags.f64("inflate_at");
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));
  const sim::aqm_config base_aqm = exp::aqm_config_from_flags(flags);
  const std::vector<sim::qdisc> qdiscs = exp::qdisc_list_from_flags(flags);

  // Grid: (qdisc, protocol mode) pairs; x encodes the flattened index.
  std::vector<double> grid(qdiscs.size() * 2);
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i] = static_cast<double>(i);

  const auto rows = exp::run_sweep(
      grid, opts, [&](const exp::sweep_point& pt) {
        const auto mode =
            pt.index % 2 == 0 ? exp::flid_mode::dl : exp::flid_mode::ds;
        sim::aqm_config aqm = base_aqm;
        aqm.discipline = qdiscs[pt.index / 2];
        exp::sweep_row row = run(mode, duration, inflate_at, pt.seed, aqm);
        row.label = std::string(pt.index % 2 == 0 ? "FLID-DL/" : "FLID-DS/") +
                    sim::qdisc_name(aqm.discipline);
        return row;
      });

  for (std::size_t q = 0; q < qdiscs.size(); ++q) {
    const exp::sweep_row& dl = rows[q * 2];
    const exp::sweep_row& ds = rows[q * 2 + 1];
    const std::string qd = sim::qdisc_name(qdiscs[q]);
    print("FLID-DL over IGMP (unprotected) [qdisc=" + qd + "]", dl);
    print("FLID-DS = FLID-DL + DELTA + SIGMA [qdisc=" + qd + "]", ds);

    exp::print_check(std::cout, "DL: attacker grabs the shared tree (" + qd + ")",
                     "inflated (>450)", dl.value_of("attacker_far_kbps"), "Kbps");
    exp::print_check(std::cout, "DS: attacker contained at its own edge (" + qd + ")",
                     "fair (<450)", ds.value_of("attacker_far_kbps"), "Kbps");
    exp::print_check(std::cout, "DS: honest receiver keeps its segment (" + qd + ")",
                     "alive (>150)", ds.value_of("honest_near_kbps"), "Kbps");
    exp::print_check(std::cout, "DS beats DL on fairness (" + qd + ")",
                     "higher is better",
                     ds.value_of("fairness") - dl.value_of("fairness"), "delta");
    exp::print_check(std::cout, "invalid keys rejected at far edge (DS, " + qd + ")",
                     "> 0", ds.value_of("invalid_keys_far"), "");
  }
  exp::maybe_write_json(flags, "fig_multibottleneck", rows);
  return 0;
}
