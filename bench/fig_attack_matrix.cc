// Attack matrix: every adversary strategy x topology x queue discipline x
// interface keying, with per-cell containment AND attacker-cost metrics.
//
// Not a paper figure — the systematic sweep the adversary subsystem exists
// for. Each cell builds one testbed (dumbbell / parking_lot / tree), attaches
// one FLID session with an honest receiver and one attacker (two colluders
// for the collusion strategy, placed at different edges where the topology
// has them), plus a TCP victim over the full path, and reports
// adversary::containment_report metrics:
//
//   attacker_share   attacker goodput share of everything measured
//   honest_damage    fraction of the honest flows' pre-attack goodput lost
//   ttc_s            time-to-containment (s); -1 = not contained by horizon
//   cost_*           attacker spend: control messages, control-plane wire
//                    bytes, useless key submissions, slots spent cut off
//   profit           attacker goodput per control message (Kbps/msg) and per
//                    control kilobyte (Kbps/KB). The ranking below sorts by
//                    the per-KB metric: messages are not fungible — a
//                    key-stuffed guessing subscribe costs an order of
//                    magnitude more wire than an IGMP join, and byte pricing
//                    is what exposes that.
//
// Under --mode=ds (default) the expectation is containment everywhere: the
// SIGMA edge holds every strategy near the honest share. Under --mode=dl the
// same grid shows the unprotected world: inflation-style strategies take the
// bottleneck. --interface-keying=both (the default in ds mode) additionally
// runs every cell with the section-4.2 countermeasure switched on; the
// headline comparison is the collusion/tree cell, whose cross-edge key pool
// goes from the matrix's worst containment time to pool_hits == 0 and a
// strictly faster claw-back. --probation-memory=both (also the default)
// additionally runs every cell with the router probation memory on; the
// headline comparison is the adaptive_churn cells, whose keyless grace
// throughput collapses once rejoins inherit the probation debt. Strategy timing parameters (pulse phases, flap
// period, adaptive probe) are flag-tunable; collusion always pools keys
// best-effort (the pool IS its key source), the other key-backed strategies
// follow --attack-keys.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/containment.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

namespace {

/// Every topology's contested links run at this rate; the containment
/// bound's fair-share floor is derived from it below.
constexpr double path_bps = 1e6;

struct site_plan {
  std::string honest;    // honest receiver's edge
  std::string attacker;  // attacker's edge
  std::string second;    // second colluder's edge (collusion only)
};

struct cell {
  adversary::strategy_kind strategy;
  std::string topo;
  sim::qdisc queue;
  bool keying = false;  // interface-keying countermeasure on
  int memory = 0;       // probation-memory window, slots (0 = off)
  bool cm = false;      // shared congestion manager on
  // Seed index counting only the cm-off grid: a "/cm" cell simulates the
  // SAME world as its plain twin (the pair comparison isolates the
  // manager), and plain cells keep the exact seeds they had before the cm
  // axis existed, so the rolling bench baseline keeps matching.
  std::size_t seed_index = 0;
};

exp::testbed_config make_config(const std::string& topo, std::uint64_t seed,
                                sim::qdisc queue, const sim::aqm_config& aqm_in,
                                bool keying, int memory, bool cm,
                                const cm::cm_config& cm_params,
                                site_plan& sites) {
  sim::aqm_config aqm = aqm_in;
  aqm.discipline = queue;
  if (topo == "dumbbell") {
    exp::dumbbell_config cfg;
    cfg.sched = g_sched;
    cfg.bottleneck_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.interface_keying = keying;
    cfg.probation_memory_slots = memory;
    cfg.cm = cm;
    cfg.cm_params = cm_params;
    sites = {"r", "r", "r"};
    return exp::dumbbell(cfg);
  }
  if (topo == "parking_lot") {
    exp::parking_lot_config cfg;
    cfg.sched = g_sched;
    cfg.bottlenecks = 2;
    cfg.bottleneck_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.interface_keying = keying;
    cfg.probation_memory_slots = memory;
    cfg.cm = cm;
    cfg.cm_params = cm_params;
    // The attacker sits behind both bottlenecks; its colluding partner
    // behind only the first, so the partner's cleaner congestion state
    // feeds the key pool.
    sites = {"r1", "r2", "r1"};
    return exp::parking_lot(cfg);
  }
  if (topo == "tree") {
    exp::tree_config cfg;
    cfg.sched = g_sched;
    cfg.depth = 2;
    cfg.fanout = 2;
    cfg.edge_bps = path_bps;
    cfg.seed = seed;
    cfg.aqm = aqm;
    cfg.interface_keying = keying;
    cfg.probation_memory_slots = memory;
    cfg.cm = cm;
    cfg.cm_params = cm_params;
    // Attacker on a sibling leaf of the honest receiver: they share the
    // root->t1_0 edge (the contested link) and split below it. The second
    // colluder sits in the other subtree, where its cleaner congestion
    // state feeds the key pool.
    sites = {"t2_0", "t2_1", "t2_2"};
    return exp::balanced_tree(cfg);
  }
  std::fprintf(stderr,
               "bad value for --topos: '%s' (expected dumbbell, parking_lot, "
               "tree, a comma list, or all)\n",
               topo.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags(
      "Attack matrix: adversary strategy x topology x qdisc containment");
  flags.add("duration", "120", "experiment length, seconds");
  flags.add("attack-at", "40", "attack onset, seconds");
  flags.add("strategies", "all",
            "comma list of inflate_once|pulse_inflate|churn_flap|"
            "deaf_receiver|collusion|adaptive_pulse|adaptive_churn, or all");
  flags.add("topos", "all",
            "comma list of dumbbell|parking_lot|tree, or all");
  flags.add("mode", "ds", "protocol world: ds (SIGMA-protected) or dl (plain)");
  flags.add("attack-keys", "guess",
            "key mode for inflate_once/pulse_inflate: best_effort|replay|guess");
  flags.add("pulse-on", "5",
            "pulse_inflate: attack phase; adaptive_pulse: max probe, seconds");
  flags.add("pulse-off", "5", "pulse_inflate: recovery phase, seconds");
  flags.add("flap-period", "1", "churn_flap: slots per phase");
  flags.add("seed", "7", "simulation seed");
  exp::add_interface_keying_flag(flags, "both");
  exp::add_probation_memory_flag(flags, "both");
  // Default off: the matrix is a single-receiver-per-edge study outside the
  // dumbbell, where the manager is provably inert; --cm=both adds the
  // shared-manager twin of every cell for the never-worsens-ttc pin.
  exp::add_cm_flags(flags, "off");
  exp::add_aqm_flags(flags);
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const double attack_at_s = flags.f64("attack-at");
  if (duration <= attack_at_s + 10.0) {
    std::fprintf(stderr,
                 "bad value for --duration/--attack-at: %g/%g (need duration "
                 "> attack-at + 10 s so the containment window is non-empty)\n",
                 duration, attack_at_s);
    return 1;
  }
  const std::string mode_name = flags.str("mode");
  if (mode_name != "ds" && mode_name != "dl") {
    std::fprintf(stderr, "bad value for --mode: '%s' (expected ds or dl)\n",
                 mode_name.c_str());
    return 1;
  }
  const exp::flid_mode mode =
      mode_name == "ds" ? exp::flid_mode::ds : exp::flid_mode::dl;
  const adversary::key_mode keys =
      adversary::key_mode_from_flag(flags.str("attack-keys"));
  const sim::time_ns pulse_on = sim::seconds(flags.f64("pulse-on"));
  const sim::time_ns pulse_off = sim::seconds(flags.f64("pulse-off"));
  if (pulse_on <= 0 || pulse_off <= 0) {
    // Validate here with the friendly flag UX: the strategy constructor
    // also checks, but that invariant_error would surface as an unhandled
    // exception out of run_sweep instead of a flag message.
    std::fprintf(stderr,
                 "bad value for --pulse-on/--pulse-off: %g/%g (expected "
                 "positive seconds)\n",
                 flags.f64("pulse-on"), flags.f64("pulse-off"));
    return 1;
  }
  const int flap_period = static_cast<int>(flags.i64("flap-period"));

  std::vector<adversary::strategy_kind> strategies;
  if (flags.str("strategies") == "all") {
    strategies = adversary::all_attacks();
  } else {
    for (const std::string& name : util::split_csv(flags.str("strategies"))) {
      const auto k = adversary::strategy_from_name(name);
      if (!k.has_value() || *k == adversary::strategy_kind::honest) {
        std::fprintf(stderr,
                     "bad value for --strategies: '%s' (expected "
                     "inflate_once, pulse_inflate, churn_flap, deaf_receiver, "
                     "collusion, a comma list, or all)\n",
                     name.c_str());
        return 1;
      }
      strategies.push_back(*k);
    }
  }
  const std::vector<std::string> topos =
      flags.str("topos") == "all"
          ? std::vector<std::string>{"dumbbell", "parking_lot", "tree"}
          : util::split_csv(flags.str("topos"));
  const std::vector<sim::qdisc> qdiscs = exp::qdisc_list_from_flags(flags);
  const sim::aqm_config aqm_base = exp::aqm_config_from_flags(flags);
  std::vector<bool> keyings = exp::interface_keying_axis_from_flags(flags);
  if (mode == exp::flid_mode::dl && (keyings.size() > 1 || keyings.front())) {
    // Keys do not exist in the plain world; the axis would duplicate cells.
    std::fprintf(stderr,
                 "note: --interface-keying has no effect under --mode=dl; "
                 "running the axis off\n");
    keyings = {false};
  }
  std::vector<int> memories = exp::probation_memory_axis_from_flags(flags);
  if (mode == exp::flid_mode::dl &&
      (memories.size() > 1 || memories.front() != 0)) {
    // No SIGMA router in the plain world; the axis would duplicate cells.
    std::fprintf(stderr,
                 "note: --probation-memory has no effect under --mode=dl; "
                 "running the axis off\n");
    memories = {0};
  }
  const std::vector<bool> cms = exp::cm_axis_from_flags(flags);
  const cm::cm_config cm_params = exp::cm_config_from_flags(flags);

  std::vector<cell> cells;
  std::size_t seed_index = 0;
  for (const adversary::strategy_kind s : strategies) {
    for (const std::string& t : topos) {
      // Validate topology names up front (before worker threads).
      site_plan probe;
      (void)make_config(t, 1, sim::qdisc::droptail, aqm_base, false, 0, false,
                        cm_params, probe);
      for (const sim::qdisc q : qdiscs) {
        for (const bool k : keyings) {
          for (const int m : memories) {
            // All cm variants of a grid point share one seed_index, and the
            // index advances only per cm-OFF point: "/cm" rows simulate
            // their twin's exact world, plain rows keep their historical
            // seeds no matter what --cm says.
            for (const bool c : cms) {
              cells.push_back({s, t, q, k, m, c, seed_index});
            }
            ++seed_index;
          }
        }
      }
    }
  }

  std::vector<double> xs(cells.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  const sim::time_ns attack_at = sim::seconds(attack_at_s);
  const sim::time_ns horizon = sim::seconds(duration);

  const auto rows = exp::run_sweep(xs, opts, [&](const exp::sweep_point& pt) {
    const cell& c = cells[pt.index];
    site_plan sites;
    exp::testbed d(make_config(c.topo, exp::point_seed(opts.base_seed, c.seed_index),
                               c.queue, aqm_base, c.keying, c.memory, c.cm,
                               cm_params, sites));

    adversary::profile attack;
    switch (c.strategy) {
      case adversary::strategy_kind::inflate_once:
        attack = adversary::inflate_once(attack_at, keys);
        break;
      case adversary::strategy_kind::pulse_inflate:
        attack = adversary::pulse_inflate(attack_at, pulse_on, pulse_off, keys);
        break;
      case adversary::strategy_kind::churn_flap:
        attack = adversary::churn_flap(attack_at, flap_period);
        break;
      case adversary::strategy_kind::deaf_receiver:
        attack = adversary::deaf_receiver(attack_at);
        break;
      case adversary::strategy_kind::collusion:
        attack = adversary::collusion(attack_at);
        break;
      case adversary::strategy_kind::adaptive_pulse:
        attack = adversary::adaptive_pulse(attack_at, pulse_on, keys);
        break;
      case adversary::strategy_kind::adaptive_churn:
        attack = adversary::adaptive_churn(attack_at);
        break;
      default:
        // A new attack kind in all_attacks() without a cell recipe here
        // must fail loudly, not run under a borrowed name.
        util::require(false, "fig_attack_matrix: unhandled strategy",
                      adversary::strategy_name(c.strategy));
    }

    // Two sessions share the path, mirroring Figure 7 and the containment
    // matrix test: the rogue session carries the attacker(s), the honest
    // session a well-behaved receiver, and TCP is the unicast victim.
    exp::receiver_options attacker;
    attacker.at = sites.attacker;
    attacker.attack = attack;
    std::vector<exp::receiver_options> rogues = {attacker};
    const bool colluding = c.strategy == adversary::strategy_kind::collusion;
    if (colluding) {
      exp::receiver_options partner;
      partner.at = sites.second;
      partner.attack = attack;
      rogues.push_back(partner);
    }
    auto& rogue = d.add_flid_session(mode, rogues);
    exp::receiver_options honest;
    honest.at = sites.honest;
    auto& honest_session = d.add_flid_session(mode, {honest});
    auto& tcp = d.add_tcp_flow();
    d.run_until(horizon);

    adversary::containment_config ccfg;
    ccfg.attack_start = attack_at;
    ccfg.horizon = horizon;
    // Three parties (rogue session, honest session, TCP) share the path
    // rate, so the fair share is a third of it. The floor keeps the bound
    // honest even when the honest flows are damaged.
    ccfg.floor_kbps = path_bps / 1e3 / 3.0;
    const std::vector<const sim::throughput_monitor*> honest_monitors = {
        &honest_session.receiver(0).monitor(), &tcp.sink->monitor()};
    // The containment bound tracks the honest session's receiver: its
    // layered rate is the attacker's natural yardstick (TCP still counts
    // toward share and damage).
    const std::vector<const sim::throughput_monitor*> reference = {
        &honest_session.receiver(0).monitor()};

    exp::sweep_row row;
    // Keyed cells carry a "/keyed" suffix and probation-memory cells a
    // "/mem" suffix; plain labels stay as before so cross-commit baseline
    // diffs keep matching the historical rows.
    row.label = std::string(adversary::strategy_name(c.strategy)) + "/" +
                c.topo + "/" + sim::qdisc_name(c.queue) +
                (c.keying ? "/keyed" : "") + (c.memory > 0 ? "/mem" : "") +
                (c.cm ? "/cm" : "");
    double attacker_sum = 0.0;
    double honest_sum = 0.0;
    for (const sim::throughput_monitor* m : honest_monitors) {
      honest_sum += m->average_kbps(attack_at + ccfg.settle, horizon);
    }
    double damage = 0.0;
    double ttc = 0.0;
    double profit = 0.0;
    double profit_kb = 0.0;
    bool contained = true;
    const int attackers = colluding ? 2 : 1;
    for (int a = 0; a < attackers; ++a) {
      adversary::containment_report rep = adversary::measure_containment(
          rogue.receiver(a).monitor(), honest_monitors, reference, ccfg);
      adversary::attach_cost(rep, adversary::measure_cost(rogue.receiver(a)));
      attacker_sum += rep.attacker_kbps;
      damage = rep.honest_damage;  // same honest set for every attacker
      // The cell verdict judges the attacker on the contested path
      // (receiver 0). A colluding partner may sit on an uncontested branch
      // by design — its clean congestion state is what feeds the key pool —
      // so its own high rate is entitlement, not escape; it is still
      // reported as attacker1_*.
      if (a == 0) {
        contained = rep.contained;
        ttc = rep.time_to_containment_s;
        profit = rep.profit_kbps_per_msg;
        profit_kb = rep.profit_kbps_per_kb;
      }
      const std::string p = "attacker" + std::to_string(a) + "_";
      row.value(p + "kbps", rep.attacker_kbps);
      row.value(p + "share", rep.attacker_share);
      row.value(p + "ttc_s", rep.time_to_containment_s);
      row.value(p + "bound_kbps", rep.containment_bound_kbps);
      row.value(p + "cost_msgs", static_cast<double>(rep.cost.ctrl_msgs));
      row.value(p + "cost_bytes", static_cast<double>(rep.cost.ctrl_bytes));
      row.value(p + "cost_useless_keys",
                static_cast<double>(rep.cost.useless_keys));
      row.value(p + "cost_cutoff_slots",
                static_cast<double>(rep.cost.cutoff_slots));
      row.value(p + "profit_kbps_per_msg", rep.profit_kbps_per_msg);
      row.value(p + "profit_kbps_per_kb", rep.profit_kbps_per_kb);
    }
    row.value("attacker_share",
              attacker_sum + honest_sum > 0.0
                  ? attacker_sum / (attacker_sum + honest_sum)
                  : 0.0);
    row.value("honest_damage", damage);
    row.value("ttc_s", contained ? ttc : -1.0);
    row.value("contained", contained ? 1.0 : 0.0);
    row.value("interface_keying", c.keying ? 1.0 : 0.0);
    row.value("probation_memory", static_cast<double>(c.memory));
    row.value("cm", c.cm ? 1.0 : 0.0);
    // Zero bindings across every receiver in the cell ⇒ the manager never
    // changed an auth mask ⇒ the whole run is byte-identical to the plain
    // twin. That is the predicate the cm compatibility pin below keys on.
    std::uint64_t cm_bindings = honest_session.receiver(0).stats().cm_bindings;
    for (int a = 0; a < attackers; ++a) {
      cm_bindings += rogue.receiver(a).stats().cm_bindings;
    }
    row.value("cm_bindings", static_cast<double>(cm_bindings));
    // Sustained late-window rate: everything after the attack's first grace
    // windows and escalation rounds have played out. Under probation memory
    // the churn strategies must collapse to ~0 here.
    const sim::time_ns late_from =
        attack_at + std::min(sim::seconds(20.0), (horizon - attack_at) / 2);
    row.value("attacker_late_kbps",
              rogue.receiver(0).monitor().average_kbps(late_from, horizon));
    row.value("profit_kbps_per_msg", profit);
    row.value("profit_kbps_per_kb", profit_kb);
    row.value("honest_kbps",
              honest_session.receiver(0).monitor().average_kbps(
                  attack_at + ccfg.settle, horizon));
    row.value("tcp_kbps",
              tcp.sink->monitor().average_kbps(attack_at + ccfg.settle,
                                               horizon));
    // Control-plane pressure at the attacker's edge: churn shows up here
    // long before it shows up in goodput.
    row.value("edge_igmp_joins",
              static_cast<double>(d.igmp(sites.attacker).stats().joins));
    row.value("edge_igmp_leaves",
              static_cast<double>(d.igmp(sites.attacker).stats().leaves));
    if (mode == exp::flid_mode::ds) {
      const auto& edge = d.sigma(sites.attacker).stats();
      row.value("edge_invalid_keys", static_cast<double>(edge.invalid_keys));
      row.value("edge_memory_refusals",
                static_cast<double>(edge.memory_refusals));
      row.value("edge_memory_inherits",
                static_cast<double>(edge.memory_inherits));
    }
    if (colluding) {
      const auto& pool = d.coordinator(attack.coalition).stats();
      row.value("pool_deposits", static_cast<double>(pool.deposits));
      row.value("pool_hits", static_cast<double>(pool.hits));
      // Cross-edge = the colluders sit at different edge routers (tree,
      // parking lot) — the placement section 4.2's key-sharing attack and
      // its countermeasure are about. Dumbbell colluders share one edge, so
      // keying closes their pool too but containment there is congestion-
      // dominated and need not speed up.
      row.value("cross_edge", sites.attacker != sites.second ? 1.0 : 0.0);
    }
    row.trace("attacker_kbps_series", rogue.receiver(0).monitor().series_kbps());
    row.trace("honest_kbps_series",
              honest_session.receiver(0).monitor().series_kbps());
    return row;
  });

  std::printf("# attack matrix (%s): strategy/topology/qdisc[/keyed]\n",
              mode_name.c_str());
  std::printf("# %-44s %9s %9s %8s %9s %11s\n", "cell", "atk_share", "damage",
              "ttc_s", "contained", "profit");
  for (const auto& row : rows) {
    std::printf("  %-44s %9.3f %9.3f %8.1f %9.0f %11.3f\n", row.label.c_str(),
                row.value_of("attacker_share"), row.value_of("honest_damage"),
                row.value_of("ttc_s"), row.value_of("contained"),
                row.value_of("profit_kbps_per_msg"));
  }

  // Profitability ranking: which strategy extracts the most goodput per
  // control-plane kilobyte. Byte pricing (not message counting) is the fair
  // comparison across strategies: a key-stuffed guessing subscribe carries an
  // order of magnitude more wire than an IGMP join or a sparse replay. High
  // profit + contained = a cheap nuisance; high profit + uncontained = the
  // cell to worry about.
  std::vector<const exp::sweep_row*> ranked;
  ranked.reserve(rows.size());
  for (const auto& row : rows) ranked.push_back(&row);
  std::sort(ranked.begin(), ranked.end(),
            [](const exp::sweep_row* a, const exp::sweep_row* b) {
              const double pa = a->value_of("profit_kbps_per_kb");
              const double pb = b->value_of("profit_kbps_per_kb");
              return pa != pb ? pa > pb : a->label < b->label;
            });
  std::printf("\n# profitability ranking (attacker Kbps per control KB)\n");
  std::printf("# %-44s %11s %11s %10s %11s %13s %13s\n", "cell", "profit_kb",
              "profit_msg", "cost_msgs", "cost_bytes", "useless_keys",
              "cutoff_slots");
  for (const exp::sweep_row* row : ranked) {
    std::printf("  %-44s %11.3f %11.3f %10.0f %11.0f %13.0f %13.0f\n",
                row->label.c_str(), row->value_of("profit_kbps_per_kb"),
                row->value_of("profit_kbps_per_msg"),
                row->value_of("attacker0_cost_msgs"),
                row->value_of("attacker0_cost_bytes"),
                row->value_of("attacker0_cost_useless_keys"),
                row->value_of("attacker0_cost_cutoff_slots"));
  }

  if (mode == exp::flid_mode::ds) {
    int held = 0;
    for (const auto& row : rows) {
      if (row.value_of("contained") > 0.5) ++held;
    }
    exp::print_check(std::cout, "cells contained under SIGMA",
                     "all of them", static_cast<double>(held),
                     "of " + std::to_string(rows.size()));
    // The countermeasure study: for every collusion cell run both with and
    // without keying, the keyed run must close the key-sharing channel (no
    // pool hits — checked for every placement, same-edge included). The
    // time-to-containment claim is anchored on the tree — the matrix's
    // historical worst cell, where cross-edge colluders split below the
    // contested link exactly as in section 4.2: there, keying must rein the
    // contested colluder in strictly faster. (On other topologies the
    // claw-back is congestion-dominated and the comparison is seed-noisy.)
    if (keyings.size() > 1) {
      int pairs = 0;
      int closed = 0;
      int tree_cells = 0;
      int faster = 0;
      for (const auto& row : rows) {
        if (row.label.rfind("collusion/", 0) != 0) continue;
        if (row.value_of("interface_keying") != 0.0) continue;
        const exp::sweep_row* keyed = nullptr;
        for (const auto& other : rows) {
          if (other.label == row.label + "/keyed") keyed = &other;
        }
        if (keyed == nullptr) continue;
        ++pairs;
        if (keyed->value_of("pool_hits") == 0.0) ++closed;
        if (row.label.rfind("collusion/tree/", 0) != 0) continue;
        ++tree_cells;
        const double ttc_off = row.value_of("ttc_s");
        const double ttc_on = keyed->value_of("ttc_s");
        // -1 (uncontained) is worse than any contained time.
        if (ttc_on >= 0.0 && (ttc_off < 0.0 || ttc_on < ttc_off)) ++faster;
      }
      // A claim only prints when its cells actually ran: "0 of 0" reads as
      // the study passing when nothing was checked.
      if (pairs > 0) {
        exp::print_check(std::cout,
                         "keyed collusion cells with pool_hits == 0",
                         "all of them", static_cast<double>(closed),
                         "of " + std::to_string(pairs));
      }
      if (tree_cells > 0) {
        exp::print_check(std::cout,
                         "keyed collusion/tree contained strictly faster",
                         "all of them", static_cast<double>(faster),
                         "of " + std::to_string(tree_cells));
      }
    }
    // The churn-countermeasure study: for every adaptive_churn cell run both
    // with and without probation memory, the memory run must show the grace
    // free-ride collapsing — no sustained keyless throughput once the first
    // window's debt is remembered — and the strategy dropping down the
    // profitability ranking.
    if (memories.size() > 1) {
      int churn_pairs = 0;
      int collapsed = 0;
      int less_profitable = 0;
      for (const auto& row : rows) {
        if (row.label.rfind("adaptive_churn/", 0) != 0) continue;
        if (row.value_of("probation_memory") != 0.0) continue;
        const exp::sweep_row* mem = nullptr;
        for (const auto& other : rows) {
          if (other.label == row.label + "/mem") mem = &other;
        }
        if (mem == nullptr) continue;
        ++churn_pairs;
        if (mem->value_of("attacker_late_kbps") < 10.0) ++collapsed;
        if (mem->value_of("profit_kbps_per_kb") <
            row.value_of("profit_kbps_per_kb")) {
          ++less_profitable;
        }
      }
      if (churn_pairs > 0) {
        exp::print_check(std::cout,
                         "churn cells under memory: late grace Kbps < 10",
                         "all of them", static_cast<double>(collapsed),
                         "of " + std::to_string(churn_pairs));
        exp::print_check(std::cout,
                         "churn cells strictly less profitable under memory",
                         "all of them", static_cast<double>(less_profitable),
                         "of " + std::to_string(churn_pairs));
      }
    }
    // The shared-manager compatibility pin: every "/cm" cell simulates its
    // plain twin's exact world (same seed by construction). Wherever the
    // manager stayed inert — zero cap bindings, which structurally covers
    // every cell whose honest receiver and attacker sit at different edges
    // (one session per path) — the run must be indistinguishable from the
    // twin, so turning cm on must not move time-to-containment at all.
    // Dumbbell cells where the cap actually bound are a different experiment
    // (fig_session_farm's) and are reported, not claimed.
    if (cms.size() > 1) {
      int inert_pairs = 0;
      int unchanged = 0;
      int bound_pairs = 0;
      for (const auto& row : rows) {
        if (row.value_of("cm") != 0.0) continue;
        const exp::sweep_row* cm_row = nullptr;
        for (const auto& other : rows) {
          if (other.label == row.label + "/cm") cm_row = &other;
        }
        if (cm_row == nullptr) continue;
        if (cm_row->value_of("cm_bindings") > 0.0) {
          ++bound_pairs;
          continue;
        }
        ++inert_pairs;
        if (cm_row->value_of("ttc_s") == row.value_of("ttc_s")) ++unchanged;
      }
      if (inert_pairs > 0) {
        exp::print_check(
            std::cout,
            "cm-inert cells (zero cap bindings) with ttc unchanged",
            "all of them", static_cast<double>(unchanged),
            "of " + std::to_string(inert_pairs));
        std::printf("  (cells where the shared cap bound: %d — see "
                    "fig_session_farm for that study)\n",
                    bound_pairs);
      }
    }
  }
  exp::maybe_write_json(flags, "fig_attack_matrix", rows);
  return 0;
}
