// Ablation: SIGMA control-channel FEC expansion.
//
// Key tuple blocks cross the (congested) distribution tree in special
// packets. We sweep the FEC expansion z = (k + m) / k under a bottleneck
// kept hot by CBR cross traffic and report the tuple-block decode rate at
// the edge router and the honest receiver's throughput. The paper's choice
// (z = 2, "error correction overcomes 50% packet loss") should decode
// essentially every block; z = 1 (no parity) degrades under loss.
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("FEC-rate ablation for SIGMA control packets");
  flags.add("duration", "120", "seconds per run");
  flags.add("seed", "41", "simulation seed");
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);
  const double duration = flags.f64("duration");
  const auto base_seed = static_cast<std::uint64_t>(flags.i64("seed"));
  const auto opts = exp::sweep_options_from_flags(flags, base_seed);

  // Grid: parity shard count m at fixed k = 4 (x = m).
  constexpr int k = 4;
  const auto rows = exp::run_sweep(
      {0.0, 2.0, 4.0, 8.0}, opts, [&](const exp::sweep_point& pt) {
        const int m = static_cast<int>(pt.x);
        exp::dumbbell_config cfg;
        cfg.sched = g_sched;
        cfg.bottleneck_bps = 500e3;
        // Same seed for every FEC configuration: identical cross traffic, so
        // the decode rates are directly comparable (deliberately NOT the
        // per-point seed).
        cfg.seed = base_seed;
        exp::testbed d(exp::dumbbell(cfg));

        // Hand-build the session so we control the emitter's FEC parameters.
        flid::flid_config fc = d.default_flid_config(exp::flid_mode::ds);
        fc.session_id = 90;
        fc.group_addr_base = 40'000;
        const auto src = d.attach_host("fec_src", "l");
        flid::flid_sender sender(d.net(), src, fc, cfg.seed);
        core::sigma_emitter_config em_cfg;
        em_cfg.data_shards = k;
        em_cfg.parity_shards = m;
        auto ds = core::make_flid_ds_sender(d.net(), src, sender, cfg.seed + 1,
                                            em_cfg);
        sender.start(0);

        const auto rcv = d.attach_host("fec_rcv", "r");
        flid::flid_receiver receiver(
            d.net(), rcv, d.router("r"), fc,
            std::make_unique<core::honest_sigma_strategy>());
        receiver.start(0);

        // Aggressive on-off CBR overloads the bottleneck during on-periods
        // so control packets face real loss.
        traffic::cbr_config cbr;
        cbr.rate_bps = 520e3;
        cbr.on_duration = sim::seconds(2.0);
        cbr.off_duration = sim::seconds(1.0);
        d.add_cbr(cbr);
        d.run_until(sim::seconds(duration));

        const auto& rstats = d.sigma().stats();
        const auto& estats = ds.emitter->stats();
        exp::sweep_row row;
        row.value("k", k);
        row.value("m", m);
        row.value("z", ds.emitter->expansion_factor());
        row.value("decode_rate",
                  static_cast<double>(rstats.blocks_decoded) /
                      static_cast<double>(
                          std::max<std::uint64_t>(estats.slots, 1)));
        row.value("honest_kbps",
                  receiver.monitor().average_kbps(
                      sim::seconds(duration * 0.2), sim::seconds(duration)));
        return row;
      });

  std::cout << "# k  m  z  blocks_decoded/slots  honest_kbps\n";
  for (const auto& row : rows) {
    std::printf("%d %d %.2f %.3f %.1f\n", static_cast<int>(row.value_of("k")),
                static_cast<int>(row.value_of("m")), row.value_of("z"),
                row.value_of("decode_rate"), row.value_of("honest_kbps"));
  }
  std::cout << "# expectation: z >= 2 decodes ~every slot's block (the paper's\n"
               "# choice). Below z = 2, decode failures cost the receiver its\n"
               "# authorizations, which feeds back into its own traffic and\n"
               "# join churn — so the degraded points are lossy AND unstable,\n"
               "# not monotone in z.\n";
  exp::maybe_write_json(flags, "ablation_fec_rate", rows);
  return 0;
}
