// Figure 9: communication overhead of DELTA and SIGMA.
//
// A FLID-DS session transmits 500-byte data packets (s = 4000 bits) at a
// cumulative rate R = 4 Mbps; the minimal group sends r = 100 Kbps; keys are
// 16 bits, the slot number 8 bits, and FEC overcomes 50% loss (z = 2).
// (a) overhead vs number of groups, N = 2..20 at t = 250 ms;
// (b) overhead vs slot duration, t = 0.2..1 s at N = 10.
// The paper reports DELTA ~0.8% and SIGMA under 0.6% throughout.
//
// Analytic values use the closed forms of section 5.4 with f_g, z, h
// observed from a simulation run; measured values count actual field and
// control-packet bits on the wire. Both sub-sweeps run as one exp::sweep
// grid (points 0-9 are panel a, the rest panel b).
#include <cmath>
#include <iostream>

#include "core/overhead.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

namespace {

struct point_result {
  double analytic_delta;
  double analytic_sigma;
  double measured_delta;
  double measured_sigma;
};

point_result run(int num_groups, double slot_seconds, double duration_s,
                 std::uint64_t seed) {
  exp::dumbbell_config cfg;
  cfg.sched = g_sched;
  cfg.bottleneck_bps = 10e6;  // uncongested: overhead is a sender property
  cfg.seed = seed;
  exp::testbed d(exp::dumbbell(cfg));

  flid::flid_config fc = d.default_flid_config(exp::flid_mode::ds);
  fc.num_groups = num_groups;
  fc.packet_bytes = 500;
  fc.base_rate_bps = 100e3;
  // R = r * m^(N-1) = 4 Mbps fixes the multiplier per N (Equation 10).
  fc.rate_multiplier =
      num_groups > 1 ? std::pow(40.0, 1.0 / (num_groups - 1)) : 1.0;
  fc.slot_duration = sim::seconds(slot_seconds);
  auto& session =
      d.add_flid_session(exp::flid_mode::ds, fc, {exp::receiver_options{}});
  d.run_until(sim::seconds(duration_s));

  const auto& snd = session.sender->stats();
  const auto& em = session.ds.emitter->stats();

  core::overhead_params p;
  p.num_groups = num_groups;
  p.base_rate_bps = fc.base_rate_bps;
  p.session_rate_bps = fc.cumulative_rate_bps(num_groups);
  p.packet_data_bits = fc.packet_bytes * 8;
  p.key_bits = fc.key_bits;
  p.slot_number_bits = 8;
  p.slot_seconds = slot_seconds;
  p.fec_expansion = session.ds.emitter->expansion_factor();
  p.header_bits_per_slot =
      em.slots > 0
          ? 8.0 * static_cast<double>(em.header_bytes) / static_cast<double>(em.slots)
          : 0.0;
  p.sum_upgrade_freq = 0.0;
  for (int g = 2; g <= num_groups; ++g) {
    p.sum_upgrade_freq +=
        static_cast<double>(snd.auth_count[static_cast<std::size_t>(g)]) /
        static_cast<double>(std::max<std::uint64_t>(snd.slots, 1));
  }

  point_result out{};
  out.analytic_delta = core::delta_overhead(p);
  out.analytic_sigma = core::sigma_overhead(p);

  // Measured DELTA: b bits per packet (component) + b per packet of groups
  // >= 2 (decrease field).
  double group1_packets = 0;
  for (std::uint64_t s = 0; s < snd.slots; ++s) {
    group1_packets +=
        session.sender->packets_in_slot(1, static_cast<std::int64_t>(s));
  }
  const double b = fc.key_bits;
  out.measured_delta =
      b * (2.0 * static_cast<double>(snd.data_packets) - group1_packets) /
      (8.0 * static_cast<double>(snd.data_bytes));
  out.measured_sigma = static_cast<double>(em.ctrl_bytes) /
                       static_cast<double>(snd.data_bytes);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 9: DELTA/SIGMA communication overhead");
  flags.add("duration", "30", "seconds simulated per point");
  flags.add("seed", "29", "simulation seed");
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);
  const double duration = flags.f64("duration");
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  // One combined grid: panel (a) sweeps N at t = 250 ms, panel (b) sweeps
  // the slot duration at N = 10.
  std::vector<double> xs;
  std::size_t panel_a_points = 0;
  for (int n = 2; n <= 20; n += 2) {
    xs.push_back(n);
    ++panel_a_points;
  }
  for (double t = 0.2; t <= 1.001; t += 0.1) xs.push_back(t);

  const auto rows = exp::run_sweep(
      xs, opts, [&](const exp::sweep_point& pt) {
        const bool panel_a = pt.index < panel_a_points;
        const int n = panel_a ? static_cast<int>(pt.x) : 10;
        const double slot_s = panel_a ? 0.25 : pt.x;
        const point_result r = run(n, slot_s, duration, pt.seed);
        exp::sweep_row row;
        row.label = panel_a ? "a" : "b";
        row.value("analytic_delta", r.analytic_delta);
        row.value("analytic_sigma", r.analytic_sigma);
        row.value("measured_delta", r.measured_delta);
        row.value("measured_sigma", r.measured_sigma);
        return row;
      });

  std::cout << "# Fig 9(a): overhead (percent) vs number of groups, t = 250 ms\n"
               "# N  DELTA(analytic)  SIGMA(analytic)  DELTA(measured)  SIGMA(measured)\n";
  double worst_delta = 0.0;
  double worst_sigma = 0.0;
  for (const auto& row : rows) {
    if (row.label != "a") continue;
    std::printf("%d %.4f %.4f %.4f %.4f\n", static_cast<int>(row.x),
                100 * row.value_of("analytic_delta"),
                100 * row.value_of("analytic_sigma"),
                100 * row.value_of("measured_delta"),
                100 * row.value_of("measured_sigma"));
    worst_delta = std::max(worst_delta, row.value_of("analytic_delta"));
    worst_sigma = std::max(worst_sigma, row.value_of("analytic_sigma"));
  }
  std::cout << "\n# Fig 9(b): overhead (percent) vs slot duration, N = 10\n"
               "# t(s)  DELTA(analytic)  SIGMA(analytic)  DELTA(measured)  SIGMA(measured)\n";
  for (const auto& row : rows) {
    if (row.label != "b") continue;
    std::printf("%.1f %.4f %.4f %.4f %.4f\n", row.x,
                100 * row.value_of("analytic_delta"),
                100 * row.value_of("analytic_sigma"),
                100 * row.value_of("measured_delta"),
                100 * row.value_of("measured_sigma"));
    worst_delta = std::max(worst_delta, row.value_of("analytic_delta"));
    worst_sigma = std::max(worst_sigma, row.value_of("analytic_sigma"));
  }
  std::cout << "\n";
  exp::print_check(std::cout, "DELTA overhead across both sweeps",
                   "about 0.8%", 100 * worst_delta, "% (max)");
  exp::print_check(std::cout, "SIGMA overhead across both sweeps",
                   "under 0.6%", 100 * worst_sigma, "% (max)");
  exp::maybe_write_json(flags, "fig09_overhead", rows);
  return 0;
}
