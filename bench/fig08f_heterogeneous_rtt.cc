// Figure 8(f): heterogeneous round-trip times.
//
// One multicast session with 20 receivers whose RTTs spread uniformly
// between 30 ms and 220 ms (bottleneck propagation 5 ms; receiver access
// delays provide the spread). The paper shows the average throughput of
// FLID-DS receivers almost constant across RTTs and close to FLID-DL's.
#include <cmath>
#include <iostream>
#include <vector>

#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

namespace {

exp::series run(exp::flid_mode mode, double duration_s, std::uint64_t seed) {
  exp::dumbbell_config cfg;
  cfg.sched = g_sched;
  cfg.bottleneck_bps = 250e3;
  cfg.bottleneck_delay = sim::milliseconds(5);
  cfg.seed = seed;
  exp::testbed d(exp::dumbbell(cfg));

  // RTT = 2 * (source access 10 ms + bottleneck 5 ms + receiver access x):
  // x_i chosen so RTTs cover [30, 220] ms uniformly across 20 receivers.
  std::vector<exp::receiver_options> receivers;
  std::vector<double> rtts_ms;
  for (int i = 0; i < 20; ++i) {
    const double rtt_ms = 30.0 + (220.0 - 30.0) * i / 19.0;
    rtts_ms.push_back(rtt_ms);
    exp::receiver_options opt;
    opt.access_delay = sim::milliseconds(
        static_cast<std::int64_t>((rtt_ms - 30.0) / 2.0));
    receivers.push_back(opt);
  }
  auto& session = d.add_flid_session(mode, receivers);
  const sim::time_ns horizon = sim::seconds(duration_s);
  d.run_until(horizon);

  exp::series out;
  const sim::time_ns t0 = sim::seconds(duration_s * 0.15);
  for (std::size_t i = 0; i < session.receivers.size(); ++i) {
    out.emplace_back(rtts_ms[i],
                     session.receivers[i]->monitor().average_kbps(t0, horizon));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(f): average throughput vs receiver RTT");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("seed", "19", "simulation seed");
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  // Grid: one point per protocol mode (x = 0 DL, x = 1 DS).
  const auto rows = exp::run_sweep(
      {0.0, 1.0}, opts, [&](const exp::sweep_point& pt) {
        const auto mode =
            pt.index == 0 ? exp::flid_mode::dl : exp::flid_mode::ds;
        exp::series s = run(mode, duration, pt.seed);
        double mean = 0.0;
        for (const auto& [rtt, v] : s) mean += v;
        mean /= static_cast<double>(s.size());
        double worst = 0.0;
        for (const auto& [rtt, v] : s) {
          worst = std::max(worst, std::abs(v - mean) / std::max(mean, 1.0));
        }
        exp::sweep_row row;
        row.label = pt.index == 0 ? "FLID-DL" : "FLID-DS";
        row.value("mean", mean);
        row.value("max_deviation", worst);
        row.trace("kbps_vs_rtt", std::move(s));
        return row;
      });

  exp::print_columns(std::cout,
                     "Fig 8(f): average throughput (Kbps) vs RTT (ms)",
                     {"FLID-DL", "FLID-DS"},
                     {*rows[0].trace_of("kbps_vs_rtt"),
                      *rows[1].trace_of("kbps_vs_rtt")});

  // Flatness check: max deviation from the mean across RTTs.
  for (const auto& row : rows) {
    exp::print_check(std::cout,
                     row.label + " max deviation from mean across RTTs",
                     "small (throughput independent of RTT)",
                     row.value_of("max_deviation"), "fraction");
    exp::print_check(std::cout, row.label + " mean across receivers",
                     "~200-250", row.value_of("mean"), "Kbps");
  }
  exp::maybe_write_json(flags, "fig08f_heterogeneous_rtt", rows);
  return 0;
}
