// Microbenchmarks for the cryptographic substrate: DELTA key pipelines,
// Shamir threshold sharing, Reed-Solomon FEC, tuple serialization.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/delta_layered.h"
#include "core/sigma_wire.h"
#include "crypto/oneway.h"
#include "crypto/prng.h"
#include "crypto/rs_code.h"
#include "crypto/shamir.h"

using namespace mcc;

static void bm_prng_next(benchmark::State& state) {
  crypto::prng g(1);
  for (auto _ : state) benchmark::DoNotOptimize(g.next());
}
BENCHMARK(bm_prng_next);

static void bm_oneway_mix(benchmark::State& state) {
  std::uint64_t x = 12345;
  for (auto _ : state) benchmark::DoNotOptimize(x = crypto::oneway_mix(x));
}
BENCHMARK(bm_oneway_mix);

static void bm_delta_begin_slot(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  core::delta_layered_sender sender(1, groups, 16, 7);
  std::vector<int> counts(static_cast<std::size_t>(groups) + 1, 20);
  std::int64_t slot = 0;
  for (auto _ : state) {
    sender.begin_slot(slot++, 0xfffffffe, counts);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_delta_begin_slot)->Arg(4)->Arg(10)->Arg(20);

static void bm_delta_fill_fields(benchmark::State& state) {
  core::delta_layered_sender sender(1, 10, 16, 7);
  std::vector<int> counts(11, 1 << 20);  // effectively unbounded
  sender.begin_slot(0, 0, counts);
  sim::flid_data hdr;
  int g = 1;
  for (auto _ : state) {
    sender.fill_fields(0, g, 0, false, hdr);
    benchmark::DoNotOptimize(hdr.component);
    g = (g % 10) + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_delta_fill_fields);

static void bm_delta_reconstruct(benchmark::State& state) {
  const int groups = 10;
  core::delta_layered_sender sender(1, groups, 16, 7);
  core::delta_layered_receiver receiver(groups);
  std::vector<int> counts(static_cast<std::size_t>(groups) + 1, 20);
  sender.begin_slot(0, 0, counts);
  flid::slot_summary s;
  s.slot = 0;
  s.level = groups;
  s.groups.assign(static_cast<std::size_t>(groups) + 1, {});
  for (int g = 1; g <= groups; ++g) {
    auto& rec = s.groups[static_cast<std::size_t>(g)];
    rec.full_slot = true;
    for (int i = 0; i < 20; ++i) {
      sim::flid_data hdr;
      sender.fill_fields(0, g, i, i == 19, hdr);
      ++rec.received;
      rec.expected = 20;
      rec.xor_components ^= hdr.component;
      if (g >= 2) rec.decrease = hdr.decrease;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(receiver.reconstruct(s));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_delta_reconstruct);

static void bm_shamir_split(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = (3 * n) / 4;
  crypto::prng g(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::shamir_split(123456, k, n, g));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_shamir_split)->Arg(20)->Arg(50)->Arg(100);

static void bm_shamir_reconstruct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = (3 * n) / 4;
  crypto::prng g(5);
  const auto shares = crypto::shamir_split(987654, k, n, g);
  const std::vector<crypto::shamir_share> subset(shares.begin(),
                                                 shares.begin() + k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::shamir_reconstruct({subset.data(), subset.size()}));
  }
}
BENCHMARK(bm_shamir_reconstruct)->Arg(20)->Arg(50);

static void bm_rs_encode(benchmark::State& state) {
  const int k = 4;
  const int m = 4;
  crypto::prng g(9);
  std::vector<crypto::shard> data(k, crypto::shard(static_cast<std::size_t>(state.range(0))));
  for (auto& s : data) {
    for (auto& b : s) b = static_cast<std::uint8_t>(g.next());
  }
  crypto::rs_code code(k, m);
  for (auto _ : state) benchmark::DoNotOptimize(code.encode(data));
  state.SetBytesProcessed(state.iterations() * state.range(0) * k);
}
BENCHMARK(bm_rs_encode)->Arg(64)->Arg(512);

static void bm_rs_decode_worst_case(benchmark::State& state) {
  const int k = 4;
  const int m = 4;
  crypto::prng g(9);
  std::vector<crypto::shard> data(k, crypto::shard(static_cast<std::size_t>(state.range(0))));
  for (auto& s : data) {
    for (auto& b : s) b = static_cast<std::uint8_t>(g.next());
  }
  crypto::rs_code code(k, m);
  const auto cw = code.encode(data);
  std::vector<crypto::indexed_shard> parity_only;
  for (int i = k; i < k + m; ++i) {
    parity_only.push_back(crypto::indexed_shard{i, cw[static_cast<std::size_t>(i)]});
  }
  for (auto _ : state) benchmark::DoNotOptimize(code.decode(parity_only));
  state.SetBytesProcessed(state.iterations() * state.range(0) * k);
}
BENCHMARK(bm_rs_decode_worst_case)->Arg(64)->Arg(512);

static void bm_sigma_serialize(benchmark::State& state) {
  core::delta_layered_sender sender(1, 10, 16, 7);
  std::vector<int> counts(11, 5);
  sender.begin_slot(0, 0xfffffffe, counts);
  std::vector<sim::group_addr> groups;
  for (int g = 1; g <= 10; ++g) groups.push_back(sim::group_addr{1000 + g});
  const auto block = core::block_from_keys(*sender.keys_for(2), groups,
                                           sim::milliseconds(250), 16);
  for (auto _ : state) benchmark::DoNotOptimize(core::serialize(block));
}
BENCHMARK(bm_sigma_serialize);

static void bm_sigma_deserialize(benchmark::State& state) {
  core::delta_layered_sender sender(1, 10, 16, 7);
  std::vector<int> counts(11, 5);
  sender.begin_slot(0, 0xfffffffe, counts);
  std::vector<sim::group_addr> groups;
  for (int g = 1; g <= 10; ++g) groups.push_back(sim::group_addr{1000 + g});
  const auto bytes = core::serialize(core::block_from_keys(
      *sender.keys_for(2), groups, sim::milliseconds(250), 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::deserialize_key_block(bytes));
  }
}
BENCHMARK(bm_sigma_deserialize);

BENCHMARK_MAIN();
