// Figure 8(d): average multicast throughput with cross traffic.
//
// n multicast sessions compete with n TCP sessions plus an on-off CBR
// session (on-rate 10% of the bottleneck capacity, 5 s on / 5 s off).
// Bottleneck capacity keeps the 250 Kbps fair share per session. The paper's
// claim: the multicast allocation depends on the session count, but FLID-DL
// and FLID-DS receivers see similar averages.
#include <cmath>
#include <iostream>
#include <vector>

#include "crypto/prng.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {

double run(exp::flid_mode mode, int sessions, double duration_s,
           std::uint64_t seed) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 250e3 * (2 * sessions);
  cfg.seed = seed;
  exp::testbed d(exp::dumbbell(cfg));
  std::vector<exp::flid_session*> handles;
  for (int i = 0; i < sessions; ++i) {
    handles.push_back(&d.add_flid_session(mode, {exp::receiver_options{}}));
  }
  for (int i = 0; i < sessions; ++i) d.add_tcp_flow();
  traffic::cbr_config cbr;
  cbr.rate_bps = 0.1 * cfg.bottleneck_bps;
  cbr.on_duration = sim::seconds(5.0);
  cbr.off_duration = sim::seconds(5.0);
  d.add_cbr(cbr);

  const sim::time_ns horizon = sim::seconds(duration_s);
  d.run_until(horizon);
  double avg = 0.0;
  const sim::time_ns t0 = sim::seconds(duration_s * 0.1);
  for (auto* s : handles) {
    avg += s->receiver().monitor().average_kbps(t0, horizon);
  }
  return avg / sessions;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(d): average multicast throughput with cross traffic");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("max_sessions", "18", "largest multicast session count");
  flags.add("seed", "13", "simulation seed");
  flags.add("repeats", "3", "seeds averaged per data point");
  exp::add_sweep_flags(flags);
  if (!flags.parse(argc, argv)) return 1;

  const double duration = flags.f64("duration");
  const int repeats = static_cast<int>(flags.i64("repeats"));
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));
  std::vector<double> counts;
  for (int n = 1; n <= flags.i64("max_sessions"); n += (n == 1 ? 1 : 2)) {
    counts.push_back(n);
  }

  const auto rows = exp::run_sweep(
      counts, opts, [&](const exp::sweep_point& pt) {
        const int n = static_cast<int>(pt.x);
        double dl = 0.0;
        double ds = 0.0;
        std::uint64_t sm = pt.seed;  // per-repeat sub-streams of this point
        for (int rep = 0; rep < repeats; ++rep) {
          dl += run(exp::flid_mode::dl, n, duration, crypto::splitmix64(sm));
          ds += run(exp::flid_mode::ds, n, duration, crypto::splitmix64(sm));
        }
        exp::sweep_row row;
        row.value("dl_avg", dl / repeats);
        row.value("ds_avg", ds / repeats);
        return row;
      });

  const exp::series dl_avg = exp::column(rows, "dl_avg");
  const exp::series ds_avg = exp::column(rows, "ds_avg");
  exp::print_columns(
      std::cout,
      "Fig 8(d): average multicast throughput (Kbps) vs #sessions, with n TCP + on-off CBR",
      {"FLID-DL", "FLID-DS"}, {dl_avg, ds_avg});

  double worst_gap = 0.0;
  for (std::size_t i = 0; i < dl_avg.size(); ++i) {
    const double gap = std::abs(dl_avg[i].second - ds_avg[i].second) /
                       std::max(dl_avg[i].second, 1.0);
    worst_gap = std::max(worst_gap, gap);
  }
  exp::print_check(std::cout, "max relative DL-vs-DS average gap",
                   "small (curves overlap)", worst_gap, "fraction");
  exp::maybe_write_json(flags, "fig08d_average_with_cross", rows);
  return 0;
}
