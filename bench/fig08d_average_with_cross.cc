// Figure 8(d): average multicast throughput with cross traffic.
//
// n multicast sessions compete with n TCP sessions plus an on-off CBR
// session (on-rate 10% of the bottleneck capacity, 5 s on / 5 s off).
// Bottleneck capacity keeps the 250 Kbps fair share per session. The paper's
// claim: the multicast allocation depends on the session count, but FLID-DL
// and FLID-DS receivers see similar averages.
//
// The bottleneck queue discipline is a sweep axis: `--qdisc=droptail,red`
// (or `all`) re-runs the whole session-count grid once per discipline, and
// every row reports the bottleneck's ECN-vs-loss split plus a sampled
// queue-occupancy trace in the BENCH JSON.
#include <cmath>
#include <iostream>
#include <vector>

#include "crypto/prng.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

namespace {

struct run_result {
  double avg_kbps = 0.0;
  sim::link_stats bottleneck;
  double avg_queue_bytes = 0.0;
  exp::series queue_trace;  // (seconds, queued bytes), 1 Hz
};

run_result run(exp::flid_mode mode, int sessions, double duration_s,
               std::uint64_t seed, const sim::aqm_config& aqm,
               bool want_trace) {
  exp::dumbbell_config cfg;
  cfg.sched = g_sched;
  cfg.bottleneck_bps = 250e3 * (2 * sessions);
  cfg.seed = seed;
  cfg.aqm = aqm;
  exp::testbed d(exp::dumbbell(cfg));
  std::vector<exp::flid_session*> handles;
  for (int i = 0; i < sessions; ++i) {
    handles.push_back(&d.add_flid_session(mode, {exp::receiver_options{}}));
  }
  for (int i = 0; i < sessions; ++i) d.add_tcp_flow();
  traffic::cbr_config cbr;
  cbr.rate_bps = 0.1 * cfg.bottleneck_bps;
  cbr.on_duration = sim::seconds(5.0);
  cbr.off_duration = sim::seconds(5.0);
  d.add_cbr(cbr);

  run_result res;
  if (want_trace) {
    sim::link* bn = d.bottleneck();
    for (int t = 1; t < static_cast<int>(duration_s); ++t) {
      d.sched().at(sim::seconds(static_cast<double>(t)), [&res, bn, t] {
        res.queue_trace.emplace_back(static_cast<double>(t),
                                     static_cast<double>(bn->queued_bytes()));
      });
    }
  }

  const sim::time_ns horizon = sim::seconds(duration_s);
  d.run_until(horizon);
  const sim::time_ns t0 = sim::seconds(duration_s * 0.1);
  for (auto* s : handles) {
    res.avg_kbps += s->receiver().monitor().average_kbps(t0, horizon);
  }
  res.avg_kbps /= sessions;
  res.bottleneck = d.bottleneck()->stats();
  res.avg_queue_bytes = d.bottleneck()->time_avg_queued_bytes(horizon);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(d): average multicast throughput with cross traffic");
  flags.add("duration", "200", "experiment length, seconds");
  flags.add("max_sessions", "18", "largest multicast session count");
  flags.add("seed", "13", "simulation seed");
  flags.add("repeats", "3", "seeds averaged per data point");
  exp::add_aqm_flags(flags);
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const int repeats = static_cast<int>(flags.i64("repeats"));
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));
  const sim::aqm_config base_aqm = exp::aqm_config_from_flags(flags);
  const std::vector<sim::qdisc> qdiscs = exp::qdisc_list_from_flags(flags);
  std::vector<double> counts;
  for (int n = 1; n <= flags.i64("max_sessions"); n += (n == 1 ? 1 : 2)) {
    counts.push_back(n);
  }

  // Grid: session counts x queue disciplines, flattened in qdisc-major order
  // so every discipline sweeps the full count range.
  std::vector<double> grid;
  for (std::size_t q = 0; q < qdiscs.size(); ++q) {
    grid.insert(grid.end(), counts.begin(), counts.end());
  }

  const auto rows = exp::run_sweep(
      grid, opts, [&](const exp::sweep_point& pt) {
        const int n = static_cast<int>(pt.x);
        sim::aqm_config aqm = base_aqm;
        aqm.discipline = qdiscs[pt.index / counts.size()];
        double dl = 0.0;
        double ds = 0.0;
        run_result ds_probe;  // stats/trace from the first DS repeat
        std::uint64_t sm = pt.seed;  // per-repeat sub-streams of this point
        for (int rep = 0; rep < repeats; ++rep) {
          dl += run(exp::flid_mode::dl, n, duration, crypto::splitmix64(sm),
                    aqm, false)
                    .avg_kbps;
          run_result ds_run = run(exp::flid_mode::ds, n, duration,
                                  crypto::splitmix64(sm), aqm, rep == 0);
          if (rep == 0) ds_probe = ds_run;
          ds += ds_run.avg_kbps;
        }
        exp::sweep_row row;
        row.label = sim::qdisc_name(aqm.discipline);
        row.value("dl_avg", dl / repeats);
        row.value("ds_avg", ds / repeats);
        const sim::link_stats& bn = ds_probe.bottleneck;
        row.value("ds_bn_dropped", static_cast<double>(bn.dropped));
        row.value("ds_bn_aqm_dropped", static_cast<double>(bn.aqm_dropped));
        row.value("ds_bn_ecn_marked", static_cast<double>(bn.ecn_marked));
        row.value("ds_bn_bytes_dropped", static_cast<double>(bn.bytes_dropped));
        row.value("ds_bn_avg_queue_bytes", ds_probe.avg_queue_bytes);
        row.trace("ds_bn_queue_bytes", std::move(ds_probe.queue_trace));
        return row;
      });

  double worst_gap = 0.0;
  for (std::size_t q = 0; q < qdiscs.size(); ++q) {
    const std::vector<exp::sweep_row> slice(
        rows.begin() + static_cast<std::ptrdiff_t>(q * counts.size()),
        rows.begin() + static_cast<std::ptrdiff_t>((q + 1) * counts.size()));
    const exp::series dl_avg = exp::column(slice, "dl_avg");
    const exp::series ds_avg = exp::column(slice, "ds_avg");
    exp::print_columns(
        std::cout,
        std::string("Fig 8(d): average multicast throughput (Kbps) vs "
                    "#sessions, with n TCP + on-off CBR [qdisc=") +
            sim::qdisc_name(qdiscs[q]) + "]",
        {"FLID-DL", "FLID-DS"}, {dl_avg, ds_avg});
    for (std::size_t i = 0; i < dl_avg.size(); ++i) {
      const double gap = std::abs(dl_avg[i].second - ds_avg[i].second) /
                         std::max(dl_avg[i].second, 1.0);
      worst_gap = std::max(worst_gap, gap);
    }
  }
  exp::print_check(std::cout, "max relative DL-vs-DS average gap",
                   "small (curves overlap)", worst_gap, "fraction");
  exp::maybe_write_json(flags, "fig08d_average_with_cross", rows);
  return 0;
}
