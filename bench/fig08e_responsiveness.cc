// Figure 8(e): responsiveness.
//
// One multicast session shares the bottleneck with an on-off CBR session
// that transmits 800 Kbps between t = 45 s and t = 75 s. The paper shows
// FLID-DS tracking FLID-DL's reaction: both shed layers during the burst and
// recover after it.
//
// The paper's default "fair share 250 Kbps" sizing cannot apply here (the
// multicast session reaches ~1 Mbps before the burst in the paper's plot);
// we use a 1.25 Mbps bottleneck, which reproduces the figure's scale.
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {
// --sched: every simulated world this bench builds runs the chosen policy.
sim::scheduler_config g_sched;
}  // namespace

namespace {

exp::series run(exp::flid_mode mode, double duration_s, std::uint64_t seed) {
  exp::dumbbell_config cfg;
  cfg.sched = g_sched;
  cfg.bottleneck_bps = 1.25e6;
  cfg.seed = seed;
  exp::testbed d(exp::dumbbell(cfg));
  auto& session = d.add_flid_session(mode, {exp::receiver_options{}});
  traffic::cbr_config cbr;
  cbr.rate_bps = 800e3;
  cbr.start_time = sim::seconds(45.0);
  cbr.stop_time = sim::seconds(75.0);
  d.add_cbr(cbr);
  d.run_until(sim::seconds(duration_s));
  return session.receiver().monitor().series_kbps();
}

double window_avg(const exp::series& s, double t0, double t1) {
  double sum = 0.0;
  int n = 0;
  for (const auto& [t, v] : s) {
    if (t < t0 || t > t1) continue;
    sum += v;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(e): responsiveness to an 800 Kbps CBR burst");
  flags.add("duration", "100", "experiment length, seconds");
  flags.add("seed", "17", "simulation seed");
  exp::add_sweep_flags(flags);
  exp::add_sched_flag(flags);
  if (!flags.parse(argc, argv)) return 1;
  g_sched = exp::sched_config_from_flags(flags);

  const double duration = flags.f64("duration");
  const auto opts = exp::sweep_options_from_flags(
      flags, static_cast<std::uint64_t>(flags.i64("seed")));

  // Grid: one point per protocol mode (x = 0 DL, x = 1 DS).
  const auto rows = exp::run_sweep(
      {0.0, 1.0}, opts, [&](const exp::sweep_point& pt) {
        const auto mode =
            pt.index == 0 ? exp::flid_mode::dl : exp::flid_mode::ds;
        exp::series s = run(mode, duration, pt.seed);
        exp::sweep_row row;
        row.label = pt.index == 0 ? "FLID-DL" : "FLID-DS";
        row.value("before", window_avg(s, 35.0, 44.0));
        row.value("during", window_avg(s, 55.0, 74.0));
        row.value("after", window_avg(s, 85.0, duration));
        row.trace("kbps", std::move(s));
        return row;
      });

  for (const auto& row : rows) {
    exp::print_series(std::cout,
                      "Fig 8(e): " + row.label + " Kbps vs s (burst 45-75 s)",
                      *row.trace_of("kbps"), 30.0, duration);
  }
  for (const auto& row : rows) {
    exp::print_check(std::cout, row.label + " before burst", "high (~1000)",
                     row.value_of("before"), "Kbps");
    exp::print_check(std::cout, row.label + " during burst",
                     "sheds layers (~300-400)", row.value_of("during"), "Kbps");
    exp::print_check(std::cout, row.label + " after burst", "recovers",
                     row.value_of("after"), "Kbps");
  }
  exp::maybe_write_json(flags, "fig08e_responsiveness", rows);
  return 0;
}
