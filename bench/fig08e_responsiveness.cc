// Figure 8(e): responsiveness.
//
// One multicast session shares the bottleneck with an on-off CBR session
// that transmits 800 Kbps between t = 45 s and t = 75 s. The paper shows
// FLID-DS tracking FLID-DL's reaction: both shed layers during the burst and
// recover after it.
//
// The paper's default "fair share 250 Kbps" sizing cannot apply here (the
// multicast session reaches ~1 Mbps before the burst in the paper's plot);
// we use a 1.25 Mbps bottleneck, which reproduces the figure's scale.
#include <iostream>

#include "exp/report.h"
#include "exp/testbed.h"
#include "util/flags.h"

using namespace mcc;

namespace {

exp::series run(exp::flid_mode mode, double duration_s, std::uint64_t seed) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1.25e6;
  cfg.seed = seed;
  exp::testbed d(exp::dumbbell(cfg));
  auto& session = d.add_flid_session(mode, {exp::receiver_options{}});
  traffic::cbr_config cbr;
  cbr.rate_bps = 800e3;
  cbr.start_time = sim::seconds(45.0);
  cbr.stop_time = sim::seconds(75.0);
  d.add_cbr(cbr);
  d.run_until(sim::seconds(duration_s));
  return session.receiver().monitor().series_kbps();
}

double window_avg(const exp::series& s, double t0, double t1) {
  double sum = 0.0;
  int n = 0;
  for (const auto& [t, v] : s) {
    if (t < t0 || t > t1) continue;
    sum += v;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags("Figure 8(e): responsiveness to an 800 Kbps CBR burst");
  flags.add("duration", "100", "experiment length, seconds");
  flags.add("seed", "17", "simulation seed");
  if (!flags.parse(argc, argv)) return 1;

  const double duration = flags.f64("duration");
  const auto seed = static_cast<std::uint64_t>(flags.i64("seed"));
  const exp::series dl = run(exp::flid_mode::dl, duration, seed);
  const exp::series ds = run(exp::flid_mode::ds, duration, seed + 1);

  exp::print_series(std::cout, "Fig 8(e): FLID-DL Kbps vs s (burst 45-75 s)",
                    dl, 30.0, duration);
  exp::print_series(std::cout, "Fig 8(e): FLID-DS Kbps vs s (burst 45-75 s)",
                    ds, 30.0, duration);

  for (const auto& [name, s] : {std::pair{"FLID-DL", &dl}, {"FLID-DS", &ds}}) {
    const double before = window_avg(*s, 35.0, 44.0);
    const double during = window_avg(*s, 55.0, 74.0);
    const double after = window_avg(*s, 85.0, duration);
    exp::print_check(std::cout, std::string(name) + " before burst",
                     "high (~1000)", before, "Kbps");
    exp::print_check(std::cout, std::string(name) + " during burst",
                     "sheds layers (~300-400)", during, "Kbps");
    exp::print_check(std::cout, std::string(name) + " after burst",
                     "recovers", after, "Kbps");
  }
  return 0;
}
