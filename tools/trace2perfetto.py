#!/usr/bin/env python3
"""Convert an MCCT event trace (a bench's --trace output) to Chrome/Perfetto
trace JSON.

Usage:
  tools/trace2perfetto.py TRACE.bin [-o OUT.json] [--summary]

Open the output at https://ui.perfetto.dev or chrome://tracing. Each traced
sweep row becomes one "process"; each engine track (one per link direction,
per SIGMA router interface, and per receiver) becomes one named "thread"
inside it, so the per-interface timelines line up vertically.

File format (all integers little-endian; see docs/observability.md):

  container:  "MCCT" magic, u32 version (1), u32 segment_count, then per
              segment: u32 row_index, u64 blob_size, blob
  segment:    u32 track_count, per track u32 name_len + name bytes,
              u64 record_count, then record_count raw 32-byte records
  record:     i64 t_ns, u32 track, u16 kind, u16 reserved, u64 a, u64 b

Timestamps are simulated nanoseconds; the converter emits microseconds (the
Chrome trace unit), so one simulated second reads as one second in the UI.
"""

import argparse
import json
import struct
import sys

# Mirrors obs::trace_event / trace_event_name() in src/obs/trace.h.
EVENT_NAMES = {
    1: "packet_enqueue",
    2: "packet_drop",
    3: "packet_mark",
    4: "packet_deliver",
    5: "subscribe",
    6: "unsubscribe",
    7: "session_join",
    8: "grace_open",
    9: "grace_close",
    10: "probation_record",
    11: "probation_inherit",
    12: "probation_refuse",
    13: "slot_feedback",
    14: "cutoff",
}

RECORD = struct.Struct("<qIHHQQ")  # t_ns, track, kind, reserved, a, b
assert RECORD.size == 32


class TraceError(ValueError):
    pass


def _take(data, offset, n, what):
    if offset + n > len(data):
        raise TraceError(f"truncated trace: need {n} bytes for {what} at "
                         f"offset {offset}, file has {len(data)}")
    return data[offset:offset + n], offset + n


def parse_segment(blob):
    """Returns (track_names, records) where records are RECORD tuples."""
    off = 0
    raw, off = _take(blob, off, 4, "track count")
    (ntracks,) = struct.unpack("<I", raw)
    tracks = []
    for i in range(ntracks):
        raw, off = _take(blob, off, 4, f"track {i} name length")
        (nlen,) = struct.unpack("<I", raw)
        raw, off = _take(blob, off, nlen, f"track {i} name")
        tracks.append(raw.decode("utf-8"))
    raw, off = _take(blob, off, 8, "record count")
    (nrecords,) = struct.unpack("<Q", raw)
    raw, off = _take(blob, off, nrecords * RECORD.size, "records")
    records = list(RECORD.iter_unpack(raw))
    if off != len(blob):
        raise TraceError(f"segment has {len(blob) - off} trailing bytes")
    return tracks, records


def parse_container(data):
    """Returns a list of (row_index, track_names, records)."""
    off = 0
    raw, off = _take(data, off, 4, "magic")
    if raw != b"MCCT":
        raise TraceError(f"bad magic {raw!r} (expected b'MCCT')")
    raw, off = _take(data, off, 8, "header")
    version, nsegments = struct.unpack("<II", raw)
    if version != 1:
        raise TraceError(f"unsupported container version {version}")
    segments = []
    for i in range(nsegments):
        raw, off = _take(data, off, 12, f"segment {i} header")
        row_index, blob_size = struct.unpack("<IQ", raw)
        blob, off = _take(data, off, blob_size, f"segment {i} blob")
        tracks, records = parse_segment(blob)
        segments.append((row_index, tracks, records))
    if off != len(data):
        raise TraceError(f"container has {len(data) - off} trailing bytes")
    return segments


def to_trace_events(segments):
    events = []
    for row_index, tracks, records in segments:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": row_index,
            "tid": 0,
            "args": {"name": f"row {row_index}"},
        })
        for tid, name in enumerate(tracks):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": row_index,
                "tid": tid,
                "args": {"name": name},
            })
        for t_ns, track, kind, _reserved, a, b in records:
            events.append({
                "name": EVENT_NAMES.get(kind, f"event_{kind}"),
                "cat": "mcc",
                "ph": "i",
                "s": "t",
                "pid": row_index,
                "tid": track,
                "ts": t_ns / 1000.0,
                "args": {"a": a, "b": b},
            })
    return events


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Convert an MCCT --trace file to Chrome/Perfetto JSON")
    ap.add_argument("trace", help="MCCT trace file written by a bench")
    ap.add_argument("-o", "--output",
                    help="output JSON path (default: TRACE.json)")
    ap.add_argument("--summary", action="store_true",
                    help="print per-row track/record counts to stderr")
    args = ap.parse_args(argv)

    with open(args.trace, "rb") as f:
        data = f.read()
    try:
        segments = parse_container(data)
    except TraceError as e:
        print(f"error: {args.trace}: {e}", file=sys.stderr)
        return 1

    if args.summary:
        for row_index, tracks, records in segments:
            print(f"row {row_index}: {len(tracks)} tracks, "
                  f"{len(records)} records", file=sys.stderr)

    out_path = args.output or (args.trace.rsplit(".", 1)[0] + ".json")
    doc = {"traceEvents": to_trace_events(segments), "displayTimeUnit": "ms"}
    with open(out_path, "w") as f:
        json.dump(doc, f)
    total = sum(len(records) for _, _, records in segments)
    print(f"wrote {out_path} ({len(segments)} rows, {total} events)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
