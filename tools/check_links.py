#!/usr/bin/env python3
"""Check markdown links in README/docs/ against the working tree.

Verifies every inline markdown link `[text](target)` whose target is a
relative path: the referenced file must exist (relative to the markdown
file's directory), and a `#fragment` on a markdown target must match a
heading in that file (GitHub anchor rules: lowercase, spaces to dashes,
punctuation stripped). External links (http/https/mailto) are only checked
for empty targets — CI has no business depending on the network.

Usage:

  tools/check_links.py README.md docs/*.md

Exit 1 with one line per broken link. Stdlib only.
"""

import os
import re
import sys

# Inline links, skipping images' leading "!" is harmless (the target must
# resolve either way). Code spans are stripped first so `[x](y)` in inline
# code is not parsed as a link.
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")


def github_anchor(heading):
    """GitHub's heading -> anchor id transform (ASCII approximation)."""
    text = re.sub(r"[`*_~\[\]()]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    anchors = set()
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                anchors.add(github_anchor(m.group(1)))
    return anchors


def check_file(md_path):
    errors = []
    base = os.path.dirname(md_path) or "."
    with open(md_path, encoding="utf-8") as f:
        lines = f.readlines()
    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(CODE_SPAN_RE.sub("", line)):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                path, frag = md_path, target[1:]
            elif "#" in target:
                rel, frag = target.split("#", 1)
                path = os.path.normpath(os.path.join(base, rel))
            else:
                path, frag = os.path.normpath(os.path.join(base, target)), None
            if not os.path.exists(path):
                errors.append(f"{md_path}:{lineno}: broken link "
                              f"'{target}' (no such file {path})")
                continue
            if frag is not None and path.endswith(".md"):
                if frag not in anchors_of(path):
                    errors.append(f"{md_path}:{lineno}: broken anchor "
                                  f"'{target}' (no heading #{frag})")
    return errors


def main():
    if len(sys.argv) < 2:
        raise SystemExit(__doc__)
    errors = []
    for md in sys.argv[1:]:
        if not os.path.exists(md):
            errors.append(f"{md}: no such file")
            continue
        errors.extend(check_file(md))
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(sys.argv) - 1} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
