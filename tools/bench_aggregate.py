#!/usr/bin/env python3
"""Join BENCH_*.json artifacts into one dashboard table and flag regressions.

Two input schemas are understood:

  * exp::sweep documents ({"bench": ..., "rows": [{"x", "label", "values",
    "traces"}, ...]}) — every fig*/ablation* bench writes these via --json.
    Versioned by an explicit "schema_version" field: documents that carry one
    are dispatched on it (2 adds per-row "metrics" objects — engine metrics
    from obs::registry — and an optional wall-clock "profile" block);
    documents without one are the historical version-1 shape.
  * google-benchmark documents ({"benchmarks": [...]}) — the micro_* benches
    write these via --benchmark_out (traced metrics: real_time, cpu_time,
    and any user counters).

Per-row "metrics" join the dashboard and the regression gate like any value
column. The "profile" block is wall-clock (environment noise by design), so
it is dashboard-only: shown in markdown/CSV, never compared against a
baseline.

Usage:

  # Aggregate one artifact set into markdown + CSV:
  tools/bench_aggregate.py out/BENCH_*.json --out-md dash.md --out-csv dash.csv

  # Compare two commits' artifact sets and flag metric drift > 10%:
  tools/bench_aggregate.py current/ --baseline baseline/ \
      --threshold 0.10 --fail-on-regress

Directories are scanned for BENCH_*.json. Regression checking compares every
(bench, row, metric) triple present in both sets; drift beyond --threshold in
either direction is flagged (a big "improvement" is often a broken metric).
Stdlib only — runs anywhere CI has a python3.
"""

import argparse
import csv
import glob
import json
import math
import os
import sys

# Records are (bench, row_key, metric, value, comparable) tuples; comparable
# is False for dashboard-only metrics (the wall-clock profile block).

SWEEP_VERSIONS = (1, 2)


def collect_paths(args_paths):
    paths = []
    for p in args_paths:
        if os.path.isdir(p):
            paths.extend(sorted(glob.glob(os.path.join(p, "BENCH_*.json"))))
        else:
            paths.append(p)
    return paths


def load_sweep(path, doc, version):
    """Yields records from an exp::sweep document of the given version."""
    if version not in SWEEP_VERSIONS:
        print(f"warning: {path}: unsupported sweep schema_version {version} "
              f"(this tool knows {SWEEP_VERSIONS}); skipped — its metrics "
              f"are NOT aggregated", file=sys.stderr)
        return
    bench = doc.get("bench") or os.path.basename(path)
    # Labels are not necessarily unique across a sweep (e.g. one label
    # per qdisc while sweeping session counts); disambiguate repeated
    # labels with the row's grid coordinate so no row is collapsed away.
    label_counts = {}
    for row in doc.get("rows", []):
        label = row.get("label") or ""
        label_counts[label] = label_counts.get(label, 0) + 1
    seen = set()
    for i, row in enumerate(doc.get("rows", [])):
        label = row.get("label") or ""
        if label and label_counts[label] == 1:
            key = label
        else:
            key = f"{label}@x={row.get('x', i)}" if label \
                else f"x={row.get('x', i)}"
        if key in seen:  # same label AND x: keep rows apart regardless
            key = f"{key}#{i}"
        seen.add(key)
        for metric, value in row.get("values", {}).items():
            if isinstance(value, (int, float)) and value is not None:
                yield bench, key, metric, float(value), True
        if version >= 2:
            # Engine-metrics snapshots are deterministic (jobs-invariant),
            # so they are fair game for the regression gate.
            for metric, value in row.get("metrics", {}).items():
                if isinstance(value, (int, float)) and value is not None:
                    yield bench, key, metric, float(value), True
    if version >= 2 and "profile" in doc:
        # Wall-clock self-profiling: dashboard-only (never compared — run-to-
        # run wall-clock drift is machine noise, not a regression signal).
        profile = doc["profile"]
        for metric, value in profile.items():
            if isinstance(value, (int, float)):
                yield bench, "(profile)", metric, float(value), False
        point_ms = profile.get("point_ms", {})
        for metric in ("count", "sum"):
            if isinstance(point_ms.get(metric), (int, float)):
                yield (bench, "(profile)", f"point_ms.{metric}",
                       float(point_ms[metric]), False)


def load_records(path):
    """Yields (bench, row_key, metric, value, comparable) tuples."""
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}: not valid JSON ({e})")
    if not isinstance(doc, dict):
        print(f"warning: {path}: top level is {type(doc).__name__}, not an "
              f"object; skipped — its metrics are NOT aggregated",
              file=sys.stderr)
        return
    if "schema_version" in doc:  # versioned exp::sweep document
        yield from load_sweep(path, doc, doc["schema_version"])
    elif "rows" in doc:  # historical sweep documents predate the version field
        yield from load_sweep(path, doc, 1)
    elif "benchmarks" in doc:  # google-benchmark schema
        bench = os.path.basename(path).removeprefix("BENCH_").removesuffix(
            ".json")
        skipped_fields = {
            "name", "run_name", "run_type", "family_index",
            "per_family_instance_index", "repetitions", "repetition_index",
            "threads", "iterations", "time_unit", "aggregate_name",
        }
        for entry in doc["benchmarks"]:
            key = entry.get("name", "?")
            for metric, value in entry.items():
                if metric in skipped_fields:
                    continue
                if isinstance(value, (int, float)):
                    yield bench, key, metric, float(value), True
    else:
        # A skipped artifact silently shrinks the regression gate's coverage,
        # so name the file AND what it actually contained: a schema drift in
        # one bench should be visible in the CI log, not swallowed.
        columns = sorted(doc) if isinstance(doc, dict) else type(doc).__name__
        print(f"warning: {path}: matches no known schema "
              f"(expected a 'rows' or 'benchmarks' document, found "
              f"{columns}); skipped — its metrics are NOT aggregated",
              file=sys.stderr)


def load_set(paths):
    """Returns (records, noncompare): all records plus the dashboard-only
    key set (excluded from baseline comparison)."""
    records = {}
    noncompare = set()
    for path in paths:
        for bench, key, metric, value, comparable in load_records(path):
            records[(bench, key, metric)] = value
            if not comparable:
                noncompare.add((bench, key, metric))
    return records, noncompare


def fmt(value):
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
        return f"{value:.4g}"
    return f"{value:.3f}".rstrip("0").rstrip(".")


def write_markdown(records, out):
    """One section per bench: rows x metrics."""
    by_bench = {}
    for (bench, key, metric), value in records.items():
        by_bench.setdefault(bench, {}).setdefault(key, {})[metric] = value
    out.write("# Bench dashboard\n")
    for bench in sorted(by_bench):
        rows = by_bench[bench]
        metrics = sorted({m for row in rows.values() for m in row})
        out.write(f"\n## {bench}\n\n")
        out.write("| row | " + " | ".join(metrics) + " |\n")
        out.write("|---" * (len(metrics) + 1) + "|\n")
        for key in rows:  # insertion order = artifact order
            cells = [fmt(rows[key][m]) if m in rows[key] else "-"
                     for m in metrics]
            out.write(f"| {key} | " + " | ".join(cells) + " |\n")


def write_csv(records, out):
    w = csv.writer(out)
    w.writerow(["bench", "row", "metric", "value"])
    for (bench, key, metric), value in records.items():
        w.writerow([bench, key, metric, repr(value)])


def compare(current, baseline, threshold, noncompare=frozenset()):
    """Returns [(key, base, cur, rel_delta)] beyond threshold, worst first."""
    flagged = []
    for key, base in baseline.items():
        if key not in current or key in noncompare:
            continue
        cur = current[key]
        if math.isnan(base) or math.isnan(cur):
            continue
        denom = max(abs(base), 1e-12)
        rel = (cur - base) / denom
        if abs(rel) > threshold:
            flagged.append((key, base, cur, rel))
    flagged.sort(key=lambda f: -abs(f[3]))
    return flagged


def main():
    ap = argparse.ArgumentParser(
        description="Aggregate BENCH_*.json into a dashboard; optionally "
                    "compare against a baseline artifact set.")
    ap.add_argument("paths", nargs="+",
                    help="BENCH_*.json files or directories holding them")
    ap.add_argument("--out-md", help="write a markdown dashboard here")
    ap.add_argument("--out-csv", help="write a CSV dump here")
    ap.add_argument("--baseline",
                    help="baseline artifact file/directory to diff against")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative drift flagged as regression (default 0.10)")
    ap.add_argument("--fail-on-regress", action="store_true",
                    help="exit 1 when any metric drifts beyond the threshold")
    args = ap.parse_args()

    paths = collect_paths(args.paths)
    if not paths:
        raise SystemExit("no BENCH_*.json artifacts found")
    records, noncompare = load_set(paths)
    print(f"aggregated {len(records)} metrics from {len(paths)} artifact(s)")

    if args.out_md:
        with open(args.out_md, "w") as f:
            write_markdown(records, f)
        print(f"wrote {args.out_md}")
    if args.out_csv:
        with open(args.out_csv, "w", newline="") as f:
            write_csv(records, f)
        print(f"wrote {args.out_csv}")
    if not args.out_md and not args.out_csv and not args.baseline:
        write_markdown(records, sys.stdout)

    if args.baseline:
        base_paths = collect_paths([args.baseline])
        if not base_paths:
            raise SystemExit(
                f"--baseline {args.baseline}: no BENCH_*.json artifacts found")
        base, base_noncompare = load_set(base_paths)
        skip = noncompare | base_noncompare
        shared = sum(1 for k in base if k in records and k not in skip)
        if shared == 0:
            # Nothing to compare means the gate would silently pass on a
            # typo'd path, renamed bench, or row-key drift: fail loud.
            raise SystemExit(
                "--baseline shares no (bench, row, metric) keys with the "
                "current set — regression check is vacuous")
        flagged = compare(records, base, args.threshold, skip)
        print(f"compared {shared} shared metrics against baseline; "
              f"{len(flagged)} beyond ±{args.threshold:.0%}")
        for (bench, key, metric), b, c, rel in (
                (f[0], f[1], f[2], f[3]) for f in flagged):
            print(f"  {bench} / {key} / {metric}: "
                  f"{fmt(b)} -> {fmt(c)} ({rel:+.1%})")
        if flagged and args.fail_on_regress:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
