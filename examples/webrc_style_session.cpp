// Threshold-based layered multicast (RLM/WEBRC style) under DELTA/SIGMA.
//
// FLID-DL treats a single lost packet as congestion; RLM, MLDA, and WEBRC
// instead tolerate loss up to a per-level threshold. This example runs the
// same lightly-lossy path against both protocols: the single-loss protocol
// oscillates near the bottom while the 25%-threshold protocol holds the
// bandwidth-appropriate level — and its entitlement is enforced by Shamir
// threshold sharing, not by trusting the receiver (paper section 3.1.2).
#include <cstdio>

#include "core/tlm.h"
#include "exp/testbed.h"

using namespace mcc;

int main() {
  // 400 Kbps bottleneck: level 4 (338 Kbps) fits cleanly; level 5 (506 Kbps)
  // overshoots by ~20% — below a 25% loss threshold, fatal to FLID's
  // single-loss rule.
  constexpr double bottleneck = 400e3;

  // --- world A: FLID-DS (single packet loss = congestion) ------------------
  double flid_kbps = 0.0;
  int flid_level = 0;
  {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = bottleneck;
    cfg.seed = 11;
    exp::testbed d(exp::dumbbell(cfg));
    auto& s = d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
    d.run_until(sim::seconds(120.0));
    flid_kbps = s.receiver().monitor().average_kbps(sim::seconds(60.0),
                                                    sim::seconds(120.0));
    flid_level = s.receiver().level();
  }

  // --- world B: TLM, 25% loss threshold per level (RLM default) ------------
  double tlm_kbps = 0.0;
  int tlm_level = 0;
  core::tlm_sigma_strategy* strategy_raw = nullptr;
  {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = bottleneck;
    cfg.seed = 11;
    exp::testbed d(exp::dumbbell(cfg));
    flid::flid_config fc = d.default_flid_config(exp::flid_mode::ds);
    fc.session_id = 71;
    fc.group_addr_base = 71'000;
    const auto thresholds =
        core::threshold_config::uniform(fc.num_groups, 0.25, fc.key_bits);

    const auto src = d.attach_host("tlm_src", "l");
    flid::flid_sender sender(d.net(), src, fc, cfg.seed);
    auto bundle = core::make_tlm_sender(d.net(), src, sender, thresholds,
                                        cfg.seed + 1);
    sender.start(0);

    const auto dst = d.attach_host("tlm_rcv", "r");
    auto strategy = std::make_unique<core::tlm_sigma_strategy>(thresholds);
    strategy_raw = strategy.get();
    flid::flid_receiver receiver(d.net(), dst, d.router("r"), fc,
                                 std::move(strategy));
    receiver.start(0);
    d.run_until(sim::seconds(120.0));
    tlm_kbps = receiver.monitor().average_kbps(sim::seconds(60.0),
                                               sim::seconds(120.0));
    tlm_level = receiver.level();

    std::printf("400 Kbps bottleneck, identical topology and seed:\n\n");
    std::printf("  protocol              level  goodput   congestion rule\n");
    std::printf("  FLID-DS               %5d  %5.0f Kbps  one lost packet per slot\n",
                flid_level, flid_kbps);
    std::printf("  TLM (threshold 25%%)   %5d  %5.0f Kbps  loss rate above threshold\n",
                tlm_level, tlm_kbps);
    std::printf("\nTLM key enforcement this run: %llu level keys reconstructed, "
                "%llu withheld by the share threshold.\n",
                static_cast<unsigned long long>(
                    strategy_raw->tlm_stats().levels_reconstructed),
                static_cast<unsigned long long>(
                    strategy_raw->tlm_stats().levels_denied_by_threshold));
    std::printf("Both protocols ran over the *same* SIGMA edge router code —\n"
                "the access-control plane never learns which congestion\n"
                "control protocol it is guarding (paper Requirement 3).\n");
  }
  return 0;
}
