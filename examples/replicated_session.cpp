// Replicated multicast (destination-set grouping) with the Figure-5 DELTA
// instantiation.
//
// The session offers the same content in N groups at increasing rates; a
// receiver subscribes to exactly one group and switches down/up as its path
// dictates. This example runs the replicated protocol over IGMP in the
// simulator and, alongside it, walks the Figure-5 key algebra directly to
// show which keys a receiver can prove in each state.
#include <cstdio>
#include <set>

#include "core/delta_replicated.h"
#include "exp/testbed.h"
#include "flid/replicated.h"
#include "mcast/igmp.h"

using namespace mcc;

int main() {
  // --- part 1: the protocol in the network ---------------------------------
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 400e3;
  cfg.seed = 99;
  exp::testbed net(exp::dumbbell(cfg));

  flid::flid_config fc;
  fc.session_id = 601;
  fc.group_addr_base = 60'000;
  fc.num_groups = 6;
  fc.base_rate_bps = 100e3;
  fc.rate_multiplier = 1.4;
  fc.slot_duration = sim::milliseconds(500);

  const sim::node_id src = net.attach_host("rep_src", "l");
  flid::replicated_sender sender(net.net(), src, fc, cfg.seed);
  sender.start(0);

  const sim::node_id dst = net.attach_host("rep_rcv", "r");
  flid::replicated_receiver receiver(net.net(), dst, net.router("r"), fc);
  receiver.start(0);

  net.run_until(sim::seconds(60.0));
  std::printf("replicated session: %d groups, rates", fc.num_groups);
  for (int g = 1; g <= fc.num_groups; ++g) {
    std::printf(" %.0fK", fc.cumulative_rate_bps(g) / 1e3);
  }
  std::printf("\nbottleneck 400 Kbps -> receiver settled in group %d "
              "(%.0f Kbps content rate), goodput %.0f Kbps\n\n",
              receiver.current_group(),
              fc.cumulative_rate_bps(receiver.current_group()) / 1e3,
              receiver.monitor().average_kbps(sim::seconds(30.0),
                                              sim::seconds(60.0)));

  // --- part 2: the Figure-5 key algebra, step by step -----------------------
  std::printf("Figure-5 DELTA walkthrough (replicated, 4 groups, slot 0):\n");
  core::delta_replicated_sender delta(601, 4, 16, 7);
  std::vector<int> counts = {0, 5, 5, 5, 5};
  delta.begin_slot(0, /*upgrade to group 3 authorized=*/1u << 3, counts);

  // A receiver of group 2 collects that group's packets; we also build the
  // record of an unlucky twin that lost packet #2.
  flid::replicated_receiver::slot_record rec;
  rec.auth_mask = 1u << 3;
  flid::replicated_receiver::slot_record lossy = rec;
  for (int i = 0; i < 5; ++i) {
    sim::flid_data hdr;
    delta.fill_fields(0, 2, i, i == 4, hdr);
    ++rec.received;
    rec.expected = 5;
    rec.xor_components ^= hdr.component;
    rec.decrease = hdr.decrease;
    if (i != 2) {
      ++lossy.received;
      lossy.expected = 5;
      lossy.xor_components ^= hdr.component;
      lossy.decrease = hdr.decrease;
    }
  }
  const auto keys = delta.keys_for(2);  // keys guarding slot 2
  auto uncongested = core::reconstruct_replicated(rec, 2, 4);
  std::printf("  uncongested in group 2, upgrade to 3 authorized:\n");
  std::printf("    reconstructs key %04llx -> next group %d (tau_2 = iota_3: "
              "%s)\n",
              static_cast<unsigned long long>(uncongested.key->value),
              uncongested.next_group,
              (*uncongested.key == keys->top[2] &&
               keys->increase[3].has_value() &&
               *uncongested.key == *keys->increase[3])
                  ? "one value opens both doors"
                  : "MISMATCH");

  auto congested = core::reconstruct_replicated(lossy, 2, 4);
  std::printf("  congested in group 2 (1 loss):\n");
  std::printf("    falls back to decrease key %04llx -> group %d "
              "(matches delta_1: %s)\n",
              static_cast<unsigned long long>(congested.key->value),
              congested.next_group,
              (*congested.key == keys->decrease[1]) ? "yes" : "NO");
  std::printf("    the lossy component XOR %04llx does NOT open group 2: %s\n",
              static_cast<unsigned long long>(lossy.xor_components.value),
              (lossy.xor_components == keys->top[2]) ? "FAILED" : "correct");
  return 0;
}
