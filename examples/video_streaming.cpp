// Layered video streaming to a heterogeneous audience.
//
// The motivating workload for multi-group multicast congestion control: one
// sender streams 10 cumulative quality layers; twenty receivers sit behind
// access links from 256 Kbps (mobile-ish) to 10 Mbps (campus LAN). Each
// receiver's subscription converges to the highest layer its own path
// sustains — no feedback to the sender, no per-receiver state in the core —
// and DELTA/SIGMA guard every layer with per-slot keys throughout.
#include <cstdio>
#include <string>
#include <vector>

#include "core/flid_ds.h"
#include "exp/testbed.h"

using namespace mcc;

int main() {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 50e6;  // wide core: access links are the bottlenecks
  cfg.seed = 2026;
  exp::testbed net(exp::dumbbell(cfg));

  // Build the audience: five access-bandwidth classes, four receivers each.
  // We hand-build hosts so every receiver can have its own access rate.
  struct viewer {
    std::string name;
    double access_bps;
    sim::node_id host;
    std::unique_ptr<flid::flid_receiver> receiver;
  };
  std::vector<viewer> audience;
  const std::vector<std::pair<std::string, double>> classes = {
      {"dialup-dsl", 256e3}, {"dsl", 512e3},      {"cable", 1e6},
      {"fiber-lite", 2e6},   {"campus-lan", 10e6}};

  flid::flid_config fc = net.default_flid_config(exp::flid_mode::ds);
  fc.session_id = 501;
  fc.group_addr_base = 50'000;

  const sim::node_id studio =
      net.attach_host("studio", "l", 100e6, sim::milliseconds(5));
  flid::flid_sender sender(net.net(), studio, fc, cfg.seed);
  auto ds = core::make_flid_ds_sender(net.net(), studio, sender, cfg.seed + 1);
  sender.start(0);

  int idx = 0;
  for (const auto& [cls, bps] : classes) {
    for (int i = 0; i < 4; ++i) {
      viewer v;
      v.name = cls + "-" + std::to_string(i);
      v.access_bps = bps;
      v.host = net.attach_host(v.name, "r", bps,
                               sim::milliseconds(10 + 3 * (idx % 5)));
      audience.push_back(std::move(v));
      ++idx;
    }
  }
  for (auto& v : audience) {
    v.receiver = std::make_unique<flid::flid_receiver>(
        net.net(), v.host, net.router("r"), fc,
        std::make_unique<core::honest_sigma_strategy>());
    v.receiver->start(sim::milliseconds(200 * (&v - audience.data())));
  }

  net.run_until(sim::seconds(120.0));

  std::printf("layer plan: base %.0f Kbps, cumulative x%.1f per layer, %d layers\n\n",
              fc.base_rate_bps / 1e3, fc.rate_multiplier, fc.num_groups);
  std::printf("%-16s %10s %7s %12s %12s\n", "viewer", "access", "layers",
              "entitled", "achieved");
  for (const auto& v : audience) {
    const int level = v.receiver->level();
    // Highest layer whose cumulative rate fits the access link.
    int fit = 0;
    for (int g = 1; g <= fc.num_groups; ++g) {
      if (fc.cumulative_rate_bps(g) <= v.access_bps) fit = g;
    }
    std::printf("%-16s %7.0f Kbps %7d %9.0f Kbps %9.0f Kbps\n", v.name.c_str(),
                v.access_bps / 1e3, level, fc.cumulative_rate_bps(fit) / 1e3,
                v.receiver->monitor().average_kbps(sim::seconds(60.0),
                                                   sim::seconds(120.0)));
    (void)level;
  }
  std::printf("\nEach class converges near its entitled layer; faster viewers\n"
              "are not dragged down by slower ones (the point of layered\n"
              "multicast), and every layer stayed key-guarded end to end.\n");
  return 0;
}
