// Attack demo: the paper's headline experiment as a narrative.
//
// Runs the same inflated-subscription attack twice — against plain FLID-DL
// (IGMP group management, no protection) and against FLID-DS (DELTA +
// SIGMA) — and prints a before/after bandwidth table for each world.
#include <array>
#include <cstdio>

#include "adversary/adversary.h"
#include "exp/testbed.h"
#include "sim/stats.h"

using namespace mcc;

namespace {

void run_world(exp::flid_mode mode, const char* title) {
  std::printf("=== %s ===\n", title);
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;  // fair share: 250 Kbps for each of 4 receivers
  cfg.seed = 7;
  exp::testbed net(exp::dumbbell(cfg));

  exp::receiver_options attacker;
  // Inflate to level 6 (~760 Kbps cumulative demand), backing unprovable
  // layers with random key guesses in the SIGMA world.
  attacker.attack = adversary::inflate_once(
      sim::seconds(60.0), adversary::key_mode::guess, 6);

  auto& f1 = net.add_flid_session(mode, {attacker});
  auto& f2 = net.add_flid_session(mode, {exp::receiver_options{}});
  auto& t1 = net.add_tcp_flow();
  auto& t2 = net.add_tcp_flow();
  net.run_until(sim::seconds(120.0));

  const auto rate = [](sim::throughput_monitor& m, double a, double b) {
    return m.average_kbps(sim::seconds(a), sim::seconds(b));
  };
  const std::array<double, 4> before = {
      rate(f1.receiver().monitor(), 20, 60), rate(f2.receiver().monitor(), 20, 60),
      rate(t1.sink->monitor(), 20, 60), rate(t2.sink->monitor(), 20, 60)};
  const std::array<double, 4> after = {
      rate(f1.receiver().monitor(), 70, 120), rate(f2.receiver().monitor(), 70, 120),
      rate(t1.sink->monitor(), 70, 120), rate(t2.sink->monitor(), 70, 120)};

  std::printf("                 F1(attacker)   F2     T1     T2\n");
  std::printf("before attack  : %10.0f %6.0f %6.0f %6.0f   Kbps\n",
              before[0], before[1], before[2], before[3]);
  std::printf("after  attack  : %10.0f %6.0f %6.0f %6.0f   Kbps\n",
              after[0], after[1], after[2], after[3]);
  std::printf("fairness index : %.2f -> %.2f\n",
              sim::jain_fairness_index(before), sim::jain_fairness_index(after));
  if (mode == exp::flid_mode::ds) {
    std::printf("SIGMA rejected %llu forged/guessed keys; %llu session joins refused\n",
                static_cast<unsigned long long>(net.sigma().stats().invalid_keys),
                static_cast<unsigned long long>(
                    net.sigma().stats().session_joins_refused));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Inflated subscription: a misbehaving receiver (F1) raises its\n"
              "multicast subscription at t = 60 s and ignores congestion.\n\n");
  run_world(exp::flid_mode::dl,
            "world 1: FLID-DL over IGMP (unprotected, paper Fig. 1)");
  run_world(exp::flid_mode::ds,
            "world 2: FLID-DS = FLID-DL + DELTA + SIGMA (paper Fig. 7)");
  std::printf("DELTA distributes per-slot group keys in-band so only receivers\n"
              "whose congestion state entitles them to a level can reconstruct\n"
              "its keys; SIGMA makes edge routers demand those keys before\n"
              "forwarding a group. The attack stops working.\n");
  return 0;
}
