// Quickstart: one FLID-DS session over a single-bottleneck topology.
//
// Builds the paper's dumbbell via the scenario API, runs a protected
// multicast session for 30 simulated seconds, and prints what the receiver
// achieved and what the SIGMA edge router saw. Start here to learn the
// public API:
//
//   sim::topology_builder - named routers + duplex links (dumbbell,
//                           parking_lot, star, balanced_tree factories)
//   exp::testbed          - attaches sessions/flows to topology routers and
//                           owns the per-router edge agents (IGMP, SIGMA)
//   exp::dumbbell(cfg)    - the paper's scenario as a testbed_config
//   add_flid_session      - sender + DELTA + SIGMA control plane + receivers
//   flid_receiver         - per-slot congestion bookkeeping + strategy
//   sigma_router_agent    - key-based group access control at the edge
#include <cstdio>

#include "exp/testbed.h"

using namespace mcc;

int main() {
  // A 1 Mbps bottleneck with 20 ms delay; access links 10 Mbps / 10 ms.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 42;
  exp::testbed net(exp::dumbbell(cfg));

  // One FLID-DS session (FLID-DL + DELTA + SIGMA) with a single honest
  // receiver. The session has 10 groups: 100 Kbps base layer, cumulative
  // rate growing 1.5x per group, 250 ms time slots.
  auto& session = net.add_flid_session(exp::flid_mode::ds,
                                       {exp::receiver_options{}});

  net.run_until(sim::seconds(30.0));

  auto& receiver = session.receiver();
  std::printf("subscription level after 30 s : %d of %d groups\n",
              receiver.level(), session.config.num_groups);
  std::printf("cumulative rate at that level : %.0f Kbps\n",
              session.config.cumulative_rate_bps(receiver.level()) / 1e3);
  std::printf("measured goodput [10 s, 30 s] : %.0f Kbps\n",
              receiver.monitor().average_kbps(sim::seconds(10.0),
                                              sim::seconds(30.0)));
  std::printf("congested slots observed      : %llu of %llu\n",
              static_cast<unsigned long long>(receiver.stats().slots_congested),
              static_cast<unsigned long long>(receiver.stats().slots_evaluated));

  const auto& sigma = net.sigma().stats();
  std::printf("\nSIGMA edge router:\n");
  std::printf("  key tuple blocks decoded    : %llu\n",
              static_cast<unsigned long long>(sigma.blocks_decoded));
  std::printf("  valid keys accepted         : %llu\n",
              static_cast<unsigned long long>(sigma.valid_keys));
  std::printf("  invalid keys rejected       : %llu\n",
              static_cast<unsigned long long>(sigma.invalid_keys));
  std::printf("  packets under grace         : %llu\n",
              static_cast<unsigned long long>(sigma.grace_forwards));
  std::printf("  packets under authorization : %llu\n",
              static_cast<unsigned long long>(sigma.authorized_forwards));
  return 0;
}
