// SIGMA edge-router behaviour: control-packet decoding, key validation,
// grace windows, probation, stale pruning, and attack containment.
#include "core/sigma_router.h"

#include <gtest/gtest.h>

#include "core/flid_ds.h"
#include "exp/testbed.h"

namespace mcc::core {
namespace {

using exp::dumbbell;
using exp::testbed;
using exp::dumbbell_config;
using exp::flid_mode;
using exp::receiver_options;

struct sigma_fixture : ::testing::Test {
  sigma_fixture() {
    dumbbell_config cfg;
    cfg.bottleneck_bps = 10e6;  // uncongested unless a test says otherwise
    d = std::make_unique<testbed>(dumbbell(cfg));
  }
  std::unique_ptr<testbed> d;
};

TEST_F(sigma_fixture, ctrl_blocks_decode_at_router) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(5.0));
  EXPECT_GT(d->sigma().stats().ctrl_shards, 0u);
  EXPECT_GT(d->sigma().stats().blocks_decoded, 0u);
  (void)session;
}

TEST_F(sigma_fixture, honest_receiver_is_admitted_and_climbs) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(60.0));
  EXPECT_EQ(session.receiver().level(), session.config.num_groups);
  EXPECT_GT(d->sigma().stats().valid_keys, 0u);
  EXPECT_EQ(d->sigma().stats().invalid_keys, 0u);
}

TEST_F(sigma_fixture, subscription_messages_flow_every_slot) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(20.0));
  // One subscription per evaluated slot (~4 slots/s at 250 ms).
  EXPECT_GT(d->sigma().stats().subscribe_msgs, 10u);
  (void)session;
}

TEST_F(sigma_fixture, raw_igmp_join_to_protected_group_is_refused) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  // A fresh host tries to IGMP-join group 5 of the protected session.
  const auto intruder = d->attach_host("intruder", "r");
  mcast::membership_client client(d->net(), intruder, d->router("r"));
  d->sched().at(sim::seconds(1.0),
                [&] { client.join(session.config.group(5)); });
  d->run_until(sim::seconds(10.0));
  // The intruder host received nothing.
  EXPECT_EQ(d->net().get(intruder)->stats().delivered_local, 0u);
}

TEST_F(sigma_fixture, session_join_lying_about_minimal_group_is_refused) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  const auto intruder = d->attach_host("liar", "r");
  d->net().get(intruder)->host_join(session.config.group(8));
  d->sched().at(sim::seconds(1.0), [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d->router("r"));
    // Claim the high-rate group 8 is "minimal".
    p.hdr = sim::sigma_session_join{session.config.session_id,
                                    session.config.group(8)};
    d->net().get(intruder)->send(std::move(p));
  });
  d->run_until(sim::seconds(10.0));
  EXPECT_GT(d->sigma().stats().session_joins_refused, 0u);
  EXPECT_EQ(d->net().get(intruder)->stats().delivered_local, 0u);
}

TEST_F(sigma_fixture, keyless_session_join_gets_grace_then_cutoff) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  // A receiver that session-joins but never submits keys: gets the minimal
  // group for the grace window, then is cut off (probation block).
  const auto freeloader = d->attach_host("freeloader", "r");
  d->net().get(freeloader)->host_join(session.config.group(1));
  d->sched().at(sim::seconds(2.0), [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d->router("r"));
    p.hdr = sim::sigma_session_join{session.config.session_id,
                                    session.config.group(1)};
    d->net().get(freeloader)->send(std::move(p));
  });
  d->run_until(sim::seconds(20.0));
  // It received the grace window's worth of packets...
  EXPECT_GT(d->net().get(freeloader)->stats().delivered_local, 0u);
  // ...but was then blocked.
  EXPECT_GT(d->sigma().stats().probation_blocks, 0u);
  // Grace is ~3 slots of the ~5.4 packet/slot minimal group: the freeloader
  // must not have kept receiving for the whole 18 s.
  EXPECT_LT(d->net().get(freeloader)->stats().delivered_local, 60u);
}

TEST_F(sigma_fixture, random_key_guessing_fails_and_is_tallied) {
  receiver_options attacker;
  attacker.inflate = true;
  attacker.inflate_at = sim::seconds(5.0);
  attacker.attack_keys = misbehaving_sigma_strategy::key_mode::guess;
  auto& session = d->add_flid_session(flid_mode::ds, {attacker});
  d->run_until(sim::seconds(30.0));
  EXPECT_GT(d->sigma().stats().invalid_keys, 0u);
  // The attacker still reaches the top in an *uncongested* network — that is
  // its honest entitlement; guessing added nothing (all guesses invalid).
  (void)session;
  sim::link* iface = d->net().next_hop(
      d->router("r"), session.receivers.front()->host());
  EXPECT_GT(d->sigma().guess_tally(iface), 0u);
}

TEST_F(sigma_fixture, stale_authorization_is_pruned) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(20.0));
  const auto before = d->net().get(d->router("r"))->stats().policy_denied;
  // Destroy the receiver so no more subscriptions arrive; the router must
  // prune within ~2 slots.
  session.receivers.clear();
  d->run_until(sim::seconds(30.0));
  EXPECT_GT(d->sigma().stats().stale_prunes, 0u);
  // After pruning, denials stop growing (traffic no longer reaches it).
  const auto mid = d->net().get(d->router("r"))->stats().policy_denied;
  d->run_until(sim::seconds(40.0));
  const auto after = d->net().get(d->router("r"))->stats().policy_denied;
  EXPECT_LE(after - mid, mid - before + 8);
}

TEST(sigma_router, unsubscribes_accompany_downgrades_under_congestion) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 250e3;  // the session must repeatedly shed layers
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(60.0));
  EXPECT_GT(session.receiver().stats().downgrades, 0u);
  EXPECT_GT(d.sigma().stats().unsubscribes, 0u);
}

}  // namespace
}  // namespace mcc::core
