// SIGMA edge-router behaviour: control-packet decoding, key validation,
// grace windows, probation, stale pruning, and attack containment.
#include "core/sigma_router.h"

#include <gtest/gtest.h>

#include "core/flid_ds.h"
#include "exp/testbed.h"

namespace mcc::core {
namespace {

using exp::dumbbell;
using exp::testbed;
using exp::dumbbell_config;
using exp::flid_mode;
using exp::receiver_options;

struct sigma_fixture : ::testing::Test {
  sigma_fixture() {
    dumbbell_config cfg;
    cfg.bottleneck_bps = 10e6;  // uncongested unless a test says otherwise
    d = std::make_unique<testbed>(dumbbell(cfg));
  }
  std::unique_ptr<testbed> d;
};

TEST_F(sigma_fixture, ctrl_blocks_decode_at_router) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(5.0));
  EXPECT_GT(d->sigma().stats().ctrl_shards, 0u);
  EXPECT_GT(d->sigma().stats().blocks_decoded, 0u);
  (void)session;
}

TEST_F(sigma_fixture, honest_receiver_is_admitted_and_climbs) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(60.0));
  EXPECT_EQ(session.receiver().level(), session.config.num_groups);
  EXPECT_GT(d->sigma().stats().valid_keys, 0u);
  EXPECT_EQ(d->sigma().stats().invalid_keys, 0u);
}

TEST_F(sigma_fixture, subscription_messages_flow_every_slot) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(20.0));
  // One subscription per evaluated slot (~4 slots/s at 250 ms).
  EXPECT_GT(d->sigma().stats().subscribe_msgs, 10u);
  (void)session;
}

TEST_F(sigma_fixture, raw_igmp_join_to_protected_group_is_refused) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  // A fresh host tries to IGMP-join group 5 of the protected session.
  const auto intruder = d->attach_host("intruder", "r");
  mcast::membership_client client(d->net(), intruder, d->router("r"));
  d->sched().at(sim::seconds(1.0),
                [&] { client.join(session.config.group(5)); });
  d->run_until(sim::seconds(10.0));
  // The intruder host received nothing.
  EXPECT_EQ(d->net().get(intruder)->stats().delivered_local, 0u);
}

TEST_F(sigma_fixture, session_join_lying_about_minimal_group_is_refused) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  const auto intruder = d->attach_host("liar", "r");
  d->net().get(intruder)->host_join(session.config.group(8));
  d->sched().at(sim::seconds(1.0), [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d->router("r"));
    // Claim the high-rate group 8 is "minimal".
    p.hdr = sim::sigma_session_join{session.config.session_id,
                                    session.config.group(8)};
    d->net().get(intruder)->send(std::move(p));
  });
  d->run_until(sim::seconds(10.0));
  EXPECT_GT(d->sigma().stats().session_joins_refused, 0u);
  EXPECT_EQ(d->net().get(intruder)->stats().delivered_local, 0u);
}

TEST_F(sigma_fixture, keyless_session_join_gets_grace_then_cutoff) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  // A receiver that session-joins but never submits keys: gets the minimal
  // group for the grace window, then is cut off (probation block).
  const auto freeloader = d->attach_host("freeloader", "r");
  d->net().get(freeloader)->host_join(session.config.group(1));
  d->sched().at(sim::seconds(2.0), [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d->router("r"));
    p.hdr = sim::sigma_session_join{session.config.session_id,
                                    session.config.group(1)};
    d->net().get(freeloader)->send(std::move(p));
  });
  d->run_until(sim::seconds(20.0));
  // It received the grace window's worth of packets...
  EXPECT_GT(d->net().get(freeloader)->stats().delivered_local, 0u);
  // ...but was then blocked.
  EXPECT_GT(d->sigma().stats().probation_blocks, 0u);
  // Grace is ~3 slots of the ~5.4 packet/slot minimal group: the freeloader
  // must not have kept receiving for the whole 18 s.
  EXPECT_LT(d->net().get(freeloader)->stats().delivered_local, 60u);
}

TEST_F(sigma_fixture, random_key_guessing_fails_and_is_tallied) {
  receiver_options attacker;
  attacker.inflate = true;
  attacker.inflate_at = sim::seconds(5.0);
  attacker.attack_keys = misbehaving_sigma_strategy::key_mode::guess;
  auto& session = d->add_flid_session(flid_mode::ds, {attacker});
  d->run_until(sim::seconds(30.0));
  EXPECT_GT(d->sigma().stats().invalid_keys, 0u);
  // The attacker still reaches the top in an *uncongested* network — that is
  // its honest entitlement; guessing added nothing (all guesses invalid).
  (void)session;
  sim::link* iface = d->net().next_hop(
      d->router("r"), session.receivers.front()->host());
  EXPECT_GT(d->sigma().guess_tally(iface), 0u);
}

TEST_F(sigma_fixture, stale_authorization_is_pruned) {
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(20.0));
  const auto before = d->net().get(d->router("r"))->stats().policy_denied;
  // Destroy the receiver so no more subscriptions arrive; the router must
  // prune within ~2 slots.
  session.receivers.clear();
  d->run_until(sim::seconds(30.0));
  EXPECT_GT(d->sigma().stats().stale_prunes, 0u);
  // After pruning, denials stop growing (traffic no longer reaches it).
  const auto mid = d->net().get(d->router("r"))->stats().policy_denied;
  d->run_until(sim::seconds(40.0));
  const auto after = d->net().get(d->router("r"))->stats().policy_denied;
  EXPECT_LE(after - mid, mid - before + 8);
}

TEST_F(sigma_fixture, guess_tally_decays_instead_of_accumulating) {
  // Regression for the unbounded guess_tally_ map: the tally is windowed by
  // slot, so a long run of steady guessing keeps a bounded recent count while
  // the cumulative invalid_keys counter grows with run length.
  receiver_options attacker;
  attacker.inflate = true;
  attacker.inflate_at = sim::seconds(5.0);
  attacker.attack_keys = misbehaving_sigma_strategy::key_mode::guess;
  auto& session = d->add_flid_session(flid_mode::ds, {attacker});
  d->run_until(sim::seconds(40.0));
  sim::link* iface = d->net().next_hop(
      d->router("r"), session.receivers.front()->host());
  const std::uint64_t tally = d->sigma().guess_tally(iface);
  EXPECT_GT(tally, 0u);
  // ~35 s of guessing spans ~140 slots; the windowed tally must reflect only
  // the trailing handful of them, not the whole run.
  EXPECT_LT(2 * tally, d->sigma().stats().invalid_keys);
}

namespace {
/// Records the shim-tag slot of every data packet delivered to its host.
struct slot_recorder final : sim::agent {
  std::set<std::int64_t> seen;
  bool handle_packet(const sim::packet& p, sim::link*) override {
    if (p.tag.has_value()) seen.insert(p.tag->slot);
    return false;
  }
};
}  // namespace

TEST_F(sigma_fixture, probation_block_silences_at_least_one_complete_slot) {
  // Boundary pin for the ">= one time slot" cutoff of section 3.2.2: however
  // aggressively a keyless freeloader rejoins the moment its block expires,
  // every probation block must leave at least one tagged slot with zero
  // deliveries. A blocked_until that undershot the slot boundary would let
  // the rejoin's grace window reach back into the deny slot and shrink the
  // gap below one slot.
  auto& session = d->add_flid_session(flid_mode::ds, {receiver_options{}});
  const auto freeloader = d->attach_host("freeloader", "r");
  d->net().get(freeloader)->host_join(session.config.group(1));
  slot_recorder rec;
  d->net().get(freeloader)->add_agent(&rec);

  const auto send_join = [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d->router("r"));
    p.hdr = sim::sigma_session_join{session.config.session_id,
                                    session.config.group(1)};
    d->net().get(freeloader)->send(std::move(p));
  };
  d->sched().at(sim::seconds(2.0), send_join);
  // Poll-driven rejoiner: once a probation block fires, hammer session-joins
  // every 10 ms until one is admitted (joins during the block are refused and
  // change nothing), so re-admission lands within 10 ms of block expiry.
  std::uint64_t blocks_seen = 0;
  std::uint64_t joins_seen = 0;
  bool hammering = false;
  const auto poll = [&] {
    const auto& st = d->sigma().stats();
    if (st.probation_blocks > blocks_seen) {
      blocks_seen = st.probation_blocks;
      hammering = true;
    }
    if (st.session_joins > joins_seen) {
      joins_seen = st.session_joins;
      hammering = false;
    }
    if (hammering) send_join();
  };
  for (int k = 0; k < 1800; ++k) {
    d->sched().at(sim::seconds(2.0) + k * sim::milliseconds(10), poll);
  }
  d->run_until(sim::seconds(20.0));

  // Several grace -> block -> instant-rejoin cycles ran...
  EXPECT_GE(d->sigma().stats().probation_blocks, 3u);
  EXPECT_GE(d->sigma().stats().session_joins_refused, 1u);
  // ...and every cycle boundary skips the deny slot entirely: consecutive
  // delivered tags across a block always differ by >= 2 (the denied slot is
  // completely silent), and there are at least as many such gaps as cycles
  // minus the final (possibly truncated) one.
  const std::vector<std::int64_t> tags(rec.seen.begin(), rec.seen.end());
  ASSERT_GT(tags.size(), 3u);
  std::uint64_t gaps = 0;
  for (std::size_t i = 1; i < tags.size(); ++i) {
    if (tags[i] - tags[i - 1] > 1) {
      ++gaps;
      EXPECT_GE(tags[i] - tags[i - 1], 2);
    }
  }
  EXPECT_GE(gaps + 1, d->sigma().stats().probation_blocks);
  EXPECT_GE(gaps, 3u);
}

TEST(sigma_router_memory, rejoin_inherits_debt_and_still_blocked_means_refused) {
  // The adaptive_churn loophole, closed: unsubscribing mid-grace no longer
  // wipes the probation debt. A rejoin within the memory window inherits it
  // (no fresh grace), the cutoff escalates with each keyless rejoin, and a
  // join while a remembered cutoff is still running is refused outright.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.probation_memory_slots = 8;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  const auto freeloader = d.attach_host("freeloader", "r");
  d.net().get(freeloader)->host_join(session.config.group(1));
  const auto send_join = [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d.router("r"));
    p.hdr = sim::sigma_session_join{session.config.session_id,
                                    session.config.group(1)};
    d.net().get(freeloader)->send(std::move(p));
  };
  const auto send_unsub = [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d.router("r"));
    p.hdr = sim::sigma_unsubscribe{session.config.session_id,
                                   {session.config.group(1)}};
    d.net().get(freeloader)->send(std::move(p));
  };
  // The churn cycle, hand-scripted (slots are 250 ms):
  //   2.00  join            -> fresh grace window, packets flow
  //   2.30  unsubscribe     -> mid-grace wipe; debt (pending probation) is
  //                            remembered instead of vanishing
  //   2.60  join            -> inherits: NO fresh grace, first packet converts
  //                            to a 1-slot cutoff (k: 0 -> 1)
  //   3.20  unsubscribe     -> cutoff served but k = 1 is remembered
  //   3.40  join            -> inherits k = 1: graceless, first packet
  //                            converts to an escalated 2-slot cutoff (~0.5 s)
  //   3.60  unsubscribe     -> cutoff still running; remembered with deadline
  //   3.75  join            -> remembered cutoff still active: refused
  //                            (an unescalated 1-slot cutoff would already
  //                            have expired by now)
  d.sched().at(sim::seconds(2.0), send_join);
  d.sched().at(sim::seconds(2.3), send_unsub);
  d.sched().at(sim::seconds(2.6), send_join);
  d.sched().at(sim::seconds(3.2), send_unsub);
  d.sched().at(sim::seconds(3.4), send_join);
  d.sched().at(sim::seconds(3.6), send_unsub);
  d.sched().at(sim::seconds(3.75), send_join);
  d.run_until(sim::seconds(8.0));

  const auto& sg = d.sigma().stats();
  EXPECT_GE(sg.memory_records, 3u);
  EXPECT_GE(sg.memory_inherits, 2u);
  EXPECT_GE(sg.memory_refusals, 1u);
  EXPECT_GE(sg.probation_blocks, 2u);
  // Only the first window's packets ever arrived: the inherited rejoins were
  // graceless.
  const auto delivered = d.net().get(freeloader)->stats().delivered_local;
  EXPECT_GT(delivered, 0u);
  EXPECT_LT(delivered, 30u);
  (void)session;
}

TEST(sigma_router_memory, debt_expires_after_the_memory_window) {
  // The memory is a window, not a life sentence: a rejoin after
  // probation_memory_slots slots past the served cutoff starts a fresh grace
  // window again (the record was lazily GC'd).
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.probation_memory_slots = 4;  // 1 s at 250 ms slots
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  const auto freeloader = d.attach_host("freeloader", "r");
  d.net().get(freeloader)->host_join(session.config.group(1));
  const auto send_join = [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d.router("r"));
    p.hdr = sim::sigma_session_join{session.config.session_id,
                                    session.config.group(1)};
    d.net().get(freeloader)->send(std::move(p));
  };
  const auto send_unsub = [&] {
    sim::packet p;
    p.size_bytes = 20;
    p.dst = sim::dest::to_node(d.router("r"));
    p.hdr = sim::sigma_unsubscribe{session.config.session_id,
                                   {session.config.group(1)}};
    d.net().get(freeloader)->send(std::move(p));
  };
  d.sched().at(sim::seconds(2.0), send_join);
  d.sched().at(sim::seconds(2.3), send_unsub);  // mid-grace debt remembered
  const auto before_window = [&] {
    return d.net().get(freeloader)->stats().delivered_local;
  };
  std::uint64_t delivered_at_rejoin = 0;
  d.sched().at(sim::seconds(5.0), [&] {
    delivered_at_rejoin = before_window();
    send_join();  // 2.7 s > 4-slot window past the wipe: debt expired
  });
  d.run_until(sim::seconds(6.2));

  EXPECT_GE(d.sigma().stats().memory_records, 1u);
  EXPECT_EQ(d.sigma().stats().memory_inherits, 0u);
  EXPECT_EQ(d.sigma().stats().memory_refusals, 0u);
  // The late rejoin got a fresh grace window: packets flowed again.
  EXPECT_GT(d.net().get(freeloader)->stats().delivered_local,
            delivered_at_rejoin);
  (void)session;
}

TEST(sigma_router, unsubscribes_accompany_downgrades_under_congestion) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 250e3;  // the session must repeatedly shed layers
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(60.0));
  EXPECT_GT(session.receiver().stats().downgrades, 0u);
  EXPECT_GT(d.sigma().stats().unsubscribes, 0u);
}

}  // namespace
}  // namespace mcc::core
