// Golden-trace regression: a small dumbbell scenario is run once per queue
// discipline, the delivered-packet event stream is folded into an FNV-1a
// digest, and the digests are compared against checked-in constants. Any
// unintended drift in the engine — scheduler ordering, link timing, AQM
// decision sequences, PRNG streams — changes a digest and fails loudly here
// long before it would show up as a subtly shifted figure.
//
// The digests are a contract about determinism, not about correctness: when
// an INTENTIONAL engine change shifts them, rerun the test, copy the printed
// digests into `golden()` below, and say so in the PR.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "adversary/adversary.h"
#include "adversary/containment.h"
#include "crypto/prng.h"
#include "exp/testbed.h"
#include "obs/trace.h"
#include "sim/aqm.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "test_util.h"

namespace mcc::sim {
namespace {

/// FNV-1a 64-bit, folded one 64-bit word at a time.
struct fnv1a {
  std::uint64_t h = 14695981039346656037ULL;
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  [[nodiscard]] std::string hex() const {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
  }
};

/// Agent that folds every delivered packet into the digest.
class hashing_sink : public agent {
 public:
  hashing_sink(network& net, node_id host, fnv1a& digest)
      : sched_(net.sched()), digest_(digest) {
    net.get(host)->add_agent(this);
  }

  bool handle_packet(const packet& p, link*) override {
    digest_.fold(static_cast<std::uint64_t>(sched_.now()));
    digest_.fold(p.uid);
    digest_.fold(static_cast<std::uint64_t>(p.src));
    digest_.fold(static_cast<std::uint64_t>(p.size_bytes));
    digest_.fold(p.ecn_marked ? 1 : 0);
    return true;
  }

 private:
  scheduler& sched_;
  fnv1a& digest_;
};

/// The scenario: two senders blast prng-shaped traffic (exponential gaps,
/// mixed sizes, every other packet ECN-capable) at ~2x the bottleneck rate
/// of a dumbbell whose bottleneck runs the given discipline.
std::string run_digest(qdisc d, scheduler_config sched_cfg = {}) {
  scheduler sched(sched_cfg);
  network net(sched);
  const node_id ha = net.add_host("ha");
  const node_id hb = net.add_host("hb");
  const node_id r1 = net.add_router("r1");
  const node_id r2 = net.add_router("r2");
  const node_id hc = net.add_host("hc");
  const node_id hd = net.add_host("hd");

  link_config access;
  access.bps = 10e6;
  access.delay = milliseconds(1);
  link_config bottleneck;
  bottleneck.bps = 1e6;
  bottleneck.delay = milliseconds(5);
  bottleneck.queue_capacity_bytes = 15'000;
  bottleneck.aqm.discipline = d;
  bottleneck.aqm.seed = 7;
  net.connect(ha, r1, access);
  net.connect(hb, r1, access);
  net.connect(r1, r2, bottleneck);
  net.connect(r2, hc, access);
  net.connect(r2, hd, access);
  net.finalize_routing();

  fnv1a digest;
  hashing_sink sink_c(net, hc, digest);
  hashing_sink sink_d(net, hd, digest);

  crypto::prng rng(42);
  const struct {
    node_id src;
    node_id dst;
    std::uint64_t stream;
  } flows[] = {{ha, hc, 1}, {hb, hd, 2}};
  for (const auto& f : flows) {
    crypto::prng stream = rng.fork(f.stream);
    time_ns t = 0;
    for (int i = 0; i < 1'200; ++i) {
      t += static_cast<time_ns>(stream.uniform(1e6, 8e6));  // 1..8 ms gaps
      const int size = static_cast<int>(stream.uniform_int(200, 1'400));
      const bool ecn = (i % 2) == 0;
      const node_id src = f.src;
      const node_id dst = f.dst;
      sched.at(t, [&net, src, dst, size, ecn] {
        packet p = mcc::testing::make_packet(size, dst);
        p.ecn_capable = ecn;
        net.get(src)->send(std::move(p));
      });
    }
  }
  sched.run();

  // Fold the bottleneck's final counters: drops that never reach a sink must
  // still shift the digest.
  const link_stats& bn = net.next_hop(r1, hc)->stats();
  digest.fold(bn.enqueued);
  digest.fold(bn.dropped);
  digest.fold(bn.aqm_dropped);
  digest.fold(bn.ecn_marked);
  digest.fold(static_cast<std::uint64_t>(bn.bytes_dropped));
  digest.fold(static_cast<std::uint64_t>(bn.max_queued_bytes));
  return digest.hex();
}

/// Checked-in digests. Regenerate by running this suite and copying the
/// values printed in the failure messages.
const char* golden(qdisc d) {
  switch (d) {
    case qdisc::droptail: return "0x4b17afea52a0332c";
    case qdisc::ecn_threshold: return "0xd85981df81dd339c";
    case qdisc::red: return "0xd5968bba4465239e";
    case qdisc::codel: return "0xfd85f351064fd636";
  }
  return "";
}

class golden_trace : public ::testing::TestWithParam<qdisc> {};

TEST_P(golden_trace, delivered_packet_stream_matches_checked_in_digest) {
  const qdisc d = GetParam();
  const std::string digest = run_digest(d);
  EXPECT_EQ(digest, golden(d))
      << "engine behaviour drifted under " << qdisc_name(d)
      << " (if intentional, update golden() with the digest above)";
}

TEST_P(golden_trace, digest_is_reproducible_within_a_process) {
  const qdisc d = GetParam();
  EXPECT_EQ(run_digest(d), run_digest(d));
}

TEST_P(golden_trace, wheel_scheduler_matches_the_same_digest) {
  // The timer-wheel policy's determinism contract: the SAME checked-in
  // digest as the heap, bit for bit — not a separate wheel baseline.
  const qdisc d = GetParam();
  scheduler_config wheel;
  wheel.policy = sched_policy::wheel;
  EXPECT_EQ(run_digest(d, wheel), golden(d))
      << "wheel scheduler diverged from the heap event order under "
      << qdisc_name(d);
}

TEST_P(golden_trace, coarse_wheel_granularity_matches_the_same_digest) {
  // Bucket width must not be observable: a 65536 ns bucket packs many
  // distinct timestamps per bucket, and the due heap restores exact order.
  const qdisc d = GetParam();
  scheduler_config wheel;
  wheel.policy = sched_policy::wheel;
  wheel.wheel_granularity = 65536;
  EXPECT_EQ(run_digest(d, wheel), golden(d))
      << "wheel granularity leaked into the event order under "
      << qdisc_name(d);
}

INSTANTIATE_TEST_SUITE_P(all_qdiscs, golden_trace,
                         ::testing::Values(qdisc::droptail,
                                           qdisc::ecn_threshold, qdisc::red,
                                           qdisc::codel),
                         [](const auto& info) {
                           return std::string(qdisc_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Adversary golden trace: a pulse_inflate attack on a FLID-DS dumbbell,
// digesting the full attack timeline — both receivers' subscription level
// histories, byte totals and slot counters, the SIGMA edge counters, and
// the bottleneck counters. Everything folded is integral, so the digest is
// identical in Release and sanitizer builds. Same update protocol as the
// per-qdisc digests above.
// ---------------------------------------------------------------------------

std::string run_pulse_attack_digest(scheduler_config sched_cfg = {}) {
  exp::dumbbell_config cfg;
  cfg.sched = sched_cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 5;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = mcc::adversary::pulse_inflate(
      sim::seconds(15.0), sim::seconds(4.0), sim::seconds(4.0));
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(60.0));

  fnv1a digest;
  for (flid::flid_receiver* r : {&rogue.receiver(), &honest.receiver()}) {
    digest.fold(static_cast<std::uint64_t>(r->monitor().total_bytes()));
    digest.fold(r->stats().packets);
    digest.fold(r->stats().slots_congested);
    digest.fold(r->stats().upgrades);
    digest.fold(r->stats().downgrades);
    for (const auto& [t, lvl] : r->level_history()) {
      digest.fold(static_cast<std::uint64_t>(t));
      digest.fold(static_cast<std::uint64_t>(lvl));
    }
  }
  const auto& sg = d.sigma().stats();
  digest.fold(sg.subscribe_msgs);
  digest.fold(sg.valid_keys);
  digest.fold(sg.invalid_keys);
  digest.fold(sg.denied);
  digest.fold(sg.grace_forwards);
  digest.fold(sg.session_joins);
  digest.fold(sg.unsubscribes);
  const link_stats& bn = d.bottleneck()->stats();
  digest.fold(bn.enqueued);
  digest.fold(bn.dropped);
  digest.fold(bn.delivered);
  digest.fold(static_cast<std::uint64_t>(bn.bytes_dropped));
  return digest.hex();
}

TEST(golden_trace_adversary, pulse_inflate_timeline_matches_checked_in_digest) {
  EXPECT_EQ(run_pulse_attack_digest(), "0xfd1bc9bde74fb696")
      << "adversary attack timeline drifted (if intentional, update the "
         "digest with the value above)";
}

TEST(golden_trace_adversary, pulse_digest_is_reproducible_within_a_process) {
  EXPECT_EQ(run_pulse_attack_digest(), run_pulse_attack_digest());
}

TEST(golden_trace_adversary, pulse_digest_is_policy_invariant) {
  // End-to-end through exp::testbed: the full FLID-DS attack timeline pins
  // to the same digest under the timer wheel.
  scheduler_config wheel;
  wheel.policy = sched_policy::wheel;
  EXPECT_EQ(run_pulse_attack_digest(wheel), "0xfd1bc9bde74fb696")
      << "wheel scheduler diverged from the heap on the attack timeline";
}

// ---------------------------------------------------------------------------
// Adaptive-adversary golden trace: the measurement-driven pulse on the same
// FLID-DS dumbbell. The closed loop (probe -> measured enforcement lag ->
// tuned phases) is pure feedback logic, so its whole timeline is pinnable
// the same way; drift here means the adaptation law changed.
// ---------------------------------------------------------------------------

std::string run_adaptive_pulse_digest() {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 5;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack =
      mcc::adversary::adaptive_pulse(sim::seconds(15.0), sim::seconds(5.0));
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(60.0));

  fnv1a digest;
  for (flid::flid_receiver* r : {&rogue.receiver(), &honest.receiver()}) {
    digest.fold(static_cast<std::uint64_t>(r->monitor().total_bytes()));
    digest.fold(r->stats().packets);
    digest.fold(r->stats().slots_congested);
    for (const auto& [t, lvl] : r->level_history()) {
      digest.fold(static_cast<std::uint64_t>(t));
      digest.fold(static_cast<std::uint64_t>(lvl));
    }
  }
  const auto& sg = d.sigma().stats();
  digest.fold(sg.subscribe_msgs);
  digest.fold(sg.valid_keys);
  digest.fold(sg.invalid_keys);
  digest.fold(sg.denied);
  digest.fold(sg.grace_forwards);
  digest.fold(sg.session_joins);
  digest.fold(sg.unsubscribes);
  // The attacker's cost counters are part of the pinned contract: the
  // adaptation law's spend must not drift silently either.
  const mcc::adversary::attacker_cost cost =
      mcc::adversary::measure_cost(rogue.receiver());
  digest.fold(cost.ctrl_msgs);
  digest.fold(cost.useless_keys);
  digest.fold(cost.cutoff_slots);
  const link_stats& bn = d.bottleneck()->stats();
  digest.fold(bn.enqueued);
  digest.fold(bn.dropped);
  digest.fold(bn.delivered);
  return digest.hex();
}

TEST(golden_trace_adversary, adaptive_pulse_timeline_matches_checked_in_digest) {
  EXPECT_EQ(run_adaptive_pulse_digest(), "0xa925fe56e16b02de")
      << "adaptive-attacker timeline drifted (if intentional, update the "
         "digest with the value above)";
}

TEST(golden_trace_adversary, adaptive_digest_is_reproducible_within_a_process) {
  EXPECT_EQ(run_adaptive_pulse_digest(), run_adaptive_pulse_digest());
}

// ---------------------------------------------------------------------------
// Tracing must be a pure observer: with an obs::trace_scope installed, every
// checked-in digest stays bit-identical (the hooks draw no PRNG values and
// perturb no event), while the buffer proves the hooks actually fired.
// ---------------------------------------------------------------------------

TEST_P(golden_trace, digest_is_bit_identical_with_tracing_enabled) {
  const qdisc d = GetParam();
  obs::trace_buffer tb;
  std::string digest;
  {
    obs::trace_scope scope(&tb);
    digest = run_digest(d);
  }
  EXPECT_EQ(digest, golden(d))
      << "enabling the event trace perturbed the engine under "
      << qdisc_name(d);
  EXPECT_FALSE(tb.empty()) << "trace hooks recorded nothing";
}

TEST(golden_trace_adversary, pulse_digest_is_bit_identical_with_tracing) {
  obs::trace_buffer tb;
  std::string digest;
  {
    obs::trace_scope scope(&tb);
    digest = run_pulse_attack_digest();
  }
  EXPECT_EQ(digest, "0xfd1bc9bde74fb696")
      << "enabling the event trace perturbed the attack timeline";
  EXPECT_FALSE(tb.empty());
}

TEST(golden_trace_adversary, adaptive_digest_is_bit_identical_with_tracing) {
  obs::trace_buffer tb;
  std::string digest;
  {
    obs::trace_scope scope(&tb);
    digest = run_adaptive_pulse_digest();
  }
  EXPECT_EQ(digest, "0xa925fe56e16b02de")
      << "enabling the event trace perturbed the adaptive-attack timeline";
  EXPECT_FALSE(tb.empty());
}

}  // namespace
}  // namespace mcc::sim
