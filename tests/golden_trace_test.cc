// Golden-trace regression: a small dumbbell scenario is run once per queue
// discipline, the delivered-packet event stream is folded into an FNV-1a
// digest, and the digests are compared against checked-in constants. Any
// unintended drift in the engine — scheduler ordering, link timing, AQM
// decision sequences, PRNG streams — changes a digest and fails loudly here
// long before it would show up as a subtly shifted figure.
//
// The scenarios, the fold, and the checked-in constants live in
// golden_digests.h, shared with cm_test (which re-runs the same worlds with
// the shared congestion manager on). Update protocol is documented there.
#include <gtest/gtest.h>

#include <string>

#include "golden_digests.h"
#include "obs/trace.h"

namespace mcc::sim {
namespace {

using mcc::testing::golden;
using mcc::testing::kAdaptivePulseGolden;
using mcc::testing::kPulseAttackGolden;
using mcc::testing::run_adaptive_pulse_digest;
using mcc::testing::run_digest;
using mcc::testing::run_pulse_attack_digest;

class golden_trace : public ::testing::TestWithParam<qdisc> {};

TEST_P(golden_trace, delivered_packet_stream_matches_checked_in_digest) {
  const qdisc d = GetParam();
  const std::string digest = run_digest(d);
  EXPECT_EQ(digest, golden(d))
      << "engine behaviour drifted under " << qdisc_name(d)
      << " (if intentional, update golden() with the digest above)";
}

TEST_P(golden_trace, digest_is_reproducible_within_a_process) {
  const qdisc d = GetParam();
  EXPECT_EQ(run_digest(d), run_digest(d));
}

TEST_P(golden_trace, wheel_scheduler_matches_the_same_digest) {
  // The timer-wheel policy's determinism contract: the SAME checked-in
  // digest as the heap, bit for bit — not a separate wheel baseline.
  const qdisc d = GetParam();
  scheduler_config wheel;
  wheel.policy = sched_policy::wheel;
  EXPECT_EQ(run_digest(d, wheel), golden(d))
      << "wheel scheduler diverged from the heap event order under "
      << qdisc_name(d);
}

TEST_P(golden_trace, coarse_wheel_granularity_matches_the_same_digest) {
  // Bucket width must not be observable: a 65536 ns bucket packs many
  // distinct timestamps per bucket, and the due heap restores exact order.
  const qdisc d = GetParam();
  scheduler_config wheel;
  wheel.policy = sched_policy::wheel;
  wheel.wheel_granularity = 65536;
  EXPECT_EQ(run_digest(d, wheel), golden(d))
      << "wheel granularity leaked into the event order under "
      << qdisc_name(d);
}

INSTANTIATE_TEST_SUITE_P(all_qdiscs, golden_trace,
                         ::testing::Values(qdisc::droptail,
                                           qdisc::ecn_threshold, qdisc::red,
                                           qdisc::codel),
                         [](const auto& info) {
                           return std::string(qdisc_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Adversary golden traces: the pulse_inflate and adaptive_pulse attack
// timelines on a FLID-DS dumbbell, pinned end to end (scenario details in
// golden_digests.h).
// ---------------------------------------------------------------------------

TEST(golden_trace_adversary, pulse_inflate_timeline_matches_checked_in_digest) {
  EXPECT_EQ(run_pulse_attack_digest(), kPulseAttackGolden)
      << "adversary attack timeline drifted (if intentional, update the "
         "digest with the value above)";
}

TEST(golden_trace_adversary, pulse_digest_is_reproducible_within_a_process) {
  EXPECT_EQ(run_pulse_attack_digest(), run_pulse_attack_digest());
}

TEST(golden_trace_adversary, pulse_digest_is_policy_invariant) {
  // End-to-end through exp::testbed: the full FLID-DS attack timeline pins
  // to the same digest under the timer wheel.
  scheduler_config wheel;
  wheel.policy = sched_policy::wheel;
  EXPECT_EQ(run_pulse_attack_digest(wheel), kPulseAttackGolden)
      << "wheel scheduler diverged from the heap on the attack timeline";
}

TEST(golden_trace_adversary, adaptive_pulse_timeline_matches_checked_in_digest) {
  EXPECT_EQ(run_adaptive_pulse_digest(), kAdaptivePulseGolden)
      << "adaptive-attacker timeline drifted (if intentional, update the "
         "digest with the value above)";
}

TEST(golden_trace_adversary, adaptive_digest_is_reproducible_within_a_process) {
  EXPECT_EQ(run_adaptive_pulse_digest(), run_adaptive_pulse_digest());
}

// ---------------------------------------------------------------------------
// Tracing must be a pure observer: with an obs::trace_scope installed, every
// checked-in digest stays bit-identical (the hooks draw no PRNG values and
// perturb no event), while the buffer proves the hooks actually fired.
// ---------------------------------------------------------------------------

TEST_P(golden_trace, digest_is_bit_identical_with_tracing_enabled) {
  const qdisc d = GetParam();
  obs::trace_buffer tb;
  std::string digest;
  {
    obs::trace_scope scope(&tb);
    digest = run_digest(d);
  }
  EXPECT_EQ(digest, golden(d))
      << "enabling the event trace perturbed the engine under "
      << qdisc_name(d);
  EXPECT_FALSE(tb.empty()) << "trace hooks recorded nothing";
}

TEST(golden_trace_adversary, pulse_digest_is_bit_identical_with_tracing) {
  obs::trace_buffer tb;
  std::string digest;
  {
    obs::trace_scope scope(&tb);
    digest = run_pulse_attack_digest();
  }
  EXPECT_EQ(digest, kPulseAttackGolden)
      << "enabling the event trace perturbed the attack timeline";
  EXPECT_FALSE(tb.empty());
}

TEST(golden_trace_adversary, adaptive_digest_is_bit_identical_with_tracing) {
  obs::trace_buffer tb;
  std::string digest;
  {
    obs::trace_scope scope(&tb);
    digest = run_adaptive_pulse_digest();
  }
  EXPECT_EQ(digest, kAdaptivePulseGolden)
      << "enabling the event trace perturbed the adaptive-attack timeline";
  EXPECT_FALSE(tb.empty());
}

}  // namespace
}  // namespace mcc::sim
