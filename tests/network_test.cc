#include "sim/network.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mcc::sim {
namespace {

using mcc::testing::capture_agent;
using mcc::testing::line_topology;
using mcc::testing::make_packet;

TEST(network, unicast_routes_through_line) {
  scheduler s;
  line_topology t(s);
  capture_agent sink(t.net, t.h2);
  t.net.get(t.h1)->send(make_packet(100, t.h2));
  s.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(sink.packets.front().src, t.h1);
}

TEST(network, unicast_reverse_direction) {
  scheduler s;
  line_topology t(s);
  capture_agent sink(t.net, t.h1);
  t.net.get(t.h2)->send(make_packet(100, t.h1));
  s.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(network, next_hop_tables_are_consistent) {
  scheduler s;
  line_topology t(s);
  link* first = t.net.next_hop(t.h1, t.h2);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->to()->id(), t.r1);
  link* second = t.net.next_hop(t.r1, t.h2);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->to()->id(), t.r2);
  EXPECT_EQ(t.net.next_hop(t.h1, t.h1), nullptr);
}

TEST(network, host_ignores_packets_for_others) {
  scheduler s;
  line_topology t(s);
  capture_agent sink1(t.net, t.h1);
  capture_agent sink2(t.net, t.h2);
  t.net.get(t.h1)->send(make_packet(100, t.h2));
  s.run();
  EXPECT_TRUE(sink1.packets.empty());
  EXPECT_EQ(sink2.packets.size(), 1u);
}

TEST(network, multicast_not_forwarded_without_graft) {
  scheduler s;
  line_topology t(s);
  capture_agent sink(t.net, t.h2);
  t.net.register_group_source(group_addr{500}, t.h1);
  t.net.get(t.h2)->host_join(group_addr{500});

  packet p;
  p.size_bytes = 100;
  p.dst = dest::to_group(group_addr{500});
  t.net.get(t.h1)->send(std::move(p));
  s.run();
  EXPECT_TRUE(sink.packets.empty());
}

TEST(network, multicast_flows_after_join_upstream) {
  scheduler s;
  line_topology t(s);
  capture_agent sink(t.net, t.h2);
  const group_addr g{500};
  t.net.register_group_source(g, t.h1);
  t.net.get(t.h2)->host_join(g);
  // Graft the edge (r2 -> h2) and propagate toward the source.
  t.net.get(t.r2)->graft(g, t.net.next_hop(t.r2, t.h2));
  t.net.join_upstream(t.r2, g);
  s.run_until(milliseconds(100));  // let grafts install

  packet p;
  p.size_bytes = 100;
  p.dst = dest::to_group(g);
  t.net.get(t.h1)->send(std::move(p));
  s.run_until(milliseconds(200));
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(network, join_upstream_takes_propagation_time) {
  scheduler s;
  line_topology t(s, 10e6, milliseconds(10));
  const group_addr g{501};
  t.net.register_group_source(g, t.h1);
  t.net.join_upstream(t.r2, g);
  // The graft at r1 (one hop up, 10 ms link) must not be installed earlier.
  s.run_until(milliseconds(5));
  link* down = t.middle;  // r1 -> r2
  EXPECT_FALSE(t.net.get(t.r1)->has_oif(g, down));
  s.run_until(milliseconds(15));
  EXPECT_TRUE(t.net.get(t.r1)->has_oif(g, down));
}

TEST(network, leave_upstream_prunes_interior) {
  scheduler s;
  line_topology t(s);
  const group_addr g{502};
  t.net.register_group_source(g, t.h1);
  link* edge_oif = t.net.next_hop(t.r2, t.h2);
  t.net.get(t.r2)->graft(g, edge_oif);
  t.net.join_upstream(t.r2, g);
  s.run_until(milliseconds(100));
  ASSERT_TRUE(t.net.get(t.r1)->has_oif(g, t.middle));

  t.net.get(t.r2)->prune(g, edge_oif);
  t.net.leave_upstream(t.r2, g);
  s.run_until(milliseconds(200));
  EXPECT_FALSE(t.net.get(t.r1)->has_oif(g, t.middle));
}

TEST(network, leave_upstream_keeps_branch_with_remaining_interest) {
  scheduler s;
  network net(s);
  const node_id h1 = net.add_host("src");
  const node_id r1 = net.add_router("r1");
  const node_id r2 = net.add_router("r2");
  const node_id ha = net.add_host("a");
  const node_id hb = net.add_host("b");
  link_config cfg;
  net.connect(h1, r1, cfg);
  net.connect(r1, r2, cfg);
  net.connect(r2, ha, cfg);
  net.connect(r2, hb, cfg);
  net.finalize_routing();

  const group_addr g{600};
  net.register_group_source(g, h1);
  link* oif_a = net.next_hop(r2, ha);
  link* oif_b = net.next_hop(r2, hb);
  net.get(r2)->graft(g, oif_a);
  net.get(r2)->graft(g, oif_b);
  net.join_upstream(r2, g);
  s.run_until(milliseconds(100));
  link* down = net.next_hop(r1, ha);  // r1 -> r2

  // One leaf leaves; the interior branch must survive because r2 still has
  // an interested interface.
  net.get(r2)->prune(g, oif_a);
  net.leave_upstream(r2, g);
  s.run_until(milliseconds(200));
  EXPECT_TRUE(net.get(r1)->has_oif(g, down));
}

TEST(network, multicast_fanout_to_two_hosts) {
  scheduler s;
  network net(s);
  const node_id src = net.add_host("src");
  const node_id r = net.add_router("r");
  const node_id ha = net.add_host("a");
  const node_id hb = net.add_host("b");
  link_config cfg;
  net.connect(src, r, cfg);
  net.connect(r, ha, cfg);
  net.connect(r, hb, cfg);
  net.finalize_routing();

  const group_addr g{700};
  net.register_group_source(g, src);
  net.get(ha)->host_join(g);
  net.get(hb)->host_join(g);
  net.get(r)->graft(g, net.next_hop(r, ha));
  net.get(r)->graft(g, net.next_hop(r, hb));

  capture_agent sa(net, ha);
  capture_agent sb(net, hb);
  packet p;
  p.size_bytes = 64;
  p.dst = dest::to_group(g);
  net.get(src)->send(std::move(p));
  s.run();
  EXPECT_EQ(sa.packets.size(), 1u);
  EXPECT_EQ(sb.packets.size(), 1u);
}

TEST(network, host_only_receives_subscribed_groups) {
  scheduler s;
  line_topology t(s);
  const group_addr g{800};
  t.net.register_group_source(g, t.h1);
  t.net.get(t.r2)->graft(g, t.net.next_hop(t.r2, t.h2));
  t.net.join_upstream(t.r2, g);
  s.run_until(milliseconds(100));
  capture_agent sink(t.net, t.h2);  // h2 has NOT host_join()ed

  packet p;
  p.size_bytes = 64;
  p.dst = dest::to_group(g);
  t.net.get(t.h1)->send(std::move(p));
  s.run_until(milliseconds(200));
  EXPECT_TRUE(sink.packets.empty());
}

TEST(network, router_alert_packets_never_reach_hosts) {
  scheduler s;
  line_topology t(s);
  const group_addr g{900};
  t.net.register_group_source(g, t.h1);
  t.net.get(t.h2)->host_join(g);
  t.net.get(t.r2)->graft(g, t.net.next_hop(t.r2, t.h2));
  t.net.join_upstream(t.r2, g);
  s.run_until(milliseconds(100));
  capture_agent sink(t.net, t.h2);

  packet p;
  p.size_bytes = 64;
  p.dst = dest::to_group(g);
  p.router_alert = true;
  t.net.get(t.h1)->send(std::move(p));
  s.run_until(milliseconds(200));
  EXPECT_TRUE(sink.packets.empty());
}

TEST(network, alert_interceptor_sees_special_packets) {
  scheduler s;
  line_topology t(s);
  const group_addr g{901};
  t.net.register_group_source(g, t.h1);
  t.net.get(t.r2)->graft(g, t.net.next_hop(t.r2, t.h2));
  t.net.join_upstream(t.r2, g);
  s.run_until(milliseconds(100));

  class interceptor : public agent {
   public:
    bool handle_packet(const packet&, link*) override {
      ++count;
      return true;
    }
    int count = 0;
  } icpt;
  t.net.get(t.r2)->set_alert_interceptor(&icpt);

  packet p;
  p.size_bytes = 64;
  p.dst = dest::to_group(g);
  p.router_alert = true;
  t.net.get(t.h1)->send(std::move(p));
  s.run_until(milliseconds(200));
  EXPECT_EQ(icpt.count, 1);
}

TEST(network, session_announcements_are_registered) {
  scheduler s;
  network net(s);
  session_announcement ann;
  ann.session_id = 9;
  ann.groups = {group_addr{10}, group_addr{11}};
  ann.slot_duration = milliseconds(250);
  ann.sigma_protected = true;
  net.announce_session(ann);
  const session_announcement* found = net.find_session(9);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->groups.size(), 2u);
  EXPECT_TRUE(net.is_sigma_protected(group_addr{10}));
  EXPECT_TRUE(net.is_sigma_protected(group_addr{11}));
  EXPECT_FALSE(net.is_sigma_protected(group_addr{12}));
  EXPECT_EQ(net.find_session(10), nullptr);
}

TEST(network, routing_queries_require_finalize) {
  scheduler s;
  network net(s);
  const node_id a = net.add_host("a");
  const node_id b = net.add_host("b");
  net.connect(a, b, link_config{});
  EXPECT_THROW((void)net.next_hop(a, b), util::invariant_error);
  net.finalize_routing();
  EXPECT_NE(net.next_hop(a, b), nullptr);
}

TEST(network, topology_frozen_after_finalize) {
  scheduler s;
  network net(s);
  net.add_host("a");
  net.finalize_routing();
  EXPECT_THROW((void)net.add_host("late"), util::invariant_error);
}

}  // namespace
}  // namespace mcc::sim
