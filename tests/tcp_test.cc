#include "tcp/tcp.h"

#include <gtest/gtest.h>

#include <array>

#include "sim/stats.h"
#include "test_util.h"

namespace mcc::tcp {
namespace {

using mcc::testing::line_topology;

TEST(tcp, transfers_data_in_order) {
  sim::scheduler sched;
  line_topology topo(sched, 10e6, sim::milliseconds(5));
  tcp_config cfg;
  cfg.flow_id = 1;
  tcp_sink sink(topo.net, topo.h2, 1, 40);
  tcp_sender sender(topo.net, topo.h1, topo.h2, cfg);
  sched.run_until(sim::seconds(2.0));
  EXPECT_GT(sink.next_expected(), 100);
  EXPECT_EQ(sender.stats().timeouts, 0u);
}

TEST(tcp, slow_start_doubles_window_per_rtt) {
  sim::scheduler sched;
  line_topology topo(sched, 100e6, sim::milliseconds(10));  // no bottleneck
  tcp_config cfg;
  cfg.flow_id = 1;
  cfg.initial_ssthresh = 1e9;  // stay in slow start
  tcp_sink sink(topo.net, topo.h2, 1, 40);
  tcp_sender sender(topo.net, topo.h1, topo.h2, cfg);
  // RTT ~ 60 ms + transmission. After ~5 RTTs cwnd should be ~2^5.
  sched.run_until(sim::milliseconds(320));
  EXPECT_GE(sender.cwnd(), 16.0);
  EXPECT_LE(sender.stats().retransmits, 0u);
}

TEST(tcp, saturates_a_bottleneck_link) {
  sim::scheduler sched;
  line_topology topo(sched, 1e6, sim::milliseconds(10));
  tcp_config cfg;
  cfg.flow_id = 1;
  tcp_sink sink(topo.net, topo.h2, 1, 40);
  tcp_sender sender(topo.net, topo.h1, topo.h2, cfg);
  sched.run_until(sim::seconds(20.0));
  const double kbps =
      sink.monitor().average_kbps(sim::seconds(5.0), sim::seconds(20.0));
  // Goodput should be close to the 1 Mbps line rate.
  EXPECT_GT(kbps, 800.0);
  EXPECT_LE(kbps, 1050.0);
}

TEST(tcp, recovers_from_loss_with_fast_retransmit) {
  sim::scheduler sched;
  // Small queue forces drops once the window exceeds the pipe.
  sim::network net(sched);
  const auto h1 = net.add_host("h1");
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  const auto h2 = net.add_host("h2");
  sim::link_config fat;
  fat.bps = 10e6;
  fat.delay = sim::milliseconds(5);
  sim::link_config thin;
  thin.bps = 1e6;
  thin.delay = sim::milliseconds(20);
  thin.queue_capacity_bytes = 6000;
  net.connect(h1, r1, fat);
  net.connect(r1, r2, thin);
  net.connect(r2, h2, fat);
  net.finalize_routing();

  tcp_config cfg;
  cfg.flow_id = 1;
  tcp_sink sink(net, h2, 1, 40);
  tcp_sender sender(net, h1, h2, cfg);
  sched.run_until(sim::seconds(30.0));
  EXPECT_GT(sender.stats().fast_recoveries, 0u);
  // The connection keeps making progress despite drops.
  EXPECT_GT(sink.next_expected(), 2000);
  // Goodput still close to the line rate (Reno sawtooth).
  const double kbps =
      sink.monitor().average_kbps(sim::seconds(10.0), sim::seconds(30.0));
  EXPECT_GT(kbps, 600.0);
}

TEST(tcp, two_flows_share_bottleneck_fairly) {
  sim::scheduler sched;
  sim::network net(sched);
  const auto s1 = net.add_host("s1");
  const auto s2 = net.add_host("s2");
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  const auto d1 = net.add_host("d1");
  const auto d2 = net.add_host("d2");
  sim::link_config fat;
  fat.bps = 10e6;
  fat.delay = sim::milliseconds(10);
  sim::link_config thin;
  thin.bps = 1e6;
  thin.delay = sim::milliseconds(20);
  thin.queue_capacity_bytes = 20000;
  net.connect(s1, r1, fat);
  net.connect(s2, r1, fat);
  net.connect(r1, r2, thin);
  net.connect(r2, d1, fat);
  net.connect(r2, d2, fat);
  net.finalize_routing();

  tcp_config c1;
  c1.flow_id = 1;
  tcp_config c2;
  c2.flow_id = 2;
  tcp_sink sink1(net, d1, 1, 40);
  tcp_sink sink2(net, d2, 2, 40);
  tcp_sender snd1(net, s1, d1, c1);
  tcp_sender snd2(net, s2, d2, c2);
  sched.run_until(sim::seconds(60.0));

  const double r1k =
      sink1.monitor().average_kbps(sim::seconds(20.0), sim::seconds(60.0));
  const double r2k =
      sink2.monitor().average_kbps(sim::seconds(20.0), sim::seconds(60.0));
  const std::array<double, 2> rates = {r1k, r2k};
  EXPECT_GT(sim::jain_fairness_index(rates), 0.85);
  EXPECT_GT(r1k + r2k, 700.0);  // jointly near line rate
}

TEST(tcp, timeout_recovers_when_path_blackholes) {
  // Deliver nothing for a while by keeping the receiver unreachable at
  // start: simulate with an extremely small queue that drops bursts.
  sim::scheduler sched;
  sim::network net(sched);
  const auto h1 = net.add_host("h1");
  const auto r1 = net.add_router("r1");
  const auto h2 = net.add_host("h2");
  sim::link_config tiny;
  tiny.bps = 64e3;
  tiny.delay = sim::milliseconds(50);
  tiny.queue_capacity_bytes = 1200;  // two segments
  net.connect(h1, r1, tiny);
  net.connect(r1, h2, tiny);
  net.finalize_routing();

  tcp_config cfg;
  cfg.flow_id = 1;
  tcp_sink sink(net, h2, 1, 40);
  tcp_sender sender(net, h1, h2, cfg);
  sched.run_until(sim::seconds(60.0));
  EXPECT_GT(sink.next_expected(), 100);  // still progressing
}

TEST(tcp, ack_clocking_keeps_flight_bounded) {
  sim::scheduler sched;
  line_topology topo(sched, 1e6, sim::milliseconds(10));
  tcp_config cfg;
  cfg.flow_id = 3;
  tcp_sink sink(topo.net, topo.h2, 3, 40);
  tcp_sender sender(topo.net, topo.h1, topo.h2, cfg);
  sched.run_until(sim::seconds(10.0));
  // cwnd is bounded by pipe + queue; with 2 BDP buffers this stays modest.
  EXPECT_LT(sender.cwnd(), 200.0);
}

}  // namespace
}  // namespace mcc::tcp
