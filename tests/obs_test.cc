// Observability layer: metrics registry (owned instruments, views, flattened
// naming, snapshot order), the deterministic event-trace buffer (track
// interning, serialization, thread-local scope), and their integration with
// exp::testbed and exp::run_sweep (per-row metric snapshots and trace blobs
// that stay byte-identical across --jobs settings).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "exp/testbed.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/time.h"
#include "util/logging.h"

namespace mcc::obs {
namespace {

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

TEST(metrics_registry, flatten_without_labels_is_the_bare_name) {
  EXPECT_EQ(registry::flatten("sched.executed_events", {}),
            "sched.executed_events");
}

TEST(metrics_registry, flatten_preserves_label_order) {
  EXPECT_EQ(registry::flatten("link.dropped", {{"from", "l"}, {"to", "r"}}),
            "link.dropped{from=l,to=r}");
  EXPECT_EQ(registry::flatten("link.dropped", {{"to", "r"}, {"from", "l"}}),
            "link.dropped{to=r,from=l}")
      << "label order is part of the name, not canonicalized away";
}

TEST(metrics_registry, snapshot_returns_registration_order) {
  registry reg;
  counter& c = reg.add_counter("b.second");
  gauge& g = reg.add_gauge("a.first", {{"k", "v"}});
  reg.add_view("c.third", {}, [] { return 7.0; });
  c.inc(3);
  g.set(2.5);

  const metric_snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "b.second");
  EXPECT_EQ(snap[0].second, 3.0);
  EXPECT_EQ(snap[1].first, "a.first{k=v}");
  EXPECT_EQ(snap[1].second, 2.5);
  EXPECT_EQ(snap[2].first, "c.third");
  EXPECT_EQ(snap[2].second, 7.0);
}

TEST(metrics_registry, views_read_live_state_at_snapshot_time) {
  registry reg;
  double live = 1.0;
  reg.add_view("live", {}, [&live] { return live; });
  EXPECT_EQ(reg.snapshot()[0].second, 1.0);
  live = 42.0;
  EXPECT_EQ(reg.snapshot()[0].second, 42.0);
}

TEST(metrics_registry, owned_instrument_references_stay_valid) {
  registry reg;
  counter& first = reg.add_counter("first");
  // Force deque growth; `first` must not be invalidated.
  for (int i = 0; i < 100; ++i) {
    reg.add_counter("c" + std::to_string(i));
  }
  first.inc(9);
  EXPECT_EQ(reg.snapshot()[0].second, 9.0);
}

TEST(metrics_histogram, buckets_count_first_bound_geq_value) {
  histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (bound is inclusive)
  h.observe(5.0);    // <= 10
  h.observe(100.0);  // <= 100
  h.observe(500.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 606.5);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(3), 1u);  // overflow bucket
}

TEST(metrics_histogram, snapshot_expands_count_sum_buckets_overflow) {
  registry reg;
  histogram& h = reg.add_histogram("lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(50.0);
  EXPECT_EQ(reg.size(), 1u) << "a histogram is one instrument, not 5";

  const metric_snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  EXPECT_EQ(snap[0].first, "lat.count");
  EXPECT_EQ(snap[0].second, 2.0);
  EXPECT_EQ(snap[1].first, "lat.sum");
  EXPECT_DOUBLE_EQ(snap[1].second, 50.5);
  EXPECT_EQ(snap[2].first, "lat.le_1");
  EXPECT_EQ(snap[2].second, 1.0);
  EXPECT_EQ(snap[3].first, "lat.le_10");
  EXPECT_EQ(snap[3].second, 0.0);
  EXPECT_EQ(snap[4].first, "lat.overflow");
  EXPECT_EQ(snap[4].second, 1.0);
}

// ---------------------------------------------------------------------------
// trace buffer + scope
// ---------------------------------------------------------------------------

TEST(trace_buffer, interns_track_names_once) {
  trace_buffer tb;
  const std::uint32_t a = tb.track("link:l>r");
  const std::uint32_t b = tb.track("sigma:r:h");
  EXPECT_EQ(tb.track("link:l>r"), a);
  EXPECT_NE(a, b);
  ASSERT_EQ(tb.tracks().size(), 2u);
  EXPECT_EQ(tb.tracks()[a], "link:l>r");
  EXPECT_EQ(tb.tracks()[b], "sigma:r:h");
}

TEST(trace_buffer, records_carry_time_kind_and_payload) {
  trace_buffer tb;
  const std::uint32_t t = tb.track("link:l>r");
  tb.record(1'000, trace_event::packet_drop, t, 576, 1);
  ASSERT_EQ(tb.size(), 1u);
  const trace_record& r = tb.records()[0];
  EXPECT_EQ(r.t, 1'000);
  EXPECT_EQ(r.track, t);
  EXPECT_EQ(r.kind, static_cast<std::uint16_t>(trace_event::packet_drop));
  EXPECT_EQ(r.a, 576u);
  EXPECT_EQ(r.b, 1u);
}

TEST(trace_buffer, serialize_round_trips_tracks_and_records) {
  trace_buffer tb;
  const std::uint32_t t0 = tb.track("link:l>r");
  const std::uint32_t t1 = tb.track("recv:h");
  tb.record(10, trace_event::packet_enqueue, t0, 576, 1152);
  tb.record(20, trace_event::slot_feedback, t1, 3, 2);

  const std::string blob = tb.serialize();
  // Layout: u32 track_count, (u32 len + name)*, u64 record_count, records.
  std::size_t off = 0;
  std::uint32_t ntracks = 0;
  std::memcpy(&ntracks, blob.data() + off, 4);
  off += 4;
  ASSERT_EQ(ntracks, 2u);
  for (const char* expected : {"link:l>r", "recv:h"}) {
    std::uint32_t len = 0;
    std::memcpy(&len, blob.data() + off, 4);
    off += 4;
    EXPECT_EQ(blob.substr(off, len), expected);
    off += len;
  }
  std::uint64_t nrecords = 0;
  std::memcpy(&nrecords, blob.data() + off, 8);
  off += 8;
  ASSERT_EQ(nrecords, 2u);
  trace_record rec{};
  std::memcpy(&rec, blob.data() + off, sizeof rec);
  EXPECT_EQ(rec.t, 10);
  EXPECT_EQ(rec.kind, static_cast<std::uint16_t>(trace_event::packet_enqueue));
  EXPECT_EQ(blob.size(), off + 2 * sizeof(trace_record));
}

TEST(trace_scope, installs_and_restores_the_thread_local_sink) {
  EXPECT_EQ(current_trace(), nullptr);
  trace_buffer outer;
  {
    trace_scope a(&outer);
    EXPECT_EQ(current_trace(), &outer);
    trace_buffer inner;
    {
      trace_scope b(&inner);
      EXPECT_EQ(current_trace(), &inner);
      // A null scope is "tracing off", even nested inside an active one.
      trace_scope c(nullptr);
      EXPECT_EQ(current_trace(), nullptr);
    }
    EXPECT_EQ(current_trace(), &outer);
  }
  EXPECT_EQ(current_trace(), nullptr);
}

TEST(trace_event_names, every_kind_has_a_name) {
  for (std::uint16_t k = 1; k <= 14; ++k) {
    EXPECT_STRNE(trace_event_name(static_cast<trace_event>(k)), "?")
        << "kind " << k;
  }
}

// ---------------------------------------------------------------------------
// testbed integration: one small FLID-DS world populates both the registry
// and the trace buffer.
// ---------------------------------------------------------------------------

TEST(testbed_metrics, registry_covers_scheduler_edges_and_links) {
  exp::dumbbell_config cfg;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  d.run_until(sim::seconds(10.0));

  const metric_snapshot snap = d.metrics().snapshot();
  const auto value_of = [&snap](const std::string& name) -> double {
    for (const auto& [k, v] : snap) {
      if (k == name) return v;
    }
    ADD_FAILURE() << "metric not in snapshot: " << name;
    return -1.0;
  };

  EXPECT_GT(value_of("sched.executed_events"), 0.0);
  EXPECT_GT(value_of("sched.max_pending_events"), 0.0);
  EXPECT_GT(value_of("sched.slots_high_water"), 0.0);
  // The receiver site "r" became an edge, so its agents registered views.
  EXPECT_GT(value_of("sigma.subscribe_msgs{router=r}"), 0.0);
  EXPECT_GT(value_of("sigma.valid_keys{router=r}"), 0.0);
  // The bottleneck l->r carried the session's traffic.
  EXPECT_GT(value_of("link.delivered{from=l,to=r}"), 0.0);
  EXPECT_GT(value_of("link.bytes_delivered{from=l,to=r}"), 0.0);
}

TEST(testbed_metrics, views_match_the_structs_they_wrap) {
  exp::dumbbell_config cfg;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  d.run_until(sim::seconds(10.0));

  const metric_snapshot snap = d.metrics().snapshot();
  double sigma_valid = -1.0;
  double sched_executed = -1.0;
  for (const auto& [k, v] : snap) {
    if (k == "sigma.valid_keys{router=r}") sigma_valid = v;
    if (k == "sched.executed_events") sched_executed = v;
  }
  EXPECT_EQ(sigma_valid, static_cast<double>(d.sigma().stats().valid_keys))
      << "the view must read the same struct the legacy accessor exposes";
  EXPECT_EQ(sched_executed, static_cast<double>(d.sched().executed_events()));
}

TEST(testbed_metrics, snapshot_is_deterministic_across_identical_worlds) {
  const auto build_and_snapshot = [] {
    obs::trace_buffer tb;
    obs::trace_scope scope(&tb);
    exp::dumbbell_config cfg;
    cfg.seed = 3;
    exp::testbed d(exp::dumbbell(cfg));
    d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
    d.run_until(sim::seconds(10.0));
    return std::make_pair(d.metrics().snapshot(), tb.serialize());
  };
  const auto [snap_a, blob_a] = build_and_snapshot();
  const auto [snap_b, blob_b] = build_and_snapshot();
  EXPECT_EQ(snap_a, snap_b);
  EXPECT_EQ(blob_a, blob_b) << "trace blobs must be bit-reproducible";
  EXPECT_FALSE(blob_a.empty());
}

TEST(testbed_trace, engine_emits_all_three_track_families) {
  obs::trace_buffer tb;
  obs::trace_scope scope(&tb);
  exp::dumbbell_config cfg;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  d.run_until(sim::seconds(10.0));

  bool saw_link = false;
  bool saw_sigma = false;
  bool saw_recv = false;
  for (const std::string& name : tb.tracks()) {
    saw_link |= name.rfind("link:", 0) == 0;
    saw_sigma |= name.rfind("sigma:", 0) == 0;
    saw_recv |= name.rfind("recv:", 0) == 0;
  }
  EXPECT_TRUE(saw_link);
  EXPECT_TRUE(saw_sigma);
  EXPECT_TRUE(saw_recv);
  EXPECT_GT(tb.size(), 0u);
}

// ---------------------------------------------------------------------------
// sweep integration: rows carry metrics + trace blobs through every worker
// configuration byte-identically, and the JSON writer emits schema 2.
// ---------------------------------------------------------------------------

exp::sweep_row tiny_world_row(const exp::sweep_point& pt, bool tracing) {
  obs::trace_buffer tb;
  obs::trace_scope scope(tracing ? &tb : nullptr);
  exp::dumbbell_config cfg;
  cfg.seed = pt.seed;
  exp::testbed d(exp::dumbbell(cfg));
  d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  d.run_until(sim::seconds(5.0));
  exp::sweep_row row;
  row.value("events", static_cast<double>(d.sched().executed_events()));
  row.metrics = d.metrics().snapshot();
  if (tracing) row.trace_blob = tb.serialize();
  return row;
}

std::string sweep_json(const exp::sweep_options& opts, bool tracing) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto rows = exp::run_sweep(xs, opts, [tracing](const auto& pt) {
    return tiny_world_row(pt, tracing);
  });
  std::ostringstream os;
  exp::write_json(os, "obs_test", rows);
  return os.str();
}

TEST(sweep_obs, rows_with_metrics_and_traces_are_jobs_invariant) {
  exp::sweep_options serial;
  serial.jobs = 1;
  serial.base_seed = 11;
  exp::sweep_options threaded;
  threaded.jobs = 3;
  threaded.base_seed = 11;
  EXPECT_EQ(sweep_json(serial, true), sweep_json(threaded, true));
#ifdef __unix__
  exp::sweep_options forked;
  forked.jobs_per_process = 3;
  forked.base_seed = 11;
  EXPECT_EQ(sweep_json(serial, true), sweep_json(forked, true))
      << "metrics and trace blobs must survive the worker pipe bit-exactly";
#endif
}

TEST(sweep_obs, trace_blobs_cross_the_forked_worker_pipe) {
#ifdef __unix__
  exp::sweep_options forked;
  forked.jobs_per_process = 2;
  forked.base_seed = 11;
  const std::vector<double> xs = {1.0, 2.0};
  const auto rows = exp::run_sweep(xs, forked, [](const auto& pt) {
    return tiny_world_row(pt, true);
  });
  for (const auto& row : rows) {
    EXPECT_FALSE(row.trace_blob.empty());
    EXPECT_FALSE(row.metrics.empty());
  }
#else
  GTEST_SKIP() << "forked workers are POSIX-only";
#endif
}

TEST(sweep_obs, json_document_carries_schema_version_2_and_metrics) {
  exp::sweep_options opts;
  opts.base_seed = 11;
  const std::string json = sweep_json(opts, false);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("\"sched.executed_events\""), std::string::npos);
  EXPECT_EQ(json.find("\"profile\""), std::string::npos)
      << "no profile block unless one is passed";
  EXPECT_EQ(json.find("trace_blob"), std::string::npos)
      << "binary trace blobs must never leak into the JSON document";
}

TEST(sweep_obs, metric_of_looks_up_flattened_names) {
  exp::sweep_row row;
  row.metrics = {{"a", 1.0}, {"b{k=v}", 2.0}};
  EXPECT_EQ(row.metric_of("a"), 1.0);
  EXPECT_EQ(row.metric_of("b{k=v}"), 2.0);
  EXPECT_TRUE(row.metric_of("missing") != row.metric_of("missing"))
      << "absent metrics read as NaN";
}

TEST(sweep_obs, profile_block_reports_wall_clock_and_event_totals) {
  exp::sweep_options opts;
  opts.base_seed = 11;
  exp::sweep_profile prof;
  const std::vector<double> xs = {1.0, 2.0};
  const auto rows = exp::run_sweep(
      xs, opts, [](const auto& pt) { return tiny_world_row(pt, false); },
      &prof);
  EXPECT_EQ(prof.points, 2u);
  EXPECT_GT(prof.wall_ms, 0.0);
  EXPECT_GT(prof.points_per_sec, 0.0);
  EXPECT_GT(prof.events_executed, 0.0)
      << "rows snapshot sched.executed_events, so the profile must sum it";
  EXPECT_EQ(prof.point_ms.count(), 2u);

  std::ostringstream os;
  exp::write_json(os, "obs_test", rows, &prof);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"profile\": {"), std::string::npos);
  EXPECT_NE(json.find("\"events_executed\""), std::string::npos);
  EXPECT_NE(json.find("\"point_ms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// log-level glue (the --log-level / MCC_LOG_LEVEL satellite)
// ---------------------------------------------------------------------------

TEST(log_level, names_round_trip) {
  using util::log_level;
  for (const log_level l : {log_level::debug, log_level::info, log_level::warn,
                            log_level::error, log_level::off}) {
    const auto parsed = util::log_level_from_name(util::log_level_name(l));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, l);
  }
  EXPECT_FALSE(util::log_level_from_name("verbose").has_value());
  EXPECT_FALSE(util::log_level_from_name("WARN").has_value())
      << "level names are lowercase; the flag glue owns any friendlier UX";
}

TEST(log_level, log_line_latches_the_threshold_at_construction) {
  const util::log_level before = util::get_log_level();
  util::set_log_level(util::log_level::off);
  {
    // Constructed while off: raising the threshold mid-statement must not
    // resurrect the line (it latched "disabled" once).
    util::log_line line(util::log_level::error);
    util::set_log_level(util::log_level::debug);
    line << "never emitted";
  }
  util::set_log_level(before);
}

}  // namespace
}  // namespace mcc::obs
