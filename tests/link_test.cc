#include "sim/link.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mcc::sim {
namespace {

using mcc::testing::capture_agent;
using mcc::testing::make_packet;

struct two_hosts {
  explicit two_hosts(scheduler& s, const link_config& cfg) : net(s) {
    a = net.add_host("a");
    b = net.add_host("b");
    auto [f, r] = net.connect(a, b, cfg);
    fwd = f;
    rev = r;
    net.finalize_routing();
  }
  network net;
  node_id a, b;
  link* fwd;
  link* rev;
};

TEST(link, delivers_after_serialization_plus_propagation) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e6;
  cfg.delay = milliseconds(20);
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);

  t.net.get(t.a)->send(make_packet(1000, t.b));  // 8 ms serialization
  s.run();
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(s.now(), milliseconds(28));
}

TEST(link, serializes_back_to_back_packets) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e6;
  cfg.delay = 0;
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);

  for (int i = 0; i < 3; ++i) t.net.get(t.a)->send(make_packet(1000, t.b));
  s.run();
  ASSERT_EQ(sink.packets.size(), 3u);
  // Three 8 ms transmissions in series.
  EXPECT_EQ(s.now(), milliseconds(24));
}

TEST(link, drops_when_queue_full) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e6;
  cfg.delay = 0;
  cfg.queue_capacity_bytes = 2500;  // fits two 1000-byte packets + in-flight
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);

  // First packet starts transmitting immediately (leaves the queue); the
  // queue then holds two more; the rest drop.
  for (int i = 0; i < 6; ++i) t.net.get(t.a)->send(make_packet(1000, t.b));
  s.run();
  EXPECT_EQ(t.fwd->stats().dropped, 3u);
  EXPECT_EQ(sink.packets.size(), 3u);
}

TEST(link, counts_dropped_bytes_and_queue_high_watermark) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e6;
  cfg.delay = 0;
  cfg.queue_capacity_bytes = 2500;  // fits two 1000-byte packets + in-flight
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);

  // First packet starts serializing immediately; two queue; three drop.
  for (int i = 0; i < 6; ++i) t.net.get(t.a)->send(make_packet(1000, t.b));
  EXPECT_EQ(t.fwd->stats().dropped, 3u);
  EXPECT_EQ(t.fwd->stats().bytes_dropped, 3000);
  // Peak occupancy: two 1000-byte packets waiting behind the in-flight one.
  EXPECT_EQ(t.fwd->stats().max_queued_bytes, 2000);
  s.run();
  // Draining the queue does not lower the recorded high-watermark.
  EXPECT_EQ(t.fwd->queued_bytes(), 0);
  EXPECT_EQ(t.fwd->stats().max_queued_bytes, 2000);
  EXPECT_EQ(sink.packets.size(), 3u);
}

TEST(link, undropped_traffic_reports_zero_dropped_bytes) {
  scheduler s;
  link_config cfg;
  cfg.bps = 10e6;
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);
  for (int i = 0; i < 4; ++i) t.net.get(t.a)->send(make_packet(500, t.b));
  s.run();
  EXPECT_EQ(t.fwd->stats().dropped, 0u);
  EXPECT_EQ(t.fwd->stats().bytes_dropped, 0);
  EXPECT_GT(t.fwd->stats().max_queued_bytes, 0);
}

TEST(link, counts_delivered_bytes) {
  scheduler s;
  link_config cfg;
  cfg.bps = 10e6;
  cfg.delay = milliseconds(1);
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);
  for (int i = 0; i < 4; ++i) t.net.get(t.a)->send(make_packet(500, t.b));
  s.run();
  EXPECT_EQ(t.fwd->stats().delivered, 4u);
  EXPECT_EQ(t.fwd->stats().bytes_delivered, 2000);
  EXPECT_EQ(t.fwd->stats().enqueued, 4u);
}

TEST(link, preserves_fifo_order) {
  scheduler s;
  link_config cfg;
  cfg.bps = 5e6;
  cfg.delay = milliseconds(2);
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);
  for (int i = 0; i < 10; ++i) {
    packet p = make_packet(600, t.b);
    p.hdr = cbr_payload{1, i};
    t.net.get(t.a)->send(std::move(p));
  }
  s.run();
  ASSERT_EQ(sink.packets.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(header_as<cbr_payload>(sink.packets[static_cast<std::size_t>(i)])
                  ->seq,
              i);
  }
}

TEST(link, ecn_threshold_marks_capable_packets_only) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e5;  // slow so the queue builds
  cfg.delay = 0;
  cfg.queue_capacity_bytes = 10'000;
  cfg.aqm.discipline = qdisc::ecn_threshold;
  cfg.aqm.ecn_threshold_fraction = 0.3;
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);

  for (int i = 0; i < 12; ++i) {
    packet p = make_packet(1000, t.b);
    p.ecn_capable = (i % 2 == 0);
    t.net.get(t.a)->send(std::move(p));
  }
  s.run();
  EXPECT_GT(t.fwd->stats().ecn_marked, 0u);
  int marked = 0;
  for (const auto& p : sink.packets) {
    if (p.ecn_marked) {
      ++marked;
      EXPECT_TRUE(p.ecn_capable);
    }
  }
  EXPECT_EQ(static_cast<std::uint64_t>(marked), t.fwd->stats().ecn_marked);
}

TEST(link, droptail_never_marks) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e5;
  cfg.delay = 0;
  cfg.queue_capacity_bytes = 10'000;
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);
  for (int i = 0; i < 12; ++i) {
    packet p = make_packet(1000, t.b);
    p.ecn_capable = true;
    t.net.get(t.a)->send(std::move(p));
  }
  s.run();
  EXPECT_EQ(t.fwd->stats().ecn_marked, 0u);
}

TEST(link, default_queue_capacity_is_positive) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e6;
  cfg.queue_capacity_bytes = 0;  // ask for the default
  two_hosts t(s, cfg);
  EXPECT_GT(t.fwd->config().queue_capacity_bytes, 0);
}

TEST(link, auto_sized_queue_is_exactly_two_bdp_at_100ms) {
  // AQM threshold defaults derive from the capacity, so the 2-BDP auto-size
  // is a contract: 2 * bps * 100 ms / 8 bytes. Pin it at several rates.
  scheduler s;
  const struct {
    double bps;
    std::int64_t expect_bytes;
  } cases[] = {{1e6, 25'000}, {10e6, 250'000}, {500e3, 12'500}};
  for (const auto& c : cases) {
    link_config cfg;
    cfg.bps = c.bps;
    cfg.queue_capacity_bytes = 0;
    two_hosts t(s, cfg);
    EXPECT_EQ(t.fwd->config().queue_capacity_bytes, c.expect_bytes) << c.bps;
  }
}

TEST(link, red_thresholds_derive_from_the_auto_sized_capacity) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e6;
  cfg.queue_capacity_bytes = 0;  // 2-BDP default: 25000 bytes
  cfg.aqm.discipline = qdisc::red;
  two_hosts t(s, cfg);
  const auto& red = dynamic_cast<const red_aqm&>(t.fwd->aqm());
  EXPECT_EQ(red.min_threshold_bytes(),
            static_cast<std::int64_t>(0.15 * 25'000));
  EXPECT_EQ(red.max_threshold_bytes(),
            static_cast<std::int64_t>(0.5 * 25'000));
}

TEST(link, red_splits_early_drops_out_of_total_drops) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e5;  // slow, so a burst overwhelms it
  cfg.delay = 0;
  cfg.queue_capacity_bytes = 10'000;
  cfg.aqm.discipline = qdisc::red;
  cfg.aqm.red.weight = 0.25;  // react within one burst
  cfg.aqm.seed = 5;
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);
  for (int i = 0; i < 60; ++i) t.net.get(t.a)->send(make_packet(1000, t.b));
  s.run();
  const link_stats& st = t.fwd->stats();
  EXPECT_GT(st.aqm_dropped, 0u);
  EXPECT_GE(st.dropped, st.aqm_dropped);
  EXPECT_EQ(st.dropped - st.aqm_dropped,
            60u - st.enqueued - st.aqm_dropped);  // remainder is tail overflow
  EXPECT_EQ(sink.packets.size(), st.enqueued);
}

TEST(link, codel_drops_at_dequeue_and_preserves_order) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e5;
  cfg.delay = 0;
  cfg.queue_capacity_bytes = 50'000;
  cfg.aqm.discipline = qdisc::codel;
  cfg.aqm.codel.ecn = false;
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);
  // 2x overload for four seconds: sojourn times blow through the target.
  for (int i = 0; i < 100; ++i) {
    packet p = make_packet(1000, t.b);
    p.hdr = cbr_payload{1, i};
    const time_ns at = milliseconds(40) * i;
    s.at(at, [&t, p = std::move(p)]() mutable {
      t.net.get(t.a)->send(std::move(p));
    });
  }
  s.run();
  const link_stats& st = t.fwd->stats();
  EXPECT_GT(st.aqm_dropped, 0u);
  EXPECT_EQ(st.dropped, st.aqm_dropped);  // buffer never physically filled
  // Survivors arrive in order.
  std::int64_t prev = -1;
  for (const auto& p : sink.packets) {
    const auto* hdr = header_as<cbr_payload>(p);
    ASSERT_NE(hdr, nullptr);
    EXPECT_GT(hdr->seq, prev);
    prev = hdr->seq;
  }
  // delivered counts serialized packets; drops happened before serialization.
  EXPECT_EQ(sink.packets.size(), st.delivered);
}

TEST(link, time_average_queue_tracks_occupancy) {
  scheduler s;
  link_config cfg;
  cfg.bps = 1e6;  // 8 ms per 1000-byte packet
  cfg.delay = 0;
  two_hosts t(s, cfg);
  capture_agent sink(t.net, t.b);
  for (int i = 0; i < 4; ++i) t.net.get(t.a)->send(make_packet(1000, t.b));
  s.run();
  // Queue occupancy: 3000 bytes for 8 ms, 2000 for 8 ms, 1000 for 8 ms, 0
  // afterwards; at t = 32 ms the time-average is (3+2+1)*8/32 = 1500 bytes.
  EXPECT_EQ(s.now(), milliseconds(32));
  EXPECT_DOUBLE_EQ(t.fwd->time_avg_queued_bytes(s.now()), 1'500.0);
}

TEST(link, rejects_invalid_config) {
  scheduler s;
  network net(s);
  const node_id a = net.add_host("a");
  const node_id b = net.add_host("b");
  link_config bad;
  bad.bps = 0;
  EXPECT_THROW(net.connect(a, b, bad), util::invariant_error);
}

}  // namespace
}  // namespace mcc::sim
