#include "crypto/prng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/zipf.h"

namespace mcc::crypto {
namespace {

TEST(prng, deterministic_for_equal_seeds) {
  prng a(42);
  prng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(prng, different_seeds_diverge) {
  prng a(1);
  prng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(prng, uniform_is_in_unit_interval) {
  prng g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(prng, uniform_mean_near_half) {
  prng g(11);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(prng, uniform_range_respects_bounds) {
  prng g(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(prng, uniform_int_covers_range_inclusively) {
  prng g(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(g.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(prng, uniform_int_single_point_range) {
  prng g(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g.uniform_int(5, 5), 5);
}

TEST(prng, uniform_int_rejects_empty_range) {
  prng g(23);
  EXPECT_THROW((void)g.uniform_int(3, 2), util::invariant_error);
}

TEST(prng, bernoulli_matches_probability) {
  prng g(29);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (g.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(prng, bernoulli_extremes) {
  prng g(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(g.bernoulli(0.0));
    EXPECT_TRUE(g.bernoulli(1.0));
  }
}

TEST(prng, exponential_mean) {
  prng g(37);
  double sum = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += g.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(prng, exponential_rejects_nonpositive_mean) {
  prng g(41);
  EXPECT_THROW((void)g.exponential(0.0), util::invariant_error);
  EXPECT_THROW((void)g.exponential(-1.0), util::invariant_error);
}

TEST(prng, fork_streams_are_independent) {
  prng parent(99);
  prng a = parent.fork(1);
  prng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(prng, fork_is_deterministic) {
  prng p1(99);
  prng p2(99);
  prng a = p1.fork(7);
  prng b = p2.fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(prng, splitmix_is_pure) {
  std::uint64_t s1 = 5;
  std::uint64_t s2 = 5;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

class prng_bit_balance : public ::testing::TestWithParam<int> {};

TEST_P(prng_bit_balance, each_bit_is_roughly_fair) {
  prng g(static_cast<std::uint64_t>(GetParam()) * 1234567 + 1);
  const int bit = GetParam();
  int ones = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if ((g.next() >> bit) & 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02) << "bit " << bit;
}

INSTANTIATE_TEST_SUITE_P(all_positions, prng_bit_balance,
                         ::testing::Values(0, 1, 7, 15, 31, 47, 63));

}  // namespace
}  // namespace mcc::crypto

// ---------------------------------------------------------------------------
// util::zipf_sampler: the deterministic inverse-CDF sampler driven by any
// uniform stream (the population layer's member-demand distribution).
// ---------------------------------------------------------------------------

namespace mcc::util {
namespace {

TEST(zipf_sampler, pmf_is_a_normalized_decaying_distribution) {
  const zipf_sampler z(10, 1.1);
  double total = 0.0;
  for (int k = 1; k <= 10; ++k) {
    const double p = z.pmf(k);
    EXPECT_GT(p, 0.0) << "k=" << k;
    if (k > 1) EXPECT_LT(p, z.pmf(k - 1)) << "k=" << k;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(zipf_sampler, empirical_frequencies_match_pmf) {
  const zipf_sampler z(10, 1.1);
  crypto::prng g(101);
  std::vector<int> counts(11, 0);
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const int k = z.sample(g.uniform());
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 10);
    ++counts[k];
  }
  for (int k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.01)
        << "k=" << k;
  }
}

TEST(zipf_sampler, zero_exponent_is_uniform) {
  const zipf_sampler z(8, 0.0);
  for (int k = 1; k <= 8; ++k) EXPECT_NEAR(z.pmf(k), 1.0 / 8.0, 1e-12);
}

TEST(zipf_sampler, heavier_exponent_concentrates_the_base_rank) {
  const zipf_sampler light(10, 0.5);
  const zipf_sampler heavy(10, 2.0);
  EXPECT_GT(heavy.pmf(1), light.pmf(1));
  EXPECT_LT(heavy.pmf(10), light.pmf(10));
}

TEST(zipf_sampler, sample_is_a_pure_function_of_the_variate) {
  const zipf_sampler a(10, 1.1);
  const zipf_sampler b(10, 1.1);
  crypto::prng g(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = g.uniform();
    EXPECT_EQ(a.sample(u), b.sample(u));
  }
}

TEST(zipf_sampler, edge_variates_map_to_the_extreme_ranks) {
  const zipf_sampler z(10, 1.1);
  EXPECT_EQ(z.sample(0.0), 1);
  EXPECT_EQ(z.sample(1.0), 10);
  // Out-of-range variates clamp instead of indexing out of the table.
  EXPECT_EQ(z.sample(-0.5), 1);
  EXPECT_EQ(z.sample(2.0), 10);
}

TEST(zipf_sampler, sample_bits_matches_prng_uniform_mapping) {
  const zipf_sampler z(10, 1.1);
  crypto::prng bits(55);
  crypto::prng vals(55);
  for (int i = 0; i < 1000; ++i) {
    // prng::uniform is (next() >> 11) * 2^-53; sample_bits applies the same
    // mapping, so identical streams must land on identical ranks.
    EXPECT_EQ(z.sample_bits(bits.next()), z.sample(vals.uniform()));
  }
}

TEST(zipf_sampler, single_rank_degenerates) {
  const zipf_sampler z(1, 1.1);
  EXPECT_EQ(z.sample(0.0), 1);
  EXPECT_EQ(z.sample(0.999), 1);
  EXPECT_NEAR(z.pmf(1), 1.0, 1e-12);
}

TEST(zipf_sampler, rejects_bad_parameters) {
  EXPECT_THROW(zipf_sampler(0, 1.0), invariant_error);
  EXPECT_THROW(zipf_sampler(10, -0.5), invariant_error);
  const zipf_sampler z(10, 1.1);
  EXPECT_THROW((void)z.pmf(0), invariant_error);
  EXPECT_THROW((void)z.pmf(11), invariant_error);
}

}  // namespace
}  // namespace mcc::util
