#include "flid/flid_sender.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mcc::flid {
namespace {

TEST(flid_config, cumulative_rates_grow_multiplicatively) {
  flid_config cfg;
  cfg.base_rate_bps = 100e3;
  cfg.rate_multiplier = 1.5;
  EXPECT_DOUBLE_EQ(cfg.cumulative_rate_bps(1), 100e3);
  EXPECT_DOUBLE_EQ(cfg.cumulative_rate_bps(2), 150e3);
  EXPECT_NEAR(cfg.cumulative_rate_bps(10), 100e3 * std::pow(1.5, 9), 1.0);
  EXPECT_DOUBLE_EQ(cfg.cumulative_rate_bps(0), 0.0);
}

TEST(flid_config, group_rates_are_positive_differentials) {
  flid_config cfg;
  for (int g = 1; g <= cfg.num_groups; ++g) {
    EXPECT_GT(cfg.group_rate_bps(g), 0.0) << g;
  }
  double sum = 0.0;
  for (int g = 1; g <= cfg.num_groups; ++g) sum += cfg.group_rate_bps(g);
  EXPECT_NEAR(sum, cfg.cumulative_rate_bps(cfg.num_groups), 1e-6);
}

TEST(flid_config, group_addresses_roundtrip) {
  flid_config cfg;
  cfg.group_addr_base = 20'000;
  for (int g = 1; g <= cfg.num_groups; ++g) {
    EXPECT_EQ(cfg.index_of(cfg.group(g)), g);
  }
  EXPECT_EQ(cfg.index_of(sim::group_addr{19'999}), 0);
  EXPECT_EQ(cfg.index_of(sim::group_addr{20'000 + cfg.num_groups}), 0);
}

TEST(flid_config, announcement_lists_groups_in_order) {
  flid_config cfg;
  cfg.session_id = 4;
  const auto ann = cfg.announcement();
  EXPECT_EQ(ann.session_id, 4);
  ASSERT_EQ(ann.groups.size(), static_cast<std::size_t>(cfg.num_groups));
  EXPECT_EQ(ann.groups.front(), cfg.group(1));
  EXPECT_EQ(ann.slot_duration, cfg.slot_duration);
}

TEST(flid_sender, packets_per_slot_match_rates) {
  sim::scheduler sched;
  sim::network net(sched);
  const auto host = net.add_host("src");
  flid_config cfg;
  flid_sender sender(net, host, cfg, 1);
  // Group 1: 100 Kbps, 500 ms slot, 576-byte packets -> ~10.85/slot.
  double total = 0;
  for (std::int64_t s = 0; s < 100; ++s) total += sender.packets_in_slot(1, s);
  EXPECT_NEAR(total / 100.0, 100e3 * 0.5 / (8 * 576), 0.1);
}

TEST(flid_sender, every_group_sends_at_least_one_packet_per_slot) {
  sim::scheduler sched;
  sim::network net(sched);
  const auto host = net.add_host("src");
  flid_config cfg;
  cfg.slot_duration = sim::milliseconds(200);  // short slots
  flid_sender sender(net, host, cfg, 1);
  for (int g = 1; g <= cfg.num_groups; ++g) {
    for (std::int64_t s = 0; s < 20; ++s) {
      EXPECT_GE(sender.packets_in_slot(g, s), 1);
    }
  }
}

TEST(flid_sender, auth_mask_is_deterministic_and_seeded_by_session) {
  sim::scheduler sched;
  sim::network net(sched);
  const auto h1 = net.add_host("a");
  const auto h2 = net.add_host("b");
  flid_config c1;
  c1.session_id = 1;
  flid_config c2;
  c2.session_id = 2;
  flid_sender s1(net, h1, c1, 1);
  flid_sender s1b(net, h1, c1, 999);  // different seed, same session
  flid_sender s2(net, h2, c2, 1);
  bool differ = false;
  for (std::int64_t s = 0; s < 50; ++s) {
    EXPECT_EQ(s1.auth_mask_for_slot(s), s1b.auth_mask_for_slot(s));
    if (s1.auth_mask_for_slot(s) != s2.auth_mask_for_slot(s)) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(flid_sender, auth_frequency_tracks_upgrade_prob) {
  sim::scheduler sched;
  sim::network net(sched);
  const auto host = net.add_host("src");
  flid_config cfg;
  cfg.upgrade_prob = 0.3;
  cfg.upgrade_decay = 0.85;
  flid_sender sender(net, host, cfg, 1);
  const int slots = 4000;
  for (const int g : {2, 5, 9}) {
    int auths = 0;
    for (std::int64_t s = 0; s < slots; ++s) {
      if (sender.auth_mask_for_slot(s) & (1u << g)) ++auths;
    }
    EXPECT_NEAR(static_cast<double>(auths) / slots, cfg.upgrade_prob_for(g),
                0.03)
        << "group " << g;
  }
}

TEST(flid_sender, upgrade_probability_decays_geometrically) {
  flid_config cfg;
  cfg.upgrade_prob = 0.3;
  cfg.upgrade_decay = 0.85;
  EXPECT_DOUBLE_EQ(cfg.upgrade_prob_for(2), 0.3);
  EXPECT_NEAR(cfg.upgrade_prob_for(3), 0.255, 1e-9);
  for (int g = 3; g <= 10; ++g) {
    EXPECT_LT(cfg.upgrade_prob_for(g), cfg.upgrade_prob_for(g - 1));
  }
}

TEST(flid_sender, transmits_headers_with_slot_metadata) {
  sim::scheduler sched;
  mcc::testing::line_topology topo(sched);
  flid_config cfg;
  cfg.num_groups = 3;
  flid_sender sender(topo.net, topo.h1, cfg, 1);
  // Receive everything on h2.
  const auto g1 = cfg.group(1);
  topo.net.get(topo.h2)->host_join(g1);
  topo.net.get(topo.r2)->graft(g1, topo.net.next_hop(topo.r2, topo.h2));
  sender.start(0);
  topo.net.join_upstream(topo.r2, g1);
  mcc::testing::capture_agent sink(topo.net, topo.h2);
  sched.run_until(sim::seconds(2.0));

  ASSERT_FALSE(sink.packets.empty());
  std::map<std::int64_t, int> per_slot;
  for (const auto& p : sink.packets) {
    const auto* hdr = sim::header_as<sim::flid_data>(p);
    ASSERT_NE(hdr, nullptr);
    EXPECT_EQ(hdr->group_index, 1);
    EXPECT_EQ(hdr->session_id, cfg.session_id);
    ++per_slot[hdr->slot];
  }
  // Full slots deliver exactly the advertised packet count.
  for (const auto& p : sink.packets) {
    const auto* hdr = sim::header_as<sim::flid_data>(p);
    if (per_slot[hdr->slot] == hdr->packets_in_slot) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "no complete slot observed";
}

TEST(flid_sender, last_in_slot_marker_present_once_per_group_slot) {
  sim::scheduler sched;
  mcc::testing::line_topology topo(sched);
  flid_config cfg;
  cfg.num_groups = 2;
  flid_sender sender(topo.net, topo.h1, cfg, 1);
  const auto g1 = cfg.group(1);
  topo.net.get(topo.h2)->host_join(g1);
  topo.net.get(topo.r2)->graft(g1, topo.net.next_hop(topo.r2, topo.h2));
  sender.start(0);
  topo.net.join_upstream(topo.r2, g1);
  mcc::testing::capture_agent sink(topo.net, topo.h2);
  sched.run_until(sim::seconds(3.0));

  std::map<std::int64_t, int> lasts;
  std::map<std::int64_t, int> counts;
  for (const auto& p : sink.packets) {
    const auto* hdr = sim::header_as<sim::flid_data>(p);
    ++counts[hdr->slot];
    if (hdr->last_in_slot) ++lasts[hdr->slot];
  }
  for (const auto& [slot, cnt] : counts) {
    if (slot == counts.rbegin()->first) continue;  // possibly cut off
    EXPECT_EQ(lasts[slot], 1) << "slot " << slot;
  }
}

TEST(flid_sender, sigma_tagging_adds_shim) {
  sim::scheduler sched;
  mcc::testing::line_topology topo(sched);
  flid_config cfg;
  cfg.num_groups = 2;
  flid_sender sender(topo.net, topo.h1, cfg, 1);
  sender.set_sigma_tagging(true);
  const auto g1 = cfg.group(1);
  topo.net.get(topo.h2)->host_join(g1);
  topo.net.get(topo.r2)->graft(g1, topo.net.next_hop(topo.r2, topo.h2));
  sender.start(0);
  topo.net.join_upstream(topo.r2, g1);
  mcc::testing::capture_agent sink(topo.net, topo.h2);
  sched.run_until(sim::seconds(1.0));
  ASSERT_FALSE(sink.packets.empty());
  for (const auto& p : sink.packets) {
    ASSERT_TRUE(p.tag.has_value());
    EXPECT_EQ(p.tag->session_id, cfg.session_id);
    EXPECT_EQ(p.tag->slot, sim::header_as<sim::flid_data>(p)->slot);
  }
}

TEST(flid_sender, stats_count_upgrade_authorizations) {
  sim::scheduler sched;
  sim::network net(sched);
  const auto host = net.add_host("src");
  net.add_router("r");
  net.connect(host, 1, sim::link_config{});
  net.finalize_routing();
  flid_config cfg;
  cfg.num_groups = 4;
  flid_sender sender(net, host, cfg, 1);
  sender.start(0);
  sched.run_until(sim::seconds(10.0));
  // 20 full slots plus the slot-boundary event at exactly t = 10 s.
  EXPECT_EQ(sender.stats().slots, 21u);
  std::uint64_t total_auth = 0;
  for (int g = 2; g <= 4; ++g) {
    total_auth += sender.stats().auth_count[static_cast<std::size_t>(g)];
  }
  EXPECT_GT(total_auth, 0u);
  EXPECT_GT(sender.stats().data_packets, 0u);
}

}  // namespace
}  // namespace mcc::flid
