// SIGMA control-channel robustness: tuple blocks must decode from any k of
// the k+m shards, in any arrival order, with duplicates, and parked
// subscriptions must be re-validated once the block decodes.
#include <gtest/gtest.h>

#include "core/flid_ds.h"
#include "core/sigma_emitter.h"
#include "core/sigma_router.h"
#include "exp/testbed.h"

namespace mcc::core {
namespace {

/// Harness that feeds sigma_ctrl shards to a router agent directly.
struct fec_harness {
  fec_harness() : net(sched) {
    router = net.add_router("edge");
    host = net.add_host("h");
    src = net.add_host("src");
    net.connect(router, host, sim::link_config{});
    net.connect(src, router, sim::link_config{});
    net.finalize_routing();
    igmp = std::make_unique<mcast::igmp_agent>(net, router);
    sigma = std::make_unique<sigma_router_agent>(net, router, *igmp);

    // Announce a protected session so joins/validations resolve.
    sim::session_announcement ann;
    ann.session_id = 5;
    std::vector<sim::group_addr> session_groups;
    for (int g = 1; g <= 4; ++g) {
      session_groups.push_back(sim::group_addr{900 + g});
      net.register_group_source(sim::group_addr{900 + g}, src);
    }
    ann.groups = std::move(session_groups);
    ann.slot_duration = sim::milliseconds(250);
    ann.sigma_protected = true;
    net.announce_session(ann);
  }

  /// Builds the ctrl shards for one slot's keys.
  std::vector<sim::packet> make_shards(delta_layered_sender& delta,
                                       std::int64_t slot, int k, int m) {
    // Capture packets instead of sending them: emit into a collector host.
    std::vector<sim::group_addr> groups;
    for (int g = 1; g <= 4; ++g) groups.push_back(sim::group_addr{900 + g});
    std::vector<int> counts = {0, 3, 3, 3, 3};
    delta.begin_slot(slot, 0, counts);
    const delta_slot_keys* keys = delta.keys_for(slot + key_lead_slots);

    const sigma_key_block block =
        block_from_keys(*keys, groups, sim::milliseconds(250), 16);
    const auto payload = serialize(block);
    const auto data = crypto::split_into_shards(payload, k);
    crypto::rs_code code(k, m);
    const auto codeword = code.encode(data);

    std::vector<sim::packet> out;
    for (int i = 0; i < k + m; ++i) {
      sim::sigma_ctrl hdr;
      hdr.session_id = 5;
      hdr.emitted_slot = slot;
      hdr.target_slot = slot + key_lead_slots;
      hdr.slot_duration = sim::milliseconds(250);
      hdr.shard_index = i;
      hdr.data_shards = k;
      hdr.total_shards = k + m;
      hdr.payload_size = payload.size();
      hdr.shard_bytes = codeword[static_cast<std::size_t>(i)];
      sim::packet p;
      p.size_bytes = 40 + static_cast<int>(hdr.shard_bytes.size());
      p.dst = sim::dest::to_group(groups.front());
      p.router_alert = true;
      p.hdr = std::move(hdr);
      out.push_back(std::move(p));
    }
    return out;
  }

  void feed(const sim::packet& p) { sigma->handle_packet(p, nullptr); }

  sim::scheduler sched;
  sim::network net;
  sim::node_id router, host, src;
  std::unique_ptr<mcast::igmp_agent> igmp;
  std::unique_ptr<sigma_router_agent> sigma;
};

TEST(sigma_fec, decodes_from_data_shards_only) {
  fec_harness h;
  delta_layered_sender delta(5, 4, 16, 1);
  auto shards = h.make_shards(delta, 0, 4, 4);
  for (int i = 0; i < 4; ++i) h.feed(shards[static_cast<std::size_t>(i)]);
  EXPECT_EQ(h.sigma->stats().blocks_decoded, 1u);
}

TEST(sigma_fec, decodes_from_parity_heavy_subset) {
  fec_harness h;
  delta_layered_sender delta(5, 4, 16, 2);
  auto shards = h.make_shards(delta, 0, 4, 4);
  // Lose all four data shards; feed the four parity shards.
  for (int i = 4; i < 8; ++i) h.feed(shards[static_cast<std::size_t>(i)]);
  EXPECT_EQ(h.sigma->stats().blocks_decoded, 1u);
}

TEST(sigma_fec, insufficient_shards_do_not_decode) {
  fec_harness h;
  delta_layered_sender delta(5, 4, 16, 3);
  auto shards = h.make_shards(delta, 0, 4, 4);
  for (int i = 0; i < 3; ++i) h.feed(shards[static_cast<std::size_t>(i)]);
  EXPECT_EQ(h.sigma->stats().blocks_decoded, 0u);
  // The fourth shard completes it.
  h.feed(shards[5]);
  EXPECT_EQ(h.sigma->stats().blocks_decoded, 1u);
}

TEST(sigma_fec, duplicate_shards_do_not_fool_the_decoder) {
  fec_harness h;
  delta_layered_sender delta(5, 4, 16, 4);
  auto shards = h.make_shards(delta, 0, 4, 4);
  for (int i = 0; i < 3; ++i) {
    h.feed(shards[0]);  // same shard over and over
  }
  h.feed(shards[1]);
  h.feed(shards[2]);
  EXPECT_EQ(h.sigma->stats().blocks_decoded, 0u);
  h.feed(shards[3]);
  EXPECT_EQ(h.sigma->stats().blocks_decoded, 1u);
}

TEST(sigma_fec, reversed_arrival_order_is_fine) {
  fec_harness h;
  delta_layered_sender delta(5, 4, 16, 5);
  auto shards = h.make_shards(delta, 0, 4, 4);
  for (int i = 7; i >= 2; --i) h.feed(shards[static_cast<std::size_t>(i)]);
  EXPECT_EQ(h.sigma->stats().blocks_decoded, 1u);
}

TEST(sigma_fec, parked_subscription_validates_after_late_decode) {
  fec_harness h;
  delta_layered_sender delta(5, 4, 16, 6);
  auto shards = h.make_shards(delta, 0, 4, 4);
  const delta_slot_keys* keys = delta.keys_for(key_lead_slots);

  // Subscription arrives before any ctrl shard.
  sim::link* iface = h.net.next_hop(h.router, h.host);
  sim::sigma_subscribe sub;
  sub.session_id = 5;
  sub.slot = key_lead_slots;
  sub.pairs = {{sim::group_addr{901}, keys->top[1]}};
  sub.msg_id = 77;
  sim::packet p;
  p.size_bytes = 40;
  p.src = h.host;
  p.dst = sim::dest::to_node(h.router);
  p.hdr = sub;
  h.sigma->handle_packet(p, iface->reverse());
  EXPECT_EQ(h.sigma->stats().pending_subscriptions, 1u);
  EXPECT_EQ(h.sigma->stats().valid_keys, 0u);

  // Ctrl shards arrive; the parked subscription must be granted.
  for (int i = 0; i < 4; ++i) h.feed(shards[static_cast<std::size_t>(i)]);
  EXPECT_EQ(h.sigma->stats().valid_keys, 1u);
  EXPECT_TRUE(h.net.get(h.router)->has_oif(sim::group_addr{901}, iface));
}

TEST(sigma_fec, parked_subscription_with_bad_key_is_rejected_after_decode) {
  fec_harness h;
  delta_layered_sender delta(5, 4, 16, 7);
  auto shards = h.make_shards(delta, 0, 4, 4);

  sim::link* iface = h.net.next_hop(h.router, h.host);
  sim::sigma_subscribe sub;
  sub.session_id = 5;
  sub.slot = key_lead_slots;
  sub.pairs = {{sim::group_addr{901}, crypto::group_key{0xBAD}}};
  sub.msg_id = 78;
  sim::packet p;
  p.size_bytes = 40;
  p.src = h.host;
  p.dst = sim::dest::to_node(h.router);
  p.hdr = sub;
  h.sigma->handle_packet(p, iface->reverse());
  for (int i = 0; i < 4; ++i) h.feed(shards[static_cast<std::size_t>(i)]);
  EXPECT_EQ(h.sigma->stats().invalid_keys, 1u);
  EXPECT_FALSE(h.net.get(h.router)->has_oif(sim::group_addr{901}, iface));
}

}  // namespace
}  // namespace mcc::core
