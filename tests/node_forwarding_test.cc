// Router forwarding edge cases: reverse-path suppression, no-route
// accounting, policy deny/mutate semantics, and multi-branch fanout.
#include <gtest/gtest.h>

#include "test_util.h"

namespace mcc::sim {
namespace {

using mcc::testing::capture_agent;
using mcc::testing::make_packet;

TEST(node_forwarding, multicast_never_echoes_to_arrival_link) {
  // src -- r -- dst, with r grafted on BOTH its interfaces for the group.
  scheduler s;
  network net(s);
  const auto src = net.add_host("src");
  const auto r = net.add_router("r");
  const auto dst = net.add_host("dst");
  net.connect(src, r, link_config{});
  net.connect(r, dst, link_config{});
  net.finalize_routing();
  const group_addr g{100};
  net.register_group_source(g, src);
  // Graft even the interface pointing back at the source.
  net.get(r)->graft(g, net.next_hop(r, src));
  net.get(r)->graft(g, net.next_hop(r, dst));
  net.get(dst)->host_join(g);
  net.get(src)->host_join(g);
  capture_agent at_src(net, src);
  capture_agent at_dst(net, dst);

  packet p;
  p.size_bytes = 100;
  p.dst = dest::to_group(g);
  net.get(src)->send(std::move(p));
  s.run();
  EXPECT_EQ(at_dst.packets.size(), 1u);
  EXPECT_TRUE(at_src.packets.empty());  // no echo back toward the source
}

TEST(node_forwarding, unicast_without_route_counts_no_route) {
  scheduler s;
  network net(s);
  const auto a = net.add_host("a");
  const auto r = net.add_router("r");
  const auto island = net.add_host("island");  // not connected to anything
  net.connect(a, r, link_config{});
  net.finalize_routing();
  // The host itself refuses to originate toward an unreachable node...
  EXPECT_THROW(net.get(a)->send(make_packet(50, island)),
               util::invariant_error);
  // ...and a router receiving such a packet drops it and counts no_route.
  net.get(r)->receive(make_packet(50, island), nullptr);
  EXPECT_EQ(net.get(r)->stats().no_route, 1u);
}

TEST(node_forwarding, policy_can_mutate_the_branch_copy_only) {
  // Policy scrubs for one host; the other host's copy is untouched.
  scheduler s;
  network net(s);
  const auto src = net.add_host("src");
  const auto r = net.add_router("r");
  const auto ha = net.add_host("a");
  const auto hb = net.add_host("b");
  net.connect(src, r, link_config{});
  net.connect(r, ha, link_config{});
  net.connect(r, hb, link_config{});
  net.finalize_routing();
  const group_addr g{200};
  net.register_group_source(g, src);
  link* oif_a = net.next_hop(r, ha);
  net.get(r)->graft(g, oif_a);
  net.get(r)->graft(g, net.next_hop(r, hb));
  net.get(ha)->host_join(g);
  net.get(hb)->host_join(g);

  struct scrub_for_a : access_policy {
    explicit scrub_for_a(link* a) : a_(a) {}
    bool allow(packet& p, link* oif) override {
      if (oif == a_) {
        if (auto* hdr = header_as<flid_data>(p)) hdr->component_scrubbed = true;
      }
      return true;
    }
    link* a_;
  } policy(oif_a);
  net.get(r)->set_access_policy(&policy);

  capture_agent at_a(net, ha);
  capture_agent at_b(net, hb);
  packet p;
  p.size_bytes = 100;
  p.dst = dest::to_group(g);
  p.hdr = flid_data{};
  net.get(src)->send(std::move(p));
  s.run();
  ASSERT_EQ(at_a.packets.size(), 1u);
  ASSERT_EQ(at_b.packets.size(), 1u);
  EXPECT_TRUE(header_as<flid_data>(at_a.packets[0])->component_scrubbed);
  EXPECT_FALSE(header_as<flid_data>(at_b.packets[0])->component_scrubbed);
}

TEST(node_forwarding, policy_denial_is_counted_and_scoped) {
  scheduler s;
  network net(s);
  const auto src = net.add_host("src");
  const auto r = net.add_router("r");
  const auto ha = net.add_host("a");
  const auto hb = net.add_host("b");
  net.connect(src, r, link_config{});
  net.connect(r, ha, link_config{});
  net.connect(r, hb, link_config{});
  net.finalize_routing();
  const group_addr g{300};
  net.register_group_source(g, src);
  link* oif_a = net.next_hop(r, ha);
  net.get(r)->graft(g, oif_a);
  net.get(r)->graft(g, net.next_hop(r, hb));
  net.get(ha)->host_join(g);
  net.get(hb)->host_join(g);

  struct deny_a : access_policy {
    explicit deny_a(link* a) : a_(a) {}
    bool allow(packet&, link* oif) override { return oif != a_; }
    link* a_;
  } policy(oif_a);
  net.get(r)->set_access_policy(&policy);

  capture_agent at_a(net, ha);
  capture_agent at_b(net, hb);
  for (int i = 0; i < 5; ++i) {
    packet p;
    p.size_bytes = 100;
    p.dst = dest::to_group(g);
    net.get(src)->send(std::move(p));
  }
  s.run();
  EXPECT_TRUE(at_a.packets.empty());
  EXPECT_EQ(at_b.packets.size(), 5u);
  EXPECT_EQ(net.get(r)->stats().policy_denied, 5u);
}

TEST(node_forwarding, policy_not_consulted_for_router_facing_branches) {
  // src -- r1 -- r2 -- dst: a deny-everything policy on r1 must not block
  // the r1 -> r2 branch (policies guard host-facing interfaces only).
  scheduler s;
  network net(s);
  const auto src = net.add_host("src");
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  const auto dst = net.add_host("dst");
  net.connect(src, r1, link_config{});
  net.connect(r1, r2, link_config{});
  net.connect(r2, dst, link_config{});
  net.finalize_routing();
  const group_addr g{400};
  net.register_group_source(g, src);
  net.get(r1)->graft(g, net.next_hop(r1, dst));
  net.get(r2)->graft(g, net.next_hop(r2, dst));
  net.get(dst)->host_join(g);

  struct deny_all : access_policy {
    bool allow(packet&, link*) override { return false; }
  } policy;
  net.get(r1)->set_access_policy(&policy);

  capture_agent sink(net, dst);
  packet p;
  p.size_bytes = 100;
  p.dst = dest::to_group(g);
  net.get(src)->send(std::move(p));
  s.run();
  // r1 forwarded to r2 despite its policy; r2 (no policy) delivered.
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(node_forwarding, self_addressed_unicast_delivers_to_router_agents) {
  scheduler s;
  network net(s);
  const auto h = net.add_host("h");
  const auto r = net.add_router("r");
  net.connect(h, r, link_config{});
  net.finalize_routing();
  capture_agent mgmt(net, r);
  net.get(h)->send(make_packet(40, r));
  s.run();
  EXPECT_EQ(mgmt.packets.size(), 1u);
  EXPECT_EQ(net.get(r)->stats().delivered_local, 1u);
}

}  // namespace
}  // namespace mcc::sim
