// DELTA ECN variant (paper section 3.1.2, "Congestion notification"):
// with an ECN-marking bottleneck, the edge router scrubs the component
// fields of marked packets so ineligible receivers cannot reconstruct group
// keys from them, and honest receivers treat marks as congestion.
#include <gtest/gtest.h>

#include "exp/testbed.h"

namespace mcc::core {
namespace {

using exp::dumbbell;
using exp::testbed;
using exp::dumbbell_config;
using exp::flid_mode;
using exp::receiver_options;

/// Dumbbell with an ECN-threshold bottleneck queue.
std::unique_ptr<testbed> make_ecn_dumbbell(double bps, std::uint64_t seed) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = bps;
  cfg.seed = seed;
  auto d = std::make_unique<testbed>(dumbbell(cfg));
  // Rebuilding the link config is not exposed; instead we exercise the
  // marking path through a dedicated topology below. This helper keeps the
  // droptail default for comparison runs.
  return d;
}

TEST(ecn, marked_packets_are_scrubbed_at_the_edge) {
  // Build a small topology with an ECN bottleneck directly.
  sim::scheduler sched;
  sim::network net(sched);
  const auto src = net.add_host("src");
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  const auto dst = net.add_host("dst");
  sim::link_config fat;
  fat.bps = 10e6;
  fat.delay = sim::milliseconds(10);
  sim::link_config thin;
  thin.bps = 300e3;  // below the session's demand once it climbs
  thin.delay = sim::milliseconds(20);
  thin.aqm.discipline = sim::qdisc::ecn_threshold;
  thin.aqm.ecn_threshold_fraction = 0.3;
  net.connect(src, r1, fat);
  net.connect(r1, r2, thin);
  net.connect(r2, dst, fat);
  net.finalize_routing();

  mcast::igmp_agent igmp(net, r2);
  sigma_router_agent sigma(net, r2, igmp);
  sigma.set_ecn_scrub(true);

  flid::flid_config fc;
  fc.session_id = 3;
  fc.group_addr_base = 7000;
  fc.slot_duration = sim::milliseconds(250);
  flid::flid_sender sender(net, src, fc, 5);
  auto ds = make_flid_ds_sender(net, src, sender, 6);
  sender.start(0);

  flid::flid_receiver receiver(net, dst, r2, fc,
                               std::make_unique<honest_sigma_strategy>());
  receiver.start(0);
  sched.run_until(sim::seconds(60.0));

  // The queue marked packets, and the receiver saw congestion signals
  // without necessarily losing packets.
  sim::link* bottleneck = net.next_hop(r1, dst);
  EXPECT_GT(bottleneck->stats().ecn_marked, 0u);
  EXPECT_GT(receiver.stats().slots_congested, 0u);
  // The receiver stabilizes around the ECN-constrained level instead of
  // climbing to the top.
  EXPECT_LT(receiver.level(), fc.num_groups);
  EXPECT_GE(receiver.level(), 1);
  // Goodput near the bottleneck rate: ECN avoided heavy loss.
  const double kbps = receiver.monitor().average_kbps(sim::seconds(20.0),
                                                      sim::seconds(60.0));
  EXPECT_GT(kbps, 120.0);
  EXPECT_LT(kbps, 330.0);
}

TEST(ecn, scrubbed_components_invalidate_key_reconstruction) {
  // Unit-level: a summary whose top group has a scrubbed component cannot
  // produce that group's key, even with zero losses.
  delta_layered_sender sender(1, 4, 64, 9);
  delta_layered_receiver receiver(4);
  std::vector<int> counts = {0, 4, 4, 4, 4};
  sender.begin_slot(0, 0, counts);

  flid::slot_summary s;
  s.slot = 0;
  s.level = 3;
  s.groups.assign(5, {});
  for (int g = 1; g <= 4; ++g) {
    auto& rec = s.groups[static_cast<std::size_t>(g)];
    rec.full_slot = (g <= 3);
    for (int i = 0; i < 4; ++i) {
      sim::flid_data hdr;
      sender.fill_fields(0, g, i, i == 3, hdr);
      ++rec.received;
      rec.expected = 4;
      if (g == 3 && i == 1) {
        // This component was scrubbed by the router (ECN mark).
        rec.scrubbed = true;
        continue;
      }
      rec.xor_components ^= hdr.component;
      if (g >= 2) rec.decrease = hdr.decrease;
    }
  }
  s.congested = true;  // scrub is a congestion signal
  const auto rec = receiver.reconstruct(s);
  EXPECT_EQ(rec.next_level, 2);
  const delta_slot_keys* keys = sender.keys_for(key_lead_slots);
  for (const auto& [g, key] : rec.keys) {
    EXPECT_NE(key, keys->top[3]);
    EXPECT_LE(g, 2);
  }
}

TEST(ecn, droptail_comparison_run_does_not_mark) {
  auto d = make_ecn_dumbbell(1e6, 3);
  d->add_flid_session(flid_mode::ds, {receiver_options{}});
  d->run_until(sim::seconds(20.0));
  EXPECT_EQ(d->bottleneck()->stats().ecn_marked, 0u);
}

}  // namespace
}  // namespace mcc::core
