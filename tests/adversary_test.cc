// Adversary subsystem: profile/flag plumbing, the collusion key pool,
// containment-report math on synthetic series, behavioural checks for every
// strategy, the legacy-shim equivalence guarantee, and bit-determinism of
// attack-matrix rows across sweep --jobs counts.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/containment.h"
#include "exp/sweep.h"
#include "exp/testbed.h"

namespace mcc::adversary {
namespace {

TEST(adversary_names, strategy_names_round_trip) {
  for (const strategy_kind k :
       {strategy_kind::honest, strategy_kind::inflate_once,
        strategy_kind::pulse_inflate, strategy_kind::churn_flap,
        strategy_kind::deaf_receiver, strategy_kind::collusion,
        strategy_kind::adaptive_pulse, strategy_kind::adaptive_churn}) {
    const auto back = strategy_from_name(strategy_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(strategy_from_name("inflate").has_value());
  EXPECT_FALSE(strategy_from_name("").has_value());
  // all_attacks excludes honest.
  for (const strategy_kind k : all_attacks()) {
    EXPECT_NE(k, strategy_kind::honest);
  }
  EXPECT_EQ(all_attacks().size(), 7u);
}

TEST(adversary_names, key_mode_names_round_trip) {
  for (const key_mode m :
       {key_mode::best_effort, key_mode::replay, key_mode::guess}) {
    const auto back = key_mode_from_name(key_mode_name(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(key_mode_from_name("random").has_value());
}

TEST(adversary_profiles, factories_fill_their_fields) {
  const profile p = pulse_inflate(sim::seconds(7.0), sim::seconds(2.0),
                                  sim::seconds(3.0), key_mode::replay);
  EXPECT_EQ(p.kind, strategy_kind::pulse_inflate);
  EXPECT_EQ(p.start, sim::seconds(7.0));
  EXPECT_EQ(p.pulse_on, sim::seconds(2.0));
  EXPECT_EQ(p.pulse_off, sim::seconds(3.0));
  EXPECT_EQ(p.keys, key_mode::replay);
  EXPECT_TRUE(p.attacks());
  EXPECT_FALSE(honest().attacks());

  const profile c = collusion(sim::seconds(1.0), 3);
  EXPECT_EQ(c.kind, strategy_kind::collusion);
  EXPECT_EQ(c.coalition, 3);
  EXPECT_EQ(c.keys, key_mode::best_effort);

  const profile f = churn_flap(sim::seconds(2.0), 4, 6);
  EXPECT_EQ(f.flap_period_slots, 4);
  EXPECT_EQ(f.flap_depth, 6);

  const profile a = adaptive_pulse(sim::seconds(3.0), sim::seconds(8.0),
                                   key_mode::best_effort);
  EXPECT_EQ(a.kind, strategy_kind::adaptive_pulse);
  EXPECT_EQ(a.start, sim::seconds(3.0));
  EXPECT_EQ(a.pulse_on, sim::seconds(8.0));
  EXPECT_EQ(a.keys, key_mode::best_effort);

  const profile g = adaptive_churn(sim::seconds(4.0));
  EXPECT_EQ(g.kind, strategy_kind::adaptive_churn);
  EXPECT_EQ(g.start, sim::seconds(4.0));
  EXPECT_TRUE(g.attacks());
}

TEST(adversary_shim, legacy_inflate_fields_translate_to_inflate_once) {
  exp::receiver_options legacy;
  legacy.inflate = true;
  legacy.inflate_at = sim::seconds(5.0);
  legacy.inflate_level = 4;
  legacy.attack_keys = key_mode::replay;
  const profile p = legacy.effective_profile();
  EXPECT_EQ(p.kind, strategy_kind::inflate_once);
  EXPECT_EQ(p.start, sim::seconds(5.0));
  EXPECT_EQ(p.inflate_level, 4);
  EXPECT_EQ(p.keys, key_mode::replay);

  // Honest by default.
  EXPECT_EQ(exp::receiver_options{}.effective_profile().kind,
            strategy_kind::honest);

  // Setting both the shim and a profile is ambiguous and rejected.
  legacy.attack = deaf_receiver(sim::seconds(1.0));
  EXPECT_THROW((void)legacy.effective_profile(), util::invariant_error);
}

TEST(adversary_shim, legacy_and_profile_worlds_are_bit_identical) {
  // The inflate_once port must reproduce the legacy attacker exactly —
  // same strategy class, same seed-chain position — in both protocol
  // worlds.
  const auto run = [](exp::flid_mode mode, bool legacy) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 1e6;
    cfg.seed = 11;
    exp::testbed d(exp::dumbbell(cfg));
    exp::receiver_options attacker;
    if (legacy) {
      attacker.inflate = true;
      attacker.inflate_at = sim::seconds(20.0);
      attacker.attack_keys = key_mode::guess;
    } else {
      attacker.attack = inflate_once(sim::seconds(20.0), key_mode::guess);
    }
    auto& rogue = d.add_flid_session(mode, {attacker});
    auto& honest = d.add_flid_session(mode, {exp::receiver_options{}});
    d.run_until(sim::seconds(60.0));
    std::ostringstream sig;
    sig << rogue.receiver().monitor().total_bytes() << '/'
        << honest.receiver().monitor().total_bytes();
    for (const auto& [t, lvl] : rogue.receiver().level_history()) {
      sig << ' ' << t << ':' << lvl;
    }
    return sig.str();
  };
  EXPECT_EQ(run(exp::flid_mode::dl, true), run(exp::flid_mode::dl, false));
  EXPECT_EQ(run(exp::flid_mode::ds, true), run(exp::flid_mode::ds, false));
}

TEST(collusion_coordinator_pool, deposit_lookup_and_pruning) {
  collusion_coordinator pool;
  const crypto::group_key k1{0xabcd};
  pool.deposit(10, 3, k1);
  const crypto::group_key* hit = pool.lookup(10, 3);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, k1);
  EXPECT_EQ(pool.lookup(10, 4), nullptr);
  EXPECT_EQ(pool.lookup(11, 3), nullptr);
  // A deposit far in the future prunes stale slots.
  pool.deposit(100, 1, k1);
  EXPECT_EQ(pool.lookup(10, 3), nullptr);
  EXPECT_EQ(pool.stats().deposits, 2u);
  EXPECT_EQ(pool.stats().lookups, 4u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(collusion_coordinator_pool, interface_scopes_partition_the_pool) {
  // Under interface keying every deposit is tagged with the interface it is
  // valid at; a lookup from any other interface must miss — this is the
  // mechanism that drives pool hits to zero when the countermeasure is on.
  collusion_coordinator pool;
  const crypto::group_key k5{0x1111};
  const crypto::group_key k6{0x2222};
  pool.deposit(10, 3, k5, 5);
  pool.deposit(10, 3, k6, 6);
  const crypto::group_key* own = pool.lookup(10, 3, 5);
  ASSERT_NE(own, nullptr);
  EXPECT_EQ(*own, k5);
  const crypto::group_key* other = pool.lookup(10, 3, 6);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(*other, k6);
  // Foreign and universal scopes see nothing.
  EXPECT_EQ(pool.lookup(10, 3, 7), nullptr);
  EXPECT_EQ(pool.lookup(10, 3), nullptr);
  EXPECT_EQ(pool.stats().hits, 2u);
  EXPECT_EQ(pool.stats().lookups, 4u);
}

TEST(containment_metrics, synthetic_series_yields_exact_report) {
  // Honest flow: steady 100 Kbps. Attacker: 100 Kbps until t=10s, 1000 Kbps
  // over [10, 30), then back to 100 Kbps. All values land on 1-second bins.
  sim::scheduler sched;
  sim::throughput_monitor attacker(sched);
  sim::throughput_monitor honest(sched);
  for (int t = 0; t < 60; ++t) {
    const std::int64_t atk = (t >= 10 && t < 30) ? 125'000 : 12'500;
    sched.at(sim::seconds(static_cast<double>(t)) + 1, [&, atk] {
      honest.on_bytes(12'500);
      attacker.on_bytes(atk);
    });
  }
  sched.run();

  containment_config cfg;
  cfg.attack_start = sim::seconds(10.0);
  cfg.horizon = sim::seconds(60.0);
  cfg.settle = sim::seconds(10.0);
  cfg.pre = sim::seconds(10.0);
  cfg.bin = sim::seconds(1.0);
  cfg.smooth = sim::seconds(1.0);
  cfg.bound_factor = 1.6;
  cfg.floor_kbps = 50.0;
  const containment_report rep =
      measure_containment(attacker, {&honest}, cfg);

  // After window [20, 60): attacker carried 10 s at 1000 and 30 s at 100.
  EXPECT_NEAR(rep.attacker_kbps, (10.0 * 1000.0 + 30.0 * 100.0) / 40.0, 1e-9);
  EXPECT_NEAR(rep.honest_kbps, 100.0, 1e-9);
  EXPECT_NEAR(rep.attacker_share, 325.0 / 425.0, 1e-9);
  EXPECT_NEAR(rep.honest_before_kbps, 100.0, 1e-9);
  EXPECT_NEAR(rep.honest_damage, 0.0, 1e-9);
  EXPECT_NEAR(rep.containment_bound_kbps, 160.0, 1e-9);
  // The last offending bin ends at t=30s; the attack started at 10s.
  EXPECT_TRUE(rep.contained);
  EXPECT_NEAR(rep.time_to_containment_s, 20.0, 1e-9);
}

TEST(containment_metrics, attacker_above_bound_at_horizon_is_uncontained) {
  sim::scheduler sched;
  sim::throughput_monitor attacker(sched);
  sim::throughput_monitor honest(sched);
  for (int t = 0; t < 40; ++t) {
    const std::int64_t atk = t >= 10 ? 125'000 : 12'500;
    sched.at(sim::seconds(static_cast<double>(t)) + 1, [&, atk] {
      honest.on_bytes(12'500);
      attacker.on_bytes(atk);
    });
  }
  sched.run();
  containment_config cfg;
  cfg.attack_start = sim::seconds(10.0);
  cfg.horizon = sim::seconds(40.0);
  const containment_report rep =
      measure_containment(attacker, {&honest}, cfg);
  EXPECT_FALSE(rep.contained);
  EXPECT_DOUBLE_EQ(rep.time_to_containment_s, -1.0);
  EXPECT_DOUBLE_EQ(rep.honest_damage, 0.0);  // honest flow held steady
}

TEST(adversary_behaviour, pulse_inflate_oscillates_subscription) {
  // Roomy bottleneck so the oscillation is driven by the script, not by
  // congestion: the level history must repeatedly hit the ceiling and fall
  // back to the minimal layer.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = pulse_inflate(sim::seconds(10.0), sim::seconds(4.0),
                                  sim::seconds(4.0));
  auto& session = d.add_flid_session(exp::flid_mode::dl, {attacker});
  d.run_until(sim::seconds(50.0));

  const int n = session.config.num_groups;
  int peaks = 0;
  int troughs = 0;
  bool at_peak = false;
  for (const auto& [t, lvl] : session.receiver().level_history()) {
    if (t < sim::seconds(10.0)) continue;
    if (lvl == n && !at_peak) {
      ++peaks;
      at_peak = true;
    } else if (lvl == 1 && at_peak) {
      ++troughs;
      at_peak = false;
    }
  }
  // 40 s of 4s/4s pulsing = 5 cycles; allow slack for slot rounding.
  EXPECT_GE(peaks, 3);
  EXPECT_GE(troughs, 3);
}

TEST(adversary_behaviour, capped_pulse_sheds_layers_climbed_before_onset) {
  // Honest phase on a roomy bottleneck climbs to the top; a pulse capped at
  // level 2 must LEAVE the higher groups when the attack starts, not just
  // lower its claimed level — leaked memberships would keep drawing all ten
  // groups' bandwidth forever.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = pulse_inflate(sim::seconds(20.0), sim::seconds(4.0),
                                  sim::seconds(4.0));
  attacker.attack.inflate_level = 2;
  auto& session = d.add_flid_session(exp::flid_mode::dl, {attacker});
  d.run_until(sim::seconds(60.0));
  // Cumulative level-2 rate is 150 Kbps; the pre-attack honest climb ran at
  // up to ~3.8 Mbps. Anywhere near the former means the leave really
  // happened on the wire.
  const double late = session.receiver().monitor().average_kbps(
      sim::seconds(30.0), sim::seconds(60.0));
  EXPECT_LT(late, 400.0);
  EXPECT_GT(late, 50.0);
  EXPECT_GT(d.igmp().stats().leaves, 5u);
}

TEST(adversary_behaviour, churn_flap_thrashes_graft_prune_state) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options churner;
  churner.attack = churn_flap(sim::seconds(5.0), 1, 0);
  d.add_flid_session(exp::flid_mode::dl, {churner});
  d.run_until(sim::seconds(45.0));
  // 80 slots of flapping across ~9 upper groups: the edge processed a
  // couple hundred membership changes (an honest receiver needs ~10 joins
  // for the whole run).
  EXPECT_GT(d.igmp().stats().joins, 100u);
  EXPECT_GT(d.igmp().stats().leaves, 100u);
}

TEST(adversary_behaviour, churn_flap_cycles_sigma_subscription_state) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 5;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options churner;
  churner.attack = churn_flap(sim::seconds(5.0), 1, 0);
  auto& session = d.add_flid_session(exp::flid_mode::ds, {churner});
  d.run_until(sim::seconds(45.0));
  // Down phases explicitly unsubscribe whatever the up phases climbed to;
  // climbing in DS is upgrade-authorization-limited (~0.15/slot), so the
  // cycle count is protocol-bounded — DELTA itself damps SIGMA-side churn.
  EXPECT_GT(d.sigma().stats().unsubscribes, 5u);
  EXPECT_GT(d.sigma().stats().subscribe_msgs, 50u);
  EXPECT_GT(session.receiver().monitor().total_bytes(), 0);
}

TEST(adversary_behaviour, deaf_receiver_is_contained_under_sigma) {
  // Same invariant as the containment matrix, for the deaf shape: never
  // dropping layers must not hold more than the contested fair share.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 7;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options deaf;
  deaf.attack = deaf_receiver(sim::seconds(30.0));
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {deaf});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(120.0));
  const double rogue_kbps = rogue.receiver().monitor().average_kbps(
      sim::seconds(45.0), sim::seconds(120.0));
  const double honest_kbps = honest.receiver().monitor().average_kbps(
      sim::seconds(45.0), sim::seconds(120.0));
  EXPECT_LT(rogue_kbps, 750.0) << "honest " << honest_kbps;
  EXPECT_GT(honest_kbps, 100.0);
}

TEST(adversary_behaviour, colluders_share_keys_across_edges) {
  // Two colluders on different tree branches: the one on the uncontested
  // branch proves high-layer keys and feeds the pool; the contested one
  // replays them at its own edge. The honest receiver and TCP load the
  // contested branch.
  exp::tree_config cfg;
  cfg.depth = 2;
  cfg.fanout = 2;
  cfg.seed = 7;
  exp::testbed d(exp::balanced_tree(cfg));
  exp::receiver_options contested;
  contested.at = "t2_1";
  contested.attack = collusion(sim::seconds(20.0), 1);
  exp::receiver_options clean;
  clean.at = "t2_2";
  clean.attack = collusion(sim::seconds(20.0), 1);
  d.add_flid_session(exp::flid_mode::ds, {contested, clean});
  d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  d.add_tcp_flow();
  d.run_until(sim::seconds(90.0));

  const auto& pool = d.coordinator(1).stats();
  EXPECT_GT(pool.deposits, 100u);
  EXPECT_GT(pool.lookups, 0u);
  EXPECT_GT(pool.hits, 0u) << "deposits " << pool.deposits << " lookups "
                           << pool.lookups;
}

namespace {

struct keying_run {
  double attacker_kbps = 0.0;
  double ttc_s = -1.0;
  bool contained = false;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_deposits = 0;
};

/// The ISSUE-5 acceptance scenario: cross-edge collusion on the tree, with
/// the honest receiver and TCP loading the contested branch, run with the
/// countermeasure off or on (same topology, same seeds).
keying_run run_tree_collusion(bool keying) {
  exp::tree_config cfg;
  cfg.depth = 2;
  cfg.fanout = 2;
  cfg.seed = 7;
  cfg.interface_keying = keying;
  exp::testbed d(exp::balanced_tree(cfg));
  exp::receiver_options contested;
  contested.at = "t2_1";
  contested.attack = collusion(sim::seconds(20.0), 1);
  exp::receiver_options clean;
  clean.at = "t2_2";
  clean.attack = collusion(sim::seconds(20.0), 1);
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {contested, clean});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  auto& tcp = d.add_tcp_flow();
  d.run_until(sim::seconds(120.0));

  containment_config ccfg;
  ccfg.attack_start = sim::seconds(20.0);
  ccfg.horizon = sim::seconds(120.0);
  // Like the attack matrix: three parties (rogue session, honest session,
  // TCP) share the 1 Mbps contested edge, so the fair-share floor keeps the
  // bound honest even though the damaged honest flows run well below it.
  ccfg.floor_kbps = 1e6 / 1e3 / 3.0;
  const containment_report rep = measure_containment(
      rogue.receiver(0).monitor(),
      {&honest.receiver(0).monitor(), &tcp.sink->monitor()},
      {&honest.receiver(0).monitor()}, ccfg);

  keying_run out;
  out.attacker_kbps = rep.attacker_kbps;
  out.ttc_s = rep.time_to_containment_s;
  out.contained = rep.contained;
  out.pool_hits = d.coordinator(1).stats().hits;
  out.pool_deposits = d.coordinator(1).stats().deposits;
  return out;
}

}  // namespace

TEST(interface_keying, closes_cross_edge_collusion_on_the_tree) {
  const keying_run off = run_tree_collusion(false);
  const keying_run on = run_tree_collusion(true);

  // Without the countermeasure the clean-branch colluder's keys open the
  // contested edge: the pool serves hits and the contested colluder holds
  // layers its own congestion state never earned.
  EXPECT_GT(off.pool_hits, 0u);

  // With keying, deposits still happen (each colluder banks its own
  // interface's key images) but no query is ever answered across
  // interfaces: the section-4.2 channel is closed.
  EXPECT_GT(on.pool_deposits, 0u);
  EXPECT_EQ(on.pool_hits, 0u);

  // And the contested colluder is reined in strictly faster (an uncontained
  // keying-off run counts as slower than any contained time).
  ASSERT_TRUE(on.contained);
  if (off.contained) {
    EXPECT_LT(on.ttc_s, off.ttc_s);
  }
  EXPECT_LT(on.attacker_kbps, off.attacker_kbps);
}

TEST(interface_keying, honest_and_entitled_attacker_keys_still_validate) {
  // Scenario-wide keying must stay invisible to receivers playing the
  // protocol correctly for their entitlement: the honest receiver climbs,
  // and a guessing attacker still proves its *earned* prefix (valid keys at
  // the edge) while its guesses fail exactly as before.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 7;
  cfg.interface_keying = true;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = inflate_once(sim::seconds(30.0), key_mode::guess);
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(90.0));

  EXPECT_TRUE(d.sigma().interface_keying());
  EXPECT_GT(d.sigma().stats().valid_keys, 0u);
  EXPECT_GT(d.sigma().stats().invalid_keys, 0u);  // the guesses
  EXPECT_GT(honest.receiver().level(), 1);
  EXPECT_GT(honest.receiver().monitor().total_bytes(), 0);
  // The attacker holds no more than the contested fair share.
  const double rogue_kbps = rogue.receiver().monitor().average_kbps(
      sim::seconds(45.0), sim::seconds(90.0));
  EXPECT_LT(rogue_kbps, 750.0);
}

TEST(adversary_behaviour, adaptive_pulse_cycles_with_the_enforcement_lag) {
  // The adaptive pulse must actually close the loop: attack phases (claimed
  // level = all groups) alternating with honest recovery phases (lower
  // levels), driven by observed claw-backs rather than a wall-clock script.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 7;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = adaptive_pulse(sim::seconds(30.0), sim::seconds(5.0));
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(120.0));

  const int n = rogue.config.num_groups;
  int on_phases = 0;
  int off_phases = 0;
  bool at_peak = false;
  for (const auto& [t, lvl] : rogue.receiver().level_history()) {
    if (t < sim::seconds(30.0)) continue;
    if (lvl == n && !at_peak) {
      ++on_phases;
      at_peak = true;
    } else if (lvl < n && at_peak) {
      ++off_phases;
      at_peak = false;
    }
  }
  EXPECT_GE(on_phases, 3) << "adaptive pulse never cycled";
  EXPECT_GE(off_phases, 3);
  // Recovery phases re-prove keys (valid submissions at the edge), attack
  // phases guess (invalid ones).
  EXPECT_GT(d.sigma().stats().valid_keys, 0u);
  EXPECT_GT(d.sigma().stats().invalid_keys, 0u);
  // And the protocol still holds it near the fair share.
  const double rogue_kbps = rogue.receiver().monitor().average_kbps(
      sim::seconds(45.0), sim::seconds(120.0));
  const double honest_kbps = honest.receiver().monitor().average_kbps(
      sim::seconds(45.0), sim::seconds(120.0));
  EXPECT_LT(rogue_kbps, 750.0) << "honest " << honest_kbps;
  EXPECT_GT(honest_kbps, 100.0);
}

TEST(adversary_behaviour, adaptive_churn_rides_grace_without_ever_proving_keys) {
  // The grace free-rider: only keyless session-joins, no subscribe messages
  // with keys, yet data keeps arriving through repeated two-slot grace
  // windows (the unsubscribe wipes the pending probation each cycle).
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 5;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options churner;
  churner.attack = adaptive_churn(0);
  auto& session = d.add_flid_session(exp::flid_mode::ds, {churner});
  d.run_until(sim::seconds(45.0));

  const auto& sg = d.sigma().stats();
  EXPECT_EQ(sg.valid_keys, 0u);
  EXPECT_EQ(sg.invalid_keys, 0u);
  EXPECT_GT(sg.session_joins, 10u);
  EXPECT_GT(sg.unsubscribes, 10u);
  EXPECT_GT(sg.grace_forwards, 50u);
  // Free bytes: the minimal group flows during every grace window.
  EXPECT_GT(session.receiver().monitor().total_bytes(), 100'000);
  // But never more than the minimal group: the payoff is bounded.
  const double kbps = session.receiver().monitor().average_kbps(
      sim::seconds(10.0), sim::seconds(45.0));
  EXPECT_LT(kbps, 150.0);
  EXPECT_GT(kbps, 20.0);
}

TEST(adversary_behaviour, competing_coalitions_have_isolated_pools) {
  // Two coalitions in one session on the tree: each colluding pair shares
  // its own coordinator, and each coalition's containment/cost is
  // measurable per receiver. Coalition 1 contests the honest branch
  // (t2_1 + clean partner t2_2); coalition 2 contests it from the honest
  // receiver's own leaf (t2_0 + clean partner t2_3).
  exp::tree_config cfg;
  cfg.depth = 2;
  cfg.fanout = 2;
  cfg.seed = 7;
  exp::testbed d(exp::balanced_tree(cfg));
  const auto member = [](const std::string& at, int coalition) {
    exp::receiver_options o;
    o.at = at;
    o.attack = collusion(sim::seconds(20.0), coalition);
    return o;
  };
  auto& rogue = d.add_flid_session(
      exp::flid_mode::ds, {member("t2_1", 1), member("t2_2", 1),
                           member("t2_0", 2), member("t2_3", 2)});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  auto& tcp = d.add_tcp_flow();
  d.run_until(sim::seconds(90.0));

  // Distinct pools, both active, with independent counters.
  const auto& p1 = d.coordinator(1).stats();
  const auto& p2 = d.coordinator(2).stats();
  EXPECT_NE(&d.coordinator(1), &d.coordinator(2));
  EXPECT_GT(p1.deposits, 100u);
  EXPECT_GT(p2.deposits, 100u);
  EXPECT_GT(p1.hits, 0u);
  EXPECT_GT(p2.hits, 0u);
  // Pool isolation: every query is answered from the coalition's own pool,
  // so the sum of per-pool hits can never exceed per-pool lookups (a shared
  // pool would show cross-coalition hits inflating one side).
  EXPECT_LE(p1.hits, p1.lookups);
  EXPECT_LE(p2.hits, p2.lookups);

  // Per-coalition containment + cost rows: the contested member of each
  // coalition gets its own report with its own spend attached.
  containment_config ccfg;
  ccfg.attack_start = sim::seconds(20.0);
  ccfg.horizon = sim::seconds(90.0);
  const std::vector<const sim::throughput_monitor*> honest_monitors = {
      &honest.receiver(0).monitor(), &tcp.sink->monitor()};
  const std::vector<const sim::throughput_monitor*> reference = {
      &honest.receiver(0).monitor()};
  for (const int contested : {0, 2}) {
    containment_report rep = measure_containment(
        rogue.receiver(contested).monitor(), honest_monitors, reference,
        ccfg);
    attach_cost(rep, measure_cost(rogue.receiver(contested)));
    EXPECT_GT(rep.attacker_kbps, 0.0) << "coalition member " << contested;
    EXPECT_GT(rep.cost.ctrl_msgs, 0u) << "coalition member " << contested;
    EXPECT_GT(rep.profit_kbps_per_msg, 0.0);
  }
}

TEST(attacker_cost, sigma_guessing_attacker_reports_its_spend) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 7;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = inflate_once(sim::seconds(20.0), key_mode::guess);
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(60.0));

  const attacker_cost cost = measure_cost(rogue.receiver());
  EXPECT_GT(cost.ctrl_msgs, 50u);
  EXPECT_GT(cost.useless_keys, 1000u);  // 8 guesses per unproven group/slot
  // An honest receiver subscribes every slot too (similar message count),
  // but its spend is entirely key-free: useless_keys is what separates an
  // attacker's control plane from an honest one.
  const attacker_cost honest_cost = measure_cost(honest.receiver());
  EXPECT_EQ(honest_cost.useless_keys, 0u);
  EXPECT_GT(honest_cost.ctrl_msgs, 0u);
}

TEST(attacker_cost, plain_world_cost_is_the_igmp_message_count) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options churner;
  churner.attack = churn_flap(sim::seconds(5.0), 1, 0);
  auto& session = d.add_flid_session(exp::flid_mode::dl, {churner});
  d.run_until(sim::seconds(45.0));

  const attacker_cost cost = measure_cost(session.receiver());
  const auto& m = session.receiver().membership().stats();
  EXPECT_EQ(cost.ctrl_msgs, m.joins + m.leaves);
  EXPECT_GT(cost.ctrl_msgs, 200u);  // the flap thrashes membership
  EXPECT_EQ(cost.useless_keys, 0u);  // no keys exist in the plain world
  EXPECT_EQ(cost.cutoff_slots, 0u);  // the router honours every join
}

TEST(attacker_cost, attach_cost_derives_profit_exactly) {
  containment_report rep;
  rep.attacker_kbps = 500.0;
  attacker_cost cost;
  cost.ctrl_msgs = 250;
  cost.useless_keys = 7;
  cost.cutoff_slots = 3;
  attach_cost(rep, cost);
  EXPECT_DOUBLE_EQ(rep.profit_kbps_per_msg, 2.0);
  EXPECT_EQ(rep.cost.useless_keys, 7u);
  EXPECT_EQ(rep.cost.cutoff_slots, 3u);
  // Zero messages must not divide by zero: profit is the raw goodput.
  containment_report free_rep;
  free_rep.attacker_kbps = 100.0;
  attach_cost(free_rep, attacker_cost{});
  EXPECT_DOUBLE_EQ(free_rep.profit_kbps_per_msg, 100.0);
}

TEST(adversary_determinism, attack_matrix_rows_bit_identical_across_jobs) {
  // One row per strategy on a short dumbbell scenario; --jobs 4 must
  // serialize byte-for-byte like --jobs 1 (same contract as every bench).
  const auto matrix = [](int jobs) {
    const std::vector<strategy_kind>& kinds = all_attacks();
    std::vector<double> xs(kinds.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = static_cast<double>(i);
    }
    exp::sweep_options opts;
    opts.jobs = jobs;
    opts.base_seed = 17;
    const auto rows =
        exp::run_sweep(xs, opts, [&](const exp::sweep_point& pt) {
          exp::dumbbell_config cfg;
          cfg.bottleneck_bps = 1e6;
          cfg.seed = pt.seed;
          exp::testbed d(exp::dumbbell(cfg));
          profile p;
          p.kind = kinds[pt.index];
          p.start = sim::seconds(10.0);
          p.pulse_on = sim::seconds(3.0);
          p.pulse_off = sim::seconds(3.0);
          exp::receiver_options attacker;
          attacker.attack = p;
          std::vector<exp::receiver_options> rogues = {attacker};
          if (p.kind == strategy_kind::collusion) rogues.push_back(attacker);
          auto& rogue = d.add_flid_session(exp::flid_mode::ds, rogues);
          auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                            {exp::receiver_options{}});
          d.run_until(sim::seconds(40.0));
          exp::sweep_row row;
          row.label = strategy_name(p.kind);
          row.value("attacker_bytes",
                    static_cast<double>(
                        rogue.receiver().monitor().total_bytes()));
          row.value("honest_bytes",
                    static_cast<double>(
                        honest.receiver().monitor().total_bytes()));
          row.value("invalid_keys",
                    static_cast<double>(d.sigma().stats().invalid_keys));
          row.value("igmp_joins",
                    static_cast<double>(d.igmp().stats().joins));
          return row;
        });
    std::ostringstream os;
    exp::write_json(os, "adversary_matrix", rows);
    return os.str();
  };
  const std::string serial = matrix(1);
  EXPECT_EQ(serial, matrix(4));
  EXPECT_NE(serial.find("pulse_inflate"), std::string::npos);
}

}  // namespace
}  // namespace mcc::adversary
