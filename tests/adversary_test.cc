// Adversary subsystem: profile/flag plumbing, the collusion key pool,
// containment-report math on synthetic series, behavioural checks for every
// strategy, the legacy-shim equivalence guarantee, and bit-determinism of
// attack-matrix rows across sweep --jobs counts.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/containment.h"
#include "exp/sweep.h"
#include "exp/testbed.h"

namespace mcc::adversary {
namespace {

TEST(adversary_names, strategy_names_round_trip) {
  for (const strategy_kind k :
       {strategy_kind::honest, strategy_kind::inflate_once,
        strategy_kind::pulse_inflate, strategy_kind::churn_flap,
        strategy_kind::deaf_receiver, strategy_kind::collusion}) {
    const auto back = strategy_from_name(strategy_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(strategy_from_name("inflate").has_value());
  EXPECT_FALSE(strategy_from_name("").has_value());
  // all_attacks excludes honest.
  for (const strategy_kind k : all_attacks()) {
    EXPECT_NE(k, strategy_kind::honest);
  }
  EXPECT_EQ(all_attacks().size(), 5u);
}

TEST(adversary_names, key_mode_names_round_trip) {
  for (const key_mode m :
       {key_mode::best_effort, key_mode::replay, key_mode::guess}) {
    const auto back = key_mode_from_name(key_mode_name(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(key_mode_from_name("random").has_value());
}

TEST(adversary_profiles, factories_fill_their_fields) {
  const profile p = pulse_inflate(sim::seconds(7.0), sim::seconds(2.0),
                                  sim::seconds(3.0), key_mode::replay);
  EXPECT_EQ(p.kind, strategy_kind::pulse_inflate);
  EXPECT_EQ(p.start, sim::seconds(7.0));
  EXPECT_EQ(p.pulse_on, sim::seconds(2.0));
  EXPECT_EQ(p.pulse_off, sim::seconds(3.0));
  EXPECT_EQ(p.keys, key_mode::replay);
  EXPECT_TRUE(p.attacks());
  EXPECT_FALSE(honest().attacks());

  const profile c = collusion(sim::seconds(1.0), 3);
  EXPECT_EQ(c.kind, strategy_kind::collusion);
  EXPECT_EQ(c.coalition, 3);
  EXPECT_EQ(c.keys, key_mode::best_effort);

  const profile f = churn_flap(sim::seconds(2.0), 4, 6);
  EXPECT_EQ(f.flap_period_slots, 4);
  EXPECT_EQ(f.flap_depth, 6);
}

TEST(adversary_shim, legacy_inflate_fields_translate_to_inflate_once) {
  exp::receiver_options legacy;
  legacy.inflate = true;
  legacy.inflate_at = sim::seconds(5.0);
  legacy.inflate_level = 4;
  legacy.attack_keys = key_mode::replay;
  const profile p = legacy.effective_profile();
  EXPECT_EQ(p.kind, strategy_kind::inflate_once);
  EXPECT_EQ(p.start, sim::seconds(5.0));
  EXPECT_EQ(p.inflate_level, 4);
  EXPECT_EQ(p.keys, key_mode::replay);

  // Honest by default.
  EXPECT_EQ(exp::receiver_options{}.effective_profile().kind,
            strategy_kind::honest);

  // Setting both the shim and a profile is ambiguous and rejected.
  legacy.attack = deaf_receiver(sim::seconds(1.0));
  EXPECT_THROW((void)legacy.effective_profile(), util::invariant_error);
}

TEST(adversary_shim, legacy_and_profile_worlds_are_bit_identical) {
  // The inflate_once port must reproduce the legacy attacker exactly —
  // same strategy class, same seed-chain position — in both protocol
  // worlds.
  const auto run = [](exp::flid_mode mode, bool legacy) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 1e6;
    cfg.seed = 11;
    exp::testbed d(exp::dumbbell(cfg));
    exp::receiver_options attacker;
    if (legacy) {
      attacker.inflate = true;
      attacker.inflate_at = sim::seconds(20.0);
      attacker.attack_keys = key_mode::guess;
    } else {
      attacker.attack = inflate_once(sim::seconds(20.0), key_mode::guess);
    }
    auto& rogue = d.add_flid_session(mode, {attacker});
    auto& honest = d.add_flid_session(mode, {exp::receiver_options{}});
    d.run_until(sim::seconds(60.0));
    std::ostringstream sig;
    sig << rogue.receiver().monitor().total_bytes() << '/'
        << honest.receiver().monitor().total_bytes();
    for (const auto& [t, lvl] : rogue.receiver().level_history()) {
      sig << ' ' << t << ':' << lvl;
    }
    return sig.str();
  };
  EXPECT_EQ(run(exp::flid_mode::dl, true), run(exp::flid_mode::dl, false));
  EXPECT_EQ(run(exp::flid_mode::ds, true), run(exp::flid_mode::ds, false));
}

TEST(collusion_coordinator_pool, deposit_lookup_and_pruning) {
  collusion_coordinator pool;
  const crypto::group_key k1{0xabcd};
  pool.deposit(10, 3, k1);
  const crypto::group_key* hit = pool.lookup(10, 3);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, k1);
  EXPECT_EQ(pool.lookup(10, 4), nullptr);
  EXPECT_EQ(pool.lookup(11, 3), nullptr);
  // A deposit far in the future prunes stale slots.
  pool.deposit(100, 1, k1);
  EXPECT_EQ(pool.lookup(10, 3), nullptr);
  EXPECT_EQ(pool.stats().deposits, 2u);
  EXPECT_EQ(pool.stats().lookups, 4u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(containment_metrics, synthetic_series_yields_exact_report) {
  // Honest flow: steady 100 Kbps. Attacker: 100 Kbps until t=10s, 1000 Kbps
  // over [10, 30), then back to 100 Kbps. All values land on 1-second bins.
  sim::scheduler sched;
  sim::throughput_monitor attacker(sched);
  sim::throughput_monitor honest(sched);
  for (int t = 0; t < 60; ++t) {
    const std::int64_t atk = (t >= 10 && t < 30) ? 125'000 : 12'500;
    sched.at(sim::seconds(static_cast<double>(t)) + 1, [&, atk] {
      honest.on_bytes(12'500);
      attacker.on_bytes(atk);
    });
  }
  sched.run();

  containment_config cfg;
  cfg.attack_start = sim::seconds(10.0);
  cfg.horizon = sim::seconds(60.0);
  cfg.settle = sim::seconds(10.0);
  cfg.pre = sim::seconds(10.0);
  cfg.bin = sim::seconds(1.0);
  cfg.smooth = sim::seconds(1.0);
  cfg.bound_factor = 1.6;
  cfg.floor_kbps = 50.0;
  const containment_report rep =
      measure_containment(attacker, {&honest}, cfg);

  // After window [20, 60): attacker carried 10 s at 1000 and 30 s at 100.
  EXPECT_NEAR(rep.attacker_kbps, (10.0 * 1000.0 + 30.0 * 100.0) / 40.0, 1e-9);
  EXPECT_NEAR(rep.honest_kbps, 100.0, 1e-9);
  EXPECT_NEAR(rep.attacker_share, 325.0 / 425.0, 1e-9);
  EXPECT_NEAR(rep.honest_before_kbps, 100.0, 1e-9);
  EXPECT_NEAR(rep.honest_damage, 0.0, 1e-9);
  EXPECT_NEAR(rep.containment_bound_kbps, 160.0, 1e-9);
  // The last offending bin ends at t=30s; the attack started at 10s.
  EXPECT_TRUE(rep.contained);
  EXPECT_NEAR(rep.time_to_containment_s, 20.0, 1e-9);
}

TEST(containment_metrics, attacker_above_bound_at_horizon_is_uncontained) {
  sim::scheduler sched;
  sim::throughput_monitor attacker(sched);
  sim::throughput_monitor honest(sched);
  for (int t = 0; t < 40; ++t) {
    const std::int64_t atk = t >= 10 ? 125'000 : 12'500;
    sched.at(sim::seconds(static_cast<double>(t)) + 1, [&, atk] {
      honest.on_bytes(12'500);
      attacker.on_bytes(atk);
    });
  }
  sched.run();
  containment_config cfg;
  cfg.attack_start = sim::seconds(10.0);
  cfg.horizon = sim::seconds(40.0);
  const containment_report rep =
      measure_containment(attacker, {&honest}, cfg);
  EXPECT_FALSE(rep.contained);
  EXPECT_DOUBLE_EQ(rep.time_to_containment_s, -1.0);
  EXPECT_DOUBLE_EQ(rep.honest_damage, 0.0);  // honest flow held steady
}

TEST(adversary_behaviour, pulse_inflate_oscillates_subscription) {
  // Roomy bottleneck so the oscillation is driven by the script, not by
  // congestion: the level history must repeatedly hit the ceiling and fall
  // back to the minimal layer.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = pulse_inflate(sim::seconds(10.0), sim::seconds(4.0),
                                  sim::seconds(4.0));
  auto& session = d.add_flid_session(exp::flid_mode::dl, {attacker});
  d.run_until(sim::seconds(50.0));

  const int n = session.config.num_groups;
  int peaks = 0;
  int troughs = 0;
  bool at_peak = false;
  for (const auto& [t, lvl] : session.receiver().level_history()) {
    if (t < sim::seconds(10.0)) continue;
    if (lvl == n && !at_peak) {
      ++peaks;
      at_peak = true;
    } else if (lvl == 1 && at_peak) {
      ++troughs;
      at_peak = false;
    }
  }
  // 40 s of 4s/4s pulsing = 5 cycles; allow slack for slot rounding.
  EXPECT_GE(peaks, 3);
  EXPECT_GE(troughs, 3);
}

TEST(adversary_behaviour, capped_pulse_sheds_layers_climbed_before_onset) {
  // Honest phase on a roomy bottleneck climbs to the top; a pulse capped at
  // level 2 must LEAVE the higher groups when the attack starts, not just
  // lower its claimed level — leaked memberships would keep drawing all ten
  // groups' bandwidth forever.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = pulse_inflate(sim::seconds(20.0), sim::seconds(4.0),
                                  sim::seconds(4.0));
  attacker.attack.inflate_level = 2;
  auto& session = d.add_flid_session(exp::flid_mode::dl, {attacker});
  d.run_until(sim::seconds(60.0));
  // Cumulative level-2 rate is 150 Kbps; the pre-attack honest climb ran at
  // up to ~3.8 Mbps. Anywhere near the former means the leave really
  // happened on the wire.
  const double late = session.receiver().monitor().average_kbps(
      sim::seconds(30.0), sim::seconds(60.0));
  EXPECT_LT(late, 400.0);
  EXPECT_GT(late, 50.0);
  EXPECT_GT(d.igmp().stats().leaves, 5u);
}

TEST(adversary_behaviour, churn_flap_thrashes_graft_prune_state) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.seed = 3;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options churner;
  churner.attack = churn_flap(sim::seconds(5.0), 1, 0);
  d.add_flid_session(exp::flid_mode::dl, {churner});
  d.run_until(sim::seconds(45.0));
  // 80 slots of flapping across ~9 upper groups: the edge processed a
  // couple hundred membership changes (an honest receiver needs ~10 joins
  // for the whole run).
  EXPECT_GT(d.igmp().stats().joins, 100u);
  EXPECT_GT(d.igmp().stats().leaves, 100u);
}

TEST(adversary_behaviour, churn_flap_cycles_sigma_subscription_state) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 5;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options churner;
  churner.attack = churn_flap(sim::seconds(5.0), 1, 0);
  auto& session = d.add_flid_session(exp::flid_mode::ds, {churner});
  d.run_until(sim::seconds(45.0));
  // Down phases explicitly unsubscribe whatever the up phases climbed to;
  // climbing in DS is upgrade-authorization-limited (~0.15/slot), so the
  // cycle count is protocol-bounded — DELTA itself damps SIGMA-side churn.
  EXPECT_GT(d.sigma().stats().unsubscribes, 5u);
  EXPECT_GT(d.sigma().stats().subscribe_msgs, 50u);
  EXPECT_GT(session.receiver().monitor().total_bytes(), 0);
}

TEST(adversary_behaviour, deaf_receiver_is_contained_under_sigma) {
  // Same invariant as the containment matrix, for the deaf shape: never
  // dropping layers must not hold more than the contested fair share.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 7;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options deaf;
  deaf.attack = deaf_receiver(sim::seconds(30.0));
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {deaf});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(120.0));
  const double rogue_kbps = rogue.receiver().monitor().average_kbps(
      sim::seconds(45.0), sim::seconds(120.0));
  const double honest_kbps = honest.receiver().monitor().average_kbps(
      sim::seconds(45.0), sim::seconds(120.0));
  EXPECT_LT(rogue_kbps, 750.0) << "honest " << honest_kbps;
  EXPECT_GT(honest_kbps, 100.0);
}

TEST(adversary_behaviour, colluders_share_keys_across_edges) {
  // Two colluders on different tree branches: the one on the uncontested
  // branch proves high-layer keys and feeds the pool; the contested one
  // replays them at its own edge. The honest receiver and TCP load the
  // contested branch.
  exp::tree_config cfg;
  cfg.depth = 2;
  cfg.fanout = 2;
  cfg.seed = 7;
  exp::testbed d(exp::balanced_tree(cfg));
  exp::receiver_options contested;
  contested.at = "t2_1";
  contested.attack = collusion(sim::seconds(20.0), 1);
  exp::receiver_options clean;
  clean.at = "t2_2";
  clean.attack = collusion(sim::seconds(20.0), 1);
  d.add_flid_session(exp::flid_mode::ds, {contested, clean});
  d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  d.add_tcp_flow();
  d.run_until(sim::seconds(90.0));

  const auto& pool = d.coordinator(1).stats();
  EXPECT_GT(pool.deposits, 100u);
  EXPECT_GT(pool.lookups, 0u);
  EXPECT_GT(pool.hits, 0u) << "deposits " << pool.deposits << " lookups "
                           << pool.lookups;
}

TEST(adversary_determinism, attack_matrix_rows_bit_identical_across_jobs) {
  // One row per strategy on a short dumbbell scenario; --jobs 4 must
  // serialize byte-for-byte like --jobs 1 (same contract as every bench).
  const auto matrix = [](int jobs) {
    const std::vector<strategy_kind>& kinds = all_attacks();
    std::vector<double> xs(kinds.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = static_cast<double>(i);
    }
    exp::sweep_options opts;
    opts.jobs = jobs;
    opts.base_seed = 17;
    const auto rows =
        exp::run_sweep(xs, opts, [&](const exp::sweep_point& pt) {
          exp::dumbbell_config cfg;
          cfg.bottleneck_bps = 1e6;
          cfg.seed = pt.seed;
          exp::testbed d(exp::dumbbell(cfg));
          profile p;
          p.kind = kinds[pt.index];
          p.start = sim::seconds(10.0);
          p.pulse_on = sim::seconds(3.0);
          p.pulse_off = sim::seconds(3.0);
          exp::receiver_options attacker;
          attacker.attack = p;
          std::vector<exp::receiver_options> rogues = {attacker};
          if (p.kind == strategy_kind::collusion) rogues.push_back(attacker);
          auto& rogue = d.add_flid_session(exp::flid_mode::ds, rogues);
          auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                            {exp::receiver_options{}});
          d.run_until(sim::seconds(40.0));
          exp::sweep_row row;
          row.label = strategy_name(p.kind);
          row.value("attacker_bytes",
                    static_cast<double>(
                        rogue.receiver().monitor().total_bytes()));
          row.value("honest_bytes",
                    static_cast<double>(
                        honest.receiver().monitor().total_bytes()));
          row.value("invalid_keys",
                    static_cast<double>(d.sigma().stats().invalid_keys));
          row.value("igmp_joins",
                    static_cast<double>(d.igmp().stats().joins));
          return row;
        });
    std::ostringstream os;
    exp::write_json(os, "adversary_matrix", rows);
    return os.str();
  };
  const std::string serial = matrix(1);
  EXPECT_EQ(serial, matrix(4));
  EXPECT_NE(serial.find("pulse_inflate"), std::string::npos);
}

}  // namespace
}  // namespace mcc::adversary
