// Cross-session conformance suite for the shared congestion manager
// (src/cm): the cm-off path must be byte-identical to the legacy engine on
// every checked-in golden digest, cm-on must be provably inert for
// single-session worlds, multi-session worlds may differ ONLY where the cap
// actually bound, and the LRU/aging/EWMA laws of the state table must match
// hand-computed expectations. The sweep integration (mini session farm) must
// stay byte-identical across --jobs 1 / --jobs 4 / forked workers.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cm/congestion_manager.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "golden_digests.h"

namespace mcc::cm {
namespace {

using mcc::testing::fnv1a;
using mcc::testing::golden;
using mcc::testing::kAdaptivePulseGolden;
using mcc::testing::kPulseAttackGolden;
using mcc::testing::run_adaptive_pulse_digest;
using mcc::testing::run_digest;
using mcc::testing::run_pulse_attack_digest;

// ---------------------------------------------------------------------------
// State-table laws, hand-computed
// ---------------------------------------------------------------------------

path_id path_at(sim::node_id edge, int traffic_class = 0) {
  return path_id{edge, path_direction::downstream, traffic_class};
}

observation obs_at(std::int64_t slot, bool congested, double kbps) {
  observation o;
  o.slot = slot;
  o.congested = congested;
  o.delivered_kbps = kbps;
  return o;
}

TEST(cm_laws, ewma_matches_hand_computation) {
  cm_config cfg;
  cfg.signal_weight = 0.25;
  cfg.rate_weight = 0.5;
  congestion_manager cm(cfg);
  const path_id p = path_at(1);
  // First observation restarts from the sample (the entry starts stale).
  cm.observe(p, obs_at(0, true, 100.0));
  ASSERT_NE(cm.state_of(p), nullptr);
  EXPECT_DOUBLE_EQ(cm.state_of(p)->loss_ewma, 1.0);
  EXPECT_DOUBLE_EQ(cm.state_of(p)->fair_rate_kbps, 100.0);
  // Second: loss = 0.75*1 + 0.25*0, rate = 0.5*100 + 0.5*200.
  cm.observe(p, obs_at(1, false, 200.0));
  EXPECT_DOUBLE_EQ(cm.state_of(p)->loss_ewma, 0.75);
  EXPECT_DOUBLE_EQ(cm.state_of(p)->fair_rate_kbps, 150.0);
  // Third: loss = 0.75*0.75 + 0.25*1 = 0.8125.
  cm.observe(p, obs_at(2, true, 150.0));
  EXPECT_DOUBLE_EQ(cm.state_of(p)->loss_ewma, 0.8125);
  EXPECT_DOUBLE_EQ(cm.state_of(p)->fair_rate_kbps, 150.0);
  EXPECT_EQ(cm.stats().observations, 3u);
  EXPECT_EQ(cm.stats().insertions, 1u);
}

TEST(cm_laws, aging_restarts_the_ewmas_after_an_idle_gap) {
  cm_config cfg;
  cfg.aging_slots = 4;
  congestion_manager cm(cfg);
  const path_id p = path_at(1);
  cm.observe(p, obs_at(0, true, 100.0));
  // Slot 4 is within the window (gap == aging_slots is NOT stale)...
  cm.observe(p, obs_at(4, false, 100.0));
  EXPECT_EQ(cm.stats().aged_resets, 0u);
  EXPECT_DOUBLE_EQ(cm.state_of(p)->loss_ewma, 0.75);
  // ...slot 9 is past it (gap 5 > 4): the EWMAs restart from the sample.
  cm.observe(p, obs_at(9, true, 300.0));
  EXPECT_EQ(cm.stats().aged_resets, 1u);
  EXPECT_DOUBLE_EQ(cm.state_of(p)->loss_ewma, 1.0);
  EXPECT_DOUBLE_EQ(cm.state_of(p)->fair_rate_kbps, 300.0);
}

TEST(cm_laws, lru_evicts_the_least_recently_observed_path) {
  cm_config cfg;
  cfg.max_entries = 2;
  congestion_manager cm(cfg);
  const path_id a = path_at(1);
  const path_id b = path_at(2);
  const path_id c = path_at(3);
  cm.observe(a, obs_at(0, false, 100.0));
  cm.observe(b, obs_at(1, false, 100.0));
  // Touch a so b becomes the LRU entry, then insert c: b must give way.
  cm.observe(a, obs_at(2, false, 100.0));
  cm.observe(c, obs_at(3, false, 100.0));
  EXPECT_EQ(cm.entries(), 2u);
  EXPECT_EQ(cm.stats().evictions, 1u);
  EXPECT_NE(cm.state_of(a), nullptr);
  EXPECT_EQ(cm.state_of(b), nullptr);
  EXPECT_NE(cm.state_of(c), nullptr);
}

TEST(cm_laws, lookups_do_not_promote_lru_recency) {
  // level_cap is read-only on the LRU order: eviction is driven by
  // observations alone, which keeps the eviction law hand-computable.
  cm_config cfg;
  cfg.max_entries = 2;
  congestion_manager cm(cfg);
  const path_id a = path_at(1);
  const path_id b = path_at(2);
  const path_id c = path_at(3);
  cm.register_session(a, 1);
  cm.register_session(a, 2);
  cm.observe(a, obs_at(0, true, 100.0));
  cm.observe(b, obs_at(1, false, 100.0));
  const std::vector<double> cum = {100.0, 150.0};
  // Looking a up does NOT move it to the front...
  (void)cm.level_cap(a, 1, cum);
  // ...so inserting c evicts a, the least recently observed.
  cm.observe(c, obs_at(2, false, 100.0));
  EXPECT_EQ(cm.state_of(a), nullptr);
  EXPECT_NE(cm.state_of(b), nullptr);
}

TEST(cm_laws, level_cap_matches_the_severity_scaled_budget) {
  cm_config cfg;
  cfg.signal_weight = 1.0;  // EWMAs copy the latest sample: exact control
  cfg.rate_weight = 1.0;
  cfg.congestion_threshold = 0.25;
  cfg.headroom = 1.3;
  congestion_manager cm(cfg);
  const path_id p = path_at(1);
  cm.register_session(p, 1);
  cm.register_session(p, 2);
  // Levels at 100 * 1.5^(l-1) Kbps cumulative.
  const std::vector<double> cum = {100.0, 150.0, 225.0, 337.5};
  // Uncongested: severity 0 <= threshold, no cap.
  cm.observe(p, obs_at(0, false, 150.0));
  EXPECT_EQ(cm.level_cap(p, 0, cum), 4);
  EXPECT_EQ(cm.stats().capped_lookups, 0u);
  // Congested at fair rate 150: severity 1.0, budget = 150 * max(0.5,
  // 1.3 - 1.0) = 75 -> below cum[0], and the cap clamps at level 1.
  cm.observe(p, obs_at(1, true, 150.0));
  EXPECT_EQ(cm.level_cap(p, 1, cum), 1);
  EXPECT_EQ(cm.stats().capped_lookups, 1u);
  // Mild severity just over the threshold: with signal_weight 1 the EWMA is
  // all-or-nothing, so rebuild at 0.5 weight for a fractional severity.
  cm_config half = cfg;
  half.signal_weight = 0.5;
  congestion_manager cm2(half);
  cm2.register_session(p, 1);
  cm2.register_session(p, 2);
  cm2.observe(p, obs_at(0, true, 150.0));   // loss_ewma 1.0
  cm2.observe(p, obs_at(1, false, 150.0));  // loss_ewma 0.5
  // budget = 150 * (1.3 - 0.5) = 120 -> cap 1 (cum[1] = 150 > 120).
  EXPECT_EQ(cm2.level_cap(p, 1, cum), 1);
  cm2.observe(p, obs_at(2, false, 150.0));  // loss_ewma 0.25 <= threshold
  EXPECT_EQ(cm2.level_cap(p, 2, cum), 4);
}

TEST(cm_laws, cap_never_binds_for_a_single_session) {
  congestion_manager cm;
  const path_id p = path_at(1);
  cm.register_session(p, 7);
  cm.register_session(p, 7);  // second receiver of the SAME session
  const std::vector<double> cum = {100.0, 150.0};
  cm.observe(p, obs_at(0, true, 100.0));
  cm.observe(p, obs_at(1, true, 100.0));
  EXPECT_EQ(cm.sessions_at(p), 1);
  EXPECT_EQ(cm.level_cap(p, 1, cum), 2) << "one session is entitled to probe";
  EXPECT_EQ(cm.stats().capped_lookups, 0u);
  // A second distinct session arms the cap at the same state.
  cm.register_session(p, 8);
  EXPECT_EQ(cm.sessions_at(p), 2);
  EXPECT_EQ(cm.level_cap(p, 1, cum), 1);
}

TEST(cm_laws, stale_entries_do_not_cap) {
  cm_config cfg;
  cfg.aging_slots = 2;
  congestion_manager cm(cfg);
  const path_id p = path_at(1);
  cm.register_session(p, 1);
  cm.register_session(p, 2);
  const std::vector<double> cum = {100.0, 150.0};
  cm.observe(p, obs_at(0, true, 100.0));
  EXPECT_EQ(cm.level_cap(p, 1, cum), 1);
  EXPECT_EQ(cm.level_cap(p, 5, cum), 2) << "slot 5 is past the aging window";
  EXPECT_EQ(cm.stats().stale_lookups, 1u);
}

TEST(cm_laws, aggregated_key_collides_same_edge_same_class) {
  // Two sessions behind the same edge and class share ONE entry; a distinct
  // traffic class is a distinct path.
  congestion_manager cm;
  const path_id shared = path_at(4, 0);
  cm.register_session(shared, 1);
  cm.register_session(shared, 2);
  cm.observe(shared, obs_at(0, false, 100.0));  // session 1's receiver
  cm.observe(shared, obs_at(0, false, 200.0));  // session 2's receiver
  EXPECT_EQ(cm.entries(), 1u);
  EXPECT_EQ(cm.registered_paths(), 1u);
  EXPECT_EQ(cm.registered_sessions(), 2u);
  cm.observe(path_at(4, 1), obs_at(0, false, 100.0));
  EXPECT_EQ(cm.entries(), 2u);
  // Unregistering one receiver of each session empties the path.
  cm.unregister_session(shared, 1);
  cm.unregister_session(shared, 2);
  EXPECT_EQ(cm.sessions_at(shared), 0);
}

// ---------------------------------------------------------------------------
// Golden-digest conformance: cm off == legacy, byte for byte
// ---------------------------------------------------------------------------

TEST(cm_conformance, all_four_qdisc_digests_unchanged_with_cm_compiled_in) {
  for (const sim::qdisc d : {sim::qdisc::droptail, sim::qdisc::ecn_threshold,
                             sim::qdisc::red, sim::qdisc::codel}) {
    EXPECT_EQ(run_digest(d), golden(d)) << sim::qdisc_name(d);
  }
}

TEST(cm_conformance, attack_timeline_digests_unchanged_with_cm_off) {
  // Explicitly pass the cm-off tweak: this is the "cm off reproduces legacy
  // byte-identically" contract, not just a default-value accident.
  const auto cm_off = [](exp::dumbbell_config& cfg) { cfg.cm = false; };
  EXPECT_EQ(run_pulse_attack_digest({}, cm_off), kPulseAttackGolden);
  EXPECT_EQ(run_adaptive_pulse_digest(cm_off), kAdaptivePulseGolden);
}

TEST(cm_conformance, never_binding_cap_is_byte_identical_even_when_on) {
  // cm ON, but with a threshold the loss EWMA can never exceed: zero
  // bindings ⇒ the whole attack timeline must still match the checked-in
  // digest bit for bit. This is the "differs ONLY where the cap binds"
  // contract's easy direction.
  const auto cm_inert = [](exp::dumbbell_config& cfg) {
    cfg.cm = true;
    cfg.cm_params.congestion_threshold = 1.0;  // severity is at most 1.0
  };
  EXPECT_EQ(run_pulse_attack_digest({}, cm_inert), kPulseAttackGolden);
  EXPECT_EQ(run_adaptive_pulse_digest(cm_inert), kAdaptivePulseGolden);
}

/// Digest of a small multi-session honest world: every receiver's byte/slot
/// counters and full level history, plus the bottleneck counters.
std::string run_farm_digest(bool cm, int sessions,
                            double congestion_threshold = 0.25) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 9;
  cfg.cm = cm;
  cfg.cm_params.congestion_threshold = congestion_threshold;
  exp::testbed d(exp::dumbbell(cfg));
  const auto added =
      d.add_session_array(sessions, exp::flid_mode::ds,
                          {exp::receiver_options{}});
  d.run_until(sim::seconds(40.0));
  fnv1a digest;
  for (exp::flid_session* s : added) {
    flid::flid_receiver& r = s->receiver(0);
    digest.fold(static_cast<std::uint64_t>(r.monitor().total_bytes()));
    digest.fold(r.stats().packets);
    digest.fold(r.stats().slots_congested);
    for (const auto& [t, lvl] : r.level_history()) {
      digest.fold(static_cast<std::uint64_t>(t));
      digest.fold(static_cast<std::uint64_t>(lvl));
    }
  }
  const sim::link_stats& bn = d.bottleneck()->stats();
  digest.fold(bn.enqueued);
  digest.fold(bn.dropped);
  digest.fold(bn.delivered);
  return digest.hex();
}

std::uint64_t farm_bindings(int sessions, double congestion_threshold) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 9;
  cfg.cm = true;
  cfg.cm_params.congestion_threshold = congestion_threshold;
  exp::testbed d(exp::dumbbell(cfg));
  const auto added =
      d.add_session_array(sessions, exp::flid_mode::ds,
                          {exp::receiver_options{}});
  d.run_until(sim::seconds(40.0));
  std::uint64_t bindings = 0;
  for (exp::flid_session* s : added) {
    bindings += s->receiver(0).stats().cm_bindings;
  }
  return bindings;
}

TEST(cm_conformance, single_session_world_is_byte_identical_with_cm_on) {
  // One session, even with cm on and an aggressive threshold: sessions_at
  // stays 1, the cap never binds, and the run is bit-identical to cm off.
  EXPECT_EQ(run_farm_digest(true, 1, 0.0), run_farm_digest(false, 1));
  EXPECT_EQ(farm_bindings(1, 0.0), 0u);
}

TEST(cm_conformance, multi_session_world_differs_only_where_the_cap_binds) {
  // Same world, threshold 1.0: zero bindings, equal digests.
  EXPECT_EQ(farm_bindings(3, 1.0), 0u);
  EXPECT_EQ(run_farm_digest(true, 3, 1.0), run_farm_digest(false, 3));
  // Threshold 0.0: every congestion flicker binds the cap — the digest MUST
  // move, and the bindings counter proves the cap (and nothing else) is
  // what moved it.
  EXPECT_GT(farm_bindings(3, 0.0), 0u);
  EXPECT_NE(run_farm_digest(true, 3, 0.0), run_farm_digest(false, 3));
}

TEST(cm_conformance, shared_manager_state_reflects_the_farm) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 9;
  cfg.cm = true;
  exp::testbed d(exp::dumbbell(cfg));
  d.add_session_array(3, exp::flid_mode::ds, {exp::receiver_options{}});
  d.run_until(sim::seconds(20.0));
  congestion_manager* cm = d.shared_cm();
  ASSERT_NE(cm, nullptr);
  // Three sessions, one default receiver site: one aggregated path.
  EXPECT_EQ(cm->registered_paths(), 1u);
  EXPECT_EQ(cm->registered_sessions(), 3u);
  EXPECT_EQ(cm->entries(), 1u);
  EXPECT_GT(cm->stats().observations, 0u);
  EXPECT_GT(cm->stats().lookups, 0u);
  EXPECT_EQ(cm->stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Sweep integration: mini session-farm rows are worker-configuration
// invariant, byte for byte
// ---------------------------------------------------------------------------

std::string farm_sweep_json(const exp::sweep_options& opts) {
  const std::vector<double> xs = {2.0, 3.0};
  const auto rows = exp::run_sweep(xs, opts, [](const exp::sweep_point& pt) {
    exp::dumbbell_config cfg;
    cfg.seed = pt.seed;
    cfg.cm = true;
    exp::testbed d(exp::dumbbell(cfg));
    const auto added = d.add_session_array(static_cast<int>(pt.x),
                                           exp::flid_mode::ds,
                                           {exp::receiver_options{}});
    d.run_until(sim::seconds(10.0));
    exp::sweep_row row;
    row.label = "farm/n" + std::to_string(static_cast<int>(pt.x));
    double kbps = 0.0;
    for (exp::flid_session* s : added) {
      kbps += s->receiver(0).monitor().average_kbps(0, sim::seconds(10.0));
    }
    row.value("honest_kbps", kbps);
    row.metrics = d.metrics().snapshot();
    return row;
  });
  std::ostringstream os;
  exp::write_json(os, "cm_farm", rows);
  return os.str();
}

TEST(cm_sweep, session_farm_rows_are_jobs_invariant) {
  exp::sweep_options serial;
  serial.jobs = 1;
  serial.base_seed = 21;
  exp::sweep_options threaded;
  threaded.jobs = 4;
  threaded.base_seed = 21;
  const std::string reference = farm_sweep_json(serial);
  EXPECT_EQ(reference, farm_sweep_json(threaded));
#ifdef __unix__
  exp::sweep_options forked;
  forked.jobs_per_process = 3;
  forked.base_seed = 21;
  EXPECT_EQ(reference, farm_sweep_json(forked))
      << "session-farm rows must survive the worker pipe bit-exactly";
#endif
}

}  // namespace
}  // namespace mcc::cm
