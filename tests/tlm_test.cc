// Threshold layered multicast (TLM) over DELTA/SIGMA: the loss-rate rule is
// enforced cryptographically, and the untouched SIGMA router serves a
// completely different congestion control protocol (Requirement 3).
#include "core/tlm.h"

#include <gtest/gtest.h>

#include "exp/testbed.h"

namespace mcc::core {
namespace {

struct tlm_world {
  explicit tlm_world(double bottleneck_bps, double base_threshold = 0.25,
                     std::uint64_t seed = 3) {
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = bottleneck_bps;
    cfg.seed = seed;
    d = std::make_unique<exp::testbed>(exp::dumbbell(cfg));

    fc = d->default_flid_config(exp::flid_mode::ds);
    fc.session_id = 70;
    fc.group_addr_base = 70'000;
    thresholds = threshold_config::uniform(fc.num_groups, base_threshold,
                                           fc.key_bits);

    src = d->attach_host("tlm_src", "l");
    sender = std::make_unique<flid::flid_sender>(d->net(), src, fc, seed);
    bundle = make_tlm_sender(d->net(), src, *sender, thresholds, seed + 1);
    sender->start(0);

    dst = d->attach_host("tlm_rcv", "r");
    auto strategy = std::make_unique<tlm_sigma_strategy>(thresholds);
    strategy_raw = strategy.get();
    receiver = std::make_unique<flid::flid_receiver>(
        d->net(), dst, d->router("r"), fc, std::move(strategy));
    receiver->start(0);
  }

  std::unique_ptr<exp::testbed> d;
  flid::flid_config fc;
  threshold_config thresholds;
  sim::node_id src, dst;
  std::unique_ptr<flid::flid_sender> sender;
  tlm_sender_bundle bundle;
  tlm_sigma_strategy* strategy_raw = nullptr;
  std::unique_ptr<flid::flid_receiver> receiver;
};

TEST(tlm, climbs_to_top_when_uncongested) {
  tlm_world w(10e6);
  w.d->run_until(sim::seconds(90.0));
  EXPECT_EQ(w.receiver->level(), w.fc.num_groups);
  EXPECT_GT(w.strategy_raw->tlm_stats().levels_reconstructed, 0u);
  EXPECT_EQ(w.d->sigma().stats().invalid_keys, 0u);
}

TEST(tlm, settles_near_fair_level_at_bottleneck) {
  tlm_world w(250e3);
  w.d->run_until(sim::seconds(120.0));
  const double kbps = w.receiver->monitor().average_kbps(sim::seconds(60.0),
                                                         sim::seconds(120.0));
  EXPECT_GT(kbps, 120.0);
  EXPECT_LT(kbps, 300.0);
}

TEST(tlm, tolerates_loss_below_threshold_unlike_flid) {
  // A light random loss process (via a slightly undersized bottleneck) that
  // FLID-DS's single-loss rule punishes constantly should leave a
  // 25%-threshold TLM receiver mostly unharmed at its sustainable level.
  tlm_world w(400e3, 0.25, 11);
  w.d->run_until(sim::seconds(120.0));
  // Cumulative rates: level 4 = 338k < 400k; level 5 = 506k overshoots and
  // produces ~20% loss, within the 25% threshold -> TLM can hold 4-5.
  EXPECT_GE(w.receiver->level(), 3);
  const double kbps = w.receiver->monitor().average_kbps(sim::seconds(60.0),
                                                         sim::seconds(120.0));
  EXPECT_GT(kbps, 250.0);
}

TEST(tlm, sender_emits_one_share_per_level_per_packet) {
  sim::scheduler sched;
  sim::network net(sched);
  const auto host = net.add_host("h");
  flid::flid_config fc;
  fc.session_id = 2;
  fc.group_addr_base = 100;
  fc.num_groups = 4;
  std::vector<sim::group_addr> groups;
  for (int g = 1; g <= 4; ++g) groups.push_back(fc.group(g));
  auto cfg = threshold_config::uniform(4, 0.25);
  tlm_delta_sender delta(2, cfg, groups, sim::milliseconds(250), 5);
  std::vector<int> counts = {0, 4, 3, 2, 2};
  delta.begin_slot(0, 0, counts);

  sim::flid_data hdr;
  delta.fill_fields(0, 1, 0, false, hdr);
  EXPECT_EQ(hdr.level_shares.size(), 4u);  // levels 1..4
  delta.fill_fields(0, 3, 1, false, hdr);
  EXPECT_EQ(hdr.level_shares.size(), 2u);  // levels 3..4
  EXPECT_EQ(hdr.level_shares[0].level, 3);
  EXPECT_EQ(hdr.level_shares[1].level, 4);
  (void)host;
}

TEST(tlm, key_reconstructs_exactly_at_threshold) {
  flid::flid_config fc;
  fc.group_addr_base = 100;
  fc.num_groups = 2;
  std::vector<sim::group_addr> groups = {fc.group(1), fc.group(2)};
  auto cfg = threshold_config::uniform(2, 0.25);
  tlm_delta_sender delta(3, cfg, groups, sim::milliseconds(250), 6);
  std::vector<int> counts = {0, 8, 8};  // level 1: n=8 k=6; level 2: n=16 k=12
  delta.begin_slot(0, 0, counts);
  EXPECT_EQ(delta.threshold_for(1), 6);
  EXPECT_EQ(delta.threshold_for(2), 12);

  // Collect level-2 shares from all 16 packets, then check the boundary.
  std::vector<crypto::shamir_share> shares;
  for (int g = 1; g <= 2; ++g) {
    for (int i = 0; i < 8; ++i) {
      sim::flid_data hdr;
      delta.fill_fields(0, g, i, i == 7, hdr);
      for (const auto& ls : hdr.level_shares) {
        if (ls.level == 2) shares.push_back(crypto::shamir_share{ls.x, ls.y});
      }
    }
  }
  ASSERT_EQ(shares.size(), 16u);
  const auto key = delta.key_for(2, 2);
  ASSERT_TRUE(key.has_value());
  const auto at_k = reconstruct_threshold_key({shares.data(), 12}, 12);
  ASSERT_TRUE(at_k.has_value());
  EXPECT_EQ(crypto::mask_to_bits(*at_k, 16), *key);
  const auto below_k = reconstruct_threshold_key({shares.data(), 11}, 12);
  EXPECT_FALSE(below_k.has_value());
}

TEST(tlm, shares_of_one_level_do_not_open_another) {
  flid::flid_config fc;
  fc.group_addr_base = 100;
  fc.num_groups = 3;
  std::vector<sim::group_addr> groups = {fc.group(1), fc.group(2), fc.group(3)};
  auto cfg = threshold_config::uniform(3, 0.5);
  tlm_delta_sender delta(4, cfg, groups, sim::milliseconds(250), 7);
  std::vector<int> counts = {0, 6, 6, 6};
  delta.begin_slot(0, 0, counts);

  // Reconstruct level 1's key and verify it differs from levels 2 and 3.
  std::vector<crypto::shamir_share> level1;
  for (int i = 0; i < 6; ++i) {
    sim::flid_data hdr;
    delta.fill_fields(0, 1, i, i == 5, hdr);
    level1.push_back(
        crypto::shamir_share{hdr.level_shares[0].x, hdr.level_shares[0].y});
  }
  const auto k1 = reconstruct_threshold_key(
      {level1.data(), level1.size()}, delta.threshold_for(1));
  ASSERT_TRUE(k1.has_value());
  EXPECT_EQ(crypto::mask_to_bits(*k1, 16), *delta.key_for(2, 1));
  EXPECT_NE(crypto::mask_to_bits(*k1, 16), *delta.key_for(2, 2));
  EXPECT_NE(crypto::mask_to_bits(*k1, 16), *delta.key_for(2, 3));
}

TEST(tlm, sigma_router_needs_no_changes_for_the_new_protocol) {
  // The untouched sigma_router_agent validated TLM keys in-sim: the FLID-DS
  // tests and this file share the same router implementation. Sanity check
  // that a TLM world exercised validation both ways.
  tlm_world w(10e6);
  w.d->run_until(sim::seconds(30.0));
  EXPECT_GT(w.d->sigma().stats().valid_keys, 0u);
  EXPECT_GT(w.d->sigma().stats().blocks_decoded, 0u);
}

}  // namespace
}  // namespace mcc::core
