// The declarative topology layer: builder validation, named factories,
// next-hop tables on non-dumbbell graphs, and multicast graft/prune
// propagation (join_upstream / leave_upstream) on chains and trees.
#include "sim/topology.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "test_util.h"

namespace mcc::sim {
namespace {

using mcc::testing::capture_agent;
using mcc::testing::make_packet;

link_config fast_link() {
  link_config cfg;
  cfg.bps = 10e6;
  cfg.delay = milliseconds(10);
  return cfg;
}

// ---------------------------------------------------------------------------
// Builder semantics
// ---------------------------------------------------------------------------

TEST(topology_builder, builds_named_nodes_and_duplex_links) {
  scheduler sched;
  network net(sched);
  topology_builder b;
  b.router("a").router("b").host("h").duplex("a", "b", fast_link());
  b.duplex("b", "h", fast_link());
  const topology t = b.build(net);
  EXPECT_TRUE(t.has("a"));
  EXPECT_TRUE(t.has("h"));
  EXPECT_FALSE(t.has("zz"));
  EXPECT_TRUE(net.get(t.node("a"))->is_router());
  EXPECT_TRUE(net.get(t.node("h"))->is_host());
  // Both directions of a duplex link resolve, and they are reverses.
  link* ab = t.between("a", "b");
  link* ba = t.between("b", "a");
  ASSERT_NE(ab, nullptr);
  ASSERT_NE(ba, nullptr);
  EXPECT_EQ(ab->reverse(), ba);
  EXPECT_EQ(t.between("a", "h"), nullptr);
  EXPECT_EQ(t.backbone_count(), 2);
  EXPECT_EQ(t.backbone(0), ab);
  // Routers listed in declaration order; hosts excluded.
  ASSERT_EQ(t.routers().size(), 2u);
  EXPECT_EQ(t.routers()[0], "a");
  EXPECT_EQ(t.routers()[1], "b");
}

TEST(topology_builder, rejects_duplicates_and_undeclared_endpoints) {
  scheduler sched;
  {
    network net(sched);
    topology_builder b;
    b.router("a").router("a");
    EXPECT_THROW((void)b.build(net), util::invariant_error);
  }
  {
    network net(sched);
    topology_builder b;
    b.router("a").duplex("a", "ghost", fast_link());
    EXPECT_THROW((void)b.build(net), util::invariant_error);
  }
  {
    network net(sched);
    topology_builder b;
    EXPECT_THROW((void)b.build(net), util::invariant_error);  // no nodes
  }
}

TEST(topology, unknown_name_throws) {
  scheduler sched;
  network net(sched);
  topology_builder b;
  b.router("a");
  const topology t = b.build(net);
  EXPECT_THROW((void)t.node("b"), util::invariant_error);
  EXPECT_THROW((void)t.backbone(0), util::invariant_error);
}

// ---------------------------------------------------------------------------
// Named factories: shape and unicast routing
// ---------------------------------------------------------------------------

TEST(topology_factories, dumbbell_is_two_routers_one_bottleneck) {
  scheduler sched;
  network net(sched);
  const topology t = dumbbell(fast_link()).build(net);
  EXPECT_EQ(net.node_count(), 2);
  EXPECT_EQ(t.backbone_count(), 1);
  EXPECT_EQ(t.between("l", "r"), t.backbone(0));
}

TEST(topology_factories, parking_lot_routes_through_every_bottleneck) {
  scheduler sched;
  network net(sched);
  const int k = 3;
  const topology t = parking_lot(k, fast_link()).build(net);
  EXPECT_EQ(net.node_count(), k + 1);
  EXPECT_EQ(t.backbone_count(), k);
  // Hosts on either end; the path crosses each chain link in order.
  const node_id a = net.add_host("a");
  const node_id b = net.add_host("b");
  net.connect(a, t.node("r0"), fast_link());
  net.connect(t.node("r3"), b, fast_link());
  net.finalize_routing();
  EXPECT_EQ(net.next_hop(t.node("r0"), b), t.backbone(0));
  EXPECT_EQ(net.next_hop(t.node("r1"), b), t.backbone(1));
  EXPECT_EQ(net.next_hop(t.node("r2"), b), t.backbone(2));
  // Reverse direction uses the reverse links.
  EXPECT_EQ(net.next_hop(t.node("r3"), a), t.backbone(2)->reverse());
  // And a packet actually makes it end to end.
  capture_agent sink(net, b);
  net.get(a)->send(make_packet(100, b));
  sched.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST(topology_factories, star_routes_spoke_to_spoke_via_hub) {
  scheduler sched;
  network net(sched);
  const topology t = star(4, fast_link()).build(net);
  EXPECT_EQ(net.node_count(), 5);
  net.finalize_routing();
  // s1 -> s3 goes through the hub.
  link* first = net.next_hop(t.node("s1"), t.node("s3"));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->to()->id(), t.node("hub"));
  EXPECT_EQ(net.next_hop(t.node("hub"), t.node("s3"))->to()->id(),
            t.node("s3"));
}

TEST(topology_factories, balanced_tree_has_full_levels_and_leaf_paths) {
  scheduler sched;
  network net(sched);
  const int depth = 3;
  const int fanout = 2;
  const topology t = balanced_tree(depth, fanout, fast_link()).build(net);
  // 1 + 2 + 4 + 8 routers.
  EXPECT_EQ(net.node_count(), 15);
  EXPECT_EQ(static_cast<int>(t.routers().size()), 15);
  net.finalize_routing();
  // Path from root to the last leaf descends one level per hop.
  const node_id leaf = t.node("t3_7");
  node_id cur = t.node("root");
  int hops = 0;
  while (cur != leaf) {
    link* l = net.next_hop(cur, leaf);
    ASSERT_NE(l, nullptr);
    cur = l->to()->id();
    ++hops;
  }
  EXPECT_EQ(hops, depth);
  // Two leaves in different subtrees route through their common ancestors:
  // t3_0 -> t3_7 climbs to the root (3 up) then descends (3 down).
  cur = t.node("t3_0");
  hops = 0;
  while (cur != t.node("t3_7")) {
    cur = net.next_hop(cur, t.node("t3_7"))->to()->id();
    ++hops;
  }
  EXPECT_EQ(hops, 2 * depth);
}

// ---------------------------------------------------------------------------
// Multicast graft/prune on non-dumbbell graphs
// ---------------------------------------------------------------------------

struct tree_mcast : ::testing::Test {
  tree_mcast() : net(sched) {
    t = balanced_tree(2, 2, fast_link()).build(net);
    src = net.add_host("src");
    net.connect(src, t.node("root"), fast_link());
    for (const char* leaf : {"t2_0", "t2_1", "t2_2", "t2_3"}) {
      const node_id h = net.add_host(std::string("h_") + leaf);
      net.connect(t.node(leaf), h, fast_link());
      hosts.push_back(h);
    }
    net.finalize_routing();
    net.register_group_source(g, src);
  }

  /// Sends one multicast packet from the source and runs to quiescence.
  void send_one() {
    packet p;
    p.size_bytes = 100;
    p.dst = dest::to_group(g);
    net.get(src)->send(std::move(p));
    sched.run();
  }

  scheduler sched;
  network net;
  topology t;
  group_addr g{5000};
  node_id src = invalid_node;
  std::vector<node_id> hosts;
};

TEST_F(tree_mcast, join_upstream_grafts_the_whole_leaf_to_root_path) {
  // Join at leaf t2_0 (plus its host-facing graft, done by edge IGMP in real
  // runs; grafted here directly).
  net.get(t.node("t2_0"))
      ->graft(g, net.next_hop(t.node("t2_0"), hosts[0]));
  net.join_upstream(t.node("t2_0"), g);
  sched.run();
  // Interior branch root->t1_0->t2_0 grafted, nothing toward the right
  // subtree.
  EXPECT_EQ(net.get(t.node("root"))->oif_count(g), 1);
  EXPECT_TRUE(net.get(t.node("root"))
                  ->has_oif(g, net.next_hop(t.node("root"), t.node("t1_0"))));
  EXPECT_EQ(net.get(t.node("t1_0"))->oif_count(g), 1);
  EXPECT_EQ(net.get(t.node("t1_1"))->oif_count(g), 0);

  capture_agent joined(net, hosts[0]);
  capture_agent not_joined(net, hosts[3]);
  net.get(hosts[0])->host_join(g);
  send_one();
  EXPECT_EQ(joined.packets.size(), 1u);
  EXPECT_TRUE(not_joined.packets.empty());
}

TEST_F(tree_mcast, shared_path_carries_one_copy_for_sibling_leaves) {
  for (int i : {0, 1}) {
    const node_id leaf = t.node("t2_" + std::to_string(i));
    net.get(leaf)->graft(g, net.next_hop(leaf, hosts[static_cast<std::size_t>(i)]));
    net.get(hosts[static_cast<std::size_t>(i)])->host_join(g);
    net.join_upstream(leaf, g);
  }
  sched.run();
  // t1_0 fans out to both children; the root still has a single oif.
  EXPECT_EQ(net.get(t.node("t1_0"))->oif_count(g), 2);
  EXPECT_EQ(net.get(t.node("root"))->oif_count(g), 1);
  const auto before =
      t.between("root", "t1_0")->stats().delivered;
  send_one();
  // One copy on the shared root->t1_0 edge, duplicated only below.
  EXPECT_EQ(t.between("root", "t1_0")->stats().delivered, before + 1);
  EXPECT_EQ(t.between("root", "t1_1")->stats().delivered, 0u);
}

TEST_F(tree_mcast, leave_upstream_prunes_only_drained_branches) {
  for (int i : {0, 1}) {
    const node_id leaf = t.node("t2_" + std::to_string(i));
    net.get(leaf)->graft(g, net.next_hop(leaf, hosts[static_cast<std::size_t>(i)]));
    net.join_upstream(leaf, g);
  }
  sched.run();
  // Leaf t2_1 leaves: its branch is pruned at t1_0, but the shared
  // root->t1_0 edge must survive (t2_0 still subscribed).
  net.get(t.node("t2_1"))
      ->prune(g, net.next_hop(t.node("t2_1"), hosts[1]));
  net.leave_upstream(t.node("t2_1"), g);
  sched.run();
  EXPECT_EQ(net.get(t.node("t1_0"))->oif_count(g), 1);
  EXPECT_EQ(net.get(t.node("root"))->oif_count(g), 1);
  // Now the last subscriber leaves and the tree drains to the root.
  net.get(t.node("t2_0"))
      ->prune(g, net.next_hop(t.node("t2_0"), hosts[0]));
  net.leave_upstream(t.node("t2_0"), g);
  sched.run();
  EXPECT_EQ(net.get(t.node("t1_0"))->oif_count(g), 0);
  EXPECT_EQ(net.get(t.node("root"))->oif_count(g), 0);
}

TEST(parking_lot_mcast, join_from_far_edge_grafts_every_chain_hop) {
  scheduler sched;
  network net(sched);
  const topology t = parking_lot(3, fast_link()).build(net);
  const node_id src = net.add_host("src");
  net.connect(src, t.node("r0"), fast_link());
  const node_id h = net.add_host("h");
  net.connect(t.node("r3"), h, fast_link());
  net.finalize_routing();
  const group_addr g{6000};
  net.register_group_source(g, src);

  net.get(t.node("r3"))->graft(g, net.next_hop(t.node("r3"), h));
  net.join_upstream(t.node("r3"), g);
  sched.run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(net.get(t.node("r" + std::to_string(i)))->oif_count(g), 1)
        << "r" << i;
  }
  net.get(h)->host_join(g);
  capture_agent sink(net, h);
  packet p;
  p.size_bytes = 64;
  p.dst = dest::to_group(g);
  net.get(src)->send(std::move(p));
  sched.run();
  EXPECT_EQ(sink.packets.size(), 1u);
}

}  // namespace
}  // namespace mcc::sim
