// Shared helpers for unit tests: packet capture agents and small topologies.
#ifndef MCC_TESTS_TEST_UTIL_H
#define MCC_TESTS_TEST_UTIL_H

#include <vector>

#include "sim/network.h"

namespace mcc::testing {

/// Agent that records every packet delivered to its node.
class capture_agent : public sim::agent {
 public:
  explicit capture_agent(sim::network& net, sim::node_id host) {
    net.get(host)->add_agent(this);
  }

  bool handle_packet(const sim::packet& p, sim::link*) override {
    packets.push_back(p);
    return consume;
  }

  std::vector<sim::packet> packets;
  bool consume = true;
};

/// Two hosts connected through two routers in a line:
///   h1 -- r1 -- r2 -- h2
struct line_topology {
  explicit line_topology(sim::scheduler& sched, double bps = 10e6,
                         sim::time_ns delay = sim::milliseconds(10))
      : net(sched) {
    h1 = net.add_host("h1");
    r1 = net.add_router("r1");
    r2 = net.add_router("r2");
    h2 = net.add_host("h2");
    sim::link_config cfg;
    cfg.bps = bps;
    cfg.delay = delay;
    net.connect(h1, r1, cfg);
    auto [m, mr] = net.connect(r1, r2, cfg);
    middle = m;
    middle_rev = mr;
    net.connect(r2, h2, cfg);
    net.finalize_routing();
  }

  sim::network net;
  sim::node_id h1, r1, r2, h2;
  sim::link* middle = nullptr;
  sim::link* middle_rev = nullptr;
};

/// A unicast packet with no protocol header.
inline sim::packet make_packet(int size, sim::node_id dst) {
  sim::packet p;
  p.size_bytes = size;
  p.dst = sim::dest::to_node(dst);
  return p;
}

}  // namespace mcc::testing

#endif  // MCC_TESTS_TEST_UTIL_H
