#include "crypto/key.h"
#include "crypto/oneway.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace mcc::crypto {
namespace {

TEST(group_key, xor_is_associative_and_commutative) {
  const group_key a{0x1234}, b{0xabcd}, c{0x5555};
  EXPECT_EQ(((a ^ b) ^ c), (a ^ (b ^ c)));
  EXPECT_EQ((a ^ b), (b ^ a));
}

TEST(group_key, xor_identity_and_self_inverse) {
  const group_key a{0xdeadbeef};
  EXPECT_EQ((a ^ zero_key), a);
  EXPECT_EQ((a ^ a), zero_key);
}

TEST(group_key, xor_assign_matches_binary_op) {
  group_key acc{0x1};
  acc ^= group_key{0xf0};
  EXPECT_EQ(acc, (group_key{0x1} ^ group_key{0xf0}));
}

TEST(group_key, mask_to_bits_truncates) {
  const group_key k{0xffff'ffff'ffff'ffffULL};
  EXPECT_EQ(mask_to_bits(k, 16).value, 0xffffu);
  EXPECT_EQ(mask_to_bits(k, 32).value, 0xffff'ffffULL);
  EXPECT_EQ(mask_to_bits(k, 64).value, k.value);
  EXPECT_EQ(mask_to_bits(k, 0).value, 0u);
}

TEST(group_key, masked_xor_stays_in_keyspace) {
  const group_key a = mask_to_bits(group_key{0x123456789abcdefULL}, 16);
  const group_key b = mask_to_bits(group_key{0xfedcba987654321ULL}, 16);
  EXPECT_EQ(((a ^ b).value >> 16), 0u);
}

TEST(group_key, hashable_in_std_containers) {
  std::set<std::uint64_t> values;
  std::hash<group_key> h;
  for (std::uint64_t i = 0; i < 100; ++i) {
    values.insert(h(group_key{i}));
  }
  EXPECT_GE(values.size(), 99u);  // essentially no collisions on small ints
}

TEST(oneway, deterministic) {
  EXPECT_EQ(oneway_mix(12345), oneway_mix(12345));
}

TEST(oneway, avalanche_on_single_bit_flip) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = oneway_mix(0x0123456789abcdefULL);
  const std::uint64_t b = oneway_mix(0x0123456789abcdefULL ^ 1);
  const int flipped = __builtin_popcountll(a ^ b);
  EXPECT_GE(flipped, 16);
  EXPECT_LE(flipped, 48);
}

TEST(oneway, compress_depends_on_every_part) {
  const std::array<group_key, 3> base = {group_key{1}, group_key{2},
                                         group_key{3}};
  const group_key all = oneway_compress({base.data(), base.size()});
  for (std::size_t i = 0; i < base.size(); ++i) {
    auto mutated = base;
    mutated[i].value ^= 0x8000;
    EXPECT_NE(oneway_compress({mutated.data(), mutated.size()}), all)
        << "part " << i;
  }
}

TEST(oneway, compress_depends_on_order) {
  const std::array<group_key, 2> ab = {group_key{0xa}, group_key{0xb}};
  const std::array<group_key, 2> ba = {group_key{0xb}, group_key{0xa}};
  EXPECT_NE(oneway_compress({ab.data(), ab.size()}),
            oneway_compress({ba.data(), ba.size()}));
}

TEST(oneway, interface_perturbation_separates_interfaces) {
  const group_key k{0xbeef};
  const group_key p1 = perturb_for_interface(k, 1);
  const group_key p2 = perturb_for_interface(k, 2);
  EXPECT_NE(p1, p2);
  EXPECT_NE(p1, k);
  // Deterministic per interface (receiver and router must agree).
  EXPECT_EQ(perturb_for_interface(k, 1), p1);
}

TEST(oneway, mix_has_no_trivial_fixed_point_at_small_nonzero_inputs) {
  // Zero is the mixer's only structural fixed point (multiplicative rounds
  // preserve it); key material is always drawn from non-zero nonces.
  EXPECT_EQ(oneway_mix(0), 0u);
  for (std::uint64_t x = 1; x < 64; ++x) {
    EXPECT_NE(oneway_mix(x), x);
  }
}

}  // namespace
}  // namespace mcc::crypto
