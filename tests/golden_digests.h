// Shared golden-digest machinery: the FNV-1a fold, the hashing packet sink,
// and the three pinned scenario digests (per-qdisc raw engine, pulse attack,
// adaptive pulse). golden_trace_test pins these against checked-in constants;
// cm_test re-runs the same worlds with the shared congestion manager on to
// prove the cm-off path (and the single-session cm-on path) is byte-identical.
//
// The digests are a contract about determinism, not about correctness: when
// an INTENTIONAL engine change shifts them, rerun the tests and copy the
// printed digests into the constants below, and say so in the PR.
#ifndef MCC_TESTS_GOLDEN_DIGESTS_H
#define MCC_TESTS_GOLDEN_DIGESTS_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "adversary/adversary.h"
#include "adversary/containment.h"
#include "crypto/prng.h"
#include "exp/testbed.h"
#include "sim/aqm.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "test_util.h"

namespace mcc::testing {

/// FNV-1a 64-bit, folded one 64-bit word at a time.
struct fnv1a {
  std::uint64_t h = 14695981039346656037ULL;
  void fold(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  [[nodiscard]] std::string hex() const {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
  }
};

/// Agent that folds every delivered packet into the digest.
class hashing_sink : public sim::agent {
 public:
  hashing_sink(sim::network& net, sim::node_id host, fnv1a& digest)
      : sched_(net.sched()), digest_(digest) {
    net.get(host)->add_agent(this);
  }

  bool handle_packet(const sim::packet& p, sim::link*) override {
    digest_.fold(static_cast<std::uint64_t>(sched_.now()));
    digest_.fold(p.uid);
    digest_.fold(static_cast<std::uint64_t>(p.src));
    digest_.fold(static_cast<std::uint64_t>(p.size_bytes));
    digest_.fold(p.ecn_marked ? 1 : 0);
    return true;
  }

 private:
  sim::scheduler& sched_;
  fnv1a& digest_;
};

/// The raw-engine scenario: two senders blast prng-shaped traffic
/// (exponential gaps, mixed sizes, every other packet ECN-capable) at ~2x
/// the bottleneck rate of a dumbbell whose bottleneck runs the given
/// discipline.
inline std::string run_digest(sim::qdisc d, sim::scheduler_config sched_cfg = {}) {
  sim::scheduler sched(sched_cfg);
  sim::network net(sched);
  const sim::node_id ha = net.add_host("ha");
  const sim::node_id hb = net.add_host("hb");
  const sim::node_id r1 = net.add_router("r1");
  const sim::node_id r2 = net.add_router("r2");
  const sim::node_id hc = net.add_host("hc");
  const sim::node_id hd = net.add_host("hd");

  sim::link_config access;
  access.bps = 10e6;
  access.delay = sim::milliseconds(1);
  sim::link_config bottleneck;
  bottleneck.bps = 1e6;
  bottleneck.delay = sim::milliseconds(5);
  bottleneck.queue_capacity_bytes = 15'000;
  bottleneck.aqm.discipline = d;
  bottleneck.aqm.seed = 7;
  net.connect(ha, r1, access);
  net.connect(hb, r1, access);
  net.connect(r1, r2, bottleneck);
  net.connect(r2, hc, access);
  net.connect(r2, hd, access);
  net.finalize_routing();

  fnv1a digest;
  hashing_sink sink_c(net, hc, digest);
  hashing_sink sink_d(net, hd, digest);

  crypto::prng rng(42);
  const struct {
    sim::node_id src;
    sim::node_id dst;
    std::uint64_t stream;
  } flows[] = {{ha, hc, 1}, {hb, hd, 2}};
  for (const auto& f : flows) {
    crypto::prng stream = rng.fork(f.stream);
    sim::time_ns t = 0;
    for (int i = 0; i < 1'200; ++i) {
      t += static_cast<sim::time_ns>(stream.uniform(1e6, 8e6));  // 1..8 ms
      const int size = static_cast<int>(stream.uniform_int(200, 1'400));
      const bool ecn = (i % 2) == 0;
      const sim::node_id src = f.src;
      const sim::node_id dst = f.dst;
      sched.at(t, [&net, src, dst, size, ecn] {
        sim::packet p = mcc::testing::make_packet(size, dst);
        p.ecn_capable = ecn;
        net.get(src)->send(std::move(p));
      });
    }
  }
  sched.run();

  // Fold the bottleneck's final counters: drops that never reach a sink must
  // still shift the digest.
  const sim::link_stats& bn = net.next_hop(r1, hc)->stats();
  digest.fold(bn.enqueued);
  digest.fold(bn.dropped);
  digest.fold(bn.aqm_dropped);
  digest.fold(bn.ecn_marked);
  digest.fold(static_cast<std::uint64_t>(bn.bytes_dropped));
  digest.fold(static_cast<std::uint64_t>(bn.max_queued_bytes));
  return digest.hex();
}

/// Checked-in per-qdisc digests. Regenerate by running golden_trace_test and
/// copying the values printed in the failure messages.
inline const char* golden(sim::qdisc d) {
  switch (d) {
    case sim::qdisc::droptail: return "0x4b17afea52a0332c";
    case sim::qdisc::ecn_threshold: return "0xd85981df81dd339c";
    case sim::qdisc::red: return "0xd5968bba4465239e";
    case sim::qdisc::codel: return "0xfd85f351064fd636";
  }
  return "";
}

/// Checked-in FLID-DS attack-timeline digests (scenarios below).
inline constexpr const char* kPulseAttackGolden = "0xfd1bc9bde74fb696";
inline constexpr const char* kAdaptivePulseGolden = "0xa925fe56e16b02de";

/// A pulse_inflate attack on a FLID-DS dumbbell, digesting the full attack
/// timeline — both receivers' subscription level histories, byte totals and
/// slot counters, the SIGMA edge counters, and the bottleneck counters.
/// Everything folded is integral, so the digest is identical in Release and
/// sanitizer builds. `tweak` lets callers flip testbed knobs (cm_test turns
/// the shared congestion manager on) while keeping the world identical.
inline std::string run_pulse_attack_digest(
    sim::scheduler_config sched_cfg = {},
    const std::function<void(exp::dumbbell_config&)>& tweak = {}) {
  exp::dumbbell_config cfg;
  cfg.sched = sched_cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 5;
  if (tweak) tweak(cfg);
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = mcc::adversary::pulse_inflate(
      sim::seconds(15.0), sim::seconds(4.0), sim::seconds(4.0));
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(60.0));

  fnv1a digest;
  for (flid::flid_receiver* r : {&rogue.receiver(), &honest.receiver()}) {
    digest.fold(static_cast<std::uint64_t>(r->monitor().total_bytes()));
    digest.fold(r->stats().packets);
    digest.fold(r->stats().slots_congested);
    digest.fold(r->stats().upgrades);
    digest.fold(r->stats().downgrades);
    for (const auto& [t, lvl] : r->level_history()) {
      digest.fold(static_cast<std::uint64_t>(t));
      digest.fold(static_cast<std::uint64_t>(lvl));
    }
  }
  const auto& sg = d.sigma().stats();
  digest.fold(sg.subscribe_msgs);
  digest.fold(sg.valid_keys);
  digest.fold(sg.invalid_keys);
  digest.fold(sg.denied);
  digest.fold(sg.grace_forwards);
  digest.fold(sg.session_joins);
  digest.fold(sg.unsubscribes);
  const sim::link_stats& bn = d.bottleneck()->stats();
  digest.fold(bn.enqueued);
  digest.fold(bn.dropped);
  digest.fold(bn.delivered);
  digest.fold(static_cast<std::uint64_t>(bn.bytes_dropped));
  return digest.hex();
}

/// The measurement-driven pulse on the same FLID-DS dumbbell. The closed
/// loop (probe -> measured enforcement lag -> tuned phases) is pure feedback
/// logic, so its whole timeline is pinnable the same way; drift here means
/// the adaptation law changed.
inline std::string run_adaptive_pulse_digest(
    const std::function<void(exp::dumbbell_config&)>& tweak = {}) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 5;
  if (tweak) tweak(cfg);
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack =
      mcc::adversary::adaptive_pulse(sim::seconds(15.0), sim::seconds(5.0));
  auto& rogue = d.add_flid_session(exp::flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(exp::flid_mode::ds,
                                    {exp::receiver_options{}});
  d.run_until(sim::seconds(60.0));

  fnv1a digest;
  for (flid::flid_receiver* r : {&rogue.receiver(), &honest.receiver()}) {
    digest.fold(static_cast<std::uint64_t>(r->monitor().total_bytes()));
    digest.fold(r->stats().packets);
    digest.fold(r->stats().slots_congested);
    for (const auto& [t, lvl] : r->level_history()) {
      digest.fold(static_cast<std::uint64_t>(t));
      digest.fold(static_cast<std::uint64_t>(lvl));
    }
  }
  const auto& sg = d.sigma().stats();
  digest.fold(sg.subscribe_msgs);
  digest.fold(sg.valid_keys);
  digest.fold(sg.invalid_keys);
  digest.fold(sg.denied);
  digest.fold(sg.grace_forwards);
  digest.fold(sg.session_joins);
  digest.fold(sg.unsubscribes);
  // The attacker's cost counters are part of the pinned contract: the
  // adaptation law's spend must not drift silently either.
  const mcc::adversary::attacker_cost cost =
      mcc::adversary::measure_cost(rogue.receiver());
  digest.fold(cost.ctrl_msgs);
  digest.fold(cost.useless_keys);
  digest.fold(cost.cutoff_slots);
  const sim::link_stats& bn = d.bottleneck()->stats();
  digest.fold(bn.enqueued);
  digest.fold(bn.dropped);
  digest.fold(bn.delivered);
  return digest.hex();
}

}  // namespace mcc::testing

#endif  // MCC_TESTS_GOLDEN_DIGESTS_H
