// Conformance and containment tests for the population subsystem.
//
// The headline contract: an aggregate of N honest members produces EXACTLY
// the router-visible subscription timeline of N individually simulated
// honest receivers — checked by running both worlds on every topology in
// both protocol modes and comparing the delegate's level history against the
// ABR-consolidated histories of the individual receivers. Alongside it: the
// O(interfaces)-not-O(receivers) state invariant, deterministic churn, and
// `--jobs` byte-identity of a population sweep.
#include "population/population.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "exp/sweep.h"
#include "exp/testbed.h"
#include "sim/stats.h"

namespace mcc::population {
namespace {

flid::flid_config session_config() {
  flid::flid_config cfg;
  cfg.num_groups = 10;
  cfg.base_rate_bps = 100e3;
  cfg.rate_multiplier = 1.5;
  cfg.packet_bytes = 576;
  cfg.slot_duration = sim::milliseconds(250);
  return cfg;
}

// ---------------------------------------------------------------------------
// sim::consolidate_level_timelines — the ABR merge primitive the conformance
// comparison is stated in.
// ---------------------------------------------------------------------------

TEST(consolidate_timelines, single_timeline_is_identity) {
  const sim::level_timeline a = {{0, 1}, {10, 2}, {20, 1}};
  EXPECT_EQ(sim::consolidate_level_timelines({&a}), a);
}

TEST(consolidate_timelines, carries_the_member_maximum) {
  const sim::level_timeline a = {{0, 1}, {10, 3}, {30, 1}};
  const sim::level_timeline b = {{0, 1}, {20, 2}};
  const sim::level_timeline want = {{0, 1}, {10, 3}, {30, 2}};
  EXPECT_EQ(sim::consolidate_level_timelines({&a, &b}), want);
}

TEST(consolidate_timelines, drops_changes_hidden_below_the_max) {
  // b's excursion to 2 while a holds 3 must not emit a change.
  const sim::level_timeline a = {{0, 3}};
  const sim::level_timeline b = {{0, 1}, {5, 2}, {9, 1}};
  const sim::level_timeline want = {{0, 3}};
  EXPECT_EQ(sim::consolidate_level_timelines({&a, &b}), want);
}

TEST(consolidate_timelines, simultaneous_changes_merge_into_one_entry) {
  const sim::level_timeline a = {{0, 2}, {10, 1}};
  const sim::level_timeline b = {{0, 1}, {10, 1}, {12, 3}};
  const sim::level_timeline want = {{0, 2}, {10, 1}, {12, 3}};
  EXPECT_EQ(sim::consolidate_level_timelines({&a, &b}), want);
}

// ---------------------------------------------------------------------------
// edge_aggregate mechanics (driven directly, no network)
// ---------------------------------------------------------------------------

TEST(edge_aggregate, state_bytes_independent_of_member_count) {
  sim::scheduler sched;
  population_config small;
  small.initial_members = 8;
  population_config huge;
  huge.initial_members = 1'000'000;
  edge_aggregate a(sched, session_config(), small);
  edge_aggregate b(sched, session_config(), huge);
  // The whole point of the subsystem: a million members cost the same bytes
  // as eight.
  EXPECT_EQ(a.state_bytes(), b.state_bytes());
  EXPECT_EQ(b.member_count(), 1'000'000);
}

TEST(edge_aggregate, max_demand_puts_everyone_on_the_top_layer) {
  sim::scheduler sched;
  population_config cfg;
  cfg.initial_members = 1000;
  edge_aggregate agg(sched, session_config(), cfg);
  EXPECT_EQ(agg.demand_cap(), 10);
  EXPECT_EQ(agg.demand_histogram()[10], 1000);
}

TEST(edge_aggregate, demand_histogram_sums_to_members) {
  sim::scheduler sched;
  for (const auto kind : {demand_config::kind::uniform,
                          demand_config::kind::zipf}) {
    population_config cfg;
    cfg.initial_members = 100'000;
    cfg.demand.k = kind;
    edge_aggregate agg(sched, session_config(), cfg);
    std::int64_t total = 0;
    for (int d = 1; d <= 10; ++d) total += agg.demand_histogram()[d];
    EXPECT_EQ(total, 100'000);
    EXPECT_EQ(agg.member_count(), 100'000);
  }
}

TEST(edge_aggregate, zipf_demand_skews_toward_the_base_layer) {
  sim::scheduler sched;
  population_config cfg;
  cfg.initial_members = 100'000;
  cfg.demand.k = demand_config::kind::zipf;
  cfg.demand.zipf_s = 1.1;
  edge_aggregate agg(sched, session_config(), cfg);
  const auto& h = agg.demand_histogram();
  EXPECT_GT(h[1], h[5]);
  EXPECT_GT(h[5], h[10]);
}

TEST(edge_aggregate, flash_crowd_joins_and_leaves_on_schedule) {
  sim::scheduler sched;
  population_config cfg;
  cfg.initial_members = 1000;
  cfg.churn.flash_at = sim::seconds(1.0);
  cfg.churn.flash_members = 1'000'000;
  cfg.churn.flash_leave_at = sim::seconds(2.0);
  edge_aggregate agg(sched, session_config(), cfg);

  const auto tick = [&](double at_s) {
    edge_aggregate::slot_view v;
    v.now = sim::seconds(at_s);
    v.granted = 10;
    agg.on_slot(v);
  };
  tick(0.5);
  EXPECT_EQ(agg.member_count(), 1000);
  tick(1.0);
  EXPECT_EQ(agg.member_count(), 1'001'000);
  EXPECT_EQ(agg.stats().flash_arrivals, 1'000'000u);
  tick(1.5);
  EXPECT_EQ(agg.member_count(), 1'001'000);
  tick(2.0);
  // No other churn: the whole cohort survives to leave together.
  EXPECT_EQ(agg.member_count(), 1000);
  EXPECT_EQ(agg.stats().flash_departures, 1'000'000u);
  EXPECT_EQ(agg.stats().peak_members, 1'001'000);
}

TEST(edge_aggregate, poisson_arrivals_and_hazard_departures_flow) {
  sim::scheduler sched;
  population_config cfg;
  cfg.initial_members = 10'000;
  cfg.churn.arrival_per_sec = 100.0;
  cfg.churn.leave_per_sec = 0.01;  // ~1%/s of 10k = ~100/s: near equilibrium
  edge_aggregate agg(sched, session_config(), cfg);
  for (int i = 0; i < 400; ++i) {  // 100 simulated seconds of 250 ms slots
    edge_aggregate::slot_view v;
    v.now = i * sim::milliseconds(250);
    v.granted = 10;
    agg.on_slot(v);
  }
  EXPECT_GT(agg.stats().arrivals, 0u);
  EXPECT_GT(agg.stats().departures, 0u);
  // Near-equilibrium churn: the population stays the same order of magnitude.
  EXPECT_GT(agg.member_count(), 5'000);
  EXPECT_LT(agg.member_count(), 20'000);
}

TEST(edge_aggregate, churn_is_deterministic_per_seed) {
  const auto run = [](std::uint64_t seed) {
    sim::scheduler sched;
    population_config cfg;
    cfg.initial_members = 5000;
    cfg.demand.k = demand_config::kind::zipf;
    cfg.churn.arrival_per_sec = 200.0;
    cfg.churn.leave_per_sec = 0.05;
    cfg.seed = seed;
    edge_aggregate agg(sched, session_config(), cfg);
    for (int i = 0; i < 200; ++i) {
      edge_aggregate::slot_view v;
      v.now = i * sim::milliseconds(250);
      v.granted = (i % 11) + 1;  // exercise partial grants in accounting
      v.congested = i % 7 == 0;
      agg.on_slot(v);
    }
    return std::make_tuple(agg.demand_histogram(), agg.member_count(),
                           agg.stats().arrivals, agg.stats().departures,
                           agg.total_member_bytes());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(edge_aggregate, accounting_charges_min_of_grant_and_demand) {
  sim::scheduler sched;
  const flid::flid_config session = session_config();
  population_config cfg;
  cfg.initial_members = 10;  // demand max: all ten members want layer 10
  edge_aggregate agg(sched, session, cfg);
  edge_aggregate::slot_view v;
  v.granted = 3;
  agg.on_slot(v);
  const double expect_bytes = 10.0 * session.cumulative_rate_bps(3) / 8.0 *
                              sim::to_seconds(session.slot_duration);
  EXPECT_NEAR(agg.total_member_bytes(), expect_bytes, 1e-6);
}

TEST(edge_aggregate, rejects_bad_configs) {
  sim::scheduler sched;
  population_config cfg;
  cfg.initial_members = -1;
  EXPECT_THROW(edge_aggregate(sched, session_config(), cfg),
               util::invariant_error);
  cfg.initial_members = 1;
  cfg.churn.arrival_per_sec = -1.0;
  EXPECT_THROW(edge_aggregate(sched, session_config(), cfg),
               util::invariant_error);
}

// ---------------------------------------------------------------------------
// Conformance: aggregate of N == N individual honest receivers, as seen by
// the routers, on every topology and in both protocol worlds.
// ---------------------------------------------------------------------------

exp::testbed_config conformance_config(const std::string& topo,
                                       std::uint64_t seed) {
  if (topo == "dumbbell") {
    exp::dumbbell_config cfg;
    cfg.seed = seed;
    return exp::dumbbell(cfg);
  }
  if (topo == "parking_lot") {
    exp::parking_lot_config cfg;
    cfg.seed = seed;
    return exp::parking_lot(cfg);
  }
  if (topo == "star") {
    exp::star_config cfg;
    cfg.seed = seed;
    return exp::star(cfg);
  }
  exp::tree_config cfg;
  cfg.seed = seed;
  return exp::balanced_tree(cfg);
}

sim::level_timeline individual_consolidated(const std::string& topo,
                                            exp::flid_mode mode, int n,
                                            sim::time_ns until) {
  exp::testbed d(conformance_config(topo, 5));
  auto& s = d.add_flid_session(
      mode, std::vector<exp::receiver_options>(static_cast<std::size_t>(n)));
  d.run_until(until);
  std::vector<const sim::level_timeline*> timelines;
  for (auto& r : s.receivers) timelines.push_back(&r->level_history());
  return sim::consolidate_level_timelines(timelines);
}

sim::level_timeline aggregate_timeline(const std::string& topo,
                                       exp::flid_mode mode, int members,
                                       sim::time_ns until) {
  exp::testbed d(conformance_config(topo, 5));
  auto& s = d.add_flid_session(mode, {});
  exp::population_options opts;
  opts.population.initial_members = members;  // demand: max; churn: none
  auto& pop = d.add_population(s, opts);
  d.run_until(until);
  return pop.delegate->level_history();
}

class population_conformance
    : public ::testing::TestWithParam<const char*> {};

TEST_P(population_conformance, aggregate_matches_individual_receivers) {
  const std::string topo = GetParam();
  const sim::time_ns until = sim::seconds(40.0);
  for (const exp::flid_mode mode : {exp::flid_mode::dl, exp::flid_mode::ds}) {
    const auto individuals = individual_consolidated(topo, mode, 4, until);
    const auto aggregate = aggregate_timeline(topo, mode, 4, until);
    // The 1 Mbps contested path cannot carry the full 10-layer demand, so a
    // vacuous flat-at-base timeline would indicate a broken run.
    ASSERT_GE(individuals.size(), 3u)
        << topo << " produced no subscription dynamics";
    EXPECT_EQ(aggregate, individuals)
        << topo << "/" << (mode == exp::flid_mode::dl ? "dl" : "ds");
  }
}

INSTANTIATE_TEST_SUITE_P(all_topologies, population_conformance,
                         ::testing::Values("dumbbell", "parking_lot", "star",
                                           "tree"));

// ---------------------------------------------------------------------------
// Testbed integration: coexistence with individually simulated adversaries,
// bounded edge control-plane state, and --jobs byte-identity.
// ---------------------------------------------------------------------------

TEST(population_testbed, adversary_and_aggregate_coexist_at_one_edge) {
  exp::dumbbell_config cfg;
  cfg.seed = 9;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options attacker;
  attacker.attack = adversary::inflate_once(sim::seconds(15.0));
  auto& s = d.add_flid_session(exp::flid_mode::ds, {attacker});
  exp::population_options opts;
  opts.population.initial_members = 100'000;
  auto& pop = d.add_population(s, opts);
  d.run_until(sim::seconds(40.0));

  EXPECT_GT(pop.aggregate->stats().slots, 100u);
  EXPECT_GT(pop.aggregate->total_member_bytes(), 0.0);
  // One delegate + one attacker at the edge: the IGMP control plane stays
  // bounded by slots x groups, nowhere near the member count.
  const auto& igmp = d.igmp("r").stats();
  EXPECT_LT(igmp.joins + igmp.leaves, 5'000u);
  // Both parties are live: the attacker got packets and so did the members.
  EXPECT_GT(s.receiver(0).stats().packets, 0u);
  EXPECT_GT(pop.delegate->stats().packets, 0u);
}

TEST(population_testbed, add_population_after_run_is_rejected) {
  exp::testbed d(exp::dumbbell({}));
  auto& s = d.add_flid_session(exp::flid_mode::dl, {});
  d.run_until(sim::seconds(1.0));
  exp::population_options opts;
  opts.population.initial_members = 10;
  EXPECT_THROW(d.add_population(s, opts), util::invariant_error);
}

TEST(population_sweep, jobs_parallelism_is_byte_identical) {
  // A miniature fig_flash_crowd cell: population + flash crowd + hidden
  // adversary, swept over three population sizes. The JSON document must be
  // byte-equal between serial and 4-way parallel execution.
  const std::int64_t pops[] = {100, 1000, 10000};
  const auto run = [&](int jobs) {
    exp::sweep_options opts;
    opts.jobs = jobs;
    opts.base_seed = 11;
    const auto rows = exp::run_sweep(
        {0.0, 1.0, 2.0}, opts, [&](const exp::sweep_point& pt) {
          exp::dumbbell_config cfg;
          cfg.seed = pt.seed;
          exp::testbed d(exp::dumbbell(cfg));
          exp::receiver_options attacker;
          attacker.attack = adversary::inflate_once(sim::seconds(8.0));
          auto& s = d.add_flid_session(exp::flid_mode::ds, {attacker});
          exp::population_options popts;
          popts.population.initial_members = pops[pt.index];
          popts.population.demand.k = demand_config::kind::zipf;
          popts.population.churn.arrival_per_sec = 50.0;
          popts.population.churn.leave_per_sec = 0.01;
          popts.population.churn.flash_at = sim::seconds(5.0);
          popts.population.churn.flash_members = pops[pt.index];
          auto& pop = d.add_population(s, popts);
          d.run_until(sim::seconds(20.0));
          exp::sweep_row row;
          row.label = "pop" + std::to_string(pops[pt.index]);
          row.value("peak_members",
                    static_cast<double>(pop.aggregate->stats().peak_members));
          row.value("member_kbps", pop.aggregate->member_monitor().average_kbps(
                                       0, sim::seconds(20.0)));
          row.value("state_bytes",
                    static_cast<double>(pop.aggregate->state_bytes()));
          row.value("events",
                    static_cast<double>(d.sched().executed_events()));
          row.trace("member_kbps_series",
                    pop.aggregate->member_monitor().series_kbps());
          return row;
        });
    std::ostringstream os;
    exp::write_json(os, "mini_flash_crowd", rows);
    return os.str();
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace mcc::population
