// Tests for the threshold DELTA instantiation (Shamir-based, section 3.1.2).
#include "core/delta_threshold.h"

#include <gtest/gtest.h>

#include <vector>

namespace mcc::core {
namespace {

std::vector<crypto::shamir_share> collect(const delta_threshold_sender& s,
                                          int level, int n, int take) {
  std::vector<crypto::shamir_share> out;
  for (int i = 0; i < take && i < n; ++i) out.push_back(s.share_for(level, i));
  return out;
}

TEST(shares_required, matches_threshold_arithmetic) {
  EXPECT_EQ(shares_required(0.25, 100), 75);
  EXPECT_EQ(shares_required(0.25, 4), 3);
  EXPECT_EQ(shares_required(0.0, 10), 10);
  EXPECT_EQ(shares_required(0.99, 10), 1);
  EXPECT_EQ(shares_required(0.5, 1), 1);
}

TEST(shares_required, rejects_bad_inputs) {
  EXPECT_THROW((void)shares_required(1.0, 10), util::invariant_error);
  EXPECT_THROW((void)shares_required(-0.1, 10), util::invariant_error);
  EXPECT_THROW((void)shares_required(0.25, 0), util::invariant_error);
}

TEST(threshold_config, uniform_fills_all_levels) {
  const auto cfg = threshold_config::uniform(5, 0.25);
  for (int g = 1; g <= 5; ++g) {
    EXPECT_DOUBLE_EQ(cfg.loss_threshold[static_cast<std::size_t>(g)], 0.25);
  }
}

TEST(threshold_config, decaying_lowers_higher_levels) {
  // MLDA/WEBRC style: higher subscription levels tolerate less loss.
  const auto cfg = threshold_config::decaying(5, 0.25, 0.5);
  for (int g = 2; g <= 5; ++g) {
    EXPECT_LT(cfg.loss_threshold[static_cast<std::size_t>(g)],
              cfg.loss_threshold[static_cast<std::size_t>(g - 1)]);
  }
}

TEST(delta_threshold, receiver_at_loss_threshold_reconstructs) {
  // RLM default: 25% loss tolerated. 20 packets, k = 15.
  auto cfg = threshold_config::uniform(3, 0.25);
  delta_threshold_sender sender(cfg, 42);
  std::vector<int> counts = {0, 20, 20, 20};
  sender.begin_slot(0, counts);
  EXPECT_EQ(sender.threshold_for(2), 15);

  const auto shares = collect(sender, 2, 20, 15);
  const auto key = reconstruct_threshold_key(shares, 15);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, *sender.key_for(0 + 2, 2));
}

TEST(delta_threshold, receiver_above_loss_threshold_fails) {
  auto cfg = threshold_config::uniform(3, 0.25);
  delta_threshold_sender sender(cfg, 43);
  std::vector<int> counts = {0, 20, 20, 20};
  sender.begin_slot(0, counts);
  // Only 14 of 20 packets (30% loss > 25% threshold).
  const auto shares = collect(sender, 2, 20, 14);
  EXPECT_FALSE(reconstruct_threshold_key(shares, 15).has_value());
}

TEST(delta_threshold, below_threshold_shares_give_wrong_key) {
  auto cfg = threshold_config::uniform(2, 0.25);
  delta_threshold_sender sender(cfg, 44);
  std::vector<int> counts = {0, 16, 16};
  sender.begin_slot(0, counts);
  const int k = sender.threshold_for(1);
  auto shares = collect(sender, 1, 16, k - 1);
  // Forcing interpolation with k-1 shares at the wrong degree cannot recover
  // the true key (information-theoretic property of Shamir sharing).
  const auto forged = reconstruct_threshold_key(shares, k - 1);
  ASSERT_TRUE(forged.has_value());
  EXPECT_NE(*forged, *sender.key_for(2, 1));
}

TEST(delta_threshold, any_k_subset_works) {
  auto cfg = threshold_config::uniform(1, 0.5);
  delta_threshold_sender sender(cfg, 45);
  std::vector<int> counts = {0, 8};
  sender.begin_slot(0, counts);
  const int k = sender.threshold_for(1);  // 4 of 8
  ASSERT_EQ(k, 4);
  const auto key = *sender.key_for(2, 1);
  // Take shares 1, 3, 5, 7 (an arbitrary spread subset).
  std::vector<crypto::shamir_share> subset = {
      sender.share_for(1, 1), sender.share_for(1, 3), sender.share_for(1, 5),
      sender.share_for(1, 7)};
  const auto got = reconstruct_threshold_key(subset, k);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, key);
}

TEST(delta_threshold, per_level_thresholds_differ) {
  auto cfg = threshold_config::decaying(3, 0.4, 0.5);
  delta_threshold_sender sender(cfg, 46);
  std::vector<int> counts = {0, 10, 10, 10};
  sender.begin_slot(0, counts);
  EXPECT_EQ(sender.threshold_for(1), 6);   // 40% loss tolerated
  EXPECT_EQ(sender.threshold_for(2), 8);   // 20%
  EXPECT_EQ(sender.threshold_for(3), 9);   // 10%
}

TEST(delta_threshold, keys_rotate_per_slot) {
  auto cfg = threshold_config::uniform(1, 0.25);
  delta_threshold_sender sender(cfg, 47);
  std::vector<int> counts = {0, 10};
  sender.begin_slot(0, counts);
  const auto k0 = *sender.key_for(2, 1);
  sender.begin_slot(1, counts);
  const auto k1 = *sender.key_for(3, 1);
  EXPECT_NE(k0, k1);
}

TEST(delta_threshold, unknown_slot_or_level_returns_nothing) {
  auto cfg = threshold_config::uniform(2, 0.25);
  delta_threshold_sender sender(cfg, 48);
  std::vector<int> counts = {0, 5, 5};
  sender.begin_slot(0, counts);
  EXPECT_FALSE(sender.key_for(99, 1).has_value());
  EXPECT_FALSE(sender.key_for(2, 0).has_value());
  EXPECT_FALSE(sender.key_for(2, 3).has_value());
}

struct threshold_case {
  double threshold;
  int n;
  int received;
};

class threshold_sweep : public ::testing::TestWithParam<threshold_case> {};

TEST_P(threshold_sweep, reconstruction_succeeds_iff_loss_within_threshold) {
  const auto [threshold, n, received] = GetParam();
  auto cfg = threshold_config::uniform(1, threshold);
  delta_threshold_sender sender(
      cfg, static_cast<std::uint64_t>(n * 1000 + received));
  std::vector<int> counts = {0, n};
  sender.begin_slot(0, counts);
  const int k = sender.threshold_for(1);
  const auto shares = collect(sender, 1, n, received);
  const auto key = reconstruct_threshold_key(shares, k);
  if (received >= k) {
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, *sender.key_for(2, 1));
  } else {
    EXPECT_FALSE(key.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    loss_grid, threshold_sweep,
    ::testing::Values(threshold_case{0.25, 20, 20},
                      threshold_case{0.25, 20, 15},
                      threshold_case{0.25, 20, 14},
                      threshold_case{0.25, 20, 0},
                      threshold_case{0.5, 10, 5}, threshold_case{0.5, 10, 4},
                      threshold_case{0.1, 30, 27}, threshold_case{0.1, 30, 26},
                      threshold_case{0.0, 8, 8}, threshold_case{0.0, 8, 7}));

}  // namespace
}  // namespace mcc::core
