// FLID-DS integration: the protected protocol must behave like FLID-DL for
// honest receivers (Requirement 4) while DELTA+SIGMA wiring stays invisible.
#include "core/flid_ds.h"

#include <gtest/gtest.h>

#include "exp/testbed.h"

namespace mcc::core {
namespace {

using exp::dumbbell;
using exp::testbed;
using exp::dumbbell_config;
using exp::flid_mode;
using exp::receiver_options;

TEST(flid_ds, sender_bundle_wires_hook_and_tagging) {
  dumbbell_config cfg;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  EXPECT_NE(session.ds.delta, nullptr);
  EXPECT_NE(session.ds.emitter, nullptr);
  EXPECT_TRUE(d.net().is_sigma_protected(session.config.group(1)));
  EXPECT_TRUE(
      d.net().is_sigma_protected(session.config.group(session.config.num_groups)));
}

TEST(flid_ds, honest_receiver_matches_dl_throughput) {
  // Same bottleneck, one FLID-DL run and one FLID-DS run: average
  // throughputs must be comparable (paper Figure 8(c)).
  double dl_kbps;
  double ds_kbps;
  {
    dumbbell_config cfg;
    cfg.bottleneck_bps = 250e3;
    testbed d(dumbbell(cfg));
    auto& s = d.add_flid_session(flid_mode::dl, {receiver_options{}});
    d.run_until(sim::seconds(200.0));
    dl_kbps = s.receiver().monitor().average_kbps(sim::seconds(50.0),
                                                  sim::seconds(200.0));
  }
  {
    dumbbell_config cfg;
    cfg.bottleneck_bps = 250e3;
    testbed d(dumbbell(cfg));
    auto& s = d.add_flid_session(flid_mode::ds, {receiver_options{}});
    d.run_until(sim::seconds(200.0));
    ds_kbps = s.receiver().monitor().average_kbps(sim::seconds(50.0),
                                                  sim::seconds(200.0));
  }
  EXPECT_GT(dl_kbps, 100.0);
  EXPECT_GT(ds_kbps, 100.0);
  EXPECT_NEAR(ds_kbps, dl_kbps, 0.35 * dl_kbps);
}

TEST(flid_ds, ds_overhead_stays_small) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  auto& s = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(100.0));
  const auto& em = s.ds.emitter->stats();
  const auto& snd = s.sender->stats();
  ASSERT_GT(snd.data_bytes, 0);
  const double sigma_ratio =
      static_cast<double>(em.ctrl_bytes) / static_cast<double>(snd.data_bytes);
  // Paper Figure 9: SIGMA overhead under 0.6% of data traffic. Our control
  // packets carry simulator framing, so allow some slack — but the order of
  // magnitude must hold.
  EXPECT_LT(sigma_ratio, 0.05);
}

TEST(flid_ds, misbehaving_receiver_before_attack_behaves_honestly) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  receiver_options opt;
  opt.inflate = true;
  opt.inflate_at = sim::seconds(1e6);  // never triggers in this run
  auto& s = d.add_flid_session(flid_mode::ds, {opt});
  d.run_until(sim::seconds(60.0));
  EXPECT_EQ(s.receiver().level(), s.config.num_groups);
  EXPECT_EQ(d.sigma().stats().invalid_keys, 0u);
}

TEST(flid_ds, replay_attack_is_rejected) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 250e3;  // congested: honest level ~3
  testbed d(dumbbell(cfg));
  receiver_options attacker;
  attacker.inflate = true;
  attacker.inflate_at = sim::seconds(30.0);
  attacker.attack_keys = misbehaving_sigma_strategy::key_mode::replay;
  auto& s = d.add_flid_session(flid_mode::ds, {attacker});
  d.run_until(sim::seconds(120.0));
  // Replayed (stale-slot) keys never validate: invalid submissions pile up
  // and throughput stays at the fair share.
  EXPECT_GT(d.sigma().stats().invalid_keys, 0u);
  const double after = s.receiver().monitor().average_kbps(
      sim::seconds(60.0), sim::seconds(120.0));
  EXPECT_LT(after, 300.0);
}

TEST(flid_ds, interface_keying_roundtrip_when_both_sides_enabled) {
  // Collusion countermeasure: receiver perturbs its keys, router validates
  // the perturbed image — an honest receiver still works.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  d.sigma().set_interface_keying(true);
  auto strategy = std::make_unique<honest_sigma_strategy>();
  strategy->set_interface_keying(true);

  flid::flid_config fc = d.default_flid_config(flid_mode::ds);
  fc.session_id = 77;
  fc.group_addr_base = 30'000;
  const auto sender_host = d.attach_host("if_src", "l");
  flid::flid_sender sender(d.net(), sender_host, fc, 42);
  auto ds = make_flid_ds_sender(d.net(), sender_host, sender, 43);
  sender.start(0);

  const auto rcv_host = d.attach_host("if_rcv", "r");
  flid::flid_receiver receiver(d.net(), rcv_host, d.router("r"), fc,
                               std::move(strategy));
  receiver.start(0);
  d.run_until(sim::seconds(60.0));
  EXPECT_GE(receiver.level(), 5);
  EXPECT_GT(d.sigma().stats().valid_keys, 0u);
}

TEST(flid_ds, interface_keying_blocks_unperturbed_keys) {
  // Receiver does NOT perturb; router expects perturbed keys -> every
  // submission is invalid and the receiver is repeatedly cut off. This is
  // exactly what a colluder replaying another interface's keys experiences.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  d.sigma().set_interface_keying(true);
  auto& s = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(30.0));
  EXPECT_GT(d.sigma().stats().invalid_keys, 0u);
  EXPECT_LT(s.receiver().level(), s.config.num_groups);
}

}  // namespace
}  // namespace mcc::core
