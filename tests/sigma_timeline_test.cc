// The Figure-2 timeline: keys distributed during slot s guard access during
// slot s + 2, and the grace machinery bridges exactly the gap a newly joined
// receiver faces.
#include <gtest/gtest.h>

#include "core/delta_layered.h"
#include "core/flid_ds.h"
#include "core/sigma_emitter.h"
#include "exp/testbed.h"

namespace mcc::core {
namespace {

using exp::dumbbell;
using exp::testbed;
using exp::dumbbell_config;
using exp::flid_mode;
using exp::receiver_options;

TEST(sigma_timeline, delta_keys_target_slot_plus_two) {
  delta_layered_sender sender(1, 4, 16, 5);
  std::vector<int> counts = {0, 3, 3, 3, 3};
  sender.begin_slot(17, 0, counts);
  EXPECT_EQ(sender.keys_for(17), nullptr);
  EXPECT_EQ(sender.keys_for(18), nullptr);
  const delta_slot_keys* k = sender.keys_for(19);
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->target_slot, 19);
}

TEST(sigma_timeline, emitter_announces_target_slot_plus_two) {
  sim::scheduler sched;
  sim::network net(sched);
  const auto src = net.add_host("src");
  const auto r = net.add_router("r");
  net.connect(src, r, sim::link_config{});
  net.finalize_routing();
  const std::vector<sim::group_addr> groups = {sim::group_addr{1},
                                               sim::group_addr{2}};
  net.register_group_source(groups[0], src);

  sigma_ctrl_emitter emitter(net, src, groups, sim::milliseconds(250), 16);
  delta_layered_sender delta(1, 2, 16, 5);
  emitter.attach(delta);

  // Capture ctrl packets at the router.
  struct ctrl_capture : sim::agent {
    bool handle_packet(const sim::packet& p, sim::link*) override {
      if (const auto* c = sim::header_as<sim::sigma_ctrl>(p)) {
        seen.push_back(*c);
      }
      return false;
    }
    std::vector<sim::sigma_ctrl> seen;
  } capture;
  net.get(r)->set_alert_interceptor(&capture);
  // The router must be grafted for the minimal group to receive specials.
  // (Here ctrl packets reach the router's alert hook regardless of local
  // interfaces because the router is on the unicast path.)
  net.get(r)->graft(groups[0], nullptr);

  sched.at(0, [&] {
    std::vector<int> counts = {0, 2, 2};
    delta.begin_slot(0, 0, counts);
  });
  sched.run_until(sim::milliseconds(400));
  ASSERT_FALSE(capture.seen.empty());
  for (const auto& c : capture.seen) {
    EXPECT_EQ(c.emitted_slot, 0);
    EXPECT_EQ(c.target_slot, key_lead_slots);
  }
}

TEST(sigma_timeline, receiver_keys_become_effective_two_slots_later) {
  // End-to-end: an honest FLID-DS receiver must experience no interruption —
  // every slot's packets are forwarded either under grace (first 3 tag
  // slots) or under an authorization earned exactly two slots earlier.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(30.0));
  auto& r = session.receiver();
  // No interruption: the receiver never observed a congested (lossy) slot.
  EXPECT_EQ(r.stats().slots_congested, 0u);
  EXPECT_EQ(r.level(), session.config.num_groups);
  EXPECT_GT(d.sigma().stats().authorized_forwards, 0u);
  EXPECT_GT(d.sigma().stats().grace_forwards, 0u);
}

TEST(sigma_timeline, authorization_expires_without_fresh_keys) {
  // A receiver whose subscriptions stop must lose access within ~2 slots:
  // authorized_until covers at most slot s+2.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(10.0));
  const auto delivered_before =
      d.net().get(session.receiver().host())->stats().delivered_local;
  ASSERT_GT(delivered_before, 0u);
  // Kill the receiver's control plane by removing it; packets stop at the
  // router once the last authorization (s+2) lapses.
  const auto host = session.receiver().host();
  session.receivers.clear();
  d.run_until(sim::seconds(11.0));
  const auto shortly_after = d.net().get(host)->stats().delivered_local;
  d.run_until(sim::seconds(15.0));
  const auto later = d.net().get(host)->stats().delivered_local;
  // Some packets in the ~2-slot window, then none.
  EXPECT_GE(shortly_after, delivered_before);
  EXPECT_EQ(later, shortly_after);
}

TEST(sigma_timeline, grace_covers_exactly_the_bootstrap_window) {
  // Count grace-forwarded vs authorized-forwarded packets for a single
  // honest receiver: grace should cover only the startup (and upgrades),
  // not steady state.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(60.0));
  (void)session;
  const auto& st = d.sigma().stats();
  EXPECT_GT(st.authorized_forwards, st.grace_forwards * 3);
}

}  // namespace
}  // namespace mcc::core
