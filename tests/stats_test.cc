#include "sim/stats.h"

#include <gtest/gtest.h>

#include <array>

namespace mcc::sim {
namespace {

TEST(throughput_monitor, average_over_interval) {
  scheduler s;
  throughput_monitor m(s, milliseconds(1000));
  s.at(milliseconds(500), [&] { m.on_bytes(1250); });   // bin 0
  s.at(milliseconds(1500), [&] { m.on_bytes(1250); });  // bin 1
  s.run();
  // 2500 bytes over 2 s = 10 Kbps.
  EXPECT_NEAR(m.average_kbps(0, seconds(2.0)), 10.0, 1e-9);
  // Only the first second: 1250 bytes = 10 Kbps.
  EXPECT_NEAR(m.average_kbps(0, seconds(1.0)), 10.0, 1e-9);
}

TEST(throughput_monitor, total_bytes_accumulate) {
  scheduler s;
  throughput_monitor m(s);
  s.at(milliseconds(100), [&] { m.on_bytes(100); });
  s.at(milliseconds(200), [&] { m.on_bytes(200); });
  s.run();
  EXPECT_EQ(m.total_bytes(), 300);
}

TEST(throughput_monitor, empty_interval_is_zero) {
  scheduler s;
  throughput_monitor m(s);
  s.at(milliseconds(100), [&] { m.on_bytes(500); });
  s.run();
  EXPECT_DOUBLE_EQ(m.average_kbps(seconds(5.0), seconds(6.0)), 0.0);
}

TEST(throughput_monitor, rejects_empty_time_range) {
  scheduler s;
  throughput_monitor m(s);
  EXPECT_THROW((void)m.average_kbps(seconds(1.0), seconds(1.0)),
               util::invariant_error);
}

TEST(throughput_monitor, series_has_one_point_per_bin) {
  scheduler s;
  throughput_monitor m(s, milliseconds(1000));
  for (int t = 0; t < 5; ++t) {
    s.at(milliseconds(t * 1000 + 500), [&] { m.on_bytes(1000); });
  }
  s.run();
  const auto series = m.series_kbps(milliseconds(1000));
  ASSERT_EQ(series.size(), 5u);
  // Constant input: every smoothed point equals 8 Kbps.
  for (const auto& [t, kbps] : series) EXPECT_NEAR(kbps, 8.0, 1e-9);
}

TEST(throughput_monitor, smoothing_window_averages_bursts) {
  scheduler s;
  throughput_monitor m(s, milliseconds(1000));
  s.at(milliseconds(2500), [&] { m.on_bytes(3000); });  // burst in bin 2
  s.at(milliseconds(4500), [&] { m.on_bytes(0); });     // extend to 5 bins
  s.run();
  const auto narrow = m.series_kbps(milliseconds(1000));
  const auto wide = m.series_kbps(milliseconds(5000));
  // Narrow window: the burst bin shows the full rate.
  EXPECT_NEAR(narrow[2].second, 24.0, 1e-9);
  // Wide window: the burst is spread over 5 bins.
  EXPECT_LT(wide[2].second, narrow[2].second);
}

TEST(throughput_monitor, window_past_the_last_bin_counts_only_recorded_bytes) {
  scheduler s;
  throughput_monitor m(s, milliseconds(1000));
  s.at(milliseconds(500), [&] { m.on_bytes(1250); });  // bin 0, the only bin
  s.run();
  // The window extends 9 s past the last bin: the missing bins contribute
  // nothing, but the full window duration still divides.
  // 1250 bytes over 10 s = 1 Kbps.
  EXPECT_NEAR(m.average_kbps(0, seconds(10.0)), 1.0, 1e-9);
  // A window that starts past every recorded bin is plain zero.
  EXPECT_DOUBLE_EQ(m.average_kbps(seconds(3.0), seconds(10.0)), 0.0);
}

TEST(throughput_monitor, series_of_untouched_monitor_is_empty) {
  scheduler s;
  throughput_monitor m(s, milliseconds(1000));
  EXPECT_TRUE(m.series_kbps(milliseconds(1000)).empty());
  // Still empty after the clock advances: bins exist only where bytes landed.
  s.at(seconds(5.0), [] {});
  s.run();
  EXPECT_TRUE(m.series_kbps(milliseconds(1000)).empty());
}

TEST(jain_index, equal_rates_give_one) {
  const std::array<double, 4> rates = {100.0, 100.0, 100.0, 100.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(rates), 1.0);
}

TEST(jain_index, single_hog_gives_one_over_n) {
  const std::array<double, 4> rates = {400.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(rates), 0.25);
}

TEST(jain_index, intermediate_case) {
  const std::array<double, 2> rates = {300.0, 100.0};
  // (400)^2 / (2 * (90000 + 10000)) = 160000 / 200000 = 0.8.
  EXPECT_DOUBLE_EQ(jain_fairness_index(rates), 0.8);
}

TEST(jain_index, all_zero_rates_count_as_fair) {
  const std::array<double, 3> rates = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(rates), 1.0);
}

TEST(jain_index, rejects_empty_input) {
  EXPECT_THROW((void)jain_fairness_index({}), util::invariant_error);
}

TEST(consolidate_timelines, interleaved_equal_timestamps_emit_one_point) {
  // Two receivers change level at the SAME instant, in opposite directions:
  // the sweep must process both entries before emitting, so the consolidated
  // timeline gets one point with the running maximum — never a transient
  // from half-applied updates.
  const level_timeline a = {{0, 3}, {seconds(1.0), 1}};
  const level_timeline b = {{0, 1}, {seconds(1.0), 2}};
  const level_timeline out = consolidate_level_timelines({&a, &b});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (std::pair<time_ns, int>{0, 3}));
  EXPECT_EQ(out[1], (std::pair<time_ns, int>{seconds(1.0), 2}));
}

TEST(consolidate_timelines, equal_timestamp_updates_that_keep_the_max_are_silent) {
  // At t=1 s one timeline rises and the other falls, leaving the maximum
  // unchanged: no point is emitted for that instant.
  const level_timeline a = {{0, 2}, {seconds(1.0), 1}};
  const level_timeline b = {{0, 1}, {seconds(1.0), 2}};
  const level_timeline out = consolidate_level_timelines({&a, &b});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (std::pair<time_ns, int>{0, 2}));
}

TEST(consolidate_timelines, empty_input_sets_give_an_empty_timeline) {
  EXPECT_TRUE(consolidate_level_timelines({}).empty());
  const level_timeline empty;
  EXPECT_TRUE(consolidate_level_timelines({&empty, &empty}).empty());
}

}  // namespace
}  // namespace mcc::sim
