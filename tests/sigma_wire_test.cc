#include "core/sigma_wire.h"

#include <gtest/gtest.h>

namespace mcc::core {
namespace {

sigma_key_block sample_block(int key_bits = 16) {
  sigma_key_block b;
  b.session_id = 5;
  b.target_slot = 412;
  b.slot_duration = sim::milliseconds(250);
  b.key_bits = key_bits;
  for (int g = 1; g <= 4; ++g) {
    key_tuple t;
    t.top = crypto::mask_to_bits(
        crypto::group_key{0x1111ULL * static_cast<std::uint64_t>(g)}, key_bits);
    if (g <= 3) t.dec = crypto::mask_to_bits(crypto::group_key{0xaa00u + static_cast<std::uint64_t>(g)}, key_bits);
    if (g >= 2 && g % 2 == 0) {
      t.inc = crypto::mask_to_bits(crypto::group_key{0xbb00u + static_cast<std::uint64_t>(g)}, key_bits);
    }
    b.entries.emplace_back(sim::group_addr{1000 + g}, t);
  }
  return b;
}

TEST(key_tuple, matches_any_present_key) {
  key_tuple t;
  t.top = crypto::group_key{1};
  t.dec = crypto::group_key{2};
  EXPECT_TRUE(t.matches(crypto::group_key{1}));
  EXPECT_TRUE(t.matches(crypto::group_key{2}));
  EXPECT_FALSE(t.matches(crypto::group_key{3}));
  t.inc = crypto::group_key{3};
  EXPECT_TRUE(t.matches(crypto::group_key{3}));
}

TEST(sigma_wire, roundtrip_16_bit) {
  const auto b = sample_block(16);
  const auto bytes = serialize(b);
  const auto back = deserialize_key_block(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->session_id, b.session_id);
  EXPECT_EQ(back->target_slot, b.target_slot);
  EXPECT_EQ(back->slot_duration, b.slot_duration);
  EXPECT_EQ(back->key_bits, 16);
  ASSERT_EQ(back->entries.size(), b.entries.size());
  for (std::size_t i = 0; i < b.entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].first, b.entries[i].first);
    EXPECT_EQ(back->entries[i].second.top, b.entries[i].second.top);
    EXPECT_EQ(back->entries[i].second.dec, b.entries[i].second.dec);
    EXPECT_EQ(back->entries[i].second.inc, b.entries[i].second.inc);
  }
}

TEST(sigma_wire, roundtrip_other_key_widths) {
  for (int bits : {32, 64}) {
    const auto b = sample_block(bits);
    const auto back = deserialize_key_block(serialize(b));
    ASSERT_TRUE(back.has_value()) << bits;
    EXPECT_EQ(back->key_bits, bits);
    EXPECT_EQ(back->entries.size(), b.entries.size());
  }
}

TEST(sigma_wire, sixteen_bit_keys_truncate_on_the_wire) {
  sigma_key_block b;
  b.session_id = 1;
  b.target_slot = 1;
  b.slot_duration = sim::milliseconds(500);
  b.key_bits = 16;
  key_tuple t;
  t.top = crypto::group_key{0x123456789abcdef0ULL};
  b.entries.emplace_back(sim::group_addr{1}, t);
  const auto back = deserialize_key_block(serialize(b));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entries[0].second.top.value, 0xdef0u);
}

TEST(sigma_wire, truncated_buffer_fails_safely) {
  const auto bytes = serialize(sample_block());
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
                          bytes.size() - 1}) {
    const std::vector<std::uint8_t> part(bytes.begin(),
                                         bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(deserialize_key_block(part).has_value()) << "cut " << cut;
  }
}

TEST(sigma_wire, garbage_key_width_rejected) {
  auto bytes = serialize(sample_block());
  bytes[20] = 7;  // key_bits field offset: 4 + 8 + 8 = 20
  EXPECT_FALSE(deserialize_key_block(bytes).has_value());
}

TEST(sigma_wire, empty_block_roundtrips) {
  sigma_key_block b;
  b.session_id = 9;
  b.target_slot = 0;
  b.slot_duration = sim::milliseconds(100);
  b.key_bits = 16;
  const auto back = deserialize_key_block(serialize(b));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->entries.empty());
}

TEST(sigma_wire, block_from_keys_maps_indices_to_addresses) {
  delta_layered_sender sender(3, 4, 16, 7);
  std::vector<int> counts = {0, 2, 2, 2, 2};
  sender.begin_slot(10, /*auth=*/1u << 3, counts);
  const delta_slot_keys* keys = sender.keys_for(12);
  ASSERT_NE(keys, nullptr);
  const std::vector<sim::group_addr> groups = {
      sim::group_addr{100}, sim::group_addr{101}, sim::group_addr{102},
      sim::group_addr{103}};
  const auto block =
      block_from_keys(*keys, groups, sim::milliseconds(250), 16);
  EXPECT_EQ(block.session_id, 3);
  EXPECT_EQ(block.target_slot, 12);
  ASSERT_EQ(block.entries.size(), 4u);
  // Entry g: top key always, decrease for g <= N-1, increase iff authorized.
  for (int g = 1; g <= 4; ++g) {
    const auto& [addr, tuple] = block.entries[static_cast<std::size_t>(g - 1)];
    EXPECT_EQ(addr.value, 100 + g - 1);
    EXPECT_EQ(tuple.top, keys->top[static_cast<std::size_t>(g)]);
    EXPECT_EQ(tuple.dec.has_value(), g <= 3);
    EXPECT_EQ(tuple.inc.has_value(), g == 3);
  }
}

TEST(shared_groups, fan_out_copies_bump_a_refcount_instead_of_deep_copying) {
  // sigma_unsubscribe::groups and session_announcement::groups ride the
  // shared_body payload scheme: per-branch packet copies at a multicast
  // fan-out must share one backing vector.
  sim::sigma_unsubscribe unsub;
  unsub.session_id = 4;
  unsub.groups = {sim::group_addr{1}, sim::group_addr{2}, sim::group_addr{3}};
  EXPECT_EQ(unsub.groups.use_count(), 1);

  sim::packet original;
  original.hdr = unsub;
  EXPECT_EQ(unsub.groups.use_count(), 2);  // packet header shares the body

  // An 8-way fan-out: every branch copy points at the same vector.
  std::vector<sim::packet> branches(8, original);
  EXPECT_EQ(unsub.groups.use_count(), 10);
  for (const sim::packet& b : branches) {
    const auto* hdr = sim::header_as<sim::sigma_unsubscribe>(b);
    ASSERT_NE(hdr, nullptr);
    EXPECT_EQ(&hdr->groups.get(), &unsub.groups.get());
    EXPECT_EQ(hdr->groups.size(), 3u);
  }
  branches.clear();
  EXPECT_EQ(unsub.groups.use_count(), 2);

  // Announcements share the same mechanics (they are copied into the
  // network's session directory and handed back by find_session).
  sim::session_announcement ann;
  ann.session_id = 4;
  ann.groups = {sim::group_addr{7}, sim::group_addr{8}};
  const sim::session_announcement copy = ann;
  EXPECT_EQ(ann.groups.use_count(), 2);
  EXPECT_EQ(&copy.groups.get(), &ann.groups.get());
  EXPECT_EQ(copy.groups.front(), (sim::group_addr{7}));
}

TEST(sigma_wire, serialized_size_matches_16bit_accounting) {
  // header: 4 (session) + 8 (slot) + 8 (duration) + 1 (bits) + 2 (count).
  // entry: 4 (addr) + 1 (flags) + 2 (top) + 2 (dec, if any) + 2 (inc, if any).
  const auto b = sample_block(16);
  std::size_t expect = 23;
  for (const auto& [addr, t] : b.entries) {
    expect += 7 + (t.dec ? 2 : 0) + (t.inc ? 2 : 0);
  }
  EXPECT_EQ(serialize(b).size(), expect);
}

}  // namespace
}  // namespace mcc::core
