#include "crypto/shamir.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mcc::crypto {
namespace {

TEST(gf61, add_wraps_at_prime) {
  EXPECT_EQ(gf61::add(shamir_prime - 1, 1), 0u);
  EXPECT_EQ(gf61::add(shamir_prime - 1, 2), 1u);
}

TEST(gf61, sub_wraps_below_zero) {
  EXPECT_EQ(gf61::sub(0, 1), shamir_prime - 1);
  EXPECT_EQ(gf61::sub(5, 3), 2u);
}

TEST(gf61, mul_matches_small_products) {
  EXPECT_EQ(gf61::mul(7, 9), 63u);
  EXPECT_EQ(gf61::mul(0, 12345), 0u);
  EXPECT_EQ(gf61::mul(1, 12345), 12345u);
}

TEST(gf61, mul_reduces_large_products) {
  const std::uint64_t big = shamir_prime - 1;
  // (p-1)^2 mod p = 1.
  EXPECT_EQ(gf61::mul(big, big), 1u);
}

TEST(gf61, inverse_roundtrip) {
  prng g(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = g.next() % shamir_prime;
    if (a == 0) continue;
    EXPECT_EQ(gf61::mul(a, gf61::inv(a)), 1u);
  }
}

TEST(gf61, inv_of_zero_throws) {
  EXPECT_THROW((void)gf61::inv(0), util::invariant_error);
}

TEST(gf61, pow_matches_repeated_multiplication) {
  std::uint64_t acc = 1;
  for (int e = 0; e < 16; ++e) {
    EXPECT_EQ(gf61::pow(3, static_cast<std::uint64_t>(e)), acc);
    acc = gf61::mul(acc, 3);
  }
}

TEST(shamir, split_produces_n_distinct_points) {
  prng g(1);
  const auto shares = shamir_split(777, 3, 10, g);
  ASSERT_EQ(shares.size(), 10u);
  std::set<std::uint64_t> xs;
  for (const auto& s : shares) xs.insert(s.x);
  EXPECT_EQ(xs.size(), 10u);
}

TEST(shamir, reconstruct_from_first_k) {
  prng g(2);
  const auto shares = shamir_split(123456789, 4, 8, g);
  const std::vector<shamir_share> subset(shares.begin(), shares.begin() + 4);
  EXPECT_EQ(shamir_reconstruct(subset), 123456789u);
}

TEST(shamir, reconstruct_from_any_subset) {
  prng g(3);
  const std::uint64_t secret = 0xfeedface;
  const auto shares = shamir_split(secret, 3, 7, g);
  // Try every 3-subset.
  for (std::size_t a = 0; a < shares.size(); ++a) {
    for (std::size_t b = a + 1; b < shares.size(); ++b) {
      for (std::size_t c = b + 1; c < shares.size(); ++c) {
        const std::vector<shamir_share> subset = {shares[a], shares[b],
                                                  shares[c]};
        EXPECT_EQ(shamir_reconstruct(subset), secret);
      }
    }
  }
}

TEST(shamir, more_than_k_shares_also_work) {
  prng g(4);
  const auto shares = shamir_split(42, 2, 6, g);
  EXPECT_EQ(shamir_reconstruct(shares), 42u);
}

TEST(shamir, fewer_than_k_shares_yield_wrong_secret) {
  prng g(5);
  const std::uint64_t secret = 99999;
  const auto shares = shamir_split(secret, 5, 10, g);
  const std::vector<shamir_share> subset(shares.begin(), shares.begin() + 4);
  // Interpolating 4 points of a degree-4 polynomial gives a degree-3 fit
  // whose value at 0 is (with overwhelming probability) not the secret.
  EXPECT_NE(shamir_reconstruct(subset), secret);
}

TEST(shamir, k_equals_one_is_replication) {
  prng g(6);
  const auto shares = shamir_split(31337, 1, 5, g);
  for (const auto& s : shares) {
    const std::vector<shamir_share> one = {s};
    EXPECT_EQ(shamir_reconstruct(one), 31337u);
  }
}

TEST(shamir, k_equals_n_needs_all) {
  prng g(7);
  const std::uint64_t secret = 2024;
  const auto shares = shamir_split(secret, 6, 6, g);
  EXPECT_EQ(shamir_reconstruct(shares), secret);
  const std::vector<shamir_share> missing_one(shares.begin(),
                                              shares.begin() + 5);
  EXPECT_NE(shamir_reconstruct(missing_one), secret);
}

TEST(shamir, duplicate_share_x_is_rejected) {
  prng g(8);
  auto shares = shamir_split(5, 2, 3, g);
  const std::vector<shamir_share> dup = {shares[0], shares[0]};
  EXPECT_THROW((void)shamir_reconstruct(dup), util::invariant_error);
}

TEST(shamir, invalid_parameters_are_rejected) {
  prng g(9);
  EXPECT_THROW((void)shamir_split(1, 0, 3, g), util::invariant_error);
  EXPECT_THROW((void)shamir_split(1, 4, 3, g), util::invariant_error);
  EXPECT_THROW((void)shamir_split(shamir_prime, 2, 3, g),
               util::invariant_error);
}

TEST(shamir, key_wrappers_roundtrip) {
  prng g(10);
  const group_key key = mask_to_bits(group_key{g.next()}, 16);
  const auto shares = shamir_split_key(key, 3, 5, g);
  const std::vector<shamir_share> subset(shares.begin(), shares.begin() + 3);
  EXPECT_EQ(shamir_reconstruct_key(subset), key);
}

TEST(shamir, secret_zero_works) {
  prng g(11);
  const auto shares = shamir_split(0, 3, 5, g);
  const std::vector<shamir_share> subset(shares.begin(), shares.begin() + 3);
  EXPECT_EQ(shamir_reconstruct(subset), 0u);
}

struct shamir_param {
  int k;
  int n;
};

class shamir_sweep : public ::testing::TestWithParam<shamir_param> {};

TEST_P(shamir_sweep, threshold_boundary_is_exact) {
  const auto [k, n] = GetParam();
  prng g(static_cast<std::uint64_t>(k * 1000 + n));
  const std::uint64_t secret = g.next() % shamir_prime;
  const auto shares = shamir_split(secret, k, n, g);

  // Exactly k shares reconstruct.
  std::vector<shamir_share> at_k(shares.begin(), shares.begin() + k);
  EXPECT_EQ(shamir_reconstruct(at_k), secret) << "k=" << k << " n=" << n;

  // k-1 shares do not (for k >= 2).
  if (k >= 2) {
    std::vector<shamir_share> below(shares.begin(), shares.begin() + k - 1);
    EXPECT_NE(shamir_reconstruct(below), secret) << "k=" << k << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    k_n_grid, shamir_sweep,
    ::testing::Values(shamir_param{1, 1}, shamir_param{1, 8},
                      shamir_param{2, 2}, shamir_param{2, 10},
                      shamir_param{3, 4}, shamir_param{5, 5},
                      shamir_param{7, 12}, shamir_param{10, 30},
                      shamir_param{25, 50}, shamir_param{40, 40}));

}  // namespace
}  // namespace mcc::crypto
