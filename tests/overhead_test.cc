// Overhead model of paper section 5.4 and its agreement with measured bits.
#include "core/overhead.h"

#include <gtest/gtest.h>

#include "exp/testbed.h"

namespace mcc::core {
namespace {

overhead_params paper_params() {
  overhead_params p;
  p.num_groups = 10;
  p.base_rate_bps = 100e3;
  p.session_rate_bps = 4e6;
  p.packet_data_bits = 4000;  // 500-byte payload
  p.key_bits = 16;
  p.slot_number_bits = 8;
  p.slot_seconds = 0.25;
  p.fec_expansion = 2.0;
  p.header_bits_per_slot = 8 * 40.0 * 8;  // 8 special packets x 40 B headers
  p.sum_upgrade_freq = 9 * 0.15;          // f_g ~ upgrade_prob per group
  return p;
}

TEST(overhead_model, delta_is_about_point_eight_percent) {
  // Paper: "the communication overhead remains about 0.8% for DELTA".
  const double o = delta_overhead(paper_params());
  EXPECT_NEAR(o, 0.008, 0.0005);
}

TEST(overhead_model, sigma_stays_under_point_six_percent) {
  // Paper: "stays under 0.6% for SIGMA".
  const double o = sigma_overhead(paper_params());
  EXPECT_GT(o, 0.0);
  EXPECT_LT(o, 0.006);
}

TEST(overhead_model, delta_grows_with_key_width) {
  auto p = paper_params();
  const double o16 = delta_overhead(p);
  p.key_bits = 32;
  EXPECT_NEAR(delta_overhead(p), 2 * o16, 1e-9);
}

TEST(overhead_model, delta_approaches_2b_over_s_for_many_groups) {
  auto p = paper_params();
  p.session_rate_bps = 1e12;  // m^(N-1) -> infinity
  EXPECT_NEAR(delta_overhead(p), 2.0 * 16 / 4000, 1e-6);
}

TEST(overhead_model, delta_single_group_is_b_over_s) {
  auto p = paper_params();
  p.session_rate_bps = p.base_rate_bps;  // N = 1: no decrease fields
  EXPECT_NEAR(delta_overhead(p), 16.0 / 4000, 1e-9);
}

TEST(overhead_model, sigma_shrinks_with_longer_slots) {
  auto p = paper_params();
  const double at_250ms = sigma_overhead(p);
  p.slot_seconds = 1.0;
  EXPECT_LT(sigma_overhead(p), at_250ms);
}

TEST(overhead_model, sigma_scales_linearly_with_fec) {
  auto p = paper_params();
  p.header_bits_per_slot = 0;
  const double z2 = sigma_overhead(p);
  p.fec_expansion = 4.0;
  EXPECT_NEAR(sigma_overhead(p), 2 * z2, 1e-9);
}

TEST(overhead_model, rejects_degenerate_inputs) {
  auto p = paper_params();
  p.slot_seconds = 0;
  EXPECT_THROW((void)sigma_overhead(p), util::invariant_error);
  auto q = paper_params();
  q.session_rate_bps = 0;
  EXPECT_THROW((void)delta_overhead(q), util::invariant_error);
}

TEST(overhead_measured, sigma_control_traffic_matches_model_order) {
  // Run a real FLID-DS session and compare measured control bytes per data
  // byte with the analytic O_Sigma at the same parameters.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  exp::testbed d(exp::dumbbell(cfg));
  auto& s = d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  d.run_until(sim::seconds(100.0));

  const auto& em = s.ds.emitter->stats();
  const auto& snd = s.sender->stats();
  const double measured =
      static_cast<double>(em.ctrl_bytes) / static_cast<double>(snd.data_bytes);

  overhead_params p;
  p.num_groups = s.config.num_groups;
  p.base_rate_bps = s.config.base_rate_bps;
  // The receiver tops out at level 10 here; use the full session rate.
  p.session_rate_bps = s.config.cumulative_rate_bps(s.config.num_groups);
  p.packet_data_bits = s.config.packet_bytes * 8;
  p.key_bits = s.config.key_bits;
  p.slot_seconds = sim::to_seconds(s.config.slot_duration);
  p.fec_expansion = s.ds.emitter->expansion_factor();
  p.header_bits_per_slot =
      8.0 * static_cast<double>(em.header_bytes) /
      static_cast<double>(em.slots);
  p.sum_upgrade_freq = 0;
  for (int g = 2; g <= s.config.num_groups; ++g) {
    p.sum_upgrade_freq +=
        static_cast<double>(snd.auth_count[static_cast<std::size_t>(g)]) /
        static_cast<double>(snd.slots);
  }
  const double model = sigma_overhead(p);
  // Within 3x of each other (the model counts idealized tuple bits; the
  // simulator serializes byte-aligned structures).
  EXPECT_LT(measured, model * 3.0);
  EXPECT_GT(measured, model / 3.0);
}

TEST(overhead_measured, delta_fields_match_model_exactly) {
  // DELTA's measured overhead is exact: b bits per packet plus b per packet
  // of groups >= 2.
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  exp::testbed d(exp::dumbbell(cfg));
  auto& s = d.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  d.run_until(sim::seconds(100.0));
  const auto& snd = s.sender->stats();

  // Count group-1 packets: every packet carries a component; only groups >= 2
  // carry a decrease field.
  double group1_packets = 0;
  for (std::uint64_t slot = 0; slot < snd.slots; ++slot) {
    group1_packets += s.sender->packets_in_slot(1, static_cast<std::int64_t>(slot));
  }
  const double b = s.config.key_bits;
  const double field_bits =
      b * (static_cast<double>(snd.data_packets) * 2.0 - group1_packets);
  const double data_bits = 8.0 * static_cast<double>(snd.data_bytes);
  const double measured = field_bits / data_bits;

  overhead_params p;
  p.key_bits = s.config.key_bits;
  p.packet_data_bits = s.config.packet_bytes * 8;
  p.base_rate_bps = s.config.base_rate_bps;
  p.session_rate_bps = s.config.cumulative_rate_bps(s.config.num_groups);
  // Model and measurement agree to within pacing quantization.
  EXPECT_NEAR(measured, delta_overhead(p), 0.1 * delta_overhead(p));
}

}  // namespace
}  // namespace mcc::core
