// Containment matrix: every attacker key strategy, at several bottleneck
// sizes, must be held to (approximately) the honest allocation — the
// system-level invariant behind paper Figure 7. Plus recovery behaviour
// after a total blackout.
#include <gtest/gtest.h>

#include "adversary/adversary.h"
#include "exp/testbed.h"

namespace mcc::core {
namespace {

using exp::dumbbell;
using exp::testbed;
using exp::dumbbell_config;
using exp::flid_mode;
using exp::receiver_options;

struct matrix_case {
  misbehaving_sigma_strategy::key_mode mode;
  double bottleneck_bps;
  /// Bottleneck queue discipline: DELTA's protection bound is a property of
  /// key enforcement, so it must hold whether the queue signals congestion by
  /// tail drops, RED early drops, or CoDel sojourn drops.
  sim::qdisc queue = sim::qdisc::droptail;
};

class containment_matrix : public ::testing::TestWithParam<matrix_case> {};

TEST_P(containment_matrix, attacker_held_near_honest_share) {
  const auto [mode, bottleneck, queue] = GetParam();
  dumbbell_config cfg;
  cfg.bottleneck_bps = bottleneck;
  cfg.seed = 21;
  cfg.aqm.discipline = queue;
  testbed d(dumbbell(cfg));
  receiver_options attacker;
  attacker.attack = adversary::inflate_once(sim::seconds(30.0), mode);
  auto& rogue = d.add_flid_session(flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(120.0));

  const sim::time_ns t0 = sim::seconds(45.0);
  const sim::time_ns te = sim::seconds(120.0);
  const double rogue_kbps = rogue.receiver().monitor().average_kbps(t0, te);
  const double honest_kbps = honest.receiver().monitor().average_kbps(t0, te);

  // Two sessions share the bottleneck: the fair share is half. The attacker
  // must not hold materially more than the contested fair share; layer
  // quantization and probing luck allow some slack, but nothing resembling
  // the unprotected grab (which takes nearly everything).
  EXPECT_LT(rogue_kbps, 0.75 * bottleneck / 1e3)
      << "attacker " << rogue_kbps << " honest " << honest_kbps;
  // And the honest receiver must retain a living share.
  EXPECT_GT(honest_kbps, 0.1 * bottleneck / 1e3);
}

INSTANTIATE_TEST_SUITE_P(
    modes_and_bottlenecks, containment_matrix,
    ::testing::Values(
        matrix_case{misbehaving_sigma_strategy::key_mode::best_effort, 500e3},
        matrix_case{misbehaving_sigma_strategy::key_mode::best_effort, 1e6},
        matrix_case{misbehaving_sigma_strategy::key_mode::replay, 500e3},
        matrix_case{misbehaving_sigma_strategy::key_mode::replay, 1e6},
        matrix_case{misbehaving_sigma_strategy::key_mode::guess, 500e3},
        matrix_case{misbehaving_sigma_strategy::key_mode::guess, 1e6}));

// The inflated-subscription rows again, under every adversarial queue
// discipline: the containment bound may not depend on how the bottleneck
// signals congestion.
INSTANTIATE_TEST_SUITE_P(
    modes_and_qdiscs, containment_matrix,
    ::testing::Values(
        matrix_case{misbehaving_sigma_strategy::key_mode::guess, 1e6,
                    sim::qdisc::red},
        matrix_case{misbehaving_sigma_strategy::key_mode::guess, 1e6,
                    sim::qdisc::codel},
        matrix_case{misbehaving_sigma_strategy::key_mode::best_effort, 1e6,
                    sim::qdisc::red},
        matrix_case{misbehaving_sigma_strategy::key_mode::best_effort, 1e6,
                    sim::qdisc::codel},
        matrix_case{misbehaving_sigma_strategy::key_mode::replay, 1e6,
                    sim::qdisc::red},
        matrix_case{misbehaving_sigma_strategy::key_mode::replay, 1e6,
                    sim::qdisc::codel}));

TEST(blackout_recovery, honest_receiver_rejoins_after_total_outage) {
  // A CBR flood consumes the whole bottleneck for 20 s: the receiver loses
  // everything, gets cut off (no keys), and must re-enter via session-join
  // and climb back afterwards.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 31;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  traffic::cbr_config flood;
  flood.rate_bps = 1.2e6;  // over capacity
  flood.start_time = sim::seconds(40.0);
  flood.stop_time = sim::seconds(60.0);
  d.add_cbr(flood);
  d.run_until(sim::seconds(120.0));

  auto& r = session.receiver();
  const double before = r.monitor().average_kbps(sim::seconds(20.0),
                                                 sim::seconds(40.0));
  const double during = r.monitor().average_kbps(sim::seconds(45.0),
                                                 sim::seconds(60.0));
  const double after = r.monitor().average_kbps(sim::seconds(90.0),
                                                sim::seconds(120.0));
  EXPECT_GT(before, 300.0);
  EXPECT_LT(during, 0.4 * before);  // flood crushed the session
  EXPECT_GT(after, 0.6 * before);  // recovered after re-admission
  // The cutoff/rejoin machinery was exercised.
  EXPECT_GT(d.sigma().stats().session_joins, 1u);
}

TEST(blackout_recovery, attacker_blackout_does_not_unlock_extra_access) {
  // During its own blackout, the attacker spams session-joins and guesses;
  // afterwards it must still sit at the (shared) honest level, not above.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 33;
  testbed d(dumbbell(cfg));
  receiver_options attacker;
  attacker.attack = adversary::inflate_once(
      sim::seconds(10.0), misbehaving_sigma_strategy::key_mode::guess);
  auto& rogue = d.add_flid_session(flid_mode::ds, {attacker});
  auto& honest = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  traffic::cbr_config flood;
  flood.rate_bps = 1.2e6;
  flood.start_time = sim::seconds(40.0);
  flood.stop_time = sim::seconds(55.0);
  d.add_cbr(flood);
  d.run_until(sim::seconds(120.0));

  const double rogue_after = rogue.receiver().monitor().average_kbps(
      sim::seconds(70.0), sim::seconds(120.0));
  const double honest_after = honest.receiver().monitor().average_kbps(
      sim::seconds(70.0), sim::seconds(120.0));
  EXPECT_LT(rogue_after, 750.0);
  EXPECT_GT(honest_after, 100.0);
}

}  // namespace
}  // namespace mcc::core
