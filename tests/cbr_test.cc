#include "traffic/cbr.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mcc::traffic {
namespace {

using mcc::testing::line_topology;

TEST(cbr, steady_rate_matches_config) {
  sim::scheduler sched;
  line_topology topo(sched, 10e6, sim::milliseconds(5));
  cbr_config cfg;
  cfg.flow_id = 1;
  cfg.rate_bps = 400e3;
  cfg.packet_bytes = 500;
  cbr_sink sink(topo.net, topo.h2, 1);
  cbr_source src(topo.net, topo.h1, topo.h2, cfg);
  sched.run_until(sim::seconds(10.0));
  EXPECT_NEAR(sink.monitor().average_kbps(sim::seconds(1.0), sim::seconds(10.0)),
              400.0, 10.0);
}

TEST(cbr, respects_start_and_stop_times) {
  sim::scheduler sched;
  line_topology topo(sched, 10e6, sim::milliseconds(5));
  cbr_config cfg;
  cfg.flow_id = 1;
  cfg.rate_bps = 200e3;
  cfg.start_time = sim::seconds(2.0);
  cfg.stop_time = sim::seconds(4.0);
  cbr_sink sink(topo.net, topo.h2, 1);
  cbr_source src(topo.net, topo.h1, topo.h2, cfg);
  sched.run_until(sim::seconds(6.0));
  EXPECT_DOUBLE_EQ(sink.monitor().average_kbps(0, sim::seconds(1.9)), 0.0);
  EXPECT_NEAR(sink.monitor().average_kbps(sim::seconds(2.0), sim::seconds(4.0)),
              200.0, 15.0);
  EXPECT_NEAR(sink.monitor().average_kbps(sim::seconds(4.5), sim::seconds(6.0)),
              0.0, 5.0);
}

TEST(cbr, on_off_duty_cycle_halves_average_rate) {
  sim::scheduler sched;
  line_topology topo(sched, 10e6, sim::milliseconds(5));
  cbr_config cfg;
  cfg.flow_id = 1;
  cfg.rate_bps = 400e3;
  cfg.on_duration = sim::seconds(5.0);
  cfg.off_duration = sim::seconds(5.0);
  cbr_sink sink(topo.net, topo.h2, 1);
  cbr_source src(topo.net, topo.h1, topo.h2, cfg);
  sched.run_until(sim::seconds(40.0));
  // Duty cycle 50%: long-run average is half the on-rate.
  EXPECT_NEAR(sink.monitor().average_kbps(0, sim::seconds(40.0)), 200.0, 20.0);
  // During an on-period the instantaneous rate is the configured one.
  EXPECT_NEAR(sink.monitor().average_kbps(sim::seconds(11.0), sim::seconds(14.0)),
              400.0, 25.0);
  // During an off-period nothing arrives.
  EXPECT_NEAR(sink.monitor().average_kbps(sim::seconds(16.0), sim::seconds(19.0)),
              0.0, 5.0);
}

TEST(cbr, packet_count_matches_rate_and_duration) {
  sim::scheduler sched;
  line_topology topo(sched, 10e6, sim::milliseconds(5));
  cbr_config cfg;
  cfg.flow_id = 1;
  cfg.rate_bps = 100e3;
  cfg.packet_bytes = 1250;  // 10 packets/second
  cfg.stop_time = sim::seconds(10.0);
  cbr_sink sink(topo.net, topo.h2, 1);
  cbr_source src(topo.net, topo.h1, topo.h2, cfg);
  sched.run_until(sim::seconds(12.0));
  EXPECT_NEAR(static_cast<double>(src.packets_sent()), 100.0, 2.0);
}

TEST(cbr, rejects_nonpositive_rate) {
  sim::scheduler sched;
  line_topology topo(sched);
  cbr_config cfg;
  cfg.rate_bps = 0;
  EXPECT_THROW(cbr_source(topo.net, topo.h1, topo.h2, cfg),
               util::invariant_error);
}

}  // namespace
}  // namespace mcc::traffic
