#include "mcast/igmp.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace mcc::mcast {
namespace {

using mcc::testing::capture_agent;
using mcc::testing::line_topology;

struct igmp_fixture : ::testing::Test {
  igmp_fixture() : topo(sched), agent(topo.net, topo.r2) {
    topo.net.register_group_source(g, topo.h1);
  }

  void send_data() {
    sim::packet p;
    p.size_bytes = 100;
    p.dst = sim::dest::to_group(g);
    topo.net.get(topo.h1)->send(std::move(p));
  }

  sim::scheduler sched;
  line_topology topo;
  igmp_agent agent;
  sim::group_addr g{500};
};

TEST_F(igmp_fixture, join_builds_tree_and_delivers) {
  membership_client client(topo.net, topo.h2, topo.r2);
  capture_agent sink(topo.net, topo.h2);
  client.join(g);
  sched.run_until(sim::milliseconds(100));
  send_data();
  sched.run_until(sim::milliseconds(200));
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(agent.stats().joins, 1u);
}

TEST_F(igmp_fixture, leave_stops_delivery_and_prunes) {
  membership_client client(topo.net, topo.h2, topo.r2);
  capture_agent sink(topo.net, topo.h2);
  client.join(g);
  sched.run_until(sim::milliseconds(100));
  client.leave(g);
  sched.run_until(sim::milliseconds(200));
  send_data();
  sched.run_until(sim::milliseconds(300));
  EXPECT_TRUE(sink.packets.empty());
  EXPECT_EQ(agent.stats().leaves, 1u);
  // Interior branch pruned too.
  EXPECT_FALSE(topo.net.get(topo.r1)->has_oif(g, topo.middle));
}

TEST_F(igmp_fixture, protected_groups_refuse_plain_igmp) {
  topo.net.mark_sigma_protected(g);
  membership_client client(topo.net, topo.h2, topo.r2);
  capture_agent sink(topo.net, topo.h2);
  client.join(g);
  sched.run_until(sim::milliseconds(100));
  send_data();
  sched.run_until(sim::milliseconds(200));
  EXPECT_TRUE(sink.packets.empty());
  EXPECT_EQ(agent.stats().refused_protected, 1u);
  EXPECT_EQ(agent.stats().joins, 0u);
}

TEST_F(igmp_fixture, programmatic_join_bypasses_protection_check) {
  // SIGMA validates keys and then drives the same tree logic.
  topo.net.mark_sigma_protected(g);
  sim::link* iface = topo.net.next_hop(topo.r2, topo.h2);
  agent.join(g, iface);
  topo.net.get(topo.h2)->host_join(g);
  capture_agent sink(topo.net, topo.h2);
  sched.run_until(sim::milliseconds(100));
  send_data();
  sched.run_until(sim::milliseconds(200));
  EXPECT_EQ(sink.packets.size(), 1u);
}

TEST_F(igmp_fixture, duplicate_joins_are_idempotent) {
  membership_client client(topo.net, topo.h2, topo.r2);
  capture_agent sink(topo.net, topo.h2);
  client.join(g);
  client.join(g);
  sched.run_until(sim::milliseconds(100));
  send_data();
  sched.run_until(sim::milliseconds(200));
  EXPECT_EQ(sink.packets.size(), 1u);  // no duplicate delivery
}

TEST_F(igmp_fixture, two_receivers_one_upstream_branch) {
  // Add a second receiver host on the same edge router.
  // (Build a fresh topology because line_topology froze routing already.)
  sim::scheduler s2;
  sim::network net(s2);
  const sim::node_id src = net.add_host("src");
  const sim::node_id r1 = net.add_router("r1");
  const sim::node_id r2 = net.add_router("r2");
  const sim::node_id ha = net.add_host("a");
  const sim::node_id hb = net.add_host("b");
  sim::link_config cfg;
  net.connect(src, r1, cfg);
  net.connect(r1, r2, cfg);
  net.connect(r2, ha, cfg);
  net.connect(r2, hb, cfg);
  net.finalize_routing();
  igmp_agent ag(net, r2);
  const sim::group_addr grp{600};
  net.register_group_source(grp, src);

  membership_client ca(net, ha, r2);
  membership_client cb(net, hb, r2);
  capture_agent sa(net, ha);
  capture_agent sb(net, hb);
  ca.join(grp);
  cb.join(grp);
  s2.run_until(sim::milliseconds(100));

  sim::packet p;
  p.size_bytes = 100;
  p.dst = sim::dest::to_group(grp);
  net.get(src)->send(std::move(p));
  s2.run_until(sim::milliseconds(200));
  EXPECT_EQ(sa.packets.size(), 1u);
  EXPECT_EQ(sb.packets.size(), 1u);

  // One leaves; the other keeps receiving.
  ca.leave(grp);
  s2.run_until(sim::milliseconds(300));
  sim::packet q;
  q.size_bytes = 100;
  q.dst = sim::dest::to_group(grp);
  net.get(src)->send(std::move(q));
  s2.run_until(sim::milliseconds(400));
  EXPECT_EQ(sa.packets.size(), 1u);
  EXPECT_EQ(sb.packets.size(), 2u);
}

}  // namespace
}  // namespace mcc::mcast
