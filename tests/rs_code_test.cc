#include "crypto/rs_code.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "crypto/prng.h"

namespace mcc::crypto {
namespace {

std::vector<shard> random_shards(int k, std::size_t len, prng& g) {
  std::vector<shard> out(static_cast<std::size_t>(k), shard(len));
  for (auto& s : out) {
    for (auto& b : s) b = static_cast<std::uint8_t>(g.next() & 0xff);
  }
  return out;
}

std::vector<indexed_shard> take(const std::vector<shard>& codeword,
                                const std::vector<int>& indices) {
  std::vector<indexed_shard> out;
  for (int i : indices) {
    out.push_back(indexed_shard{i, codeword[static_cast<std::size_t>(i)]});
  }
  return out;
}

TEST(rs_code, encode_is_systematic) {
  prng g(1);
  const auto data = random_shards(4, 32, g);
  rs_code code(4, 3);
  const auto cw = code.encode(data);
  ASSERT_EQ(cw.size(), 7u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cw[static_cast<std::size_t>(i)], data[static_cast<std::size_t>(i)]);
  }
}

TEST(rs_code, decode_with_all_data_shards) {
  prng g(2);
  const auto data = random_shards(5, 16, g);
  rs_code code(5, 2);
  const auto cw = code.encode(data);
  const auto decoded = code.decode(take(cw, {0, 1, 2, 3, 4}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(rs_code, decode_with_parity_replacing_data) {
  prng g(3);
  const auto data = random_shards(4, 20, g);
  rs_code code(4, 4);
  const auto cw = code.encode(data);
  // Lose data shards 0 and 2; use parity 4 and 6.
  const auto decoded = code.decode(take(cw, {1, 3, 4, 6}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(rs_code, decode_with_only_parity) {
  prng g(4);
  const auto data = random_shards(3, 8, g);
  rs_code code(3, 3);
  const auto cw = code.encode(data);
  const auto decoded = code.decode(take(cw, {3, 4, 5}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(rs_code, too_few_shards_fails_cleanly) {
  prng g(5);
  const auto data = random_shards(4, 8, g);
  rs_code code(4, 2);
  const auto cw = code.encode(data);
  EXPECT_FALSE(code.decode(take(cw, {0, 1, 2})).has_value());
  EXPECT_FALSE(code.decode({}).has_value());
}

TEST(rs_code, duplicate_shards_do_not_count_twice) {
  prng g(6);
  const auto data = random_shards(3, 8, g);
  rs_code code(3, 2);
  const auto cw = code.encode(data);
  std::vector<indexed_shard> dup = take(cw, {0, 1});
  dup.push_back(indexed_shard{0, cw[0]});
  EXPECT_FALSE(code.decode(dup).has_value());
}

TEST(rs_code, fifty_percent_loss_always_recoverable_with_z2) {
  // z = 2 (k data + k parity) survives any loss of half the codeword —
  // the paper's "error correction overcomes 50% packet loss".
  prng g(7);
  const int k = 4;
  const auto data = random_shards(k, 24, g);
  rs_code code(k, k);
  const auto cw = code.encode(data);
  // Every 4-subset of the 8 shards must decode.
  std::vector<int> idx(8);
  for (int i = 0; i < 8; ++i) idx[static_cast<std::size_t>(i)] = i;
  std::vector<bool> pick(8, false);
  std::fill(pick.begin(), pick.begin() + 4, true);
  std::sort(pick.begin(), pick.end());
  do {
    std::vector<int> chosen;
    for (int i = 0; i < 8; ++i) {
      if (pick[static_cast<std::size_t>(i)]) chosen.push_back(i);
    }
    const auto decoded = code.decode(take(cw, chosen));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  } while (std::next_permutation(pick.begin(), pick.end()));
}

TEST(rs_code, rejects_bad_parameters) {
  EXPECT_THROW(rs_code(0, 2), util::invariant_error);
  EXPECT_THROW(rs_code(-1, 2), util::invariant_error);
  EXPECT_THROW(rs_code(200, 100), util::invariant_error);
}

TEST(rs_code, rejects_mismatched_shard_sizes) {
  rs_code code(2, 1);
  std::vector<shard> bad = {shard(8, 0), shard(9, 0)};
  EXPECT_THROW((void)code.encode(bad), util::invariant_error);
}

TEST(rs_code, zero_parity_passthrough) {
  prng g(8);
  const auto data = random_shards(3, 8, g);
  rs_code code(3, 0);
  const auto cw = code.encode(data);
  EXPECT_EQ(cw, data);
}

TEST(split_join, roundtrip_exact_multiple) {
  std::vector<std::uint8_t> buf(32);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i);
  }
  const auto shards = split_into_shards(buf, 4);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(join_shards(shards, buf.size()), buf);
}

TEST(split_join, roundtrip_with_padding) {
  std::vector<std::uint8_t> buf(29);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 3);
  }
  const auto shards = split_into_shards(buf, 4);
  for (const auto& s : shards) EXPECT_EQ(s.size(), shards.front().size());
  EXPECT_EQ(join_shards(shards, buf.size()), buf);
}

TEST(split_join, empty_buffer) {
  const auto shards = split_into_shards({}, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_TRUE(join_shards(shards, 0).empty());
}

struct loss_case {
  int k;
  int m;
  unsigned loss_mask;  // bit i set = shard i lost
};

class rs_loss_sweep : public ::testing::TestWithParam<loss_case> {};

TEST_P(rs_loss_sweep, decodes_iff_enough_survivors) {
  const auto [k, m, loss_mask] = GetParam();
  prng g(static_cast<std::uint64_t>(k) * 31 + m * 7 + loss_mask);
  const auto data = random_shards(k, 12, g);
  rs_code code(k, m);
  const auto cw = code.encode(data);
  std::vector<int> survivors;
  for (int i = 0; i < k + m; ++i) {
    if (!(loss_mask & (1u << i))) survivors.push_back(i);
  }
  const auto decoded = code.decode(take(cw, survivors));
  if (static_cast<int>(survivors.size()) >= k) {
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  } else {
    EXPECT_FALSE(decoded.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    patterns, rs_loss_sweep,
    ::testing::Values(loss_case{4, 4, 0b00000000}, loss_case{4, 4, 0b00001111},
                      loss_case{4, 4, 0b11110000}, loss_case{4, 4, 0b10101010},
                      loss_case{4, 4, 0b01010101}, loss_case{4, 4, 0b11111000},
                      loss_case{2, 6, 0b11111100}, loss_case{6, 2, 0b00000011},
                      loss_case{6, 2, 0b11000000}, loss_case{1, 7, 0b11111110},
                      loss_case{8, 0, 0b00000000},
                      loss_case{8, 0, 0b00000001}));

}  // namespace
}  // namespace mcc::crypto
