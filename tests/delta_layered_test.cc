// Property tests for the layered DELTA instantiation (paper Figure 4):
// across loss patterns, the keys a receiver can reconstruct must match its
// entitlement exactly — no more (security) and no less (liveness).
#include "core/delta_layered.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mcc::core {
namespace {

constexpr int default_groups = 6;

/// Drives the sender algorithm and materializes receiver-side slot records
/// under a configurable per-group loss pattern.
struct delta_harness {
  explicit delta_harness(int groups = default_groups, int key_bits = 64,
                         std::uint64_t seed = 1234)
      : n(groups), sender(1, groups, key_bits, seed) {}

  /// lost[g] = set of packet indices of group g that never arrive.
  /// counts[g] = packets transmitted to group g this slot.
  flid::slot_summary run_slot(std::int64_t slot, int level,
                              std::uint32_t auth_mask,
                              const std::vector<int>& counts,
                              const std::vector<std::set<int>>& lost) {
    sender.begin_slot(slot, auth_mask, counts);
    flid::slot_summary s;
    s.slot = slot;
    s.level = level;
    s.auth_mask = auth_mask;
    s.groups.assign(static_cast<std::size_t>(n) + 1, {});
    for (int g = 1; g <= n; ++g) {
      const int count = counts[static_cast<std::size_t>(g)];
      auto& rec = s.groups[static_cast<std::size_t>(g)];
      rec.full_slot = (g <= level);
      for (int i = 0; i < count; ++i) {
        sim::flid_data hdr;
        sender.fill_fields(slot, g, i, i == count - 1, hdr);
        if (lost[static_cast<std::size_t>(g)].contains(i)) continue;
        ++rec.received;
        rec.expected = count;
        rec.xor_components ^= hdr.component;
        if (g >= 2) rec.decrease = hdr.decrease;
      }
      if (rec.received == 0) rec.expected = -1;
    }
    s.congested = false;
    for (int g = 1; g <= level; ++g) {
      if (!s.groups[static_cast<std::size_t>(g)].complete()) {
        s.congested = true;
        break;
      }
    }
    return s;
  }

  /// Uniform packet counts.
  [[nodiscard]] std::vector<int> counts(int per_group) const {
    return std::vector<int>(static_cast<std::size_t>(n) + 1, per_group);
  }
  [[nodiscard]] std::vector<std::set<int>> no_loss() const {
    return std::vector<std::set<int>>(static_cast<std::size_t>(n) + 1);
  }

  /// Validates a submitted key against the router-side tuple for a group.
  [[nodiscard]] bool valid(std::int64_t slot, int g, crypto::group_key k) const {
    const delta_slot_keys* keys = sender.keys_for(slot + key_lead_slots);
    if (keys == nullptr) return false;
    if (k == keys->top[static_cast<std::size_t>(g)]) return true;
    if (g <= n - 1 && k == keys->decrease[static_cast<std::size_t>(g)]) {
      return true;
    }
    const auto& inc = keys->increase[static_cast<std::size_t>(g)];
    return g >= 2 && inc.has_value() && k == *inc;
  }

  int n;
  delta_layered_sender sender;
  delta_layered_receiver receiver{default_groups};
};

TEST(delta_layered_sender, xor_of_components_equals_top_key_chain) {
  delta_harness h;
  const auto s = h.run_slot(0, h.n, 0, h.counts(5), h.no_loss());
  const delta_slot_keys* keys = h.sender.keys_for(key_lead_slots);
  ASSERT_NE(keys, nullptr);
  crypto::group_key acc = crypto::zero_key;
  for (int g = 1; g <= h.n; ++g) {
    acc ^= s.groups[static_cast<std::size_t>(g)].xor_components;
    EXPECT_EQ(acc, keys->top[static_cast<std::size_t>(g)]) << "group " << g;
  }
}

TEST(delta_layered_sender, single_packet_group_still_carries_key) {
  delta_harness h;
  auto counts = h.counts(1);
  const auto s = h.run_slot(0, h.n, 0, counts, h.no_loss());
  const delta_slot_keys* keys = h.sender.keys_for(key_lead_slots);
  EXPECT_EQ(s.groups[1].xor_components, keys->top[1]);
}

TEST(delta_layered_sender, decrease_fields_carry_lower_group_keys) {
  delta_harness h;
  const auto s = h.run_slot(0, h.n, 0, h.counts(3), h.no_loss());
  const delta_slot_keys* keys = h.sender.keys_for(key_lead_slots);
  for (int g = 2; g <= h.n; ++g) {
    ASSERT_TRUE(s.groups[static_cast<std::size_t>(g)].decrease.has_value());
    EXPECT_EQ(*s.groups[static_cast<std::size_t>(g)].decrease,
              keys->decrease[static_cast<std::size_t>(g - 1)]);
  }
}

TEST(delta_layered_sender, increase_key_only_when_authorized) {
  delta_harness h;
  h.run_slot(0, h.n, (1u << 3) | (1u << 5), h.counts(3), h.no_loss());
  const delta_slot_keys* keys = h.sender.keys_for(key_lead_slots);
  for (int g = 2; g <= h.n; ++g) {
    if (g == 3 || g == 5) {
      ASSERT_TRUE(keys->increase[static_cast<std::size_t>(g)].has_value());
      EXPECT_EQ(*keys->increase[static_cast<std::size_t>(g)],
                keys->top[static_cast<std::size_t>(g - 1)]);
    } else {
      EXPECT_FALSE(keys->increase[static_cast<std::size_t>(g)].has_value());
    }
  }
}

TEST(delta_layered_sender, keys_differ_across_slots) {
  delta_harness h;
  h.run_slot(0, h.n, 0, h.counts(3), h.no_loss());
  const auto top0 = h.sender.keys_for(0 + key_lead_slots)->top;
  h.run_slot(1, h.n, 0, h.counts(3), h.no_loss());
  const auto top1 = h.sender.keys_for(1 + key_lead_slots)->top;
  for (int g = 1; g <= h.n; ++g) {
    EXPECT_NE(top0[static_cast<std::size_t>(g)],
              top1[static_cast<std::size_t>(g)]);
  }
}

TEST(delta_layered_receiver, uncongested_keeps_level_without_authorization) {
  delta_harness h;
  const auto s = h.run_slot(0, 4, 0, h.counts(4), h.no_loss());
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_EQ(rec.next_level, 4);
  ASSERT_EQ(rec.keys.size(), 4u);
  for (const auto& [g, key] : rec.keys) {
    EXPECT_TRUE(h.valid(0, g, key)) << "group " << g;
  }
}

TEST(delta_layered_receiver, uncongested_upgrades_with_authorization) {
  delta_harness h;
  const auto s = h.run_slot(0, 4, 1u << 5, h.counts(4), h.no_loss());
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_EQ(rec.next_level, 5);
  ASSERT_EQ(rec.keys.size(), 5u);
  for (const auto& [g, key] : rec.keys) {
    EXPECT_TRUE(h.valid(0, g, key)) << "group " << g;
  }
}

TEST(delta_layered_receiver, authorization_for_other_group_does_not_help) {
  delta_harness h;
  // Upgrade authorized for group 6, but the receiver holds 4 groups.
  const auto s = h.run_slot(0, 4, 1u << 6, h.counts(4), h.no_loss());
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_EQ(rec.next_level, 4);
}

TEST(delta_layered_receiver, congested_drops_exactly_one_level) {
  delta_harness h;
  auto lost = h.no_loss();
  lost[4].insert(1);  // one loss in the top group
  const auto s = h.run_slot(0, 4, 0, h.counts(4), lost);
  ASSERT_TRUE(s.congested);
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_EQ(rec.next_level, 3);
  ASSERT_EQ(rec.keys.size(), 3u);
  for (const auto& [g, key] : rec.keys) {
    EXPECT_TRUE(h.valid(0, g, key));
    EXPECT_LE(g, 3);
  }
}

TEST(delta_layered_receiver, congested_cannot_forge_top_key) {
  delta_harness h;
  auto lost = h.no_loss();
  lost[2].insert(0);  // loss in a middle group
  const auto s = h.run_slot(0, 4, 0, h.counts(4), lost);
  // XOR of whatever was received must NOT validate for any group >= 2.
  crypto::group_key acc = crypto::zero_key;
  for (int g = 1; g <= 4; ++g) {
    acc ^= s.groups[static_cast<std::size_t>(g)].xor_components;
  }
  for (int g = 2; g <= 4; ++g) EXPECT_FALSE(h.valid(0, g, acc));
}

TEST(delta_layered_receiver, total_group_loss_forces_deeper_reduction) {
  delta_harness h;
  auto lost = h.no_loss();
  // Group 3 loses everything: its decrease field (key for group 2) is gone.
  for (int i = 0; i < 4; ++i) lost[3].insert(i);
  const auto s = h.run_slot(0, 4, 0, h.counts(4), lost);
  const auto rec = h.receiver.reconstruct(s);
  // delta_1 is available (group 2 delivered); delta_2 is not.
  EXPECT_EQ(rec.next_level, 1);
}

TEST(delta_layered_receiver, retains_group_via_increase_key) {
  // The contradiction resolution of section 3.1.1: only group g loses
  // packets, and an upgrade to g is authorized -> the receiver may keep g.
  delta_harness h;
  auto lost = h.no_loss();
  lost[4].insert(2);
  const auto s = h.run_slot(0, 4, 1u << 4, h.counts(4), lost);
  ASSERT_TRUE(s.congested);
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_TRUE(rec.retained_via_increase);
  EXPECT_EQ(rec.next_level, 4);
  for (const auto& [g, key] : rec.keys) {
    EXPECT_TRUE(h.valid(0, g, key)) << "group " << g;
  }
}

TEST(delta_layered_receiver, no_retention_when_lower_groups_also_lose) {
  delta_harness h;
  auto lost = h.no_loss();
  lost[4].insert(2);
  lost[2].insert(0);  // a lower group also lost a packet
  const auto s = h.run_slot(0, 4, 1u << 4, h.counts(4), lost);
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_FALSE(rec.retained_via_increase);
  EXPECT_EQ(rec.next_level, 3);
}

TEST(delta_layered_receiver, congested_at_minimal_level_gets_nothing) {
  delta_harness h;
  auto lost = h.no_loss();
  lost[1].insert(0);
  const auto s = h.run_slot(0, 1, 0, h.counts(4), lost);
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_EQ(rec.next_level, 0);
  EXPECT_TRUE(rec.keys.empty());
}

TEST(delta_layered_receiver, level_zero_summary_yields_nothing) {
  delta_harness h;
  const auto s = h.run_slot(0, 0, 0, h.counts(4), h.no_loss());
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_EQ(rec.next_level, 0);
  EXPECT_TRUE(rec.keys.empty());
}

TEST(delta_layered_receiver, scrubbed_component_breaks_reconstruction) {
  delta_harness h;
  auto s = h.run_slot(0, 3, 0, h.counts(4), h.no_loss());
  // ECN variant: one component of group 2 was invalidated by the router.
  s.groups[2].scrubbed = true;
  s.congested = true;  // marked packets signal congestion
  const auto rec = h.receiver.reconstruct(s);
  EXPECT_LE(rec.next_level, 2);
  for (const auto& [g, key] : rec.keys) EXPECT_TRUE(h.valid(0, g, key));
}

// --- exhaustive sweep: every single-loss position at every level ------------

struct sweep_case {
  int level;
  int lossy_group;  // 0 = no loss
  bool auth_next;   // upgrade authorized for level+1
};

class delta_sweep : public ::testing::TestWithParam<sweep_case> {};

TEST_P(delta_sweep, entitlement_is_exact) {
  const auto [level, lossy_group, auth_next] = GetParam();
  delta_harness h;
  auto lost = h.no_loss();
  if (lossy_group > 0) lost[static_cast<std::size_t>(lossy_group)].insert(0);
  const std::uint32_t mask = auth_next ? (1u << (level + 1)) : 0;
  const auto s = h.run_slot(0, level, mask, h.counts(3), lost);
  const auto rec = h.receiver.reconstruct(s);

  const bool lossy_within = lossy_group >= 1 && lossy_group <= level;
  int expected_level;
  if (!lossy_within) {
    expected_level = (auth_next && level < h.n) ? level + 1 : level;
  } else {
    expected_level = level - 1;
  }
  EXPECT_EQ(rec.next_level, expected_level);

  // Every returned key must validate at the router, and exactly the groups
  // 1..next_level must be covered.
  std::set<int> covered;
  for (const auto& [g, key] : rec.keys) {
    EXPECT_TRUE(h.valid(0, g, key)) << "group " << g;
    covered.insert(g);
  }
  for (int g = 1; g <= rec.next_level; ++g) {
    EXPECT_TRUE(covered.contains(g)) << "missing key for group " << g;
  }
  for (int g : covered) EXPECT_LE(g, rec.next_level);
}

std::vector<sweep_case> all_sweep_cases() {
  std::vector<sweep_case> cases;
  for (int level = 1; level <= default_groups; ++level) {
    for (int lossy = 0; lossy <= level; ++lossy) {
      for (bool auth : {false, true}) {
        // Skip the retained-via-increase corner (tested separately): loss in
        // the top group with auth for the *current* level, not level+1,
        // cannot arise here because we only authorize level+1.
        cases.push_back(sweep_case{level, lossy, auth});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(all_levels_and_loss_positions, delta_sweep,
                         ::testing::ValuesIn(all_sweep_cases()));

// --- security sweep: a receiver of g groups must never validate for g+1 ----

class delta_security_sweep : public ::testing::TestWithParam<int> {};

TEST_P(delta_security_sweep, subscription_cannot_exceed_entitlement) {
  const int level = GetParam();
  delta_harness h;
  const auto s = h.run_slot(0, level, 0, h.counts(3), h.no_loss());
  const auto rec = h.receiver.reconstruct(s);
  ASSERT_EQ(rec.next_level, level);
  // No key the receiver holds validates for any group above its level.
  for (const auto& [g, key] : rec.keys) {
    for (int above = level + 1; above <= h.n; ++above) {
      EXPECT_FALSE(h.valid(0, above, key))
          << "key for group " << g << " opened group " << above;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(levels, delta_security_sweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mcc::core
