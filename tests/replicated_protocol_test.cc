// In-simulator tests for the replicated multicast protocol (one group at a
// time, switch down on loss, switch up on authorization).
#include "flid/replicated.h"

#include <gtest/gtest.h>

#include "mcast/igmp.h"
#include "test_util.h"

namespace mcc::flid {
namespace {

struct replicated_fixture : ::testing::Test {
  replicated_fixture() {
    src = net_.add_host("src");
    r1 = net_.add_router("r1");
    r2 = net_.add_router("r2");
    dst = net_.add_host("dst");
  }

  void wire(double bottleneck_bps) {
    sim::link_config fat;
    fat.bps = 10e6;
    fat.delay = sim::milliseconds(10);
    sim::link_config thin;
    thin.bps = bottleneck_bps;
    thin.delay = sim::milliseconds(20);
    net_.connect(src, r1, fat);
    net_.connect(r1, r2, thin);
    net_.connect(r2, dst, fat);
    net_.finalize_routing();
    igmp_ = std::make_unique<mcast::igmp_agent>(net_, r2);
  }

  sim::scheduler sched_;
  sim::network net_{sched_};
  sim::node_id src, r1, r2, dst;
  std::unique_ptr<mcast::igmp_agent> igmp_;
};

flid_config replicated_config() {
  flid_config fc;
  fc.session_id = 8;
  fc.group_addr_base = 8000;
  fc.num_groups = 5;
  fc.base_rate_bps = 100e3;
  fc.rate_multiplier = 1.4;
  fc.slot_duration = sim::milliseconds(500);
  return fc;
}

TEST_F(replicated_fixture, climbs_to_top_group_with_ample_capacity) {
  wire(10e6);
  const auto fc = replicated_config();
  replicated_sender sender(net_, src, fc, 1);
  sender.start(0);
  replicated_receiver receiver(net_, dst, r2, fc);
  receiver.start(0);
  sched_.run_until(sim::seconds(90.0));
  EXPECT_EQ(receiver.current_group(), fc.num_groups);
}

TEST_F(replicated_fixture, settles_at_sustainable_group_under_bottleneck) {
  wire(300e3);
  const auto fc = replicated_config();  // rates 100,140,196,274,384 Kbps
  replicated_sender sender(net_, src, fc, 1);
  sender.start(0);
  replicated_receiver receiver(net_, dst, r2, fc);
  receiver.start(0);
  sched_.run_until(sim::seconds(120.0));
  // Groups 1-3 fit in 300 Kbps; group 5 (384K) does not. Group 4 (274K)
  // mostly fits; the receiver should hover at 3-4 and never hold 5.
  EXPECT_GE(receiver.current_group(), 2);
  EXPECT_LE(receiver.current_group(), 4);
  const double kbps = receiver.monitor().average_kbps(sim::seconds(60.0),
                                                      sim::seconds(120.0));
  EXPECT_GT(kbps, 130.0);
  EXPECT_LT(kbps, 310.0);
}

TEST_F(replicated_fixture, switches_exactly_one_group_at_a_time) {
  wire(10e6);
  const auto fc = replicated_config();
  replicated_sender sender(net_, src, fc, 1);
  sender.start(0);
  replicated_receiver receiver(net_, dst, r2, fc);
  receiver.start(0);
  int last = 1;
  // Sample the group periodically; it must move in unit steps.
  for (int s = 1; s <= 60; ++s) {
    sched_.run_until(sim::seconds(static_cast<double>(s)));
    const int g = receiver.current_group();
    EXPECT_LE(std::abs(g - last), 1) << "at t=" << s;
    last = g;
  }
}

TEST_F(replicated_fixture, only_one_group_subscribed_at_any_time) {
  wire(10e6);
  const auto fc = replicated_config();
  replicated_sender sender(net_, src, fc, 1);
  sender.start(0);
  replicated_receiver receiver(net_, dst, r2, fc);
  receiver.start(0);
  for (int s = 1; s <= 30; ++s) {
    sched_.run_until(sim::seconds(static_cast<double>(s)));
    int subscribed = 0;
    for (int g = 1; g <= fc.num_groups; ++g) {
      if (net_.get(dst)->host_subscribed(fc.group(g))) ++subscribed;
    }
    EXPECT_EQ(subscribed, 1) << "at t=" << s;
  }
}

TEST_F(replicated_fixture, sender_rates_are_full_content_rates) {
  wire(10e6);
  const auto fc = replicated_config();
  replicated_sender sender(net_, src, fc, 1);
  // Group g of a replicated session carries the whole content at the
  // level-g rate (not a differential layer).
  const double t = sim::to_seconds(fc.slot_duration);
  for (int g = 1; g <= fc.num_groups; ++g) {
    double packets = 0;
    for (std::int64_t s = 0; s < 40; ++s) packets += sender.packets_in_slot(g, s);
    const double bps = packets * 8 * fc.packet_bytes / (40 * t);
    EXPECT_NEAR(bps, fc.cumulative_rate_bps(g), 0.05 * fc.cumulative_rate_bps(g))
        << "group " << g;
  }
}

}  // namespace
}  // namespace mcc::flid
