// Tests for the experiment kit itself: topology sizing, paper defaults,
// session bookkeeping, and failure-injection behaviours of the dumbbell.
#include "exp/scenario.h"

#include <gtest/gtest.h>

namespace mcc::exp {
namespace {

TEST(scenario, paper_defaults_match_section_5_1) {
  dumbbell_config cfg;
  EXPECT_DOUBLE_EQ(cfg.access_bps, 10e6);
  EXPECT_EQ(cfg.access_delay, sim::milliseconds(10));
  EXPECT_EQ(cfg.bottleneck_delay, sim::milliseconds(20));
  EXPECT_DOUBLE_EQ(cfg.buffer_bdp, 2.0);

  dumbbell d(cfg);
  const auto dl = d.default_flid_config(flid_mode::dl);
  EXPECT_EQ(dl.num_groups, 10);
  EXPECT_DOUBLE_EQ(dl.base_rate_bps, 100e3);
  EXPECT_DOUBLE_EQ(dl.rate_multiplier, 1.5);
  EXPECT_EQ(dl.slot_duration, sim::milliseconds(500));
  EXPECT_EQ(dl.packet_bytes, 576);
  const auto ds = d.default_flid_config(flid_mode::ds);
  EXPECT_EQ(ds.slot_duration, sim::milliseconds(250));
  EXPECT_EQ(ds.key_bits, 16);
}

TEST(scenario, bottleneck_buffer_is_two_bdp) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.base_rtt = sim::milliseconds(80);
  dumbbell d(cfg);
  // 2 x 1 Mbps x 80 ms / 8 = 20 KB.
  EXPECT_EQ(d.bottleneck()->config().queue_capacity_bytes, 20'000);
}

TEST(scenario, sessions_get_distinct_ids_and_group_ranges) {
  dumbbell_config cfg;
  dumbbell d(cfg);
  auto& s1 = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  auto& s2 = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  EXPECT_NE(s1.config.session_id, s2.config.session_id);
  EXPECT_NE(s1.config.group_addr_base, s2.config.group_addr_base);
  // Address ranges must not overlap.
  const int end1 = s1.config.group_addr_base + s1.config.num_groups;
  EXPECT_LE(end1, s2.config.group_addr_base);
}

TEST(scenario, ds_sessions_are_protected_dl_sessions_are_not) {
  dumbbell_config cfg;
  dumbbell d(cfg);
  auto& dl = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  auto& ds = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  EXPECT_FALSE(d.net().is_sigma_protected(dl.config.group(1)));
  EXPECT_TRUE(d.net().is_sigma_protected(ds.config.group(1)));
  EXPECT_EQ(dl.ds.delta, nullptr);
  EXPECT_NE(ds.ds.delta, nullptr);
}

TEST(scenario, adding_after_run_is_rejected) {
  dumbbell_config cfg;
  dumbbell d(cfg);
  d.add_flid_session(flid_mode::dl, {receiver_options{}});
  d.run_until(sim::seconds(1.0));
  EXPECT_THROW(d.add_tcp_flow(), util::invariant_error);
  EXPECT_THROW(d.add_flid_session(flid_mode::dl, {receiver_options{}}),
               util::invariant_error);
}

TEST(scenario, multi_receiver_sessions_share_one_bottleneck_stream) {
  // 4 receivers of one session: the bottleneck carries the session once.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  dumbbell d(cfg);
  auto& s =
      d.add_flid_session(flid_mode::dl, {receiver_options{}, receiver_options{},
                                         receiver_options{}, receiver_options{}});
  d.run_until(sim::seconds(30.0));
  // All four receivers got roughly the same bytes...
  const double r0 = s.receiver(0).monitor().average_kbps(sim::seconds(10.0),
                                                         sim::seconds(30.0));
  for (int i = 1; i < 4; ++i) {
    const double ri = s.receiver(i).monitor().average_kbps(
        sim::seconds(10.0), sim::seconds(30.0));
    EXPECT_NEAR(ri, r0, 0.15 * r0);
  }
  // ...but the bottleneck carried only ~one copy of the session (not four).
  const double bottleneck_kbps =
      8.0 * static_cast<double>(d.bottleneck()->stats().bytes_delivered) /
      sim::to_seconds(sim::seconds(30.0)) / 1e3;
  EXPECT_LT(bottleneck_kbps, 2.0 * r0);
}

TEST(scenario, average_receiver_kbps_averages_across_receivers) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  dumbbell d(cfg);
  auto& s = d.add_flid_session(flid_mode::dl,
                               {receiver_options{}, receiver_options{}});
  d.run_until(sim::seconds(20.0));
  const double avg =
      average_receiver_kbps(s, sim::seconds(5.0), sim::seconds(20.0));
  const double r0 =
      s.receiver(0).monitor().average_kbps(sim::seconds(5.0), sim::seconds(20.0));
  const double r1 =
      s.receiver(1).monitor().average_kbps(sim::seconds(5.0), sim::seconds(20.0));
  EXPECT_NEAR(avg, (r0 + r1) / 2.0, 1e-9);
}

TEST(scenario, seeds_change_outcomes_deterministically) {
  const auto run_once = [](std::uint64_t seed) {
    dumbbell_config cfg;
    cfg.bottleneck_bps = 500e3;
    cfg.seed = seed;
    dumbbell d(cfg);
    auto& s = d.add_flid_session(flid_mode::dl, {receiver_options{}});
    d.add_tcp_flow();
    d.run_until(sim::seconds(30.0));
    return s.receiver().monitor().total_bytes();
  };
  // Same seed -> identical simulation; different seed -> different run.
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace mcc::exp
