// Tests for the experiment kit itself: topology sizing, paper defaults,
// session bookkeeping, and failure-injection behaviours of the dumbbell.
#include "exp/testbed.h"

#include <gtest/gtest.h>

namespace mcc::exp {
namespace {

TEST(scenario, paper_defaults_match_section_5_1) {
  dumbbell_config cfg;
  EXPECT_DOUBLE_EQ(cfg.access_bps, 10e6);
  EXPECT_EQ(cfg.access_delay, sim::milliseconds(10));
  EXPECT_EQ(cfg.bottleneck_delay, sim::milliseconds(20));
  EXPECT_DOUBLE_EQ(cfg.buffer_bdp, 2.0);

  testbed d(dumbbell(cfg));
  const auto dl = d.default_flid_config(flid_mode::dl);
  EXPECT_EQ(dl.num_groups, 10);
  EXPECT_DOUBLE_EQ(dl.base_rate_bps, 100e3);
  EXPECT_DOUBLE_EQ(dl.rate_multiplier, 1.5);
  EXPECT_EQ(dl.slot_duration, sim::milliseconds(500));
  EXPECT_EQ(dl.packet_bytes, 576);
  const auto ds = d.default_flid_config(flid_mode::ds);
  EXPECT_EQ(ds.slot_duration, sim::milliseconds(250));
  EXPECT_EQ(ds.key_bits, 16);
}

TEST(scenario, bottleneck_buffer_is_two_bdp) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.base_rtt = sim::milliseconds(80);
  testbed d(dumbbell(cfg));
  // 2 x 1 Mbps x 80 ms / 8 = 20 KB.
  EXPECT_EQ(d.bottleneck()->config().queue_capacity_bytes, 20'000);
}

TEST(scenario, sessions_get_distinct_ids_and_group_ranges) {
  dumbbell_config cfg;
  testbed d(dumbbell(cfg));
  auto& s1 = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  auto& s2 = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  EXPECT_NE(s1.config.session_id, s2.config.session_id);
  EXPECT_NE(s1.config.group_addr_base, s2.config.group_addr_base);
  // Address ranges must not overlap.
  const int end1 = s1.config.group_addr_base + s1.config.num_groups;
  EXPECT_LE(end1, s2.config.group_addr_base);
}

TEST(scenario, ds_sessions_are_protected_dl_sessions_are_not) {
  dumbbell_config cfg;
  testbed d(dumbbell(cfg));
  auto& dl = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  auto& ds = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  EXPECT_FALSE(d.net().is_sigma_protected(dl.config.group(1)));
  EXPECT_TRUE(d.net().is_sigma_protected(ds.config.group(1)));
  EXPECT_EQ(dl.ds.delta, nullptr);
  EXPECT_NE(ds.ds.delta, nullptr);
}

TEST(scenario, adding_after_run_is_rejected) {
  dumbbell_config cfg;
  testbed d(dumbbell(cfg));
  d.add_flid_session(flid_mode::dl, {receiver_options{}});
  d.run_until(sim::seconds(1.0));
  EXPECT_THROW(d.add_tcp_flow(), util::invariant_error);
  EXPECT_THROW(d.add_flid_session(flid_mode::dl, {receiver_options{}}),
               util::invariant_error);
}

TEST(scenario, multi_receiver_sessions_share_one_bottleneck_stream) {
  // 4 receivers of one session: the bottleneck carries the session once.
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  auto& s =
      d.add_flid_session(flid_mode::dl, {receiver_options{}, receiver_options{},
                                         receiver_options{}, receiver_options{}});
  d.run_until(sim::seconds(30.0));
  // All four receivers got roughly the same bytes...
  const double r0 = s.receiver(0).monitor().average_kbps(sim::seconds(10.0),
                                                         sim::seconds(30.0));
  for (int i = 1; i < 4; ++i) {
    const double ri = s.receiver(i).monitor().average_kbps(
        sim::seconds(10.0), sim::seconds(30.0));
    EXPECT_NEAR(ri, r0, 0.15 * r0);
  }
  // ...but the bottleneck carried only ~one copy of the session (not four).
  const double bottleneck_kbps =
      8.0 * static_cast<double>(d.bottleneck()->stats().bytes_delivered) /
      sim::to_seconds(sim::seconds(30.0)) / 1e3;
  EXPECT_LT(bottleneck_kbps, 2.0 * r0);
}

TEST(scenario, average_receiver_kbps_averages_across_receivers) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  auto& s = d.add_flid_session(flid_mode::dl,
                               {receiver_options{}, receiver_options{}});
  d.run_until(sim::seconds(20.0));
  const double avg =
      average_receiver_kbps(s, sim::seconds(5.0), sim::seconds(20.0));
  const double r0 =
      s.receiver(0).monitor().average_kbps(sim::seconds(5.0), sim::seconds(20.0));
  const double r1 =
      s.receiver(1).monitor().average_kbps(sim::seconds(5.0), sim::seconds(20.0));
  EXPECT_NEAR(avg, (r0 + r1) / 2.0, 1e-9);
}

TEST(scenario, seeds_change_outcomes_deterministically) {
  const auto run_once = [](std::uint64_t seed) {
    dumbbell_config cfg;
    cfg.bottleneck_bps = 500e3;
    cfg.seed = seed;
    testbed d(dumbbell(cfg));
    auto& s = d.add_flid_session(flid_mode::dl, {receiver_options{}});
    d.add_tcp_flow();
    d.run_until(sim::seconds(30.0));
    return s.receiver().monitor().total_bytes();
  };
  // Same seed -> identical simulation; different seed -> different run.
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(scenario, access_aqm_selects_edge_queue_discipline) {
  // Scenario configs historically applied AQM only to backbone links —
  // access links were silently always drop-tail. access_aqm makes the edge
  // queue selectable per testbed.
  dumbbell_config cfg;
  cfg.access_aqm.discipline = sim::qdisc::red;
  testbed d(dumbbell(cfg));
  const sim::node_id h = d.attach_host("probe", "r");
  d.add_flid_session(flid_mode::dl, {receiver_options{}});
  d.run_until(sim::milliseconds(1));  // finalizes routing
  sim::link* access = d.net().next_hop(h, d.router("r"));
  ASSERT_NE(access, nullptr);
  EXPECT_EQ(access->config().aqm.discipline, sim::qdisc::red);
  // An unset access AQM seed inherited the testbed seed (then mixed with
  // the per-link counter by network::connect), so RED draws are seeded.
  EXPECT_NE(access->config().aqm.seed, 0u);
  // The backbone keeps its own (default drop-tail) discipline.
  EXPECT_EQ(d.bottleneck()->config().aqm.discipline, sim::qdisc::droptail);
}

TEST(scenario, access_links_default_to_droptail) {
  dumbbell_config cfg;
  cfg.aqm.discipline = sim::qdisc::codel;  // backbone only
  testbed d(dumbbell(cfg));
  const sim::node_id h = d.attach_host("probe", "r");
  d.add_flid_session(flid_mode::dl, {receiver_options{}});
  d.run_until(sim::milliseconds(1));
  sim::link* access = d.net().next_hop(h, d.router("r"));
  ASSERT_NE(access, nullptr);
  EXPECT_EQ(access->config().aqm.discipline, sim::qdisc::droptail);
  EXPECT_EQ(d.bottleneck()->config().aqm.discipline, sim::qdisc::codel);
}

TEST(scenario, interface_keying_threads_from_config_to_every_edge) {
  // Off by default; when a scenario config switches it on, every edge agent
  // the testbed creates validates interface-perturbed keys, and the
  // receiver strategies compiled for that testbed submit them — an honest
  // DS session must climb exactly as without the countermeasure.
  EXPECT_FALSE(dumbbell_config{}.interface_keying);
  EXPECT_FALSE(tree_config{}.interface_keying);
  EXPECT_FALSE(testbed_config{}.interface_keying);

  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  cfg.interface_keying = true;
  testbed d(dumbbell(cfg));
  EXPECT_TRUE(d.config().interface_keying);
  auto& s = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(60.0));
  EXPECT_TRUE(d.sigma().interface_keying());
  EXPECT_TRUE(d.sigma("l").interface_keying());  // sender edge too
  EXPECT_GT(d.sigma().stats().valid_keys, 0u);
  EXPECT_EQ(d.sigma().stats().invalid_keys, 0u);
  EXPECT_GE(s.receiver().level(), 5);
}

TEST(scenario, negative_access_delay_is_rejected_loudly) {
  // The old API used -1 as a "use the default" sentinel on access_delay; a
  // misconfigured negative delay now fails instead of silently meaning
  // "default".
  dumbbell_config cfg;
  testbed d(dumbbell(cfg));
  receiver_options opt;
  opt.access_delay = sim::milliseconds(-5);
  EXPECT_THROW(d.add_flid_session(flid_mode::dl, {opt}),
               util::invariant_error);
  EXPECT_THROW(d.attach_host("h", "r", 1e6, -1), util::invariant_error);
}

TEST(scenario, bad_session_placement_fails_before_anything_starts) {
  // Placement is validated before the sender attaches: a typo'd site name
  // must not leave a half-built session (started sender, consumed id)
  // behind for callers that catch the error and keep running.
  parking_lot_config cfg;
  testbed d(parking_lot(cfg));
  receiver_options typo;
  typo.at = "r9";
  EXPECT_THROW(d.add_flid_session(flid_mode::ds, {typo}),
               util::invariant_error);
  session_options bad_sender;
  bad_sender.sender_at = "nowhere";
  EXPECT_THROW(
      d.add_flid_session(flid_mode::ds, {receiver_options{}}, bad_sender),
      util::invariant_error);
  EXPECT_EQ(d.next_session_id(), 1);
  const int nodes_before = d.net().node_count();
  // The testbed is still usable: a valid session runs fine afterwards.
  auto& session = d.add_flid_session(flid_mode::ds, {receiver_options{}});
  d.run_until(sim::seconds(20.0));
  EXPECT_GT(d.net().node_count(), nodes_before);
  EXPECT_GT(session.receiver().monitor().total_bytes(), 0);
}

TEST(scenario, receivers_attach_to_named_routers) {
  // A star with receivers on two different spokes: each spoke receiver is
  // limited by its own spoke link, not by the other's.
  star_config cfg;
  cfg.spokes = 3;
  cfg.spoke_bps = 1e6;
  testbed d(star(cfg));
  receiver_options on_s1;
  on_s1.at = "s1";
  receiver_options on_s2;
  on_s2.at = "s2";
  auto& session = d.add_flid_session(flid_mode::dl, {on_s1, on_s2});
  d.run_until(sim::seconds(30.0));
  // Both receivers climb: their spokes are independent 1 Mbps paths.
  const double r0 = session.receiver(0).monitor().average_kbps(
      sim::seconds(10.0), sim::seconds(30.0));
  const double r1 = session.receiver(1).monitor().average_kbps(
      sim::seconds(10.0), sim::seconds(30.0));
  EXPECT_GT(r0, 300.0);
  EXPECT_NEAR(r1, r0, 0.25 * r0);
  // And the unused spoke carried no session traffic.
  EXPECT_EQ(d.topo().between("hub", "s3")->stats().delivered, 0u);
}

TEST(scenario, tree_testbed_runs_a_session_to_a_leaf) {
  tree_config cfg;
  cfg.depth = 2;
  cfg.fanout = 2;
  cfg.edge_bps = 1e6;
  testbed d(balanced_tree(cfg));
  receiver_options left_leaf;   // default receiver site: t2_0
  receiver_options right_leaf;
  right_leaf.at = "t2_3";
  auto& session = d.add_flid_session(flid_mode::ds, {left_leaf, right_leaf});
  d.run_until(sim::seconds(30.0));
  EXPECT_GT(session.receiver(0).monitor().average_kbps(sim::seconds(10.0),
                                                       sim::seconds(30.0)),
            200.0);
  EXPECT_GT(session.receiver(1).monitor().average_kbps(sim::seconds(10.0),
                                                       sim::seconds(30.0)),
            200.0);
  // Each leaf's edge SIGMA agent did its own enforcement.
  EXPECT_GT(d.sigma("t2_0").stats().valid_keys, 0u);
  EXPECT_GT(d.sigma("t2_3").stats().valid_keys, 0u);
}

TEST(scenario, parking_lot_attacker_behind_second_bottleneck_is_contained) {
  // The scenario the dumbbell could not express: a SIGMA-protected session
  // crossing two bottlenecks in series, with the misbehaving receiver behind
  // the second one. Its edge router ("r2") must contain the inflation while
  // an honest receiver of the same session behind the FIRST bottleneck
  // ("r1") keeps its allocation.
  parking_lot_config cfg;
  cfg.bottlenecks = 2;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 9;
  testbed d(parking_lot(cfg));
  receiver_options honest_near;
  honest_near.at = "r1";
  receiver_options attacker_far;
  attacker_far.at = "r2";
  attacker_far.inflate = true;
  attacker_far.inflate_at = sim::seconds(30.0);
  auto& session =
      d.add_flid_session(flid_mode::ds, {honest_near, attacker_far});
  flow_options tcp_far;  // competes on both bottlenecks
  auto& t1 = d.add_tcp_flow(tcp_far);
  d.run_until(sim::seconds(90.0));

  const sim::time_ns t0 = sim::seconds(45.0);
  const sim::time_ns te = sim::seconds(90.0);
  const double honest_kbps =
      session.receiver(0).monitor().average_kbps(t0, te);
  const double attacker_kbps =
      session.receiver(1).monitor().average_kbps(t0, te);
  const double tcp_kbps = t1.sink->monitor().average_kbps(t0, te);
  // The attacker's invalid keys landed at its own edge router, not the
  // near one.
  EXPECT_GT(d.sigma("r2").stats().invalid_keys, 0u);
  EXPECT_EQ(d.sigma("r1").stats().invalid_keys, 0u);
  // Containment: no unprotected-style grab of the 1 Mbps bottlenecks.
  EXPECT_LT(attacker_kbps, 750.0);
  EXPECT_GT(honest_kbps, 100.0);
  EXPECT_GT(tcp_kbps, 50.0);
}

// ---------------------------------------------------------------------------
// Cross-session roll-up: per-session columns, Jain fairness, conservation
// ---------------------------------------------------------------------------

TEST(session_rollup_stats, per_session_columns_conserve_delivered_bytes) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 3;
  testbed d(dumbbell(cfg));
  const auto sessions =
      d.add_session_array(3, flid_mode::ds, {receiver_options{}});
  const sim::time_ns horizon = sim::seconds(30.0);
  d.run_until(horizon);

  const session_rollup r = session_rollup_for(sessions, 0, horizon);
  ASSERT_EQ(r.sessions.size(), 3u);
  EXPECT_EQ(r.sessions[0].name, "session1");
  EXPECT_EQ(r.sessions[1].name, "session2");
  EXPECT_EQ(r.sessions[2].name, "session3");
  // The total is exactly the sum of the per-session columns...
  double column_sum = 0.0;
  for (const auto& c : r.sessions) column_sum += c.rate;
  EXPECT_DOUBLE_EQ(r.total_rate, column_sum);
  // ...each receiver byte lands in exactly one session's column (the rate
  // columns and the byte counters are independent read-outs of the same
  // monitors, so they must reconcile over the full-run window)...
  const double column_bytes =
      r.total_rate * 1e3 / 8.0 * (static_cast<double>(horizon) / 1e9);
  double receiver_bytes = 0.0;
  for (flid_session* s : sessions) {
    for (auto& rcv : s->receivers) {
      receiver_bytes += static_cast<double>(rcv->monitor().total_bytes());
    }
  }
  ASSERT_GT(receiver_bytes, 0.0);
  EXPECT_NEAR(column_bytes / receiver_bytes, 1.0, 0.02);
  // ...and the columns never claim more than the shared link delivered. The
  // link side is larger: it also carries layers a receiver never subscribed
  // to (pruned downstream) and packets still in flight at the horizon.
  const double link_bytes =
      static_cast<double>(d.bottleneck()->stats().bytes_delivered);
  EXPECT_GT(link_bytes, 0.0);
  EXPECT_LE(column_bytes, link_bytes);
  EXPECT_GT(column_bytes / link_bytes, 0.75)
      << "goodput columns should account for most of the link's bytes";
}

TEST(session_rollup_stats, identical_honest_sessions_reach_jain_one) {
  // Exactly equal rates give exactly 1.0 — the index itself is pinned...
  session_sample even;
  even.rate = 250.0;
  const session_rollup unit = roll_up_sessions({even, even, even});
  EXPECT_DOUBLE_EQ(unit.jain, 1.0);

  // ...and end to end, three identical honest sessions on their own star
  // spokes (same ladder, same spoke capacity, no contention between them)
  // converge to equal shares.
  star_config cfg;
  cfg.spokes = 3;
  cfg.seed = 4;
  testbed d(star(cfg));
  std::vector<flid_session*> sessions;
  for (int i = 1; i <= 3; ++i) {
    receiver_options r;
    r.at = "s" + std::to_string(i);
    sessions.push_back(&d.add_flid_session(flid_mode::ds, {r}));
  }
  d.run_until(sim::seconds(40.0));
  // Skip the start-up ramp: fairness is a steady-state claim.
  const session_rollup r =
      session_rollup_for(sessions, sim::seconds(10.0), sim::seconds(40.0));
  EXPECT_NEAR(r.jain, 1.0, 0.01)
      << "identical honest sessions should converge to equal shares";
  for (const auto& c : r.sessions) EXPECT_GT(c.rate, 0.0) << c.name;
}

TEST(session_rollup_stats, three_session_smoke_on_every_topology) {
  const struct {
    const char* name;
    testbed_config config;
  } topos[] = {{"dumbbell", dumbbell({})},
               {"parking_lot", parking_lot({})},
               {"star", star({})},
               {"tree", balanced_tree({})}};
  for (const auto& t : topos) {
    SCOPED_TRACE(t.name);
    testbed d(t.config);
    const auto sessions =
        d.add_session_array(3, flid_mode::ds, {receiver_options{}});
    d.run_until(sim::seconds(20.0));
    const session_rollup r =
        session_rollup_for(sessions, 0, sim::seconds(20.0));
    ASSERT_EQ(r.sessions.size(), 3u);
    EXPECT_GT(r.total_rate, 0.0);
    EXPECT_GT(r.jain, 0.0);
    for (const auto& c : r.sessions) {
      EXPECT_GT(c.rate, 0.0) << c.name;
      EXPECT_FALSE(c.smoothed.empty()) << c.name;
    }
  }
}

TEST(session_rollup_stats, smoothing_state_never_leaks_across_sessions) {
  // Regression: per-session smoothed series must depend only on the
  // session's own samples, never on the order sessions were rolled up in.
  session_sample a;
  a.name = "a";
  a.rate = 100.0;
  a.raw = {{0.0, 100.0}, {1.0, 300.0}, {2.0, 50.0}};
  session_sample b;
  b.name = "b";
  b.rate = 900.0;
  b.raw = {{0.0, 900.0}, {1.0, 900.0}, {2.0, 900.0}};

  const session_rollup ab = roll_up_sessions({a, b});
  const session_rollup ba = roll_up_sessions({b, a});
  ASSERT_EQ(ab.sessions.size(), 2u);
  ASSERT_EQ(ba.sessions.size(), 2u);
  EXPECT_EQ(ab.sessions[0].name, "a");
  EXPECT_EQ(ba.sessions[1].name, "a");
  EXPECT_EQ(ab.sessions[0].smoothed, ba.sessions[1].smoothed)
      << "a's smoothed column changed when b was rolled up first";
  EXPECT_EQ(ab.sessions[1].smoothed, ba.sessions[0].smoothed);
  EXPECT_DOUBLE_EQ(ab.jain, ba.jain);
  EXPECT_DOUBLE_EQ(ab.total_rate, ba.total_rate);
  // And the smoother itself starts fresh per call: first output == first raw.
  ASSERT_FALSE(ab.sessions[0].smoothed.empty());
  EXPECT_DOUBLE_EQ(ab.sessions[0].smoothed.front().second, 100.0);
}

}  // namespace
}  // namespace mcc::exp
