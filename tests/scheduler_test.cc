#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

namespace mcc::sim {
namespace {

TEST(scheduler, starts_at_time_zero) {
  scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(scheduler, events_fire_in_time_order) {
  scheduler s;
  std::vector<int> order;
  s.at(milliseconds(30), [&] { order.push_back(3); });
  s.at(milliseconds(10), [&] { order.push_back(1); });
  s.at(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(scheduler, equal_time_events_fire_in_scheduling_order) {
  scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(milliseconds(5), [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(scheduler, now_advances_to_event_time) {
  scheduler s;
  time_ns seen = -1;
  s.at(seconds(1.5), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, seconds(1.5));
  EXPECT_EQ(s.now(), seconds(1.5));
}

TEST(scheduler, after_is_relative_to_now) {
  scheduler s;
  time_ns seen = -1;
  s.at(milliseconds(100), [&] {
    s.after(milliseconds(50), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, milliseconds(150));
}

TEST(scheduler, run_until_stops_at_horizon) {
  scheduler s;
  int fired = 0;
  s.at(milliseconds(10), [&] { ++fired; });
  s.at(milliseconds(30), [&] { ++fired; });
  s.run_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), milliseconds(20));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(milliseconds(40));
  EXPECT_EQ(fired, 2);
}

TEST(scheduler, rejects_events_in_the_past) {
  scheduler s;
  s.at(milliseconds(10), [] {});
  s.run_until(milliseconds(20));
  EXPECT_THROW(s.at(milliseconds(5), [] {}), util::invariant_error);
}

TEST(scheduler, cancel_prevents_execution) {
  scheduler s;
  int fired = 0;
  event_handle h = s.at(milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(scheduler, cancel_is_idempotent_and_safe_after_fire) {
  scheduler s;
  int fired = 0;
  event_handle h = s.at(milliseconds(1), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
  h.cancel();
}

TEST(scheduler, default_handle_is_inert) {
  event_handle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(scheduler, handle_outlives_scheduler) {
  event_handle h;
  {
    scheduler s;
    h = s.at(milliseconds(10), [] {});
    EXPECT_TRUE(h.pending());
  }
  // The scheduler (and its event pool) are gone; the handle must go inert
  // rather than dangle.
  EXPECT_FALSE(h.pending());
  h.cancel();  // safe no-op
}

TEST(scheduler, stale_handle_does_not_affect_recycled_slot) {
  scheduler s;
  int first = 0;
  int second = 0;
  event_handle h1 = s.at(milliseconds(1), [&] { ++first; });
  s.run();
  ASSERT_EQ(first, 1);
  // The fired event's pool slot is recycled by the next schedule; the old
  // handle's generation is stale, so cancelling it must not touch the new
  // event.
  event_handle h2 = s.at(milliseconds(2), [&] { ++second; });
  EXPECT_FALSE(h1.pending());
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  s.run();
  EXPECT_EQ(second, 1);
}

TEST(scheduler, cancel_from_within_an_event) {
  scheduler s;
  int fired = 0;
  event_handle victim = s.at(milliseconds(10), [&] { ++fired; });
  s.at(milliseconds(5), [&] { victim.cancel(); });
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(scheduler, fifo_tie_break_survives_cancellations) {
  scheduler s;
  std::vector<int> order;
  std::vector<event_handle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(s.at(milliseconds(5), [&, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  s.run();
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(2 * i + 1));
  }
}

TEST(scheduler, pool_reuse_under_churn_stays_deterministic) {
  // Schedule/cancel/fire far more events than the pool's initial capacity,
  // interleaved, and check the executed count and clock.
  scheduler s;
  std::uint64_t fired = 0;
  std::vector<event_handle> cancelled;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 500; ++i) {
      s.at(milliseconds(round * 10 + 1), [&] { ++fired; });
      cancelled.push_back(s.at(milliseconds(round * 10 + 2), [&] { ++fired; }));
    }
    for (auto& h : cancelled) h.cancel();
    cancelled.clear();
    s.run_until(milliseconds(round * 10 + 5));
  }
  EXPECT_EQ(fired, 5000u);
  EXPECT_EQ(s.executed_events(), 5000u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(scheduler, large_capture_falls_back_to_heap_and_still_runs) {
  scheduler s;
  std::array<std::uint64_t, 32> big{};  // 256 bytes: exceeds inline storage
  big[31] = 7;
  std::uint64_t seen = 0;
  s.at(milliseconds(1), [big, &seen] { seen = big[31]; });
  s.run();
  EXPECT_EQ(seen, 7u);
}

TEST(scheduler, events_scheduled_during_execution_run) {
  scheduler s;
  std::vector<int> order;
  s.at(milliseconds(10), [&] {
    order.push_back(1);
    s.after(0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(scheduler, executed_event_count) {
  scheduler s;
  for (int i = 0; i < 5; ++i) s.at(milliseconds(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(scheduler, cascading_chain_terminates_at_horizon) {
  scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    s.after(milliseconds(10), tick);
  };
  s.at(0, tick);
  s.run_until(milliseconds(95));
  EXPECT_EQ(count, 10);  // t = 0, 10, ..., 90
}

TEST(time_helpers, conversions_are_consistent) {
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_EQ(milliseconds(250), 250'000'000);
  EXPECT_EQ(microseconds(5), 5'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(80)), 80.0);
}

TEST(time_helpers, transmission_time_matches_rate) {
  // 1000 bytes at 1 Mbps = 8 ms.
  EXPECT_EQ(transmission_time(1000, 1e6), milliseconds(8));
  // 576 bytes at 10 Mbps = 460.8 us.
  EXPECT_EQ(transmission_time(576, 10e6), nanoseconds(460'800));
}

}  // namespace
}  // namespace mcc::sim
