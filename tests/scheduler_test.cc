#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "crypto/prng.h"

namespace mcc::sim {
namespace {

scheduler_config wheel_cfg(time_ns granularity = 1024) {
  scheduler_config cfg;
  cfg.policy = sched_policy::wheel;
  cfg.wheel_granularity = granularity;
  return cfg;
}

TEST(scheduler, starts_at_time_zero) {
  scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(scheduler, events_fire_in_time_order) {
  scheduler s;
  std::vector<int> order;
  s.at(milliseconds(30), [&] { order.push_back(3); });
  s.at(milliseconds(10), [&] { order.push_back(1); });
  s.at(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(scheduler, equal_time_events_fire_in_scheduling_order) {
  scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(milliseconds(5), [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(scheduler, now_advances_to_event_time) {
  scheduler s;
  time_ns seen = -1;
  s.at(seconds(1.5), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, seconds(1.5));
  EXPECT_EQ(s.now(), seconds(1.5));
}

TEST(scheduler, after_is_relative_to_now) {
  scheduler s;
  time_ns seen = -1;
  s.at(milliseconds(100), [&] {
    s.after(milliseconds(50), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, milliseconds(150));
}

TEST(scheduler, run_until_stops_at_horizon) {
  scheduler s;
  int fired = 0;
  s.at(milliseconds(10), [&] { ++fired; });
  s.at(milliseconds(30), [&] { ++fired; });
  s.run_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), milliseconds(20));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(milliseconds(40));
  EXPECT_EQ(fired, 2);
}

TEST(scheduler, rejects_events_in_the_past) {
  scheduler s;
  s.at(milliseconds(10), [] {});
  s.run_until(milliseconds(20));
  EXPECT_THROW(s.at(milliseconds(5), [] {}), util::invariant_error);
}

TEST(scheduler, cancel_prevents_execution) {
  scheduler s;
  int fired = 0;
  event_handle h = s.at(milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(scheduler, cancel_is_idempotent_and_safe_after_fire) {
  scheduler s;
  int fired = 0;
  event_handle h = s.at(milliseconds(1), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
  h.cancel();
}

TEST(scheduler, default_handle_is_inert) {
  event_handle h;
  EXPECT_FALSE(h.pending());
  h.cancel();
}

TEST(scheduler, handle_outlives_scheduler) {
  event_handle h;
  {
    scheduler s;
    h = s.at(milliseconds(10), [] {});
    EXPECT_TRUE(h.pending());
  }
  // The scheduler (and its event pool) are gone; the handle must go inert
  // rather than dangle.
  EXPECT_FALSE(h.pending());
  h.cancel();  // safe no-op
}

TEST(scheduler, stale_handle_does_not_affect_recycled_slot) {
  scheduler s;
  int first = 0;
  int second = 0;
  event_handle h1 = s.at(milliseconds(1), [&] { ++first; });
  s.run();
  ASSERT_EQ(first, 1);
  // The fired event's pool slot is recycled by the next schedule; the old
  // handle's generation is stale, so cancelling it must not touch the new
  // event.
  event_handle h2 = s.at(milliseconds(2), [&] { ++second; });
  EXPECT_FALSE(h1.pending());
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  s.run();
  EXPECT_EQ(second, 1);
}

TEST(scheduler, cancel_from_within_an_event) {
  scheduler s;
  int fired = 0;
  event_handle victim = s.at(milliseconds(10), [&] { ++fired; });
  s.at(milliseconds(5), [&] { victim.cancel(); });
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(scheduler, fifo_tie_break_survives_cancellations) {
  scheduler s;
  std::vector<int> order;
  std::vector<event_handle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(s.at(milliseconds(5), [&, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  s.run();
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(2 * i + 1));
  }
}

TEST(scheduler, pool_reuse_under_churn_stays_deterministic) {
  // Schedule/cancel/fire far more events than the pool's initial capacity,
  // interleaved, and check the executed count and clock.
  scheduler s;
  std::uint64_t fired = 0;
  std::vector<event_handle> cancelled;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 500; ++i) {
      s.at(milliseconds(round * 10 + 1), [&] { ++fired; });
      cancelled.push_back(s.at(milliseconds(round * 10 + 2), [&] { ++fired; }));
    }
    for (auto& h : cancelled) h.cancel();
    cancelled.clear();
    s.run_until(milliseconds(round * 10 + 5));
  }
  EXPECT_EQ(fired, 5000u);
  EXPECT_EQ(s.executed_events(), 5000u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(scheduler, large_capture_falls_back_to_heap_and_still_runs) {
  scheduler s;
  std::array<std::uint64_t, 32> big{};  // 256 bytes: exceeds inline storage
  big[31] = 7;
  std::uint64_t seen = 0;
  s.at(milliseconds(1), [big, &seen] { seen = big[31]; });
  s.run();
  EXPECT_EQ(seen, 7u);
}

TEST(scheduler, events_scheduled_during_execution_run) {
  scheduler s;
  std::vector<int> order;
  s.at(milliseconds(10), [&] {
    order.push_back(1);
    s.after(0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(scheduler, executed_event_count) {
  scheduler s;
  for (int i = 0; i < 5; ++i) s.at(milliseconds(i), [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 5u);
}

TEST(scheduler, cascading_chain_terminates_at_horizon) {
  scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    s.after(milliseconds(10), tick);
  };
  s.at(0, tick);
  s.run_until(milliseconds(95));
  EXPECT_EQ(count, 10);  // t = 0, 10, ..., 90
}

// --- timer-wheel policy ------------------------------------------------------

TEST(scheduler_wheel, reports_policy_and_fires_in_order) {
  scheduler s(wheel_cfg());
  EXPECT_EQ(s.policy(), sched_policy::wheel);
  std::vector<int> order;
  s.at(milliseconds(30), [&] { order.push_back(3); });
  s.at(milliseconds(10), [&] { order.push_back(1); });
  s.at(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(30));
}

TEST(scheduler_wheel, equal_time_events_keep_scheduling_order) {
  // Intra-bucket order is (when, seq): events parked in the same bucket must
  // come out in FIFO order even after a cascade reshuffles the bucket.
  scheduler s(wheel_cfg());
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(seconds(1.0), [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(scheduler_wheel, handle_outlives_scheduler) {
  event_handle h;
  {
    scheduler s(wheel_cfg());
    h = s.at(milliseconds(10), [] {});
    EXPECT_TRUE(h.pending());
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // safe no-op
}

TEST(scheduler_wheel, stale_handle_does_not_affect_recycled_slot) {
  scheduler s(wheel_cfg());
  int first = 0;
  int second = 0;
  event_handle h1 = s.at(milliseconds(1), [&] { ++first; });
  s.run();
  ASSERT_EQ(first, 1);
  event_handle h2 = s.at(milliseconds(2), [&] { ++second; });
  EXPECT_FALSE(h1.pending());
  h1.cancel();  // stale generation: must not touch the recycled slot
  EXPECT_TRUE(h2.pending());
  s.run();
  EXPECT_EQ(second, 1);
}

TEST(scheduler_wheel, cancel_in_bucket_prevents_execution) {
  // Cancel events parked at every wheel level (and the far wheel) before any
  // cascade has moved them; none may fire, and the queue must drain fully.
  scheduler s(wheel_cfg());
  int fired = 0;
  std::vector<event_handle> doomed;
  doomed.push_back(s.at(microseconds(5), [&] { ++fired; }));     // level 0
  doomed.push_back(s.at(milliseconds(3), [&] { ++fired; }));     // level 1+
  doomed.push_back(s.at(seconds(2.0), [&] { ++fired; }));        // level 2+
  doomed.push_back(s.at(seconds(8000.0), [&] { ++fired; }));     // far wheel
  int kept = 0;
  s.at(seconds(9000.0), [&] { ++kept; });
  EXPECT_EQ(s.pending_events(), 5u);
  for (auto& h : doomed) h.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(kept, 1);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(scheduler_wheel, far_wheel_cascades_at_rollover_boundary) {
  // With granularity 1024 ns the wheel spans 2^42 ns; events right below,
  // at, and past the boundary must still fire in exact time order.
  scheduler s(wheel_cfg());
  const time_ns span = time_ns{1} << 42;
  std::vector<int> order;
  s.at(span + 1, [&] { order.push_back(4); });        // far wheel
  s.at(span, [&] { order.push_back(3); });            // far wheel (exactly)
  s.at(span - 1, [&] { order.push_back(2); });        // top level
  s.at(milliseconds(1), [&] { order.push_back(1); }); // level 1
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(s.now(), span + 1);
}

TEST(scheduler_wheel, far_jump_skips_idle_rotations) {
  // An empty wheel with only a very-far event must jump the horizon rather
  // than cascade through every rotation in between.
  scheduler s(wheel_cfg());
  const time_ns far_out = (time_ns{1} << 42) * 5 + 12345;
  time_ns seen = -1;
  s.at(far_out, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, far_out);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(scheduler_wheel, run_until_stops_at_horizon) {
  scheduler s(wheel_cfg());
  int fired = 0;
  s.at(milliseconds(10), [&] { ++fired; });
  s.at(milliseconds(30), [&] { ++fired; });
  s.run_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), milliseconds(20));
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(milliseconds(40));
  EXPECT_EQ(fired, 2);
}

TEST(scheduler_wheel, coarse_granularity_still_fires_in_exact_order) {
  // A 1 ms bucket holds many distinct timestamps; the due heap must still
  // fire them in exact (when, seq) order, not bucket order.
  scheduler s(wheel_cfg(milliseconds(1)));
  std::vector<int> order;
  s.at(microseconds(900), [&] { order.push_back(3); });
  s.at(microseconds(100), [&] { order.push_back(1); });
  s.at(microseconds(500), [&] { order.push_back(2); });
  s.at(milliseconds(2) + microseconds(1), [&] { order.push_back(5); });
  s.at(milliseconds(2), [&] { order.push_back(4); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

/// Drives one scheduler through a deterministic random schedule/cancel/nested
/// workload and returns the exact fire order (event ids).
std::vector<std::uint64_t> random_workload_fire_order(scheduler_config cfg,
                                                      std::uint64_t seed) {
  scheduler s(cfg);
  std::vector<std::uint64_t> log;
  std::vector<event_handle> handles;
  std::uint64_t state = seed;
  std::uint64_t nested_id = 100000;
  // Delay spreads chosen to land in every wheel level and the far wheel
  // (granularity 1024 ns: levels roll over at 2^18, 2^26, 2^34, 2^42 ns).
  const std::array<std::uint64_t, 5> spreads = {
      std::uint64_t{1} << 12, std::uint64_t{1} << 20, std::uint64_t{1} << 28,
      std::uint64_t{1} << 36, std::uint64_t{1} << 43};
  for (std::uint64_t i = 0; i < 600; ++i) {
    const std::uint64_t r = crypto::splitmix64(state);
    const time_ns delay =
        static_cast<time_ns>(r % spreads[i % spreads.size()]);
    handles.push_back(s.at(delay, [&, i, delay] {
      log.push_back(i);
      // A third of events schedule a follow-up, so the workload also
      // exercises scheduling from inside callbacks at a moved clock.
      if (i % 3 == 0) {
        const std::uint64_t id = nested_id++;
        s.after(delay / 2 + 1, [&log, id] { log.push_back(id); });
      }
    }));
  }
  // Cancel a deterministic quarter of them, some already near the front.
  for (std::size_t i = 0; i < handles.size(); i += 4) handles[i].cancel();
  s.run();
  return log;
}

TEST(scheduler_wheel, randomized_equivalence_with_heap) {
  // The tentpole determinism claim: identical event streams fire in an
  // identical order under both queue policies, cancellations and nested
  // scheduling included.
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    const auto heap_order = random_workload_fire_order({}, seed);
    const auto wheel_order = random_workload_fire_order(wheel_cfg(), seed);
    ASSERT_FALSE(heap_order.empty());
    EXPECT_EQ(heap_order, wheel_order) << "seed " << seed;
    // Coarser buckets change nothing either: the due heap restores exact
    // order inside each bucket.
    const auto coarse_order =
        random_workload_fire_order(wheel_cfg(microseconds(100)), seed);
    EXPECT_EQ(heap_order, coarse_order) << "seed " << seed;
  }
}

TEST(scheduler_wheel, rejects_nonpositive_granularity) {
  scheduler_config cfg = wheel_cfg(0);
  EXPECT_THROW(scheduler s(cfg), util::invariant_error);
}

TEST(time_helpers, conversions_are_consistent) {
  EXPECT_EQ(seconds(1.0), 1'000'000'000);
  EXPECT_EQ(milliseconds(250), 250'000'000);
  EXPECT_EQ(microseconds(5), 5'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(80)), 80.0);
}

TEST(time_helpers, transmission_time_matches_rate) {
  // 1000 bytes at 1 Mbps = 8 ms.
  EXPECT_EQ(transmission_time(1000, 1e6), milliseconds(8));
  // 576 bytes at 10 Mbps = 460.8 us.
  EXPECT_EQ(transmission_time(576, 10e6), nanoseconds(460'800));
}

}  // namespace
}  // namespace mcc::sim
