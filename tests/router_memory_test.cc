// Router probation memory, end to end: the adaptive_churn grace loophole is
// closed when the memory is on, and honest aggregated populations — leave,
// rejoin, flash churn at million-member scale — pay (almost) nothing for it,
// in both protocol worlds and bit-identically across sweep worker counts.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adversary/adversary.h"
#include "adversary/containment.h"
#include "exp/sweep.h"
#include "exp/testbed.h"

namespace mcc {
namespace {

/// One adaptive_churn run on a 1 Mbps dumbbell; returns the attacker's
/// sustained goodput over [10 s, 45 s) plus the edge counters.
struct churn_outcome {
  double kbps = 0.0;
  core::sigma_router_agent::counters edge;
};

churn_outcome run_churn(int memory_slots) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;
  cfg.seed = 5;
  cfg.probation_memory_slots = memory_slots;
  exp::testbed d(exp::dumbbell(cfg));
  exp::receiver_options churner;
  churner.attack = adversary::adaptive_churn(0);
  auto& session = d.add_flid_session(exp::flid_mode::ds, {churner});
  d.run_until(sim::seconds(45.0));
  churn_outcome out;
  out.kbps = session.receiver().monitor().average_kbps(sim::seconds(10.0),
                                                       sim::seconds(45.0));
  out.edge = d.sigma().stats();
  return out;
}

TEST(router_memory, probation_memory_closes_the_adaptive_churn_loophole) {
  // Memory off: the grace free-rider sustains tens of kbps forever (the pin
  // adversary_test holds). Memory on: only the FIRST grace window ever pays —
  // every rejoin inherits the debt, arrives graceless, and is cut off with
  // geometric escalation, so the sustained rate collapses to ~zero.
  const churn_outcome off = run_churn(0);
  EXPECT_GT(off.kbps, 20.0);
  EXPECT_EQ(off.edge.memory_records, 0u);

  const churn_outcome on = run_churn(8);
  EXPECT_LT(on.kbps, 5.0);
  EXPECT_GT(on.edge.memory_records, 0u);
  EXPECT_GT(on.edge.memory_inherits, 0u);
  // Grace throughput after the first window is zero: the only grace forwards
  // are the initial window's handful of minimal-group packets.
  EXPECT_LT(on.edge.grace_forwards, 40u);
  EXPECT_GT(off.edge.grace_forwards, 50u);
}

/// Honest-population grid: {ds, dl} x three memory windows, one aggregated
/// million-member audience with arrival/departure churn and a flash crowd.
std::vector<exp::sweep_row> run_population_grid(int jobs) {
  struct cell {
    exp::flid_mode mode;
    int memory;
  };
  std::vector<cell> cells;
  for (const exp::flid_mode m : {exp::flid_mode::ds, exp::flid_mode::dl}) {
    for (const int mem : {4, 8, 16}) cells.push_back({m, mem});
  }
  std::vector<double> xs(cells.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  exp::sweep_options opts;
  opts.jobs = jobs;
  opts.base_seed = 9;
  return exp::run_sweep(xs, opts, [&](const exp::sweep_point& pt) {
    const cell& c = cells[pt.index];
    exp::dumbbell_config cfg;
    cfg.bottleneck_bps = 250e3;  // congested: the delegate sheds layers,
                                 // exercising honest unsubscribe/resubscribe
    cfg.seed = pt.seed;
    cfg.probation_memory_slots = c.memory;
    exp::testbed d(exp::dumbbell(cfg));
    auto& session = d.add_flid_session(c.mode, {});
    exp::population_options popts;
    popts.at = "r";
    popts.population.initial_members = 1'000'000;
    popts.population.churn.arrival_per_sec = 50.0;
    popts.population.churn.leave_per_sec = 0.001;
    popts.population.churn.flash_at = sim::seconds(5.0);
    popts.population.churn.flash_members = 200'000;
    popts.population.churn.flash_leave_at = sim::seconds(15.0);
    auto& pop = d.add_population(session, popts);
    d.run_until(sim::seconds(30.0));

    exp::sweep_row row;
    row.label = std::string(c.mode == exp::flid_mode::ds ? "ds" : "dl") +
                "/mem" + std::to_string(c.memory);
    row.value("peak_members",
              static_cast<double>(pop.aggregate->stats().peak_members));
    row.value("departures",
              static_cast<double>(pop.aggregate->stats().departures +
                                  pop.aggregate->stats().flash_departures));
    row.value("delegate_bytes",
              static_cast<double>(pop.delegate->monitor().total_bytes()));
    row.value("member_kbps",
              pop.aggregate->member_monitor().average_kbps(
                  sim::seconds(10.0), sim::seconds(30.0)));
    if (c.mode == exp::flid_mode::ds) {
      const auto& edge = d.sigma().stats();
      row.value("fp_block_rate", adversary::memory_block_rate(edge));
      row.value("edge_unsubscribes", static_cast<double>(edge.unsubscribes));
    }
    return row;
  });
}

TEST(router_memory, honest_churn_pays_no_false_positive_blocks_at_scale) {
  const auto rows = run_population_grid(1);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    // A million members rode through the flash crowd...
    EXPECT_GT(row.value_of("peak_members"), 1'000'000.0) << row.label;
    EXPECT_GT(row.value_of("departures"), 0.0) << row.label;
    EXPECT_GT(row.value_of("delegate_bytes"), 0.0) << row.label;
    if (row.label.rfind("ds/", 0) != 0) continue;
    // ...with honest leave/rejoin churn at the edge, yet the probation
    // memory's false-positive block rate stays under the pinned 2% bound at
    // every window length (key-proven unsubscribes leave no debt behind).
    EXPECT_GT(row.value_of("edge_unsubscribes"), 0.0) << row.label;
    EXPECT_LT(row.value_of("fp_block_rate"), 0.02) << row.label;
  }
}

TEST(router_memory, population_grid_is_bit_identical_across_jobs) {
  // The memory path must not disturb sweep determinism: the grid's rows are
  // byte-identical between --jobs 1 and --jobs 4.
  const auto serial = run_population_grid(1);
  const auto parallel = run_population_grid(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    ASSERT_EQ(serial[i].values.size(), parallel[i].values.size());
    for (std::size_t v = 0; v < serial[i].values.size(); ++v) {
      EXPECT_EQ(serial[i].values[v].first, parallel[i].values[v].first);
      EXPECT_EQ(serial[i].values[v].second, parallel[i].values[v].second)
          << serial[i].label << "/" << serial[i].values[v].first;
    }
  }
}

}  // namespace
}  // namespace mcc
