#include "exp/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "crypto/prng.h"
#include "util/require.h"

namespace mcc::exp {
namespace {

std::vector<double> grid(int n) {
  std::vector<double> xs;
  for (int i = 1; i <= n; ++i) xs.push_back(static_cast<double>(i));
  return xs;
}

/// A deterministic stand-in for a simulation run: consumes the point's PRNG
/// stream and reports values that depend on (x, seed) only.
sweep_row fake_experiment(const sweep_point& pt) {
  crypto::prng rng(pt.seed);
  sweep_row row;
  row.value("mean", pt.x * 10.0 + rng.uniform());
  series s;
  for (int t = 0; t < 5; ++t) {
    s.emplace_back(t, rng.uniform(0.0, pt.x));
  }
  row.trace("trajectory", std::move(s));
  return row;
}

TEST(sweep, point_seed_is_deterministic_and_spread) {
  EXPECT_EQ(point_seed(42, 0), point_seed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) seen.insert(point_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across a realistic grid
  EXPECT_NE(point_seed(1, 0), point_seed(2, 0));
}

TEST(sweep, rows_come_back_in_grid_order) {
  sweep_options opts;
  opts.jobs = 1;
  const auto rows = run_sweep(grid(7), opts, [](const sweep_point& pt) {
    sweep_row row;
    row.value("index", static_cast<double>(pt.index));
    return row;
  });
  ASSERT_EQ(rows.size(), 7u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows[i].x, static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(rows[i].value_of("index"), static_cast<double>(i));
  }
}

TEST(sweep, parallel_is_bit_identical_to_serial) {
  sweep_options serial;
  serial.jobs = 1;
  serial.base_seed = 99;
  sweep_options parallel = serial;
  parallel.jobs = 4;

  const auto a = run_sweep(grid(9), serial, fake_experiment);
  const auto b = run_sweep(grid(9), parallel, fake_experiment);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a[i].value_of("mean"), b[i].value_of("mean"));
    const series* sa = a[i].trace_of("trajectory");
    const series* sb = b[i].trace_of("trajectory");
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    EXPECT_EQ(*sa, *sb);
  }
}

TEST(sweep, workers_actually_run_concurrently_when_asked) {
  sweep_options opts;
  opts.jobs = 3;
  std::atomic<int> started{0};
  const auto rows = run_sweep(grid(3), opts, [&](const sweep_point& pt) {
    started.fetch_add(1);
    // Wait (briefly) for all three points to be in flight at once; on a
    // loaded machine this times out harmlessly and the test still passes.
    for (int spin = 0; spin < 1000 && started.load() < 3; ++spin) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    sweep_row row;
    row.value("x", pt.x);
    return row;
  });
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_EQ(started.load(), 3);
}

TEST(sweep, point_exception_propagates_to_caller) {
  sweep_options opts;
  opts.jobs = 2;
  EXPECT_THROW(run_sweep(grid(4), opts,
                         [](const sweep_point& pt) -> sweep_row {
                           if (pt.index == 2) {
                             util::require(false, "boom");
                           }
                           return {};
                         }),
               util::invariant_error);
}

TEST(sweep, column_extracts_named_values) {
  std::vector<sweep_row> rows(2);
  rows[0].x = 1.0;
  rows[0].value("kbps", 100.0);
  rows[1].x = 2.0;
  rows[1].value("kbps", 200.0);
  const series s = column(rows, "kbps");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0].first, 1.0);
  EXPECT_DOUBLE_EQ(s[0].second, 100.0);
  EXPECT_DOUBLE_EQ(s[1].second, 200.0);
}

TEST(sweep, explicit_zero_x_is_preserved) {
  sweep_options opts;
  const auto rows = run_sweep({5.0}, opts, [](const sweep_point&) {
    sweep_row row;
    row.x = 0.0;  // remapped display coordinate; must not be overwritten
    return row;
  });
  EXPECT_DOUBLE_EQ(rows[0].x, 0.0);
}

TEST(sweep, value_of_missing_is_nan) {
  const sweep_row row;
  EXPECT_TRUE(std::isnan(row.value_of("absent")));
  EXPECT_EQ(row.trace_of("absent"), nullptr);
}

TEST(sweep, json_document_shape) {
  std::vector<sweep_row> rows(1);
  rows[0].x = 4.0;
  rows[0].label = "point \"four\"";
  rows[0].value("kbps", 250.5);
  rows[0].trace("traj", series{{0.0, 1.0}, {1.0, 2.5}});
  std::ostringstream os;
  write_json(os, "unit", rows);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"bench\": \"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"x\": 4"), std::string::npos);
  EXPECT_NE(doc.find("\"label\": \"point \\\"four\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"kbps\": 250.5"), std::string::npos);
  EXPECT_NE(doc.find("[[0, 1], [1, 2.5]]"), std::string::npos);
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
}

TEST(sweep, flags_register_and_read_back) {
  util::flag_set flags("test");
  flags.add("seed", "7", "seed");
  add_sweep_flags(flags);
  const char* argv[] = {"prog", "--jobs=4", "--json=out.json"};
  ASSERT_TRUE(flags.parse(3, argv));
  const sweep_options opts =
      sweep_options_from_flags(flags, static_cast<std::uint64_t>(flags.i64("seed")));
  EXPECT_EQ(opts.jobs, 4);
  EXPECT_EQ(opts.jobs_per_process, 0);
  EXPECT_EQ(opts.base_seed, 7u);
  EXPECT_EQ(flags.str("json"), "out.json");
}

TEST(sweep, jobs_per_process_flag_reads_back) {
  util::flag_set flags("test");
  add_sweep_flags(flags);
  const char* argv[] = {"prog", "--jobs-per-process=4"};
  ASSERT_TRUE(flags.parse(2, argv));
  const sweep_options opts = sweep_options_from_flags(flags, 1);
  EXPECT_EQ(opts.jobs_per_process, 4);
}

// --- forked worker processes -------------------------------------------------

TEST(sweep, forked_workers_byte_identical_to_serial) {
  // The fig08abc shape: a session-count grid where each point consumes its
  // own PRNG stream and reports scalars plus a trajectory. The merged forked
  // output must be byte-identical (not approximately equal) to --jobs 1.
  sweep_options serial;
  serial.jobs = 1;
  serial.base_seed = 11;
  sweep_options forked = serial;
  forked.jobs_per_process = 4;  // one forked worker, 4 threads

  const auto a = run_sweep(grid(10), serial, fake_experiment);
  const auto b = run_sweep(grid(10), forked, fake_experiment);
  ASSERT_EQ(a.size(), b.size());
  std::ostringstream ja;
  std::ostringstream jb;
  write_json(ja, "cmp", a);
  write_json(jb, "cmp", b);
  EXPECT_EQ(ja.str(), jb.str());  // the BENCH document, byte for byte
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].value_of("mean"), b[i].value_of("mean"));
    EXPECT_EQ(a[i].label, b[i].label);
    const series* sa = a[i].trace_of("trajectory");
    const series* sb = b[i].trace_of("trajectory");
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    EXPECT_EQ(*sa, *sb);
  }
}

TEST(sweep, multiple_forked_workers_merge_in_grid_order) {
  // jobs=6 at 2 threads per process forks 3 workers over interleaved shards;
  // rows must still merge back in grid order.
  sweep_options opts;
  opts.jobs = 6;
  opts.jobs_per_process = 2;
  opts.base_seed = 5;
  const auto rows = run_sweep(grid(13), opts, [](const sweep_point& pt) {
    sweep_row row;
    row.value("index", static_cast<double>(pt.index));
    row.label = "p" + std::to_string(pt.index);
    return row;
  });
  ASSERT_EQ(rows.size(), 13u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(rows[i].x, static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(rows[i].value_of("index"), static_cast<double>(i));
    EXPECT_EQ(rows[i].label, "p" + std::to_string(i));
  }
}

TEST(sweep, forked_worker_point_failure_propagates) {
  sweep_options opts;
  opts.jobs_per_process = 2;
  EXPECT_THROW(run_sweep(grid(4), opts,
                         [](const sweep_point& pt) -> sweep_row {
                           if (pt.index == 2) {
                             util::require(false, "boom in child");
                           }
                           return {};
                         }),
               std::runtime_error);
}

TEST(sweep, forked_worker_crash_is_a_loud_error) {
  // A worker that dies outright (here: _Exit mid-point, as a stand-in for a
  // segfault) must surface as an exception naming the dead worker — never as
  // a silently truncated row set. Only safe to test in process mode.
  sweep_options opts;
  opts.jobs_per_process = 1;
  opts.jobs = 2;  // two workers; one crashes, one finishes
  try {
    run_sweep(grid(6), opts, [](const sweep_point& pt) -> sweep_row {
      if (pt.index == 3) std::_Exit(42);
      sweep_row row;
      row.value("ok", 1.0);
      return row;
    });
    FAIL() << "expected a worker-crash exception";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("worker process"), std::string::npos) << msg;
    EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace mcc::exp
