// Tests for the replicated-multicast DELTA instantiation (paper Figure 5).
#include "core/delta_replicated.h"

#include <gtest/gtest.h>

#include <set>

#include "core/delta_layered.h"  // key_lead_slots

namespace mcc::core {
namespace {

constexpr int groups = 5;

struct rep_harness {
  rep_harness() : sender(7, groups, 64, 99) {}

  /// Simulates one slot; the receiver listens to `current` (and overhears
  /// decrease fields only from its own group, per Figure 5).
  flid::replicated_receiver::slot_record run_slot(
      std::int64_t slot, int current, std::uint32_t auth_mask, int count,
      const std::set<int>& lost) {
    std::vector<int> counts(groups + 1, count);
    sender.begin_slot(slot, auth_mask, counts);
    flid::replicated_receiver::slot_record rec;
    rec.auth_mask = auth_mask;
    for (int g = 1; g <= groups; ++g) {
      for (int i = 0; i < count; ++i) {
        sim::flid_data hdr;
        sender.fill_fields(slot, g, i, i == count - 1, hdr);
        if (g == current) {
          if (lost.contains(i)) continue;
          ++rec.received;
          rec.expected = count;
          rec.xor_components ^= hdr.component;
          rec.decrease = hdr.decrease;  // group g's decrease field = delta_{g-1}
        }
      }
    }
    return rec;
  }

  [[nodiscard]] bool valid(std::int64_t slot, int g,
                           crypto::group_key k) const {
    const replicated_slot_keys* keys = sender.keys_for(slot + key_lead_slots);
    if (keys == nullptr) return false;
    if (k == keys->top[static_cast<std::size_t>(g)]) return true;
    if (g <= groups - 1 && k == keys->decrease[static_cast<std::size_t>(g)]) {
      return true;
    }
    const auto& inc = keys->increase[static_cast<std::size_t>(g)];
    return g >= 2 && inc.has_value() && k == *inc;
  }

  delta_replicated_sender sender;
};

TEST(delta_replicated, top_key_is_group_local_xor) {
  rep_harness h;
  const auto rec = h.run_slot(0, 3, 0, 4, {});
  const auto* keys = h.sender.keys_for(key_lead_slots);
  ASSERT_NE(keys, nullptr);
  EXPECT_EQ(rec.xor_components, keys->top[3]);
}

TEST(delta_replicated, uncongested_receiver_keeps_group) {
  rep_harness h;
  const auto rec = h.run_slot(0, 3, 0, 4, {});
  const auto out = reconstruct_replicated(rec, 3, groups);
  EXPECT_EQ(out.next_group, 3);
  ASSERT_TRUE(out.key.has_value());
  EXPECT_TRUE(h.valid(0, 3, *out.key));
}

TEST(delta_replicated, uncongested_receiver_upgrades_when_authorized) {
  rep_harness h;
  const auto rec = h.run_slot(0, 3, 1u << 4, 4, {});
  const auto out = reconstruct_replicated(rec, 3, groups);
  EXPECT_EQ(out.next_group, 4);
  ASSERT_TRUE(out.key.has_value());
  // iota_4 = tau_3: the same value must open group 4.
  EXPECT_TRUE(h.valid(0, 4, *out.key));
}

TEST(delta_replicated, congested_receiver_switches_down) {
  rep_harness h;
  const auto rec = h.run_slot(0, 3, 0, 4, {1});
  const auto out = reconstruct_replicated(rec, 3, groups);
  EXPECT_EQ(out.next_group, 2);
  ASSERT_TRUE(out.key.has_value());
  EXPECT_TRUE(h.valid(0, 2, *out.key));
}

TEST(delta_replicated, congested_key_does_not_open_current_group) {
  rep_harness h;
  const auto rec = h.run_slot(0, 3, 0, 4, {1});
  const auto out = reconstruct_replicated(rec, 3, groups);
  ASSERT_TRUE(out.key.has_value());
  EXPECT_FALSE(h.valid(0, 3, *out.key));
}

TEST(delta_replicated, congested_at_minimal_group_gets_nothing) {
  rep_harness h;
  const auto rec = h.run_slot(0, 1, 0, 4, {0});
  const auto out = reconstruct_replicated(rec, 1, groups);
  EXPECT_EQ(out.next_group, 0);
  EXPECT_FALSE(out.key.has_value());
}

TEST(delta_replicated, partial_components_do_not_validate) {
  rep_harness h;
  const auto rec = h.run_slot(0, 4, 0, 5, {2});
  // The XOR of the surviving components must not open any group.
  for (int g = 1; g <= groups; ++g) {
    EXPECT_FALSE(h.valid(0, g, rec.xor_components));
  }
}

TEST(delta_replicated, no_upgrade_without_authorization) {
  rep_harness h;
  const auto rec = h.run_slot(0, 2, 0, 3, {});
  const auto out = reconstruct_replicated(rec, 2, groups);
  EXPECT_EQ(out.next_group, 2);
  ASSERT_TRUE(out.key.has_value());
  EXPECT_FALSE(h.valid(0, 3, *out.key));
}

TEST(delta_replicated, keys_rotate_between_slots) {
  rep_harness h;
  h.run_slot(0, 1, 0, 3, {});
  const auto k0 = h.sender.keys_for(key_lead_slots)->top;
  h.run_slot(1, 1, 0, 3, {});
  const auto k1 = h.sender.keys_for(1 + key_lead_slots)->top;
  for (int g = 1; g <= groups; ++g) {
    EXPECT_NE(k0[static_cast<std::size_t>(g)], k1[static_cast<std::size_t>(g)]);
  }
}

class replicated_group_sweep : public ::testing::TestWithParam<int> {};

TEST_P(replicated_group_sweep, entitlement_never_exceeds_one_step_up) {
  const int current = GetParam();
  rep_harness h;
  const auto rec =
      h.run_slot(0, current, 0xffffffffu, 4, {});  // everything authorized
  const auto out = reconstruct_replicated(rec, current, groups);
  const int expected = current < groups ? current + 1 : current;
  EXPECT_EQ(out.next_group, expected);
  ASSERT_TRUE(out.key.has_value());
  EXPECT_TRUE(h.valid(0, expected, *out.key));
  // The single key must not open groups two or more levels up.
  for (int g = expected + 1; g <= groups; ++g) {
    EXPECT_FALSE(h.valid(0, g, *out.key));
  }
}

INSTANTIATE_TEST_SUITE_P(groups_1_to_5, replicated_group_sweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mcc::core
