#include "util/flags.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace mcc::util {
namespace {

TEST(flags, defaults_apply_without_arguments) {
  flag_set flags;
  flags.add("duration", "200", "seconds");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.i64("duration"), 200);
}

TEST(flags, equals_syntax) {
  flag_set flags;
  flags.add("rate", "1.5", "multiplier");
  const char* argv[] = {"prog", "--rate=2.25"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_DOUBLE_EQ(flags.f64("rate"), 2.25);
}

TEST(flags, space_syntax) {
  flag_set flags;
  flags.add("sessions", "2", "count");
  const char* argv[] = {"prog", "--sessions", "18"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_EQ(flags.i64("sessions"), 18);
}

TEST(flags, boolean_values) {
  flag_set flags;
  flags.add("verbose", "false", "chatty output");
  const char* argv[] = {"prog", "--verbose=true"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.boolean("verbose"));
}

TEST(flags, unknown_flag_fails) {
  flag_set flags;
  flags.add("known", "1", "");
  const char* argv[] = {"prog", "--unknown=3"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(flags, missing_value_fails) {
  flag_set flags;
  flags.add("n", "1", "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(flags, help_requests_usage) {
  flag_set flags;
  flags.add("n", "1", "");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(flags, positional_arguments_collected) {
  flag_set flags;
  flags.add("n", "1", "");
  const char* argv[] = {"prog", "input.txt", "--n=5", "output.txt"};
  ASSERT_TRUE(flags.parse(4, argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
  EXPECT_EQ(flags.i64("n"), 5);
}

TEST(flags, duplicate_declaration_throws) {
  flag_set flags;
  flags.add("x", "1", "");
  EXPECT_THROW(flags.add("x", "2", ""), invariant_error);
}

TEST(flags, undeclared_lookup_throws) {
  flag_set flags;
  EXPECT_THROW((void)flags.str("nope"), invariant_error);
}

}  // namespace
}  // namespace mcc::util
