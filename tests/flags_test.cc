#include "util/flags.h"

#include <gtest/gtest.h>

#include "util/require.h"

namespace mcc::util {
namespace {

TEST(flags, defaults_apply_without_arguments) {
  flag_set flags;
  flags.add("duration", "200", "seconds");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.i64("duration"), 200);
}

TEST(flags, equals_syntax) {
  flag_set flags;
  flags.add("rate", "1.5", "multiplier");
  const char* argv[] = {"prog", "--rate=2.25"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_DOUBLE_EQ(flags.f64("rate"), 2.25);
}

TEST(flags, space_syntax) {
  flag_set flags;
  flags.add("sessions", "2", "count");
  const char* argv[] = {"prog", "--sessions", "18"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_EQ(flags.i64("sessions"), 18);
}

TEST(flags, boolean_values) {
  flag_set flags;
  flags.add("verbose", "false", "chatty output");
  const char* argv[] = {"prog", "--verbose=true"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.boolean("verbose"));
}

TEST(flags, unknown_flag_fails) {
  flag_set flags;
  flags.add("known", "1", "");
  const char* argv[] = {"prog", "--unknown=3"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(flags, missing_value_fails) {
  flag_set flags;
  flags.add("n", "1", "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(flags, help_requests_usage) {
  flag_set flags;
  flags.add("n", "1", "");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(flags, positional_arguments_collected) {
  flag_set flags;
  flags.add("n", "1", "");
  const char* argv[] = {"prog", "input.txt", "--n=5", "output.txt"};
  ASSERT_TRUE(flags.parse(4, argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
  EXPECT_EQ(flags.i64("n"), 5);
}

TEST(flags, bad_integer_value_fails_parse) {
  flag_set flags;
  flags.add("sessions", "2", "count");
  const char* argv[] = {"prog", "--sessions=eighteen"};
  EXPECT_FALSE(flags.parse(2, argv));
  // The default survives a failed parse.
  EXPECT_EQ(flags.i64("sessions"), 2);
}

TEST(flags, bad_float_value_fails_parse) {
  flag_set flags;
  flags.add("rate", "1.5", "multiplier");
  const char* argv[] = {"prog", "--rate", "fast"};
  EXPECT_FALSE(flags.parse(3, argv));
}

TEST(flags, trailing_garbage_fails_parse) {
  flag_set flags;
  flags.add("duration", "200", "seconds");
  const char* argv[] = {"prog", "--duration=200abc"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(flags, non_finite_and_hexfloat_values_fail_parse) {
  for (const char* bad : {"nan", "inf", "-inf", "0x12"}) {
    flag_set flags;
    flags.add("duration", "200", "seconds");
    const std::string arg = std::string("--duration=") + bad;
    const char* argv[] = {"prog", arg.c_str()};
    EXPECT_FALSE(flags.parse(2, argv)) << bad;
  }
}

TEST(flags, integer_flag_accepts_negative_and_float_flag_accepts_exponent) {
  flag_set flags;
  flags.add("offset", "0", "signed");
  flags.add("bps", "1e6", "rate");
  const char* argv[] = {"prog", "--offset=-42", "--bps=2.5e7"};
  ASSERT_TRUE(flags.parse(3, argv));
  EXPECT_EQ(flags.i64("offset"), -42);
  EXPECT_DOUBLE_EQ(flags.f64("bps"), 2.5e7);
}

TEST(flags, integer_default_accepts_fractional_value_read_via_f64) {
  // Benches declare e.g. --duration 120 but read it with f64(): a
  // fractional value must parse.
  flag_set flags;
  flags.add("duration", "120", "seconds");
  const char* argv[] = {"prog", "--duration=12.5"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_DOUBLE_EQ(flags.f64("duration"), 12.5);
  // ...but i64() on a genuinely fractional value is an error, while
  // integral spellings like 1e3 convert cleanly.
  EXPECT_THROW((void)flags.i64("duration"), invariant_error);
  flag_set flags2;
  flags2.add("count", "1", "count");
  const char* argv2[] = {"prog", "--count=1e3"};
  ASSERT_TRUE(flags2.parse(2, argv2));
  EXPECT_EQ(flags2.i64("count"), 1000);
}

TEST(flags, string_flags_skip_numeric_validation) {
  flag_set flags;
  flags.add("label", "run", "free-form");
  const char* argv[] = {"prog", "--label=not-a-number"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_EQ(flags.str("label"), "not-a-number");
}

TEST(flags, repeated_flag_is_last_wins) {
  flag_set flags;
  flags.add("seed", "1", "rng seed");
  const char* argv[] = {"prog", "--seed=5", "--seed", "9", "--seed=7"};
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.i64("seed"), 7);
}

TEST(flags, accessor_on_non_numeric_string_throws_friendly_error) {
  flag_set flags;
  flags.add("label", "run", "free-form");
  EXPECT_THROW((void)flags.i64("label"), invariant_error);
  EXPECT_THROW((void)flags.f64("label"), invariant_error);
}

TEST(flags, duplicate_declaration_throws) {
  flag_set flags;
  flags.add("x", "1", "");
  EXPECT_THROW(flags.add("x", "2", ""), invariant_error);
}

TEST(flags, undeclared_lookup_throws) {
  flag_set flags;
  EXPECT_THROW((void)flags.str("nope"), invariant_error);
}

TEST(flags, enum_flag_accepts_listed_values) {
  flag_set flags;
  flags.add_enum("sched", "heap", "event-queue policy", {"heap", "wheel"});
  const char* argv[] = {"prog", "--sched=wheel"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_EQ(flags.str("sched"), "wheel");
}

TEST(flags, enum_flag_rejects_unlisted_value_at_parse_time) {
  // The friendly-UX contract: a typo'd enum fails the parse (with a
  // "expected one of ..." message on stderr), it does not fall through to a
  // silently-wrong default.
  flag_set flags;
  flags.add_enum("sched", "heap", "event-queue policy", {"heap", "wheel"});
  const char* argv[] = {"prog", "--sched=whele"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(flags, enum_flag_default_survives_when_not_set) {
  flag_set flags;
  flags.add_enum("sched", "heap", "event-queue policy", {"heap", "wheel"});
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.str("sched"), "heap");
}

TEST(flags, enum_csv_flag_validates_every_element) {
  flag_set flags;
  flags.add_enum("qdisc", "droptail", "queue discipline(s)",
                 {"droptail", "ecn", "red", "codel", "all"},
                 /*csv_list=*/true);
  const char* ok[] = {"prog", "--qdisc=droptail,red,codel"};
  ASSERT_TRUE(flags.parse(2, ok));
  EXPECT_EQ(flags.str("qdisc"), "droptail,red,codel");

  flag_set flags2;
  flags2.add_enum("qdisc", "droptail", "queue discipline(s)",
                  {"droptail", "ecn", "red", "codel", "all"},
                  /*csv_list=*/true);
  const char* bad[] = {"prog", "--qdisc=droptail,rde"};
  EXPECT_FALSE(flags2.parse(2, bad));

  flag_set flags3;
  flags3.add_enum("qdisc", "droptail", "queue discipline(s)",
                  {"droptail", "ecn", "red", "codel", "all"},
                  /*csv_list=*/true);
  const char* empty[] = {"prog", "--qdisc=droptail,,red"};
  EXPECT_FALSE(flags3.parse(2, empty));  // empty elements are typos too
}

TEST(flags, enum_default_must_be_listed) {
  flag_set flags;
  EXPECT_THROW(flags.add_enum("sched", "hepa", "typo'd default",
                              {"heap", "wheel"}),
               invariant_error);
}

}  // namespace
}  // namespace mcc::util
