// End-to-end reproduction of the paper's headline result, scaled down for
// test runtime: inflated subscription steals bandwidth under FLID-DL
// (Figure 1) and is prevented under FLID-DS (Figure 7).
#include <gtest/gtest.h>

#include <array>

#include "adversary/adversary.h"
#include "exp/testbed.h"
#include "sim/stats.h"

namespace mcc::exp {
namespace {

struct attack_result {
  double attacker_kbps;
  double victim_kbps;
  double tcp1_kbps;
  double tcp2_kbps;
  double fairness;
};

attack_result run_attack(flid_mode mode, sim::time_ns horizon,
                         sim::time_ns inflate_at) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 1e6;  // paper: 1 Mbps bottleneck, 4 sessions
  cfg.seed = 7;
  testbed d(dumbbell(cfg));
  receiver_options attacker;
  attacker.attack = adversary::inflate_once(inflate_at);
  auto& f1 = d.add_flid_session(mode, {attacker});
  auto& f2 = d.add_flid_session(mode, {receiver_options{}});
  auto& t1 = d.add_tcp_flow();
  auto& t2 = d.add_tcp_flow();
  d.run_until(horizon);

  attack_result r{};
  const sim::time_ns t0 = inflate_at + sim::seconds(10.0);
  r.attacker_kbps = f1.receiver().monitor().average_kbps(t0, horizon);
  r.victim_kbps = f2.receiver().monitor().average_kbps(t0, horizon);
  r.tcp1_kbps = t1.sink->monitor().average_kbps(t0, horizon);
  r.tcp2_kbps = t2.sink->monitor().average_kbps(t0, horizon);
  const std::array<double, 4> rates = {r.attacker_kbps, r.victim_kbps,
                                       r.tcp1_kbps, r.tcp2_kbps};
  r.fairness = sim::jain_fairness_index(rates);
  return r;
}

TEST(attack_integration, inflated_subscription_steals_bandwidth_in_flid_dl) {
  const auto r = run_attack(flid_mode::dl, sim::seconds(120.0),
                            sim::seconds(40.0));
  // Figure 1 shape: the attacker grabs most of the 1 Mbps bottleneck
  // (paper: 690 Kbps) while everyone else is crushed.
  EXPECT_GT(r.attacker_kbps, 450.0);
  EXPECT_GT(r.attacker_kbps, 2.0 * r.victim_kbps);
  EXPECT_GT(r.attacker_kbps, 2.0 * r.tcp1_kbps);
  EXPECT_LT(r.fairness, 0.75);
}

TEST(attack_integration, flid_ds_preserves_fairness_under_attack) {
  const auto r = run_attack(flid_mode::ds, sim::seconds(120.0),
                            sim::seconds(40.0));
  // Figure 7 shape: the attacker gains nothing; allocation stays fair.
  EXPECT_LT(r.attacker_kbps, 400.0);
  EXPECT_GT(r.victim_kbps, 100.0);
  EXPECT_GT(r.tcp1_kbps, 100.0);
  EXPECT_GT(r.fairness, 0.8);
}

TEST(attack_integration, protection_beats_no_protection) {
  const auto dl = run_attack(flid_mode::dl, sim::seconds(120.0),
                             sim::seconds(40.0));
  const auto ds = run_attack(flid_mode::ds, sim::seconds(120.0),
                             sim::seconds(40.0));
  EXPECT_GT(ds.fairness, dl.fairness);
  EXPECT_LT(ds.attacker_kbps, dl.attacker_kbps);
  EXPECT_GT(ds.victim_kbps, dl.victim_kbps * 0.9);
}

TEST(attack_integration, honest_world_is_fair_in_both_modes) {
  for (const flid_mode mode : {flid_mode::dl, flid_mode::ds}) {
    dumbbell_config cfg;
    cfg.bottleneck_bps = 1e6;
    testbed d(dumbbell(cfg));
    auto& f1 = d.add_flid_session(mode, {receiver_options{}});
    auto& f2 = d.add_flid_session(mode, {receiver_options{}});
    auto& t1 = d.add_tcp_flow();
    auto& t2 = d.add_tcp_flow();
    d.run_until(sim::seconds(100.0));
    const sim::time_ns t0 = sim::seconds(30.0);
    const sim::time_ns t1end = sim::seconds(100.0);
    const std::array<double, 4> rates = {
        f1.receiver().monitor().average_kbps(t0, t1end),
        f2.receiver().monitor().average_kbps(t0, t1end),
        t1.sink->monitor().average_kbps(t0, t1end),
        t2.sink->monitor().average_kbps(t0, t1end)};
    EXPECT_GT(sim::jain_fairness_index(rates), 0.7)
        << "mode " << static_cast<int>(mode);
    // The bottleneck is well used.
    EXPECT_GT(rates[0] + rates[1] + rates[2] + rates[3], 600.0);
  }
}

}  // namespace
}  // namespace mcc::exp
