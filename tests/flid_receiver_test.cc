// FLID-DL receiver behaviour over the dumbbell scenario: climbing under
// spare capacity, stabilizing at the fair level, dropping under congestion.
#include "flid/flid_receiver.h"

#include <gtest/gtest.h>

#include "exp/testbed.h"

namespace mcc::flid {
namespace {

using exp::dumbbell;
using exp::testbed;
using exp::dumbbell_config;
using exp::flid_mode;
using exp::receiver_options;

TEST(flid_receiver, climbs_when_capacity_is_ample) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;  // no bottleneck for a <4 Mbps session
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  d.run_until(sim::seconds(60.0));
  // With ~0.3 upgrade probability per slot the receiver should reach the
  // maximal level well within a minute.
  EXPECT_EQ(session.receiver().level(), session.config.num_groups);
  EXPECT_EQ(session.receiver().stats().downgrades, 0u);
}

TEST(flid_receiver, stabilizes_near_fair_level_at_bottleneck) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 250e3;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  d.run_until(sim::seconds(120.0));
  // Fair level: cumulative rate <= 250 Kbps -> level 3 (225 Kbps).
  const double kbps = session.receiver().monitor().average_kbps(
      sim::seconds(60.0), sim::seconds(120.0));
  EXPECT_GT(kbps, 120.0);
  EXPECT_LT(kbps, 280.0);
  EXPECT_LE(session.receiver().level(), 5);
}

TEST(flid_receiver, level_history_records_transitions) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 10e6;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  d.run_until(sim::seconds(60.0));
  const auto& hist = session.receiver().level_history();
  ASSERT_GE(hist.size(), 2u);
  EXPECT_EQ(hist.front().second, 1);  // joined at the minimal level
  for (std::size_t i = 1; i < hist.size(); ++i) {
    EXPECT_GE(hist[i].first, hist[i - 1].first);  // time-ordered
    EXPECT_EQ(std::abs(hist[i].second - hist[i - 1].second), 1)
        << "levels move one step at a time";
  }
}

TEST(flid_receiver, drops_layers_when_cbr_burst_arrives) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 500e3;
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  traffic::cbr_config cbr;
  cbr.rate_bps = 400e3;
  cbr.start_time = sim::seconds(30.0);
  cbr.stop_time = sim::seconds(60.0);
  d.add_cbr(cbr);
  d.run_until(sim::seconds(60.0));
  // During the burst only ~100 Kbps remain: the receiver must be pushed to
  // a low level.
  const double during = session.receiver().monitor().average_kbps(
      sim::seconds(45.0), sim::seconds(60.0));
  const double before = session.receiver().monitor().average_kbps(
      sim::seconds(15.0), sim::seconds(30.0));
  EXPECT_LT(during, before);
  EXPECT_GT(session.receiver().stats().downgrades, 0u);
}

TEST(flid_receiver, two_receivers_converge_to_same_level) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 250e3;
  testbed d(dumbbell(cfg));
  receiver_options early;
  receiver_options late;
  late.start_time = sim::seconds(10.0);
  auto& session = d.add_flid_session(flid_mode::dl, {early, late});
  d.run_until(sim::seconds(90.0));
  // Behind the same bottleneck, both receivers end at the same level
  // (synchronized by shared losses and shared upgrade signals).
  EXPECT_EQ(session.receiver(0).level(), session.receiver(1).level());
}

TEST(flid_receiver, counts_congested_slots) {
  dumbbell_config cfg;
  cfg.bottleneck_bps = 150e3;  // tight: losses guaranteed while probing
  testbed d(dumbbell(cfg));
  auto& session = d.add_flid_session(flid_mode::dl, {receiver_options{}});
  d.run_until(sim::seconds(60.0));
  EXPECT_GT(session.receiver().stats().slots_congested, 0u);
  EXPECT_GT(session.receiver().stats().slots_evaluated, 50u);
}

}  // namespace
}  // namespace mcc::flid
