// Conformance suite for the pluggable AQM policies (sim/aqm.h).
//
// The policies are exercised directly — synthetic packets, hand-picked queue
// views and clocks — so every expectation is computable by hand from the
// documented laws: RED's EWMA recursion and count-corrected drop
// probability, the gentle-mode ramp, and CoDel's interval-gated entry plus
// interval/sqrt(count) drop spacing. Link-level integration (policies driving
// a real sim::link) and sweep-level determinism (--jobs 1 == --jobs N) are
// covered at the bottom.
#include "sim/aqm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "exp/sweep.h"
#include "exp/testbed.h"
#include "sim/link.h"
#include "test_util.h"

namespace mcc::sim {
namespace {

packet data_packet(int size, bool ecn_capable = false) {
  packet p;
  p.size_bytes = size;
  p.ecn_capable = ecn_capable;
  return p;
}

// ---------------------------------------------------------------------------
// Names and factory
// ---------------------------------------------------------------------------

TEST(aqm, qdisc_names_round_trip) {
  for (qdisc d : {qdisc::droptail, qdisc::ecn_threshold, qdisc::red,
                  qdisc::codel}) {
    const auto back = qdisc_from_name(qdisc_name(d));
    ASSERT_TRUE(back.has_value()) << qdisc_name(d);
    EXPECT_EQ(*back, d);
  }
  EXPECT_EQ(qdisc_from_name("ecn_threshold"), qdisc::ecn_threshold);
  EXPECT_FALSE(qdisc_from_name("fq_codel").has_value());
}

TEST(aqm, factory_builds_the_selected_policy) {
  aqm_config cfg;
  for (qdisc d : {qdisc::droptail, qdisc::ecn_threshold, qdisc::red,
                  qdisc::codel}) {
    cfg.discipline = d;
    EXPECT_EQ(make_aqm(cfg, 1e6, 25'000)->kind(), d);
  }
}

// ---------------------------------------------------------------------------
// Per-policy ECN handling
// ---------------------------------------------------------------------------

TEST(aqm, droptail_never_marks_or_drops) {
  droptail_aqm dt;
  const aqm_queue_view nearly_full{24'000, 25'000};
  for (bool capable : {false, true}) {
    EXPECT_EQ(dt.on_arrival(data_packet(1000, capable), nearly_full, 0),
              aqm_decision::pass);
  }
}

TEST(aqm, ecn_threshold_marks_capable_packets_above_threshold_only) {
  // ecn_threshold is degenerate RED since the fold: make_aqm lowers it to
  // min_th == max_th == half the capacity.
  aqm_config cfg;
  cfg.discipline = qdisc::ecn_threshold;
  cfg.ecn_threshold_fraction = 0.5;
  const auto ecn = make_aqm(cfg, 1e6, 25'000);
  EXPECT_EQ(ecn->kind(), qdisc::ecn_threshold);
  const aqm_queue_view below{10'000, 25'000};
  const aqm_queue_view above{20'000, 25'000};
  EXPECT_EQ(ecn->on_arrival(data_packet(1000, true), below, 0),
            aqm_decision::pass);
  EXPECT_EQ(ecn->on_arrival(data_packet(1000, true), above, 0),
            aqm_decision::mark);
  // Non-capable packets pass untouched: threshold ECN never drops early.
  EXPECT_EQ(ecn->on_arrival(data_packet(1000, false), above, 0),
            aqm_decision::pass);
  // The threshold sits exactly at the boundary: at-threshold passes.
  const aqm_queue_view at{12'500, 25'000};
  EXPECT_EQ(ecn->on_arrival(data_packet(1000, true), at, 0),
            aqm_decision::pass);
  const aqm_queue_view just_above{12'501, 25'000};
  EXPECT_EQ(ecn->on_arrival(data_packet(1000, true), just_above, 0),
            aqm_decision::mark);
  // A threshold-mode policy built directly as RED with min == max behaves
  // identically and reports the ecn_threshold kind.
  red_config degenerate;
  degenerate.min_bytes = 12'500;
  degenerate.max_bytes = 12'500;
  degenerate.weight = 1.0;
  red_aqm direct(degenerate, 25'000, 1e6, 1);
  EXPECT_EQ(direct.kind(), qdisc::ecn_threshold);
  EXPECT_EQ(direct.on_arrival(data_packet(1000, true), just_above, 0),
            aqm_decision::mark);
  EXPECT_EQ(direct.on_arrival(data_packet(1000, true), at, 0),
            aqm_decision::pass);
}

// ---------------------------------------------------------------------------
// RED
// ---------------------------------------------------------------------------

red_config instant_red() {
  // weight 1 makes avg == instantaneous queue, so the drop law can be probed
  // at an exact operating point.
  red_config cfg;
  cfg.min_bytes = 2'000;
  cfg.max_bytes = 8'000;
  cfg.max_prob = 0.1;
  cfg.weight = 1.0;
  cfg.gentle = true;
  return cfg;
}

TEST(red, below_min_threshold_never_drops) {
  red_aqm red(instant_red(), 20'000, 1e6, 1);
  const aqm_queue_view calm{1'000, 20'000};
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(red.on_arrival(data_packet(576), calm, i), aqm_decision::pass);
  }
  EXPECT_DOUBLE_EQ(red.smoothed_queue_bytes(), 1'000.0);
}

TEST(red, steady_state_drop_rate_matches_the_count_corrected_law) {
  // avg pinned at 5000: pb = max_p * (5000-2000)/(8000-2000) = 0.05. The
  // count correction makes inter-drop gaps uniform on {1..1/pb}, so the
  // steady-state drop rate is 2*pb/(1+pb) ≈ 0.0952.
  red_aqm red(instant_red(), 20'000, 1e6, 99);
  EXPECT_DOUBLE_EQ(red.base_drop_probability(5'000.0), 0.05);
  const aqm_queue_view busy{5'000, 20'000};
  int drops = 0;
  const int arrivals = 50'000;
  for (int i = 0; i < arrivals; ++i) {
    if (red.on_arrival(data_packet(576), busy, i) == aqm_decision::drop) {
      ++drops;
    }
  }
  const double rate = static_cast<double>(drops) / arrivals;
  const double expect = 2.0 * 0.05 / 1.05;
  EXPECT_NEAR(rate, expect, 0.1 * expect) << "drops " << drops;
}

TEST(red, gentle_mode_ramps_between_max_and_twice_max) {
  // The gentle line: pb = max_p + (1-max_p)*(avg-max)/max over [max, 2*max].
  red_aqm gentle(instant_red(), 20'000, 1e6, 7);
  EXPECT_DOUBLE_EQ(gentle.base_drop_probability(8'800.0),
                   0.1 + 0.9 * 800.0 / 8'000.0);  // = 0.19
  EXPECT_DOUBLE_EQ(gentle.base_drop_probability(12'000.0), 0.55);
  EXPECT_DOUBLE_EQ(gentle.base_drop_probability(16'000.0), 1.0);

  // Empirical rate at avg = 8800 (pb = 0.19): the count correction makes the
  // inter-drop gap G satisfy P(G=k) = pb for k = 1..floor(1/pb) with the
  // remaining mass on floor(1/pb)+1, so
  //   E[G] = pb * (1+2+..+5) + 6 * (1 - 5*pb) = 3.15  ->  rate = 1/3.15.
  const aqm_queue_view hot{8'800, 20'000};
  int drops = 0;
  const int arrivals = 20'000;
  for (int i = 0; i < arrivals; ++i) {
    if (gentle.on_arrival(data_packet(576), hot, i) == aqm_decision::drop) {
      ++drops;
    }
  }
  const double rate = static_cast<double>(drops) / arrivals;
  const double expect = 1.0 / 3.15;
  EXPECT_NEAR(rate, expect, 0.1 * expect) << "drops " << drops;

  // Without gentle mode, avg >= max_th is already the forced region: every
  // packet drops, ECN capability notwithstanding.
  red_config hard = instant_red();
  hard.gentle = false;
  red_aqm strict(hard, 20'000, 1e6, 7);
  EXPECT_DOUBLE_EQ(strict.base_drop_probability(12'000.0), 1.0);
  const aqm_queue_view forced{12'000, 20'000};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(strict.on_arrival(data_packet(576, /*ecn=*/true), forced, i),
              aqm_decision::drop);
  }
}

TEST(red, marks_ecn_capable_packets_instead_of_dropping) {
  red_aqm red(instant_red(), 20'000, 1e6, 3);
  const aqm_queue_view busy{6'000, 20'000};
  int marks = 0;
  for (int i = 0; i < 10'000; ++i) {
    const auto d = red.on_arrival(data_packet(576, /*ecn=*/true), busy, i);
    EXPECT_NE(d, aqm_decision::drop);  // probabilistic region never drops ECT
    if (d == aqm_decision::mark) ++marks;
  }
  EXPECT_GT(marks, 0);
}

TEST(red, ewma_tracks_bursts_with_the_documented_recursion) {
  red_config cfg;
  cfg.min_bytes = 50'000;  // keep the drop law out of the way
  cfg.max_bytes = 60'000;
  cfg.weight = 0.25;
  red_aqm red(cfg, 100'000, 1e6, 5);
  const std::vector<std::int64_t> burst = {0, 4'000, 8'000, 8'000, 2'000, 0};
  double avg = 0.0;
  time_ns now = 0;
  for (std::int64_t q : burst) {
    // First arrival decays over the (empty) initial idle period: avg is 0
    // either way; later arrivals use the EWMA recursion.
    ASSERT_EQ(red.on_arrival(data_packet(576), {q, 100'000}, now),
              aqm_decision::pass);
    if (q == 0 && now == 0) {
      avg = 0.0;
    } else {
      avg = (1.0 - cfg.weight) * avg + cfg.weight * static_cast<double>(q);
    }
    EXPECT_DOUBLE_EQ(red.smoothed_queue_bytes(), avg) << "q " << q;
    now += milliseconds(1);
  }
}

TEST(red, idle_period_decays_the_average) {
  red_config cfg;
  cfg.min_bytes = 50'000;
  cfg.max_bytes = 60'000;
  cfg.weight = 0.1;
  const double bps = 1e6;
  red_aqm red(cfg, 100'000, bps, 5);
  // Build up an average.
  time_ns now = 0;
  double avg = 0.0;
  for (int i = 0; i < 20; ++i) {
    (void)red.on_arrival(data_packet(576), {10'000, 100'000}, now);
    avg = (1.0 - cfg.weight) * avg + cfg.weight * 10'000.0;
    now += milliseconds(1);
  }
  // The queue drains at `now`; the next arrival comes after an idle gap of
  // exactly 10 nominal packet times, so avg decays by (1-w)^10.
  (void)red.on_dequeue(data_packet(576), 0, {0, 100'000}, now);
  const time_ns pkt_time = transmission_time(500, bps);
  const time_ns later = now + 10 * pkt_time;
  (void)red.on_arrival(data_packet(576), {0, 100'000}, later);
  avg *= std::pow(1.0 - cfg.weight, 10.0);
  EXPECT_DOUBLE_EQ(red.smoothed_queue_bytes(), avg);
}

TEST(red, overflow_arrivals_still_update_the_average) {
  // The link's capacity backstop bypasses on_arrival, but the Floyd-Jacobson
  // law updates avg on EVERY arrival: on_overflow must keep the average
  // tracking the full queue so RED does not resume with a stale estimate
  // after a saturating burst.
  red_config cfg;
  cfg.min_bytes = 50'000;
  cfg.max_bytes = 60'000;
  cfg.weight = 0.5;
  red_aqm red(cfg, 100'000, 1e6, 1);
  (void)red.on_arrival(data_packet(576), {8'000, 100'000}, 0);
  EXPECT_DOUBLE_EQ(red.smoothed_queue_bytes(), 4'000.0);
  red.on_overflow(data_packet(576), {99'800, 100'000}, milliseconds(1));
  EXPECT_DOUBLE_EQ(red.smoothed_queue_bytes(), 0.5 * 4'000.0 + 0.5 * 99'800.0);
}

TEST(red, thresholds_derive_from_capacity_when_not_given_in_bytes) {
  red_config cfg;  // byte thresholds unset
  cfg.min_fraction = 0.2;
  cfg.max_fraction = 0.6;
  red_aqm red(cfg, 50'000, 1e6, 1);
  EXPECT_EQ(red.min_threshold_bytes(), 10'000);
  EXPECT_EQ(red.max_threshold_bytes(), 30'000);
}

TEST(red, identical_seeds_replay_identical_decision_sequences) {
  red_aqm a(instant_red(), 20'000, 1e6, 1234);
  red_aqm b(instant_red(), 20'000, 1e6, 1234);
  const aqm_queue_view busy{6'500, 20'000};
  for (int i = 0; i < 5'000; ++i) {
    EXPECT_EQ(a.on_arrival(data_packet(576), busy, i),
              b.on_arrival(data_packet(576), busy, i));
  }
}

// ---------------------------------------------------------------------------
// CoDel
// ---------------------------------------------------------------------------

codel_config fast_codel() {
  codel_config cfg;
  cfg.target = milliseconds(5);
  cfg.interval = milliseconds(100);
  cfg.ecn = false;
  return cfg;
}

TEST(codel, sojourn_below_target_never_drops) {
  codel_aqm codel(fast_codel());
  const aqm_queue_view deep{50'000, 100'000};
  for (int i = 0; i < 1'000; ++i) {
    const time_ns now = milliseconds(i);
    EXPECT_EQ(codel.on_dequeue(data_packet(576), now - milliseconds(2), deep,
                               now),
              aqm_decision::pass);
  }
  EXPECT_FALSE(codel.dropping());
}

TEST(codel, drop_spacing_follows_interval_over_sqrt_count) {
  // Every head packet has a 20 ms sojourn (>> 5 ms target) and the queue is
  // deep, so the policy enters the dropping state one interval after the
  // first above-target observation and then spaces drops by
  // interval/sqrt(count). The expected drop times are hand-computed with the
  // same law the policy documents:
  //   enter at t1 = first tick >= interval        (drop #1, count = 1)
  //   drop_next  = t1 + interval/sqrt(1)
  //   drop #k at the first tick >= drop_next, then count -> k and
  //   drop_next += interval/sqrt(k).
  const codel_config cfg = fast_codel();
  codel_aqm codel(cfg);
  const aqm_queue_view deep{100'000, 200'000};
  const time_ns step = microseconds(100);

  std::vector<time_ns> drops;
  for (time_ns now = 0; now <= milliseconds(700); now += step) {
    const auto d =
        codel.on_dequeue(data_packet(576), now - milliseconds(20), deep, now);
    if (d == aqm_decision::drop) drops.push_back(now);
  }
  ASSERT_GE(drops.size(), 6u);

  // Mirror computation.
  auto law = [&](time_ns t, int count) {
    return t + static_cast<time_ns>(static_cast<double>(cfg.interval) /
                                    std::sqrt(static_cast<double>(count)));
  };
  auto next_tick = [&](time_ns t) { return ((t + step - 1) / step) * step; };
  std::vector<time_ns> expect;
  time_ns t1 = next_tick(cfg.interval);  // first tick with now >= first_above
  expect.push_back(t1);
  int count = 1;
  time_ns drop_next = law(t1, 1);
  while (expect.size() < drops.size()) {
    const time_ns at = next_tick(drop_next);
    expect.push_back(at);
    ++count;
    drop_next = law(drop_next, count);
  }
  EXPECT_EQ(drops, expect);
  EXPECT_EQ(codel.drop_count(), static_cast<int>(drops.size()));
}

TEST(codel, exits_dropping_once_sojourn_recovers) {
  codel_aqm codel(fast_codel());
  const aqm_queue_view deep{100'000, 200'000};
  time_ns now = 0;
  // Force it into the dropping state.
  int drops = 0;
  for (; now <= milliseconds(150); now += milliseconds(1)) {
    if (codel.on_dequeue(data_packet(576), now - milliseconds(20), deep, now) ==
        aqm_decision::drop) {
      ++drops;
    }
  }
  ASSERT_GT(drops, 0);
  ASSERT_TRUE(codel.dropping());
  // One below-target sojourn ends the episode.
  EXPECT_EQ(codel.on_dequeue(data_packet(576), now - milliseconds(1), deep, now),
            aqm_decision::pass);
  EXPECT_FALSE(codel.dropping());
}

TEST(codel, queue_below_one_mtu_suppresses_drops) {
  codel_aqm codel(fast_codel());
  const aqm_queue_view shallow{1'000, 200'000};  // < mtu_bytes
  for (int i = 0; i < 3'000; ++i) {
    const time_ns now = milliseconds(i);
    EXPECT_EQ(codel.on_dequeue(data_packet(576), now - milliseconds(50),
                               shallow, now),
              aqm_decision::pass);
  }
}

TEST(codel, marks_ecn_capable_packets_with_the_same_spacing) {
  codel_config cfg = fast_codel();
  cfg.ecn = true;
  codel_aqm marking(cfg);
  codel_aqm dropping(fast_codel());
  const aqm_queue_view deep{100'000, 200'000};
  for (time_ns now = 0; now <= milliseconds(700); now += microseconds(100)) {
    const auto m = marking.on_dequeue(data_packet(576, /*ecn=*/true),
                                      now - milliseconds(20), deep, now);
    const auto d = dropping.on_dequeue(data_packet(576),
                                       now - milliseconds(20), deep, now);
    // Identical control law; only the action differs.
    EXPECT_EQ(m == aqm_decision::mark, d == aqm_decision::drop);
    EXPECT_NE(m, aqm_decision::drop);
  }
  EXPECT_EQ(marking.drop_count(), dropping.drop_count());
}

// ---------------------------------------------------------------------------
// Link integration: the policies steering a real queue
// ---------------------------------------------------------------------------

using mcc::testing::capture_agent;
using mcc::testing::make_packet;

/// Sink that stamps each delivery with its arrival time.
class stamped_sink : public agent {
 public:
  stamped_sink(network& net, node_id host) : sched_(net.sched()) {
    net.get(host)->add_agent(this);
  }
  bool handle_packet(const packet& p, link*) override {
    const auto* hdr = header_as<cbr_payload>(p);
    deliveries.emplace_back(hdr == nullptr ? -1 : hdr->seq, sched_.now());
    return true;
  }
  std::vector<std::pair<std::int64_t, time_ns>> deliveries;  // (seq, when)

 private:
  scheduler& sched_;
};

struct overloaded_link {
  /// 1 Mbps link fed seq-stamped 576-byte packets at ~1.3 Mbps for
  /// `duration`; attach a sink to host b before running.
  overloaded_link(scheduler& s, const aqm_config& aqm, time_ns duration)
      : net(s) {
    a = net.add_host("a");
    b = net.add_host("b");
    link_config cfg;
    cfg.bps = 1e6;
    cfg.delay = 0;
    cfg.queue_capacity_bytes = 25'000;
    cfg.aqm = aqm;
    auto [f, r] = net.connect(a, b, cfg);
    fwd = f;
    (void)r;
    net.finalize_routing();
    const time_ns gap = nanoseconds(3'544'615);  // 576*8/1.3e6 seconds
    std::int64_t seq = 0;
    for (time_ns t = 0; t < duration; t += gap, ++seq) {
      send_times.push_back(t);
      s.at(t, [this, seq] {
        packet p = make_packet(576, b);
        p.hdr = cbr_payload{1, seq};
        net.get(a)->send(std::move(p));
      });
    }
  }

  /// Mean queueing delay (sojourn before serialization) of packets
  /// delivered in [from, to), in milliseconds.
  [[nodiscard]] double mean_sojourn_ms(const stamped_sink& sink, time_ns from,
                                       time_ns to) const {
    const time_ns tx = transmission_time(576, 1e6);
    double sum = 0.0;
    int n = 0;
    for (const auto& [seq, when] : sink.deliveries) {
      if (when < from || when >= to || seq < 0) continue;
      sum += to_millis(when - tx - send_times[static_cast<std::size_t>(seq)]);
      ++n;
    }
    return n == 0 ? 0.0 : sum / n;
  }

  network net;
  node_id a, b;
  link* fwd;
  std::vector<time_ns> send_times;
};

TEST(aqm_link, red_sheds_early_and_keeps_the_queue_below_droptail) {
  scheduler s_dt;
  aqm_config droptail;
  overloaded_link dt(s_dt, droptail, seconds(20.0));
  capture_agent dt_sink(dt.net, dt.b);
  s_dt.run();

  scheduler s_red;
  aqm_config red;
  red.discipline = qdisc::red;
  red.seed = 11;
  overloaded_link rd(s_red, red, seconds(20.0));
  capture_agent rd_sink(rd.net, rd.b);
  s_red.run();

  // Droptail fills the buffer and tail-drops; RED sheds early instead and
  // holds the average occupancy near its thresholds.
  EXPECT_EQ(dt.fwd->stats().aqm_dropped, 0u);
  EXPECT_GT(dt.fwd->stats().dropped, 0u);
  EXPECT_GT(rd.fwd->stats().aqm_dropped, 0u);
  EXPECT_GE(rd.fwd->stats().dropped, rd.fwd->stats().aqm_dropped);
  const double dt_avg = dt.fwd->time_avg_queued_bytes(s_dt.now());
  const double red_avg = rd.fwd->time_avg_queued_bytes(s_red.now());
  EXPECT_GT(dt_avg, 15'000.0);
  EXPECT_LT(red_avg, 0.8 * dt_avg);
}

TEST(aqm_link, codel_converges_to_the_sojourn_target) {
  scheduler s_dt;
  aqm_config droptail;
  overloaded_link dt(s_dt, droptail, seconds(60.0));
  stamped_sink dt_sink(dt.net, dt.b);
  s_dt.run();

  scheduler s;
  aqm_config codel;
  codel.discipline = qdisc::codel;
  codel.codel.ecn = false;
  overloaded_link cl(s, codel, seconds(60.0));
  stamped_sink cl_sink(cl.net, cl.b);
  s.run();

  // 30% open-loop overload against a 25 KB buffer: droptail converges to a
  // full buffer, ~200 ms of standing queue. CoDel saw-tooths — drain to the
  // target, exit dropping, a 100 ms interval of rebuild, re-enter — so the
  // converged sojourn is a small multiple of the 5 ms target, an order of
  // magnitude under droptail. Measure after a 20 s warmup to exclude the
  // initial interval/sqrt(count) ramp.
  EXPECT_GT(cl.fwd->stats().aqm_dropped, 0u);
  const double dt_late = dt.mean_sojourn_ms(dt_sink, seconds(20.0), seconds(60.0));
  const double cl_late = cl.mean_sojourn_ms(cl_sink, seconds(20.0), seconds(60.0));
  EXPECT_GT(dt_late, 150.0);
  EXPECT_LT(cl_late, 40.0) << "droptail reference " << dt_late;
  EXPECT_LT(cl_late, 0.2 * dt_late);
  EXPECT_LT(cl.fwd->stats().max_queued_bytes, 25'000);
}

// ---------------------------------------------------------------------------
// Sweep determinism: AQM decisions must be jobs-invariant
// ---------------------------------------------------------------------------

exp::sweep_row aqm_sweep_point(const exp::sweep_point& pt, qdisc d) {
  exp::dumbbell_config cfg;
  cfg.bottleneck_bps = 500e3;
  cfg.seed = pt.seed;
  cfg.aqm.discipline = d;
  exp::testbed t(exp::dumbbell(cfg));
  t.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
  traffic::cbr_config cbr;
  cbr.rate_bps = 300e3;
  t.add_cbr(cbr);
  t.run_until(seconds(15.0));
  const link_stats& bn = t.bottleneck()->stats();
  exp::sweep_row row;
  row.value("enqueued", static_cast<double>(bn.enqueued));
  row.value("dropped", static_cast<double>(bn.dropped));
  row.value("aqm_dropped", static_cast<double>(bn.aqm_dropped));
  row.value("ecn_marked", static_cast<double>(bn.ecn_marked));
  row.value("avg_queue", t.bottleneck()->time_avg_queued_bytes(t.sched().now()));
  return row;
}

TEST(aqm_determinism, decisions_are_bit_identical_across_jobs_counts) {
  for (qdisc d : {qdisc::red, qdisc::codel}) {
    exp::sweep_options serial;
    serial.jobs = 1;
    serial.base_seed = 17;
    exp::sweep_options parallel = serial;
    parallel.jobs = 4;
    const std::vector<double> grid = {0, 1, 2, 3};
    const auto fn = [&](const exp::sweep_point& pt) {
      return aqm_sweep_point(pt, d);
    };
    const auto rows1 = exp::run_sweep(grid, serial, fn);
    const auto rowsN = exp::run_sweep(grid, parallel, fn);
    ASSERT_EQ(rows1.size(), rowsN.size());
    for (std::size_t i = 0; i < rows1.size(); ++i) {
      ASSERT_EQ(rows1[i].values.size(), rowsN[i].values.size());
      for (std::size_t v = 0; v < rows1[i].values.size(); ++v) {
        EXPECT_EQ(rows1[i].values[v].first, rowsN[i].values[v].first);
        EXPECT_EQ(rows1[i].values[v].second, rowsN[i].values[v].second)
            << qdisc_name(d) << " point " << i << " "
            << rows1[i].values[v].first;
      }
    }
  }
}

}  // namespace
}  // namespace mcc::sim
