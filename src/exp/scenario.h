// Experiment scenarios: the single-bottleneck (dumbbell) topology of paper
// section 5.1 with factories for FLID-DL / FLID-DS sessions, TCP Reno flows,
// and on-off CBR cross traffic.
//
// Defaults follow the paper: every session's three-link path crosses the
// middle bottleneck link (20 ms); other links are 10 Mbps / 10 ms; buffers
// are two bandwidth-delay products; multicast sessions have 10 groups, a
// 100 Kbps minimal group, cumulative rate factor 1.5, 576-byte packets;
// FLID-DL uses 500 ms slots and FLID-DS 250 ms.
#ifndef MCC_EXP_SCENARIO_H
#define MCC_EXP_SCENARIO_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/flid_ds.h"
#include "core/sigma_router.h"
#include "flid/flid_receiver.h"
#include "flid/flid_sender.h"
#include "sim/network.h"
#include "tcp/tcp.h"
#include "traffic/cbr.h"

namespace mcc::exp {

struct dumbbell_config {
  double bottleneck_bps = 1e6;
  sim::time_ns bottleneck_delay = sim::milliseconds(20);
  double access_bps = 10e6;
  sim::time_ns access_delay = sim::milliseconds(10);
  /// Queue capacity in bandwidth-delay products (link rate x base_rtt).
  double buffer_bdp = 2.0;
  sim::time_ns base_rtt = sim::milliseconds(80);
  std::uint64_t seed = 1;
};

enum class flid_mode { dl, ds };

/// Misbehavior configuration for one receiver.
struct receiver_options {
  sim::time_ns start_time = 0;
  sim::time_ns access_delay = -1;  // -1: use the scenario default
  bool inflate = false;            // launch the inflated-subscription attack
  sim::time_ns inflate_at = 0;
  /// Level the attacker inflates to in DL mode (<= 0: all groups).
  int inflate_level = 0;
  core::misbehaving_sigma_strategy::key_mode attack_keys =
      core::misbehaving_sigma_strategy::key_mode::guess;
};

/// One multicast session: sender machinery plus its receivers.
struct flid_session {
  flid_mode mode = flid_mode::dl;
  flid::flid_config config;
  std::unique_ptr<flid::flid_sender> sender;
  core::flid_ds_sender ds;  // populated in DS mode
  std::vector<std::unique_ptr<flid::flid_receiver>> receivers;

  [[nodiscard]] flid::flid_receiver& receiver(int i = 0) {
    return *receivers[static_cast<std::size_t>(i)];
  }
};

struct tcp_flow {
  std::unique_ptr<tcp::tcp_sender> sender;
  std::unique_ptr<tcp::tcp_sink> sink;
};

struct cbr_flow {
  std::unique_ptr<traffic::cbr_source> source;
  std::unique_ptr<traffic::cbr_sink> sink;
};

class dumbbell {
 public:
  explicit dumbbell(const dumbbell_config& cfg);

  [[nodiscard]] sim::network& net() { return net_; }
  [[nodiscard]] sim::scheduler& sched() { return sched_; }
  [[nodiscard]] sim::node_id left_router() const { return left_router_; }
  [[nodiscard]] sim::node_id right_router() const { return right_router_; }
  [[nodiscard]] sim::link* bottleneck() const { return bottleneck_; }
  [[nodiscard]] core::sigma_router_agent& sigma() { return *sigma_; }
  [[nodiscard]] const dumbbell_config& config() const { return cfg_; }

  /// Paper defaults for a session in the given mode; callers tweak fields
  /// before passing the config to add_flid_session.
  [[nodiscard]] flid::flid_config default_flid_config(flid_mode mode) const;

  /// Adds a multicast session with one receiver per entry of `receivers`.
  flid_session& add_flid_session(flid_mode mode,
                                 const std::vector<receiver_options>& receivers,
                                 sim::time_ns sender_start = 0);
  /// Same, with an explicit (already session-id-assigned) config.
  flid_session& add_flid_session(flid_mode mode, flid::flid_config cfg,
                                 const std::vector<receiver_options>& receivers,
                                 sim::time_ns sender_start = 0);

  tcp_flow& add_tcp_flow(sim::time_ns start_time = 0);
  cbr_flow& add_cbr(const traffic::cbr_config& cfg);

  /// Finalizes routing on first call and runs the simulation to `until`.
  void run_until(sim::time_ns until);

  [[nodiscard]] int next_session_id() const { return next_session_id_; }

 private:
  sim::node_id add_left_host(const std::string& name);
  sim::node_id add_right_host(const std::string& name, sim::time_ns delay);
  [[nodiscard]] std::uint64_t next_seed();
  void finalize();

  dumbbell_config cfg_;
  sim::scheduler sched_;
  sim::network net_;
  sim::node_id left_router_;
  sim::node_id right_router_;
  sim::link* bottleneck_ = nullptr;
  std::unique_ptr<mcast::igmp_agent> igmp_left_;
  std::unique_ptr<mcast::igmp_agent> igmp_right_;
  std::unique_ptr<core::sigma_router_agent> sigma_;
  std::vector<std::unique_ptr<flid_session>> sessions_;
  std::vector<std::unique_ptr<tcp_flow>> tcp_flows_;
  std::vector<std::unique_ptr<cbr_flow>> cbr_flows_;
  int next_session_id_ = 1;
  int next_flow_id_ = 1;
  std::uint64_t seed_state_;
  bool finalized_ = false;
};

/// Average of receiver throughputs over [t0, t1) in Kbps.
[[nodiscard]] double average_receiver_kbps(flid_session& session,
                                           sim::time_ns t0, sim::time_ns t1);

}  // namespace mcc::exp

#endif  // MCC_EXP_SCENARIO_H
