#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <limits>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#ifdef __unix__
#include <sys/wait.h>
#include <unistd.h>
#endif
#ifdef __linux__
#include <sched.h>
#endif

#include "crypto/prng.h"
#include "util/logging.h"
#include "util/require.h"

namespace mcc::exp {

std::uint64_t point_seed(std::uint64_t base_seed, std::size_t index) {
  // Two splitmix64 steps over a mix of base and index: adjacent indices give
  // uncorrelated streams, and the result depends on nothing else.
  std::uint64_t state =
      base_seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1));
  (void)crypto::splitmix64(state);
  return crypto::splitmix64(state);
}

void add_sweep_flags(util::flag_set& flags) {
  flags.add("jobs", "1", "worker threads for the parameter grid");
  flags.add("jobs-per-process", "0",
            "fork worker processes with this many threads each (0 = run all "
            "jobs in-process)");
  flags.add("json", "", "also write machine-readable results to this file");
  flags.add("trace", "",
            "write the deterministic event trace to this file (convert with "
            "tools/trace2perfetto.py)");
  flags.add("profile", "false",
            "add a wall-clock self-profiling block to the --json document");
  flags.add("log-level", "",
            "log threshold: debug|info|warn|error|off (default: MCC_LOG_LEVEL "
            "env, else warn)");
}

sweep_options sweep_options_from_flags(const util::flag_set& flags,
                                       std::uint64_t base_seed) {
  // Env fallback first, then the flag on top — an explicit --log-level wins.
  if (const auto bad_env = util::apply_log_level_env()) {
    std::fprintf(stderr, "bad MCC_LOG_LEVEL value '%s' (expected one of "
                 "debug, info, warn, error, off)\n", bad_env->c_str());
    std::exit(1);
  }
  const std::string level_name = flags.str("log-level");
  if (!level_name.empty()) {
    if (const auto level = util::log_level_from_name(level_name)) {
      util::set_log_level(*level);
    } else {
      std::fprintf(stderr, "bad value for --log-level: '%s' (expected one of "
                   "debug, info, warn, error, off)\n", level_name.c_str());
      std::exit(1);
    }
  }
  sweep_options opts;
  opts.jobs = static_cast<int>(flags.i64("jobs"));
  opts.jobs_per_process = static_cast<int>(flags.i64("jobs-per-process"));
  opts.base_seed = base_seed;
  return opts;
}

bool trace_requested(const util::flag_set& flags) {
  return !flags.str("trace").empty();
}

bool profile_requested(const util::flag_set& flags) {
  return flags.boolean("profile");
}

double sweep_row::value_of(const std::string& name) const {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

const series* sweep_row::trace_of(const std::string& name) const {
  for (const auto& [n, s] : traces) {
    if (n == name) return &s;
  }
  return nullptr;
}

double sweep_row::metric_of(const std::string& name) const {
  for (const auto& [n, v] : metrics) {
    if (n == name) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

series column(const std::vector<sweep_row>& rows, const std::string& name) {
  series out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.emplace_back(row.x, row.value_of(name));
  return out;
}

namespace {

/// Runs `fn` over the listed grid indices on up to `threads` worker threads,
/// filling rows[i] for each index i. Rethrows the first point failure after
/// the workers join; points not yet started by then are abandoned.
void run_points(const std::vector<double>& xs, const sweep_options& opts,
                const std::function<sweep_row(const sweep_point&)>& fn,
                const std::vector<std::size_t>& indices, int threads,
                std::vector<sweep_row>& rows, sweep_profile* profile) {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex profile_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
      // Stop claiming points once any point has failed: grid points can take
      // minutes each, and the first error decides the run's fate anyway.
      if (k >= indices.size() || failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = indices[k];
      sweep_point pt;
      pt.index = i;
      pt.x = xs[i];
      pt.seed = point_seed(opts.base_seed, i);
      try {
        const auto t0 = std::chrono::steady_clock::now();
        sweep_row row = fn(pt);
        if (profile != nullptr) {
          const std::chrono::duration<double, std::milli> ms =
              std::chrono::steady_clock::now() - t0;
          const std::lock_guard<std::mutex> lock(profile_mutex);
          profile->point_ms.observe(ms.count());
        }
        if (std::isnan(row.x)) row.x = pt.x;
        rows[i] = std::move(row);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int jobs = std::min<int>(
      std::max(1, threads),
      static_cast<int>(std::max<std::size_t>(indices.size(), 1)));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

#ifdef __unix__

// --- forked worker transport ------------------------------------------------
//
// Each forked worker streams its shard's rows back over a pipe as binary
// frames. Doubles cross the pipe as their raw IEEE-754 bytes (memcpy, never
// text), so the parent reassembles rows bit-identical to an in-process run.
// A shard ends with an explicit done frame; EOF without one means the worker
// died and the whole sweep fails loudly rather than returning a partial grid.

enum : unsigned char { kFrameRow = 1, kFrameDone = 2, kFrameError = 3 };

void encode_u64(std::vector<unsigned char>& buf, std::uint64_t v) {
  unsigned char raw[8];
  std::memcpy(raw, &v, sizeof raw);
  buf.insert(buf.end(), raw, raw + sizeof raw);
}

void encode_f64(std::vector<unsigned char>& buf, double v) {
  unsigned char raw[8];
  std::memcpy(raw, &v, sizeof raw);
  buf.insert(buf.end(), raw, raw + sizeof raw);
}

void encode_str(std::vector<unsigned char>& buf, const std::string& s) {
  encode_u64(buf, s.size());
  buf.insert(buf.end(), s.begin(), s.end());
}

void encode_row(std::vector<unsigned char>& buf, std::size_t index,
                const sweep_row& row) {
  buf.push_back(kFrameRow);
  encode_u64(buf, index);
  encode_f64(buf, row.x);
  encode_str(buf, row.label);
  encode_u64(buf, row.values.size());
  for (const auto& [name, v] : row.values) {
    encode_str(buf, name);
    encode_f64(buf, v);
  }
  encode_u64(buf, row.traces.size());
  for (const auto& [name, s] : row.traces) {
    encode_str(buf, name);
    encode_u64(buf, s.size());
    for (const auto& [t, v] : s) {
      encode_f64(buf, t);
      encode_f64(buf, v);
    }
  }
  encode_u64(buf, row.metrics.size());
  for (const auto& [name, v] : row.metrics) {
    encode_str(buf, name);
    encode_f64(buf, v);
  }
  encode_str(buf, row.trace_blob);
}

void write_all(int fd, const unsigned char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      std::_Exit(3);  // parent gone; nothing sane left to do in a worker
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes; false on EOF before the first byte, throws if the
/// stream ends mid-read (a worker died mid-frame).
bool read_exact(int fd, void* out, std::size_t n) {
  unsigned char* p = static_cast<unsigned char*>(out);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("sweep: worker pipe read failed");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw std::runtime_error("sweep: worker died mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

std::uint64_t read_u64(int fd) {
  std::uint64_t v = 0;
  if (!read_exact(fd, &v, sizeof v)) {
    throw std::runtime_error("sweep: worker died mid-frame");
  }
  return v;
}

double read_f64(int fd) {
  double v = 0;
  if (!read_exact(fd, &v, sizeof v)) {
    throw std::runtime_error("sweep: worker died mid-frame");
  }
  return v;
}

std::string read_str(int fd) {
  const std::uint64_t n = read_u64(fd);
  std::string s(n, '\0');
  if (n > 0 && !read_exact(fd, s.data(), n)) {
    throw std::runtime_error("sweep: worker died mid-frame");
  }
  return s;
}

/// Worker-process body: pin to a CPU stripe, run this worker's interleaved
/// shard on `threads` threads, stream rows + a done frame (or an error frame)
/// back, and _Exit without running parent-inherited destructors.
[[noreturn]] void worker_main(int worker, int workers, int threads, int fd,
                              const std::vector<double>& xs,
                              const sweep_options& opts,
                              const std::function<sweep_row(const sweep_point&)>& fn) {
#ifdef __linux__
  // Pin each worker's threads to their own CPU stripe so slab pools stay
  // local; best-effort — a constrained cpuset just keeps the inherited mask.
  const long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu > 0) {
    cpu_set_t set;
    CPU_ZERO(&set);
    for (int t = 0; t < threads; ++t) {
      CPU_SET(static_cast<std::size_t>((worker * threads + t) % ncpu), &set);
    }
    (void)::sched_setaffinity(0, sizeof set, &set);
  }
#endif
  try {
    std::vector<std::size_t> mine;
    for (std::size_t i = static_cast<std::size_t>(worker); i < xs.size();
         i += static_cast<std::size_t>(workers)) {
      mine.push_back(i);
    }
    std::vector<sweep_row> rows(xs.size());
    std::mutex pipe_mutex;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::string first_error;
    std::mutex error_mutex;
    std::vector<unsigned char> frame;

    auto body = [&] {
      std::vector<unsigned char> buf;
      for (;;) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= mine.size() || failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = mine[k];
        sweep_point pt;
        pt.index = i;
        pt.x = xs[i];
        pt.seed = point_seed(opts.base_seed, i);
        try {
          sweep_row row = fn(pt);
          if (std::isnan(row.x)) row.x = pt.x;
          buf.clear();
          encode_row(buf, i, row);
          const std::lock_guard<std::mutex> lock(pipe_mutex);
          write_all(fd, buf.data(), buf.size());
        } catch (const std::exception& e) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.empty()) first_error = e.what();
          failed.store(true, std::memory_order_relaxed);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.empty()) first_error = "unknown point failure";
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };

    const int jobs = std::min<int>(
        std::max(1, threads),
        static_cast<int>(std::max<std::size_t>(mine.size(), 1)));
    if (jobs <= 1) {
      body();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(jobs));
      for (int t = 0; t < jobs; ++t) pool.emplace_back(body);
      for (auto& th : pool) th.join();
    }

    if (!first_error.empty()) {
      frame.push_back(kFrameError);
      encode_str(frame, first_error);
      write_all(fd, frame.data(), frame.size());
      std::_Exit(1);
    }
    frame.push_back(kFrameDone);
    write_all(fd, frame.data(), frame.size());
    std::_Exit(0);
  } catch (...) {
    std::vector<unsigned char> frame;
    frame.push_back(kFrameError);
    encode_str(frame, "worker setup failed");
    write_all(fd, frame.data(), frame.size());
    std::_Exit(1);
  }
}

void run_sweep_forked(const std::vector<double>& xs, const sweep_options& opts,
                      const std::function<sweep_row(const sweep_point&)>& fn,
                      std::vector<sweep_row>& rows) {
  const int threads = opts.jobs_per_process;
  const int want = std::max(std::max(1, opts.jobs), threads);
  int workers = (want + threads - 1) / threads;
  workers = std::min<int>(workers, static_cast<int>(xs.size()));

  struct worker_handle {
    pid_t pid = -1;
    int fd = -1;
  };
  std::vector<worker_handle> kids;
  kids.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    int pipe_fd[2];
    util::require(::pipe(pipe_fd) == 0, "sweep: pipe() failed");
    const pid_t pid = ::fork();
    util::require(pid >= 0, "sweep: fork() failed");
    if (pid == 0) {
      ::close(pipe_fd[0]);
      for (const worker_handle& prior : kids) ::close(prior.fd);
      worker_main(w, workers, threads, pipe_fd[1], xs, opts, fn);
    }
    ::close(pipe_fd[1]);
    kids.push_back({pid, pipe_fd[0]});
  }

  // One reader per worker; each writes a disjoint set of rows[] slots, so the
  // only shared state is the error string.
  std::vector<char> got_done(static_cast<std::size_t>(workers), 0);
  std::string point_error;
  std::string transport_error;
  std::mutex error_mutex;
  auto reader = [&](int w) {
    const int fd = kids[static_cast<std::size_t>(w)].fd;
    try {
      for (;;) {
        unsigned char tag = 0;
        if (!read_exact(fd, &tag, 1)) return;  // EOF, no done frame: crashed
        if (tag == kFrameDone) {
          got_done[static_cast<std::size_t>(w)] = 1;
          return;
        }
        if (tag == kFrameError) {
          const std::string msg = read_str(fd);
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (point_error.empty()) point_error = msg;
          return;
        }
        util::require(tag == kFrameRow, "sweep: bad frame from worker");
        const std::uint64_t index = read_u64(fd);
        util::require(index < rows.size(), "sweep: bad row index from worker");
        sweep_row row;
        row.x = read_f64(fd);
        row.label = read_str(fd);
        const std::uint64_t nvalues = read_u64(fd);
        row.values.reserve(nvalues);
        for (std::uint64_t v = 0; v < nvalues; ++v) {
          std::string name = read_str(fd);
          const double value = read_f64(fd);
          row.values.emplace_back(std::move(name), value);
        }
        const std::uint64_t ntraces = read_u64(fd);
        row.traces.reserve(ntraces);
        for (std::uint64_t t = 0; t < ntraces; ++t) {
          std::string name = read_str(fd);
          series s;
          const std::uint64_t npoints = read_u64(fd);
          s.reserve(npoints);
          for (std::uint64_t p = 0; p < npoints; ++p) {
            const double time = read_f64(fd);
            const double value = read_f64(fd);
            s.emplace_back(time, value);
          }
          row.traces.emplace_back(std::move(name), std::move(s));
        }
        const std::uint64_t nmetrics = read_u64(fd);
        row.metrics.reserve(nmetrics);
        for (std::uint64_t m = 0; m < nmetrics; ++m) {
          std::string name = read_str(fd);
          const double value = read_f64(fd);
          row.metrics.emplace_back(std::move(name), value);
        }
        row.trace_blob = read_str(fd);
        rows[index] = std::move(row);
      }
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (transport_error.empty()) transport_error = e.what();
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) readers.emplace_back(reader, w);
  for (auto& th : readers) th.join();

  // Reap every worker before deciding the run's fate, so a failure throw
  // never leaks zombies.
  std::vector<int> statuses(static_cast<std::size_t>(workers), 0);
  for (int w = 0; w < workers; ++w) {
    ::close(kids[static_cast<std::size_t>(w)].fd);
    int status = 0;
    while (::waitpid(kids[static_cast<std::size_t>(w)].pid, &status, 0) < 0 &&
           errno == EINTR) {
    }
    statuses[static_cast<std::size_t>(w)] = status;
  }

  if (!point_error.empty()) {
    throw std::runtime_error("sweep: point failed in worker process: " +
                             point_error);
  }
  for (int w = 0; w < workers; ++w) {
    if (got_done[static_cast<std::size_t>(w)]) continue;
    const int status = statuses[static_cast<std::size_t>(w)];
    std::string how = "exited without finishing its shard";
    if (WIFSIGNALED(status)) {
      how = "killed by signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status)) {
      how = "exited with status " + std::to_string(WEXITSTATUS(status));
    }
    throw std::runtime_error(
        "sweep: worker process " + std::to_string(w) + " of " +
        std::to_string(workers) + " died before completing its shard (" + how +
        "); refusing to emit a truncated result" +
        (transport_error.empty() ? "" : " [" + transport_error + "]"));
  }
  if (!transport_error.empty()) {
    throw std::runtime_error("sweep: " + transport_error);
  }
}

#endif  // __unix__

}  // namespace

std::vector<sweep_row> run_sweep(
    const std::vector<double>& xs, const sweep_options& opts,
    const std::function<sweep_row(const sweep_point&)>& fn,
    sweep_profile* profile) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<sweep_row> rows(xs.size());
  if (opts.jobs_per_process > 0 && !xs.empty()) {
#ifdef __unix__
    run_sweep_forked(xs, opts, fn, rows);
#else
    throw std::runtime_error(
        "sweep: --jobs-per-process requires fork(); run with --jobs instead");
#endif
  } else {
    std::vector<std::size_t> all(xs.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    run_points(xs, opts, fn, all, opts.jobs, rows, profile);
  }
  if (profile != nullptr) {
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - t0;
    profile->wall_ms = wall.count();
    profile->points = xs.size();
    const double wall_s = profile->wall_ms / 1e3;
    profile->points_per_sec =
        wall_s > 0.0 ? static_cast<double>(profile->points) / wall_s : 0.0;
    profile->events_executed = 0.0;
    for (const sweep_row& row : rows) {
      const double events = row.metric_of("sched.executed_events");
      if (std::isfinite(events)) profile->events_executed += events;
    }
    profile->events_per_sec =
        wall_s > 0.0 ? profile->events_executed / wall_s : 0.0;
  }
  return rows;
}

namespace {

void json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
  } else {
    os << "null";  // JSON has no NaN/Inf
  }
}

}  // namespace

void write_json(std::ostream& os, const std::string& bench,
                const std::vector<sweep_row>& rows,
                const sweep_profile* profile) {
  os << "{\n  \"bench\": ";
  json_escaped(os, bench);
  // Explicit schema version so tools/bench_aggregate.py dispatches on it
  // instead of sniffing keys. Version 2 = per-row "metrics" objects and the
  // optional document "profile" block.
  os << ",\n  \"schema_version\": 2";
  os << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const sweep_row& row = rows[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"x\": ";
    json_number(os, row.x);
    if (!row.label.empty()) {
      os << ", \"label\": ";
      json_escaped(os, row.label);
    }
    os << ", \"values\": {";
    for (std::size_t v = 0; v < row.values.size(); ++v) {
      if (v > 0) os << ", ";
      json_escaped(os, row.values[v].first);
      os << ": ";
      json_number(os, row.values[v].second);
    }
    os << "}";
    if (!row.metrics.empty()) {
      os << ", \"metrics\": {";
      for (std::size_t m = 0; m < row.metrics.size(); ++m) {
        if (m > 0) os << ", ";
        json_escaped(os, row.metrics[m].first);
        os << ": ";
        json_number(os, row.metrics[m].second);
      }
      os << "}";
    }
    os << ", \"traces\": {";
    for (std::size_t t = 0; t < row.traces.size(); ++t) {
      if (t > 0) os << ", ";
      json_escaped(os, row.traces[t].first);
      os << ": [";
      const series& s = row.traces[t].second;
      for (std::size_t p = 0; p < s.size(); ++p) {
        if (p > 0) os << ", ";
        os << '[';
        json_number(os, s[p].first);
        os << ", ";
        json_number(os, s[p].second);
        os << ']';
      }
      os << ']';
    }
    os << "}}";
  }
  os << "\n  ]";
  if (profile != nullptr) {
    os << ",\n  \"profile\": {";
    os << "\"wall_ms\": ";
    json_number(os, profile->wall_ms);
    os << ", \"points\": " << profile->points;
    os << ", \"points_per_sec\": ";
    json_number(os, profile->points_per_sec);
    os << ", \"events_executed\": ";
    json_number(os, profile->events_executed);
    os << ", \"events_per_sec\": ";
    json_number(os, profile->events_per_sec);
    os << ", \"point_ms\": {\"count\": " << profile->point_ms.count();
    os << ", \"sum\": ";
    json_number(os, profile->point_ms.sum());
    os << ", \"buckets\": [";
    const auto& bounds = profile->point_ms.bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      if (i > 0) os << ", ";
      os << profile->point_ms.bucket(i);
    }
    os << "]}}";
  }
  os << "\n}\n";
}

void maybe_write_json(const util::flag_set& flags, const std::string& bench,
                      const std::vector<sweep_row>& rows) {
  maybe_write_json(flags, bench, rows, nullptr);
}

void maybe_write_json(const util::flag_set& flags, const std::string& bench,
                      const std::vector<sweep_row>& rows,
                      const sweep_profile* profile) {
  const std::string path = flags.str("json");
  if (path.empty()) return;
  std::ofstream out(path);
  util::require(out.good(), "sweep: cannot open --json file", path);
  write_json(out, bench, rows, profile);
  out.flush();
  util::require(out.good(), "sweep: write to --json file failed", path);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

void maybe_write_trace(const util::flag_set& flags,
                       const std::vector<sweep_row>& rows) {
  const std::string path = flags.str("trace");
  if (path.empty()) return;
  // Container layout (docs/observability.md): "MCCT" magic, u32 version,
  // u32 segment count, then per traced row: u32 row index + u64 blob size +
  // the row's serialized trace_buffer segment. Rows are visited in grid
  // order, so the file is byte-identical across --jobs settings.
  std::ofstream out(path, std::ios::binary);
  util::require(out.good(), "sweep: cannot open --trace file", path);
  std::uint32_t segments = 0;
  for (const sweep_row& row : rows) {
    if (!row.trace_blob.empty()) ++segments;
  }
  const auto put_u32 = [&out](std::uint32_t v) {
    out.write(reinterpret_cast<const char*>(&v), sizeof v);
  };
  out.write("MCCT", 4);
  put_u32(1);  // container version
  put_u32(segments);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const sweep_row& row = rows[i];
    if (row.trace_blob.empty()) continue;
    put_u32(static_cast<std::uint32_t>(i));
    const std::uint64_t size = row.trace_blob.size();
    out.write(reinterpret_cast<const char*>(&size), sizeof size);
    out.write(row.trace_blob.data(),
              static_cast<std::streamsize>(row.trace_blob.size()));
  }
  out.flush();
  util::require(out.good(), "sweep: write to --trace file failed", path);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace mcc::exp
