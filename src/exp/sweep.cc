#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <limits>
#include <mutex>
#include <ostream>
#include <thread>

#include "crypto/prng.h"
#include "util/require.h"

namespace mcc::exp {

std::uint64_t point_seed(std::uint64_t base_seed, std::size_t index) {
  // Two splitmix64 steps over a mix of base and index: adjacent indices give
  // uncorrelated streams, and the result depends on nothing else.
  std::uint64_t state =
      base_seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1));
  (void)crypto::splitmix64(state);
  return crypto::splitmix64(state);
}

void add_sweep_flags(util::flag_set& flags) {
  flags.add("jobs", "1", "worker threads for the parameter grid");
  flags.add("json", "", "also write machine-readable results to this file");
}

sweep_options sweep_options_from_flags(const util::flag_set& flags,
                                       std::uint64_t base_seed) {
  sweep_options opts;
  opts.jobs = static_cast<int>(flags.i64("jobs"));
  opts.base_seed = base_seed;
  return opts;
}

double sweep_row::value_of(const std::string& name) const {
  for (const auto& [n, v] : values) {
    if (n == name) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

const series* sweep_row::trace_of(const std::string& name) const {
  for (const auto& [n, s] : traces) {
    if (n == name) return &s;
  }
  return nullptr;
}

series column(const std::vector<sweep_row>& rows, const std::string& name) {
  series out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.emplace_back(row.x, row.value_of(name));
  return out;
}

std::vector<sweep_row> run_sweep(
    const std::vector<double>& xs, const sweep_options& opts,
    const std::function<sweep_row(const sweep_point&)>& fn) {
  std::vector<sweep_row> rows(xs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      // Stop claiming points once any point has failed: grid points can take
      // minutes each, and the first error decides the run's fate anyway.
      if (i >= xs.size() || failed.load(std::memory_order_relaxed)) return;
      sweep_point pt;
      pt.index = i;
      pt.x = xs[i];
      pt.seed = point_seed(opts.base_seed, i);
      try {
        sweep_row row = fn(pt);
        if (std::isnan(row.x)) row.x = pt.x;
        rows[i] = std::move(row);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const int jobs =
      std::min<int>(std::max(1, opts.jobs), static_cast<int>(std::max<std::size_t>(xs.size(), 1)));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return rows;
}

namespace {

void json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
  } else {
    os << "null";  // JSON has no NaN/Inf
  }
}

}  // namespace

void write_json(std::ostream& os, const std::string& bench,
                const std::vector<sweep_row>& rows) {
  os << "{\n  \"bench\": ";
  json_escaped(os, bench);
  os << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const sweep_row& row = rows[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"x\": ";
    json_number(os, row.x);
    if (!row.label.empty()) {
      os << ", \"label\": ";
      json_escaped(os, row.label);
    }
    os << ", \"values\": {";
    for (std::size_t v = 0; v < row.values.size(); ++v) {
      if (v > 0) os << ", ";
      json_escaped(os, row.values[v].first);
      os << ": ";
      json_number(os, row.values[v].second);
    }
    os << "}, \"traces\": {";
    for (std::size_t t = 0; t < row.traces.size(); ++t) {
      if (t > 0) os << ", ";
      json_escaped(os, row.traces[t].first);
      os << ": [";
      const series& s = row.traces[t].second;
      for (std::size_t p = 0; p < s.size(); ++p) {
        if (p > 0) os << ", ";
        os << '[';
        json_number(os, s[p].first);
        os << ", ";
        json_number(os, s[p].second);
        os << ']';
      }
      os << ']';
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

void maybe_write_json(const util::flag_set& flags, const std::string& bench,
                      const std::vector<sweep_row>& rows) {
  const std::string path = flags.str("json");
  if (path.empty()) return;
  std::ofstream out(path);
  util::require(out.good(), "sweep: cannot open --json file", path);
  write_json(out, bench, rows);
  out.flush();
  util::require(out.good(), "sweep: write to --json file failed", path);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace mcc::exp
