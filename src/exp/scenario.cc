#include "exp/scenario.h"

#include "crypto/prng.h"

namespace mcc::exp {

namespace {
std::int64_t queue_bytes(double bps, double bdp, sim::time_ns rtt) {
  return static_cast<std::int64_t>(bdp * bps * sim::to_seconds(rtt) / 8.0);
}
}  // namespace

dumbbell::dumbbell(const dumbbell_config& cfg)
    : cfg_(cfg), net_(sched_), seed_state_(cfg.seed) {
  left_router_ = net_.add_router("left");
  right_router_ = net_.add_router("right");
  sim::link_config bn;
  bn.bps = cfg_.bottleneck_bps;
  bn.delay = cfg_.bottleneck_delay;
  bn.queue_capacity_bytes =
      queue_bytes(cfg_.bottleneck_bps, cfg_.buffer_bdp, cfg_.base_rtt);
  auto [fwd, rev] = net_.connect(left_router_, right_router_, bn);
  bottleneck_ = fwd;
  (void)rev;
  igmp_left_ = std::make_unique<mcast::igmp_agent>(net_, left_router_);
  igmp_right_ = std::make_unique<mcast::igmp_agent>(net_, right_router_);
  sigma_ = std::make_unique<core::sigma_router_agent>(net_, right_router_,
                                                      *igmp_right_);
}

std::uint64_t dumbbell::next_seed() {
  return crypto::splitmix64(seed_state_);
}

sim::node_id dumbbell::add_left_host(const std::string& name) {
  const sim::node_id h = net_.add_host(name);
  sim::link_config ac;
  ac.bps = cfg_.access_bps;
  ac.delay = cfg_.access_delay;
  ac.queue_capacity_bytes =
      queue_bytes(cfg_.access_bps, cfg_.buffer_bdp, cfg_.base_rtt);
  net_.connect(h, left_router_, ac);
  return h;
}

sim::node_id dumbbell::add_right_host(const std::string& name,
                                      sim::time_ns delay) {
  const sim::node_id h = net_.add_host(name);
  sim::link_config ac;
  ac.bps = cfg_.access_bps;
  ac.delay = delay < 0 ? cfg_.access_delay : delay;
  ac.queue_capacity_bytes =
      queue_bytes(cfg_.access_bps, cfg_.buffer_bdp, cfg_.base_rtt);
  net_.connect(right_router_, h, ac);
  return h;
}

flid::flid_config dumbbell::default_flid_config(flid_mode mode) const {
  flid::flid_config cfg;
  cfg.num_groups = 10;
  cfg.base_rate_bps = 100e3;
  cfg.rate_multiplier = 1.5;
  cfg.packet_bytes = 576;
  cfg.key_bits = 16;
  if (mode == flid_mode::dl) {
    cfg.slot_duration = sim::milliseconds(500);
    cfg.upgrade_prob = 0.3;
  } else {
    // Paper section 5.1: 250 ms slots so SIGMA's two-slot enforcement matches
    // FLID-DL's control granularity; halve the per-slot upgrade probability
    // so upgrade signals arrive at the same real-time frequency.
    cfg.slot_duration = sim::milliseconds(250);
    cfg.upgrade_prob = 0.15;
  }
  return cfg;
}

flid_session& dumbbell::add_flid_session(
    flid_mode mode, const std::vector<receiver_options>& receivers,
    sim::time_ns sender_start) {
  return add_flid_session(mode, default_flid_config(mode), receivers,
                          sender_start);
}

flid_session& dumbbell::add_flid_session(
    flid_mode mode, flid::flid_config cfg,
    const std::vector<receiver_options>& receivers,
    sim::time_ns sender_start) {
  util::require(!finalized_, "dumbbell: cannot add sessions after run");
  const int sid = next_session_id_++;
  cfg.session_id = sid;
  cfg.group_addr_base = 10'000 + sid * 100;

  auto session = std::make_unique<flid_session>();
  session->mode = mode;
  session->config = cfg;

  const sim::node_id sender_host =
      add_left_host("mc_src_" + std::to_string(sid));
  session->sender = std::make_unique<flid::flid_sender>(net_, sender_host, cfg,
                                                        next_seed());
  if (mode == flid_mode::ds) {
    session->ds =
        core::make_flid_ds_sender(net_, sender_host, *session->sender,
                                  next_seed());
  }
  session->sender->start(sender_start);

  int ridx = 0;
  for (const receiver_options& opt : receivers) {
    const sim::node_id rh = add_right_host(
        "mc_rcv_" + std::to_string(sid) + "_" + std::to_string(ridx++),
        opt.access_delay);
    std::unique_ptr<flid::subscription_strategy> strategy;
    if (mode == flid_mode::dl) {
      if (opt.inflate) {
        strategy = std::make_unique<flid::inflating_plain_strategy>(
            opt.inflate_at, opt.inflate_level);
      } else {
        strategy = std::make_unique<flid::honest_plain_strategy>();
      }
    } else {
      if (opt.inflate) {
        strategy = std::make_unique<core::misbehaving_sigma_strategy>(
            opt.inflate_at, opt.attack_keys, next_seed());
      } else {
        strategy = std::make_unique<core::honest_sigma_strategy>();
      }
    }
    auto receiver = std::make_unique<flid::flid_receiver>(
        net_, rh, right_router_, cfg, std::move(strategy));
    receiver->start(opt.start_time);
    session->receivers.push_back(std::move(receiver));
  }

  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

tcp_flow& dumbbell::add_tcp_flow(sim::time_ns start_time) {
  util::require(!finalized_, "dumbbell: cannot add flows after run");
  const int fid = next_flow_id_++;
  const sim::node_id src = add_left_host("tcp_src_" + std::to_string(fid));
  const sim::node_id dst =
      add_right_host("tcp_dst_" + std::to_string(fid), -1);
  auto flow = std::make_unique<tcp_flow>();
  tcp::tcp_config cfg;
  cfg.flow_id = fid;
  cfg.segment_bytes = 576;
  cfg.start_time = start_time;
  flow->sink = std::make_unique<tcp::tcp_sink>(net_, dst, fid, 40);
  flow->sender = std::make_unique<tcp::tcp_sender>(net_, src, dst, cfg);
  tcp_flows_.push_back(std::move(flow));
  return *tcp_flows_.back();
}

cbr_flow& dumbbell::add_cbr(const traffic::cbr_config& cfg_in) {
  util::require(!finalized_, "dumbbell: cannot add flows after run");
  traffic::cbr_config cfg = cfg_in;
  cfg.flow_id = next_flow_id_++;
  const sim::node_id src =
      add_left_host("cbr_src_" + std::to_string(cfg.flow_id));
  const sim::node_id dst =
      add_right_host("cbr_dst_" + std::to_string(cfg.flow_id), -1);
  auto flow = std::make_unique<cbr_flow>();
  flow->sink = std::make_unique<traffic::cbr_sink>(net_, dst, cfg.flow_id);
  flow->source = std::make_unique<traffic::cbr_source>(net_, src, dst, cfg);
  cbr_flows_.push_back(std::move(flow));
  return *cbr_flows_.back();
}

void dumbbell::finalize() {
  if (finalized_) return;
  finalized_ = true;
  net_.finalize_routing();
}

void dumbbell::run_until(sim::time_ns until) {
  finalize();
  sched_.run_until(until);
}

double average_receiver_kbps(flid_session& session, sim::time_ns t0,
                             sim::time_ns t1) {
  if (session.receivers.empty()) return 0.0;
  double sum = 0.0;
  for (auto& r : session.receivers) sum += r->monitor().average_kbps(t0, t1);
  return sum / static_cast<double>(session.receivers.size());
}

}  // namespace mcc::exp
