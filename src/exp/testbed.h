// Experiment testbed: attaches FLID-DL / FLID-DS sessions, TCP Reno flows,
// and on-off CBR cross traffic to any routers of a declaratively built
// topology (sim::topology_builder), owning the per-edge-router agents (IGMP
// and SIGMA), deterministic seeding, and the finalize-then-run lifecycle.
//
// Topology, attachment, and measurement are independent layers:
//
//   exp::testbed t(exp::dumbbell());              // or parking_lot(), ...
//   auto& s = t.add_flid_session(exp::flid_mode::ds, {exp::receiver_options{}});
//   t.add_tcp_flow();
//   t.run_until(sim::seconds(120.0));
//   s.receiver().monitor().average_kbps(...);
//
// Every router carries an IGMP agent and a SIGMA agent, so any router can be
// an edge: receiver_options::at / flow endpoints name the router a host
// attaches to, and default to the testbed's configured sender/receiver sites.
#ifndef MCC_EXP_TESTBED_H
#define MCC_EXP_TESTBED_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "cm/congestion_manager.h"
#include "core/flid_ds.h"
#include "exp/report.h"
#include "obs/metrics.h"
#include "core/sigma_router.h"
#include "flid/flid_receiver.h"
#include "flid/flid_sender.h"
#include "population/population.h"
#include "sim/aqm.h"
#include "sim/network.h"
#include "sim/topology.h"
#include "tcp/tcp.h"
#include "traffic/cbr.h"
#include "util/flags.h"

namespace mcc::exp {

enum class flid_mode { dl, ds };

/// Per-receiver placement and (mis)behaviour.
struct receiver_options {
  sim::time_ns start_time = 0;
  /// Access-link propagation delay; unset = the testbed default. A negative
  /// value is rejected loudly (it used to be a silent "use default" sentinel).
  std::optional<sim::time_ns> access_delay;
  /// Edge router the receiver attaches to; empty = default receiver site.
  std::string at;
  /// The receiver's (mis)behaviour: any adversary strategy, or honest (the
  /// default). See adversary::profile and its factories.
  adversary::profile attack;
  /// DEPRECATED back-compat shim for the pre-adversary API: `inflate` et al
  /// describe exactly adversary::inflate_once(inflate_at, attack_keys,
  /// inflate_level). Setting both `inflate` and a non-honest `attack` is
  /// rejected loudly. New code should use `attack`.
  bool inflate = false;
  sim::time_ns inflate_at = 0;
  int inflate_level = 0;  // <= 0: all groups (DL mode)
  core::misbehaving_sigma_strategy::key_mode attack_keys =
      core::misbehaving_sigma_strategy::key_mode::guess;

  /// The profile this receiver runs: `attack`, unless the legacy shim
  /// fields are set, which translate to an inflate_once profile.
  [[nodiscard]] adversary::profile effective_profile() const;
};

/// Placement of an aggregated receiver population (population::edge_aggregate
/// plus its delegate receiver) at one edge.
struct population_options {
  population::population_config population;
  sim::time_ns start_time = 0;
  /// Access-link propagation delay of the delegate host; unset = default.
  std::optional<sim::time_ns> access_delay;
  /// Edge router the population sits behind; empty = default receiver site.
  std::string at;
};

/// Per-session placement.
struct session_options {
  sim::time_ns sender_start = 0;
  /// Router the sender host attaches to; empty = default sender site.
  std::string sender_at;
};

/// Unicast flow placement (TCP and CBR).
struct flow_options {
  sim::time_ns start_time = 0;       // TCP only; CBR carries its own times
  std::string src_at;                // empty = default sender site
  std::string dst_at;                // empty = default receiver site
};

/// Everything a testbed needs to know: the topology description plus the
/// attachment defaults shared by all hosts.
struct testbed_config {
  sim::topology_builder topology;
  /// Default attachment routers; empty = first / last declared router.
  std::string sender_site;
  std::string receiver_site;
  double access_bps = 10e6;
  sim::time_ns access_delay = sim::milliseconds(10);
  /// Queue capacity of access links in bandwidth-delay products
  /// (link rate x base_rtt).
  double buffer_bdp = 2.0;
  sim::time_ns base_rtt = sim::milliseconds(80);
  /// Queue discipline of access links (drop-tail by default — backbone AQM
  /// is configured per scenario/link). An unset aqm.seed inherits the
  /// testbed seed.
  sim::aqm_config access_aqm;
  /// Interface keying, the collusion countermeasure of paper section 4.2:
  /// every SIGMA edge agent validates per-interface-perturbed keys and
  /// every SIGMA receiver strategy (honest and attacking) submits them.
  /// Closes the cross-edge key-sharing channel: colluders' pooled keys are
  /// useless at any other interface. No effect on plain (FLID-DL) sessions.
  bool interface_keying = false;
  /// Router probation memory, the countermeasure to adaptive_churn's
  /// grace-riding: every SIGMA edge agent remembers a wiped interface's
  /// outstanding probation debt for this many slots, refuses still-blocked
  /// rejoins, and escalates the cutoff on repeated keyless rejoins.
  /// 0 (default) keeps the legacy wipe-on-unsubscribe behaviour.
  int probation_memory_slots = 0;
  /// Event-queue policy of the testbed's scheduler (heap or timer wheel);
  /// both fire the exact same event order, so results are policy-invariant.
  sim::scheduler_config sched;
  /// Shared congestion manager across co-located sessions (src/cm): when on,
  /// the testbed owns one cm::congestion_manager, registers every FLID
  /// receiver's session under its aggregated edge path, and receivers cap
  /// their join decisions on the shared state. Off (the default) leaves the
  /// legacy code path untouched — byte-identical behaviour, pinned by
  /// cm_test. With one session the cap never binds, so single-session
  /// worlds are byte-identical either way.
  bool cm = false;
  /// Parameters of the shared manager when `cm` is on.
  cm::cm_config cm_params;
  std::uint64_t seed = 1;
};

/// One aggregated population attached to a session: the aggregate (member
/// state) and the delegate receiver that drives its consolidated subscription.
/// The aggregate is declared before the delegate so the strategy's reference
/// outlives the receiver that owns the strategy.
struct flid_population {
  std::unique_ptr<population::edge_aggregate> aggregate;
  std::unique_ptr<flid::flid_receiver> delegate;
};

/// One multicast session: sender machinery plus its receivers.
struct flid_session {
  flid_mode mode = flid_mode::dl;
  flid::flid_config config;
  sim::node_id sender_host = sim::invalid_node;
  std::unique_ptr<flid::flid_sender> sender;
  core::flid_ds_sender ds;  // populated in DS mode
  std::vector<std::unique_ptr<flid::flid_receiver>> receivers;
  /// Aggregated receiver populations (testbed::add_population).
  std::vector<std::unique_ptr<flid_population>> populations;

  [[nodiscard]] flid::flid_receiver& receiver(int i = 0) {
    return *receivers[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] flid_population& population(int i = 0) {
    return *populations[static_cast<std::size_t>(i)];
  }
};

struct tcp_flow {
  std::unique_ptr<tcp::tcp_sender> sender;
  std::unique_ptr<tcp::tcp_sink> sink;
};

struct cbr_flow {
  std::unique_ptr<traffic::cbr_source> source;
  std::unique_ptr<traffic::cbr_sink> sink;
};

class testbed {
 public:
  explicit testbed(testbed_config cfg);

  [[nodiscard]] sim::network& net() { return net_; }
  [[nodiscard]] sim::scheduler& sched() { return sched_; }
  [[nodiscard]] const sim::topology& topo() const { return topo_; }
  [[nodiscard]] const testbed_config& config() const { return cfg_; }

  /// Node id of a named topology router (or host).
  [[nodiscard]] sim::node_id router(const std::string& name) const {
    return topo_.node(name);
  }
  /// i-th backbone link (dumbbell: the bottleneck; parking lot: bottleneck i).
  [[nodiscard]] sim::link* bottleneck(int i = 0) const {
    return topo_.backbone(i);
  }

  /// Edge agents of a named router; empty name = the default receiver site.
  /// Created on demand: a router gets its agents when a host first attaches
  /// there (or on first access here), so interior routers stay agent-free.
  [[nodiscard]] mcast::igmp_agent& igmp(const std::string& name = "");
  [[nodiscard]] core::sigma_router_agent& sigma(const std::string& name = "");

  /// Key pool of a collusion coalition, created on first use. Receivers
  /// whose profile is collusion with this coalition id share it; tests and
  /// benches read its deposit/hit counters here.
  [[nodiscard]] adversary::collusion_coordinator& coordinator(int coalition);

  /// Paper section 5.1 defaults for a session in the given mode: 10 groups,
  /// 100 Kbps minimal group, cumulative rate factor 1.5, 576-byte packets,
  /// 16-bit keys; 500 ms slots (upgrade prob 0.3) in DL mode, 250 ms slots
  /// (upgrade prob 0.15, so upgrade signals arrive at the same real-time
  /// frequency) in DS mode.
  [[nodiscard]] flid::flid_config default_flid_config(flid_mode mode) const;

  /// Attaches a fresh host to the named router (required non-empty) over an
  /// access link with the testbed's default rate/delay/queue (overridable per
  /// host), creating the router's edge agents if this is its first host.
  sim::node_id attach_host(const std::string& name,
                           const std::string& router_name);
  sim::node_id attach_host(const std::string& name,
                           const std::string& router_name, double bps,
                           sim::time_ns delay);

  /// Adds a multicast session with one receiver per entry of `receivers`.
  flid_session& add_flid_session(flid_mode mode,
                                 const std::vector<receiver_options>& receivers,
                                 const session_options& opts = {});
  /// Same, with an explicit config (session id / group range reassigned).
  flid_session& add_flid_session(flid_mode mode, flid::flid_config cfg,
                                 const std::vector<receiver_options>& receivers,
                                 const session_options& opts = {});

  /// N sessions stamped from one template: session i is an independent
  /// add_flid_session(mode, receivers, opts) call, so sessions draw their
  /// seeds in array order and each gets its own sender, receivers, and
  /// session id. Returns the sessions in index order (pointers stay valid
  /// for the testbed's lifetime). The multi-session facility behind
  /// fig_session_farm and the cross-session roll-up tests.
  std::vector<flid_session*> add_session_array(
      int n, flid_mode mode, const std::vector<receiver_options>& receivers,
      const session_options& opts = {});

  /// The shared congestion manager; nullptr when testbed_config::cm is off.
  [[nodiscard]] cm::congestion_manager* shared_cm() { return cm_.get(); }
  /// The aggregated path id receivers behind `site` register under.
  [[nodiscard]] cm::path_id cm_path(const std::string& site) const {
    return cm::path_id{topo_.node(site), cm::path_direction::downstream, 0};
  }

  /// Attaches an aggregated receiver population to `session`: one delegate
  /// host at the chosen edge whose strategy speaks the session's protocol at
  /// the population's consolidated demand (population::make_aggregate_strategy).
  /// The aggregate's PRNG seed is drawn from the testbed seed chain here —
  /// scenarios without populations never draw it, so their streams replay
  /// byte-identically. Individually simulated receivers (honest or attacking)
  /// added via add_flid_session coexist with populations at the same edge.
  flid_population& add_population(flid_session& session,
                                  const population_options& opts);

  tcp_flow& add_tcp_flow(const flow_options& opts = {});
  tcp_flow& add_tcp_flow(sim::time_ns start_time);
  cbr_flow& add_cbr(const traffic::cbr_config& cfg,
                    const flow_options& opts = {});

  /// Finalizes routing on first call and runs the simulation to `until`.
  void run_until(sim::time_ns until);

  [[nodiscard]] int next_session_id() const { return next_session_id_; }

  /// Engine-metrics registry of this testbed's world. Every component the
  /// testbed builds registers pull-based views here (scheduler throughput and
  /// occupancy at construction; SIGMA/IGMP control-plane counters per edge;
  /// population state bytes; attacker cost per attacking receiver; per-link
  /// traffic stats at finalize). Benches snapshot it after run_until into
  /// sweep_row::metrics; the snapshot order is registration order, so it is
  /// deterministic and jobs-invariant. See docs/observability.md.
  [[nodiscard]] obs::registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::registry& metrics() const { return metrics_; }

 private:
  struct edge_agents {
    std::unique_ptr<mcast::igmp_agent> igmp;
    std::unique_ptr<core::sigma_router_agent> sigma;
  };

  [[nodiscard]] std::uint64_t next_seed();
  /// The edge-agent pair of a router, created on first use (a router becomes
  /// an edge when a host attaches or its agents are requested pre-run).
  edge_agents& edge_for(const std::string& site);
  /// Accessor path: before the run resolves like edge_for; after the run
  /// only existing edges resolve (no zero-counter agents for assertions).
  edge_agents& existing_edge_or_new(const std::string& name);
  /// Requires `site` to name a router of the topology.
  void validate_attach_site(const std::string& site) const;
  [[nodiscard]] const std::string& site_or(const std::string& site,
                                           const std::string& fallback) const {
    return site.empty() ? fallback : site;
  }
  void finalize();

  /// Registers the per-component views of a freshly created edge / session /
  /// population on metrics_ (implementation helpers of the public metrics()
  /// contract above).
  void register_scheduler_metrics();
  void register_edge_metrics(const std::string& site, edge_agents& agents);
  void register_link_metrics();
  /// cm.* views — registered only when the manager exists, so legacy
  /// (cm-off) metric snapshots keep their historical byte layout.
  void register_cm_metrics();

  testbed_config cfg_;
  sim::scheduler sched_;
  sim::network net_;
  sim::topology topo_;
  std::map<std::string, edge_agents> edges_;
  /// Declared before sessions_ so pools outlive the strategies using them.
  std::map<int, std::unique_ptr<adversary::collusion_coordinator>>
      coordinators_;
  /// Declared before sessions_ so the shared manager outlives the receivers
  /// reporting into it; null unless cfg_.cm.
  std::unique_ptr<cm::congestion_manager> cm_;
  std::vector<std::unique_ptr<flid_session>> sessions_;
  std::vector<std::unique_ptr<tcp_flow>> tcp_flows_;
  std::vector<std::unique_ptr<cbr_flow>> cbr_flows_;
  int next_session_id_ = 1;
  int next_flow_id_ = 1;
  std::uint64_t seed_state_;
  bool finalized_ = false;
  /// Declared last (destroyed first): its views capture raw pointers into the
  /// members above, so the registry must never outlive them.
  obs::registry metrics_;
};

// ---------------------------------------------------------------------------
// Scenario factories: named topologies with paper-style attachment defaults
// ---------------------------------------------------------------------------

/// The single-bottleneck topology of paper section 5.1. Defaults follow the
/// paper: 1 Mbps / 20 ms bottleneck, 10 Mbps / 10 ms access links, queues of
/// two bandwidth-delay products at an 80 ms base RTT.
struct dumbbell_config {
  double bottleneck_bps = 1e6;
  sim::time_ns bottleneck_delay = sim::milliseconds(20);
  double access_bps = 10e6;
  sim::time_ns access_delay = sim::milliseconds(10);
  double buffer_bdp = 2.0;
  sim::time_ns base_rtt = sim::milliseconds(80);
  std::uint64_t seed = 1;
  /// Bottleneck queue discipline. An unset aqm.seed inherits the scenario
  /// seed, so RED coin-flips follow the run's seed sweep.
  sim::aqm_config aqm;
  /// Access-link queue discipline (default drop-tail).
  sim::aqm_config access_aqm;
  /// Interface keying (testbed_config::interface_keying).
  bool interface_keying = false;
  /// Router probation memory (testbed_config::probation_memory_slots).
  int probation_memory_slots = 0;
  /// Event-queue policy (testbed_config::sched).
  sim::scheduler_config sched;
  /// Shared congestion manager (testbed_config::cm / cm_params).
  bool cm = false;
  cm::cm_config cm_params;
};

/// Dumbbell testbed: senders attach at "l", receivers at "r".
[[nodiscard]] testbed_config dumbbell(const dumbbell_config& cfg = {});

/// k bottlenecks in series (routers "r0".."r<k>"); senders default to "r0",
/// receivers to the far end "r<k>", so a default session crosses every
/// bottleneck while cross traffic can load any single one.
struct parking_lot_config {
  int bottlenecks = 2;
  double bottleneck_bps = 1e6;
  sim::time_ns bottleneck_delay = sim::milliseconds(20);
  double access_bps = 10e6;
  sim::time_ns access_delay = sim::milliseconds(10);
  double buffer_bdp = 2.0;
  sim::time_ns base_rtt = sim::milliseconds(80);
  std::uint64_t seed = 1;
  sim::aqm_config aqm;         // backbone queue discipline
  sim::aqm_config access_aqm;  // access-link queue discipline (drop-tail)
  bool interface_keying = false;  // testbed_config::interface_keying
  int probation_memory_slots = 0;  // testbed_config::probation_memory_slots
  sim::scheduler_config sched;    // testbed_config::sched
  bool cm = false;                // testbed_config::cm
  cm::cm_config cm_params;        // testbed_config::cm_params
};

[[nodiscard]] testbed_config parking_lot(const parking_lot_config& cfg = {});

/// Hub-and-spoke: senders default to the hub, receivers to spoke "s1";
/// receivers placed on distinct spokes contend only on their own spoke link.
struct star_config {
  int spokes = 4;
  double spoke_bps = 1e6;
  sim::time_ns spoke_delay = sim::milliseconds(20);
  double access_bps = 10e6;
  sim::time_ns access_delay = sim::milliseconds(10);
  double buffer_bdp = 2.0;
  sim::time_ns base_rtt = sim::milliseconds(80);
  std::uint64_t seed = 1;
  sim::aqm_config aqm;         // backbone queue discipline
  sim::aqm_config access_aqm;  // access-link queue discipline (drop-tail)
  bool interface_keying = false;  // testbed_config::interface_keying
  int probation_memory_slots = 0;  // testbed_config::probation_memory_slots
  sim::scheduler_config sched;    // testbed_config::sched
  bool cm = false;                // testbed_config::cm
  cm::cm_config cm_params;        // testbed_config::cm_params
};

[[nodiscard]] testbed_config star(const star_config& cfg = {});

/// Balanced distribution tree: senders default to "root", receivers to the
/// first leaf "t<depth>_0"; point-to-multipoint sessions fan out down the
/// tree and each receiver sees only its own root-to-leaf path.
struct tree_config {
  int depth = 2;
  int fanout = 2;
  double edge_bps = 1e6;
  sim::time_ns edge_delay = sim::milliseconds(10);
  double access_bps = 10e6;
  sim::time_ns access_delay = sim::milliseconds(10);
  double buffer_bdp = 2.0;
  sim::time_ns base_rtt = sim::milliseconds(80);
  std::uint64_t seed = 1;
  sim::aqm_config aqm;         // backbone queue discipline
  sim::aqm_config access_aqm;  // access-link queue discipline (drop-tail)
  bool interface_keying = false;  // testbed_config::interface_keying
  int probation_memory_slots = 0;  // testbed_config::probation_memory_slots
  sim::scheduler_config sched;    // testbed_config::sched
  bool cm = false;                // testbed_config::cm
  cm::cm_config cm_params;        // testbed_config::cm_params
};

[[nodiscard]] testbed_config balanced_tree(const tree_config& cfg = {});

/// Average of receiver throughputs over [t0, t1) in Kbps.
[[nodiscard]] double average_receiver_kbps(flid_session& session,
                                           sim::time_ns t0, sim::time_ns t1);

/// Cross-session roll-up over [t0, t1): one column per session named
/// "session<id>", rate = summed goodput (Kbps) of its receivers and
/// population delegates, raw series = the point-wise sum of their kbps
/// series. Per-session smoothing state is independent (exp::ewma_smooth),
/// so the roll-up is invariant to session registration order.
[[nodiscard]] session_rollup session_rollup_for(
    const std::vector<flid_session*>& sessions, sim::time_ns t0,
    sim::time_ns t1);

// ---------------------------------------------------------------------------
// AQM flag glue: every bench that sweeps queue disciplines registers the
// same flags and decodes them the same way.
// ---------------------------------------------------------------------------

/// Registers the shared AQM flags on a bench's flag set:
///   --qdisc LIST       comma-separated disciplines (droptail|ecn|red|codel),
///                      or "all"; benches sweep one grid axis per entry
///   --ecn-threshold F  ecn: mark above this occupancy fraction
///   --red-min F        red: min threshold as a fraction of queue capacity
///   --red-max F        red: max threshold as a fraction of queue capacity
///   --red-maxp P       red: drop probability at the max threshold
///   --red-weight W     red: EWMA weight
///   --red-gentle B     red: ramp to certain drop over [max, 2*max]
///   --codel-target MS  codel: target sojourn time, milliseconds
///   --codel-interval MS codel: control interval, milliseconds
void add_aqm_flags(util::flag_set& flags);

/// Decodes the parameter flags into an aqm_config. The discipline is set to
/// the FIRST entry of --qdisc; benches sweeping several override it per grid
/// point. An unknown discipline name prints a friendly message and exits(1),
/// like any other bad flag value (bench-main glue, not library API).
[[nodiscard]] sim::aqm_config aqm_config_from_flags(
    const util::flag_set& flags);

/// The full --qdisc list in declaration order ("all" expands to every
/// discipline). Same bad-name behaviour as aqm_config_from_flags.
[[nodiscard]] std::vector<sim::qdisc> qdisc_list_from_flags(
    const util::flag_set& flags);

/// Registers the shared interface-keying flag on a bench's flag set:
///   --interface-keying V   off | on | both ("both" sweeps the countermeasure
///                          as a grid axis: one cell without, one with)
/// `def` is the bench's default (the matrix defaults to "both" so the
/// countermeasure study runs out of the box; scenario benches default off).
void add_interface_keying_flag(util::flag_set& flags,
                               const char* def = "off");

/// Decodes --interface-keying into the axis values to sweep, in off-first
/// order ({false}, {true}, or {false, true}). An unknown value prints a
/// friendly message and exits(1) — bench-main glue, like the AQM flags.
[[nodiscard]] std::vector<bool> interface_keying_axis_from_flags(
    const util::flag_set& flags);

/// Registers the shared probation-memory flags on a bench's flag set:
///   --probation-memory V       off | on | both ("both" sweeps the
///                              countermeasure as a grid axis)
///   --probation-memory-slots N window length in slots when on (default 8)
/// `def` is the bench's default (the matrix defaults to "both" so the
/// churn-countermeasure study runs out of the box; scenario benches default
/// off).
void add_probation_memory_flag(util::flag_set& flags, const char* def = "off");

/// Decodes the probation-memory flags into the axis of
/// testbed_config::probation_memory_slots values to sweep, in off-first order
/// ({0}, {N}, or {0, N}). Bad values print a friendly message and exit(1) —
/// bench-main glue, like the AQM flags.
[[nodiscard]] std::vector<int> probation_memory_axis_from_flags(
    const util::flag_set& flags);

/// Registers the shared congestion-manager flags on a bench's flag set:
///   --cm V           off | on | both ("both" sweeps the shared manager as a
///                    grid axis: one cell without, one with)
///   --cm-entries N   LRU state-cache capacity
///   --cm-aging N     staleness window, slots
///   --cm-threshold F congestion EWMA level the cap binds above
///   --cm-headroom F  fair-rate multiplier for the level cap
/// `def` is the bench's default ("off" keeps historical single-manager
/// benches byte-identical; fig_session_farm defaults to "both").
void add_cm_flags(util::flag_set& flags, const char* def = "off");

/// Decodes --cm into the axis values to sweep, in off-first order ({false},
/// {true}, or {false, true}). Bad values print a friendly message and
/// exit(1) — bench-main glue, like the AQM flags.
[[nodiscard]] std::vector<bool> cm_axis_from_flags(const util::flag_set& flags);

/// Decodes the --cm-* parameter flags into a cm_config, with the friendly
/// bad-flag UX on out-of-range values.
[[nodiscard]] cm::cm_config cm_config_from_flags(const util::flag_set& flags);

/// Registers the shared scheduler-policy flag on a bench's flag set:
///   --sched P   event-queue policy: heap | wheel. Both policies fire the
///               exact same event order, so results and golden digests are
///               policy-invariant; wheel is O(1) per op at large pending
///               counts (see docs/performance.md).
void add_sched_flag(util::flag_set& flags);

/// Decodes --sched into a scheduler_config (parse-time enum validation means
/// the value is already known good).
[[nodiscard]] sim::scheduler_config sched_config_from_flags(
    const util::flag_set& flags);

/// Registers the shared population flags on a bench's flag set:
///   --population LIST  aggregated population size(s), comma-separated
///                      member counts (benches sweep one grid axis per entry)
///   --demand SPEC      max | uniform | zipf:S (layer-demand distribution)
///   --churn SPEC       none, or comma list of arrive:R, leave:R,
///                      flash:T:N, flash-leave:T (R per second, T seconds,
///                      N members)
void add_population_flags(util::flag_set& flags,
                          const char* default_sizes = "1000000");

/// Decodes --demand / --churn into a population_config (members left 0; the
/// bench fills it per grid point from the --population axis). Unknown specs
/// print a friendly message and exit(1) — bench-main glue, like the AQM
/// flags.
[[nodiscard]] population::population_config population_config_from_flags(
    const util::flag_set& flags);

/// The --population axis: one population size per comma-separated entry.
[[nodiscard]] std::vector<std::int64_t> population_axis_from_flags(
    const util::flag_set& flags);

}  // namespace mcc::exp

#endif  // MCC_EXP_TESTBED_H
