#include "exp/testbed.h"

#include <cstdio>
#include <cstdlib>

#include "adversary/containment.h"
#include "crypto/prng.h"

namespace mcc::exp {

namespace {
std::int64_t queue_bytes(double bps, double bdp, sim::time_ns rtt) {
  return static_cast<std::int64_t>(bdp * bps * sim::to_seconds(rtt) / 8.0);
}
}  // namespace

adversary::profile receiver_options::effective_profile() const {
  if (attack.attacks()) {
    util::require(!inflate,
                  "receiver_options: set either .attack or the legacy "
                  "inflate fields, not both");
    return attack;
  }
  if (!inflate) return attack;
  return adversary::inflate_once(inflate_at, attack_keys, inflate_level);
}

testbed::testbed(testbed_config cfg)
    : cfg_(std::move(cfg)),
      sched_(cfg_.sched),
      net_(sched_),
      seed_state_(cfg_.seed) {
  util::require(!cfg_.topology.empty(), "testbed: empty topology");
  topo_ = cfg_.topology.build(net_);
  util::require(!topo_.routers().empty(), "testbed: topology has no routers");
  if (cfg_.sender_site.empty()) cfg_.sender_site = topo_.routers().front();
  if (cfg_.receiver_site.empty()) cfg_.receiver_site = topo_.routers().back();
  register_scheduler_metrics();
  if (cfg_.cm) {
    cm_ = std::make_unique<cm::congestion_manager>(cfg_.cm_params);
    register_cm_metrics();
  }
}

std::uint64_t testbed::next_seed() { return crypto::splitmix64(seed_state_); }

testbed::edge_agents& testbed::edge_for(const std::string& site) {
  auto it = edges_.find(site);
  if (it != edges_.end()) return it->second;
  // Any router becomes an edge the first time a host attaches there (or the
  // first time its agents are asked for): it gets an IGMP agent (group
  // membership) and a SIGMA agent (key-based access control). Interior
  // routers without hosts never pay for control-plane decoding.
  const sim::node_id id = topo_.node(site);
  util::require(net_.get(id)->is_router(), "testbed: edge site is not a router",
                site);
  edge_agents agents;
  agents.igmp = std::make_unique<mcast::igmp_agent>(net_, id);
  agents.sigma =
      std::make_unique<core::sigma_router_agent>(net_, id, *agents.igmp);
  // The interface-keying countermeasure is a scenario-wide contract: every
  // edge validates perturbed keys iff every receiver strategy submits them
  // (add_flid_session sets the matching strategy side).
  agents.sigma->set_interface_keying(cfg_.interface_keying);
  agents.sigma->set_probation_memory(cfg_.probation_memory_slots);
  edge_agents& placed = edges_.emplace(site, std::move(agents)).first->second;
  register_edge_metrics(site, placed);
  return placed;
}

testbed::edge_agents& testbed::existing_edge_or_new(const std::string& name) {
  const std::string& site = site_or(name, cfg_.receiver_site);
  if (finalized_) {
    // After the run, only routers that actually were edges have agents;
    // creating a fresh zero-counter agent here would make post-run stats
    // assertions vacuously pass.
    auto it = edges_.find(site);
    util::require(it != edges_.end(),
                  "testbed: router was never an edge (no host attached)", site);
    return it->second;
  }
  return edge_for(site);
}

mcast::igmp_agent& testbed::igmp(const std::string& name) {
  return *existing_edge_or_new(name).igmp;
}

core::sigma_router_agent& testbed::sigma(const std::string& name) {
  return *existing_edge_or_new(name).sigma;
}

adversary::collusion_coordinator& testbed::coordinator(int coalition) {
  auto it = coordinators_.find(coalition);
  if (it == coordinators_.end()) {
    it = coordinators_
             .emplace(coalition,
                      std::make_unique<adversary::collusion_coordinator>())
             .first;
  }
  return *it->second;
}

sim::node_id testbed::attach_host(const std::string& name,
                                  const std::string& router_name) {
  return attach_host(name, router_name, cfg_.access_bps, cfg_.access_delay);
}

sim::node_id testbed::attach_host(const std::string& name,
                                  const std::string& router_name, double bps,
                                  sim::time_ns delay) {
  util::require(!finalized_, "testbed: cannot attach hosts after run");
  util::require(!router_name.empty(), "testbed::attach_host: empty router name",
                name);
  util::require(delay >= 0, "testbed::attach_host: negative access delay",
                delay);
  const sim::node_id r = topo_.node(router_name);
  util::require(net_.get(r)->is_router(),
                "testbed::attach_host: attachment point is not a router",
                router_name);
  // Attaching makes the router an edge: ensure its IGMP/SIGMA agents exist
  // before any traffic can reach it.
  (void)edge_for(router_name);
  const sim::node_id h = net_.add_host(name);
  sim::link_config ac;
  ac.bps = bps;
  ac.delay = delay;
  ac.queue_capacity_bytes = queue_bytes(bps, cfg_.buffer_bdp, cfg_.base_rtt);
  // Edge-queue experiments select the access discipline per testbed; the
  // default stays drop-tail. An unset AQM seed inherits the testbed seed so
  // probabilistic policies follow the run's seed sweep.
  ac.aqm = cfg_.access_aqm;
  if (ac.aqm.seed == 0) ac.aqm.seed = cfg_.seed;
  net_.connect(h, r, ac);
  return h;
}

flid::flid_config testbed::default_flid_config(flid_mode mode) const {
  flid::flid_config cfg;
  cfg.num_groups = 10;
  cfg.base_rate_bps = 100e3;
  cfg.rate_multiplier = 1.5;
  cfg.packet_bytes = 576;
  cfg.key_bits = 16;
  if (mode == flid_mode::dl) {
    cfg.slot_duration = sim::milliseconds(500);
    cfg.upgrade_prob = 0.3;
  } else {
    // Paper section 5.1: 250 ms slots so SIGMA's two-slot enforcement matches
    // FLID-DL's control granularity; halve the per-slot upgrade probability
    // so upgrade signals arrive at the same real-time frequency.
    cfg.slot_duration = sim::milliseconds(250);
    cfg.upgrade_prob = 0.15;
  }
  return cfg;
}

flid_session& testbed::add_flid_session(
    flid_mode mode, const std::vector<receiver_options>& receivers,
    const session_options& opts) {
  return add_flid_session(mode, default_flid_config(mode), receivers, opts);
}

flid_session& testbed::add_flid_session(
    flid_mode mode, flid::flid_config cfg,
    const std::vector<receiver_options>& receivers,
    const session_options& opts) {
  util::require(!finalized_, "testbed: cannot add sessions after run");
  // Validate every placement up front: once the sender is attached and
  // started it has scheduled events, so a mid-loop failure would leave a
  // half-built session behind for callers that catch the error.
  const std::string& sender_site = site_or(opts.sender_at, cfg_.sender_site);
  validate_attach_site(sender_site);
  for (const receiver_options& opt : receivers) {
    const std::string& site = site_or(opt.at, cfg_.receiver_site);
    validate_attach_site(site);
    util::require(opt.access_delay.value_or(0) >= 0,
                  "testbed: negative receiver access delay", site);
  }
  const int sid = next_session_id_++;
  cfg.session_id = sid;
  cfg.group_addr_base = 10'000 + sid * 100;

  auto session = std::make_unique<flid_session>();
  session->mode = mode;
  session->config = cfg;

  session->sender_host =
      attach_host("mc_src_" + std::to_string(sid), sender_site);
  session->sender = std::make_unique<flid::flid_sender>(
      net_, session->sender_host, cfg, next_seed());
  if (mode == flid_mode::ds) {
    session->ds = core::make_flid_ds_sender(net_, session->sender_host,
                                            *session->sender, next_seed());
  }
  session->sender->start(opts.sender_start);

  // Strategies are compiled from adversary profiles. The build context's
  // seed source is the testbed seed chain: the factory draws only for
  // strategies that consume randomness, preserving historical streams for
  // ported scenarios.
  adversary::build_context actx;
  actx.next_seed = [this] { return next_seed(); };
  actx.coordinator = [this](int coalition) -> adversary::collusion_coordinator& {
    return coordinator(coalition);
  };
  actx.interface_keying = cfg_.interface_keying;
  const adversary::protocol proto = mode == flid_mode::dl
                                        ? adversary::protocol::plain
                                        : adversary::protocol::sigma;
  int ridx = 0;
  for (const receiver_options& opt : receivers) {
    const std::string& site = site_or(opt.at, cfg_.receiver_site);
    const sim::node_id rh = attach_host(
        "mc_rcv_" + std::to_string(sid) + "_" + std::to_string(ridx++), site,
        cfg_.access_bps, opt.access_delay.value_or(cfg_.access_delay));
    const adversary::profile prof = opt.effective_profile();
    auto receiver = std::make_unique<flid::flid_receiver>(
        net_, rh, topo_.node(site), cfg,
        adversary::make_strategy(proto, prof, actx));
    if (cm_ != nullptr) {
      // Register the session under the receiver's aggregated edge path and
      // wire the data plane before start() latches the receiver's state.
      const cm::path_id path = cm_path(site);
      cm_->register_session(path, sid);
      receiver->set_congestion_path(cm_.get(), path);
    }
    receiver->start(opt.start_time);
    if (prof.attacks()) {
      // Attacker-spend views (adversary::measure_cost reads the receiver's
      // live counters at snapshot time). Honest receivers register nothing:
      // their cost is all zeros and would only bloat the snapshots.
      const flid::flid_receiver* rp = receiver.get();
      const obs::label_list labels{{"session", std::to_string(sid)},
                                   {"receiver", net_.get(rh)->name()}};
      metrics_.add_view("attacker.ctrl_msgs", labels, [rp] {
        return static_cast<double>(adversary::measure_cost(*rp).ctrl_msgs);
      });
      metrics_.add_view("attacker.ctrl_bytes", labels, [rp] {
        return static_cast<double>(adversary::measure_cost(*rp).ctrl_bytes);
      });
      metrics_.add_view("attacker.useless_keys", labels, [rp] {
        return static_cast<double>(adversary::measure_cost(*rp).useless_keys);
      });
      metrics_.add_view("attacker.cutoff_slots", labels, [rp] {
        return static_cast<double>(adversary::measure_cost(*rp).cutoff_slots);
      });
    }
    session->receivers.push_back(std::move(receiver));
  }

  sessions_.push_back(std::move(session));
  return *sessions_.back();
}

std::vector<flid_session*> testbed::add_session_array(
    int n, flid_mode mode, const std::vector<receiver_options>& receivers,
    const session_options& opts) {
  util::require(n >= 1, "testbed::add_session_array: need n >= 1", n);
  std::vector<flid_session*> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(&add_flid_session(mode, receivers, opts));
  }
  return out;
}

flid_population& testbed::add_population(flid_session& session,
                                         const population_options& opts) {
  util::require(!finalized_, "testbed: cannot add populations after run");
  const std::string& site = site_or(opts.at, cfg_.receiver_site);
  validate_attach_site(site);
  util::require(opts.access_delay.value_or(0) >= 0,
                "testbed: negative population access delay", site);

  const int sid = session.config.session_id;
  const int pidx = static_cast<int>(session.populations.size());
  auto pop = std::make_unique<flid_population>();

  population::population_config pcfg = opts.population;
  // Drawn here, not at session creation: scenarios without populations never
  // consume this stream draw, so historical runs replay byte-identically.
  pcfg.seed = next_seed();
  pop->aggregate = std::make_unique<population::edge_aggregate>(
      sched_, session.config, pcfg);

  const sim::node_id host = attach_host(
      "mc_pop_" + std::to_string(sid) + "_" + std::to_string(pidx), site,
      cfg_.access_bps, opts.access_delay.value_or(cfg_.access_delay));
  const population::protocol proto = session.mode == flid_mode::dl
                                         ? population::protocol::plain
                                         : population::protocol::sigma;
  pop->delegate = std::make_unique<flid::flid_receiver>(
      net_, host, topo_.node(site), session.config,
      population::make_aggregate_strategy(proto, *pop->aggregate,
                                          cfg_.interface_keying));
  if (cm_ != nullptr) {
    // The delegate speaks for the whole population, so the population's
    // consolidated subscription is capped like any individual receiver's.
    const cm::path_id path = cm_path(site);
    cm_->register_session(path, sid);
    pop->delegate->set_congestion_path(cm_.get(), path);
  }
  pop->delegate->start(opts.start_time);
  const population::edge_aggregate* agg = pop->aggregate.get();
  const obs::label_list labels{{"session", std::to_string(sid)},
                               {"edge", site},
                               {"index", std::to_string(pidx)}};
  metrics_.add_view("population.state_bytes", labels, [agg] {
    return static_cast<double>(agg->state_bytes());
  });
  metrics_.add_view("population.peak_members", labels, [agg] {
    return static_cast<double>(agg->stats().peak_members);
  });
  metrics_.add_view("population.arrivals", labels, [agg] {
    return static_cast<double>(agg->stats().arrivals);
  });
  metrics_.add_view("population.departures", labels, [agg] {
    return static_cast<double>(agg->stats().departures);
  });
  session.populations.push_back(std::move(pop));
  return *session.populations.back();
}

tcp_flow& testbed::add_tcp_flow(sim::time_ns start_time) {
  flow_options opts;
  opts.start_time = start_time;
  return add_tcp_flow(opts);
}

void testbed::validate_attach_site(const std::string& site) const {
  util::require(net_.get(topo_.node(site))->is_router(),
                "testbed: attachment site is not a router", site);
}

tcp_flow& testbed::add_tcp_flow(const flow_options& opts) {
  util::require(!finalized_, "testbed: cannot add flows after run");
  validate_attach_site(site_or(opts.src_at, cfg_.sender_site));
  validate_attach_site(site_or(opts.dst_at, cfg_.receiver_site));
  const int fid = next_flow_id_++;
  const sim::node_id src = attach_host("tcp_src_" + std::to_string(fid),
                                       site_or(opts.src_at, cfg_.sender_site));
  const sim::node_id dst =
      attach_host("tcp_dst_" + std::to_string(fid),
                  site_or(opts.dst_at, cfg_.receiver_site));
  auto flow = std::make_unique<tcp_flow>();
  tcp::tcp_config cfg;
  cfg.flow_id = fid;
  cfg.segment_bytes = 576;
  cfg.start_time = opts.start_time;
  flow->sink = std::make_unique<tcp::tcp_sink>(net_, dst, fid, 40);
  flow->sender = std::make_unique<tcp::tcp_sender>(net_, src, dst, cfg);
  tcp_flows_.push_back(std::move(flow));
  return *tcp_flows_.back();
}

cbr_flow& testbed::add_cbr(const traffic::cbr_config& cfg_in,
                           const flow_options& opts) {
  util::require(!finalized_, "testbed: cannot add flows after run");
  validate_attach_site(site_or(opts.src_at, cfg_.sender_site));
  validate_attach_site(site_or(opts.dst_at, cfg_.receiver_site));
  traffic::cbr_config cfg = cfg_in;
  cfg.flow_id = next_flow_id_++;
  const sim::node_id src =
      attach_host("cbr_src_" + std::to_string(cfg.flow_id),
                  site_or(opts.src_at, cfg_.sender_site));
  const sim::node_id dst =
      attach_host("cbr_dst_" + std::to_string(cfg.flow_id),
                  site_or(opts.dst_at, cfg_.receiver_site));
  auto flow = std::make_unique<cbr_flow>();
  flow->sink = std::make_unique<traffic::cbr_sink>(net_, dst, cfg.flow_id);
  flow->source = std::make_unique<traffic::cbr_source>(net_, src, dst, cfg);
  cbr_flows_.push_back(std::move(flow));
  return *cbr_flows_.back();
}

void testbed::finalize() {
  if (finalized_) return;
  finalized_ = true;
  net_.finalize_routing();
  // All links exist by now (hosts cannot attach after the run starts), so
  // this is the one place that sees the complete link set.
  register_link_metrics();
}

void testbed::register_scheduler_metrics() {
  const sim::scheduler* s = &sched_;
  metrics_.add_view("sched.executed_events", {}, [s] {
    return static_cast<double>(s->executed_events());
  });
  metrics_.add_view("sched.pending_events", {}, [s] {
    return static_cast<double>(s->pending_events());
  });
  metrics_.add_view("sched.max_pending_events", {}, [s] {
    return static_cast<double>(s->max_pending_events());
  });
  metrics_.add_view("sched.slots_high_water", {}, [s] {
    return static_cast<double>(s->slots_high_water());
  });
  if (cfg_.sched.policy == sim::sched_policy::wheel) {
    const std::size_t levels = sched_.profile_now().wheel_occupied.size();
    for (std::size_t l = 0; l < levels; ++l) {
      metrics_.add_view("sched.wheel_occupied",
                        {{"level", std::to_string(l)}}, [s, l] {
                          return static_cast<double>(
                              s->profile_now().wheel_occupied[l]);
                        });
    }
    metrics_.add_view("sched.wheel_far_entries", {}, [s] {
      return static_cast<double>(s->profile_now().far_entries);
    });
  }
}

void testbed::register_edge_metrics(const std::string& site,
                                    edge_agents& agents) {
  const obs::label_list labels{{"router", site}};
  const mcast::igmp_agent* ig = agents.igmp.get();
  metrics_.add_view("igmp.joins", labels, [ig] {
    return static_cast<double>(ig->stats().joins);
  });
  metrics_.add_view("igmp.leaves", labels, [ig] {
    return static_cast<double>(ig->stats().leaves);
  });
  metrics_.add_view("igmp.refused_protected", labels, [ig] {
    return static_cast<double>(ig->stats().refused_protected);
  });
  // The full SIGMA counter block as thin views: the struct stays the router's
  // API (tests and benches keep reading sigma().stats()), the registry only
  // reads through at snapshot time.
  const core::sigma_router_agent* sg = agents.sigma.get();
  using sigma_counters = core::sigma_router_agent::counters;
  const auto add_sigma = [&](const char* name,
                             std::uint64_t sigma_counters::*field) {
    metrics_.add_view(std::string("sigma.") + name, labels, [sg, field] {
      return static_cast<double>(sg->stats().*field);
    });
  };
  add_sigma("ctrl_shards", &sigma_counters::ctrl_shards);
  add_sigma("blocks_decoded", &sigma_counters::blocks_decoded);
  add_sigma("subscribe_msgs", &sigma_counters::subscribe_msgs);
  add_sigma("valid_keys", &sigma_counters::valid_keys);
  add_sigma("invalid_keys", &sigma_counters::invalid_keys);
  add_sigma("session_joins", &sigma_counters::session_joins);
  add_sigma("session_joins_refused", &sigma_counters::session_joins_refused);
  add_sigma("unsubscribes", &sigma_counters::unsubscribes);
  add_sigma("grace_forwards", &sigma_counters::grace_forwards);
  add_sigma("authorized_forwards", &sigma_counters::authorized_forwards);
  add_sigma("denied", &sigma_counters::denied);
  add_sigma("probation_blocks", &sigma_counters::probation_blocks);
  add_sigma("stale_prunes", &sigma_counters::stale_prunes);
  add_sigma("pending_subscriptions", &sigma_counters::pending_subscriptions);
  add_sigma("memory_records", &sigma_counters::memory_records);
  add_sigma("memory_inherits", &sigma_counters::memory_inherits);
  add_sigma("memory_refusals", &sigma_counters::memory_refusals);
  add_sigma("blocked_grants", &sigma_counters::blocked_grants);
}

void testbed::register_cm_metrics() {
  const cm::congestion_manager* m = cm_.get();
  using cm_counters = cm::congestion_manager::counters;
  const auto add_counter = [&](const char* name,
                               std::uint64_t cm_counters::*field) {
    metrics_.add_view(std::string("cm.") + name, {}, [m, field] {
      return static_cast<double>(m->stats().*field);
    });
  };
  add_counter("observations", &cm_counters::observations);
  add_counter("insertions", &cm_counters::insertions);
  add_counter("evictions", &cm_counters::evictions);
  add_counter("aged_resets", &cm_counters::aged_resets);
  add_counter("lookups", &cm_counters::lookups);
  add_counter("stale_lookups", &cm_counters::stale_lookups);
  add_counter("capped_lookups", &cm_counters::capped_lookups);
  metrics_.add_view("cm.entries", {}, [m] {
    return static_cast<double>(m->entries());
  });
  metrics_.add_view("cm.registered_paths", {}, [m] {
    return static_cast<double>(m->registered_paths());
  });
  metrics_.add_view("cm.registered_sessions", {}, [m] {
    return static_cast<double>(m->registered_sessions());
  });
}

void testbed::register_link_metrics() {
  for (const auto& owned : net_.links()) {
    const sim::link* l = owned.get();
    const obs::label_list labels{{"from", l->from()->name()},
                                 {"to", l->to()->name()}};
    metrics_.add_view("link.enqueued", labels, [l] {
      return static_cast<double>(l->stats().enqueued);
    });
    metrics_.add_view("link.dropped", labels, [l] {
      return static_cast<double>(l->stats().dropped);
    });
    metrics_.add_view("link.aqm_dropped", labels, [l] {
      return static_cast<double>(l->stats().aqm_dropped);
    });
    metrics_.add_view("link.delivered", labels, [l] {
      return static_cast<double>(l->stats().delivered);
    });
    metrics_.add_view("link.ecn_marked", labels, [l] {
      return static_cast<double>(l->stats().ecn_marked);
    });
    metrics_.add_view("link.bytes_delivered", labels, [l] {
      return static_cast<double>(l->stats().bytes_delivered);
    });
    metrics_.add_view("link.bytes_dropped", labels, [l] {
      return static_cast<double>(l->stats().bytes_dropped);
    });
    metrics_.add_view("link.max_queued_bytes", labels, [l] {
      return static_cast<double>(l->stats().max_queued_bytes);
    });
  }
}

void testbed::run_until(sim::time_ns until) {
  finalize();
  sched_.run_until(until);
}

// ---------------------------------------------------------------------------
// Scenario factories
// ---------------------------------------------------------------------------

namespace {

/// Backbone link sized like every factory sizes links: queue of
/// buffer_bdp bandwidth-delay products at the scenario base RTT. Carries the
/// scenario's queue discipline; an unset AQM seed inherits the scenario seed
/// so probabilistic policies follow the run's seed sweep.
template <typename Cfg>
sim::link_config backbone_link(double bps, sim::time_ns delay,
                               const Cfg& cfg) {
  sim::link_config l;
  l.bps = bps;
  l.delay = delay;
  l.queue_capacity_bytes = queue_bytes(bps, cfg.buffer_bdp, cfg.base_rtt);
  l.aqm = cfg.aqm;
  if (l.aqm.seed == 0) l.aqm.seed = cfg.seed;
  return l;
}

/// Assembles a testbed_config from a topology, the attachment sites, and the
/// shared attachment-default fields every scenario config carries.
template <typename Cfg>
testbed_config scenario(sim::topology_builder topo, std::string sender_site,
                        std::string receiver_site, const Cfg& cfg) {
  testbed_config out;
  out.topology = std::move(topo);
  out.sender_site = std::move(sender_site);
  out.receiver_site = std::move(receiver_site);
  out.access_bps = cfg.access_bps;
  out.access_delay = cfg.access_delay;
  out.buffer_bdp = cfg.buffer_bdp;
  out.base_rtt = cfg.base_rtt;
  out.access_aqm = cfg.access_aqm;
  out.interface_keying = cfg.interface_keying;
  out.probation_memory_slots = cfg.probation_memory_slots;
  out.sched = cfg.sched;
  out.cm = cfg.cm;
  out.cm_params = cfg.cm_params;
  out.seed = cfg.seed;
  return out;
}

}  // namespace

testbed_config dumbbell(const dumbbell_config& cfg) {
  const auto bn = backbone_link(cfg.bottleneck_bps, cfg.bottleneck_delay, cfg);
  return scenario(sim::dumbbell(bn), "l", "r", cfg);
}

testbed_config parking_lot(const parking_lot_config& cfg) {
  const auto bn = backbone_link(cfg.bottleneck_bps, cfg.bottleneck_delay, cfg);
  return scenario(sim::parking_lot(cfg.bottlenecks, bn), "r0",
                  "r" + std::to_string(cfg.bottlenecks), cfg);
}

testbed_config star(const star_config& cfg) {
  const auto spoke_link = backbone_link(cfg.spoke_bps, cfg.spoke_delay, cfg);
  return scenario(sim::star(cfg.spokes, spoke_link), "hub", "s1", cfg);
}

testbed_config balanced_tree(const tree_config& cfg) {
  const auto edge = backbone_link(cfg.edge_bps, cfg.edge_delay, cfg);
  return scenario(sim::balanced_tree(cfg.depth, cfg.fanout, edge), "root",
                  "t" + std::to_string(cfg.depth) + "_0", cfg);
}

double average_receiver_kbps(flid_session& session, sim::time_ns t0,
                             sim::time_ns t1) {
  if (session.receivers.empty()) return 0.0;
  double sum = 0.0;
  for (auto& r : session.receivers) sum += r->monitor().average_kbps(t0, t1);
  return sum / static_cast<double>(session.receivers.size());
}

session_rollup session_rollup_for(const std::vector<flid_session*>& sessions,
                                  sim::time_ns t0, sim::time_ns t1) {
  std::vector<session_sample> samples;
  samples.reserve(sessions.size());
  for (flid_session* s : sessions) {
    session_sample sample;
    sample.name = "session" + std::to_string(s->config.session_id);
    // Point-wise sum across the session's monitors keyed by sample time:
    // receivers share the monitor bin grid, but a late-started receiver's
    // series begins later, so merging by x keeps the sum honest.
    std::map<double, double> merged;
    const auto fold = [&](flid::flid_receiver& r) {
      sample.rate += r.monitor().average_kbps(t0, t1);
      for (const auto& [x, y] : r.monitor().series_kbps()) merged[x] += y;
    };
    for (auto& r : s->receivers) fold(*r);
    for (auto& p : s->populations) fold(*p->delegate);
    sample.raw.assign(merged.begin(), merged.end());
    samples.push_back(std::move(sample));
  }
  return roll_up_sessions(samples);
}

// ---------------------------------------------------------------------------
// AQM flag glue
// ---------------------------------------------------------------------------

void add_aqm_flags(util::flag_set& flags) {
  flags.add_enum("qdisc", "droptail",
                 "queue discipline(s); comma lists sweep one grid axis per "
                 "entry",
                 {"droptail", "ecn", "ecn_threshold", "red", "codel", "all"},
                 /*csv_list=*/true);
  flags.add("ecn-threshold", "0.5", "ecn: mark above this occupancy fraction");
  flags.add("red-min", "0.15", "red: min threshold, fraction of capacity");
  flags.add("red-max", "0.5", "red: max threshold, fraction of capacity");
  flags.add("red-maxp", "0.1", "red: drop probability at the max threshold");
  flags.add("red-weight", "0.002", "red: EWMA weight");
  flags.add("red-gentle", "true", "red: ramp to certain drop over [max,2max]");
  flags.add("codel-target", "5", "codel: target sojourn time, ms");
  flags.add("codel-interval", "100", "codel: control interval, ms");
}

std::vector<sim::qdisc> qdisc_list_from_flags(const util::flag_set& flags) {
  const std::string spec = flags.str("qdisc");
  if (spec == "all") {
    return {sim::qdisc::droptail, sim::qdisc::ecn_threshold, sim::qdisc::red,
            sim::qdisc::codel};
  }
  std::vector<sim::qdisc> out;
  for (const std::string& name : util::split_csv(spec)) {
    const auto d = sim::qdisc_from_name(name);
    if (!d.has_value()) {
      // A typo on the command line, not a program invariant: fail with the
      // same friendly UX as a bad numeric flag value.
      std::fprintf(stderr,
                   "bad value for --qdisc: '%s' (expected droptail, ecn, red, "
                   "codel, a comma list, or all)\n",
                   name.c_str());
      std::exit(1);
    }
    out.push_back(*d);
  }
  return out;
}

sim::aqm_config aqm_config_from_flags(const util::flag_set& flags) {
  // Range-check here, with the friendly bad-flag UX: the policy constructors
  // also validate, but they throw on a sweep worker thread where an uncaught
  // invariant_error is always std::terminate.
  const auto checked = [&](const char* flag, double lo, double hi,
                           const char* expect) {
    const double v = flags.f64(flag);
    if (!(v >= lo && v <= hi)) {
      std::fprintf(stderr, "bad value for --%s: %g (expected %s)\n", flag, v,
                   expect);
      std::exit(1);
    }
    return v;
  };
  sim::aqm_config cfg;
  cfg.discipline = qdisc_list_from_flags(flags).front();
  cfg.ecn_threshold_fraction =
      checked("ecn-threshold", 0.0, 1.0, "a fraction in [0, 1]");
  cfg.red.min_fraction =
      checked("red-min", 1e-9, 1.0, "a capacity fraction in (0, 1]");
  cfg.red.max_fraction =
      checked("red-max", 1e-9, 1.0, "a capacity fraction in (0, 1]");
  if (cfg.red.min_fraction >= cfg.red.max_fraction) {
    std::fprintf(stderr, "bad value for --red-min/--red-max: %g >= %g "
                         "(expected min < max)\n",
                 cfg.red.min_fraction, cfg.red.max_fraction);
    std::exit(1);
  }
  cfg.red.max_prob =
      checked("red-maxp", 1e-9, 1.0, "a probability in (0, 1]");
  cfg.red.weight =
      checked("red-weight", 1e-9, 1.0, "an EWMA weight in (0, 1]");
  cfg.red.gentle = flags.boolean("red-gentle");
  cfg.codel.target = sim::milliseconds(static_cast<std::int64_t>(
      checked("codel-target", 1.0, 1e9, "a positive millisecond count")));
  cfg.codel.interval = sim::milliseconds(static_cast<std::int64_t>(
      checked("codel-interval", 1.0, 1e9, "a positive millisecond count")));
  return cfg;
}

void add_cm_flags(util::flag_set& flags, const char* def) {
  flags.add_enum("cm", def,
                 "shared congestion manager across co-located sessions: both "
                 "sweeps it as a grid axis",
                 {"off", "on", "both"});
  flags.add("cm-entries", "64", "cm: LRU state-cache capacity, entries");
  flags.add("cm-aging", "8", "cm: staleness window, slots");
  flags.add("cm-threshold", "0.25",
            "cm: congestion EWMA level the cap binds above");
  flags.add("cm-headroom", "1.3", "cm: fair-rate multiplier for the cap");
}

std::vector<bool> cm_axis_from_flags(const util::flag_set& flags) {
  const std::string v = flags.str("cm");
  if (v == "off") return {false};
  if (v == "on") return {true};
  if (v == "both") return {false, true};
  std::fprintf(stderr,
               "bad value for --cm: '%s' (expected off, on, or both)\n",
               v.c_str());
  std::exit(1);
}

cm::cm_config cm_config_from_flags(const util::flag_set& flags) {
  // Range-check with the friendly bad-flag UX: the cm_config constructor
  // checks too, but its invariant_error would surface out of a sweep worker
  // thread as std::terminate instead of a flag message.
  cm::cm_config cfg;
  const std::int64_t entries = flags.i64("cm-entries");
  if (entries < 1 || entries > 1 << 20) {
    std::fprintf(stderr,
                 "bad value for --cm-entries: '%lld' (expected an entry "
                 "count in [1, 2^20])\n",
                 static_cast<long long>(entries));
    std::exit(1);
  }
  cfg.max_entries = static_cast<int>(entries);
  const std::int64_t aging = flags.i64("cm-aging");
  if (aging < 1 || aging > 1 << 20) {
    std::fprintf(stderr,
                 "bad value for --cm-aging: '%lld' (expected a slot count in "
                 "[1, 2^20])\n",
                 static_cast<long long>(aging));
    std::exit(1);
  }
  cfg.aging_slots = aging;
  const double threshold = flags.f64("cm-threshold");
  if (!(threshold >= 0.0 && threshold <= 1.0)) {
    std::fprintf(stderr,
                 "bad value for --cm-threshold: %g (expected a fraction in "
                 "[0, 1])\n",
                 threshold);
    std::exit(1);
  }
  cfg.congestion_threshold = threshold;
  const double headroom = flags.f64("cm-headroom");
  if (!(headroom > 0.0 && headroom <= 100.0)) {
    std::fprintf(stderr,
                 "bad value for --cm-headroom: %g (expected a multiplier in "
                 "(0, 100])\n",
                 headroom);
    std::exit(1);
  }
  cfg.headroom = headroom;
  return cfg;
}

void add_sched_flag(util::flag_set& flags) {
  flags.add_enum("sched", "heap",
                 "event-queue policy (identical results either way; wheel is "
                 "O(1) per op at large pending counts)",
                 {"heap", "wheel"});
}

sim::scheduler_config sched_config_from_flags(const util::flag_set& flags) {
  const std::string name = flags.str("sched");
  const auto policy = sim::sched_policy_from_name(name);
  // add_enum validated the value at parse time; this only guards benches
  // that set the flag programmatically.
  if (!policy.has_value()) {
    std::fprintf(stderr, "bad value for --sched: '%s' (expected heap or "
                         "wheel)\n",
                 name.c_str());
    std::exit(1);
  }
  sim::scheduler_config cfg;
  cfg.policy = *policy;
  return cfg;
}

void add_interface_keying_flag(util::flag_set& flags, const char* def) {
  flags.add_enum("interface-keying", def,
                 "collusion countermeasure (section 4.2): both sweeps it as "
                 "a grid axis",
                 {"off", "on", "both"});
}

std::vector<bool> interface_keying_axis_from_flags(
    const util::flag_set& flags) {
  const std::string v = flags.str("interface-keying");
  if (v == "off") return {false};
  if (v == "on") return {true};
  if (v == "both") return {false, true};
  std::fprintf(stderr,
               "bad value for --interface-keying: '%s' (expected off, on, or "
               "both)\n",
               v.c_str());
  std::exit(1);
}

void add_probation_memory_flag(util::flag_set& flags, const char* def) {
  flags.add_enum("probation-memory", def,
                 "router probation memory (adaptive_churn countermeasure): "
                 "both sweeps it as a grid axis",
                 {"off", "on", "both"});
  flags.add("probation-memory-slots", "8",
            "probation-memory window length in slots when on");
}

std::vector<int> probation_memory_axis_from_flags(const util::flag_set& flags) {
  const std::int64_t slots = flags.i64("probation-memory-slots");
  if (slots < 1 || slots > 1 << 20) {
    std::fprintf(stderr,
                 "bad value for --probation-memory-slots: '%lld' (expected a "
                 "slot count in [1, 2^20])\n",
                 static_cast<long long>(slots));
    std::exit(1);
  }
  const std::string v = flags.str("probation-memory");
  const int on = static_cast<int>(slots);
  if (v == "off") return {0};
  if (v == "on") return {on};
  if (v == "both") return {0, on};
  std::fprintf(stderr,
               "bad value for --probation-memory: '%s' (expected off, on, or "
               "both)\n",
               v.c_str());
  std::exit(1);
}

// ---------------------------------------------------------------------------
// Population flag glue
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void bad_flag(const char* flag, const std::string& v,
                           const char* expected) {
  std::fprintf(stderr, "bad value for --%s: '%s' (expected %s)\n", flag,
               v.c_str(), expected);
  std::exit(1);
}

/// Parses the non-negative number after a `key:` prefix; the whole spec is
/// echoed in the bad-flag message so the offending list item is visible.
double spec_number(const char* flag, const std::string& spec,
                   const std::string& tok, const char* expected) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || !(v >= 0.0)) {
    bad_flag(flag, spec, expected);
  }
  return v;
}

}  // namespace

void add_population_flags(util::flag_set& flags, const char* default_sizes) {
  flags.add("population", default_sizes,
            "aggregated population size(s): comma-separated member counts, "
            "one grid axis entry each");
  flags.add("demand", "zipf:1.1",
            "member layer demand: max | uniform | zipf:S");
  flags.add("churn", "none",
            "population churn: none, or comma list of arrive:R, leave:R, "
            "flash:T:N, flash-leave:T (R members/s, T seconds, N members)");
}

population::population_config population_config_from_flags(
    const util::flag_set& flags) {
  population::population_config cfg;

  const std::string demand = flags.str("demand");
  if (demand == "max") {
    cfg.demand.k = population::demand_config::kind::max;
  } else if (demand == "uniform") {
    cfg.demand.k = population::demand_config::kind::uniform;
  } else if (demand.rfind("zipf:", 0) == 0) {
    cfg.demand.k = population::demand_config::kind::zipf;
    cfg.demand.zipf_s = spec_number("demand", demand, demand.substr(5),
                                    "max, uniform, or zipf:S with S >= 0");
  } else {
    bad_flag("demand", demand, "max, uniform, or zipf:S");
  }

  const std::string churn = flags.str("churn");
  if (churn != "none") {
    static const char* churn_expect =
        "none, or comma list of arrive:R, leave:R, flash:T:N, flash-leave:T";
    for (const std::string& item : util::split_csv(churn)) {
      if (item.rfind("arrive:", 0) == 0) {
        cfg.churn.arrival_per_sec =
            spec_number("churn", churn, item.substr(7), churn_expect);
      } else if (item.rfind("leave:", 0) == 0) {
        cfg.churn.leave_per_sec =
            spec_number("churn", churn, item.substr(6), churn_expect);
      } else if (item.rfind("flash-leave:", 0) == 0) {
        cfg.churn.flash_leave_at = sim::seconds(
            spec_number("churn", churn, item.substr(12), churn_expect));
      } else if (item.rfind("flash:", 0) == 0) {
        const std::string rest = item.substr(6);
        const std::size_t colon = rest.find(':');
        if (colon == std::string::npos) bad_flag("churn", churn, churn_expect);
        cfg.churn.flash_at = sim::seconds(
            spec_number("churn", churn, rest.substr(0, colon), churn_expect));
        cfg.churn.flash_members = static_cast<std::int64_t>(spec_number(
            "churn", churn, rest.substr(colon + 1), churn_expect));
      } else {
        bad_flag("churn", churn, churn_expect);
      }
    }
  }
  return cfg;
}

std::vector<std::int64_t> population_axis_from_flags(
    const util::flag_set& flags) {
  const std::string spec = flags.str("population");
  std::vector<std::int64_t> out;
  for (const std::string& tok : util::split_csv(spec)) {
    const double v = spec_number("population", spec, tok,
                                 "comma-separated non-negative member counts");
    out.push_back(static_cast<std::int64_t>(v));
  }
  if (out.empty()) {
    bad_flag("population", spec,
             "comma-separated non-negative member counts");
  }
  return out;
}

}  // namespace mcc::exp
