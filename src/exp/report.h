// Output helpers for figure-reproduction benches: gnuplot-style series and
// paper-vs-measured summary rows.
#ifndef MCC_EXP_REPORT_H
#define MCC_EXP_REPORT_H

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mcc::exp {

using series = std::vector<std::pair<double, double>>;

/// Prints "# <title>" followed by "x y" rows.
void print_series(std::ostream& os, const std::string& title, const series& s,
                  double x_min = 0.0, double x_max = 1e18);

/// Prints several series as one table: x, then one column per series (series
/// must share x values; missing values are printed as "-").
void print_columns(std::ostream& os, const std::string& title,
                   const std::vector<std::string>& labels,
                   const std::vector<series>& columns, double x_min = 0.0,
                   double x_max = 1e18);

/// One row of a paper-vs-measured summary.
void print_check(std::ostream& os, const std::string& what,
                 const std::string& paper_says, double measured,
                 const std::string& unit);

// ---------------------------------------------------------------------------
// Cross-session roll-up: per-session throughput columns + Jain fairness
// ---------------------------------------------------------------------------

/// Smooths a raw series with an exponentially weighted moving average whose
/// state starts fresh at the first sample. Every call owns its own smoother:
/// per-session smoothed columns can never leak smoothing state into one
/// another, so a session's column depends only on its own samples — never on
/// the order sessions were registered in (regression-pinned by
/// scenario_test).
[[nodiscard]] series ewma_smooth(const series& raw, double weight = 0.3);

/// Input to roll_up_sessions: one named session with its windowed rate and
/// raw rate series.
struct session_sample {
  std::string name;
  double rate = 0.0;  // session throughput over the measurement window
  series raw;         // (time, rate) trajectory
};

/// One session's column of the roll-up.
struct session_column {
  std::string name;
  double rate = 0.0;
  series smoothed;  // EWMA of the session's own raw series
};

/// The cross-session summary of a multi-session run.
struct session_rollup {
  std::vector<session_column> sessions;  // input order
  double jain = 1.0;      // Jain fairness index across session rates
  double total_rate = 0.0;
};

/// Builds the roll-up: one column per sample (order preserved), each
/// smoothed with an independent smoother, plus Jain fairness over the rates.
[[nodiscard]] session_rollup roll_up_sessions(
    const std::vector<session_sample>& sessions, double smooth_weight = 0.3);

/// Prints the roll-up: one "name rate" row per session, then total and Jain.
void print_session_rollup(std::ostream& os, const std::string& title,
                          const session_rollup& r);

}  // namespace mcc::exp

#endif  // MCC_EXP_REPORT_H
