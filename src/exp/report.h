// Output helpers for figure-reproduction benches: gnuplot-style series and
// paper-vs-measured summary rows.
#ifndef MCC_EXP_REPORT_H
#define MCC_EXP_REPORT_H

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace mcc::exp {

using series = std::vector<std::pair<double, double>>;

/// Prints "# <title>" followed by "x y" rows.
void print_series(std::ostream& os, const std::string& title, const series& s,
                  double x_min = 0.0, double x_max = 1e18);

/// Prints several series as one table: x, then one column per series (series
/// must share x values; missing values are printed as "-").
void print_columns(std::ostream& os, const std::string& title,
                   const std::vector<std::string>& labels,
                   const std::vector<series>& columns, double x_min = 0.0,
                   double x_max = 1e18);

/// One row of a paper-vs-measured summary.
void print_check(std::ostream& os, const std::string& what,
                 const std::string& paper_says, double measured,
                 const std::string& unit);

}  // namespace mcc::exp

#endif  // MCC_EXP_REPORT_H
