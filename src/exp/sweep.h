// Parameter-grid sweep runner: the execution engine behind every figure and
// ablation bench.
//
// A sweep declares its grid as a list of x coordinates (session counts, slot
// durations, protocol modes, ...) and a point function that builds a fully
// isolated simulation world — its own scheduler, network, and PRNG streams —
// and returns a typed result row. Points run on `--jobs` worker threads;
// every point's seed is derived only from (base_seed, point index), and rows
// come back in grid order, so `--jobs N` output is bit-identical to
// `--jobs 1` (and to any interleaving the OS picks).
//
// Rows carry named scalars (table columns) and named series (trajectories);
// the same rows print as the existing gnuplot tables via exp::report and
// serialize as machine-readable BENCH_*.json documents via `--json`.
#ifndef MCC_EXP_SWEEP_H
#define MCC_EXP_SWEEP_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "exp/report.h"
#include "obs/metrics.h"
#include "util/flags.h"

namespace mcc::exp {

/// One grid point of a parameter sweep.
struct sweep_point {
  std::size_t index = 0;   // position in the declared grid
  double x = 0.0;          // the point's grid coordinate
  std::uint64_t seed = 0;  // derived from (base_seed, index); jobs-invariant
};

/// Deterministic per-point seed: a splitmix64 mix of the base seed and the
/// point index. Depends on nothing else, so parallel and serial runs agree.
[[nodiscard]] std::uint64_t point_seed(std::uint64_t base_seed,
                                       std::size_t index);

struct sweep_options {
  int jobs = 1;  // worker threads (values < 1 behave like 1)
  /// When > 0, the grid is sharded across forked worker *processes*, each
  /// running `jobs_per_process` threads against its own slab pools (so wide
  /// grids scale past allocator contention). Enough processes are forked to
  /// reach max(jobs, jobs_per_process) total workers. Rows travel back over
  /// a pipe in raw IEEE-754 bytes, so merged output stays byte-identical to
  /// `--jobs 1`. A worker that dies mid-shard is a loud error, never a
  /// truncated result. 0 = in-process threads only.
  int jobs_per_process = 0;
  std::uint64_t base_seed = 1;
};

/// Registers the sweep-standard flags on a bench's flag set:
///   --jobs N              worker threads for the parameter grid
///   --jobs-per-process N  fork workers, N threads each (0 = in-process)
///   --json PATH           also write machine-readable results to PATH
///   --trace PATH          write the deterministic event trace to PATH
///                         (convert with tools/trace2perfetto.py)
///   --profile BOOL        add a wall-clock self-profiling block to --json
///                         (off by default: wall clock is environment noise,
///                         and CI cmp's BENCH files byte-for-byte)
///   --log-level L         debug|info|warn|error|off; empty (the default)
///                         falls back to MCC_LOG_LEVEL, else keeps "warn"
void add_sweep_flags(util::flag_set& flags);

/// Reads the standard flags back; `base_seed` is the bench's own seed flag.
/// Also applies --log-level (flag wins over the MCC_LOG_LEVEL env fallback)
/// to util::set_log_level; a bad level name prints a friendly message and
/// exits(1), like any other bad flag value (bench-main glue).
[[nodiscard]] sweep_options sweep_options_from_flags(
    const util::flag_set& flags, std::uint64_t base_seed);

/// True when the bench was asked to record an event trace. Wired benches
/// install an obs::trace_scope around each grid point and store the
/// serialized buffer in sweep_row::trace_blob.
[[nodiscard]] bool trace_requested(const util::flag_set& flags);

/// True when --profile was set.
[[nodiscard]] bool profile_requested(const util::flag_set& flags);

/// One grid point's reported results: named scalar values plus named series.
struct sweep_row {
  /// Report coordinate. Left NaN (the default), run_sweep fills in the
  /// point's grid coordinate; set explicitly (any finite value, including
  /// 0.0) to remap encoded grid coordinates to display values.
  double x = std::numeric_limits<double>::quiet_NaN();
  std::string label;  // optional human-readable point name
  std::vector<std::pair<std::string, double>> values;
  std::vector<std::pair<std::string, series>> traces;
  /// Engine-metrics snapshot of the point's world (obs::registry::snapshot),
  /// serialized as the row's "metrics" object under schema_version 2.
  /// Deterministic — identical across --jobs / --jobs-per-process.
  obs::metric_snapshot metrics;
  /// Serialized obs::trace_buffer segment ("" = tracing off). Travels over
  /// the forked-worker pipe like every other field and is merged in row
  /// order by maybe_write_trace, so the trace file is jobs-invariant too.
  std::string trace_blob;

  sweep_row& value(std::string name, double v) {
    values.emplace_back(std::move(name), v);
    return *this;
  }
  sweep_row& trace(std::string name, series s) {
    traces.emplace_back(std::move(name), std::move(s));
    return *this;
  }
  /// Scalar lookup; NaN when the row has no value of that name.
  [[nodiscard]] double value_of(const std::string& name) const;
  /// Series lookup; nullptr when absent.
  [[nodiscard]] const series* trace_of(const std::string& name) const;
  /// Metric lookup by flattened name; NaN when absent.
  [[nodiscard]] double metric_of(const std::string& name) const;
};

/// Extracts the (x, named value) series across rows, for print_columns.
[[nodiscard]] series column(const std::vector<sweep_row>& rows,
                            const std::string& name);

/// Wall-clock self-profiling of one sweep run (the "engine events/sec per
/// phase" side of observability). Everything here is measured from the host
/// clock, so it is nondeterministic by design and only ever emitted under
/// --profile — the default BENCH output stays byte-identical run to run.
struct sweep_profile {
  double wall_ms = 0.0;          // whole-grid wall clock
  std::size_t points = 0;        // grid points run
  double points_per_sec = 0.0;   // points / wall seconds
  /// Sum of the rows' "sched.executed_events" metric (0 when no row
  /// snapshots it) and the derived whole-run event throughput.
  double events_executed = 0.0;
  double events_per_sec = 0.0;
  /// Per-point wall time, milliseconds. Only in-process points observe into
  /// it: forked --jobs-per-process workers keep their clocks to themselves
  /// (per-point timings would have to cross the pipe as nondeterministic
  /// payload), so under forking the histogram stays empty.
  obs::histogram point_ms{
      {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0, 30000.0}};
};

/// Runs `fn` once per grid point on opts.jobs worker threads. Results return
/// in grid order; a row whose x was left unset inherits the point's x. The
/// first exception thrown by any point is rethrown after the workers join;
/// points not yet started when a point fails are abandoned. A non-null
/// `profile` collects wall-clock self-profiling for the run (rows are
/// unaffected — determinism contracts hold with or without it).
std::vector<sweep_row> run_sweep(
    const std::vector<double>& xs, const sweep_options& opts,
    const std::function<sweep_row(const sweep_point&)>& fn,
    sweep_profile* profile = nullptr);

/// Writes rows as a machine-readable JSON document ("BENCH_<name>.json"),
/// schema_version 2: per-row "metrics" objects plus an optional document
/// "profile" block (see docs/observability.md).
void write_json(std::ostream& os, const std::string& bench,
                const std::vector<sweep_row>& rows,
                const sweep_profile* profile = nullptr);

/// Honors a bench's --json flag: empty value = no-op, otherwise writes the
/// JSON document to the named file (stderr note on success, throws on I/O
/// failure). The overload with a profile emits the "profile" block when the
/// pointer is non-null.
void maybe_write_json(const util::flag_set& flags, const std::string& bench,
                      const std::vector<sweep_row>& rows);
void maybe_write_json(const util::flag_set& flags, const std::string& bench,
                      const std::vector<sweep_row>& rows,
                      const sweep_profile* profile);

/// Honors a bench's --trace flag: empty value = no-op, otherwise writes the
/// rows' trace blobs to the named file in row order ("MCCT" container; see
/// docs/observability.md), byte-identical across --jobs and
/// --jobs-per-process. Rows without a blob are skipped.
void maybe_write_trace(const util::flag_set& flags,
                       const std::vector<sweep_row>& rows);

}  // namespace mcc::exp

#endif  // MCC_EXP_SWEEP_H
