#include "exp/report.h"

#include <cmath>
#include <iomanip>

namespace mcc::exp {

void print_series(std::ostream& os, const std::string& title, const series& s,
                  double x_min, double x_max) {
  os << "# " << title << "\n";
  for (const auto& [x, y] : s) {
    if (x < x_min || x > x_max) continue;
    os << std::fixed << std::setprecision(3) << x << " "
       << std::setprecision(2) << y << "\n";
  }
  os << "\n";
}

void print_columns(std::ostream& os, const std::string& title,
                   const std::vector<std::string>& labels,
                   const std::vector<series>& columns, double x_min,
                   double x_max) {
  os << "# " << title << "\n# x";
  for (const auto& l : labels) os << " " << l;
  os << "\n";
  if (columns.empty()) return;
  const std::size_t rows = columns.front().size();
  for (std::size_t i = 0; i < rows; ++i) {
    const double x = columns.front()[i].first;
    if (x < x_min || x > x_max) continue;
    os << std::fixed << std::setprecision(3) << x;
    for (const auto& col : columns) {
      if (i < col.size() && std::abs(col[i].first - x) < 1e-9) {
        os << " " << std::setprecision(2) << col[i].second;
      } else {
        os << " -";
      }
    }
    os << "\n";
  }
  os << "\n";
}

void print_check(std::ostream& os, const std::string& what,
                 const std::string& paper_says, double measured,
                 const std::string& unit) {
  os << "CHECK  " << what << ": paper=" << paper_says << "  measured="
     << std::fixed << std::setprecision(2) << measured << " " << unit << "\n";
}

}  // namespace mcc::exp
