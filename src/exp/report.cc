#include "exp/report.h"

#include <cmath>
#include <iomanip>

#include "sim/stats.h"

namespace mcc::exp {

void print_series(std::ostream& os, const std::string& title, const series& s,
                  double x_min, double x_max) {
  os << "# " << title << "\n";
  for (const auto& [x, y] : s) {
    if (x < x_min || x > x_max) continue;
    os << std::fixed << std::setprecision(3) << x << " "
       << std::setprecision(2) << y << "\n";
  }
  os << "\n";
}

void print_columns(std::ostream& os, const std::string& title,
                   const std::vector<std::string>& labels,
                   const std::vector<series>& columns, double x_min,
                   double x_max) {
  os << "# " << title << "\n# x";
  for (const auto& l : labels) os << " " << l;
  os << "\n";
  if (columns.empty()) return;
  const std::size_t rows = columns.front().size();
  for (std::size_t i = 0; i < rows; ++i) {
    const double x = columns.front()[i].first;
    if (x < x_min || x > x_max) continue;
    os << std::fixed << std::setprecision(3) << x;
    for (const auto& col : columns) {
      if (i < col.size() && std::abs(col[i].first - x) < 1e-9) {
        os << " " << std::setprecision(2) << col[i].second;
      } else {
        os << " -";
      }
    }
    os << "\n";
  }
  os << "\n";
}

void print_check(std::ostream& os, const std::string& what,
                 const std::string& paper_says, double measured,
                 const std::string& unit) {
  os << "CHECK  " << what << ": paper=" << paper_says << "  measured="
     << std::fixed << std::setprecision(2) << measured << " " << unit << "\n";
}

series ewma_smooth(const series& raw, double weight) {
  series out;
  out.reserve(raw.size());
  // The smoother's whole state lives in this frame: two calls can never
  // observe each other, which is the no-shared-smoothing-state contract.
  double state = 0.0;
  bool first = true;
  for (const auto& [x, y] : raw) {
    state = first ? y : (1.0 - weight) * state + weight * y;
    first = false;
    out.emplace_back(x, state);
  }
  return out;
}

session_rollup roll_up_sessions(const std::vector<session_sample>& sessions,
                                double smooth_weight) {
  session_rollup out;
  std::vector<double> rates;
  rates.reserve(sessions.size());
  for (const session_sample& s : sessions) {
    session_column col;
    col.name = s.name;
    col.rate = s.rate;
    col.smoothed = ewma_smooth(s.raw, smooth_weight);
    out.total_rate += s.rate;
    rates.push_back(s.rate);
    out.sessions.push_back(std::move(col));
  }
  out.jain = sim::jain_fairness_index(rates);
  return out;
}

void print_session_rollup(std::ostream& os, const std::string& title,
                          const session_rollup& r) {
  os << "# " << title << "\n";
  for (const session_column& s : r.sessions) {
    os << "  " << s.name << " " << std::fixed << std::setprecision(2) << s.rate
       << "\n";
  }
  os << "  total " << std::fixed << std::setprecision(2) << r.total_rate
     << "\n";
  os << "  jain " << std::setprecision(4) << r.jain << "\n\n";
}

}  // namespace mcc::exp
