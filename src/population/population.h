// Aggregated receiver populations: the honest receivers behind one edge
// represented as a single per-interface aggregate instead of a million
// simulated objects.
//
// The paper's containment story is only interesting at scale — one attacker
// hiding among 10^6 honest subscribers — but a per-receiver simulation caps
// sessions at thousands. The observation that makes scale cheap is the same
// one behind ABR point-to-multipoint feedback consolidation (Fahmy et al.):
// a branch carries the *maximum* subscription any member behind it holds, so
// the router-visible behaviour of N honest receivers at an edge is exactly
// the behaviour of their consolidated maximum. An edge_aggregate therefore
// keeps only a count-per-layer demand vector plus a deterministic churn
// process (Poisson arrivals, per-member departure hazard, flash-crowd
// bursts, Zipf-skewed layer demand a la the measured multicast audience
// skew of Lucas et al.) — O(num_groups) state however many members it
// represents — and a single delegate flid_receiver drives the ordinary
// subscription/feedback surface (IGMP in the plain world, DELTA/SIGMA key
// submission in FLID-DS) at the consolidated level.
//
// Conformance contract (tests/population_test.cc): with churn off and every
// member demanding all layers, the delegate's subscription timeline is
// bit-identical to the consolidated timeline of the same number of
// individually simulated honest receivers, on every topology and in both
// protocol worlds. Individually simulated receivers — honest stragglers and
// adversaries from src/adversary/ — attach at the same edge through the
// normal testbed path and coexist with aggregates untouched.
//
// Determinism: the aggregate owns its own crypto::prng stream (seeded by the
// testbed seed chain only when a population is actually added), so legacy
// scenarios replay byte-identically and `--jobs N == --jobs 1` holds for
// every population sweep.
#ifndef MCC_POPULATION_POPULATION_H
#define MCC_POPULATION_POPULATION_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/flid_ds.h"
#include "crypto/prng.h"
#include "flid/flid_config.h"
#include "flid/flid_receiver.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "util/zipf.h"

namespace mcc::population {

/// How arriving members pick the layer they demand.
struct demand_config {
  enum class kind {
    max,      // every member wants every layer (the conformance setting)
    uniform,  // uniform over 1..num_groups
    zipf,     // P(layer d) proportional to d^-s: most members want the base
  };
  kind k = kind::max;
  double zipf_s = 1.1;
};

/// The deterministic churn process, evaluated once per slot.
struct churn_config {
  /// Poisson arrival rate, members per second (0 = closed population).
  double arrival_per_sec = 0.0;
  /// Per-member departure hazard, 1/seconds (0 = nobody leaves).
  double leave_per_sec = 0.0;
  /// Flash crowd: at `flash_at` (< 0 = never), `flash_members` join in one
  /// slot; at `flash_leave_at` (< 0 = never) the surviving cohort leaves.
  sim::time_ns flash_at = -1;
  std::int64_t flash_members = 0;
  sim::time_ns flash_leave_at = -1;
};

struct population_config {
  std::int64_t initial_members = 0;
  demand_config demand;
  churn_config churn;
  /// PRNG stream seed; exp::testbed overwrites it from its seed chain.
  std::uint64_t seed = 1;
};

/// Protocol world the aggregate's delegate speaks (mirrors exp::flid_mode
/// without depending on the exp layer).
enum class protocol { plain, sigma };

/// The aggregate itself: member state as a count-per-layer demand histogram,
/// churn on the slot clock, and analytic per-member goodput accounting.
/// Everything is O(num_groups) regardless of member count — state_bytes()
/// is the assertion hook for that invariant.
class edge_aggregate {
 public:
  edge_aggregate(sim::scheduler& sched, const flid::flid_config& session,
                 const population_config& cfg);

  /// What the delegate strategy observed for one evaluated slot.
  struct slot_view {
    std::int64_t slot = 0;
    sim::time_ns now = 0;
    /// Contiguous group prefix that actually delivered packets (the granted
    /// subscription members share).
    int granted = 0;
    bool congested = false;
  };

  /// Per-slot tick, called by the delegate strategy after every evaluated
  /// slot: accounts the slot's member goodput against the pre-churn
  /// histogram, then advances the churn process.
  void on_slot(const slot_view& v);

  /// Highest layer any live member demands — the consolidated subscription
  /// cap the delegate drives toward (0 = population empty).
  [[nodiscard]] int demand_cap() const;
  [[nodiscard]] std::int64_t member_count() const { return members_; }
  /// Live members per demanded layer; index 0 unused, 1..num_groups.
  [[nodiscard]] const std::vector<std::int64_t>& demand_histogram() const {
    return demand_count_;
  }

  /// Mean per-member goodput, recorded once per slot: a member demanding
  /// layer d receives the cumulative rate of min(granted, d). This monitor
  /// is the honest-population reference for containment measurement.
  [[nodiscard]] sim::throughput_monitor& member_monitor() {
    return member_monitor_;
  }
  [[nodiscard]] const sim::throughput_monitor& member_monitor() const {
    return member_monitor_;
  }
  /// Estimated bytes received across all members (analytic, not simulated).
  [[nodiscard]] double total_member_bytes() const {
    return total_member_bytes_;
  }

  /// Member-state footprint in bytes: the aggregate object plus its per-layer
  /// vectors. Deliberately excludes the member monitor's time bins (they grow
  /// with simulated time, not with members); asserting this equal across
  /// population sizes pins the O(interfaces)-not-O(receivers) contract.
  [[nodiscard]] std::size_t state_bytes() const;

  struct counters {
    std::uint64_t slots = 0;
    std::uint64_t arrivals = 0;        // Poisson arrivals
    std::uint64_t departures = 0;      // hazard departures
    std::uint64_t flash_arrivals = 0;  // flash-crowd joiners
    std::uint64_t flash_departures = 0;
    std::int64_t peak_members = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

  [[nodiscard]] const flid::flid_config& session() const { return session_; }

 private:
  /// Distributes `k` new members across demand layers (exact per-member
  /// draws for small k, sequential-binomial multinomial for storms, so a
  /// 10^6 flash costs O(num_groups) draws).
  void add_members(std::int64_t k, std::vector<std::int64_t>& into);
  void churn_tick(const slot_view& v);
  void account_slot(const slot_view& v);

  flid::flid_config session_;
  population_config cfg_;
  crypto::prng rng_;
  util::zipf_sampler zipf_;
  std::vector<std::int64_t> demand_count_;  // index 0 unused; 1..num_groups
  std::vector<std::int64_t> flash_cohort_;  // flash joiners still present
  std::int64_t members_ = 0;
  bool flash_joined_ = false;
  bool flash_left_ = false;
  double total_member_bytes_ = 0.0;
  sim::throughput_monitor member_monitor_;
  counters stats_;
};

/// Builds the delegate subscription strategy driving one aggregate: the
/// honest control law of the given protocol world, capped at the aggregate's
/// consolidated demand and reacting to churn (an emptied population tears
/// the subscription down; returning members re-admit it). With the cap at
/// num_groups the strategies are step-for-step identical to their honest
/// counterparts — the conformance contract above.
[[nodiscard]] std::unique_ptr<flid::subscription_strategy>
make_aggregate_strategy(protocol proto, edge_aggregate& agg,
                        bool interface_keying = false);

}  // namespace mcc::population

#endif  // MCC_POPULATION_POPULATION_H
