#include "population/population.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace mcc::population {

namespace {

constexpr double two_pi = 6.283185307179586476925286766559;

/// Poisson sample: Knuth inversion for small means, a rounded-and-clamped
/// normal approximation for storms. Both consume a bounded number of stream
/// draws per call, so churn stays deterministic and O(1) per slot whatever
/// the population size.
std::int64_t sample_poisson(crypto::prng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 32.0) {
    const double limit = std::exp(-lambda);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.uniform();
    } while (p > limit);
    return k - 1;
  }
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  return std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::llround(lambda + z * std::sqrt(lambda))));
}

/// Binomial(n, p) sample: exact Bernoulli counting for small n, Poisson
/// approximation for rare events, normal approximation for the bulk.
std::int64_t sample_binomial(crypto::prng& rng, std::int64_t n, double p) {
  if (n <= 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 64) {
    std::int64_t k = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      if (rng.bernoulli(p)) ++k;
    }
    return k;
  }
  const double nd = static_cast<double>(n);
  const double var = nd * p * (1.0 - p);
  if (var < 25.0) {
    // One tail is rare: Poisson-approximate the rare side.
    if (p <= 0.5) return std::min(n, sample_poisson(rng, nd * p));
    return n - std::min(n, sample_poisson(rng, nd * (1.0 - p)));
  }
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  return std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::llround(nd * p + z * std::sqrt(var))), 0,
      n);
}

}  // namespace

edge_aggregate::edge_aggregate(sim::scheduler& sched,
                               const flid::flid_config& session,
                               const population_config& cfg)
    : session_(session),
      cfg_(cfg),
      rng_(cfg.seed),
      zipf_(session.num_groups,
            cfg.demand.k == demand_config::kind::zipf ? cfg.demand.zipf_s : 0.0),
      demand_count_(static_cast<std::size_t>(session.num_groups) + 1, 0),
      flash_cohort_(static_cast<std::size_t>(session.num_groups) + 1, 0),
      member_monitor_(sched) {
  util::require(session.num_groups >= 1, "edge_aggregate: no groups");
  util::require(cfg.initial_members >= 0,
                "edge_aggregate: negative initial population");
  util::require(cfg.churn.arrival_per_sec >= 0.0,
                "edge_aggregate: negative arrival rate");
  util::require(cfg.churn.leave_per_sec >= 0.0,
                "edge_aggregate: negative departure hazard");
  util::require(cfg.churn.flash_members >= 0,
                "edge_aggregate: negative flash-crowd size");
  add_members(cfg.initial_members, demand_count_);
  members_ = cfg.initial_members;
  stats_.peak_members = members_;
}

void edge_aggregate::add_members(std::int64_t k,
                                 std::vector<std::int64_t>& into) {
  if (k <= 0) return;
  const int n = session_.num_groups;
  if (cfg_.demand.k == demand_config::kind::max) {
    into[static_cast<std::size_t>(n)] += k;
    return;
  }
  const auto layer_pmf = [&](int d) {
    return cfg_.demand.k == demand_config::kind::uniform
               ? 1.0 / static_cast<double>(n)
               : zipf_.pmf(d);
  };
  if (k <= 64) {
    for (std::int64_t i = 0; i < k; ++i) {
      const int d = cfg_.demand.k == demand_config::kind::uniform
                        ? static_cast<int>(rng_.uniform_int(1, n))
                        : zipf_.sample(rng_.uniform());
      ++into[static_cast<std::size_t>(d)];
    }
    return;
  }
  // Join storm: one multinomial split via sequential binomials — O(groups)
  // draws however many members arrive.
  std::int64_t remaining = k;
  double mass = 1.0;
  for (int d = 1; d < n && remaining > 0; ++d) {
    const double pd = layer_pmf(d);
    const double cond = mass > 0.0 ? std::clamp(pd / mass, 0.0, 1.0) : 0.0;
    const std::int64_t x = sample_binomial(rng_, remaining, cond);
    into[static_cast<std::size_t>(d)] += x;
    remaining -= x;
    mass -= pd;
  }
  into[static_cast<std::size_t>(n)] += remaining;
}

int edge_aggregate::demand_cap() const {
  for (int d = session_.num_groups; d >= 1; --d) {
    if (demand_count_[static_cast<std::size_t>(d)] > 0) return d;
  }
  return 0;
}

void edge_aggregate::account_slot(const slot_view& v) {
  ++stats_.slots;
  if (members_ <= 0 || v.granted <= 0) return;
  const double slot_s = sim::to_seconds(session_.slot_duration);
  double bytes = 0.0;
  for (int d = 1; d <= session_.num_groups; ++d) {
    const std::int64_t c = demand_count_[static_cast<std::size_t>(d)];
    if (c == 0) continue;
    const double rate = session_.cumulative_rate_bps(std::min(v.granted, d));
    bytes += static_cast<double>(c) * rate / 8.0 * slot_s;
  }
  total_member_bytes_ += bytes;
  member_monitor_.on_bytes(
      std::llround(bytes / static_cast<double>(members_)));
}

void edge_aggregate::churn_tick(const slot_view& v) {
  const int n = session_.num_groups;
  const double slot_s = sim::to_seconds(session_.slot_duration);

  // Hazard departures shrink the histogram where the members are.
  if (cfg_.churn.leave_per_sec > 0.0 && members_ > 0) {
    const double p = 1.0 - std::exp(-cfg_.churn.leave_per_sec * slot_s);
    for (int d = 1; d <= n; ++d) {
      auto& c = demand_count_[static_cast<std::size_t>(d)];
      if (c == 0) continue;
      const std::int64_t gone = sample_binomial(rng_, c, p);
      c -= gone;
      members_ -= gone;
      stats_.departures += static_cast<std::uint64_t>(gone);
      // The flash cohort shares the hazard; keep its residue consistent.
      auto& f = flash_cohort_[static_cast<std::size_t>(d)];
      f = std::min(f, c);
    }
  }

  if (cfg_.churn.arrival_per_sec > 0.0) {
    const std::int64_t k =
        sample_poisson(rng_, cfg_.churn.arrival_per_sec * slot_s);
    add_members(k, demand_count_);
    members_ += k;
    stats_.arrivals += static_cast<std::uint64_t>(k);
  }

  if (!flash_joined_ && cfg_.churn.flash_at >= 0 &&
      v.now >= cfg_.churn.flash_at) {
    flash_joined_ = true;
    add_members(cfg_.churn.flash_members, flash_cohort_);
    for (int d = 1; d <= n; ++d) {
      demand_count_[static_cast<std::size_t>(d)] +=
          flash_cohort_[static_cast<std::size_t>(d)];
    }
    members_ += cfg_.churn.flash_members;
    stats_.flash_arrivals += static_cast<std::uint64_t>(cfg_.churn.flash_members);
  }
  if (flash_joined_ && !flash_left_ && cfg_.churn.flash_leave_at >= 0 &&
      v.now >= cfg_.churn.flash_leave_at) {
    flash_left_ = true;
    for (int d = 1; d <= n; ++d) {
      auto& f = flash_cohort_[static_cast<std::size_t>(d)];
      demand_count_[static_cast<std::size_t>(d)] -= f;
      members_ -= f;
      stats_.flash_departures += static_cast<std::uint64_t>(f);
      f = 0;
    }
  }
  stats_.peak_members = std::max(stats_.peak_members, members_);
}

void edge_aggregate::on_slot(const slot_view& v) {
  // Account against the pre-churn histogram (these members sat through the
  // slot), then evolve the population for the next one.
  account_slot(v);
  churn_tick(v);
}

std::size_t edge_aggregate::state_bytes() const {
  return sizeof(*this) +
         (demand_count_.capacity() + flash_cohort_.capacity()) *
             sizeof(std::int64_t) +
         static_cast<std::size_t>(zipf_.n()) * sizeof(double);
}

// ---------------------------------------------------------------------------
// Delegate strategies: the honest control laws, capped at the consolidated
// member demand.
// ---------------------------------------------------------------------------

namespace {

int granted_prefix(const flid::flid_config& cfg, const flid::slot_summary& s) {
  int granted = 0;
  for (int g = 1; g <= cfg.num_groups; ++g) {
    if (s.groups[static_cast<std::size_t>(g)].received == 0) break;
    granted = g;
  }
  return granted;
}

class aggregate_plain_strategy : public flid::subscription_strategy {
 public:
  explicit aggregate_plain_strategy(edge_aggregate& agg) : agg_(agg) {}

  void session_start(flid::flid_receiver& r) override {
    if (agg_.member_count() <= 0) return;  // arrivals re-admit in on_slot
    r.set_local_level(1);
    r.membership().join(r.config().group(1));
  }

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override {
    agg_.on_slot({s.slot, r.net().sched().now(),
                  granted_prefix(r.config(), s), s.congested});
    const int cap = agg_.demand_cap();
    if (cap == 0) {
      // Population emptied: tear the whole subscription down.
      if (r.level() > 0) flid::apply_plain_level(r, 0);
      return 0;
    }
    if (r.level() == 0) {
      // Members returned to an emptied aggregate: re-enter at the base.
      flid::apply_plain_level(r, 1);
      return 1;
    }
    int level = r.level();
    if (level > cap) {
      // Churn lowered the consolidated demand below the current carry.
      flid::apply_plain_level(r, cap);
      level = cap;
    }
    const int target = flid::honest_level_step(level, cap, s);
    if (target != level) flid::apply_plain_level(r, target);
    return r.level();
  }

 private:
  edge_aggregate& agg_;
};

class aggregate_sigma_strategy : public core::honest_sigma_strategy {
 public:
  explicit aggregate_sigma_strategy(edge_aggregate& agg) : agg_(agg) {}

  void session_start(flid::flid_receiver& r) override {
    attach(r);
    if (agg_.member_count() <= 0) return;  // arrivals re-admit in on_slot
    r.set_local_level(1);
    send_session_join();
    active_ = true;
  }

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override {
    const core::slot_feedback fb = observe_slot(r, s);
    agg_.on_slot({s.slot, fb.now, fb.granted, s.congested});
    const int cap = agg_.demand_cap();
    if (cap == 0) {
      if (r.level() > 0) {
        std::vector<sim::group_addr> gone;
        for (int g = 1; g <= r.level(); ++g) {
          gone.push_back(r.config().group(g));
        }
        send_unsubscribe(gone);
        r.set_local_level(0);
      }
      active_ = false;
      return 0;
    }
    if (!active_) {
      r.set_local_level(1);
      send_session_join();
      active_ = true;
      return 1;
    }
    // Cap the honest climb at the consolidated demand: with the upgrade
    // authorization bits above the cap cleared, reconstruct() never steps
    // past it — and when cap == num_groups the summary is untouched, so this
    // path is step-for-step the honest strategy (the conformance contract).
    flid::slot_summary capped = s;
    capped.auth_mask &= cap >= 31 ? ~0u : ((2u << cap) - 2u);
    int target = honest_action(r, capped);
    if (target > cap) {
      // Churn lowered the demand below the level honest_action retained.
      std::vector<sim::group_addr> dropped;
      for (int g = cap + 1; g <= target; ++g) {
        dropped.push_back(r.config().group(g));
      }
      send_unsubscribe(dropped);
      r.set_local_level(cap);
      target = cap;
    }
    return target;
  }

 private:
  edge_aggregate& agg_;
  bool active_ = false;
};

}  // namespace

std::unique_ptr<flid::subscription_strategy> make_aggregate_strategy(
    protocol proto, edge_aggregate& agg, bool interface_keying) {
  if (proto == protocol::plain) {
    return std::make_unique<aggregate_plain_strategy>(agg);
  }
  auto s = std::make_unique<aggregate_sigma_strategy>(agg);
  s->set_interface_keying(interface_keying);
  return s;
}

}  // namespace mcc::population
