#include "sim/network.h"

#include <queue>

#include "crypto/prng.h"

namespace mcc::sim {

namespace {
/// Per-link AQM stream seed: links created from the same config (a duplex
/// pair, or every spoke of a star) must not replay each other's RED
/// coin-flips, so the network mixes its link-creation counter into the
/// configured seed. Creation order is deterministic, so sweeps stay
/// bit-reproducible.
link_config with_link_seed(const link_config& cfg, std::size_t link_index) {
  link_config out = cfg;
  std::uint64_t sm = cfg.aqm.seed ^
                     (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(link_index) + 1));
  out.aqm.seed = crypto::splitmix64(sm);
  return out;
}
}  // namespace

node_id network::add_node(const std::string& name, bool router) {
  util::require(!routing_final_, "network: topology frozen after routing");
  const node_id id = static_cast<node_id>(nodes_.size());
  nodes_.push_back(std::make_unique<node>(*this, id, name, router));
  return id;
}

node_id network::add_host(const std::string& name) {
  return add_node(name, /*router=*/false);
}

node_id network::add_router(const std::string& name) {
  return add_node(name, /*router=*/true);
}

node* network::get(node_id id) {
  util::require(id >= 0 && id < node_count(), "network::get: bad node id");
  return nodes_[static_cast<std::size_t>(id)].get();
}

const node* network::get(node_id id) const {
  util::require(id >= 0 && id < node_count(), "network::get: bad node id");
  return nodes_[static_cast<std::size_t>(id)].get();
}

std::pair<link*, link*> network::connect(node_id a, node_id b,
                                         const link_config& cfg) {
  return connect(a, b, cfg, cfg);
}

std::pair<link*, link*> network::connect(node_id a, node_id b,
                                         const link_config& ab,
                                         const link_config& ba) {
  util::require(!routing_final_, "network: topology frozen after routing");
  node* na = get(a);
  node* nb = get(b);
  links_.push_back(std::make_unique<link>(sched_, na, nb,
                                          with_link_seed(ab, links_.size())));
  link* fwd = links_.back().get();
  links_.push_back(std::make_unique<link>(sched_, nb, na,
                                          with_link_seed(ba, links_.size())));
  link* rev = links_.back().get();
  fwd->set_reverse(rev);
  rev->set_reverse(fwd);
  na->add_out_link(fwd);
  nb->add_out_link(rev);
  return {fwd, rev};
}

void network::finalize_routing() {
  const int n = node_count();
  next_hop_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                   nullptr);
  // BFS from every destination over reversed edges would be equivalent; we
  // simply BFS from every source (n is small in all scenarios).
  for (node_id src = 0; src < n; ++src) {
    std::vector<link*> first(static_cast<std::size_t>(n), nullptr);
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::queue<node_id> frontier;
    visited[static_cast<std::size_t>(src)] = true;
    frontier.push(src);
    while (!frontier.empty()) {
      const node_id cur = frontier.front();
      frontier.pop();
      for (link* l : get(cur)->out_links()) {
        const node_id nxt = l->to()->id();
        if (visited[static_cast<std::size_t>(nxt)]) continue;
        visited[static_cast<std::size_t>(nxt)] = true;
        first[static_cast<std::size_t>(nxt)] =
            (cur == src) ? l : first[static_cast<std::size_t>(cur)];
        frontier.push(nxt);
      }
    }
    for (node_id dst = 0; dst < n; ++dst) {
      next_hop_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dst)] =
          first[static_cast<std::size_t>(dst)];
    }
  }
  routing_final_ = true;
}

link* network::next_hop(node_id from, node_id to) const {
  util::require(routing_final_, "network: routing not finalized");
  if (from == to) return nullptr;
  const auto n = static_cast<std::size_t>(node_count());
  return next_hop_[static_cast<std::size_t>(from) * n +
                   static_cast<std::size_t>(to)];
}

void network::register_group_source(group_addr g, node_id source_host) {
  group_sources_[g] = source_host;
}

node_id network::group_source(group_addr g) const {
  auto it = group_sources_.find(g);
  return it == group_sources_.end() ? invalid_node : it->second;
}

void network::announce_session(const session_announcement& ann) {
  announcements_[ann.session_id] = ann;
  if (ann.sigma_protected) {
    for (group_addr g : ann.groups) mark_sigma_protected(g);
  }
}

const session_announcement* network::find_session(int session_id) const {
  auto it = announcements_.find(session_id);
  return it == announcements_.end() ? nullptr : &it->second;
}

void network::join_upstream(node_id edge_router, group_addr g) {
  const node_id src = group_source(g);
  util::require(src != invalid_node, "join_upstream: unregistered group",
                g.value);
  // Walk from the edge router toward the source; at each step the upstream
  // node grafts the reverse (downstream-pointing) link after the cumulative
  // join-message propagation delay.
  time_ns elapsed = 0;
  node_id cur = edge_router;
  while (cur != src) {
    link* up = next_hop(cur, src);
    util::require(up != nullptr, "join_upstream: no route to source");
    node* upstream = up->to();
    if (upstream->is_host()) break;  // reached the source host
    elapsed += up->config().delay;
    link* down = up->reverse();
    node_id upstream_id = upstream->id();
    sched_.after(elapsed, [this, upstream_id, g, down] {
      get(upstream_id)->graft(g, down);
    });
    // If the upstream router already forwards this group, the join would be
    // absorbed there in a real network; we still walk up (idempotent grafts)
    // to keep the logic simple and the tree correct.
    cur = upstream_id;
  }
}

void network::leave_upstream(node_id edge_router, group_addr g) {
  const node_id src = group_source(g);
  if (src == invalid_node) return;
  time_ns elapsed = 0;
  node_id cur = edge_router;
  while (cur != src) {
    link* up = next_hop(cur, src);
    if (up == nullptr) return;
    node* upstream = up->to();
    if (upstream->is_host()) break;
    elapsed += up->config().delay;
    link* down = up->reverse();
    node_id upstream_id = upstream->id();
    node_id downstream_id = cur;
    sched_.after(elapsed, [this, upstream_id, downstream_id, g, down] {
      node* u = get(upstream_id);
      // Prune only if the downstream branch has no remaining interest: the
      // downstream node must have no oifs of its own for the group (and no
      // local policy holding it).
      node* d = get(downstream_id);
      if (d->is_router() && d->oif_count(g) > 0) return;
      u->prune(g, down);
    });
    cur = upstream_id;
  }
}

}  // namespace mcc::sim
