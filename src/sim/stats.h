// Measurement helpers: per-receiver throughput monitors and fairness metrics.
#ifndef MCC_SIM_STATS_H
#define MCC_SIM_STATS_H

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "sim/scheduler.h"
#include "sim/time.h"

namespace mcc::sim {

/// Accumulates received bytes into fixed-width time bins; supports averages
/// over intervals and smoothed kbps time series (for figure outputs).
class throughput_monitor {
 public:
  explicit throughput_monitor(scheduler& sched,
                              time_ns bin_width = milliseconds(1000));

  /// Records payload bytes received at the current simulation time.
  void on_bytes(std::int64_t bytes);

  [[nodiscard]] std::int64_t total_bytes() const { return total_; }

  /// Mean goodput in Kbps over [t0, t1).
  [[nodiscard]] double average_kbps(time_ns t0, time_ns t1) const;

  /// Smoothed series: (time seconds, kbps) once per bin, averaged over a
  /// centred window of `window` duration.
  [[nodiscard]] std::vector<std::pair<double, double>> series_kbps(
      time_ns window = milliseconds(5000)) const;

 private:
  scheduler& sched_;
  time_ns bin_width_;
  std::vector<std::int64_t> bins_;
  std::int64_t total_ = 0;
};

/// Jain's fairness index over a set of rates: (sum x)^2 / (n * sum x^2).
[[nodiscard]] double jain_fairness_index(std::span<const double> rates);

/// A subscription-level timeline: one (time, level) entry per change, as
/// recorded by flid_receiver::level_history().
using level_timeline = std::vector<std::pair<time_ns, int>>;

/// Consolidates per-receiver timelines into the branch-visible maximum — the
/// ABR-style point-to-multipoint merge: what a branch carries is the highest
/// level any receiver behind it holds at that instant. A receiver's level is
/// 0 before its first entry. Used by the population layer's conformance
/// contract (an aggregate must reproduce exactly this merge of its members).
[[nodiscard]] level_timeline consolidate_level_timelines(
    const std::vector<const level_timeline*>& timelines);

}  // namespace mcc::sim

#endif  // MCC_SIM_STATS_H
