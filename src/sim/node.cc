#include "sim/node.h"

#include <algorithm>

#include "sim/network.h"

namespace mcc::sim {

node::node(network& net, node_id id, std::string name, bool is_router)
    : net_(net), id_(id), name_(std::move(name)), router_(is_router) {}

void node::remove_agent(agent* a) {
  agents_.erase(std::remove(agents_.begin(), agents_.end(), a), agents_.end());
}

void node::graft(group_addr g, link* oif) { mcast_oifs_[g].insert(oif); }

void node::prune(group_addr g, link* oif) {
  auto it = mcast_oifs_.find(g);
  if (it == mcast_oifs_.end()) return;
  it->second.erase(oif);
  if (it->second.empty()) mcast_oifs_.erase(it);
}

bool node::has_oif(group_addr g, link* oif) const {
  auto it = mcast_oifs_.find(g);
  return it != mcast_oifs_.end() && it->second.contains(oif);
}

const std::set<link*>* node::oifs(group_addr g) const {
  auto it = mcast_oifs_.find(g);
  return it == mcast_oifs_.end() ? nullptr : &it->second;
}

int node::oif_count(group_addr g) const {
  const auto* s = oifs(g);
  return s == nullptr ? 0 : static_cast<int>(s->size());
}

void node::send(packet p) {
  util::require(!out_links_.empty(), "node::send: node has no links");
  p.src = id_;
  if (p.uid == 0) p.uid = net_.new_packet_uid();
  if (p.dst.is_multicast() || p.dst.id == id_) {
    // Multicast packets originate on the access link; hosts are single-homed
    // in all our topologies (routers forward, they do not originate
    // multicast).
    util::require(is_host(), "node::send: only hosts originate multicast");
    out_links_.front()->transmit(std::move(p));
  } else {
    link* l = net_.next_hop(id_, p.dst.id);
    util::require(l != nullptr, "node::send: no route", name_);
    l->transmit(std::move(p));
  }
}

void node::receive(packet p, link* from) {
  if (is_host()) {
    const bool for_us =
        (!p.dst.is_multicast() && p.dst.id == id_) ||
        (p.dst.is_multicast() && host_subscribed(p.dst.group()));
    if (!for_us || p.router_alert) return;  // alert packets never reach hosts
    ++stats_.delivered_local;
    deliver_local(p, from);
    return;
  }
  // Router path.
  if (p.router_alert && alert_interceptor_ != nullptr) {
    alert_interceptor_->handle_packet(p, from);
    // Interception does not consume: the special packet continues along the
    // tree so downstream edge routers receive it too.
  }
  if (!p.dst.is_multicast()) {
    if (p.dst.id == id_) {
      ++stats_.delivered_local;
      deliver_local(p, from);
      return;
    }
    link* l = net_.next_hop(id_, p.dst.id);
    if (l == nullptr) {
      ++stats_.no_route;
      return;
    }
    ++stats_.forwarded_unicast;
    l->transmit(std::move(p));
    return;
  }
  forward(std::move(p), from);
}

void node::deliver_local(const packet& p, link* from) {
  for (agent* a : agents_) {
    if (a->handle_packet(p, from)) return;
  }
}

void node::forward(packet p, link* from) {
  const auto* out = oifs(p.dst.group());
  if (out == nullptr) return;
  // Copy the oif set (into a reused scratch buffer: no per-packet
  // allocation): policy callbacks may trigger grafts/prunes mid-loop.
  fanout_scratch_.assign(out->begin(), out->end());
  for (link* oif : fanout_scratch_) {
    if (oif == nullptr || (from != nullptr && oif == from->reverse())) continue;
    const bool host_facing = oif->to()->is_host();
    if (host_facing) {
      if (p.router_alert) continue;  // never deliver special packets to hosts
      packet branch_copy = p;
      if (policy_ != nullptr && !policy_->allow(branch_copy, oif)) {
        ++stats_.policy_denied;
        continue;
      }
      ++stats_.forwarded_multicast;
      oif->transmit(std::move(branch_copy));
      continue;
    }
    ++stats_.forwarded_multicast;
    oif->transmit(p);  // copy per branch
  }
}

}  // namespace mcc::sim
