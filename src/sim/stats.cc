#include "sim/stats.h"

#include <algorithm>

#include "util/require.h"

namespace mcc::sim {

throughput_monitor::throughput_monitor(scheduler& sched, time_ns bin_width)
    : sched_(sched), bin_width_(bin_width) {
  util::require(bin_width > 0, "throughput_monitor: bad bin width");
}

void throughput_monitor::on_bytes(std::int64_t bytes) {
  const auto bin = static_cast<std::size_t>(sched_.now() / bin_width_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
  bins_[bin] += bytes;
  total_ += bytes;
}

double throughput_monitor::average_kbps(time_ns t0, time_ns t1) const {
  util::require(t1 > t0, "average_kbps: empty interval");
  std::int64_t bytes = 0;
  const auto first = static_cast<std::size_t>(t0 / bin_width_);
  const auto last = static_cast<std::size_t>((t1 - 1) / bin_width_);
  for (std::size_t b = first; b <= last && b < bins_.size(); ++b) {
    bytes += bins_[b];
  }
  const double dur_s = to_seconds(t1 - t0);
  return static_cast<double>(bytes) * 8.0 / dur_s / 1e3;
}

std::vector<std::pair<double, double>> throughput_monitor::series_kbps(
    time_ns window) const {
  std::vector<std::pair<double, double>> out;
  if (bins_.empty()) return out;
  const auto half = std::max<std::int64_t>(window / bin_width_ / 2, 0);
  const auto n = static_cast<std::int64_t>(bins_.size());
  out.reserve(bins_.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - half);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + half);
    std::int64_t bytes = 0;
    for (std::int64_t b = lo; b <= hi; ++b) {
      bytes += bins_[static_cast<std::size_t>(b)];
    }
    const double dur_s = to_seconds((hi - lo + 1) * bin_width_);
    const double t = to_seconds((i * bin_width_) + bin_width_ / 2);
    out.emplace_back(t, static_cast<double>(bytes) * 8.0 / dur_s / 1e3);
  }
  return out;
}

level_timeline consolidate_level_timelines(
    const std::vector<const level_timeline*>& timelines) {
  // Event sweep: gather every change point, process all entries sharing a
  // timestamp together, and emit the running maximum whenever it moves.
  struct change {
    time_ns t;
    std::size_t who;
    int level;
  };
  std::vector<change> changes;
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    util::require(timelines[i] != nullptr,
                  "consolidate_level_timelines: null timeline");
    for (const auto& [t, lvl] : *timelines[i]) changes.push_back({t, i, lvl});
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const change& a, const change& b) { return a.t < b.t; });
  std::vector<int> current(timelines.size(), 0);
  level_timeline out;
  int consolidated = 0;
  for (std::size_t i = 0; i < changes.size();) {
    const time_ns t = changes[i].t;
    for (; i < changes.size() && changes[i].t == t; ++i) {
      current[changes[i].who] = changes[i].level;
    }
    const int max_level =
        current.empty() ? 0 : *std::max_element(current.begin(), current.end());
    if (out.empty() ? max_level != 0 : max_level != consolidated) {
      consolidated = max_level;
      out.emplace_back(t, consolidated);
    }
  }
  return out;
}

double jain_fairness_index(std::span<const double> rates) {
  util::require(!rates.empty(), "jain_fairness_index: no rates");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double r : rates) {
    sum += r;
    sum_sq += r * r;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(rates.size()) * sum_sq);
}

}  // namespace mcc::sim
