#include "sim/stats.h"

#include <algorithm>

#include "util/require.h"

namespace mcc::sim {

throughput_monitor::throughput_monitor(scheduler& sched, time_ns bin_width)
    : sched_(sched), bin_width_(bin_width) {
  util::require(bin_width > 0, "throughput_monitor: bad bin width");
}

void throughput_monitor::on_bytes(std::int64_t bytes) {
  const auto bin = static_cast<std::size_t>(sched_.now() / bin_width_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0);
  bins_[bin] += bytes;
  total_ += bytes;
}

double throughput_monitor::average_kbps(time_ns t0, time_ns t1) const {
  util::require(t1 > t0, "average_kbps: empty interval");
  std::int64_t bytes = 0;
  const auto first = static_cast<std::size_t>(t0 / bin_width_);
  const auto last = static_cast<std::size_t>((t1 - 1) / bin_width_);
  for (std::size_t b = first; b <= last && b < bins_.size(); ++b) {
    bytes += bins_[b];
  }
  const double dur_s = to_seconds(t1 - t0);
  return static_cast<double>(bytes) * 8.0 / dur_s / 1e3;
}

std::vector<std::pair<double, double>> throughput_monitor::series_kbps(
    time_ns window) const {
  std::vector<std::pair<double, double>> out;
  if (bins_.empty()) return out;
  const auto half = std::max<std::int64_t>(window / bin_width_ / 2, 0);
  const auto n = static_cast<std::int64_t>(bins_.size());
  out.reserve(bins_.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t lo = std::max<std::int64_t>(0, i - half);
    const std::int64_t hi = std::min<std::int64_t>(n - 1, i + half);
    std::int64_t bytes = 0;
    for (std::int64_t b = lo; b <= hi; ++b) {
      bytes += bins_[static_cast<std::size_t>(b)];
    }
    const double dur_s = to_seconds((hi - lo + 1) * bin_width_);
    const double t = to_seconds((i * bin_width_) + bin_width_ / 2);
    out.emplace_back(t, static_cast<double>(bytes) * 8.0 / dur_s / 1e3);
  }
  return out;
}

double jain_fairness_index(std::span<const double> rates) {
  util::require(!rates.empty(), "jain_fairness_index: no rates");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double r : rates) {
    sum += r;
    sum_sq += r * r;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(rates.size()) * sum_sq);
}

}  // namespace mcc::sim
