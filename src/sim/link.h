// Unidirectional point-to-point link with serialization delay, propagation
// delay, and a finite queue whose admission/marking/head-drop decisions are
// delegated to a pluggable AQM policy (sim/aqm.h): drop-tail, threshold-ECN,
// RED, or CoDel, selected via link_config::aqm.
//
// The transmit -> propagate chain runs on two per-link pooled timers (one
// serialization timer, one delivery timer) whose callbacks capture only the
// link pointer: packets wait in the link's own queues instead of being moved
// through per-hop closures, so forwarding a packet allocates nothing.
#ifndef MCC_SIM_LINK_H
#define MCC_SIM_LINK_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "obs/trace.h"
#include "sim/aqm.h"
#include "sim/scheduler.h"
#include "sim/wire.h"

namespace mcc::sim {

class node;

struct link_config {
  double bps = 10e6;                      // line rate, bits/second
  time_ns delay = milliseconds(10);       // propagation delay
  std::int64_t queue_capacity_bytes = 0;  // 0 = pick 2 BDP at 100 ms
  aqm_config aqm;                         // queue discipline + parameters
};

/// Per-link counters. Byte-level drop accounting and the queue-occupancy
/// high-watermark let overload scenarios report loss in bytes and peak
/// buffer pressure, not just packet counts. `aqm_dropped` splits policy
/// decisions (RED early drops, CoDel sojourn drops) out of `dropped`, whose
/// remainder is physical tail overflow.
struct link_stats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;      // total: tail overflow + AQM decisions
  std::uint64_t aqm_dropped = 0;  // subset of dropped decided by the policy
  std::uint64_t delivered = 0;
  std::uint64_t ecn_marked = 0;
  std::int64_t bytes_delivered = 0;
  std::int64_t bytes_dropped = 0;
  std::int64_t max_queued_bytes = 0;  // high-watermark of queued_bytes()
};

/// One direction of a wire. Created in pairs by network::connect().
class link {
 public:
  link(scheduler& sched, node* from, node* to, const link_config& cfg);
  link(const link&) = delete;
  link& operator=(const link&) = delete;

  /// Hands a packet to the link for transmission; may drop (queue full or
  /// AQM early drop).
  void transmit(packet p);

  [[nodiscard]] node* from() const { return from_; }
  [[nodiscard]] node* to() const { return to_; }
  [[nodiscard]] link* reverse() const { return reverse_; }
  void set_reverse(link* r) { reverse_ = r; }

  [[nodiscard]] const link_config& config() const { return cfg_; }
  [[nodiscard]] std::int64_t queued_bytes() const { return queued_bytes_; }

  /// The instantiated queue policy (RED's EWMA average lives here).
  [[nodiscard]] const aqm_policy& aqm() const { return *aqm_; }

  /// Time-weighted average of queued_bytes() over [0, now]; the queue-trace
  /// companion of the max_queued_bytes high-watermark.
  [[nodiscard]] double time_avg_queued_bytes(time_ns now) const;

  [[nodiscard]] const link_stats& stats() const { return stats_; }

 private:
  void start_transmission();
  void on_serialized();
  void on_deliver();
  /// Folds the elapsed occupancy into the time-weighted integral; call
  /// immediately before every change of queued_bytes_.
  void account_queue(time_ns now);

  scheduler& sched_;
  node* from_;
  node* to_;
  link* reverse_ = nullptr;
  link_config cfg_;
  std::unique_ptr<aqm_policy> aqm_;
  /// Waiting packets stamped with their arrival time (CoDel sojourn).
  struct queued {
    time_ns enqueued_at;
    packet p;
  };
  std::deque<queued> queue_;
  /// Head-of-line packet currently being serialized (valid while busy_).
  packet serializing_;
  /// Packets in flight on the wire, FIFO by arrival time (the propagation
  /// delay is constant per link).
  struct in_flight {
    time_ns arrive_at;
    packet p;
  };
  std::deque<in_flight> flying_;
  std::int64_t queued_bytes_ = 0;
  bool busy_ = false;
  bool delivery_armed_ = false;
  double queue_byte_ns_ = 0.0;     // integral of queued_bytes over time
  time_ns queue_changed_at_ = 0;   // left edge of the un-integrated interval
  link_stats stats_;
  /// Event-trace sink, captured from obs::current_trace() at construction;
  /// null (every hook one dead branch) unless the world was built inside an
  /// obs::trace_scope.
  obs::trace_buffer* trace_ = nullptr;
  std::uint32_t trace_track_ = 0;
};

}  // namespace mcc::sim

#endif  // MCC_SIM_LINK_H
