// Unidirectional point-to-point link with serialization delay, propagation
// delay, and a finite drop-tail queue (optionally ECN threshold marking).
//
// The transmit -> propagate chain runs on two per-link pooled timers (one
// serialization timer, one delivery timer) whose callbacks capture only the
// link pointer: packets wait in the link's own queues instead of being moved
// through per-hop closures, so forwarding a packet allocates nothing.
#ifndef MCC_SIM_LINK_H
#define MCC_SIM_LINK_H

#include <cstdint>
#include <deque>
#include <string>

#include "sim/scheduler.h"
#include "sim/wire.h"

namespace mcc::sim {

class node;

/// Queueing discipline for the link's output buffer.
enum class qdisc {
  droptail,
  /// Drop-tail + ECN: mark ECN-capable packets when occupancy exceeds
  /// ecn_threshold_fraction of capacity (simplified RED used for the
  /// DELTA ECN variant of paper section 3.1.2).
  ecn_threshold,
};

struct link_config {
  double bps = 10e6;                      // line rate, bits/second
  time_ns delay = milliseconds(10);       // propagation delay
  std::int64_t queue_capacity_bytes = 0;  // 0 = pick 2 BDP at 100 ms
  qdisc discipline = qdisc::droptail;
  double ecn_threshold_fraction = 0.5;
};

/// Per-link counters. Byte-level drop accounting and the queue-occupancy
/// high-watermark let overload scenarios report loss in bytes and peak
/// buffer pressure, not just packet counts.
struct link_stats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t ecn_marked = 0;
  std::int64_t bytes_delivered = 0;
  std::int64_t bytes_dropped = 0;
  std::int64_t max_queued_bytes = 0;  // high-watermark of queued_bytes()
};

/// One direction of a wire. Created in pairs by network::connect().
class link {
 public:
  link(scheduler& sched, node* from, node* to, const link_config& cfg);
  link(const link&) = delete;
  link& operator=(const link&) = delete;

  /// Hands a packet to the link for transmission; may drop (queue full).
  void transmit(packet p);

  [[nodiscard]] node* from() const { return from_; }
  [[nodiscard]] node* to() const { return to_; }
  [[nodiscard]] link* reverse() const { return reverse_; }
  void set_reverse(link* r) { reverse_ = r; }

  [[nodiscard]] const link_config& config() const { return cfg_; }
  [[nodiscard]] std::int64_t queued_bytes() const { return queued_bytes_; }

  [[nodiscard]] const link_stats& stats() const { return stats_; }

 private:
  void start_transmission();
  void on_serialized();
  void on_deliver();

  scheduler& sched_;
  node* from_;
  node* to_;
  link* reverse_ = nullptr;
  link_config cfg_;
  std::deque<packet> queue_;
  /// Head-of-line packet currently being serialized (valid while busy_).
  packet serializing_;
  /// Packets in flight on the wire, FIFO by arrival time (the propagation
  /// delay is constant per link).
  struct in_flight {
    time_ns arrive_at;
    packet p;
  };
  std::deque<in_flight> flying_;
  std::int64_t queued_bytes_ = 0;
  bool busy_ = false;
  bool delivery_armed_ = false;
  link_stats stats_;
};

}  // namespace mcc::sim

#endif  // MCC_SIM_LINK_H
