// Pluggable active-queue-management policies for sim::link.
//
// A link delegates every per-packet queue decision to an aqm_policy: arriving
// packets are offered to on_arrival() (early drop / ECN mark / admit) and the
// head-of-line packet is offered to on_dequeue() just before serialization
// (CoDel's sojourn-time control law lives there). The link keeps one hard
// invariant for every policy — a packet never enters a queue beyond
// queue_capacity_bytes — so a policy only shapes behaviour *below* the
// physical limit and can never overflow the buffer.
//
// Four disciplines ship:
//   * droptail       — no early action; the link's capacity backstop is the
//                      only drop source (the seed simulator's behaviour).
//   * ecn_threshold  — drop-tail + mark ECN-capable packets above a fixed
//                      occupancy fraction (the simplified queue the paper's
//                      DELTA ECN variant runs against, section 3.1.2). Not a
//                      separate class: make_aqm lowers it to degenerate RED
//                      (min_th == max_th, weight 1), whose threshold mode is
//                      bit-equivalent — pure instantaneous-queue marking, no
//                      EWMA, no drops, no RNG draws.
//   * red            — Random Early Detection (Floyd & Jacobson 1993, ns-2
//                      flavour): EWMA average queue, min/max thresholds,
//                      count-based drop probability, optional gentle mode.
//                      Probabilistic decisions come from the link's seeded
//                      PRNG, so runs are bit-reproducible.
//   * codel          — Controlled Delay (Nichols & Jacobson 2012): per-packet
//                      sojourn time against a target, interval-gated entry
//                      into a dropping state whose drops are spaced by
//                      interval / sqrt(count).
//
// All state is per-link and all randomness is seeded, so AQM decisions are
// bit-identical across exp::sweep --jobs counts and across repeated runs.
#ifndef MCC_SIM_AQM_H
#define MCC_SIM_AQM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "crypto/prng.h"
#include "sim/time.h"
#include "sim/wire.h"

namespace mcc::sim {

/// Queueing discipline selector for a link's output buffer.
enum class qdisc {
  droptail,
  ecn_threshold,
  red,
  codel,
};

/// Canonical flag spelling ("droptail", "ecn", "red", "codel").
[[nodiscard]] const char* qdisc_name(qdisc d);
/// Inverse of qdisc_name; also accepts "ecn_threshold". nullopt on unknown.
[[nodiscard]] std::optional<qdisc> qdisc_from_name(const std::string& name);

/// RED parameters. Thresholds may be given in bytes, or left 0 to be derived
/// from the link's queue capacity via the *_fraction fields when the policy
/// is instantiated — so the defaults track whatever capacity the link picked
/// (including the 2-BDP auto-size).
struct red_config {
  std::int64_t min_bytes = 0;  // 0 = min_fraction * capacity
  std::int64_t max_bytes = 0;  // 0 = max_fraction * capacity
  double min_fraction = 0.15;
  double max_fraction = 0.5;
  double max_prob = 0.1;   // max_p: drop probability as avg reaches max_th
  double weight = 0.002;   // EWMA weight w_q
  bool gentle = true;      // ramp to certain drop over [max_th, 2*max_th]
  bool ecn = true;         // mark ECN-capable packets instead of dropping
};

/// CoDel parameters (RFC 8289 defaults).
struct codel_config {
  time_ns target = milliseconds(5);     // acceptable standing sojourn time
  time_ns interval = milliseconds(100); // sliding window for the target
  std::int64_t mtu_bytes = 1500;        // exit dropping below one MTU queued
  bool ecn = true;                      // mark ECN-capable instead of dropping
};

/// Everything a link needs to instantiate its queue policy.
struct aqm_config {
  qdisc discipline = qdisc::droptail;
  /// ecn_threshold: mark ECN-capable packets above this occupancy fraction.
  double ecn_threshold_fraction = 0.5;
  red_config red;
  codel_config codel;
  /// PRNG stream seed for probabilistic policies. The network mixes a
  /// per-link counter into this when the link is created, so links sharing a
  /// config still draw independent (but reproducible) streams.
  std::uint64_t seed = 0;
};

/// Queue occupancy snapshot handed to policy hooks. At on_arrival the packet
/// under decision is NOT yet included; at on_dequeue the departing packet has
/// already been removed (queued_bytes is what remains behind it).
struct aqm_queue_view {
  std::int64_t queued_bytes = 0;
  std::int64_t capacity_bytes = 0;
};

/// Outcome of a policy hook. At arrival: pass = enqueue, mark = enqueue with
/// CE set (only honoured for ECN-capable packets), drop = reject. At
/// dequeue: pass = serialize, mark = serialize with CE set, drop = discard
/// the head packet and consult the policy about the next one.
enum class aqm_decision { pass, mark, drop };

class aqm_policy {
 public:
  virtual ~aqm_policy() = default;

  /// Offered every packet that fits the physical buffer, before it is queued.
  [[nodiscard]] virtual aqm_decision on_arrival(const packet& p,
                                                const aqm_queue_view& q,
                                                time_ns now) = 0;

  /// Offered the head-of-line packet as it leaves the queue for the wire.
  /// `enqueued_at` is the packet's arrival time (sojourn = now - enqueued_at).
  /// Default: deliver untouched (drop-tail, ECN-threshold, RED).
  [[nodiscard]] virtual aqm_decision on_dequeue(const packet& p,
                                                time_ns enqueued_at,
                                                const aqm_queue_view& q,
                                                time_ns now);

  /// Informs the policy of an arrival the link tail-dropped at the physical
  /// capacity backstop (such packets never reach on_arrival). RED keeps its
  /// average-queue estimate and drop count honest here — the Floyd-Jacobson
  /// law updates avg on every arrival, dropped or not. Default: ignore.
  virtual void on_overflow(const packet& p, const aqm_queue_view& q,
                           time_ns now);

  /// The policy's smoothed queue estimate in bytes (RED's EWMA average);
  /// negative when the policy keeps none.
  [[nodiscard]] virtual double smoothed_queue_bytes() const { return -1.0; }

  [[nodiscard]] virtual qdisc kind() const = 0;
};

/// No early action; the link's capacity backstop provides the tail drops.
class droptail_aqm final : public aqm_policy {
 public:
  [[nodiscard]] aqm_decision on_arrival(const packet& p, const aqm_queue_view& q,
                                        time_ns now) override;
  [[nodiscard]] qdisc kind() const override { return qdisc::droptail; }
};

/// Random Early Detection, ns-2 flavour.
///
/// Average queue: avg <- (1-w)*avg + w*q on every arrival; across an idle
/// period the average decays by (1-w)^m where m is the idle time divided by
/// the mean transmission time of a nominal packet.
///
/// Drop law: below min_th nothing drops (count resets); between min_th and
/// max_th the base probability pb = max_p*(avg-min)/(max-min) is corrected by
/// the packets-since-last-drop count, pa = pb/(1 - count*pb), which makes
/// inter-drop gaps uniform on {1..1/pb} (mean gap (1+1/pb)/2, so the
/// steady-state drop rate is 2*pb/(1+pb)); in gentle mode the probability
/// ramps linearly from max_p to 1 over [max_th, 2*max_th]; beyond that every
/// packet drops. ECN-capable packets are marked instead of dropped in the
/// probabilistic regions but still drop in the forced region.
///
/// Threshold mode: with min_th == max_th the policy degenerates to the
/// paper's simplified ECN queue — mark ECN-capable packets whenever the
/// instantaneous queue exceeds the threshold, never drop, keep no average
/// and draw no randomness. kind() reports qdisc::ecn_threshold in that mode
/// so factory round-trips are preserved.
class red_aqm final : public aqm_policy {
 public:
  red_aqm(const red_config& cfg, std::int64_t capacity_bytes, double link_bps,
          std::uint64_t seed);
  [[nodiscard]] aqm_decision on_arrival(const packet& p, const aqm_queue_view& q,
                                        time_ns now) override;
  [[nodiscard]] aqm_decision on_dequeue(const packet& p, time_ns enqueued_at,
                                        const aqm_queue_view& q,
                                        time_ns now) override;
  void on_overflow(const packet& p, const aqm_queue_view& q,
                   time_ns now) override;
  [[nodiscard]] double smoothed_queue_bytes() const override {
    return threshold_mode_ ? -1.0 : avg_;
  }
  [[nodiscard]] qdisc kind() const override {
    return threshold_mode_ ? qdisc::ecn_threshold : qdisc::red;
  }

  [[nodiscard]] std::int64_t min_threshold_bytes() const { return min_th_; }
  [[nodiscard]] std::int64_t max_threshold_bytes() const { return max_th_; }
  /// Base (pre-count-correction) drop probability at a given average queue;
  /// exposed so conformance tests can hand-compute the expected law.
  [[nodiscard]] double base_drop_probability(double avg_bytes) const;

 private:
  void update_average(std::int64_t queued_bytes, time_ns now);

  red_config cfg_;
  std::int64_t min_th_;
  std::int64_t max_th_;
  /// min_th == max_th: pure threshold marking (the lowered ecn_threshold).
  bool threshold_mode_ = false;
  double avg_ = 0.0;
  /// Packets admitted since the last drop/mark (reset below min_th).
  int count_ = 0;
  /// Start of the current idle period, or a negative sentinel while busy.
  time_ns idle_since_ = 0;
  time_ns mean_pkt_time_;
  crypto::prng rng_;
};

/// Controlled Delay. All decisions happen at dequeue: once the head packet's
/// sojourn time has exceeded `target` continuously for `interval`, the policy
/// enters a dropping state and discards (or CE-marks) head packets at times
/// spaced by interval/sqrt(count); it leaves the state as soon as a head
/// packet's sojourn is back under target (or the queue holds less than one
/// MTU). control_law() is public so tests can hand-compute the spacing.
class codel_aqm final : public aqm_policy {
 public:
  explicit codel_aqm(const codel_config& cfg);
  [[nodiscard]] aqm_decision on_arrival(const packet& p, const aqm_queue_view& q,
                                        time_ns now) override;
  [[nodiscard]] aqm_decision on_dequeue(const packet& p, time_ns enqueued_at,
                                        const aqm_queue_view& q,
                                        time_ns now) override;
  [[nodiscard]] qdisc kind() const override { return qdisc::codel; }

  [[nodiscard]] bool dropping() const { return dropping_; }
  [[nodiscard]] int drop_count() const { return count_; }
  /// Next-drop schedule: t + interval / sqrt(count).
  [[nodiscard]] time_ns control_law(time_ns t) const;

 private:
  [[nodiscard]] bool ok_to_drop(time_ns sojourn, const aqm_queue_view& q,
                                time_ns now);

  codel_config cfg_;
  time_ns first_above_time_ = 0;  // 0 = sojourn not continuously above target
  time_ns drop_next_ = 0;
  int count_ = 0;
  int lastcount_ = 0;
  bool dropping_ = false;
};

/// Instantiates the configured policy for a link with the given capacity and
/// rate (RED derives byte thresholds and its idle-decay granularity here).
[[nodiscard]] std::unique_ptr<aqm_policy> make_aqm(const aqm_config& cfg,
                                                   double link_bps,
                                                   std::int64_t capacity_bytes);

}  // namespace mcc::sim

#endif  // MCC_SIM_AQM_H
