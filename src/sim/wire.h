// Wire formats: addresses, protocol headers, and the packet value type.
//
// A simulated packet carries exactly one protocol header (a closed variant,
// mirroring a wire protocol number). Routers forward on addresses and, for
// SIGMA enforcement, on the protocol-independent shim tag only — they never
// parse congestion-control headers (paper Requirement 3).
#ifndef MCC_SIM_WIRE_H
#define MCC_SIM_WIRE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "crypto/key.h"
#include "sim/time.h"

namespace mcc::sim {

/// Immutable shared payload body for variable-length header fields.
///
/// Heavyweight payloads (share lists, FEC shard bytes, subscription pairs)
/// are written once at the sender and only read downstream — routers never
/// mutate them (paper Requirement 3 guarantees enforcement needs no header
/// rewriting). Backing them with a shared immutable vector makes the packet
/// struct copy in O(1): multicast fan-out and link queues bump a refcount
/// instead of deep-copying the body per branch.
template <typename T>
class shared_body {
 public:
  shared_body() = default;
  shared_body(std::vector<T> v)  // NOLINT(google-explicit-constructor)
      : data_(v.empty() ? nullptr
                        : std::make_shared<const std::vector<T>>(std::move(v))) {}
  shared_body(std::initializer_list<T> il) : shared_body(std::vector<T>(il)) {}

  /// The backing vector (a shared static empty vector when unset).
  [[nodiscard]] const std::vector<T>& get() const {
    static const std::vector<T> empty_body;
    return data_ == nullptr ? empty_body : *data_;
  }
  operator const std::vector<T>&() const {  // NOLINT(google-explicit-constructor)
    return get();
  }

  [[nodiscard]] bool empty() const { return data_ == nullptr || data_->empty(); }
  [[nodiscard]] std::size_t size() const {
    return data_ == nullptr ? 0 : data_->size();
  }
  [[nodiscard]] auto begin() const { return get().begin(); }
  [[nodiscard]] auto end() const { return get().end(); }
  const T& operator[](std::size_t i) const { return get()[i]; }
  const T& front() const { return get().front(); }

  /// Number of packet copies sharing this body (0 when unset). Exposed so
  /// fan-out tests can assert that branch copies bump a refcount instead of
  /// deep-copying.
  [[nodiscard]] long use_count() const {
    return data_ == nullptr ? 0 : data_.use_count();
  }

 private:
  std::shared_ptr<const std::vector<T>> data_;
};

/// Identifies a node (host or router).
using node_id = int;
inline constexpr node_id invalid_node = -1;

/// A multicast group address.
struct group_addr {
  int value = 0;
  friend constexpr auto operator<=>(group_addr, group_addr) = default;
};

/// Packet destination: a unicast node or a multicast group.
struct dest {
  enum class kind { unicast, multicast };
  kind k = kind::unicast;
  int id = invalid_node;  // node_id or group_addr::value

  static dest to_node(node_id n) { return dest{kind::unicast, n}; }
  static dest to_group(group_addr g) { return dest{kind::multicast, g.value}; }
  [[nodiscard]] bool is_multicast() const { return k == kind::multicast; }
  [[nodiscard]] group_addr group() const { return group_addr{id}; }
  friend constexpr bool operator==(dest, dest) = default;
};

// ---------------------------------------------------------------------------
// Protocol headers
// ---------------------------------------------------------------------------

/// TCP segment (data or pure ACK). Sequence numbers count segments, not
/// bytes, in the ns-2 style.
struct tcp_segment {
  int flow_id = 0;
  std::int64_t seq = 0;  // segment number of this data packet
  std::int64_t ack = 0;  // next expected segment (cumulative)
  bool is_ack = false;
};

/// Constant-bit-rate payload.
struct cbr_payload {
  int flow_id = 0;
  std::int64_t seq = 0;
};

/// One Shamir share for one subscription level, carried by packets of
/// threshold-based protocols (paper section 3.1.2, "Congested state").
struct level_share {
  std::int32_t level = 0;
  std::uint64_t x = 0;
  std::uint64_t y = 0;
};

/// FLID data packet header, shared by the plain and DELTA-enabled protocol
/// and by the replicated-multicast variant. The component / decrease fields
/// are the DELTA in-band key material (zero for plain FLID-DL).
struct flid_data {
  int session_id = 0;
  int group_index = 0;  // 1-based layer index (1 = minimal group)
  std::int64_t slot = 0;
  int seq_in_slot = 0;
  int packets_in_slot = 0;
  bool last_in_slot = false;
  /// Bit g set = the protocol authorizes an upgrade to group g this slot
  /// (bit 1 is group 1; bit 0 unused).
  std::uint32_t upgrade_auth_mask = 0;
  crypto::group_key component;  // c_{g,p}
  crypto::group_key decrease;   // d_g = delta_{g-1}; meaningful for g >= 2
  bool component_scrubbed = false;  // ECN mode: router invalidated component
  /// Threshold-DELTA share payload: one share of each level the packet's
  /// group belongs to (empty for XOR-based DELTA; the per-packet size cost
  /// is the overhead the paper calls out for threshold schemes).
  shared_body<level_share> level_shares;
};

/// IGMP-style membership report from a host to its edge router.
struct igmp_msg {
  enum class op { join, leave };
  op operation = op::join;
  group_addr group;
};

// --- SIGMA messages (paper Figure 6 and section 3.2) -----------------------

/// One FEC shard of the address-key tuple block for a future slot.
/// Carried in special packets that edge routers intercept (router-alert).
struct sigma_ctrl {
  int session_id = 0;
  std::int64_t emitted_slot = 0;  // slot during which this was sent (s)
  std::int64_t target_slot = 0;   // slot whose keys it carries (s + 2)
  time_ns slot_duration = 0;
  int shard_index = 0;
  int data_shards = 0;   // k
  int total_shards = 0;  // k + m
  std::size_t payload_size = 0;  // pre-FEC byte count
  shared_body<std::uint8_t> shard_bytes;
};

/// Subscription message: address-key pairs for one future slot (Fig. 6b).
struct sigma_subscribe {
  int session_id = 0;
  std::int64_t slot = 0;
  shared_body<std::pair<group_addr, crypto::group_key>> pairs;
  std::uint64_t msg_id = 0;
};

/// Explicit unsubscription (Fig. 6c).
struct sigma_unsubscribe {
  int session_id = 0;
  shared_body<group_addr> groups;
};

/// Session-join: keyless admission to the minimal group (Fig. 6a).
struct sigma_session_join {
  int session_id = 0;
  group_addr minimal_group;
};

/// Edge-router acknowledgment of a subscription message.
struct sigma_ack {
  std::uint64_t msg_id = 0;
};

using header =
    std::variant<std::monostate, tcp_segment, cbr_payload, flid_data, igmp_msg,
                 sigma_ctrl, sigma_subscribe, sigma_unsubscribe,
                 sigma_session_join, sigma_ack>;

/// Protocol-independent shim SIGMA-enabled senders put on multicast data
/// packets; the only per-packet state edge routers consult for enforcement.
struct sigma_tag {
  int session_id = 0;
  std::int64_t slot = 0;
};

/// Out-of-band session directory entry (the role an SDP/session-directory
/// announcement plays for RLM/FLID sessions): how receivers learn group
/// addresses and how SIGMA edge routers learn which groups a protected
/// session owns and which group is minimal (first entry).
struct session_announcement {
  int session_id = 0;
  shared_body<group_addr> groups;  // ordered; minimal group first
  time_ns slot_duration = 0;
  bool sigma_protected = false;
};

// ---------------------------------------------------------------------------
// Packet
// ---------------------------------------------------------------------------

struct packet {
  std::uint64_t uid = 0;
  int size_bytes = 0;
  node_id src = invalid_node;
  dest dst;
  bool router_alert = false;  // intercept at edge routers, never reach hosts
  bool ecn_capable = false;
  bool ecn_marked = false;
  std::optional<sigma_tag> tag;
  header hdr;
};

/// Convenience accessors.
template <typename T>
[[nodiscard]] const T* header_as(const packet& p) {
  return std::get_if<T>(&p.hdr);
}
template <typename T>
[[nodiscard]] T* header_as(packet& p) {
  return std::get_if<T>(&p.hdr);
}

}  // namespace mcc::sim

#endif  // MCC_SIM_WIRE_H
