#include "sim/topology.h"

namespace mcc::sim {

node_id topology::node(const std::string& name) const {
  auto it = ids_.find(name);
  util::require(it != ids_.end(), "topology::node: unknown name", name);
  return it->second;
}

link* topology::between(const std::string& from, const std::string& to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : it->second;
}

link* topology::backbone(int i) const {
  util::require(i >= 0 && i < backbone_count(), "topology::backbone: bad index",
                i);
  return backbone_[static_cast<std::size_t>(i)];
}

topology_builder& topology_builder::add_node(std::string name, bool is_router) {
  nodes_.push_back(node_decl{std::move(name), is_router});
  return *this;
}

topology_builder& topology_builder::router(std::string name) {
  return add_node(std::move(name), /*is_router=*/true);
}

topology_builder& topology_builder::host(std::string name) {
  return add_node(std::move(name), /*is_router=*/false);
}

topology_builder& topology_builder::duplex(std::string a, std::string b,
                                           const link_config& cfg) {
  return duplex(std::move(a), std::move(b), cfg, cfg);
}

topology_builder& topology_builder::duplex(std::string a, std::string b,
                                           const link_config& ab,
                                           const link_config& ba) {
  links_.push_back(link_decl{std::move(a), std::move(b), ab, ba});
  return *this;
}

topology topology_builder::build(network& net) const {
  util::require(!nodes_.empty(), "topology_builder: no nodes declared");
  topology t;
  for (const node_decl& n : nodes_) {
    util::require(!t.ids_.contains(n.name),
                  "topology_builder: duplicate node name", n.name);
    const node_id id =
        n.is_router ? net.add_router(n.name) : net.add_host(n.name);
    t.ids_[n.name] = id;
    if (n.is_router) t.routers_.push_back(n.name);
  }
  for (const link_decl& l : links_) {
    util::require(t.ids_.contains(l.a), "topology_builder: undeclared endpoint",
                  l.a);
    util::require(t.ids_.contains(l.b), "topology_builder: undeclared endpoint",
                  l.b);
    util::require(l.a != l.b, "topology_builder: self-loop link", l.a);
    std::string pair = l.a;
    pair.append("-").append(l.b);
    util::require(!t.links_.contains({l.a, l.b}),
                  "topology_builder: duplicate link", pair);
    auto [fwd, rev] = net.connect(t.ids_[l.a], t.ids_[l.b], l.ab, l.ba);
    t.links_[{l.a, l.b}] = fwd;
    t.links_[{l.b, l.a}] = rev;
    t.backbone_.push_back(fwd);
  }
  return t;
}

topology_builder dumbbell(const link_config& bottleneck) {
  topology_builder b;
  b.router("l").router("r").duplex("l", "r", bottleneck);
  return b;
}

topology_builder parking_lot(int bottlenecks, const link_config& bottleneck) {
  util::require(bottlenecks >= 1, "parking_lot: need at least one bottleneck",
                bottlenecks);
  topology_builder b;
  for (int i = 0; i <= bottlenecks; ++i) b.router("r" + std::to_string(i));
  for (int i = 0; i < bottlenecks; ++i) {
    b.duplex("r" + std::to_string(i), "r" + std::to_string(i + 1), bottleneck);
  }
  return b;
}

topology_builder star(int spokes, const link_config& spoke) {
  util::require(spokes >= 1, "star: need at least one spoke", spokes);
  topology_builder b;
  b.router("hub");
  for (int i = 1; i <= spokes; ++i) {
    const std::string name = "s" + std::to_string(i);
    b.router(name);
    b.duplex("hub", name, spoke);
  }
  return b;
}

topology_builder balanced_tree(int depth, int fanout, const link_config& edge) {
  util::require(depth >= 1, "balanced_tree: need depth >= 1", depth);
  util::require(fanout >= 2, "balanced_tree: need fanout >= 2", fanout);
  topology_builder b;
  b.router("root");
  // Level d has fanout^d routers "t<d>_<i>"; node i's parent is node i/fanout
  // one level up ("root" at level 0).
  std::vector<std::string> parents = {"root"};
  for (int d = 1; d <= depth; ++d) {
    std::vector<std::string> level;
    for (int i = 0; i < static_cast<int>(parents.size()) * fanout; ++i) {
      const std::string name =
          "t" + std::to_string(d) + "_" + std::to_string(i);
      b.router(name);
      b.duplex(parents[static_cast<std::size_t>(i / fanout)], name, edge);
      level.push_back(name);
    }
    parents = std::move(level);
  }
  return b;
}

}  // namespace mcc::sim
