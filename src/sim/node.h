// Nodes: hosts (protocol endpoints) and routers (forwarding + group tables).
//
// Routers forward unicast packets via the network's static next-hop tables
// and multicast packets via their per-group outgoing-interface sets. A
// pluggable access policy on host-facing interfaces is the hook SIGMA
// implements; plain IGMP corresponds to "no policy" (always allow).
#ifndef MCC_SIM_NODE_H
#define MCC_SIM_NODE_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/wire.h"

namespace mcc::sim {

class network;

/// A protocol endpoint or router management component.
class agent {
 public:
  virtual ~agent() = default;
  /// Returns true if the packet was consumed by this agent.
  virtual bool handle_packet(const packet& p, link* arrival) = 0;
};

/// Decides whether a multicast data packet may be forwarded onto a
/// host-facing interface of an edge router (SIGMA implements this). The
/// packet reference is the per-branch copy: the policy may mutate it (the
/// DELTA ECN variant scrubs component fields of marked packets).
class access_policy {
 public:
  virtual ~access_policy() = default;
  virtual bool allow(packet& p, link* oif) = 0;
};

class node {
 public:
  node(network& net, node_id id, std::string name, bool is_router);
  node(const node&) = delete;
  node& operator=(const node&) = delete;

  [[nodiscard]] node_id id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool is_router() const { return router_; }
  [[nodiscard]] bool is_host() const { return !router_; }

  /// Entry point for packets arriving from a link (nullptr = locally injected).
  void receive(packet p, link* from);

  /// Hosts: originates a packet (unicast routing or multicast via the access
  /// link). Hosts have exactly one outgoing link.
  void send(packet p);

  // --- agents ---------------------------------------------------------------
  void add_agent(agent* a) { agents_.push_back(a); }
  void remove_agent(agent* a);
  /// Router-alert packets are offered to this agent at routers (SIGMA control
  /// interception) before tree forwarding continues.
  void set_alert_interceptor(agent* a) { alert_interceptor_ = a; }
  void set_access_policy(access_policy* p) { policy_ = p; }

  // --- host multicast subscription -------------------------------------------
  void host_join(group_addr g) { local_groups_.insert(g); }
  void host_leave(group_addr g) { local_groups_.erase(g); }
  [[nodiscard]] bool host_subscribed(group_addr g) const {
    return local_groups_.contains(g);
  }

  // --- router multicast forwarding state -------------------------------------
  void graft(group_addr g, link* oif);
  void prune(group_addr g, link* oif);
  [[nodiscard]] bool has_oif(group_addr g, link* oif) const;
  [[nodiscard]] const std::set<link*>* oifs(group_addr g) const;
  /// Number of outgoing interfaces currently grafted for the group.
  [[nodiscard]] int oif_count(group_addr g) const;

  // --- wiring (used by network) ----------------------------------------------
  void add_out_link(link* l) { out_links_.push_back(l); }
  [[nodiscard]] const std::vector<link*>& out_links() const { return out_links_; }

  struct counters {
    std::uint64_t forwarded_unicast = 0;
    std::uint64_t forwarded_multicast = 0;
    std::uint64_t policy_denied = 0;
    std::uint64_t delivered_local = 0;
    std::uint64_t no_route = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

 private:
  void deliver_local(const packet& p, link* from);
  void forward(packet p, link* from);

  network& net_;
  node_id id_;
  std::string name_;
  bool router_;
  std::vector<agent*> agents_;
  agent* alert_interceptor_ = nullptr;
  access_policy* policy_ = nullptr;
  std::set<group_addr> local_groups_;
  std::map<group_addr, std::set<link*>> mcast_oifs_;
  std::vector<link*> out_links_;
  /// Reused multicast fan-out snapshot (packet delivery is never synchronous,
  /// so forward() cannot re-enter while the loop runs).
  std::vector<link*> fanout_scratch_;
  counters stats_;
};

}  // namespace mcc::sim

#endif  // MCC_SIM_NODE_H
