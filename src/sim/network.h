// The network: owns nodes and links, computes static shortest-path routing,
// and manages source-rooted multicast trees (graft/prune propagation with
// per-hop latency).
//
// Join/leave propagation mutates router group tables directly after the
// appropriate per-hop delays instead of simulating router-to-router IGMP
// packets; the paper assumes trusted, correctly-functioning routers, so only
// the latency of tree maintenance matters for the experiments.
#ifndef MCC_SIM_NETWORK_H
#define MCC_SIM_NETWORK_H

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/node.h"
#include "sim/scheduler.h"

namespace mcc::sim {

class network {
 public:
  explicit network(scheduler& sched) : sched_(sched) {}
  network(const network&) = delete;
  network& operator=(const network&) = delete;

  scheduler& sched() { return sched_; }

  // --- topology ---------------------------------------------------------------
  node_id add_host(const std::string& name);
  node_id add_router(const std::string& name);
  [[nodiscard]] node* get(node_id id);
  [[nodiscard]] const node* get(node_id id) const;
  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }

  /// Creates a duplex link (two unidirectional links with the same config).
  std::pair<link*, link*> connect(node_id a, node_id b, const link_config& cfg);
  /// Creates a duplex link with asymmetric configs (a->b uses `ab`).
  std::pair<link*, link*> connect(node_id a, node_id b, const link_config& ab,
                                  const link_config& ba);

  /// All unidirectional links in creation order (connect() appends two).
  /// Deterministic iteration order, so metric views registered per link
  /// snapshot in the same order on every run.
  [[nodiscard]] const std::vector<std::unique_ptr<link>>& links() const {
    return links_;
  }

  /// Computes all-pairs next-hop tables. Must be called after topology is
  /// final and before traffic starts.
  void finalize_routing();
  [[nodiscard]] link* next_hop(node_id from, node_id to) const;

  // --- multicast --------------------------------------------------------------
  /// Declares the (single) source host of a group (EXPRESS-style channels).
  void register_group_source(group_addr g, node_id source_host);
  [[nodiscard]] node_id group_source(group_addr g) const;

  /// Grafts the tree from the edge router toward the group's source, hop by
  /// hop, charging each hop's propagation delay (join message latency).
  void join_upstream(node_id edge_router, group_addr g);
  /// Prunes the edge router's branch; interior branches are removed as their
  /// oif sets drain.
  void leave_upstream(node_id edge_router, group_addr g);

  /// Marks a group as guarded by SIGMA: edge routers must refuse plain IGMP
  /// joins for it (paper section 3.2.3, incremental deployment).
  void mark_sigma_protected(group_addr g) { sigma_protected_.insert(g); }
  [[nodiscard]] bool is_sigma_protected(group_addr g) const {
    return sigma_protected_.contains(g);
  }

  /// Publishes a session announcement (out-of-band directory). Marks all the
  /// session's groups protected when the announcement says so.
  void announce_session(const session_announcement& ann);
  /// Returns the announcement or nullptr if the session is unknown.
  [[nodiscard]] const session_announcement* find_session(int session_id) const;

  std::uint64_t new_packet_uid() { return ++uid_counter_; }

 private:
  node_id add_node(const std::string& name, bool router);

  scheduler& sched_;
  std::vector<std::unique_ptr<node>> nodes_;
  std::vector<std::unique_ptr<link>> links_;
  // next_hop_[src * n + dst] = first link on the shortest path (hop count).
  std::vector<link*> next_hop_;
  bool routing_final_ = false;
  std::map<group_addr, node_id> group_sources_;
  std::set<group_addr> sigma_protected_;
  std::map<int, session_announcement> announcements_;
  std::uint64_t uid_counter_ = 0;
};

}  // namespace mcc::sim

#endif  // MCC_SIM_NETWORK_H
