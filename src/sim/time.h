// Simulation time: integer nanoseconds for exact determinism.
#ifndef MCC_SIM_TIME_H
#define MCC_SIM_TIME_H

#include <cstdint>

namespace mcc::sim {

/// Absolute simulation time / duration in nanoseconds.
using time_ns = std::int64_t;

constexpr time_ns nanoseconds(std::int64_t n) { return n; }
constexpr time_ns microseconds(std::int64_t us) { return us * 1'000; }
constexpr time_ns milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr time_ns seconds(double s) {
  return static_cast<time_ns>(s * 1e9);
}

constexpr double to_seconds(time_ns t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_millis(time_ns t) { return static_cast<double>(t) * 1e-6; }

/// Transmission (serialization) time of `bytes` at `bits_per_second`.
constexpr time_ns transmission_time(int bytes, double bits_per_second) {
  return static_cast<time_ns>(static_cast<double>(bytes) * 8.0 /
                              bits_per_second * 1e9);
}

}  // namespace mcc::sim

#endif  // MCC_SIM_TIME_H
