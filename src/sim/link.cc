#include "sim/link.h"

#include <algorithm>

#include "sim/node.h"

namespace mcc::sim {

namespace {
constexpr std::int64_t default_queue_bytes(double bps) {
  // Two bandwidth-delay products at a nominal 100 ms RTT.
  return static_cast<std::int64_t>(2.0 * bps * 0.1 / 8.0);
}
}  // namespace

link::link(scheduler& sched, node* from, node* to, const link_config& cfg)
    : sched_(sched), from_(from), to_(to), cfg_(cfg) {
  util::require(cfg_.bps > 0, "link: rate must be positive");
  util::require(cfg_.delay >= 0, "link: negative propagation delay");
  if (cfg_.queue_capacity_bytes <= 0) {
    cfg_.queue_capacity_bytes = default_queue_bytes(cfg_.bps);
  }
}

void link::transmit(packet p) {
  if (queued_bytes_ + p.size_bytes > cfg_.queue_capacity_bytes) {
    ++stats_.dropped;
    stats_.bytes_dropped += p.size_bytes;
    return;
  }
  if (cfg_.discipline == qdisc::ecn_threshold && p.ecn_capable &&
      static_cast<double>(queued_bytes_) >
          cfg_.ecn_threshold_fraction *
              static_cast<double>(cfg_.queue_capacity_bytes)) {
    p.ecn_marked = true;
    ++stats_.ecn_marked;
  }
  ++stats_.enqueued;
  queued_bytes_ += p.size_bytes;
  stats_.max_queued_bytes = std::max(stats_.max_queued_bytes, queued_bytes_);
  queue_.push_back(std::move(p));
  if (!busy_) start_transmission();
}

void link::start_transmission() {
  util::require(!queue_.empty(), "link: transmission with empty queue");
  busy_ = true;
  serializing_ = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= serializing_.size_bytes;
  const time_ns tx = transmission_time(serializing_.size_bytes, cfg_.bps);
  sched_.after(tx, [this] { on_serialized(); });
}

void link::on_serialized() {
  ++stats_.delivered;
  stats_.bytes_delivered += serializing_.size_bytes;
  // The packet starts propagating while the link head becomes free for the
  // next packet.
  flying_.push_back(
      in_flight{sched_.now() + cfg_.delay, std::move(serializing_)});
  if (!delivery_armed_) {
    delivery_armed_ = true;
    sched_.at(flying_.back().arrive_at, [this] { on_deliver(); });
  }
  if (!queue_.empty()) {
    start_transmission();
  } else {
    busy_ = false;
  }
}

void link::on_deliver() {
  util::require(!flying_.empty(), "link: delivery with nothing in flight");
  packet p = std::move(flying_.front().p);
  flying_.pop_front();
  if (!flying_.empty()) {
    sched_.at(flying_.front().arrive_at, [this] { on_deliver(); });
  } else {
    delivery_armed_ = false;
  }
  to_->receive(std::move(p), this);
}

}  // namespace mcc::sim
