#include "sim/link.h"

#include <algorithm>

#include "sim/node.h"

namespace mcc::sim {

namespace {
constexpr std::int64_t default_queue_bytes(double bps) {
  // Two bandwidth-delay products at a nominal 100 ms RTT.
  return static_cast<std::int64_t>(2.0 * bps * 0.1 / 8.0);
}
}  // namespace

link::link(scheduler& sched, node* from, node* to, const link_config& cfg)
    : sched_(sched), from_(from), to_(to), cfg_(cfg) {
  util::require(cfg_.bps > 0, "link: rate must be positive");
  util::require(cfg_.delay >= 0, "link: negative propagation delay");
  if (cfg_.queue_capacity_bytes <= 0) {
    cfg_.queue_capacity_bytes = default_queue_bytes(cfg_.bps);
  }
  util::require(cfg_.queue_capacity_bytes > 0,
                "link: queue capacity auto-size produced no room (rate too "
                "low for the 2-BDP default)");
  aqm_ = make_aqm(cfg_.aqm, cfg_.bps, cfg_.queue_capacity_bytes);
  if ((trace_ = obs::current_trace()) != nullptr) {
    trace_track_ = trace_->track("link:" + from_->name() + ">" + to_->name());
  }
}

void link::account_queue(time_ns now) {
  queue_byte_ns_ += static_cast<double>(queued_bytes_) *
                    static_cast<double>(now - queue_changed_at_);
  queue_changed_at_ = now;
}

double link::time_avg_queued_bytes(time_ns now) const {
  if (now <= 0) return 0.0;
  const double integral =
      queue_byte_ns_ + static_cast<double>(queued_bytes_) *
                           static_cast<double>(now - queue_changed_at_);
  return integral / static_cast<double>(now);
}

void link::transmit(packet p) {
  const time_ns now = sched_.now();
  const aqm_queue_view view{queued_bytes_, cfg_.queue_capacity_bytes};
  // Physical backstop for every policy: a packet never enters a queue beyond
  // capacity. Policies shape behaviour below this limit but still observe
  // the overflow arrival (RED's average must track the full queue).
  if (queued_bytes_ + p.size_bytes > cfg_.queue_capacity_bytes) {
    aqm_->on_overflow(p, view, now);
    ++stats_.dropped;
    stats_.bytes_dropped += p.size_bytes;
    if (trace_ != nullptr) {
      trace_->record(now, obs::trace_event::packet_drop, trace_track_,
                     static_cast<std::uint64_t>(p.size_bytes), 0);
    }
    return;
  }
  switch (aqm_->on_arrival(p, view, now)) {
    case aqm_decision::drop:
      ++stats_.dropped;
      ++stats_.aqm_dropped;
      stats_.bytes_dropped += p.size_bytes;
      if (trace_ != nullptr) {
        trace_->record(now, obs::trace_event::packet_drop, trace_track_,
                       static_cast<std::uint64_t>(p.size_bytes), 1);
      }
      return;
    case aqm_decision::mark:
      if (p.ecn_capable && !p.ecn_marked) {
        p.ecn_marked = true;
        ++stats_.ecn_marked;
        if (trace_ != nullptr) {
          trace_->record(now, obs::trace_event::packet_mark, trace_track_,
                         static_cast<std::uint64_t>(p.size_bytes), 0);
        }
      }
      break;
    case aqm_decision::pass:
      break;
  }
  ++stats_.enqueued;
  account_queue(now);
  queued_bytes_ += p.size_bytes;
  stats_.max_queued_bytes = std::max(stats_.max_queued_bytes, queued_bytes_);
  if (trace_ != nullptr) {
    trace_->record(now, obs::trace_event::packet_enqueue, trace_track_,
                   static_cast<std::uint64_t>(p.size_bytes),
                   static_cast<std::uint64_t>(queued_bytes_));
  }
  queue_.push_back(queued{now, std::move(p)});
  if (!busy_) start_transmission();
}

void link::start_transmission() {
  const time_ns now = sched_.now();
  while (!queue_.empty()) {
    queued qp = std::move(queue_.front());
    queue_.pop_front();
    account_queue(now);
    queued_bytes_ -= qp.p.size_bytes;
    const aqm_queue_view view{queued_bytes_, cfg_.queue_capacity_bytes};
    switch (aqm_->on_dequeue(qp.p, qp.enqueued_at, view, now)) {
      case aqm_decision::drop:
        // CoDel sojourn drop: discard the head and consult the policy about
        // the next packet.
        ++stats_.dropped;
        ++stats_.aqm_dropped;
        stats_.bytes_dropped += qp.p.size_bytes;
        if (trace_ != nullptr) {
          trace_->record(now, obs::trace_event::packet_drop, trace_track_,
                         static_cast<std::uint64_t>(qp.p.size_bytes), 2);
        }
        continue;
      case aqm_decision::mark:
        if (qp.p.ecn_capable && !qp.p.ecn_marked) {
          qp.p.ecn_marked = true;
          ++stats_.ecn_marked;
          if (trace_ != nullptr) {
            trace_->record(now, obs::trace_event::packet_mark, trace_track_,
                           static_cast<std::uint64_t>(qp.p.size_bytes), 1);
          }
        }
        break;
      case aqm_decision::pass:
        break;
    }
    busy_ = true;
    serializing_ = std::move(qp.p);
    const time_ns tx = transmission_time(serializing_.size_bytes, cfg_.bps);
    sched_.after(tx, [this] { on_serialized(); });
    return;
  }
  busy_ = false;
}

void link::on_serialized() {
  ++stats_.delivered;
  stats_.bytes_delivered += serializing_.size_bytes;
  // The packet starts propagating while the link head becomes free for the
  // next packet.
  flying_.push_back(
      in_flight{sched_.now() + cfg_.delay, std::move(serializing_)});
  if (!delivery_armed_) {
    delivery_armed_ = true;
    sched_.at(flying_.back().arrive_at, [this] { on_deliver(); });
  }
  start_transmission();
}

void link::on_deliver() {
  util::require(!flying_.empty(), "link: delivery with nothing in flight");
  packet p = std::move(flying_.front().p);
  flying_.pop_front();
  if (!flying_.empty()) {
    sched_.at(flying_.front().arrive_at, [this] { on_deliver(); });
  } else {
    delivery_armed_ = false;
  }
  if (trace_ != nullptr) {
    trace_->record(sched_.now(), obs::trace_event::packet_deliver,
                   trace_track_, static_cast<std::uint64_t>(p.size_bytes),
                   p.uid);
  }
  to_->receive(std::move(p), this);
}

}  // namespace mcc::sim
