#include "sim/aqm.h"

#include <algorithm>
#include <cmath>

namespace mcc::sim {

const char* qdisc_name(qdisc d) {
  switch (d) {
    case qdisc::droptail: return "droptail";
    case qdisc::ecn_threshold: return "ecn";
    case qdisc::red: return "red";
    case qdisc::codel: return "codel";
  }
  return "?";
}

std::optional<qdisc> qdisc_from_name(const std::string& name) {
  if (name == "droptail") return qdisc::droptail;
  if (name == "ecn" || name == "ecn_threshold") return qdisc::ecn_threshold;
  if (name == "red") return qdisc::red;
  if (name == "codel") return qdisc::codel;
  return std::nullopt;
}

aqm_decision aqm_policy::on_dequeue(const packet&, time_ns,
                                    const aqm_queue_view&, time_ns) {
  return aqm_decision::pass;
}

void aqm_policy::on_overflow(const packet&, const aqm_queue_view&, time_ns) {}

// --- droptail ---------------------------------------------------------------

aqm_decision droptail_aqm::on_arrival(const packet&, const aqm_queue_view&,
                                      time_ns) {
  return aqm_decision::pass;
}

// --- RED --------------------------------------------------------------------

red_aqm::red_aqm(const red_config& cfg, std::int64_t capacity_bytes,
                 double link_bps, std::uint64_t seed)
    : cfg_(cfg),
      min_th_(cfg.min_bytes > 0
                  ? cfg.min_bytes
                  : static_cast<std::int64_t>(
                        cfg.min_fraction * static_cast<double>(capacity_bytes))),
      max_th_(cfg.max_bytes > 0
                  ? cfg.max_bytes
                  : static_cast<std::int64_t>(
                        cfg.max_fraction * static_cast<double>(capacity_bytes))),
      // Idle decay granularity: the transmission time of a nominal packet,
      // the "typical" departure spacing of ns-2's m = idle / s estimate.
      mean_pkt_time_(std::max<time_ns>(1, transmission_time(500, link_bps))),
      rng_(seed) {
  threshold_mode_ = min_th_ == max_th_;
  if (threshold_mode_) {
    util::require(min_th_ >= 0, "red: need min_th >= 0");
  } else {
    util::require(min_th_ > 0 && min_th_ < max_th_,
                  "red: need 0 < min_th < max_th");
  }
  util::require(cfg_.max_prob > 0.0 && cfg_.max_prob <= 1.0,
                "red: max_prob out of (0,1]");
  util::require(cfg_.weight > 0.0 && cfg_.weight <= 1.0,
                "red: weight out of (0,1]");
}

double red_aqm::base_drop_probability(double avg_bytes) const {
  const auto min_d = static_cast<double>(min_th_);
  const auto max_d = static_cast<double>(max_th_);
  if (avg_bytes < min_d) return 0.0;
  if (avg_bytes < max_d) {
    return cfg_.max_prob * (avg_bytes - min_d) / (max_d - min_d);
  }
  if (cfg_.gentle && avg_bytes < 2.0 * max_d) {
    return cfg_.max_prob + (1.0 - cfg_.max_prob) * (avg_bytes - max_d) / max_d;
  }
  return 1.0;
}

void red_aqm::update_average(std::int64_t queued_bytes, time_ns now) {
  if (queued_bytes == 0 && idle_since_ >= 0) {
    // The queue sat empty: decay the average as if m small packets had
    // departed during the idle period.
    const double m = static_cast<double>(now - idle_since_) /
                     static_cast<double>(mean_pkt_time_);
    avg_ *= std::pow(1.0 - cfg_.weight, m);
  } else {
    avg_ = (1.0 - cfg_.weight) * avg_ +
           cfg_.weight * static_cast<double>(queued_bytes);
  }
  idle_since_ = -1;  // an arrival always ends the idle period
}

void red_aqm::on_overflow(const packet&, const aqm_queue_view& q,
                          time_ns now) {
  if (threshold_mode_) return;  // no average to keep honest
  // A forced tail drop is still an arrival: the average keeps tracking the
  // (full) queue and the inter-drop count restarts, exactly as if RED itself
  // had dropped the packet.
  update_average(q.queued_bytes, now);
  count_ = 0;
}

aqm_decision red_aqm::on_arrival(const packet& p, const aqm_queue_view& q,
                                 time_ns now) {
  if (threshold_mode_) {
    // Lowered ecn_threshold: mark ECN-capable packets whenever the
    // instantaneous queue is above the threshold; never drop, keep no
    // average and draw no randomness (the legacy policy's exact behaviour,
    // golden-digest pinned).
    if (cfg_.ecn && p.ecn_capable && q.queued_bytes > min_th_) {
      return aqm_decision::mark;
    }
    return aqm_decision::pass;
  }
  update_average(q.queued_bytes, now);

  if (avg_ < static_cast<double>(min_th_)) {
    count_ = 0;
    return aqm_decision::pass;
  }
  const double pb = base_drop_probability(avg_);
  if (pb >= 1.0) {
    // Forced region: drop regardless of ECN capability.
    count_ = 0;
    return aqm_decision::drop;
  }
  // count_ = packets admitted since the last drop/mark: the first packet
  // after a drop sees pa = pb, the next pb/(1-pb), ..., which makes the
  // inter-drop gap uniform on {1..floor(1/pb)} (Floyd & Jacobson 1993).
  const double cpb = static_cast<double>(count_) * pb;
  ++count_;
  const double pa = cpb >= 1.0 ? 1.0 : pb / (1.0 - cpb);
  if (rng_.uniform() < pa) {
    count_ = 0;
    return cfg_.ecn && p.ecn_capable ? aqm_decision::mark : aqm_decision::drop;
  }
  return aqm_decision::pass;
}

aqm_decision red_aqm::on_dequeue(const packet&, time_ns,
                                 const aqm_queue_view& q, time_ns now) {
  // Only bookkeeping: remember when the queue drains so the next arrival can
  // decay the average over the idle gap.
  if (q.queued_bytes == 0) idle_since_ = now;
  return aqm_decision::pass;
}

// --- CoDel ------------------------------------------------------------------

codel_aqm::codel_aqm(const codel_config& cfg) : cfg_(cfg) {
  util::require(cfg_.target > 0 && cfg_.interval > 0,
                "codel: target and interval must be positive");
}

time_ns codel_aqm::control_law(time_ns t) const {
  return t + static_cast<time_ns>(
                 static_cast<double>(cfg_.interval) /
                 std::sqrt(static_cast<double>(std::max(count_, 1))));
}

bool codel_aqm::ok_to_drop(time_ns sojourn, const aqm_queue_view& q,
                           time_ns now) {
  if (sojourn < cfg_.target || q.queued_bytes < cfg_.mtu_bytes) {
    first_above_time_ = 0;
    return false;
  }
  if (first_above_time_ == 0) {
    first_above_time_ = now + cfg_.interval;
    return false;
  }
  return now >= first_above_time_;
}

aqm_decision codel_aqm::on_arrival(const packet&, const aqm_queue_view&,
                                   time_ns) {
  return aqm_decision::pass;
}

aqm_decision codel_aqm::on_dequeue(const packet& p, time_ns enqueued_at,
                                   const aqm_queue_view& q, time_ns now) {
  const time_ns sojourn = now - enqueued_at;
  const bool ok = ok_to_drop(sojourn, q, now);
  if (dropping_) {
    if (!ok) {
      dropping_ = false;
      return aqm_decision::pass;
    }
    if (now >= drop_next_) {
      ++count_;
      drop_next_ = control_law(drop_next_);
      return cfg_.ecn && p.ecn_capable ? aqm_decision::mark
                                       : aqm_decision::drop;
    }
    return aqm_decision::pass;
  }
  if (ok) {
    dropping_ = true;
    // Re-entering shortly after the last dropping episode resumes near the
    // previous drop rate instead of restarting from one drop per interval.
    const int delta = count_ - lastcount_;
    count_ = (delta > 1 && now - drop_next_ < 16 * cfg_.interval) ? delta : 1;
    drop_next_ = control_law(now);
    lastcount_ = count_;
    return cfg_.ecn && p.ecn_capable ? aqm_decision::mark : aqm_decision::drop;
  }
  return aqm_decision::pass;
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<aqm_policy> make_aqm(const aqm_config& cfg, double link_bps,
                                     std::int64_t capacity_bytes) {
  switch (cfg.discipline) {
    case qdisc::droptail:
      return std::make_unique<droptail_aqm>();
    case qdisc::ecn_threshold: {
      util::require(
          cfg.ecn_threshold_fraction >= 0.0 && cfg.ecn_threshold_fraction <= 1.0,
          "ecn_threshold: fraction out of [0,1]");
      // Lower to degenerate RED (min = max, weight 1): its threshold mode is
      // bit-equivalent to the old standalone ecn_threshold policy.
      red_config ecn;
      ecn.min_fraction = cfg.ecn_threshold_fraction;
      ecn.max_fraction = cfg.ecn_threshold_fraction;
      ecn.weight = 1.0;
      ecn.ecn = true;
      return std::make_unique<red_aqm>(ecn, capacity_bytes, link_bps, cfg.seed);
    }
    case qdisc::red:
      return std::make_unique<red_aqm>(cfg.red, capacity_bytes, link_bps,
                                       cfg.seed);
    case qdisc::codel:
      return std::make_unique<codel_aqm>(cfg.codel);
  }
  util::require(false, "make_aqm: unknown discipline");
  return nullptr;
}

}  // namespace mcc::sim
