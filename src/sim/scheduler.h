// Discrete-event scheduler: a time-ordered queue of callbacks.
//
// Events at equal timestamps fire in scheduling order (FIFO tie-break via a
// monotone sequence number) so runs are deterministic.
//
// The hot path is allocation-lean: callbacks live in a slab of pooled slots
// (recycled through a free list, addressed by generation-counted handles) and
// the priority queue orders small POD entries that point into the slab.
// Scheduling or cancelling an event allocates nothing once the slab and the
// queue have warmed up; callables that fit event_fn's inline buffer never
// touch the allocator at all.
//
// Two queue policies sit behind the same interface (scheduler_config):
//
//   heap   4-ary min-heap of POD entries — O(log n) schedule/pop, the
//          conservative default.
//   wheel  hierarchical timer wheel (calendar queue) — O(1) amortized
//          schedule/cancel into fixed-width buckets, an overflow far wheel
//          that cascades on rollover, and a (when, seq)-ordered due heap that
//          restores exact fire order within one bucket. Both policies fire
//          the identical (when, seq) total order, so traces are bit-for-bit
//          equal; the wheel wins once pending counts are large (>100k).
#ifndef MCC_SIM_SCHEDULER_H
#define MCC_SIM_SCHEDULER_H

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/require.h"

namespace mcc::sim {

/// Event-queue policy of a scheduler.
enum class sched_policy { heap, wheel };

[[nodiscard]] constexpr const char* sched_policy_name(sched_policy p) {
  return p == sched_policy::heap ? "heap" : "wheel";
}

/// Parses a policy name; nullopt for anything else (callers own the
/// friendly-error UX, like qdisc_from_name).
[[nodiscard]] inline std::optional<sched_policy> sched_policy_from_name(
    const std::string& name) {
  if (name == "heap") return sched_policy::heap;
  if (name == "wheel") return sched_policy::wheel;
  return std::nullopt;
}

struct scheduler_config {
  sched_policy policy = sched_policy::heap;
  /// Level-0 bucket width of the wheel, rounded up to a power of two.
  /// The default (~1 us) is sized from the slot clock of the simulated
  /// protocols: packet serializations are microseconds, FLID slots hundreds
  /// of milliseconds, so level 0 separates per-packet timers while slot
  /// ticks park in the upper levels until they cascade.
  time_ns wheel_granularity = 1024;
};

/// Move-only type-erased `void()` callable with inline small-buffer storage.
/// Callables up to `inline_size` bytes are stored in place; larger ones fall
/// back to one heap allocation. Simulator-internal events (link timers,
/// protocol slot ticks) capture a pointer and a few scalars and stay inline.
class event_fn {
 public:
  static constexpr std::size_t inline_size = 48;

  event_fn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, event_fn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  event_fn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= inline_size &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = heap_ops<D>();
    }
  }

  event_fn(event_fn&& other) noexcept { move_from(other); }
  event_fn& operator=(event_fn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  event_fn(const event_fn&) = delete;
  event_fn& operator=(const event_fn&) = delete;
  ~event_fn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct vtable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static const vtable* inline_ops() {
    static constexpr vtable t{
        [](void* b) { (*std::launder(reinterpret_cast<D*>(b)))(); },
        [](void* dst, void* src) {
          D* s = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* b) { std::launder(reinterpret_cast<D*>(b))->~D(); }};
    return &t;
  }

  template <typename D>
  static const vtable* heap_ops() {
    static constexpr vtable t{
        [](void* b) { (**std::launder(reinterpret_cast<D**>(b)))(); },
        [](void* dst, void* src) {
          ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
        },
        [](void* b) { delete *std::launder(reinterpret_cast<D**>(b)); }};
    return &t;
  }

  void move_from(event_fn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[inline_size];
  const vtable* ops_ = nullptr;
};

namespace detail {

/// One slab slot: the callable plus the generation counter that invalidates
/// stale handles when the slot is recycled.
struct event_slot {
  std::uint32_t gen = 0;
  bool cancelled = false;
  event_fn fn;
};

/// The slab. Handles hold a weak_ptr to it so they stay safe (inert) after
/// the owning scheduler is destroyed; the weak_ptr copy is a refcount bump,
/// not an allocation — the control block is one per scheduler, not per event.
struct event_pool {
  std::vector<event_slot> slots;
  std::vector<std::uint32_t> free_list;
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert, and handles may outlive the scheduler.
class event_handle {
 public:
  event_handle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto p = pool_.lock()) {
      detail::event_slot& s = p->slots[slot_];
      if (s.gen == gen_) {
        s.cancelled = true;
        // Free the captured state now rather than when the dead entry is
        // eventually popped at its deadline.
        s.fn.reset();
      }
    }
    pool_.reset();
  }

  /// True if the handle still refers to a pending, uncancelled event.
  [[nodiscard]] bool pending() const {
    auto p = pool_.lock();
    if (p == nullptr) return false;
    const detail::event_slot& s = p->slots[slot_];
    return s.gen == gen_ && !s.cancelled;
  }

 private:
  friend class scheduler;
  event_handle(std::weak_ptr<detail::event_pool> pool, std::uint32_t slot,
               std::uint32_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::weak_ptr<detail::event_pool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event queue. All simulation modules share one scheduler.
class scheduler {
 public:
  explicit scheduler(scheduler_config cfg = {})
      : cfg_(cfg), pool_(std::make_shared<detail::event_pool>()) {
    pool_->slots.reserve(1024);
    pool_->free_list.reserve(1024);
    heap_.reserve(1024);
    if (cfg_.policy == sched_policy::wheel) {
      util::require(cfg_.wheel_granularity > 0,
                    "scheduler: wheel granularity must be positive");
      gran_bits_ = std::bit_width(
          static_cast<std::uint64_t>(cfg_.wheel_granularity) - 1);
      // Cap so the far-wheel span arithmetic cannot overflow time_ns.
      util::require(gran_bits_ + kWheelLevels * kWheelBits <= 60,
                    "scheduler: wheel granularity too coarse");
      wheel_ = std::make_unique<wheel_state>();
    }
  }
  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  [[nodiscard]] time_ns now() const { return now_; }
  [[nodiscard]] sched_policy policy() const { return cfg_.policy; }

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  event_handle at(time_ns when, event_fn fn) {
    util::require(when >= now_, "scheduler: event scheduled in the past");
    std::uint32_t idx;
    if (!pool_->free_list.empty()) {
      idx = pool_->free_list.back();
      pool_->free_list.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(pool_->slots.size());
      pool_->slots.emplace_back();
    }
    detail::event_slot& slot = pool_->slots[idx];
    slot.cancelled = false;
    slot.fn = std::move(fn);
    const entry e{when, next_seq_++, idx};
    if (wheel_ != nullptr) {
      wheel_push(e);
    } else {
      heap_push(e);
    }
    const std::size_t pending = heap_.size() + wheel_count_;
    if (pending > max_pending_) max_pending_ = pending;
    return event_handle(pool_, idx, slot.gen);
  }

  /// Schedules `fn` after a relative delay.
  event_handle after(time_ns delay, event_fn fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or simulated time would pass `until`.
  /// Leaves now() == until when the horizon is reached.
  void run_until(time_ns until) {
    entry top;
    while (pop_next(until, top)) {
      event_fn fn = release_slot(top.slot);
      if (!fn) continue;  // cancelled
      now_ = top.when;
      executed_++;
      fn();
    }
    if (now_ < until) now_ = until;
  }

  /// Runs until the queue is empty.
  void run() {
    entry top;
    while (pop_next(std::numeric_limits<time_ns>::max(), top)) {
      event_fn fn = release_slot(top.slot);
      if (!fn) continue;  // cancelled
      now_ = top.when;
      executed_++;
      fn();
    }
  }

  /// Pending entries, cancelled-but-not-yet-reaped ones included (identical
  /// accounting under both policies).
  [[nodiscard]] std::size_t pending_events() const {
    return heap_.size() + wheel_count_;
  }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  /// High-watermark of pending_events() over the run (sampled at schedule
  /// time — the only place the count grows).
  [[nodiscard]] std::size_t max_pending_events() const { return max_pending_; }
  /// Slab-pool high-water mark: slots are recycled through a free list and
  /// never shrink, so the slab size is the peak distinct-pending footprint.
  [[nodiscard]] std::size_t slots_high_water() const {
    return pool_->slots.size();
  }

  /// Deterministic self-profiling snapshot (pure reads — never perturbs the
  /// queue). `wheel_occupied[l]` is the number of occupied level-l buckets
  /// (empty vector under the heap policy); `far_entries` counts the overflow
  /// far wheel.
  struct profile {
    std::uint64_t executed = 0;
    std::size_t pending = 0;
    std::size_t max_pending = 0;
    std::size_t slots_high_water = 0;
    std::vector<std::size_t> wheel_occupied;
    std::size_t far_entries = 0;
  };
  [[nodiscard]] profile profile_now() const {
    profile p;
    p.executed = executed_;
    p.pending = pending_events();
    p.max_pending = max_pending_;
    p.slots_high_water = pool_->slots.size();
    if (wheel_ != nullptr) {
      p.wheel_occupied.resize(kWheelLevels, 0);
      for (int l = 0; l < kWheelLevels; ++l) {
        const wheel_level& lv = wheel_->level[static_cast<std::size_t>(l)];
        std::size_t occupied = 0;
        for (const std::uint64_t word : lv.occupied) {
          occupied += static_cast<std::size_t>(std::popcount(word));
        }
        p.wheel_occupied[static_cast<std::size_t>(l)] = occupied;
      }
      p.far_entries = far_.size();
    }
    return p;
  }

 private:
  struct entry {
    time_ns when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool before(const entry& a, const entry& b) {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }

  /// Pops the globally least (when, seq) entry with when <= limit into `out`;
  /// false when nothing that early is pending.
  bool pop_next(time_ns limit, entry& out) {
    if (wheel_ != nullptr && heap_.empty() && !wheel_advance(limit)) {
      return false;
    }
    if (heap_.empty() || heap_.front().when > limit) return false;
    out = heap_pop();
    return true;
  }

  // 4-ary min-heap of small POD entries: half the sift depth of a binary
  // heap and hole-based sifting (no swaps), which is what makes large
  // pending sets cheap.
  void heap_push(entry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  entry heap_pop() {
    const entry top = heap_.front();
    const entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      const std::size_t n = heap_.size();
      std::size_t i = 0;
      for (;;) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  /// Takes the callable out of a popped slot and recycles the slot (bumping
  /// its generation so stale handles go inert). Returns an empty event_fn if
  /// the event was cancelled. The slot is recycled *before* the callable
  /// runs, so callbacks may freely schedule new events.
  event_fn release_slot(std::uint32_t idx) {
    detail::event_slot& slot = pool_->slots[idx];
    event_fn fn;
    if (!slot.cancelled) fn = std::move(slot.fn);
    slot.fn.reset();
    slot.cancelled = false;
    ++slot.gen;
    pool_->free_list.push_back(idx);
    return fn;
  }

  // --- timer wheel -----------------------------------------------------------
  //
  // Hierarchy: kWheelLevels levels of kWheelBuckets fixed-width buckets.
  // Level l buckets are (granularity << l*kWheelBits) wide, so one full
  // rotation of level l covers exactly one bucket of level l+1. Binning is
  // absolute, not delta-based: an entry lives at the lowest level whose
  // current rotation window around horizon_ contains its deadline — the
  // lowest l where `when` and horizon_ agree on every bit above
  // level_shift(l+1). Within a rotation later deadlines have larger bucket
  // indices, so scans never wrap and a bucket never mixes rotations. Events
  // beyond the top level's rotation wait in the far wheel (`far_`) and
  // cascade in once the horizon enters their rotation. `horizon_` (always
  // granularity-aligned) splits the timeline: entries with when < horizon_
  // sit in the due heap (`heap_`, ordered by (when, seq) — the
  // deterministic intra-bucket order), entries with when >= horizon_ sit in
  // a bucket or the far wheel. Draining always picks the earliest bucket
  // window across levels, cascading upper levels before level 0 on ties, so
  // no entry is ever passed over: the pop order equals the heap policy's
  // order exactly. Cascades first advance the horizon to the drained
  // window, after which each entry agrees with the horizon one level
  // deeper — strict descent, so advancing terminates.

  static constexpr int kWheelBits = 8;  // 256 buckets per level
  static constexpr std::size_t kWheelBuckets = std::size_t{1} << kWheelBits;
  static constexpr int kWheelLevels = 4;

  struct wheel_level {
    std::array<std::vector<entry>, kWheelBuckets> bucket;
    std::array<std::uint64_t, kWheelBuckets / 64> occupied{};
  };
  struct wheel_state {
    std::array<wheel_level, kWheelLevels> level;
  };

  [[nodiscard]] int level_shift(int level) const {
    return gran_bits_ + level * kWheelBits;
  }
  [[nodiscard]] time_ns level_width(int level) const {
    return time_ns{1} << level_shift(level);
  }
  void wheel_push(const entry& e) {
    if (e.when < horizon_) {
      // Already inside the drained window: the due heap keeps exact order.
      heap_push(e);
      return;
    }
    const auto when = static_cast<std::uint64_t>(e.when);
    const auto hor = static_cast<std::uint64_t>(horizon_);
    int level = 0;
    while (level < kWheelLevels &&
           (when >> level_shift(level + 1)) !=
               (hor >> level_shift(level + 1))) {
      ++level;
    }
    ++wheel_count_;
    if (level == kWheelLevels) {
      far_.push_back(e);
      if (e.when < far_min_) far_min_ = e.when;
      return;
    }
    const std::size_t idx = (when >> level_shift(level)) & (kWheelBuckets - 1);
    wheel_level& lv = wheel_->level[static_cast<std::size_t>(level)];
    lv.bucket[idx].push_back(e);
    lv.occupied[idx / 64] |= std::uint64_t{1} << (idx % 64);
  }

  /// First occupied bucket of `lv` at index >= `from` (absolute binning
  /// never wraps within a rotation); -1 when none remain this rotation.
  static int next_occupied(const wheel_level& lv, std::size_t from) {
    std::size_t word = from / 64;
    const std::uint64_t bits = lv.occupied[word] >> (from % 64);
    if (bits != 0) return static_cast<int>(from) + std::countr_zero(bits);
    for (++word; word < kWheelBuckets / 64; ++word) {
      if (lv.occupied[word] != 0) {
        return static_cast<int>(word * 64) +
               std::countr_zero(lv.occupied[word]);
      }
    }
    return -1;
  }

  /// Advances the wheel until the due heap holds the next event, draining
  /// buckets in window order (upper levels cascade first on equal windows)
  /// and cascading the far wheel on rollover. Returns false when no pending
  /// event has when <= limit (the due heap stays empty); never advances the
  /// horizon past a still-bucketed entry.
  bool wheel_advance(time_ns limit) {
    const int top_shift = level_shift(kWheelLevels);
    for (;;) {
      // Earliest non-empty bucket window across levels; ties prefer the
      // highest level so its entries cascade down before level 0 fires.
      int best_level = -1;
      std::size_t best_idx = 0;
      time_ns best_ws = 0;
      const auto hor = static_cast<std::uint64_t>(horizon_);
      for (int l = kWheelLevels - 1; l >= 0; --l) {
        const wheel_level& lv = wheel_->level[static_cast<std::size_t>(l)];
        const std::size_t at = (hor >> level_shift(l)) & (kWheelBuckets - 1);
        const int idx = next_occupied(lv, at);
        if (idx < 0) continue;
        const time_ns ws = (horizon_ & ~(level_width(l + 1) - 1)) +
                           static_cast<time_ns>(idx) * level_width(l);
        if (best_level < 0 || ws < best_ws) {
          best_level = l;
          best_idx = static_cast<std::size_t>(idx);
          best_ws = ws;
        }
      }

      if (!far_.empty()) {
        if (best_level < 0) {
          // Wheels empty: jump straight to the earliest far entry's granule
          // and re-bucket whatever shares its top-level rotation.
          horizon_ = std::max(horizon_,
                              far_min_ & ~((time_ns{1} << gran_bits_) - 1));
          cascade_far();
          continue;
        }
        if ((static_cast<std::uint64_t>(far_min_) >> top_shift) ==
            (hor >> top_shift)) {
          // Rollover: the horizon entered the earliest far entry's rotation,
          // so it belongs in the wheels and must compete in window order.
          cascade_far();
          continue;
        }
      }
      if (best_level < 0) return false;
      if (best_ws > limit) return false;

      wheel_level& lv = wheel_->level[static_cast<std::size_t>(best_level)];
      std::vector<entry>& bucket = lv.bucket[best_idx];
      lv.occupied[best_idx / 64] &= ~(std::uint64_t{1} << (best_idx % 64));
      drained_.swap(bucket);  // reuse one scratch vector, keep bucket's slab
      if (best_level == 0) {
        horizon_ = best_ws + level_width(0);
        wheel_count_ -= drained_.size();
        for (const entry& e : drained_) heap_push(e);
        drained_.clear();
        if (!heap_.empty()) return true;
        continue;  // unreachable in practice: an occupied bucket is nonempty
      }
      // Cascade: advance the horizon to the drained window first (it is the
      // earliest pending window, so nothing is skipped); its entries then
      // agree with the horizon one level deeper and strictly descend.
      horizon_ = std::max(horizon_, best_ws);
      wheel_count_ -= drained_.size();
      for (const entry& e : drained_) wheel_push(e);
      drained_.clear();
    }
  }

  /// Moves every far entry whose top-level rotation the horizon has reached
  /// into the wheels and recomputes the far minimum.
  void cascade_far() {
    const int top_shift = level_shift(kWheelLevels);
    const std::uint64_t rotation =
        static_cast<std::uint64_t>(horizon_) >> top_shift;
    std::size_t kept = 0;
    far_min_ = std::numeric_limits<time_ns>::max();
    for (entry& e : far_) {
      if ((static_cast<std::uint64_t>(e.when) >> top_shift) == rotation) {
        --wheel_count_;  // wheel_push re-counts it
        wheel_push(e);
      } else {
        if (e.when < far_min_) far_min_ = e.when;
        far_[kept++] = e;
      }
    }
    far_.resize(kept);
  }

  scheduler_config cfg_;
  time_ns now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t max_pending_ = 0;  // high-water mark of pending_events()
  std::shared_ptr<detail::event_pool> pool_;
  /// Heap policy: the whole queue. Wheel policy: the due heap — entries
  /// with when < horizon_, ordered by (when, seq).
  std::vector<entry> heap_;
  std::unique_ptr<wheel_state> wheel_;  // null under the heap policy
  std::size_t wheel_count_ = 0;         // entries in buckets + far wheel
  time_ns horizon_ = 0;                 // granularity-aligned drain point
  int gran_bits_ = 0;
  std::vector<entry> far_;
  time_ns far_min_ = std::numeric_limits<time_ns>::max();
  std::vector<entry> drained_;  // scratch for bucket drains
};

}  // namespace mcc::sim

#endif  // MCC_SIM_SCHEDULER_H
