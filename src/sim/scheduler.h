// Discrete-event scheduler: a time-ordered queue of callbacks.
//
// Events at equal timestamps fire in scheduling order (FIFO tie-break via a
// monotone sequence number) so runs are deterministic.
//
// The hot path is allocation-lean: callbacks live in a slab of pooled slots
// (recycled through a free list, addressed by generation-counted handles) and
// the priority queue orders small POD entries that point into the slab.
// Scheduling or cancelling an event allocates nothing once the slab and the
// heap have warmed up; callables that fit event_fn's inline buffer never
// touch the allocator at all.
#ifndef MCC_SIM_SCHEDULER_H
#define MCC_SIM_SCHEDULER_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"
#include "util/require.h"

namespace mcc::sim {

/// Move-only type-erased `void()` callable with inline small-buffer storage.
/// Callables up to `inline_size` bytes are stored in place; larger ones fall
/// back to one heap allocation. Simulator-internal events (link timers,
/// protocol slot ticks) capture a pointer and a few scalars and stay inline.
class event_fn {
 public:
  static constexpr std::size_t inline_size = 48;

  event_fn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, event_fn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  event_fn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= inline_size &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = heap_ops<D>();
    }
  }

  event_fn(event_fn&& other) noexcept { move_from(other); }
  event_fn& operator=(event_fn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  event_fn(const event_fn&) = delete;
  event_fn& operator=(const event_fn&) = delete;
  ~event_fn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct vtable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename D>
  static const vtable* inline_ops() {
    static constexpr vtable t{
        [](void* b) { (*std::launder(reinterpret_cast<D*>(b)))(); },
        [](void* dst, void* src) {
          D* s = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* b) { std::launder(reinterpret_cast<D*>(b))->~D(); }};
    return &t;
  }

  template <typename D>
  static const vtable* heap_ops() {
    static constexpr vtable t{
        [](void* b) { (**std::launder(reinterpret_cast<D**>(b)))(); },
        [](void* dst, void* src) {
          ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
        },
        [](void* b) { delete *std::launder(reinterpret_cast<D**>(b)); }};
    return &t;
  }

  void move_from(event_fn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[inline_size];
  const vtable* ops_ = nullptr;
};

namespace detail {

/// One slab slot: the callable plus the generation counter that invalidates
/// stale handles when the slot is recycled.
struct event_slot {
  std::uint32_t gen = 0;
  bool cancelled = false;
  event_fn fn;
};

/// The slab. Handles hold a weak_ptr to it so they stay safe (inert) after
/// the owning scheduler is destroyed; the weak_ptr copy is a refcount bump,
/// not an allocation — the control block is one per scheduler, not per event.
struct event_pool {
  std::vector<event_slot> slots;
  std::vector<std::uint32_t> free_list;
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert, and handles may outlive the scheduler.
class event_handle {
 public:
  event_handle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto p = pool_.lock()) {
      detail::event_slot& s = p->slots[slot_];
      if (s.gen == gen_) {
        s.cancelled = true;
        // Free the captured state now rather than when the dead entry is
        // eventually popped at its deadline.
        s.fn.reset();
      }
    }
    pool_.reset();
  }

  /// True if the handle still refers to a pending, uncancelled event.
  [[nodiscard]] bool pending() const {
    auto p = pool_.lock();
    if (p == nullptr) return false;
    const detail::event_slot& s = p->slots[slot_];
    return s.gen == gen_ && !s.cancelled;
  }

 private:
  friend class scheduler;
  event_handle(std::weak_ptr<detail::event_pool> pool, std::uint32_t slot,
               std::uint32_t gen)
      : pool_(std::move(pool)), slot_(slot), gen_(gen) {}

  std::weak_ptr<detail::event_pool> pool_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event queue. All simulation modules share one scheduler.
class scheduler {
 public:
  scheduler() : pool_(std::make_shared<detail::event_pool>()) {
    pool_->slots.reserve(1024);
    pool_->free_list.reserve(1024);
    heap_.reserve(1024);
  }
  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  [[nodiscard]] time_ns now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  event_handle at(time_ns when, event_fn fn) {
    util::require(when >= now_, "scheduler: event scheduled in the past");
    std::uint32_t idx;
    if (!pool_->free_list.empty()) {
      idx = pool_->free_list.back();
      pool_->free_list.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(pool_->slots.size());
      pool_->slots.emplace_back();
    }
    detail::event_slot& slot = pool_->slots[idx];
    slot.cancelled = false;
    slot.fn = std::move(fn);
    heap_push(entry{when, next_seq_++, idx});
    return event_handle(pool_, idx, slot.gen);
  }

  /// Schedules `fn` after a relative delay.
  event_handle after(time_ns delay, event_fn fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or simulated time would pass `until`.
  /// Leaves now() == until when the horizon is reached.
  void run_until(time_ns until) {
    while (!heap_.empty()) {
      if (heap_.front().when > until) break;
      const entry top = heap_pop();
      event_fn fn = release_slot(top.slot);
      if (!fn) continue;  // cancelled
      now_ = top.when;
      executed_++;
      fn();
    }
    if (now_ < until) now_ = until;
  }

  /// Runs until the queue is empty.
  void run() {
    while (!heap_.empty()) {
      const entry top = heap_pop();
      event_fn fn = release_slot(top.slot);
      if (!fn) continue;  // cancelled
      now_ = top.when;
      executed_++;
      fn();
    }
  }

  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct entry {
    time_ns when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool before(const entry& a, const entry& b) {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }

  // 4-ary min-heap of small POD entries: half the sift depth of a binary
  // heap and hole-based sifting (no swaps), which is what makes large
  // pending sets cheap.
  void heap_push(entry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  entry heap_pop() {
    const entry top = heap_.front();
    const entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      const std::size_t n = heap_.size();
      std::size_t i = 0;
      for (;;) {
        const std::size_t first_child = 4 * i + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  /// Takes the callable out of a popped slot and recycles the slot (bumping
  /// its generation so stale handles go inert). Returns an empty event_fn if
  /// the event was cancelled. The slot is recycled *before* the callable
  /// runs, so callbacks may freely schedule new events.
  event_fn release_slot(std::uint32_t idx) {
    detail::event_slot& slot = pool_->slots[idx];
    event_fn fn;
    if (!slot.cancelled) fn = std::move(slot.fn);
    slot.fn.reset();
    slot.cancelled = false;
    ++slot.gen;
    pool_->free_list.push_back(idx);
    return fn;
  }

  time_ns now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::shared_ptr<detail::event_pool> pool_;
  std::vector<entry> heap_;
};

}  // namespace mcc::sim

#endif  // MCC_SIM_SCHEDULER_H
