// Discrete-event scheduler: a time-ordered queue of callbacks.
//
// Events at equal timestamps fire in scheduling order (FIFO tie-break via a
// monotone sequence number) so runs are deterministic.
#ifndef MCC_SIM_SCHEDULER_H
#define MCC_SIM_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"
#include "util/require.h"

namespace mcc::sim {

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert.
class event_handle {
 public:
  event_handle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto rec = record_.lock()) *rec = true;
    record_.reset();
  }

  /// True if the handle still refers to a pending, uncancelled event.
  [[nodiscard]] bool pending() const {
    auto rec = record_.lock();
    return rec != nullptr && !*rec;
  }

 private:
  friend class scheduler;
  explicit event_handle(std::weak_ptr<bool> record) : record_(std::move(record)) {}
  std::weak_ptr<bool> record_;  // points at the "cancelled" flag
};

/// The event queue. All simulation modules share one scheduler.
class scheduler {
 public:
  scheduler() = default;
  scheduler(const scheduler&) = delete;
  scheduler& operator=(const scheduler&) = delete;

  [[nodiscard]] time_ns now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  event_handle at(time_ns when, std::function<void()> fn) {
    util::require(when >= now_, "scheduler: event scheduled in the past");
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(entry{when, next_seq_++, std::move(fn), cancelled});
    return event_handle(cancelled);
  }

  /// Schedules `fn` after a relative delay.
  event_handle after(time_ns delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or simulated time would pass `until`.
  /// Leaves now() == until when the horizon is reached.
  void run_until(time_ns until) {
    while (!queue_.empty()) {
      const entry& top = queue_.top();
      if (top.when > until) break;
      if (*top.cancelled) {
        queue_.pop();
        continue;
      }
      entry current = top;  // copy out before pop invalidates the reference
      queue_.pop();
      now_ = current.when;
      executed_++;
      current.fn();
    }
    if (now_ < until) now_ = until;
  }

  /// Runs until the queue is empty.
  void run() {
    while (!queue_.empty()) {
      entry current = queue_.top();
      queue_.pop();
      if (*current.cancelled) continue;
      now_ = current.when;
      executed_++;
      current.fn();
    }
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct entry {
    time_ns when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  time_ns now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<entry, std::vector<entry>, later> queue_;
};

}  // namespace mcc::sim

#endif  // MCC_SIM_SCHEDULER_H
