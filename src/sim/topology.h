// Declarative topology layer: describe a backbone of named routers (and
// optionally hosts) joined by duplex links, then instantiate it into a
// sim::network. Experiments attach endpoints to the named routers afterwards,
// so topology, attachment, and measurement stay independent layers.
//
// Named factories cover the standard shapes of the multicast congestion
// control literature:
//   * dumbbell()        - the single-bottleneck setup of paper section 5.1;
//   * parking_lot(k)    - k bottlenecks in series, the classic
//                         multi-bottleneck fairness topology;
//   * star(n)           - one hub with n spoke routers;
//   * balanced_tree(d,f)- a distribution tree of depth d and fanout f, the
//                         natural shape of a point-to-multipoint session.
#ifndef MCC_SIM_TOPOLOGY_H
#define MCC_SIM_TOPOLOGY_H

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/network.h"

namespace mcc::sim {

/// A topology instantiated into a network: name -> node lookup plus the
/// backbone links in declaration order.
class topology {
 public:
  /// Node id for a declared name; throws on unknown names.
  [[nodiscard]] node_id node(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const {
    return ids_.contains(name);
  }

  /// The directed link from `from` to `to`, or nullptr if the pair was never
  /// declared (either declaration order matches: a duplex link yields both).
  [[nodiscard]] link* between(const std::string& from,
                              const std::string& to) const;

  /// Declared router names in declaration order.
  [[nodiscard]] const std::vector<std::string>& routers() const {
    return routers_;
  }

  /// Forward direction of the i-th declared duplex link. For the factories
  /// this is the i-th backbone link: the dumbbell's bottleneck is
  /// backbone(0); parking_lot(k)'s bottlenecks are backbone(0..k-1).
  [[nodiscard]] link* backbone(int i = 0) const;
  [[nodiscard]] int backbone_count() const {
    return static_cast<int>(backbone_.size());
  }

 private:
  friend class topology_builder;

  std::map<std::string, node_id> ids_;
  std::map<std::pair<std::string, std::string>, link*> links_;
  std::vector<std::string> routers_;
  std::vector<link*> backbone_;
};

/// Declarative builder: records named nodes and duplex links, then build()
/// instantiates them into a network (in declaration order, so identical
/// declarations produce identical node ids and deterministic simulations).
class topology_builder {
 public:
  topology_builder& router(std::string name);
  topology_builder& host(std::string name);

  /// Declares a duplex link (two unidirectional links sharing `cfg`).
  topology_builder& duplex(std::string a, std::string b,
                           const link_config& cfg);
  /// Declares a duplex link with asymmetric configs (a->b uses `ab`).
  topology_builder& duplex(std::string a, std::string b, const link_config& ab,
                           const link_config& ba);

  /// Instantiates the description into `net`. Validates that names are
  /// unique and that every link endpoint was declared.
  [[nodiscard]] topology build(network& net) const;

  [[nodiscard]] bool empty() const { return nodes_.empty(); }

 private:
  struct node_decl {
    std::string name;
    bool is_router;
  };
  struct link_decl {
    std::string a;
    std::string b;
    link_config ab;
    link_config ba;
  };

  topology_builder& add_node(std::string name, bool is_router);

  std::vector<node_decl> nodes_;
  std::vector<link_decl> links_;
};

// ---------------------------------------------------------------------------
// Named topology factories
// ---------------------------------------------------------------------------

/// Routers "l" and "r" joined by one bottleneck (paper section 5.1). Sender
/// hosts conventionally attach at "l", receivers at "r".
[[nodiscard]] topology_builder dumbbell(const link_config& bottleneck);

/// Routers "r0" .. "r<k>" in a chain: k bottlenecks in series. A session
/// from "r0" to "r<k>" crosses every bottleneck; cross traffic between
/// adjacent routers loads exactly one.
[[nodiscard]] topology_builder parking_lot(int bottlenecks,
                                           const link_config& bottleneck);

/// Router "hub" with spoke routers "s1" .. "s<n>", each behind its own
/// hub-spoke link.
[[nodiscard]] topology_builder star(int spokes, const link_config& spoke);

/// Balanced distribution tree: root router "root"; depth-d routers named
/// "t<d>_<i>" for i in [0, fanout^d). Leaves ("t<depth>_<i>") are the edge
/// routers where receivers attach; the source conventionally sits at "root".
[[nodiscard]] topology_builder balanced_tree(int depth, int fanout,
                                             const link_config& edge);

}  // namespace mcc::sim

#endif  // MCC_SIM_TOPOLOGY_H
