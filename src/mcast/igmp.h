// IGMP-style group membership at edge routers, and the host-side client.
//
// This models the paper's baseline world: IGMP "does not restrict the
// ability of receivers to subscribe to multicast groups" — any join for any
// known group address is honoured. The single restriction implemented here is
// the SIGMA deployment rule of paper section 3.2.3: an edge router that runs
// SIGMA refuses plain IGMP joins for SIGMA-protected groups.
#ifndef MCC_MCAST_IGMP_H
#define MCC_MCAST_IGMP_H

#include <cstdint>

#include "sim/network.h"

namespace mcc::mcast {

/// Edge-router agent handling igmp_msg join/leave from local interfaces.
class igmp_agent : public sim::agent {
 public:
  igmp_agent(sim::network& net, sim::node_id router);

  bool handle_packet(const sim::packet& p, sim::link* arrival) override;

  /// Programmatic join/leave on behalf of a local interface (used by SIGMA,
  /// which performs its own validation and then drives the same tree logic).
  void join(sim::group_addr g, sim::link* host_iface);
  void leave(sim::group_addr g, sim::link* host_iface);

  struct counters {
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    std::uint64_t refused_protected = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

 private:
  sim::network& net_;
  sim::node_id router_;
  counters stats_;
};

/// Host-side membership client: updates local subscription state and sends
/// IGMP messages to the edge router.
class membership_client {
 public:
  membership_client(sim::network& net, sim::node_id host, sim::node_id router);

  void join(sim::group_addr g);
  void leave(sim::group_addr g);

  [[nodiscard]] sim::node_id router() const { return router_; }

  /// Messages this client has sent — the per-receiver control-plane spend in
  /// the plain world (the edge agent's counters aggregate all interfaces, so
  /// they cannot attribute cost to one receiver).
  struct counters {
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    /// Wire bytes of every message sent — the plain world's control-plane
    /// byte spend (adversary::attacker_cost prices bytes, not just messages).
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] const counters& stats() const { return stats_; }

  /// Size of an IGMP control packet on the wire.
  static constexpr int igmp_packet_bytes = 40;

 private:
  void send(sim::igmp_msg::op op, sim::group_addr g);

  sim::network& net_;
  sim::node_id host_;
  sim::node_id router_;
  counters stats_;
};

}  // namespace mcc::mcast

#endif  // MCC_MCAST_IGMP_H
