#include "mcast/igmp.h"

#include "util/logging.h"

namespace mcc::mcast {

igmp_agent::igmp_agent(sim::network& net, sim::node_id router)
    : net_(net), router_(router) {
  net_.get(router_)->add_agent(this);
}

bool igmp_agent::handle_packet(const sim::packet& p, sim::link* arrival) {
  const auto* msg = sim::header_as<sim::igmp_msg>(p);
  if (msg == nullptr || arrival == nullptr) return false;
  sim::link* host_iface = arrival->reverse();
  if (host_iface == nullptr || !host_iface->to()->is_host()) return false;

  if (msg->operation == sim::igmp_msg::op::join) {
    if (net_.is_sigma_protected(msg->group)) {
      // SIGMA routers replace IGMP for protected sessions; a raw join is the
      // inflated-subscription attack vector and is refused here.
      ++stats_.refused_protected;
      return true;
    }
    join(msg->group, host_iface);
  } else {
    leave(msg->group, host_iface);
  }
  return true;
}

void igmp_agent::join(sim::group_addr g, sim::link* host_iface) {
  ++stats_.joins;
  sim::node* r = net_.get(router_);
  const bool first = r->oif_count(g) == 0;
  r->graft(g, host_iface);
  if (first) net_.join_upstream(router_, g);
}

void igmp_agent::leave(sim::group_addr g, sim::link* host_iface) {
  ++stats_.leaves;
  sim::node* r = net_.get(router_);
  r->prune(g, host_iface);
  if (r->oif_count(g) == 0) net_.leave_upstream(router_, g);
}

membership_client::membership_client(sim::network& net, sim::node_id host,
                                     sim::node_id router)
    : net_(net), host_(host), router_(router) {}

void membership_client::join(sim::group_addr g) {
  ++stats_.joins;
  net_.get(host_)->host_join(g);
  send(sim::igmp_msg::op::join, g);
}

void membership_client::leave(sim::group_addr g) {
  ++stats_.leaves;
  net_.get(host_)->host_leave(g);
  send(sim::igmp_msg::op::leave, g);
}

void membership_client::send(sim::igmp_msg::op op, sim::group_addr g) {
  stats_.bytes += igmp_packet_bytes;
  sim::packet p;
  p.size_bytes = igmp_packet_bytes;
  p.dst = sim::dest::to_node(router_);
  p.hdr = sim::igmp_msg{op, g};
  net_.get(host_)->send(std::move(p));
}

}  // namespace mcc::mcast
