#include "cm/congestion_manager.h"

#include <algorithm>

namespace mcc::cm {

congestion_manager::congestion_manager(cm_config cfg) : cfg_(cfg) {
  util::require(cfg_.max_entries >= 1, "congestion_manager: max_entries >= 1",
                cfg_.max_entries);
  util::require(cfg_.aging_slots >= 1, "congestion_manager: aging_slots >= 1");
  util::require(cfg_.signal_weight > 0.0 && cfg_.signal_weight <= 1.0,
                "congestion_manager: signal_weight in (0, 1]");
  util::require(cfg_.rate_weight > 0.0 && cfg_.rate_weight <= 1.0,
                "congestion_manager: rate_weight in (0, 1]");
  util::require(cfg_.headroom > 0.0, "congestion_manager: headroom > 0");
}

void congestion_manager::register_session(const path_id& path, int session_id) {
  ++registrations_[path][session_id];
}

void congestion_manager::unregister_session(const path_id& path,
                                            int session_id) {
  const auto it = registrations_.find(path);
  util::require(it != registrations_.end(),
                "congestion_manager: unregister of unknown path");
  const auto sit = it->second.find(session_id);
  util::require(sit != it->second.end(),
                "congestion_manager: unregister of unknown session",
                session_id);
  if (--sit->second == 0) it->second.erase(sit);
  if (it->second.empty()) registrations_.erase(it);
}

int congestion_manager::sessions_at(const path_id& path) const {
  const auto it = registrations_.find(path);
  return it == registrations_.end() ? 0 : static_cast<int>(it->second.size());
}

std::size_t congestion_manager::registered_sessions() const {
  std::size_t n = 0;
  for (const auto& [path, sessions] : registrations_) n += sessions.size();
  return n;
}

void congestion_manager::observe(const path_id& path, const observation& obs) {
  ++stats_.observations;
  auto it = by_path_.find(path);
  if (it == by_path_.end()) {
    if (static_cast<int>(lru_.size()) >= cfg_.max_entries) {
      // LRU pressure: the least recently *observed* path gives way. Its
      // registrations survive — sharing resumes from a fresh entry the next
      // time a receiver behind it reports.
      by_path_.erase(lru_.back().path);
      lru_.pop_back();
      ++stats_.evictions;
    }
    lru_.push_front(entry{path, path_state{}});
    it = by_path_.emplace(path, lru_.begin()).first;
    ++stats_.insertions;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second);
  }
  path_state& s = it->second->state;
  const double loss = obs.congested ? 1.0 : 0.0;
  const double mark = obs.ecn_marked ? 1.0 : 0.0;
  if (stale(s, obs.slot)) {
    // First observation, or first after an idle gap longer than the aging
    // window: congestion state from before the gap says nothing about the
    // path now, so the EWMAs restart from this sample.
    if (s.last_update_slot >= 0) ++stats_.aged_resets;
    s.loss_ewma = loss;
    s.mark_ewma = mark;
    s.fair_rate_kbps = obs.delivered_kbps;
  } else {
    const double w = cfg_.signal_weight;
    s.loss_ewma = (1.0 - w) * s.loss_ewma + w * loss;
    s.mark_ewma = (1.0 - w) * s.mark_ewma + w * mark;
    const double rw = cfg_.rate_weight;
    s.fair_rate_kbps = (1.0 - rw) * s.fair_rate_kbps + rw * obs.delivered_kbps;
  }
  s.last_update_slot = std::max(s.last_update_slot, obs.slot);
}

int congestion_manager::level_cap(const path_id& path, std::int64_t slot,
                                  std::span<const double> cum_kbps) {
  ++stats_.lookups;
  const int no_cap = static_cast<int>(cum_kbps.size());
  if (sessions_at(path) < 2) return no_cap;
  const auto it = by_path_.find(path);
  if (it == by_path_.end()) return no_cap;
  const path_state& s = it->second->state;
  if (stale(s, slot)) {
    ++stats_.stale_lookups;
    return no_cap;
  }
  const double severity = std::max(s.loss_ewma, s.mark_ewma);
  if (severity <= cfg_.congestion_threshold) return no_cap;
  // Severity-scaled budget: mild congestion (severity just over the
  // threshold) caps near fair_rate x headroom, which merely stops sessions
  // from probing into the overload. Sustained congestion shrinks the budget
  // below the fair-rate estimate, so the whole farm sheds a layer and the
  // shared queue actually drains. The 0.5 floor keeps one bad sample from
  // collapsing every session toward the base layer.
  const double budget =
      s.fair_rate_kbps * std::max(0.5, cfg_.headroom - severity);
  int cap = 1;  // the cap never pushes a session out of the base layer
  for (int level = 2; level <= no_cap; ++level) {
    if (cum_kbps[static_cast<std::size_t>(level - 1)] > budget) break;
    cap = level;
  }
  if (cap < no_cap) ++stats_.capped_lookups;
  return cap;
}

const path_state* congestion_manager::state_of(const path_id& path) const {
  const auto it = by_path_.find(path);
  return it == by_path_.end() ? nullptr : &it->second->state;
}

}  // namespace mcc::cm
