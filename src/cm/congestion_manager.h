// Shared congestion manager (RFC 3124 idiom): sessions co-located at an edge
// register with one `cm::congestion_manager`, which holds an LRU-evicted
// table of per-path congestion state — loss/ECN-mark EWMAs, an estimated
// fair rate, and the last-updated slot — keyed by an *aggregated* path id
// (edge interface x bottleneck direction x traffic class), not per flow.
// Receivers feed it their per-slot loss/mark observations and consult it as
// a cap on join decisions: when several sessions share a congested path, no
// session is authorized to probe above the path's estimated fair level.
//
// Two maps, two planes:
//   - the *registration* map (control plane) counts distinct sessions per
//     path id and is never evicted — losing a registration would silently
//     disable sharing for a live session;
//   - the *state* cache (data plane) is the bounded LRU table of path_state
//     entries, refreshed on observation (a consult never promotes an entry,
//     so recency order == observation order and eviction laws are
//     hand-computable).
//
// Determinism contract: the manager draws no PRNG values and schedules no
// events. When fewer than two distinct sessions are registered at a path,
// level_cap never binds, so a single-session world behaves byte-identically
// with the manager on or off; with the manager detached (`cm` off in
// exp::testbed) the legacy code path is untouched. Pinned by cm_test.
#ifndef MCC_CM_CONGESTION_MANAGER_H
#define MCC_CM_CONGESTION_MANAGER_H

#include <cstdint>
#include <list>
#include <map>
#include <span>

#include "sim/wire.h"
#include "util/require.h"

namespace mcc::cm {

/// Which side of the edge interface the bottleneck sits on. Receiver-driven
/// layered multicast congests the downstream direction; the field exists so
/// sender-side state (future work) aggregates into distinct entries.
enum class path_direction : std::uint8_t { downstream = 0, upstream = 1 };

/// Aggregated path identity: every flow crossing the same edge interface in
/// the same direction with the same traffic class shares one state entry.
struct path_id {
  sim::node_id edge = -1;  // edge router interface the sessions sit behind
  path_direction direction = path_direction::downstream;
  int traffic_class = 0;

  friend bool operator==(const path_id& a, const path_id& b) {
    return a.edge == b.edge && a.direction == b.direction &&
           a.traffic_class == b.traffic_class;
  }
  friend bool operator<(const path_id& a, const path_id& b) {
    if (a.edge != b.edge) return a.edge < b.edge;
    if (a.direction != b.direction) return a.direction < b.direction;
    return a.traffic_class < b.traffic_class;
  }
};

struct cm_config {
  /// State-cache capacity (entries); the registration map is unbounded.
  int max_entries = 64;
  /// An entry older than this many slots is stale: consults ignore it and
  /// the next observation restarts its EWMAs from scratch (idle gaps carry
  /// no congestion memory across them).
  std::int64_t aging_slots = 8;
  /// EWMA weight of per-slot loss/mark observations.
  double signal_weight = 0.25;
  /// EWMA weight of the delivered-rate (fair rate) estimate.
  double rate_weight = 0.25;
  /// The cap binds only while max(loss, mark) EWMA exceeds this; below it
  /// the path is considered uncongested and sessions probe freely.
  double congestion_threshold = 0.25;
  /// Fair-rate multiplier when translating the estimate into a level cap:
  /// the cap is the highest level whose cumulative rate fits within
  /// max(0.5, headroom - severity) x estimated fair rate, where severity is
  /// the binding max(loss, mark) EWMA. Mild congestion leaves one probing
  /// step of slack; sustained congestion shrinks the budget below the
  /// estimate so the farm sheds a layer and the shared queue drains.
  double headroom = 1.3;
};

/// Per-path shared state: what co-located sessions know about one path.
struct path_state {
  double loss_ewma = 0.0;        // smoothed per-slot loss indicator
  double mark_ewma = 0.0;        // smoothed per-slot ECN-mark indicator
  double fair_rate_kbps = 0.0;   // smoothed delivered rate across sessions
  std::int64_t last_update_slot = -1;
};

/// One receiver's per-slot report into the shared table.
struct observation {
  std::int64_t slot = 0;
  bool congested = false;    // the slot lost data on a fully subscribed group
  bool ecn_marked = false;   // the slot carried an ECN-invalidated component
  double delivered_kbps = 0.0;  // cumulative rate of the level held all slot
};

class congestion_manager {
 public:
  explicit congestion_manager(cm_config cfg = {});

  [[nodiscard]] const cm_config& config() const { return cfg_; }

  /// Control plane: a session announces a receiver behind `path`. The cap
  /// only ever binds at paths where at least two *distinct* sessions are
  /// registered — one session alone is entitled to its own probing.
  void register_session(const path_id& path, int session_id);
  void unregister_session(const path_id& path, int session_id);
  /// Distinct sessions currently registered at `path`.
  [[nodiscard]] int sessions_at(const path_id& path) const;

  /// Data plane: folds one receiver's slot report into the path's entry,
  /// inserting (and LRU-evicting) as needed. A stale entry restarts its
  /// EWMAs from this observation instead of decaying across the idle gap.
  void observe(const path_id& path, const observation& obs);

  /// The highest subscription level the shared state authorizes at `path`
  /// during `slot`. `cum_kbps[i]` is the cumulative rate of level i+1; the
  /// no-cap answer is cum_kbps.size(). Never binds below level 1, when
  /// fewer than two sessions share the path, when the entry is missing or
  /// stale, or while the congestion EWMA sits under the threshold.
  [[nodiscard]] int level_cap(const path_id& path, std::int64_t slot,
                              std::span<const double> cum_kbps);

  /// Read-only state lookup (tests and metrics); nullptr when absent.
  [[nodiscard]] const path_state* state_of(const path_id& path) const;

  struct counters {
    std::uint64_t observations = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;       // LRU pressure drops
    std::uint64_t aged_resets = 0;     // observations that restarted a stale entry
    std::uint64_t lookups = 0;         // level_cap consults
    std::uint64_t stale_lookups = 0;   // consults that ignored a stale entry
    std::uint64_t capped_lookups = 0;  // consults that returned a binding cap
  };
  [[nodiscard]] const counters& stats() const { return stats_; }
  /// Live state-cache entries (<= max_entries).
  [[nodiscard]] std::size_t entries() const { return by_path_.size(); }
  /// Paths with at least one registered session.
  [[nodiscard]] std::size_t registered_paths() const {
    return registrations_.size();
  }
  /// Sum of distinct-session counts across registered paths.
  [[nodiscard]] std::size_t registered_sessions() const;

 private:
  struct entry {
    path_id path;
    path_state state;
  };
  using lru_list = std::list<entry>;

  [[nodiscard]] bool stale(const path_state& s, std::int64_t slot) const {
    return s.last_update_slot < 0 || slot - s.last_update_slot > cfg_.aging_slots;
  }

  cm_config cfg_;
  /// Most-recently-observed entry at the front; eviction pops the back.
  lru_list lru_;
  std::map<path_id, lru_list::iterator> by_path_;
  /// path -> (session id -> registered receiver count). Control plane:
  /// never evicted, so sessions_at is exact for the whole run.
  std::map<path_id, std::map<int, int>> registrations_;
  counters stats_;
};

}  // namespace mcc::cm

#endif  // MCC_CM_CONGESTION_MANAGER_H
