#include "obs/metrics.h"

#include <cstdio>

#include "util/require.h"

namespace mcc::obs {

histogram::histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  util::require(!bounds_.empty(), "histogram: needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    util::require(bounds_[i - 1] < bounds_[i],
                  "histogram: bounds must be strictly increasing");
  }
  buckets_.assign(bounds_.size() + 1, 0);  // + overflow
}

void histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += v;
}

counter& registry::add_counter(std::string name, label_list labels) {
  counters_.emplace_back();
  entry e;
  e.flat = flatten(name, labels);
  e.c = &counters_.back();
  entries_.push_back(std::move(e));
  return counters_.back();
}

gauge& registry::add_gauge(std::string name, label_list labels) {
  gauges_.emplace_back();
  entry e;
  e.flat = flatten(name, labels);
  e.g = &gauges_.back();
  entries_.push_back(std::move(e));
  return gauges_.back();
}

histogram& registry::add_histogram(std::string name, std::vector<double> bounds,
                                   label_list labels) {
  histograms_.emplace_back(std::move(bounds));
  entry e;
  e.flat = flatten(name, labels);
  e.h = &histograms_.back();
  entries_.push_back(std::move(e));
  return histograms_.back();
}

void registry::add_view(std::string name, label_list labels,
                        std::function<double()> read) {
  util::require(static_cast<bool>(read), "registry: view needs a reader");
  entry e;
  e.flat = flatten(name, labels);
  e.view = std::move(read);
  entries_.push_back(std::move(e));
}

std::string registry::flatten(const std::string& name,
                              const label_list& labels) {
  if (labels.empty()) return name;
  std::string flat = name;
  flat += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) flat += ',';
    flat += labels[i].first;
    flat += '=';
    flat += labels[i].second;
  }
  flat += '}';
  return flat;
}

namespace {

std::string bound_suffix(double bound) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", bound);
  return buf;
}

}  // namespace

metric_snapshot registry::snapshot() const {
  metric_snapshot out;
  out.reserve(entries_.size());
  for (const entry& e : entries_) {
    if (e.c != nullptr) {
      out.emplace_back(e.flat, static_cast<double>(e.c->value()));
    } else if (e.g != nullptr) {
      out.emplace_back(e.flat, e.g->value());
    } else if (e.h != nullptr) {
      out.emplace_back(e.flat + ".count", static_cast<double>(e.h->count()));
      out.emplace_back(e.flat + ".sum", e.h->sum());
      const auto& bounds = e.h->bounds();
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        out.emplace_back(e.flat + ".le_" + bound_suffix(bounds[i]),
                         static_cast<double>(e.h->bucket(i)));
      }
      out.emplace_back(e.flat + ".overflow",
                       static_cast<double>(e.h->bucket(bounds.size())));
    } else {
      out.emplace_back(e.flat, e.view());
    }
  }
  return out;
}

}  // namespace mcc::obs
