// Metrics registry: named counters, gauges, and histograms with hierarchical
// labels (node, link, interface×group, session), registered once and
// snapshotted per sweep row into BENCH_*.json.
//
// The registry is deliberately pull-based: the existing scattered stats
// (sim::link_stats, sigma_router_agent counters, attacker cost, population
// state bytes) are exposed as *views* — a name plus a std::function reading
// the live struct at snapshot time — so no call site loses its current API
// and the simulation hot path pays nothing. Owned instruments (counter /
// gauge / histogram) exist for code that has no legacy struct to view.
//
// Snapshots are deterministic: entries come back in registration order, and
// registration order is a pure function of world construction order, so
// `--jobs N` rows match `--jobs 1` byte-for-byte.
//
// Naming scheme (docs/observability.md): dotted subsystem paths with
// Prometheus-style label sets, e.g.
//   link.dropped{from=l,to=r}
//   sigma.valid_keys{router=r}
//   population.state_bytes{session=1,edge=r}
#ifndef MCC_OBS_METRICS_H
#define MCC_OBS_METRICS_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace mcc::obs {

/// Ordered label set; order is part of the flattened name.
using label_list = std::vector<std::pair<std::string, std::string>>;

/// Monotone event count owned by the registry.
class counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level owned by the registry.
class gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bound histogram: observations are counted into the first bucket
/// whose upper bound is >= the value; values past the last bound land in the
/// overflow bucket. Snapshot expands to .count / .sum / .le_<bound> /
/// .overflow entries.
class histogram {
 public:
  explicit histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Observations in bucket i (<= bounds()[i]); index bounds().size() is the
  /// overflow bucket.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i];
  }

 private:
  std::vector<double> bounds_;  // strictly increasing
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One snapshot entry: flattened "name{k=v,...}" plus its value.
using metric_snapshot = std::vector<std::pair<std::string, double>>;

class registry {
 public:
  registry() = default;
  registry(const registry&) = delete;
  registry& operator=(const registry&) = delete;

  /// Owned instruments. References stay valid for the registry's lifetime
  /// (deque storage never relocates).
  counter& add_counter(std::string name, label_list labels = {});
  gauge& add_gauge(std::string name, label_list labels = {});
  histogram& add_histogram(std::string name, std::vector<double> bounds,
                           label_list labels = {});

  /// A thin view over existing state: `read` is called at snapshot time.
  /// The caller guarantees whatever `read` captures outlives the registry's
  /// last snapshot (in exp::testbed: the testbed owns both).
  void add_view(std::string name, label_list labels,
                std::function<double()> read);

  /// Registered instruments (histograms count once, not per bucket).
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// All instruments flattened in registration order. Histograms expand to
  /// <name>.count, <name>.sum, <name>.le_<bound>..., <name>.overflow.
  [[nodiscard]] metric_snapshot snapshot() const;

  /// Canonical flattened form: `name` alone, or `name{k=v,k=v}`.
  [[nodiscard]] static std::string flatten(const std::string& name,
                                           const label_list& labels);

 private:
  struct entry {
    std::string flat;  // flatten(name, labels), computed at registration
    const counter* c = nullptr;
    const gauge* g = nullptr;
    const histogram* h = nullptr;
    std::function<double()> view;
  };

  std::deque<counter> counters_;
  std::deque<gauge> gauges_;
  std::deque<histogram> histograms_;
  std::vector<entry> entries_;
};

}  // namespace mcc::obs

#endif  // MCC_OBS_METRICS_H
