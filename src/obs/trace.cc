#include "obs/trace.h"

#include <cstring>

namespace mcc::obs {

const char* trace_event_name(trace_event e) {
  switch (e) {
    case trace_event::packet_enqueue: return "packet_enqueue";
    case trace_event::packet_drop: return "packet_drop";
    case trace_event::packet_mark: return "packet_mark";
    case trace_event::packet_deliver: return "packet_deliver";
    case trace_event::subscribe: return "subscribe";
    case trace_event::unsubscribe: return "unsubscribe";
    case trace_event::session_join: return "session_join";
    case trace_event::grace_open: return "grace_open";
    case trace_event::grace_close: return "grace_close";
    case trace_event::probation_record: return "probation_record";
    case trace_event::probation_inherit: return "probation_inherit";
    case trace_event::probation_refuse: return "probation_refuse";
    case trace_event::slot_feedback: return "slot_feedback";
    case trace_event::cutoff: return "cutoff";
    case trace_event::cm_cap: return "cm_cap";
  }
  return "?";
}

std::uint32_t trace_buffer::track(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tracks_.size());
  tracks_.push_back(name);
  by_name_.emplace(name, id);
  return id;
}

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  char raw[4];
  std::memcpy(raw, &v, sizeof raw);
  out.append(raw, sizeof raw);
}

void append_u64(std::string& out, std::uint64_t v) {
  char raw[8];
  std::memcpy(raw, &v, sizeof raw);
  out.append(raw, sizeof raw);
}

}  // namespace

std::string trace_buffer::serialize() const {
  // Segment layout (native little-endian, matches trace2perfetto.py):
  //   u32 track_count, then per track: u32 name_len + name bytes;
  //   u64 record_count, then record_count raw 32-byte trace_records.
  std::string out;
  out.reserve(16 + records_.size() * sizeof(trace_record));
  append_u32(out, static_cast<std::uint32_t>(tracks_.size()));
  for (const std::string& name : tracks_) {
    append_u32(out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
  }
  append_u64(out, records_.size());
  if (!records_.empty()) {
    out.append(reinterpret_cast<const char*>(records_.data()),
               records_.size() * sizeof(trace_record));
  }
  return out;
}

namespace {
thread_local trace_buffer* g_current = nullptr;
}  // namespace

trace_buffer* current_trace() { return g_current; }

trace_scope::trace_scope(trace_buffer* buf) : prev_(g_current) {
  g_current = buf;
}

trace_scope::~trace_scope() { g_current = prev_; }

}  // namespace mcc::obs
