// Deterministic event-trace ring: a flag-gated binary record of engine
// milestones (packet enqueue/drop/mark/deliver, subscribe/unsubscribe, grace
// open/close, probation record/inherit/refuse, slot feedback, cutoffs).
//
// Determinism contract: recording consumes zero PRNG draws and perturbs no
// simulation behaviour — a hook appends a POD record to a pre-existing
// buffer and nothing else, so all golden digests are bit-identical with
// tracing on or off (pinned by golden_trace_test).
//
// Threading model: the active buffer is a thread_local pointer installed by
// trace_scope around one sweep point's world build + run. Each grid point
// records into its own buffer, so `--jobs N` and forked `--jobs-per-process`
// runs produce byte-identical per-row blobs (merged in row order by
// exp::maybe_write_trace). Engine components capture current_trace() at
// construction time — when tracing is off the captured pointer is null and
// every hook is one predicted-not-taken branch.
//
// `tools/trace2perfetto.py` converts the serialized file to Chrome/Perfetto
// trace-viewer JSON with one track per router interface and per link.
#ifndef MCC_OBS_TRACE_H
#define MCC_OBS_TRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcc::obs {

/// Engine milestones. Values are part of the on-disk format (see
/// docs/observability.md and tools/trace2perfetto.py); append only.
enum class trace_event : std::uint16_t {
  packet_enqueue = 1,
  packet_drop = 2,
  packet_mark = 3,
  packet_deliver = 4,
  subscribe = 5,
  unsubscribe = 6,
  session_join = 7,
  grace_open = 8,
  grace_close = 9,
  probation_record = 10,
  probation_inherit = 11,
  probation_refuse = 12,
  slot_feedback = 13,
  cutoff = 14,
  /// A shared-congestion-manager cap bound a receiver's upgrade authority:
  /// a = the evaluated slot, b = the cap level applied.
  cm_cap = 15,
};

[[nodiscard]] const char* trace_event_name(trace_event e);

/// One fixed-width trace record: timestamp, interned track, event kind, and
/// two event-specific payload words (documented per kind in
/// docs/observability.md).
struct trace_record {
  std::int64_t t = 0;          // simulated time, ns
  std::uint32_t track = 0;     // index into the buffer's track table
  std::uint16_t kind = 0;      // trace_event
  std::uint16_t reserved = 0;  // zero; keeps the record 8-byte aligned
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(sizeof(trace_record) == 32, "on-disk record layout");

/// An append-only event buffer with an interned track-name table. One buffer
/// per sweep point; cheap enough to exist unconditionally (hooks check the
/// thread-local pointer, not the buffer).
class trace_buffer {
 public:
  /// Interns a track name; the same name always maps to the same id.
  std::uint32_t track(const std::string& name);

  void record(std::int64_t t, trace_event kind, std::uint32_t track,
              std::uint64_t a = 0, std::uint64_t b = 0) {
    records_.push_back(trace_record{
        t, track, static_cast<std::uint16_t>(kind), 0, a, b});
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] const std::vector<trace_record>& records() const {
    return records_;
  }
  [[nodiscard]] const std::vector<std::string>& tracks() const {
    return tracks_;
  }

  /// Serializes to one self-contained binary segment: track table + records
  /// (docs/observability.md has the layout). Segments concatenate into the
  /// `--trace` file byte-identically regardless of worker scheduling.
  [[nodiscard]] std::string serialize() const;

 private:
  std::vector<std::string> tracks_;
  std::map<std::string, std::uint32_t> by_name_;
  std::vector<trace_record> records_;
};

/// The calling thread's active buffer; null when tracing is off (the
/// default). Engine components capture this once at construction.
[[nodiscard]] trace_buffer* current_trace();

/// RAII installer for the thread-local active buffer. Pass nullptr for an
/// explicit no-trace scope; the previous buffer is restored on destruction,
/// so nested scopes (a testbed built inside a traced sweep point) compose.
class trace_scope {
 public:
  explicit trace_scope(trace_buffer* buf);
  trace_scope(const trace_scope&) = delete;
  trace_scope& operator=(const trace_scope&) = delete;
  ~trace_scope();

 private:
  trace_buffer* prev_;
};

}  // namespace mcc::obs

#endif  // MCC_OBS_TRACE_H
