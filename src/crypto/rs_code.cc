#include "crypto/rs_code.h"

#include <algorithm>

#include "crypto/gf256.h"
#include "util/require.h"

namespace mcc::crypto {

namespace {

using matrix = std::vector<std::vector<std::uint8_t>>;

/// Inverts a square GF(256) matrix with Gauss-Jordan elimination.
/// Returns an empty matrix if singular (cannot happen for Vandermonde
/// submatrices with distinct points, but kept defensive).
matrix invert(matrix a) {
  const std::size_t n = a.size();
  matrix inv(n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1;

  for (std::size_t col = 0; col < n; ++col) {
    // Find pivot.
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) return {};
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);

    const std::uint8_t scale = gf256::inv(a[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      a[col][j] = gf256::mul(a[col][j], scale);
      inv[col][j] = gf256::mul(inv[col][j], scale);
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const std::uint8_t factor = a[row][col];
      for (std::size_t j = 0; j < n; ++j) {
        a[row][j] = gf256::add(a[row][j], gf256::mul(factor, a[col][j]));
        inv[row][j] = gf256::add(inv[row][j], gf256::mul(factor, inv[col][j]));
      }
    }
  }
  return inv;
}

}  // namespace

rs_code::rs_code(int data_shards, int parity_shards)
    : k_(data_shards), m_(parity_shards) {
  util::require(k_ >= 1, "rs_code: need at least one data shard");
  util::require(m_ >= 0, "rs_code: parity count must be non-negative");
  util::require(k_ + m_ <= 255, "rs_code: k + m must fit in GF(256)");
  gf256::init();
  vand_.assign(static_cast<std::size_t>(m_),
               std::vector<std::uint8_t>(static_cast<std::size_t>(k_), 0));
  // Row i evaluates the data polynomial at point alpha^(k + i); combined with
  // the implicit identity rows this forms a Vandermonde generator matrix in
  // which every k x k submatrix with distinct points is invertible.
  for (int i = 0; i < m_; ++i) {
    const std::uint8_t point = gf256::pow(2, k_ + i + 1);
    for (int j = 0; j < k_; ++j) {
      vand_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          gf256::pow(point, j);
    }
  }
}

std::vector<shard> rs_code::encode(const std::vector<shard>& data) const {
  util::require(static_cast<int>(data.size()) == k_,
                "rs_code::encode: wrong shard count");
  const std::size_t len = data.empty() ? 0 : data.front().size();
  for (const auto& s : data) {
    util::require(s.size() == len, "rs_code::encode: unequal shard sizes");
  }

  std::vector<shard> out = data;
  for (int i = 0; i < m_; ++i) {
    shard parity(len, 0);
    for (int j = 0; j < k_; ++j) {
      const std::uint8_t coeff =
          vand_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (coeff == 0) continue;
      const auto& src = data[static_cast<std::size_t>(j)];
      for (std::size_t b = 0; b < len; ++b) {
        parity[b] = gf256::add(parity[b], gf256::mul(coeff, src[b]));
      }
    }
    out.push_back(std::move(parity));
  }
  return out;
}

std::optional<std::vector<shard>> rs_code::decode(
    const std::vector<indexed_shard>& received) const {
  if (static_cast<int>(received.size()) < k_) return std::nullopt;

  // Use the first k distinct indices.
  std::vector<const indexed_shard*> chosen;
  std::vector<bool> seen(static_cast<std::size_t>(k_ + m_), false);
  for (const auto& r : received) {
    util::require(r.index >= 0 && r.index < k_ + m_,
                  "rs_code::decode: shard index out of range");
    if (seen[static_cast<std::size_t>(r.index)]) continue;
    seen[static_cast<std::size_t>(r.index)] = true;
    chosen.push_back(&r);
    if (static_cast<int>(chosen.size()) == k_) break;
  }
  if (static_cast<int>(chosen.size()) < k_) return std::nullopt;

  const std::size_t len = chosen.front()->data.size();
  for (const auto* c : chosen) {
    util::require(c->data.size() == len, "rs_code::decode: unequal shard sizes");
  }

  // Fast path: all data shards present.
  const bool all_data = std::all_of(chosen.begin(), chosen.end(),
                                    [&](const auto* c) { return c->index < k_; });
  if (all_data) {
    std::vector<shard> out(static_cast<std::size_t>(k_));
    for (const auto* c : chosen) out[static_cast<std::size_t>(c->index)] = c->data;
    return out;
  }

  // Build the k x k generator submatrix for the chosen shards.
  matrix sub(static_cast<std::size_t>(k_),
             std::vector<std::uint8_t>(static_cast<std::size_t>(k_), 0));
  for (int row = 0; row < k_; ++row) {
    const int idx = chosen[static_cast<std::size_t>(row)]->index;
    if (idx < k_) {
      sub[static_cast<std::size_t>(row)][static_cast<std::size_t>(idx)] = 1;
    } else {
      sub[static_cast<std::size_t>(row)] = vand_[static_cast<std::size_t>(idx - k_)];
    }
  }
  matrix decode_matrix = invert(std::move(sub));
  if (decode_matrix.empty()) return std::nullopt;

  std::vector<shard> out(static_cast<std::size_t>(k_), shard(len, 0));
  for (int i = 0; i < k_; ++i) {
    auto& dst = out[static_cast<std::size_t>(i)];
    for (int j = 0; j < k_; ++j) {
      const std::uint8_t coeff =
          decode_matrix[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      if (coeff == 0) continue;
      const auto& src = chosen[static_cast<std::size_t>(j)]->data;
      for (std::size_t b = 0; b < len; ++b) {
        dst[b] = gf256::add(dst[b], gf256::mul(coeff, src[b]));
      }
    }
  }
  return out;
}

std::vector<shard> split_into_shards(const std::vector<std::uint8_t>& buffer,
                                     int k) {
  util::require(k >= 1, "split_into_shards: k must be positive");
  const std::size_t shard_len = (buffer.size() + static_cast<std::size_t>(k) - 1) /
                                static_cast<std::size_t>(k);
  std::vector<shard> shards(static_cast<std::size_t>(k),
                            shard(std::max<std::size_t>(shard_len, 1), 0));
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    shards[i / shard_len][i % shard_len] = buffer[i];
  }
  return shards;
}

std::vector<std::uint8_t> join_shards(const std::vector<shard>& shards,
                                      std::size_t original_size) {
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  for (const auto& s : shards) {
    for (std::uint8_t b : s) {
      if (out.size() == original_size) return out;
      out.push_back(b);
    }
  }
  util::require(out.size() == original_size,
                "join_shards: shards smaller than original size");
  return out;
}

}  // namespace mcc::crypto
