// GF(2^8) arithmetic with the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b).
//
// Substrate for the systematic Reed-Solomon erasure code that SIGMA uses to
// deliver address-key tuples to edge routers reliably (paper sections 3.2.1
// and 5.4: "error correction overcomes 50% packet loss").
#ifndef MCC_CRYPTO_GF256_H
#define MCC_CRYPTO_GF256_H

#include <array>
#include <cstdint>

namespace mcc::crypto::gf256 {

/// Initializes log/exp tables on first use (thread-unsafe by design; the
/// simulator is single-threaded).
void init();

std::uint8_t mul(std::uint8_t a, std::uint8_t b);
std::uint8_t div(std::uint8_t a, std::uint8_t b);
std::uint8_t inv(std::uint8_t a);
std::uint8_t pow(std::uint8_t base, int exp);

inline std::uint8_t add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}
inline std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return add(a, b); }

}  // namespace mcc::crypto::gf256

#endif  // MCC_CRYPTO_GF256_H
