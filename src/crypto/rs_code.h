// Systematic Reed-Solomon erasure code over GF(256) (Vandermonde parity).
//
// encode(k data shards) appends m parity shards; any k of the k + m shards
// reconstruct the data. SIGMA uses this for the special packets that carry
// address-key tuples to edge routers across the (possibly congested)
// distribution tree; the expansion factor z = (k + m) / k appears in the
// overhead model of paper section 5.4.
#ifndef MCC_CRYPTO_RS_CODE_H
#define MCC_CRYPTO_RS_CODE_H

#include <cstdint>
#include <optional>
#include <vector>

namespace mcc::crypto {

using shard = std::vector<std::uint8_t>;

/// A shard tagged with its index within the codeword (0..k-1 data,
/// k..k+m-1 parity).
struct indexed_shard {
  int index = 0;
  shard data;
};

/// Reed-Solomon erasure codec for fixed (k, m). Requires k >= 1, m >= 0,
/// k + m <= 255.
class rs_code {
 public:
  rs_code(int data_shards, int parity_shards);

  [[nodiscard]] int data_shards() const { return k_; }
  [[nodiscard]] int parity_shards() const { return m_; }
  [[nodiscard]] double expansion_factor() const {
    return static_cast<double>(k_ + m_) / k_;
  }

  /// Produces the full codeword (data shards first, then parity). All input
  /// shards must have equal size.
  [[nodiscard]] std::vector<shard> encode(const std::vector<shard>& data) const;

  /// Reconstructs the k data shards from any >= k distinct received shards.
  /// Returns nullopt if fewer than k shards are supplied.
  [[nodiscard]] std::optional<std::vector<shard>> decode(
      const std::vector<indexed_shard>& received) const;

 private:
  int k_;
  int m_;
  // Parity rows: parity[i] = sum_j vand_[i][j] * data[j].
  std::vector<std::vector<std::uint8_t>> vand_;
};

/// Splits a byte buffer into k equal shards (zero padded) and back.
[[nodiscard]] std::vector<shard> split_into_shards(
    const std::vector<std::uint8_t>& buffer, int k);
[[nodiscard]] std::vector<std::uint8_t> join_shards(
    const std::vector<shard>& shards, std::size_t original_size);

}  // namespace mcc::crypto

#endif  // MCC_CRYPTO_RS_CODE_H
