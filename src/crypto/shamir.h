// Shamir (k, n) threshold secret sharing over GF(p), p = 2^61 - 1.
//
// Used by the DELTA instantiation for threshold-based protocols
// (paper section 3.1.2, "Congested state"): the key for subscription level g
// is split into n shares, one per packet of the level's time slot; a receiver
// that collects at least k of the n packets reconstructs the key by Lagrange
// interpolation at x = 0, so the loss-rate threshold (n - k) / n is enforced
// cryptographically rather than by receiver honesty.
#ifndef MCC_CRYPTO_SHAMIR_H
#define MCC_CRYPTO_SHAMIR_H

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/key.h"
#include "crypto/prng.h"

namespace mcc::crypto {

/// The prime field modulus (Mersenne prime 2^61 - 1).
inline constexpr std::uint64_t shamir_prime = (std::uint64_t{1} << 61) - 1;

/// One share: the evaluation point x (1-based packet index) and q(x).
struct shamir_share {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  friend constexpr bool operator==(shamir_share, shamir_share) = default;
};

/// Field arithmetic helpers, exposed for tests.
namespace gf61 {
std::uint64_t add(std::uint64_t a, std::uint64_t b);
std::uint64_t sub(std::uint64_t a, std::uint64_t b);
std::uint64_t mul(std::uint64_t a, std::uint64_t b);
std::uint64_t pow(std::uint64_t base, std::uint64_t exp);
std::uint64_t inv(std::uint64_t a);
}  // namespace gf61

/// The degree-(k-1) sharing polynomial itself, for callers that need shares
/// at arbitrary evaluation points (e.g. per-packet indices assigned by a
/// transmission schedule). q(0) = secret.
class shamir_poly {
 public:
  shamir_poly(std::uint64_t secret, int k, prng& rng);

  /// Evaluates q at x (x != 0 for shares; x taken mod p).
  [[nodiscard]] std::uint64_t eval(std::uint64_t x) const;
  [[nodiscard]] shamir_share share_at(std::uint64_t x) const {
    return shamir_share{x, eval(x)};
  }
  [[nodiscard]] int threshold() const {
    return static_cast<int>(coeffs_.size());
  }

 private:
  std::vector<std::uint64_t> coeffs_;  // coeffs_[0] = secret
};

/// Splits `secret` into n shares with reconstruction threshold k.
/// Requires 1 <= k <= n and secret < shamir_prime (keys are reduced mod p).
[[nodiscard]] std::vector<shamir_share> shamir_split(std::uint64_t secret,
                                                     int k, int n, prng& rng);

/// Reconstructs the secret from at least k distinct shares. With fewer than
/// k shares of a (k, n) split this returns a field element that is
/// information-theoretically independent of the secret.
[[nodiscard]] std::uint64_t shamir_reconstruct(
    std::span<const shamir_share> shares);

/// Convenience wrappers for group keys (values are reduced mod p, so key
/// material for threshold DELTA is drawn below the prime).
[[nodiscard]] std::vector<shamir_share> shamir_split_key(group_key key, int k,
                                                         int n, prng& rng);
[[nodiscard]] group_key shamir_reconstruct_key(
    std::span<const shamir_share> shares);

}  // namespace mcc::crypto

#endif  // MCC_CRYPTO_SHAMIR_H
