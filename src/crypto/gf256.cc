#include "crypto/gf256.h"

#include "util/require.h"

namespace mcc::crypto::gf256 {

namespace {
std::array<std::uint8_t, 256> g_log;
std::array<std::uint8_t, 512> g_exp;
bool g_ready = false;
}  // namespace

void init() {
  if (g_ready) return;
  // Generator 3 of GF(256) with the AES reduction polynomial.
  int x = 1;
  for (int i = 0; i < 255; ++i) {
    g_exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
    g_log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
    // Multiply x by the generator 0x03 = x + 1.
    int shifted = x << 1;
    if (shifted & 0x100) shifted ^= 0x11b;
    x = shifted ^ x;
  }
  for (int i = 255; i < 512; ++i) {
    g_exp[static_cast<std::size_t>(i)] = g_exp[static_cast<std::size_t>(i - 255)];
  }
  g_log[0] = 0;  // Unused; guarded by callers.
  g_ready = true;
}

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  init();
  return g_exp[static_cast<std::size_t>(g_log[a]) + g_log[b]];
}

std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  util::require(b != 0, "gf256::div by zero");
  if (a == 0) return 0;
  init();
  return g_exp[static_cast<std::size_t>(g_log[a]) + 255 - g_log[b]];
}

std::uint8_t inv(std::uint8_t a) {
  util::require(a != 0, "gf256::inv of zero");
  init();
  return g_exp[static_cast<std::size_t>(255 - g_log[a])];
}

std::uint8_t pow(std::uint8_t base, int exp) {
  if (exp == 0) return 1;
  util::require(base != 0, "gf256::pow of zero base");
  init();
  const int e = ((g_log[base] * exp) % 255 + 255) % 255;
  return g_exp[static_cast<std::size_t>(e)];
}

}  // namespace mcc::crypto::gf256
