#include "crypto/oneway.h"

namespace mcc::crypto {

std::uint64_t oneway_mix(std::uint64_t x) {
  // Three rounds of the murmur3/splitmix finalizer with distinct constants.
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  x *= 0x9e3779b97f4a7c15ULL;
  x ^= x >> 29;
  return x;
}

group_key oneway_compress(std::span<const group_key> parts) {
  std::uint64_t acc = 0x2545f4914f6cdd1dULL;
  for (const auto& part : parts) {
    acc = oneway_mix(acc ^ part.value);
  }
  return group_key{acc};
}

group_key perturb_for_interface(group_key k, std::uint64_t interface_id) {
  return group_key{oneway_mix(k.value ^ (interface_id * 0xda942042e4dd58b5ULL))};
}

}  // namespace mcc::crypto
