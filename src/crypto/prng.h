// Deterministic pseudo-random number generation (xoshiro256** seeded via
// splitmix64).
//
// Every stochastic component of the simulator owns a prng seeded from the
// scenario seed plus a stable stream id, so experiment runs are reproducible
// bit-for-bit regardless of module construction order.
#ifndef MCC_CRYPTO_PRNG_H
#define MCC_CRYPTO_PRNG_H

#include <cstdint>

#include "util/require.h"

namespace mcc::crypto {

/// splitmix64 step; also used standalone to derive stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic generator.
class prng {
 public:
  explicit prng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent child generator for a named sub-stream.
  [[nodiscard]] prng fork(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL);
    return prng(splitmix64(sm));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    util::require(lo <= hi, "uniform_int: empty range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace mcc::crypto

#endif  // MCC_CRYPTO_PRNG_H
