// Group-key value type and XOR algebra used by DELTA and SIGMA.
//
// The paper evaluates with 16-bit keys; we carry 64-bit values and expose a
// width mask so overhead accounting and guessing experiments can model any
// key size b (paper section 4.2: guessing succeeds with probability y / 2^b).
#ifndef MCC_CRYPTO_KEY_H
#define MCC_CRYPTO_KEY_H

#include <cstdint>
#include <functional>

namespace mcc::crypto {

/// A group key or key component (nonce). Value semantics; XOR composition.
struct group_key {
  std::uint64_t value = 0;

  friend constexpr group_key operator^(group_key a, group_key b) {
    return group_key{a.value ^ b.value};
  }
  constexpr group_key& operator^=(group_key other) {
    value ^= other.value;
    return *this;
  }
  friend constexpr bool operator==(group_key, group_key) = default;
};

/// Truncates a key to its low `bits` bits (models a b-bit key space).
constexpr group_key mask_to_bits(group_key k, int bits) {
  if (bits >= 64) return k;
  if (bits <= 0) return group_key{0};
  return group_key{k.value & ((std::uint64_t{1} << bits) - 1)};
}

/// Identity element of the XOR key algebra.
inline constexpr group_key zero_key{0};

}  // namespace mcc::crypto

template <>
struct std::hash<mcc::crypto::group_key> {
  std::size_t operator()(const mcc::crypto::group_key& k) const noexcept {
    return std::hash<std::uint64_t>{}(k.value);
  }
};

#endif  // MCC_CRYPTO_KEY_H
