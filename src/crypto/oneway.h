// One-way compression used where the paper requires non-invertible key
// derivation (section 3.1.1 argues F and H must be one-way) and for the
// interface-specific key perturbation that counters collusion (section 4.2).
//
// This is an avalanche mixer (murmur-style finalizer iterated), not a
// cryptographic hash; in the simulator the adversary is the modelled receiver,
// which only interacts with keys through the protocol, so preimage resistance
// beyond "cannot be inverted by XOR algebra" is not required.
#ifndef MCC_CRYPTO_ONEWAY_H
#define MCC_CRYPTO_ONEWAY_H

#include <cstdint>
#include <span>

#include "crypto/key.h"

namespace mcc::crypto {

/// One-way mix of a single 64-bit value.
[[nodiscard]] std::uint64_t oneway_mix(std::uint64_t x);

/// One-way compression of a list of key components into a single key.
[[nodiscard]] group_key oneway_compress(std::span<const group_key> parts);

/// Domain-separated perturbation of a key with an interface identifier;
/// used by the collusion countermeasure to derive interface-specific keys.
[[nodiscard]] group_key perturb_for_interface(group_key k,
                                              std::uint64_t interface_id);

}  // namespace mcc::crypto

#endif  // MCC_CRYPTO_ONEWAY_H
