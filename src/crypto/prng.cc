#include "crypto/prng.h"

#include <cmath>

namespace mcc::crypto {

double prng::exponential(double mean) {
  util::require(mean > 0.0, "exponential: mean must be positive");
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace mcc::crypto
