#include "crypto/shamir.h"

#include "util/require.h"

namespace mcc::crypto {

namespace gf61 {

namespace {
constexpr std::uint64_t p = shamir_prime;

std::uint64_t reduce(unsigned __int128 v) {
  // Mersenne reduction: x mod (2^61 - 1).
  std::uint64_t lo = static_cast<std::uint64_t>(v & p);
  std::uint64_t hi = static_cast<std::uint64_t>(v >> 61);
  std::uint64_t r = lo + hi;
  if (r >= p) r -= p;
  // One more fold covers the carry out of lo + hi.
  if (r >= p) r -= p;
  return r;
}
}  // namespace

std::uint64_t add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = a + b;
  if (r >= p) r -= p;
  return r;
}

std::uint64_t sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + p - b;
}

std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
  return reduce(static_cast<unsigned __int128>(a) * b);
}

std::uint64_t pow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  std::uint64_t acc = base % p;
  while (exp > 0) {
    if (exp & 1) result = mul(result, acc);
    acc = mul(acc, acc);
    exp >>= 1;
  }
  return result;
}

std::uint64_t inv(std::uint64_t a) {
  util::require(a % p != 0, "gf61::inv: zero has no inverse");
  // Fermat: a^(p-2) mod p.
  return pow(a, p - 2);
}

}  // namespace gf61

shamir_poly::shamir_poly(std::uint64_t secret, int k, prng& rng) {
  util::require(k >= 1, "shamir_poly: threshold must be >= 1");
  util::require(secret < shamir_prime, "shamir_poly: secret must be < p");
  // q(x) = secret + a1 x + ... + a_{k-1} x^{k-1}, coefficients uniform in GF(p).
  coeffs_.resize(static_cast<std::size_t>(k));
  coeffs_[0] = secret;
  for (int i = 1; i < k; ++i) {
    coeffs_[static_cast<std::size_t>(i)] = rng.next() % shamir_prime;
  }
}

std::uint64_t shamir_poly::eval(std::uint64_t x) const {
  x %= shamir_prime;
  // Horner evaluation of q at x.
  std::uint64_t y = 0;
  for (auto c = coeffs_.rbegin(); c != coeffs_.rend(); ++c) {
    y = gf61::add(gf61::mul(y, x), *c);
  }
  return y;
}

std::vector<shamir_share> shamir_split(std::uint64_t secret, int k, int n,
                                       prng& rng) {
  util::require(k >= 1 && k <= n, "shamir_split: need 1 <= k <= n");
  util::require(static_cast<std::uint64_t>(n) < shamir_prime,
                "shamir_split: too many shares");
  const shamir_poly poly(secret, k, rng);
  std::vector<shamir_share> shares;
  shares.reserve(static_cast<std::size_t>(n));
  for (int xi = 1; xi <= n; ++xi) {
    shares.push_back(poly.share_at(static_cast<std::uint64_t>(xi)));
  }
  return shares;
}

std::uint64_t shamir_reconstruct(std::span<const shamir_share> shares) {
  util::require(!shares.empty(), "shamir_reconstruct: no shares");
  // Lagrange interpolation at x = 0:
  //   q(0) = sum_i y_i * prod_{j != i} x_j / (x_j - x_i)
  std::uint64_t secret = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    std::uint64_t num = 1;
    std::uint64_t den = 1;
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (j == i) continue;
      util::require(shares[j].x != shares[i].x,
                    "shamir_reconstruct: duplicate share x");
      num = gf61::mul(num, shares[j].x % shamir_prime);
      den = gf61::mul(den, gf61::sub(shares[j].x % shamir_prime,
                                     shares[i].x % shamir_prime));
    }
    const std::uint64_t weight = gf61::mul(num, gf61::inv(den));
    secret = gf61::add(secret, gf61::mul(shares[i].y, weight));
  }
  return secret;
}

std::vector<shamir_share> shamir_split_key(group_key key, int k, int n,
                                           prng& rng) {
  return shamir_split(key.value % shamir_prime, k, n, rng);
}

group_key shamir_reconstruct_key(std::span<const shamir_share> shares) {
  return group_key{shamir_reconstruct(shares)};
}

}  // namespace mcc::crypto
