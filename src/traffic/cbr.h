// On-off constant-bit-rate traffic (cross traffic in paper Figures 8(d)
// and 8(e)).
#ifndef MCC_TRAFFIC_CBR_H
#define MCC_TRAFFIC_CBR_H

#include <cstdint>

#include "sim/network.h"
#include "sim/stats.h"

namespace mcc::traffic {

struct cbr_config {
  int flow_id = 0;
  int packet_bytes = 576;
  double rate_bps = 100e3;  // transmission rate during on-periods
  sim::time_ns start_time = 0;
  sim::time_ns stop_time = sim::seconds(1e9);  // effectively forever
  /// on/off alternation; on_duration == 0 means continuously on.
  sim::time_ns on_duration = 0;
  sim::time_ns off_duration = 0;
};

class cbr_sink : public sim::agent {
 public:
  cbr_sink(sim::network& net, sim::node_id host, int flow_id);
  bool handle_packet(const sim::packet& p, sim::link* arrival) override;
  [[nodiscard]] sim::throughput_monitor& monitor() { return monitor_; }

 private:
  sim::node_id host_;
  int flow_id_;
  sim::throughput_monitor monitor_;
};

class cbr_source {
 public:
  cbr_source(sim::network& net, sim::node_id host, sim::node_id peer,
             const cbr_config& cfg);

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void send_next();
  /// True if the source is within an on-period at time t.
  [[nodiscard]] bool on_at(sim::time_ns t) const;
  /// Start of the next on-period at or after t (or stop_time if none).
  [[nodiscard]] sim::time_ns next_on_start(sim::time_ns t) const;

  sim::network& net_;
  sim::node_id host_;
  sim::node_id peer_;
  cbr_config cfg_;
  std::int64_t seq_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace mcc::traffic

#endif  // MCC_TRAFFIC_CBR_H
