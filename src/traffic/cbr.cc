#include "traffic/cbr.h"

namespace mcc::traffic {

cbr_sink::cbr_sink(sim::network& net, sim::node_id host, int flow_id)
    : host_(host), flow_id_(flow_id), monitor_(net.sched()) {
  net.get(host_)->add_agent(this);
}

bool cbr_sink::handle_packet(const sim::packet& p, sim::link*) {
  const auto* hdr = sim::header_as<sim::cbr_payload>(p);
  if (hdr == nullptr || hdr->flow_id != flow_id_) return false;
  monitor_.on_bytes(p.size_bytes);
  return true;
}

cbr_source::cbr_source(sim::network& net, sim::node_id host, sim::node_id peer,
                       const cbr_config& cfg)
    : net_(net), host_(host), peer_(peer), cfg_(cfg) {
  util::require(cfg_.rate_bps > 0, "cbr_source: rate must be positive");
  net_.sched().at(cfg_.start_time, [this] { send_next(); });
}

bool cbr_source::on_at(sim::time_ns t) const {
  if (t < cfg_.start_time || t >= cfg_.stop_time) return false;
  if (cfg_.on_duration <= 0) return true;
  const sim::time_ns phase =
      (t - cfg_.start_time) % (cfg_.on_duration + cfg_.off_duration);
  return phase < cfg_.on_duration;
}

sim::time_ns cbr_source::next_on_start(sim::time_ns t) const {
  if (t < cfg_.start_time) return cfg_.start_time;
  if (cfg_.on_duration <= 0) return t;
  const sim::time_ns period = cfg_.on_duration + cfg_.off_duration;
  const sim::time_ns phase = (t - cfg_.start_time) % period;
  if (phase < cfg_.on_duration) return t;
  return t + (period - phase);
}

void cbr_source::send_next() {
  const sim::time_ns now = net_.sched().now();
  if (now >= cfg_.stop_time) return;
  if (!on_at(now)) {
    const sim::time_ns resume = next_on_start(now);
    if (resume >= cfg_.stop_time) return;
    net_.sched().at(resume, [this] { send_next(); });
    return;
  }
  sim::packet p;
  p.size_bytes = cfg_.packet_bytes;
  p.dst = sim::dest::to_node(peer_);
  p.hdr = sim::cbr_payload{cfg_.flow_id, seq_++};
  net_.get(host_)->send(std::move(p));
  ++packets_sent_;
  const sim::time_ns gap =
      sim::transmission_time(cfg_.packet_bytes, cfg_.rate_bps);
  net_.sched().after(gap, [this] { send_next(); });
}

}  // namespace mcc::traffic
