// DELTA instantiation for replicated multicast protocols (paper Figure 5 and
// section 3.1.2 "Session structure"): each subscription level is a single
// group carrying the same content at a different rate, so the keys are
// per-group rather than cumulative:
//   top key       tau_g   = XOR of the component fields of group g only
//   decrease key  delta_g = nonce in the decrease field of group g+1 packets
//   increase key  iota_g  = tau_{g-1} (XOR of group g-1's components) when an
//                           upgrade to g is authorized
#ifndef MCC_CORE_DELTA_REPLICATED_H
#define MCC_CORE_DELTA_REPLICATED_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "crypto/key.h"
#include "crypto/prng.h"
#include "flid/flid_sender.h"
#include "flid/replicated.h"

namespace mcc::core {

/// Key set for one future slot of a replicated session (indices 1..N).
struct replicated_slot_keys {
  int session_id = 0;
  std::int64_t target_slot = 0;
  std::vector<crypto::group_key> top;
  std::vector<crypto::group_key> decrease;  // delta_g, 1..N-1
  std::vector<std::optional<crypto::group_key>> increase;  // iota_g, 2..N
};

class delta_replicated_sender : public flid::delta_sender_hook {
 public:
  delta_replicated_sender(int session_id, int num_groups, int key_bits,
                          std::uint64_t seed);

  void begin_slot(std::int64_t slot, std::uint32_t auth_mask,
                  const std::vector<int>& packets_per_group) override;
  void fill_fields(std::int64_t slot, int group, int seq_in_slot,
                   bool last_in_slot, sim::flid_data& hdr) override;

  [[nodiscard]] const replicated_slot_keys* keys_for(
      std::int64_t target_slot) const;

 private:
  [[nodiscard]] crypto::group_key nonce();

  int session_id_;
  int num_groups_;
  int key_bits_;
  crypto::prng rng_;
  std::int64_t current_slot_ = -1;
  std::vector<crypto::group_key> acc_;             // C_g accumulators
  std::vector<crypto::group_key> decrease_field_;  // d_g per group
  std::map<std::int64_t, replicated_slot_keys> recent_;
};

/// Receiver algorithm of Figure 5 as a pure function of one slot's record.
struct replicated_reconstruction {
  int next_group = 0;  // 0 = no keys (receiver must re-enter the session)
  std::optional<crypto::group_key> key;  // key for next_group
};

[[nodiscard]] replicated_reconstruction reconstruct_replicated(
    const flid::replicated_receiver::slot_record& rec, int current_group,
    int num_groups);

}  // namespace mcc::core

#endif  // MCC_CORE_DELTA_REPLICATED_H
