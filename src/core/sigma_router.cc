#include "core/sigma_router.h"

#include <algorithm>

#include "crypto/oneway.h"
#include "util/logging.h"

namespace mcc::core {

namespace {
/// Slots of key/shard history kept before garbage collection.
constexpr std::int64_t history_slots = 8;
/// Cap on the probation-memory cutoff escalation exponent: the k-th keyless
/// rejoin is cut off for slot_duration << min(k, cap) — capped so a single
/// interface cannot be locked out for more than 64 slots at a time.
constexpr int max_block_escalation = 6;
}  // namespace

sigma_router_agent::sigma_router_agent(sim::network& net, sim::node_id router,
                                       mcast::igmp_agent& tree)
    : net_(net), router_(router), tree_(tree) {
  sim::node* r = net_.get(router_);
  r->add_agent(this);
  r->set_alert_interceptor(this);
  r->set_access_policy(this);
  trace_ = obs::current_trace();
}

void sigma_router_agent::trace(obs::trace_event kind, sim::link* iface,
                               std::uint64_t a, std::uint64_t b) {
  if (trace_ == nullptr) return;
  auto it = trace_tracks_.find(iface);
  if (it == trace_tracks_.end()) {
    const std::uint32_t id = trace_->track(
        "sigma:" + net_.get(router_)->name() + ":" + iface->to()->name());
    it = trace_tracks_.emplace(iface, id).first;
  }
  trace_->record(net_.sched().now(), kind, it->second, a, b);
}

bool sigma_router_agent::handle_packet(const sim::packet& p,
                                       sim::link* arrival) {
  if (const auto* ctrl = sim::header_as<sim::sigma_ctrl>(p)) {
    on_ctrl(*ctrl);
    return true;
  }
  // Management messages arrive unicast from a local host interface.
  sim::link* iface = arrival != nullptr ? arrival->reverse() : nullptr;
  if (iface == nullptr || !iface->to()->is_host()) return false;
  if (const auto* sub = sim::header_as<sim::sigma_subscribe>(p)) {
    on_subscribe(*sub, iface, p.src);
    return true;
  }
  if (const auto* unsub = sim::header_as<sim::sigma_unsubscribe>(p)) {
    on_unsubscribe(*unsub, iface);
    return true;
  }
  if (const auto* join = sim::header_as<sim::sigma_session_join>(p)) {
    on_session_join(*join, iface);
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Control-plane: key distribution to the router
// ---------------------------------------------------------------------------

void sigma_router_agent::on_ctrl(const sim::sigma_ctrl& hdr) {
  ++stats_.ctrl_shards;
  session_state& sess = sessions_[hdr.session_id];
  sess.slot_duration = hdr.slot_duration;
  sess.max_seen_slot = std::max(sess.max_seen_slot, hdr.emitted_slot);

  shard_buffer& buf = sess.shards[hdr.target_slot];
  if (buf.decoded) return;
  buf.data_shards = hdr.data_shards;
  buf.payload_size = hdr.payload_size;
  buf.received.push_back(
      crypto::indexed_shard{hdr.shard_index, hdr.shard_bytes});
  if (static_cast<int>(buf.received.size()) >= hdr.data_shards) {
    try_decode(hdr.session_id, hdr.target_slot);
  }
}

void sigma_router_agent::try_decode(int session_id, std::int64_t target_slot) {
  session_state& sess = sessions_[session_id];
  shard_buffer& buf = sess.shards[target_slot];
  if (buf.decoded || buf.received.empty()) return;

  // The decoder only needs the generator rows for the received parity
  // indices, which rs_code derives from (k, m); construct with a parity count
  // covering the largest index seen.
  int max_index = 0;
  for (const auto& s : buf.received) max_index = std::max(max_index, s.index);
  const crypto::rs_code decoder(buf.data_shards,
                                std::max(0, max_index - buf.data_shards + 1));
  auto data = decoder.decode(buf.received);
  if (!data.has_value()) return;
  const auto payload = crypto::join_shards(*data, buf.payload_size);
  auto block = deserialize_key_block(payload);
  if (!block.has_value()) return;

  buf.decoded = true;
  buf.received.clear();
  ++stats_.blocks_decoded;
  auto& store = sess.keys_by_slot[block->target_slot];
  for (const auto& [group, tuple] : block->entries) {
    store[group.value] = tuple;
  }

  // Garbage-collect old slots.
  while (!sess.keys_by_slot.empty() &&
         sess.keys_by_slot.begin()->first < target_slot - history_slots) {
    sess.keys_by_slot.erase(sess.keys_by_slot.begin());
  }
  while (!sess.shards.empty() &&
         sess.shards.begin()->first < target_slot - history_slots) {
    sess.shards.erase(sess.shards.begin());
  }

  // Re-validate subscriptions that raced ahead of their tuple block (with
  // the same per-interface comparison the direct path uses — a parked
  // honest key must not turn into a rejected "guess" under keying).
  auto pending_it = pending_.find({session_id, block->target_slot});
  if (pending_it != pending_.end()) {
    auto work = std::move(pending_it->second);
    pending_.erase(pending_it);
    for (const auto& sub : work) {
      const key_tuple* t =
          tuple_for(session_id, block->target_slot, sub.group_value);
      if (t != nullptr && tuple_matches(*t, sub.key, sub.iface)) {
        ++stats_.valid_keys;
        grant(session_id, sub.iface, sub.group_value, block->target_slot);
      } else {
        ++stats_.invalid_keys;
        tally_guess(sub.iface, block->target_slot);
      }
    }
  }
}

bool sigma_router_agent::tuple_matches(const key_tuple& tuple,
                                       const crypto::group_key& submitted,
                                       sim::link* iface) const {
  if (!interface_keying_) return tuple.matches(submitted);
  // Interface identity = the attached host (one receiver host per interface
  // in our topologies); receivers apply the same perturbation to the keys
  // they reconstruct.
  const auto iface_id = static_cast<std::uint64_t>(iface->to()->id());
  key_tuple perturbed;
  perturbed.top = crypto::perturb_for_interface(tuple.top, iface_id);
  if (tuple.dec) {
    perturbed.dec = crypto::perturb_for_interface(*tuple.dec, iface_id);
  }
  if (tuple.inc) {
    perturbed.inc = crypto::perturb_for_interface(*tuple.inc, iface_id);
  }
  return perturbed.matches(submitted);
}

const key_tuple* sigma_router_agent::tuple_for(int session_id,
                                               std::int64_t slot,
                                               int group_value) const {
  auto sess = sessions_.find(session_id);
  if (sess == sessions_.end()) return nullptr;
  auto by_slot = sess->second.keys_by_slot.find(slot);
  if (by_slot == sess->second.keys_by_slot.end()) return nullptr;
  auto t = by_slot->second.find(group_value);
  return t == by_slot->second.end() ? nullptr : &t->second;
}

// ---------------------------------------------------------------------------
// Management-plane: receiver messages (Figure 6)
// ---------------------------------------------------------------------------

void sigma_router_agent::on_subscribe(const sim::sigma_subscribe& msg,
                                      sim::link* iface, sim::node_id from) {
  ++stats_.subscribe_msgs;
  trace(obs::trace_event::subscribe, iface,
        static_cast<std::uint64_t>(msg.session_id), msg.pairs.size());
  session_state& sess = sessions_[msg.session_id];
  for (const auto& [group, key] : msg.pairs) {
    const crypto::group_key submitted = key;
    const key_tuple* tuple = tuple_for(msg.session_id, msg.slot, group.value);
    if (tuple == nullptr) {
      // Tuple block not decoded yet (or control packets still in flight):
      // park the request; it is re-validated on decode.
      if (msg.slot >= sess.max_seen_slot) {
        ++stats_.pending_subscriptions;
        pending_[{msg.session_id, msg.slot}].push_back(
            pending_subscription{iface, group.value, submitted});
      } else {
        ++stats_.invalid_keys;
      }
      continue;
    }
    if (tuple_matches(*tuple, submitted, iface)) {
      ++stats_.valid_keys;
      grant(msg.session_id, iface, group.value, msg.slot);
    } else {
      ++stats_.invalid_keys;
      tally_guess(iface, msg.slot);
    }
  }
  // Acknowledge receipt (paper: "the edge router acknowledges each
  // subscription message").
  sim::packet ack;
  ack.size_bytes = 40;
  ack.dst = sim::dest::to_node(from);
  ack.hdr = sim::sigma_ack{msg.msg_id};
  net_.get(router_)->send(std::move(ack));
}

void sigma_router_agent::grant(int, sim::link* iface, int group_value,
                               std::int64_t slot) {
  iface_group_state& st = ifaces_[iface][group_value];
  if (probation_memory_slots_ > 0) {
    const sim::time_ns now = net_.sched().now();
    const probation_memory_record* debt = recall_debt(iface, group_value);
    const bool live_block = st.blocked_until >= 0 && now < st.blocked_until;
    const bool remembered_block = debt != nullptr && debt->blocked_until >= 0 &&
                                  now < debt->blocked_until;
    if (live_block || remembered_block) {
      // Still serving a cutoff (live, or remembered across an unsubscribe):
      // a valid key earns access only once the owed slots have actually been
      // served — otherwise churning through grant would launder the debt.
      ++stats_.blocked_grants;
      return;
    }
    // A valid key pays all outstanding debt and resets the escalation ladder.
    st.keyless_rejoins = 0;
    forget_debt(iface, group_value);
  }
  if (st.probation) {
    // A valid key arrived inside the keyless grace window: the window closes
    // cleanly (b=0) instead of expiring into a cutoff (b=1).
    trace(obs::trace_event::grace_close, iface,
          static_cast<std::uint64_t>(group_value), 0);
  }
  st.authorized_until = std::max(st.authorized_until, slot);
  st.probation = false;
  st.blocked_until = -1;  // a valid key re-proves eligibility
  if (!st.grafted) {
    tree_.join(sim::group_addr{group_value}, iface);
    st.grafted = true;
    // New group on this interface: unconditional forwarding for two complete
    // slots once its packets arrive (section 3.2.2).
    st.awaiting_first_packet = true;
  }
}

void sigma_router_agent::ungraft(int group_value, sim::link* iface,
                                 iface_group_state& st) {
  if (st.grafted) {
    tree_.leave(sim::group_addr{group_value}, iface);
    st.grafted = false;
  }
  st.grace_through_slot = -1;
  st.awaiting_first_packet = false;
}

void sigma_router_agent::on_unsubscribe(const sim::sigma_unsubscribe& msg,
                                        sim::link* iface) {
  ++stats_.unsubscribes;
  trace(obs::trace_event::unsubscribe, iface,
        static_cast<std::uint64_t>(msg.session_id), msg.groups.size());
  for (sim::group_addr g : msg.groups) {
    auto by_iface = ifaces_.find(iface);
    if (by_iface == ifaces_.end()) continue;
    auto st = by_iface->second.find(g.value);
    if (st == by_iface->second.end()) continue;
    // The adaptive_churn loophole lived here: erasing the state wiped the
    // pending probation and blocked_until debt with it. Under probation
    // memory the debt outlives the wipe.
    if (probation_memory_slots_ > 0) {
      remember_debt(iface, g.value, st->second, msg.session_id);
    }
    ungraft(g.value, iface, st->second);
    by_iface->second.erase(st);
  }
}

void sigma_router_agent::remember_debt(sim::link* iface, int group_value,
                                       const iface_group_state& st,
                                       int session_id) {
  const sim::time_ns now = net_.sched().now();
  const bool blocked = st.blocked_until >= 0 && now < st.blocked_until;
  // Debt = a grace window that has not ended in probation yet, an unserved
  // cutoff, or an escalation ladder position a churner could otherwise
  // launder by unsubscribing. A receiver that proved a key has none.
  if (!st.probation && !blocked && st.keyless_rejoins == 0) return;
  session_state& sess = sessions_[session_id];
  if (sess.slot_duration == 0) {
    if (const auto* ann = net_.find_session(session_id)) {
      sess.slot_duration = ann->slot_duration;
    }
  }
  if (sess.slot_duration == 0) return;  // unknown session: no window to index
  probation_memory_record& rec = memory_[iface][group_value];
  rec.blocked_until = blocked ? st.blocked_until : -1;
  rec.keyless_rejoins = std::max(rec.keyless_rejoins, st.keyless_rejoins);
  rec.expires_at = std::max(now, st.blocked_until) +
                   probation_memory_slots_ * sess.slot_duration;
  ++stats_.memory_records;
  trace(obs::trace_event::probation_record, iface,
        static_cast<std::uint64_t>(group_value),
        static_cast<std::uint64_t>(rec.keyless_rejoins));
}

sigma_router_agent::probation_memory_record* sigma_router_agent::recall_debt(
    sim::link* iface, int group_value) {
  auto mi = memory_.find(iface);
  if (mi == memory_.end()) return nullptr;
  // Lazy GC: drop every expired record on this interface while we are here,
  // so the table stays O(recently wiped debtor groups) per interface.
  const sim::time_ns now = net_.sched().now();
  for (auto it = mi->second.begin(); it != mi->second.end();) {
    if (now >= it->second.expires_at) {
      it = mi->second.erase(it);
    } else {
      ++it;
    }
  }
  if (mi->second.empty()) {
    memory_.erase(mi);
    return nullptr;
  }
  auto rec = mi->second.find(group_value);
  return rec == mi->second.end() ? nullptr : &rec->second;
}

void sigma_router_agent::forget_debt(sim::link* iface, int group_value) {
  auto mi = memory_.find(iface);
  if (mi == memory_.end()) return;
  mi->second.erase(group_value);
  if (mi->second.empty()) memory_.erase(mi);
}

void sigma_router_agent::on_session_join(const sim::sigma_session_join& msg,
                                         sim::link* iface) {
  const sim::session_announcement* ann = net_.find_session(msg.session_id);
  if (ann == nullptr || ann->groups.empty() ||
      !(msg.minimal_group == ann->groups.front())) {
    // Unknown session, or the receiver lied about which group is minimal
    // (claiming a high-rate group would turn keyless admission into a
    // bandwidth attack).
    ++stats_.session_joins_refused;
    return;
  }
  const int minimal = ann->groups.front().value;
  iface_group_state& st = ifaces_[iface][minimal];
  session_state& sess = sessions_[msg.session_id];
  if (st.blocked_until >= 0 && net_.sched().now() < st.blocked_until) {
    // Still serving the >= 1 slot cutoff for failing to present a key.
    ++stats_.session_joins_refused;
    return;
  }
  bool inherited = false;
  if (probation_memory_slots_ > 0) {
    if (const probation_memory_record* debt = recall_debt(iface, minimal)) {
      if (debt->blocked_until >= 0 && net_.sched().now() < debt->blocked_until) {
        // The wiped state still owed an unserved cutoff: still-blocked means
        // refused, unsubscribe or not.
        ++stats_.session_joins_refused;
        ++stats_.memory_refusals;
        trace(obs::trace_event::probation_refuse, iface,
              static_cast<std::uint64_t>(minimal),
              static_cast<std::uint64_t>(debt->blocked_until));
        return;
      }
      // Within the memory window: the rejoin inherits the debt instead of
      // starting over.
      st.keyless_rejoins = std::max(st.keyless_rejoins, debt->keyless_rejoins);
      forget_debt(iface, minimal);
      ++stats_.memory_inherits;
      trace(obs::trace_event::probation_inherit, iface,
            static_cast<std::uint64_t>(minimal),
            static_cast<std::uint64_t>(st.keyless_rejoins));
      inherited = true;
    }
    if (st.grafted && st.probation) {
      // A keyless grace window is already open on this interface; repeated
      // joins must not refresh awaiting_first_packet and extend it.
      return;
    }
  }
  if (st.grafted && st.authorized_until > sess.max_seen_slot + 1) {
    return;  // already a member in good standing; nothing to do
  }
  // Fresh keyless admission (or re-admission after an authorization gap):
  // unrestricted access to the minimal group for two complete slots; failing
  // to present a valid key within the window leads to a >= one-slot cutoff.
  // A receiver cannot ride repeated session-joins to uninterrupted keyless
  // access — each grace window ends in probation (section 3.2.2).
  ++stats_.session_joins;
  trace(obs::trace_event::session_join, iface,
        static_cast<std::uint64_t>(msg.session_id), inherited ? 1 : 0);
  if (!st.grafted) {
    tree_.join(sim::group_addr{minimal}, iface);
    st.grafted = true;
  }
  st.probation = true;
  if (probation_memory_slots_ > 0 && (inherited || st.keyless_rejoins > 0)) {
    // Keyless rejoin with outstanding debt: admitted on probation but with NO
    // fresh grace — the first data packet converts straight into an escalated
    // cutoff unless a valid key lands first.
    st.awaiting_first_packet = false;
    return;
  }
  st.awaiting_first_packet = true;
}

// ---------------------------------------------------------------------------
// Data-plane enforcement
// ---------------------------------------------------------------------------

bool sigma_router_agent::allow(sim::packet& p, sim::link* oif) {
  if (!p.dst.is_multicast()) return true;
  const sim::group_addr group = p.dst.group();
  if (!net_.is_sigma_protected(group)) return true;  // not ours to guard
  if (!p.tag.has_value()) {
    // Protected group without a shim tag: not a SIGMA-enabled sender's
    // packet; refuse.
    ++stats_.denied;
    return false;
  }
  const std::int64_t slot = p.tag->slot;
  session_state& sess = sessions_[p.tag->session_id];
  if (sess.slot_duration == 0) {
    if (const auto* ann = net_.find_session(p.tag->session_id)) {
      sess.slot_duration = ann->slot_duration;
    }
  }
  sess.max_seen_slot = std::max(sess.max_seen_slot, slot);

  iface_group_state& st = ifaces_[oif][group.value];
  if (st.awaiting_first_packet) {
    // First packet of a newly added group: grace covers this slot and the
    // two complete slots after it — exactly the window until keys harvested
    // from the first complete slot become usable (Figure 2).
    st.awaiting_first_packet = false;
    st.grace_through_slot = slot + key_lead_slots;
    trace(obs::trace_event::grace_open, oif,
          static_cast<std::uint64_t>(group.value),
          static_cast<std::uint64_t>(st.grace_through_slot));
  }
  if (st.blocked_until >= 0 && net_.sched().now() < st.blocked_until) {
    ++stats_.denied;
    return false;
  }
  const bool allowed =
      slot <= st.grace_through_slot || slot <= st.authorized_until;
  if (allowed) {
    if (slot > st.authorized_until) {
      ++stats_.grace_forwards;
    } else {
      ++stats_.authorized_forwards;
    }
    if (ecn_scrub_ && p.ecn_marked) {
      if (auto* hdr = sim::header_as<sim::flid_data>(p)) {
        // Invalidate the component so ineligible receivers cannot
        // reconstruct the group key from marked packets (section 3.1.2).
        hdr->component = crypto::group_key{crypto::oneway_mix(p.uid)};
        hdr->component_scrubbed = true;
      }
    }
    return true;
  }
  ++stats_.denied;
  if (st.probation) {
    // Keyless admission expired without a valid key: stop forwarding for at
    // least one time slot (section 3.2.2) and prune the branch. Under
    // probation memory the cutoff escalates geometrically with every keyless
    // rejoin, so grace riding buys ever-shrinking duty cycles.
    sim::time_ns cutoff = sess.slot_duration;
    if (probation_memory_slots_ > 0) {
      cutoff = sess.slot_duration
               << std::min(st.keyless_rejoins, max_block_escalation);
      ++st.keyless_rejoins;
    }
    st.blocked_until = net_.sched().now() + cutoff;
    st.probation = false;
    ++stats_.probation_blocks;
    trace(obs::trace_event::grace_close, oif,
          static_cast<std::uint64_t>(group.value), 1);
    trace(obs::trace_event::cutoff, oif,
          static_cast<std::uint64_t>(group.value),
          static_cast<std::uint64_t>(st.blocked_until));
    ungraft(group.value, oif, st);
  } else if (slot > st.authorized_until + 1) {
    // Authorization stale by more than a full slot: the receiver is gone or
    // ineligible; prune so the traffic stops crossing the bottleneck.
    ++stats_.stale_prunes;
    ungraft(group.value, oif, st);
  }
  return false;
}

void sigma_router_agent::tally_guess(sim::link* iface, std::int64_t slot) {
  auto& by_slot = guess_tally_[iface];
  ++by_slot[slot];
  // Decay: buckets older than the retained window fall off as newer slots
  // arrive, so the tally reflects recent guessing pressure, not run length.
  const std::int64_t newest = by_slot.rbegin()->first;
  while (by_slot.begin()->first < newest - history_slots) {
    by_slot.erase(by_slot.begin());
  }
}

std::uint64_t sigma_router_agent::guess_tally(sim::link* iface) const {
  auto it = guess_tally_.find(iface);
  if (it == guess_tally_.end()) return 0;
  std::uint64_t sum = 0;
  for (const auto& [slot, count] : it->second) sum += count;
  return sum;
}

}  // namespace mcc::core
