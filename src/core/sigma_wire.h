// SIGMA data structures and the serialization of address-key tuple blocks
// carried by special packets (paper section 3.2.1: "tuples bind the address
// of each group with the keys for accessing the group during a time slot").
#ifndef MCC_CORE_SIGMA_WIRE_H
#define MCC_CORE_SIGMA_WIRE_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/delta_layered.h"
#include "crypto/key.h"
#include "sim/time.h"
#include "sim/wire.h"

namespace mcc::core {

/// The up-to-three keys guarding one group for one slot; any match grants
/// access (paper section 3.1.1: "any of these keys opens access").
struct key_tuple {
  crypto::group_key top;
  std::optional<crypto::group_key> dec;
  std::optional<crypto::group_key> inc;

  [[nodiscard]] bool matches(crypto::group_key k) const {
    return k == top || (dec.has_value() && k == *dec) ||
           (inc.has_value() && k == *inc);
  }
};

/// One slot's worth of tuples for a session, as shipped to edge routers.
struct sigma_key_block {
  int session_id = 0;
  std::int64_t target_slot = 0;
  sim::time_ns slot_duration = 0;
  int key_bits = 16;
  std::vector<std::pair<sim::group_addr, key_tuple>> entries;
};

/// Byte-exact serialization (the FEC input). Key values are truncated to
/// key_bits on the wire, exactly as a real implementation would transmit
/// b-bit keys (paper evaluates b = 16).
[[nodiscard]] std::vector<std::uint8_t> serialize(const sigma_key_block& b);
[[nodiscard]] std::optional<sigma_key_block> deserialize_key_block(
    std::span<const std::uint8_t> bytes);

/// Builds the tuple block for one slot from the layered DELTA key set.
[[nodiscard]] sigma_key_block block_from_keys(
    const delta_slot_keys& keys, const std::vector<sim::group_addr>& groups,
    sim::time_ns slot_duration, int key_bits);

}  // namespace mcc::core

#endif  // MCC_CORE_SIGMA_WIRE_H
