// TLM — threshold layered multicast: an RLM/WEBRC-style protocol protected
// by the threshold DELTA instantiation (paper section 3.1.2, "Congested
// state"), running over the same SIGMA infrastructure as FLID-DS.
//
// A receiver of subscription level g is congested only when its loss rate
// over the slot exceeds the level's threshold (RLM default 0.25; WEBRC-style
// configs lower the threshold per level). DELTA enforces the rule
// cryptographically: the key for level g is Shamir-shared across all n_g
// packets transmitted to the level (groups 1..g) with reconstruction
// threshold k_g = ceil((1 - threshold_g) * n_g); a receiver above the
// tolerated loss rate simply lacks the shares.
//
// As the paper notes, Shamir's scheme cannot reuse lower-level components in
// cumulative sessions, so a packet of group j carries one share for EVERY
// level j..N — a real per-packet cost (see ablation_threshold_overhead)
// that the paper flags as an open problem.
//
// Upgrades (rule 3 of section 3.1) use an increase key derived one-way from
// the level below: iota_{g+1} = H(kappa_g), computable by any receiver that
// proved level g, invertible by nobody.
//
// Edge routers are untouched: tuples carry top and increase keys that SIGMA
// validates exactly as it does FLID-DS keys (Requirement 3).
#ifndef MCC_CORE_TLM_H
#define MCC_CORE_TLM_H

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/delta_threshold.h"
#include "core/flid_ds.h"
#include "core/sigma_emitter.h"
#include "crypto/prng.h"
#include "crypto/shamir.h"
#include "flid/flid_receiver.h"
#include "flid/flid_sender.h"

namespace mcc::core {

/// Sender-side hook: plugs into flid_sender like the layered DELTA hook, but
/// fills per-packet Shamir shares instead of XOR components.
class tlm_delta_sender : public flid::delta_sender_hook {
 public:
  tlm_delta_sender(int session_id, const threshold_config& cfg,
                   std::vector<sim::group_addr> groups,
                   sim::time_ns slot_duration, std::uint64_t seed);

  /// Key tuples (top keys only) go to edge routers through this emitter.
  void set_emitter(sigma_ctrl_emitter* emitter) { emitter_ = emitter; }

  void begin_slot(std::int64_t slot, std::uint32_t auth_mask,
                  const std::vector<int>& packets_per_group) override;
  void fill_fields(std::int64_t slot, int group, int seq_in_slot,
                   bool last_in_slot, sim::flid_data& hdr) override;

  /// The key guarding level `g` during `target_slot` (for tests).
  [[nodiscard]] std::optional<crypto::group_key> key_for(
      std::int64_t target_slot, int level) const;
  /// Reconstruction threshold k_g of the current slot.
  [[nodiscard]] int threshold_for(int level) const {
    return k_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] const threshold_config& config() const { return cfg_; }

 private:
  [[nodiscard]] crypto::group_key nonce();

  int session_id_;
  threshold_config cfg_;
  std::vector<sim::group_addr> groups_;
  sim::time_ns slot_duration_;
  crypto::prng rng_;
  sigma_ctrl_emitter* emitter_ = nullptr;

  std::int64_t current_slot_ = -1;
  // Per-level state for the current slot: group-major packet index offsets,
  // sharing polynomials, thresholds.
  std::vector<std::int64_t> offset_;  // offset_[j] = packets of groups < j
  std::vector<std::optional<crypto::shamir_poly>> poly_;  // per level
  std::vector<int> k_;                                    // per level
  std::map<std::int64_t, std::vector<crypto::group_key>> keys_;  // by target
};

/// Honest TLM receiver strategy: per slot, determine the highest level whose
/// key is reconstructible from the collected shares (the cryptographic image
/// of the loss-rate rule), subscribe for slot s+2 with those keys, and probe
/// upward through SIGMA's new-group grace when authorized.
class tlm_sigma_strategy : public honest_sigma_strategy {
 public:
  explicit tlm_sigma_strategy(threshold_config cfg) : cfg_(std::move(cfg)) {}

  int on_slot(flid::flid_receiver& r, const flid::slot_summary& s) override;

  struct tlm_counters {
    std::uint64_t levels_reconstructed = 0;
    std::uint64_t levels_denied_by_threshold = 0;
  };
  [[nodiscard]] const tlm_counters& tlm_stats() const { return tlm_stats_; }

 private:
  threshold_config cfg_;
  tlm_counters tlm_stats_;
};

/// Bundle mirroring make_flid_ds_sender for the threshold protocol.
struct tlm_sender_bundle {
  std::unique_ptr<tlm_delta_sender> delta;
  std::unique_ptr<sigma_ctrl_emitter> emitter;
};

[[nodiscard]] tlm_sender_bundle make_tlm_sender(
    sim::network& net, sim::node_id sender_host, flid::flid_sender& sender,
    const threshold_config& thresholds, std::uint64_t seed,
    const sigma_emitter_config& emitter_cfg = {});

}  // namespace mcc::core

#endif  // MCC_CORE_TLM_H
