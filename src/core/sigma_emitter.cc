#include "core/sigma_emitter.h"

namespace mcc::core {

sigma_ctrl_emitter::sigma_ctrl_emitter(sim::network& net,
                                       sim::node_id sender_host,
                                       std::vector<sim::group_addr> groups,
                                       sim::time_ns slot_duration, int key_bits,
                                       const sigma_emitter_config& cfg)
    : net_(net),
      host_(sender_host),
      groups_(std::move(groups)),
      slot_duration_(slot_duration),
      key_bits_(key_bits),
      cfg_(cfg),
      code_(cfg.data_shards, cfg.parity_shards) {
  util::require(!groups_.empty(), "sigma_ctrl_emitter: no groups");
}

void sigma_ctrl_emitter::attach(delta_layered_sender& delta) {
  delta.set_keys_callback(
      [this](const delta_slot_keys& keys, std::int64_t current_slot) {
        emit(keys, current_slot);
      });
}

void sigma_ctrl_emitter::emit(const delta_slot_keys& keys,
                              std::int64_t current_slot) {
  emit_block(block_from_keys(keys, groups_, slot_duration_, key_bits_),
             current_slot);
}

void sigma_ctrl_emitter::emit_block(const sigma_key_block& block,
                                    std::int64_t current_slot) {
  ++stats_.slots;
  const std::vector<std::uint8_t> payload = serialize(block);
  stats_.payload_bytes += static_cast<std::int64_t>(payload.size());

  const auto data = crypto::split_into_shards(payload, cfg_.data_shards);
  const auto codeword = code_.encode(data);
  const int total = static_cast<int>(codeword.size());

  // Spread the special packets evenly across the slot so a short burst of
  // congestion cannot erase the whole block.
  const sim::time_ns slot_start = current_slot * slot_duration_;
  for (int i = 0; i < total; ++i) {
    sim::sigma_ctrl hdr;
    hdr.session_id = block.session_id;
    hdr.emitted_slot = current_slot;
    hdr.target_slot = block.target_slot;
    hdr.slot_duration = slot_duration_;
    hdr.shard_index = i;
    hdr.data_shards = cfg_.data_shards;
    hdr.total_shards = total;
    hdr.payload_size = payload.size();
    hdr.shard_bytes = codeword[static_cast<std::size_t>(i)];

    sim::packet p;
    p.size_bytes = cfg_.ctrl_header_bytes +
                   static_cast<int>(hdr.shard_bytes.size());
    p.dst = sim::dest::to_group(groups_.front());
    p.router_alert = true;
    p.tag = sim::sigma_tag{block.session_id, current_slot};
    p.hdr = std::move(hdr);

    stats_.ctrl_bytes += p.size_bytes;
    stats_.header_bytes += cfg_.ctrl_header_bytes;
    ++stats_.ctrl_packets;

    const sim::time_ns when =
        slot_start +
        (2 * static_cast<sim::time_ns>(i) + 1) * slot_duration_ / (2 * total);
    net_.sched().at(when, [this, p = std::move(p)]() mutable {
      net_.get(host_)->send(std::move(p));
    });
  }
}

}  // namespace mcc::core
