#include "core/flid_ds.h"

#include <algorithm>

#include "crypto/oneway.h"

namespace mcc::core {

flid_ds_sender make_flid_ds_sender(sim::network& net, sim::node_id sender_host,
                                   flid::flid_sender& sender,
                                   std::uint64_t seed,
                                   const sigma_emitter_config& emitter_cfg) {
  const flid::flid_config& cfg = sender.config();
  flid_ds_sender out;
  out.delta = std::make_unique<delta_layered_sender>(
      cfg.session_id, cfg.num_groups, cfg.key_bits, seed);
  std::vector<sim::group_addr> groups;
  for (int g = 1; g <= cfg.num_groups; ++g) groups.push_back(cfg.group(g));
  out.emitter = std::make_unique<sigma_ctrl_emitter>(
      net, sender_host, groups, cfg.slot_duration, cfg.key_bits, emitter_cfg);
  out.emitter->attach(*out.delta);
  sender.set_delta_hook(out.delta.get());
  sender.set_sigma_tagging(true);
  sender.set_sigma_protected(true);
  return out;
}

// ---------------------------------------------------------------------------
// honest_sigma_strategy
// ---------------------------------------------------------------------------

honest_sigma_strategy::~honest_sigma_strategy() {
  *alive_ = false;
  if (net_ != nullptr && receiver_ != nullptr) {
    net_->get(receiver_->host())->remove_agent(this);
  }
}

void honest_sigma_strategy::attach(flid::flid_receiver& r) {
  net_ = &r.net();
  receiver_ = &r;
  delta_ = std::make_unique<delta_layered_receiver>(r.config().num_groups);
  net_->get(r.host())->add_agent(this);
  if ((trace_ = obs::current_trace()) != nullptr) {
    trace_track_ = trace_->track("recv:" + net_->get(r.host())->name());
  }
}

void honest_sigma_strategy::session_start(flid::flid_receiver& r) {
  attach(r);
  r.set_local_level(1);
  send_session_join();
}

crypto::group_key honest_sigma_strategy::maybe_perturb(
    crypto::group_key k) const {
  if (!interface_keying_) return k;
  return crypto::perturb_for_interface(
      k, static_cast<std::uint64_t>(receiver_->host()));
}

bool honest_sigma_strategy::handle_packet(const sim::packet& p, sim::link*) {
  const auto* ack = sim::header_as<sim::sigma_ack>(p);
  if (ack == nullptr) return false;
  auto it = pending_.find(ack->msg_id);
  if (it == pending_.end()) return false;
  it->second.timer.cancel();
  pending_.erase(it);
  return true;
}

void honest_sigma_strategy::arm_retransmit(std::uint64_t msg_id) {
  auto it = pending_.find(msg_id);
  if (it == pending_.end()) return;
  // Retransmit if the ack has not arrived within a conservative local RTT.
  it->second.timer = net_->sched().after(
      sim::milliseconds(100), [this, alive = alive_, msg_id] {
        if (!*alive) return;
        auto p = pending_.find(msg_id);
        if (p == pending_.end()) return;
        if (p->second.retries_left-- <= 0) {
          pending_.erase(p);
          return;
        }
        ++stats_.retransmits;
        stats_.ctrl_bytes += static_cast<std::uint64_t>(p->second.pkt.size_bytes);
        net_->get(receiver_->host())->send(p->second.pkt);
        arm_retransmit(msg_id);
      });
}

void honest_sigma_strategy::send_subscribe(
    std::int64_t slot,
    const std::vector<std::pair<sim::group_addr, crypto::group_key>>& pairs) {
  if (pairs.empty()) return;
  ++stats_.subscribes;
  sim::sigma_subscribe msg;
  msg.session_id = receiver_->config().session_id;
  msg.slot = slot;
  msg.pairs = pairs;
  msg.msg_id = (static_cast<std::uint64_t>(receiver_->host()) << 32) |
               next_msg_id_++;

  sim::packet p;
  // Figure 6(b): slot + per-group address-key pair.
  p.size_bytes = 16 + static_cast<int>(pairs.size()) *
                          (4 + receiver_->config().key_bits / 8);
  p.dst = sim::dest::to_node(receiver_->edge_router());
  p.hdr = msg;
  stats_.ctrl_bytes += static_cast<std::uint64_t>(p.size_bytes);
  pending_[msg.msg_id] = pending_msg{p, 2, {}};
  net_->get(receiver_->host())->send(std::move(p));
  arm_retransmit(msg.msg_id);
}

void honest_sigma_strategy::send_unsubscribe(
    const std::vector<sim::group_addr>& groups) {
  if (groups.empty()) return;
  ++stats_.unsubscribes;
  sim::sigma_unsubscribe msg;
  msg.session_id = receiver_->config().session_id;
  msg.groups = groups;
  sim::packet p;
  p.size_bytes = 16 + static_cast<int>(groups.size()) * 4;
  p.dst = sim::dest::to_node(receiver_->edge_router());
  p.hdr = std::move(msg);
  stats_.ctrl_bytes += static_cast<std::uint64_t>(p.size_bytes);
  net_->get(receiver_->host())->send(std::move(p));
}

void honest_sigma_strategy::send_session_join() {
  ++stats_.session_joins;
  last_session_join_ = net_->sched().now();
  sim::sigma_session_join msg;
  msg.session_id = receiver_->config().session_id;
  msg.minimal_group = receiver_->config().group(1);
  sim::packet p;
  p.size_bytes = 20;
  p.dst = sim::dest::to_node(receiver_->edge_router());
  p.hdr = msg;
  stats_.ctrl_bytes += static_cast<std::uint64_t>(p.size_bytes);
  net_->get(receiver_->host())->send(std::move(p));
}

slot_feedback honest_sigma_strategy::observe_slot(flid::flid_receiver& r,
                                                  const flid::slot_summary& s) {
  slot_feedback fb;
  fb.slot = s.slot;
  fb.now = net_->sched().now();
  fb.claimed = r.level();
  for (int g = 1; g <= r.config().num_groups; ++g) {
    if (s.groups[static_cast<std::size_t>(g)].received == 0) break;
    fb.granted = g;
  }
  if (trace_ != nullptr) {
    trace_->record(fb.now, obs::trace_event::slot_feedback, trace_track_,
                   static_cast<std::uint64_t>(fb.claimed),
                   static_cast<std::uint64_t>(fb.granted));
  }
  on_feedback(fb);
  return fb;
}

int honest_sigma_strategy::honest_action(flid::flid_receiver& r,
                                         const flid::slot_summary& s) {
  const flid::flid_config& cfg = r.config();
  const sim::time_ns t = cfg.slot_duration;

  // Nothing received over a full slot: either we just joined (grace period
  // in progress) or the router cut us off. Re-enter via session-join after
  // a cool-down of two slots without data.
  bool any_packets = false;
  for (int g = 1; g <= cfg.num_groups; ++g) {
    if (s.groups[static_cast<std::size_t>(g)].received > 0) {
      any_packets = true;
      break;
    }
  }
  if (!any_packets) {
    ++stats_.cutoff_slots;
    ++empty_slots_;
    if (empty_slots_ >= 2 &&
        net_->sched().now() - last_session_join_ > 2 * t) {
      ++stats_.cutoffs;
      send_session_join();
      empty_slots_ = 0;
    }
    return r.level();
  }
  empty_slots_ = 0;
  if (s.level == 0) return r.level();  // partial first slot after a join

  // Groups that were subscribed for the whole slot but delivered nothing are
  // gone (the router withdrew them after an authorization lapse, or the
  // branch broke): without their packets no key for them can ever be proved
  // again, so fold the subscription down to the groups actually flowing and
  // reconstruct relative to that level.
  flid::slot_summary eff = s;
  int effective = 0;
  for (int g = 1; g <= s.level; ++g) {
    if (s.groups[static_cast<std::size_t>(g)].received == 0) break;
    effective = g;
  }
  if (effective < s.level) {
    eff.level = effective;
    eff.congested = false;
    for (int g = 1; g <= effective; ++g) {
      if (!eff.groups[static_cast<std::size_t>(g)].complete()) {
        eff.congested = true;
        break;
      }
    }
    r.set_local_level(effective);
  }

  const delta_reconstruction rec = delta_->reconstruct(eff);
  on_keys_reconstructed(s.slot + key_lead_slots, rec.keys);
  if (rec.next_level == 0) {
    // Congested at the minimal level: no reconstructible keys, so the
    // current authorization lapses after slot s+1. Request keyless
    // re-admission right away; the grace window bridges the gap, and the
    // next loss-free slot proves a fresh key (section 3.2.2).
    ++stats_.cutoffs;
    if (net_->sched().now() - last_session_join_ >= t) send_session_join();
    return r.level();  // keep wanting the minimal level locally
  }

  // Submit the address-key pairs for slot s+2.
  std::vector<std::pair<sim::group_addr, crypto::group_key>> pairs;
  pairs.reserve(rec.keys.size());
  for (const auto& [g, key] : rec.keys) {
    pairs.emplace_back(cfg.group(g), maybe_perturb(key));
  }
  send_subscribe(s.slot + key_lead_slots, pairs);

  // A group joined mid-slot has not completed a full slot yet, so the
  // reconstruction is computed relative to eff.level < level(). While
  // uncongested, keep the pending join — its first complete slot will prove
  // its key, and the router's new-group grace bridges the gap (Figure 2).
  int target = rec.next_level;
  if (!eff.congested && r.level() > eff.level) {
    target = std::max(target, r.level());
  }

  // Explicitly leave dropped groups for fast congestion relief (the paper's
  // unsubscription message exists exactly "to leave groups even quicker").
  if (target < r.level()) {
    std::vector<sim::group_addr> dropped;
    for (int g = target + 1; g <= r.level(); ++g) {
      dropped.push_back(cfg.group(g));
    }
    send_unsubscribe(dropped);
  }
  r.set_local_level(target);
  return target;
}

int honest_sigma_strategy::on_slot(flid::flid_receiver& r,
                                   const flid::slot_summary& s) {
  observe_slot(r, s);
  return honest_action(r, s);
}

// ---------------------------------------------------------------------------
// misbehaving_sigma_strategy
// ---------------------------------------------------------------------------

misbehaving_sigma_strategy::misbehaving_sigma_strategy(sim::time_ns inflate_at,
                                                       key_mode mode,
                                                       std::uint64_t seed,
                                                       int guesses_per_group)
    : inflate_at_(inflate_at),
      mode_(mode),
      rng_(seed),
      guesses_per_group_(guesses_per_group) {}

bool misbehaving_sigma_strategy::attack_active() const {
  return net_->sched().now() >= inflate_at_;
}

int misbehaving_sigma_strategy::on_slot(flid::flid_receiver& r,
                                        const flid::slot_summary& s) {
  observe_slot(r, s);
  if (!attack_active()) {
    return honest_action(r, s);
  }
  return attack_action(r, s);
}

int misbehaving_sigma_strategy::attack_action(flid::flid_receiver& r,
                                              const flid::slot_summary& s) {
  ++attack_stats_.attack_slots;
  const flid::flid_config& cfg = r.config();
  const int n = cfg.num_groups;

  // The attacker wants everything; locally subscribe to all groups so any
  // packet that leaks through is consumed.
  r.set_local_level(n);

  // Best self-benefical play: reconstruct keys relative to what was actually
  // received (the router-granted subscription), not the claimed level —
  // otherwise the provable prefix shrinks every slot.
  flid::slot_summary eff = s;
  int achieved = 0;
  for (int g = 1; g <= n; ++g) {
    if (eff.groups[static_cast<std::size_t>(g)].received == 0) break;
    achieved = g;
  }
  if (achieved == 0) {
    // Fully cut off: keep hammering session-join (rate limited by router
    // blocking) and guessing.
    ++stats_.cutoff_slots;
    if (net_->sched().now() - last_session_join_ >= cfg.slot_duration) {
      send_session_join();
    }
  }
  eff.level = achieved;
  eff.congested = false;
  for (int g = 1; g <= achieved; ++g) {
    if (!eff.groups[static_cast<std::size_t>(g)].complete()) {
      eff.congested = true;
      break;
    }
  }

  std::vector<std::pair<sim::group_addr, crypto::group_key>> pairs;
  int proven = 0;
  if (achieved > 0) {
    const delta_reconstruction rec = delta_->reconstruct(eff);
    on_keys_reconstructed(s.slot + key_lead_slots, rec.keys);
    proven = rec.next_level;
    for (const auto& [g, key] : rec.keys) {
      // Like the honest path, entitled keys must carry the interface
      // perturbation when the countermeasure is on — an attacker plays the
      // protocol correctly for layers it has actually earned.
      pairs.emplace_back(cfg.group(g), maybe_perturb(key));
      stale_keys_[g] = key;  // remember for replay (raw; perturbed on use)
    }
    if (proven == 0 &&
        net_->sched().now() - last_session_join_ >= cfg.slot_duration) {
      // Congested even at the minimal level: ride keyless re-admission like
      // an honest receiver would.
      send_session_join();
    }
  }

  // Inflation attempts for every group beyond the provable prefix.
  for (int g = proven + 1; g <= n; ++g) {
    if (sidechannel_keys(g, s.slot + key_lead_slots, cfg, pairs)) continue;
    if (mode_ == key_mode::replay) {
      auto it = stale_keys_.find(g);
      if (it != stale_keys_.end()) {
        pairs.emplace_back(cfg.group(g), maybe_perturb(it->second));
        ++attack_stats_.replayed_keys;
      }
    } else if (mode_ == key_mode::guess) {
      for (int i = 0; i < guesses_per_group_; ++i) {
        pairs.emplace_back(
            cfg.group(g),
            crypto::mask_to_bits(crypto::group_key{rng_.next()},
                                 cfg.key_bits));
        ++attack_stats_.guessed_keys;
      }
    }
  }
  if (!pairs.empty()) send_subscribe(s.slot + key_lead_slots, pairs);
  // Never unsubscribe, never decrease: the receiver ignores congestion.
  return n;
}

}  // namespace mcc::core
