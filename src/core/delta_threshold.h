// DELTA instantiation for threshold-based protocols (paper section 3.1.2,
// "Congested state"): RLM, MLDA, and WEBRC consider a receiver congested only
// when its loss rate exceeds a per-level threshold. The key for subscription
// level g is distributed with Shamir's (k, n) scheme across the n packets of
// the level's slot: a receiver reconstructs the key iff it collected at least
// k = ceil((1 - threshold_g) * n) packets, enforcing the loss-rate rule
// cryptographically.
//
// As the paper notes, Shamir's scheme does not allow reusing lower-level
// components in layered sessions, so the per-level key here covers the whole
// subscription level (the component is placed in every packet of the level);
// designing reuse-friendly threshold schemes is the paper's open problem.
#ifndef MCC_CORE_DELTA_THRESHOLD_H
#define MCC_CORE_DELTA_THRESHOLD_H

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "crypto/key.h"
#include "crypto/prng.h"
#include "crypto/shamir.h"

namespace mcc::core {

struct threshold_config {
  int num_levels = 10;
  /// Loss-rate threshold per level, index 1..num_levels. RLM's default is
  /// 0.25 for every level; MLDA/WEBRC lower it for higher levels.
  std::vector<double> loss_threshold;
  int key_bits = 16;

  /// RLM-style uniform thresholds.
  static threshold_config uniform(int levels, double threshold,
                                  int key_bits = 16);
  /// WEBRC-style decaying thresholds: threshold_g = base * decay^(g-1).
  static threshold_config decaying(int levels, double base, double decay,
                                   int key_bits = 16);
};

/// Reconstruction threshold k for a level with n packets in the slot:
/// k = ceil((1 - threshold) * n), clamped to [1, n].
[[nodiscard]] int shares_required(double loss_threshold, int packets_in_slot);

class delta_threshold_sender {
 public:
  delta_threshold_sender(const threshold_config& cfg, std::uint64_t seed);

  /// Draws the per-level keys for slot `slot` (valid at slot + 2) and
  /// prepares one share per packet. packets_per_level is indexed 1..L.
  void begin_slot(std::int64_t slot, const std::vector<int>& packets_per_level);

  /// Share carried by packet `packet_index` (0-based) of `level` in the
  /// current slot.
  [[nodiscard]] crypto::shamir_share share_for(int level,
                                               int packet_index) const;

  /// The key that guards `level` during `target_slot`.
  [[nodiscard]] std::optional<crypto::group_key> key_for(
      std::int64_t target_slot, int level) const;

  [[nodiscard]] int threshold_for(int level) const {
    return thresholds_k_[static_cast<std::size_t>(level)];
  }
  [[nodiscard]] const threshold_config& config() const { return cfg_; }

 private:
  threshold_config cfg_;
  crypto::prng rng_;
  std::int64_t current_slot_ = -1;
  std::vector<std::vector<crypto::shamir_share>> shares_;  // per level
  std::vector<int> thresholds_k_;                          // per level
  std::map<std::int64_t, std::vector<crypto::group_key>> keys_;  // by target
};

/// Receiver side: reconstructs the level key from the collected shares.
/// Returns nullopt when fewer than `k` shares are available; with k or more
/// (any subset) it returns the exact key.
[[nodiscard]] std::optional<crypto::group_key> reconstruct_threshold_key(
    std::span<const crypto::shamir_share> collected, int k);

}  // namespace mcc::core

#endif  // MCC_CORE_DELTA_THRESHOLD_H
